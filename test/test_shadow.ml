(* Shadow memory: the Fig. 4 indexing structure, the same-epoch
   bitmaps, and the accounting that feeds Tables 2 and 3. *)

open Dgrace_shadow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Shadow_table, fixed mode *)

let test_fixed_set_get () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Alcotest.(check (option int)) "absent" None (Shadow_table.get t 0x1000);
  Shadow_table.set t 0x1001 7;
  (* slot covers the whole word *)
  Alcotest.(check (option int)) "same slot" (Some 7) (Shadow_table.get t 0x1003);
  Alcotest.(check (option int)) "next slot" None (Shadow_table.get t 0x1004);
  Alcotest.(check (pair int int)) "slot bounds" (0x1000, 0x1004)
    (Shadow_table.slot_bounds t 0x1002)

let test_set_range_remove_range () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1100 1;
  check_int "entries span blocks" 2 (Shadow_table.entry_count t);
  Alcotest.(check (option int)) "covered" (Some 1) (Shadow_table.get t 0x10fc);
  Shadow_table.remove_range t ~lo:0x1000 ~hi:0x1100;
  Alcotest.(check (option int)) "removed" None (Shadow_table.get t 0x1050);
  check_int "empty entries dropped" 0 (Shadow_table.entry_count t)

let test_partial_remove_keeps_entry () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1080 1;
  Shadow_table.remove_range t ~lo:0x1000 ~hi:0x1040;
  check_int "entry kept" 1 (Shadow_table.entry_count t);
  Alcotest.(check (option int)) "tail kept" (Some 1) (Shadow_table.get t 0x1060)

(* ------------------------------------------------------------------ *)
(* Adaptive mode: m/4 -> m expansion *)

let test_adaptive_expansion () =
  let a = Accounting.create () in
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive ~account:a () in
  Shadow_table.set t 0x1000 1;
  Alcotest.(check (pair int int)) "word slots initially" (0x1000, 0x1004)
    (Shadow_table.slot_bounds t 0x1001);
  let before = Shadow_table.bytes t in
  (* a sub-word access expands the entry to byte slots *)
  Shadow_table.ensure_granularity t ~addr:0x1001 ~size:1;
  Alcotest.(check (pair int int)) "byte slots after" (0x1001, 0x1002)
    (Shadow_table.slot_bounds t 0x1001);
  check_bool "index grew" true (Shadow_table.bytes t > before);
  (* the old word's pointer is inherited by each of its bytes *)
  Alcotest.(check (option int)) "byte 0" (Some 1) (Shadow_table.get t 0x1000);
  Alcotest.(check (option int)) "byte 3" (Some 1) (Shadow_table.get t 0x1003);
  Alcotest.(check (option int)) "byte 4" None (Shadow_table.get t 0x1004)

let test_adaptive_word_access_no_expansion () =
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  Shadow_table.set t 0x2000 1;
  Shadow_table.ensure_granularity t ~addr:0x2000 ~size:4;
  Alcotest.(check (pair int int)) "still word slots" (0x2000, 0x2004)
    (Shadow_table.slot_bounds t 0x2000);
  Shadow_table.ensure_granularity t ~addr:0x2008 ~size:8;
  Alcotest.(check (pair int int)) "8-byte aligned access stays word" (0x2008, 0x200c)
    (Shadow_table.slot_bounds t 0x2008)

let test_adaptive_precreates_byte_entry () =
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  Shadow_table.ensure_granularity t ~addr:0x3001 ~size:1;
  Alcotest.(check (pair int int)) "fresh entry at byte slots" (0x3001, 0x3002)
    (Shadow_table.slot_bounds t 0x3001)

(* Regression for the x264-style packed-field scenario at offset 2:
   even but not word-aligned.  The old default-granularity predicate
   keyed on [addr land 1], so a byte access at base+2 reaching [set]
   without a prior [ensure_granularity] landed in a word slot and was
   masked into its neighbours.  The predicate is now the same
   [addr land 3] test everywhere. *)
let test_offset2_set_without_ensure () =
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  Alcotest.(check (pair int int)) "fresh offset-2 slot is byte-wide"
    (0x5002, 0x5003)
    (Shadow_table.slot_bounds t 0x5002);
  Shadow_table.set t 0x5002 7;
  Alcotest.(check (pair int int)) "slot stays byte-wide" (0x5002, 0x5003)
    (Shadow_table.slot_bounds t 0x5002);
  Alcotest.(check (option int)) "word base not claimed" None
    (Shadow_table.get t 0x5000);
  Alcotest.(check (option int)) "neighbouring byte not claimed" None
    (Shadow_table.get t 0x5003);
  Alcotest.(check (option int)) "value stored" (Some 7)
    (Shadow_table.get t 0x5002);
  (* same access against an existing word page expands it in place *)
  Shadow_table.set t 0x5100 1;
  Shadow_table.set t 0x5102 9;
  Alcotest.(check (pair int int)) "existing page refined" (0x5102, 0x5103)
    (Shadow_table.slot_bounds t 0x5102);
  Alcotest.(check (option int)) "word value inherited" (Some 1)
    (Shadow_table.get t 0x5101);
  Alcotest.(check (option int)) "offset-2 byte overwritten" (Some 9)
    (Shadow_table.get t 0x5102)

(* ------------------------------------------------------------------ *)
(* Neighbours and group *)

let test_neighbors () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1000 1;
  Shadow_table.set t 0x1008 2;
  (match Shadow_table.prev_neighbor t 0x1008 with
   | Some (lo, hi, v) ->
     check_int "prev lo" 0x1000 lo;
     check_int "prev hi" 0x1004 hi;
     check_int "prev v" 1 v
   | None -> Alcotest.fail "expected prev neighbor");
  (match Shadow_table.next_neighbor t 0x1000 with
   | Some (lo, _, v) ->
     check_int "next lo" 0x1008 lo;
     check_int "next v" 2 v
   | None -> Alcotest.fail "expected next neighbor");
  check_bool "no prev of first" true (Shadow_table.prev_neighbor t 0x1000 = None)

let test_neighbor_scan_is_bounded () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1000 1;
  (* a value far away is beyond the bounded neighbourhood *)
  check_bool "too far" true (Shadow_table.prev_neighbor t 0x1060 = None)

let test_neighbor_crosses_block () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x107c 5;
  (* 0x1080 is the next 128-byte block *)
  match Shadow_table.prev_neighbor t 0x1080 with
  | Some (lo, _, v) ->
    check_int "lo" 0x107c lo;
    check_int "v" 5 v
  | None -> Alcotest.fail "expected neighbor across block boundary"

(* The documented radius is exactly [scan_limit = 4] slots, crossing
   block boundaries: a value 4 slots away is found, 5 slots away is
   not, regardless of where the block boundary falls. *)
let test_neighbor_exact_radius () =
  let probe = 0x1084 in
  let within = [ 0x1080; 0x107c; 0x1078; 0x1074 ] in
  List.iter
    (fun a ->
      let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
      Shadow_table.set t a 1;
      match Shadow_table.prev_neighbor t probe with
      | Some (lo, _, _) ->
        check_int (Printf.sprintf "found at 0x%x" a) a lo
      | None -> Alcotest.fail (Printf.sprintf "0x%x is within the radius" a))
    within;
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1070 1;
  check_bool "5 slots back is out of radius" true
    (Shadow_table.prev_neighbor t probe = None);
  (* and forward, 4 slots into the next block *)
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x108c 2;
  (match Shadow_table.next_neighbor t 0x107c with
   | Some (lo, _, _) -> check_int "4 slots forward across block" 0x108c lo
   | None -> Alcotest.fail "4th slot forward is within the radius");
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1090 2;
  check_bool "5 slots forward is out of radius" true
    (Shadow_table.next_neighbor t 0x107c = None)

(* A fully-released neighbouring block must answer exactly like a
   never-touched one — sharing decisions in the dynamic detector
   would otherwise depend on allocation history. *)
let test_dropped_equals_untouched () =
  let mk populate =
    let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
    Shadow_table.set t 0x2000 1;
    Shadow_table.set t 0x207c 3;
    if populate then begin
      Shadow_table.set_range t ~lo:0x2080 ~hi:0x2100 2;
      Shadow_table.remove_range t ~lo:0x2080 ~hi:0x2100
    end;
    t
  in
  let dropped = mk true and untouched = mk false in
  check_int "released block is gone"
    (Shadow_table.entry_count untouched)
    (Shadow_table.entry_count dropped);
  List.iter
    (fun probe ->
      check_bool
        (Printf.sprintf "prev at 0x%x" probe)
        true
        (Shadow_table.prev_neighbor dropped probe
        = Shadow_table.prev_neighbor untouched probe);
      check_bool
        (Printf.sprintf "next at 0x%x" probe)
        true
        (Shadow_table.next_neighbor dropped probe
        = Shadow_table.next_neighbor untouched probe))
    [ 0x2000; 0x2004; 0x2078; 0x2084; 0x2090; 0x2100; 0x2104 ]

let test_group () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1010 1;
  Shadow_table.set_range t ~lo:0x1010 ~hi:0x1018 2;
  let glo, ghi, v = Shadow_table.group t 0x1004 ~hi:0x1020 in
  check_int "group lo" 0x1004 glo;
  check_int "group hi stops at other cell" 0x1010 ghi;
  check_bool "value" true (v = Some 1);
  let glo, ghi, v = Shadow_table.group t 0x1018 ~hi:0x1030 in
  check_int "empty group lo" 0x1018 glo;
  check_int "empty group extends" 0x1030 ghi;
  check_bool "empty value" true (v = None)

let test_group_clips_to_slot_boundary () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1040 9;
  let glo, ghi, _ = Shadow_table.group t 0x1006 ~hi:0x1007 in
  check_int "lo aligned" 0x1004 glo;
  check_int "hi rounded up to slot" 0x1008 ghi

let test_group_crosses_blocks () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1200 3;
  let _, ghi, v = Shadow_table.group t 0x1000 ~hi:0x1200 in
  check_int "crosses two blocks" 0x1200 ghi;
  check_bool "same value" true (v = Some 3)

(* ------------------------------------------------------------------ *)
(* Range-boundary contracts (documented in shadow_table.mli) *)

(* Fixed mode: the slot is the atomic unit, boundaries widen outward. *)
let test_fixed_range_boundaries_widen () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1002 ~hi:0x1006 1;
  Alcotest.(check (option int)) "lo widened to slot" (Some 1)
    (Shadow_table.get t 0x1000);
  Alcotest.(check (option int)) "hi widened to slot" (Some 1)
    (Shadow_table.get t 0x1007);
  Alcotest.(check (option int)) "next slot untouched" None
    (Shadow_table.get t 0x1008);
  Shadow_table.remove_range t ~lo:0x1002 ~hi:0x1006;
  Alcotest.(check (option int)) "remove widens too" None
    (Shadow_table.get t 0x1000);
  check_int "no entries left" 0 (Shadow_table.entry_count t)

(* Adaptive mode: ranges are byte-exact in both directions. *)
let test_adaptive_range_boundaries_exact () =
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  (* unaligned lo: the stamp starts exactly at lo *)
  Shadow_table.set_range t ~lo:0x6002 ~hi:0x6010 1;
  Alcotest.(check (option int)) "byte below lo untouched" None
    (Shadow_table.get t 0x6001);
  Alcotest.(check (option int)) "lo stamped" (Some 1) (Shadow_table.get t 0x6002);
  (* unaligned hi: the stamp ends exactly at hi *)
  Shadow_table.set_range t ~lo:0x6010 ~hi:0x6016 2;
  Alcotest.(check (option int)) "hi-1 stamped" (Some 2) (Shadow_table.get t 0x6015);
  Alcotest.(check (option int)) "hi untouched" None (Shadow_table.get t 0x6016);
  (* removal cuts an occupied word slot exactly, in both directions *)
  let t2 = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  Shadow_table.set_range t2 ~lo:0x7000 ~hi:0x7010 9;
  Shadow_table.remove_range t2 ~lo:0x7000 ~hi:0x7006;
  Alcotest.(check (option int)) "cleared below unaligned hi" None
    (Shadow_table.get t2 0x7005);
  Alcotest.(check (option int)) "kept at unaligned hi" (Some 9)
    (Shadow_table.get t2 0x7006);
  Shadow_table.remove_range t2 ~lo:0x700a ~hi:0x7010;
  Alcotest.(check (option int)) "kept below unaligned lo" (Some 9)
    (Shadow_table.get t2 0x7009);
  Alcotest.(check (option int)) "cleared at unaligned lo" None
    (Shadow_table.get t2 0x700a);
  (* full removal still releases the page *)
  Shadow_table.remove_range t2 ~lo:0x7006 ~hi:0x700a;
  check_int "page released after exact clears" 0
    (Shadow_table.entry_count t2)

let test_iter_range () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1000 1;
  Shadow_table.set t 0x1004 2;
  Shadow_table.set t 0x1010 3;
  let acc = ref [] in
  Shadow_table.iter_range (fun lo _ v -> acc := (lo, v) :: !acc) t ~lo:0x1000 ~hi:0x1008;
  Alcotest.(check (list (pair int int))) "only intersecting slots"
    [ (0x1000, 1); (0x1004, 2) ] (List.rev !acc)

(* model-based: adaptive table vs a plain per-byte Hashtbl *)
let model_test =
  let open QCheck in
  Test.make ~name:"shadow table agrees with per-byte model" ~count:200
    (small_list
       (triple (int_bound 2) (int_bound 512) (int_bound 3)))
    (fun ops ->
      let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let base = 0x4000 in
      List.iter
        (fun (op, off, szi) ->
          let addr = base + off in
          let size = [| 1; 2; 4; 8 |].(szi) in
          match op with
          | 0 ->
            Shadow_table.ensure_granularity t ~addr ~size;
            let lo, hi = Shadow_table.slot_bounds t addr in
            let lo2, hi2 = (min lo addr, max hi (addr + size)) in
            Shadow_table.set_range t ~lo:lo2 ~hi:hi2 off;
            for a = lo2 to hi2 - 1 do Hashtbl.replace model a off done
          | 1 ->
            (* adaptive removal is byte-exact: the model drops exactly
               the requested bytes *)
            Shadow_table.remove_range t ~lo:addr ~hi:(addr + size);
            for a = addr to addr + size - 1 do Hashtbl.remove model a done
          | _ ->
            let got = Shadow_table.get t addr in
            let expect = Hashtbl.find_opt model addr in
            if got <> expect then
              Test.fail_reportf "get 0x%x: got %s, expected %s" addr
                (match got with Some v -> string_of_int v | None -> "-")
                (match expect with Some v -> string_of_int v | None -> "-"))
        ops;
      true)

(* Differential property: the Adaptive table against a [Fixed_bytes 1]
   reference driven through the same access/free sequence must make
   identical per-byte observations — same [get], compatible [group]
   claims, and the adaptive index never outgrows the byte index. *)
let differential_test =
  let open QCheck in
  Test.make ~name:"adaptive agrees with Fixed_bytes 1 reference" ~count:200
    (small_list (triple (int_bound 4) (int_bound 700) (int_bound 3)))
    (fun ops ->
      let adaptive = Shadow_table.create ~mode:Shadow_table.Adaptive () in
      let byte = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 1) () in
      let base = 0x8000 in
      let limit = base + 704 + 8 in
      List.iter
        (fun (op, off, szi) ->
          let addr = base + off in
          let size = [| 1; 2; 4; 8 |].(szi) in
          (match op with
          | 0 ->
            (* detector protocol: refine, then stamp the exact range *)
            Shadow_table.ensure_granularity adaptive ~addr ~size;
            Shadow_table.set_range adaptive ~lo:addr ~hi:(addr + size) off;
            Shadow_table.set_range byte ~lo:addr ~hi:(addr + size) off
          | 1 ->
            (* range op without a prior ensure: self-refining *)
            Shadow_table.set_range adaptive ~lo:addr ~hi:(addr + size) off;
            Shadow_table.set_range byte ~lo:addr ~hi:(addr + size) off
          | 2 ->
            Shadow_table.remove_range adaptive ~lo:addr ~hi:(addr + size);
            Shadow_table.remove_range byte ~lo:addr ~hi:(addr + size)
          | 3 ->
            (* point set: mirror the slot the adaptive table stamps *)
            Shadow_table.set adaptive addr off;
            let slo, shi = Shadow_table.slot_bounds adaptive addr in
            Shadow_table.set_range byte ~lo:slo ~hi:shi off
          | _ ->
            let got = Shadow_table.get adaptive addr in
            let expect = Shadow_table.get byte addr in
            if got <> expect then
              Test.fail_reportf "get 0x%x: adaptive %s, reference %s" addr
                (match got with Some v -> string_of_int v | None -> "-")
                (match expect with Some v -> string_of_int v | None -> "-"));
          (* group's claim must hold byte-for-byte in the reference *)
          let glo, ghi, v = Shadow_table.group adaptive addr ~hi:limit in
          if not (glo <= addr && addr < ghi) then
            Test.fail_reportf "group 0x%x: [0x%x,0x%x) misses the address"
              addr glo ghi;
          for a = glo to min ghi limit - 1 do
            if Shadow_table.get byte a <> v then
              Test.fail_reportf
                "group 0x%x claims [0x%x,0x%x)=%s but reference differs at \
                 0x%x"
                addr glo ghi
                (match v with Some v -> string_of_int v | None -> "-")
                a
          done;
          (* index accounting: non-negative and never above per-byte *)
          if Shadow_table.bytes adaptive < 0 then
            Test.fail_reportf "negative adaptive bytes";
          if Shadow_table.bytes adaptive > Shadow_table.bytes byte then
            Test.fail_reportf "adaptive index (%d B) outgrew byte index (%d B)"
              (Shadow_table.bytes adaptive)
              (Shadow_table.bytes byte))
        ops;
      (* full teardown converges both to the empty table *)
      Shadow_table.remove_range adaptive ~lo:base ~hi:limit;
      Shadow_table.remove_range byte ~lo:base ~hi:limit;
      Shadow_table.entry_count adaptive = 0
      && Shadow_table.bytes adaptive = 0
      && Shadow_table.entry_count byte = 0)

(* ------------------------------------------------------------------ *)
(* Epoch bitmap *)

let test_bitmap_planes () =
  let b = Epoch_bitmap.create () in
  Epoch_bitmap.mark b ~write:false ~lo:100 ~hi:104;
  check_bool "read marked" true (Epoch_bitmap.test b ~write:false 102);
  check_bool "write plane untouched" false (Epoch_bitmap.test b ~write:true 102);
  check_bool "outside" false (Epoch_bitmap.test b ~write:false 104);
  Epoch_bitmap.mark b ~write:true ~lo:102 ~hi:103;
  check_bool "write marked" true (Epoch_bitmap.test b ~write:true 102);
  check_bool "read still marked" true (Epoch_bitmap.test b ~write:false 102);
  Epoch_bitmap.reset b;
  check_bool "reset clears" false (Epoch_bitmap.test b ~write:false 102);
  check_int "reset releases storage" 0 (Epoch_bitmap.bytes b)

(* The epoch cadence reuses chunk storage through the pool instead of
   re-allocating: directory and chunks persist across resets. *)
let test_bitmap_reset_recycles () =
  let b = Epoch_bitmap.create () in
  Epoch_bitmap.mark b ~write:true ~lo:100 ~hi:2100;
  let first = Epoch_bitmap.bytes b in
  check_bool "chunks allocated" true (first > 0);
  Epoch_bitmap.reset b;
  check_int "footprint zero after reset" 0 (Epoch_bitmap.bytes b);
  Epoch_bitmap.mark b ~write:true ~lo:100 ~hi:2100;
  check_int "same footprint next epoch" first (Epoch_bitmap.bytes b);
  check_bool "second epoch marks visible" true
    (Epoch_bitmap.test b ~write:true 1500);
  let s = Epoch_bitmap.stats b in
  check_bool "chunks were recycled, not re-allocated" true
    (s.Epoch_bitmap.chunk_recycles > 0);
  check_int "no extra allocations for the second epoch"
    s.Epoch_bitmap.chunks_live s.Epoch_bitmap.chunk_recycles

let bitmap_model =
  let open QCheck in
  Test.make ~name:"bitmap mark/test agrees with model" ~count:200
    (small_list (triple bool (int_bound 5000) (int_bound 600)))
    (fun ranges ->
      let b = Epoch_bitmap.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (write, lo, len) ->
          Epoch_bitmap.mark b ~write ~lo ~hi:(lo + len);
          for a = lo to lo + len - 1 do Hashtbl.replace model (write, a) () done)
        ranges;
      let ok = ref true in
      for a = 0 to 5700 do
        List.iter
          (fun write ->
            if Epoch_bitmap.test b ~write a <> Hashtbl.mem model (write, a) then
              ok := false)
          [ true; false ]
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Accounting *)

let test_accounting_peaks () =
  let a = Accounting.create () in
  Accounting.add_vc a 100;
  Accounting.add_hash a 50;
  Accounting.add_vc a (-80);
  check_int "current" 70 (Accounting.current_bytes a);
  check_int "peak" 150 (Accounting.peak_bytes a);
  check_int "peak vc" 100 (Accounting.peak_vc_bytes a);
  Accounting.vc_created a;
  Accounting.vc_created a;
  Accounting.vc_freed a;
  check_int "live" 1 (Accounting.live_vcs a);
  check_int "peak vcs" 2 (Accounting.peak_vcs a);
  Accounting.bind_locations a 10;
  Alcotest.(check (float 0.001)) "avg sharing" 5.0 (Accounting.avg_sharing a);
  Accounting.reset a;
  check_int "reset" 0 (Accounting.peak_bytes a)

let suites : unit Alcotest.test list =
    [
      ( "shadow.fixed",
        [
          Alcotest.test_case "set/get" `Quick test_fixed_set_get;
          Alcotest.test_case "set_range/remove_range" `Quick test_set_range_remove_range;
          Alcotest.test_case "partial remove" `Quick test_partial_remove_keeps_entry;
        ] );
      ( "shadow.adaptive",
        [
          Alcotest.test_case "sub-word access expands" `Quick test_adaptive_expansion;
          Alcotest.test_case "word access stays" `Quick test_adaptive_word_access_no_expansion;
          Alcotest.test_case "pre-creates byte entry" `Quick test_adaptive_precreates_byte_entry;
          Alcotest.test_case "offset-2 set without ensure" `Quick test_offset2_set_without_ensure;
        ] );
      ( "shadow.ranges",
        [
          Alcotest.test_case "fixed boundaries widen" `Quick test_fixed_range_boundaries_widen;
          Alcotest.test_case "adaptive boundaries exact" `Quick test_adaptive_range_boundaries_exact;
        ] );
      ( "shadow.navigation",
        [
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "bounded scan" `Quick test_neighbor_scan_is_bounded;
          Alcotest.test_case "cross-block neighbor" `Quick test_neighbor_crosses_block;
          Alcotest.test_case "exact scan radius" `Quick test_neighbor_exact_radius;
          Alcotest.test_case "dropped equals untouched" `Quick test_dropped_equals_untouched;
          Alcotest.test_case "group runs" `Quick test_group;
          Alcotest.test_case "group slot clipping" `Quick test_group_clips_to_slot_boundary;
          Alcotest.test_case "group across blocks" `Quick test_group_crosses_blocks;
          Alcotest.test_case "iter_range" `Quick test_iter_range;
          QCheck_alcotest.to_alcotest model_test;
          QCheck_alcotest.to_alcotest differential_test;
        ] );
      ( "shadow.bitmap",
        [
          Alcotest.test_case "planes and reset" `Quick test_bitmap_planes;
          Alcotest.test_case "reset recycles chunks" `Quick test_bitmap_reset_recycles;
          QCheck_alcotest.to_alcotest bitmap_model;
        ] );
      ( "shadow.accounting",
        [ Alcotest.test_case "peaks and sharing" `Quick test_accounting_peaks ] );
    ]
