(* The hash-consed vector-clock arena (lib/vclock/vc_intern.ml):
   QCheck laws for the snapshot/refcount discipline, and the
   differential guard that interning is a pure memory optimisation —
   every workload reports bit-identical races with interning on and
   off, sequential and sharded. *)

open Dgrace_core
open Dgrace_events
open Dgrace_workloads
module Vc = Dgrace_vclock.Vector_clock
module Vi = Dgrace_vclock.Vc_intern

(* ------------------------------------------------------------------ *)
(* generators (sparse (tid, clock) assignment lists, as in
   test_properties.ml) *)

let gen_entries =
  QCheck.Gen.(
    list_size (int_bound 12)
      (pair (int_bound 40) (map (fun c -> c + 1) (int_bound 1000))))

let vc_of_entries entries =
  let vc = Vc.create () in
  List.iter (fun (tid, c) -> Vc.set vc tid c) entries;
  vc

let pp_entries entries = Vc.to_string (vc_of_entries entries)
let arb_vc = QCheck.make ~print:pp_entries gen_entries

(* a snapshot observationally equals a clock when every component and
   the trimmed width agree, in both fold directions *)
let snap_matches_clock s vc =
  Vi.max_tid_set s = Vc.max_tid_set vc
  && (let ok = ref true in
      for t = 0 to Vc.max_tid_set vc + 2 do
        if Vi.get s t <> Vc.get vc t then ok := false
      done;
      !ok)
  && Vi.fold (fun t c acc -> acc && Vc.get vc t = c) s true
  && Vc.fold (fun t c acc -> acc && Vi.get s t = c) vc true

let p_intern_equals_deep_copy =
  QCheck.Test.make
    ~name:"intern: snapshot observationally equals a deep copy" ~count:300
    arb_vc (fun entries ->
      let vc = vc_of_entries entries in
      let deep = Vc.copy vc in
      let consed = Vi.create () and plain = Vi.create ~hash_consing:false () in
      let s = Vi.intern consed vc and p = Vi.intern plain vc in
      let ok =
        snap_matches_clock s deep && snap_matches_clock p deep
        && Vi.equal s s
        && Vi.leq_clock s deep
        && Vc.equal (Vi.to_clock s) deep
      in
      Vi.release s;
      Vi.release p;
      ok)

let p_intern_is_consed =
  QCheck.Test.make
    ~name:"intern: same content -> same physical snapshot (refs add up)"
    ~count:300 arb_vc (fun entries ->
      let vc = vc_of_entries entries in
      let a = Vi.create () in
      let s1 = Vi.intern a vc in
      (* a second clock with the same content but no memo (copy resets
         the memo fields): forces the hash-table path *)
      let s2 = Vi.intern a (Vc.copy vc) in
      let ok = s1 == s2 && Vi.refcount s1 = 2 in
      Vi.release s1;
      let ok = ok && Vi.refcount s2 = 1 in
      Vi.release s2;
      ok)

let p_with_component =
  QCheck.Test.make
    ~name:"with_component = load; set; intern" ~count:300
    (QCheck.pair arb_vc
       (QCheck.pair (QCheck.int_bound 40)
          (QCheck.map (fun c -> c + 1) (QCheck.int_bound 1000))))
    (fun (entries, (tid, clock)) ->
      let a = Vi.create () in
      let s = Vi.intern a (vc_of_entries entries) in
      let s' = Vi.with_component s ~tid ~clock in
      let expect = vc_of_entries entries in
      Vc.set expect tid clock;
      let ok = snap_matches_clock s' expect in
      Vi.release s';
      Vi.release s;
      ok)

let p_leq_agrees =
  QCheck.Test.make ~name:"snap leq agrees with clock leq" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (ea, eb) ->
      let va = vc_of_entries ea and vb = vc_of_entries eb in
      let a = Vi.create () in
      let sa = Vi.intern a va and sb = Vi.intern a vb in
      let ok =
        Vi.leq sa sb = Vc.leq va vb
        && Vi.leq_clock sa vb = Vc.leq va vb
        && Vi.equal sa sb = Vc.equal va vb
      in
      Vi.release sa;
      Vi.release sb;
      ok)

(* ------------------------------------------------------------------ *)
(* refcount discipline *)

let test_refcount_underflow () =
  let a = Vi.create () in
  let s = Vi.intern a (vc_of_entries [ (0, 3); (2, 5) ]) in
  Vi.retain s;
  Vi.release s;
  Vi.release s;
  Alcotest.check_raises "release after free" (Invalid_argument
    "Vc_intern.release: snapshot already freed") (fun () -> Vi.release s);
  Alcotest.check_raises "retain after free" (Invalid_argument
    "Vc_intern.retain: snapshot already freed") (fun () -> Vi.retain s)

let test_release_then_reuse_no_alias () =
  let a = Vi.create () in
  (* [kept] stays live across a release/recycle cycle of same-length
     payloads; its content must never change *)
  let kept = Vi.intern a (vc_of_entries [ (0, 1); (1, 2); (2, 3) ]) in
  let dead = Vi.intern a (vc_of_entries [ (0, 9); (1, 8); (2, 7) ]) in
  Vi.release dead;
  (* same length class: the recycled payload must not be [kept]'s *)
  let fresh = Vi.intern a (vc_of_entries [ (0, 4); (1, 5); (2, 6) ]) in
  Alcotest.(check int) "kept t0" 1 (Vi.get kept 0);
  Alcotest.(check int) "kept t1" 2 (Vi.get kept 1);
  Alcotest.(check int) "kept t2" 3 (Vi.get kept 2);
  Alcotest.(check int) "fresh t0" 4 (Vi.get fresh 0);
  Alcotest.(check bool) "no aliasing" false (fresh == kept);
  (* and re-interning kept's content still shares with kept, not with
     the recycled storage *)
  let again = Vi.intern a (vc_of_entries [ (0, 1); (1, 2); (2, 3) ]) in
  Alcotest.(check bool) "still consed" true (again == kept);
  Vi.release again;
  Vi.release fresh;
  Vi.release kept;
  let st = Vi.stats a in
  Alcotest.(check int) "all snapshots dead" 0 st.s_live;
  Alcotest.(check int) "bytes fully returned" 0 st.s_bytes

let test_memo_generation () =
  let a = Vi.create () in
  let vc = vc_of_entries [ (0, 7); (3, 2) ] in
  let s1 = Vi.intern a vc in
  let s2 = Vi.intern a vc in
  Alcotest.(check bool) "unchanged clock -> same snap" true (s1 == s2);
  let st = Vi.stats a in
  Alcotest.(check bool) "second intern was a memo hit" true (st.s_memo_hits >= 1);
  Vc.set vc 0 8;
  let s3 = Vi.intern a vc in
  Alcotest.(check bool) "mutation invalidates memo" false (s3 == s1);
  Vc.set vc 0 7;
  let s4 = Vi.intern a vc in
  Alcotest.(check bool) "content returns -> consed again" true (s4 == s1);
  List.iter Vi.release [ s1; s2; s3; s4 ];
  Alcotest.(check int) "drained" 0 (Vi.stats a).s_live

let test_accounting_callback () =
  let delta = ref 0 in
  let a = Vi.create ~on_bytes:(fun d -> delta := !delta + d) () in
  let s = Vi.intern a (vc_of_entries [ (0, 1); (5, 2) ]) in
  Alcotest.(check int) "allocation reported" (Vi.snap_bytes s) !delta;
  let s2 = Vi.intern a (vc_of_entries [ (0, 1); (5, 2) ]) in
  Alcotest.(check int) "sharing reports nothing" (Vi.snap_bytes s) !delta;
  Vi.release s2;
  Vi.release s;
  Alcotest.(check int) "free reported" 0 !delta

(* ------------------------------------------------------------------ *)
(* differential guard: interning on vs off, sequential and sharded —
   the race columns must be bit-identical for every workload *)

let policy = Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 }
let recordings : (string, Event.t array) Hashtbl.t = Hashtbl.create 16

let recorded (w : Workload.t) =
  match Hashtbl.find_opt recordings w.name with
  | Some a -> a
  | None ->
    let p = Workload.with_params ~scale:1 ~seed:1 w in
    let buf = ref [] in
    ignore
      (Workload.run ~policy ~params:p ~sink:(fun ev -> buf := ev :: !buf) w);
    let a = Array.of_list (List.rev !buf) in
    Hashtbl.replace recordings w.name a;
    a

let report = Alcotest.testable (Fmt.of_to_string Report.to_string) ( = )

let check_same ~ctx (on : Engine.summary) (off : Engine.summary) =
  Alcotest.(check (list report)) (ctx ^ ": race reports") off.races on.races;
  Alcotest.(check int) (ctx ^ ": suppressed") off.suppressed on.suppressed;
  Alcotest.(check int)
    (ctx ^ ": exit code")
    (Engine.exit_code_of_summary off)
    (Engine.exit_code_of_summary on)

let analyse w spec ~vc_intern ~shards =
  let events = Array.to_seq (recorded w) in
  if shards = 1 then Engine.replay ~vc_intern ~spec events
  else
    Engine.replay_sharded ~mode:Dgrace_par.Par.Sequential ~vc_intern ~shards
      ~spec events

let test_differential (w : Workload.t) () =
  List.iter
    (fun spec ->
      List.iter
        (fun shards ->
          let ctx =
            Printf.sprintf "%s/%s/shards=%d" w.name (Spec.name spec) shards
          in
          let on = analyse w spec ~vc_intern:true ~shards in
          let off = analyse w spec ~vc_intern:false ~shards in
          check_same ~ctx on off)
        [ 1; 4 ])
    [ Spec.dynamic ]

(* the snapshot-heavy detectors get the same guard on the workloads
   that stress them hardest (drd interns per segment, inspector per
   history entry, raytrace/canneal produce the most snapshots) *)
let test_differential_detectors () =
  List.iter
    (fun wname ->
      let w = Option.get (Registry.find wname) in
      List.iter
        (fun spec ->
          List.iter
            (fun shards ->
              let ctx =
                Printf.sprintf "%s/%s/shards=%d" w.name (Spec.name spec) shards
              in
              let on = analyse w spec ~vc_intern:true ~shards in
              let off = analyse w spec ~vc_intern:false ~shards in
              check_same ~ctx on off)
            [ 1; 4 ])
        [ Spec.byte; Spec.Drd; Spec.Inspector; Spec.Racetrack { region = 64 } ])
    [ "raytrace"; "canneal"; "ffmpeg" ]

(* ------------------------------------------------------------------ *)
(* the vclock.* gauges surface in summaries and survive the sharded
   max-merge *)

let test_gauges_exported_and_merged () =
  let w = Option.get (Registry.find "raytrace") in
  let gauge (s : Engine.summary) name =
    match List.assoc_opt name (Dgrace_obs.Metrics.gauges s.metrics) with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing" name
  in
  let s1 = analyse w Spec.dynamic ~vc_intern:true ~shards:1 in
  Alcotest.(check bool)
    "sequential run interned snapshots" true
    (gauge s1 "vclock.interns" > 0);
  Alcotest.(check bool)
    "arena peak accounted" true
    (gauge s1 "vclock.arena_peak_bytes" > 0);
  let s4 = analyse w Spec.dynamic ~vc_intern:true ~shards:4 in
  (* gauges are max-merged: the merged peak is the hottest shard's,
     positive and never above the sequential arena's *)
  Alcotest.(check bool)
    "merged peak positive" true
    (gauge s4 "vclock.arena_peak_bytes" > 0);
  Alcotest.(check bool)
    "merged peak <= sequential peak" true
    (gauge s4 "vclock.arena_peak_bytes" <= gauge s1 "vclock.arena_peak_bytes");
  (* interned memory also reaches the engine's memory summary *)
  Alcotest.(check bool)
    "peak_interned_bytes surfaced" true
    (s1.mem.peak_interned_bytes > 0);
  (* and with interning off the arena never cons-shares *)
  let off = analyse w Spec.dynamic ~vc_intern:false ~shards:1 in
  Alcotest.(check int) "no memo hits when off" 0 (gauge off "vclock.memo_hits")

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites =
  [
    qsuite "vc_intern.laws"
      [
        p_intern_equals_deep_copy; p_intern_is_consed; p_with_component;
        p_leq_agrees;
      ];
    ( "vc_intern.refcounts",
      [
        Alcotest.test_case "underflow raises" `Quick test_refcount_underflow;
        Alcotest.test_case "release-then-reuse never aliases" `Quick
          test_release_then_reuse_no_alias;
        Alcotest.test_case "generation memo" `Quick test_memo_generation;
        Alcotest.test_case "accounting callback" `Quick
          test_accounting_callback;
      ] );
    ( "vc_intern.differential",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s on=off, shards 1 & 4" w.name)
            `Quick (test_differential w))
        Registry.all
      @ [
          Alcotest.test_case "drd/inspector/racetrack/byte on=off" `Quick
            test_differential_detectors;
        ] );
    ( "vc_intern.gauges",
      [
        Alcotest.test_case "exported and max-merged" `Quick
          test_gauges_exported_and_merged;
      ] );
  ]
