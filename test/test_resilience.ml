(* Resilience layer: resource budgets, graceful degradation, structured
   failure, and the fault-injection harness. *)

open Dgrace_core
open Dgrace_sim
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error
module Json = Dgrace_obs.Json

let find w = Option.get (Dgrace_workloads.Registry.find w)

let program w =
  let wk = find w in
  wk.Dgrace_workloads.Workload.program wk.defaults

let policy = Scheduler.Chunked { seed = 1; chunk = 64 }

let race_addrs (s : Engine.summary) =
  List.map (fun (r : Dgrace_events.Report.t) -> r.addr) s.races
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* budgets *)

let test_budget_validation () =
  Alcotest.(check bool) "unlimited" true (Budget.is_unlimited Budget.unlimited);
  Alcotest.(check bool) "make () unlimited" true
    (Budget.is_unlimited (Budget.make ()));
  Alcotest.(check bool) "limited" false
    (Budget.is_unlimited (Budget.make ~max_events:1 ()));
  List.iter
    (fun f ->
      match f () with
      | () -> Alcotest.fail "non-positive limit accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (Budget.make ~max_events:0 ()));
      (fun () -> ignore (Budget.make ~max_shadow_bytes:(-1) ()));
      (fun () -> ignore (Budget.make ~deadline_s:0. ()));
    ]

let test_event_budget_stops () =
  let s =
    Engine.run ~policy ~budget:(Budget.make ~max_events:1000 ())
      ~spec:Spec.dynamic (program "raytrace")
  in
  (match s.partial with
   | Some (Budget.Max_events { limit }) ->
     Alcotest.(check int) "limit recorded" 1000 limit
   | _ -> Alcotest.fail "expected Max_events stop");
  Alcotest.(check bool) "sim absent on early stop" true (s.sim = None);
  Alcotest.(check bool) "stream actually cut short" true
    (s.stats.Dgrace_detectors.Run_stats.accesses <= 1000);
  Alcotest.(check int) "exit code partial" Error.exit_partial
    (Engine.exit_code_of_summary s)

let test_deadline_stops () =
  let s =
    Engine.run ~policy ~budget:(Budget.make ~deadline_s:1e-6 ())
      ~spec:Spec.dynamic (program "raytrace")
  in
  match s.partial with
  | Some (Budget.Deadline { limit_s; elapsed_s }) ->
    Alcotest.(check bool) "elapsed past limit" true (elapsed_s > limit_s)
  | _ -> Alcotest.fail "expected Deadline stop"

(* The headline acceptance property: a budgeted dynamic run that had to
   shed shadow state still reports at least the races the unbudgeted
   sampling detector (literace) finds on the same schedule. *)
let test_degraded_run_superset_of_literace () =
  let s =
    Engine.run ~policy ~budget:(Budget.make ~max_shadow_bytes:320_000 ())
      ~spec:Spec.dynamic (program "raytrace")
  in
  Alcotest.(check bool) "degraded" true s.degraded;
  Alcotest.(check bool) "but completed" true (s.partial = None);
  let lite = Engine.run ~policy ~spec:Spec.Literace (program "raytrace") in
  let got = race_addrs s and want = race_addrs lite in
  Alcotest.(check bool)
    (Printf.sprintf "degraded dynamic (%d races) >= literace (%d races)"
       (List.length got) (List.length want))
    true
    (List.for_all (fun a -> List.mem a got) want);
  (* degradation left its fingerprints in the metrics *)
  let passes =
    Option.value ~default:0
      (Dgrace_obs.Metrics.find_counter s.metrics "degrade.passes")
  in
  Alcotest.(check bool) "degrade passes counted" true (passes > 0);
  (* and in the versioned export *)
  let doc = Engine.summary_to_json s in
  Alcotest.(check bool) "degraded flag exported" true
    (Json.member "degraded" doc = Some (Json.Bool true));
  Alcotest.(check bool) "partial flag exported" true
    (Json.member "partial" doc = Some (Json.Bool false))

let test_degradation_exhausted_stops () =
  (* a budget below the irreducible floor (hash slots can't be shed)
     must end the run with a Shadow_bytes stop, not spin forever *)
  let s =
    Engine.run ~policy ~budget:(Budget.make ~max_shadow_bytes:30_000 ())
      ~spec:Spec.dynamic (program "raytrace")
  in
  (match s.partial with
   | Some (Budget.Shadow_bytes { limit; bytes }) ->
     Alcotest.(check int) "limit recorded" 30_000 limit;
     Alcotest.(check bool) "still over after shedding" true (bytes > limit)
   | _ -> Alcotest.fail "expected Shadow_bytes stop");
  Alcotest.(check bool) "degraded on the way down" true s.degraded;
  let doc = Engine.summary_to_json s in
  Alcotest.(check bool) "stop_reason exported" true
    (Json.member "stop_reason" doc <> None)

let test_null_detector_cannot_degrade () =
  (* a detector with no degrade hook goes straight to the stop *)
  let s =
    Engine.run ~policy ~budget:(Budget.make ~max_shadow_bytes:1 ())
      ~spec:Spec.byte (program "dedup")
  in
  match s.partial with
  | Some (Budget.Shadow_bytes _) -> ()
  | _ -> Alcotest.fail "expected Shadow_bytes stop"

(* ------------------------------------------------------------------ *)
(* structured failure *)

let test_run_checked_deadlock () =
  match
    Engine.run_checked ~policy ~spec:Spec.dynamic (fun () ->
        let flag = Sim.event () in
        Sim.event_wait flag)
  with
  | Error (Error.Deadlock { blocked; held }) ->
    Alcotest.(check (list int)) "main thread blocked" [ 0 ] blocked;
    Alcotest.(check (list (pair int int))) "no locks held" [] held
  | Ok _ -> Alcotest.fail "expected deadlock"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let test_replay_checked_corrupt () =
  let path = Filename.temp_file "dgrace-resilience" ".trace" in
  let oc = open_out_bin path in
  output_string oc "DGRT\x01\xee\xee\xee";
  close_out oc;
  let ic = open_in_bin path in
  let result =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove path)
      (fun () ->
        Engine.replay_checked ~spec:Spec.dynamic
          (Dgrace_trace.Trace_reader.read ~path ic))
  in
  match result with
  | Error (Error.Corrupt_trace { path = Some p; _ }) ->
    Alcotest.(check string) "path carried" path p
  | Ok _ -> Alcotest.fail "expected corrupt-trace error"
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)

let test_exit_codes () =
  let check_code what want e = Alcotest.(check int) what want (Error.exit_code e) in
  check_code "corrupt input -> 4" Error.exit_input_error
    (Error.Corrupt_trace { path = None; offset = 0; events_read = 0; reason = "x" });
  check_code "invalid input -> 4" Error.exit_input_error
    (Error.Invalid_input { what = "x"; reason = "y" });
  check_code "deadlock -> 3" Error.exit_partial
    (Error.Deadlock { blocked = [ 0 ]; held = [] });
  check_code "budget -> 3" Error.exit_partial
    (Error.Budget_exhausted { budget = "events"; limit = 1; actual = 2 });
  Alcotest.(check int) "ok" 0 Error.exit_ok;
  Alcotest.(check int) "races" 2 Error.exit_races

(* ------------------------------------------------------------------ *)
(* fault injection *)

let test_fault_names_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Fault_harness.name f ^ " round-trips")
        true
        (Fault_harness.of_name (Fault_harness.name f) = Some f))
    Fault_harness.all;
  Alcotest.(check bool) "unknown rejected" true
    (Fault_harness.of_name "frobnicate" = None)

let test_lost_unlock_names_lock () =
  match Fault_harness.run ~seed:1 ~program:(program "dedup") Fault_harness.Lost_unlock with
  | Fault_harness.Declared (Error.Deadlock { held; _ }) ->
    Alcotest.(check bool) "orphaned lock reported" true (held <> []);
    Alcotest.(check bool) "held by the exited thread" true
      (List.exists (fun (_, owner) -> owner = 1) held)
  | o -> Alcotest.failf "expected declared deadlock, got: %s" (Fault_harness.describe o)

let test_fault_matrix () =
  (* every seed x mode must recover or declare — never escape *)
  List.iter
    (fun seed ->
      List.iter
        (fun fault ->
          let outcome =
            Fault_harness.run ~seed ~program:(program "dedup") fault
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed=%d %s acceptable" seed
               (Fault_harness.name fault))
            true
            (Fault_harness.acceptable outcome))
        Fault_harness.all)
    [ 1; 2; 3 ]

let test_fault_determinism () =
  (* the same seed must reproduce the same outcome byte-for-byte *)
  List.iter
    (fun fault ->
      let once = Fault_harness.run ~seed:7 ~program:(program "dedup") fault in
      let again = Fault_harness.run ~seed:7 ~program:(program "dedup") fault in
      Alcotest.(check string)
        (Fault_harness.name fault ^ " deterministic")
        (Fault_harness.describe once)
        (Fault_harness.describe again))
    [ Fault_harness.Trace_fault Dgrace_resilience.Fault.Bit_flip;
      Fault_harness.Trace_fault Dgrace_resilience.Fault.Truncate ]

let suites : unit Alcotest.test list =
  [
    ( "resilience.budget",
      [
        Alcotest.test_case "validation" `Quick test_budget_validation;
        Alcotest.test_case "event budget stops" `Quick test_event_budget_stops;
        Alcotest.test_case "deadline stops" `Quick test_deadline_stops;
        Alcotest.test_case "degraded run superset of literace" `Quick
          test_degraded_run_superset_of_literace;
        Alcotest.test_case "degradation exhausted stops" `Quick
          test_degradation_exhausted_stops;
        Alcotest.test_case "non-degradable detector stops" `Quick
          test_null_detector_cannot_degrade;
      ] );
    ( "resilience.errors",
      [
        Alcotest.test_case "run_checked deadlock" `Quick
          test_run_checked_deadlock;
        Alcotest.test_case "replay_checked corrupt" `Quick
          test_replay_checked_corrupt;
        Alcotest.test_case "exit-code table" `Quick test_exit_codes;
      ] );
    ( "resilience.faults",
      [
        Alcotest.test_case "fault names round-trip" `Quick
          test_fault_names_roundtrip;
        Alcotest.test_case "lost unlock names the lock" `Quick
          test_lost_unlock_names_lock;
        Alcotest.test_case "seeded fault matrix" `Slow test_fault_matrix;
        Alcotest.test_case "fault determinism" `Quick test_fault_determinism;
      ] );
  ]
