(* Exhaustive check of the Figure 2 vector-clock state machine. *)

open Dgrace_detectors
open Share_state

let all_states = [ Init_private; Init_shared; Shared; Private; Race ]

let stim_samples =
  [
    ("first-access/alone", First_access { matching_init_neighbor = false });
    ("first-access/matched", First_access { matching_init_neighbor = true });
    ("init-neighbor-matched", Init_neighbor_matched);
    ("2nd-epoch/alone", Second_epoch_access { matching_settled_neighbor = false });
    ("2nd-epoch/matched", Second_epoch_access { matching_settled_neighbor = true });
    ("adopted", Adopted_by_neighbor);
    ("race", Race_on_l);
    ("dissolved", Sharing_dissolved);
  ]

let st = Alcotest.testable (Fmt.of_to_string to_string) equal

let check_step from stimulus expected () =
  Alcotest.(check (option st)) "transition" expected (step from stimulus)

let test_initial () =
  Alcotest.check st "matched" Init_shared (initial ~matching_init_neighbor:true);
  Alcotest.check st "alone" Init_private (initial ~matching_init_neighbor:false)

let test_predicates () =
  Alcotest.(check (list bool)) "is_init"
    [ true; true; false; false; false ]
    (List.map is_init all_states);
  Alcotest.(check (list bool)) "is_settled"
    [ false; false; true; true; false ]
    (List.map is_settled all_states)

(* Race is absorbing: no stimulus on an existing location leaves it
   (First_access only applies to locations with no state yet). *)
let test_race_absorbing () =
  List.iter
    (fun (n, x) ->
      match x with
      | First_access _ -> ()
      | _ -> (
        match step Race x with
        | Some Race -> ()
        | Some s -> Alcotest.failf "Race --%s--> %s" n (to_string s)
        | None -> Alcotest.failf "Race --%s--> (undefined)" n))
    stim_samples

(* A race on L always moves to Race, from every state. *)
let test_race_on_l_total () =
  List.iter
    (fun s ->
      Alcotest.(check (option st)) (to_string s) (Some Race) (step s Race_on_l))
    all_states

(* The firm decision is made exactly once: settled states have no
   second-epoch transition. *)
let test_settled_final () =
  List.iter
    (fun s ->
      Alcotest.(check (option st)) "no 2nd epoch from settled" None
        (step s (Second_epoch_access { matching_settled_neighbor = true }));
      Alcotest.(check (option st)) "no init-match from settled" None
        (step s Init_neighbor_matched))
    [ Shared; Private ]

(* ------------------------------------------------------------------ *)
(* Telemetry: run the dynamic detector on a real workload and check the
   recorded transition matrix against the sharing-decision counters. *)

let dynamic_run () =
  let w = Option.get (Dgrace_workloads.Registry.find "pbzip2") in
  let p = Dgrace_workloads.Workload.with_params ~scale:2 w in
  Dgrace_core.Engine.run
    ~policy:(Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 })
    ~spec:Dgrace_core.Spec.dynamic (w.program p)

let test_transition_telemetry () =
  let module M = Dgrace_obs.State_matrix in
  let module Mx = Dgrace_obs.Metrics in
  let s = dynamic_run () in
  let m = Option.get s.transitions in
  let count name =
    Option.value ~default:0 (Mx.find_counter s.metrics name)
  in
  Alcotest.(check bool) "ran" true (M.total m > 0);
  (* every recorded edge leaves a known state for a known state *)
  M.iter
    (fun ~from_ ~to_ ~count:_ ->
      ignore (M.state_name m from_);
      ignore (M.state_name m to_))
    m;
  (* a sharing decision is every transition that is not a race edge:
     decisions = total - (edges into the race state) *)
  let race_ix = 1 + Share_state.index Share_state.Race in
  Alcotest.(check int) "decisions = non-race transitions"
    (M.total m - M.col_total m race_ix)
    (count "sharing.decisions");
  Alcotest.(check int) "decisions split shared/private"
    (count "sharing.decisions")
    (count "sharing.decisions.shared" + count "sharing.decisions.private");
  (* the paper's bound: at most two decisions (temporary + firm) per
     location lifetime; lifetimes start at first access, a split, or by
     an address range being adopted into an existing region *)
  let lifetimes =
    count "cells.first_access" + count "cells.split" + count "cells.adopted"
  in
  Alcotest.(check bool)
    (Printf.sprintf "<= 2 decisions per lifetime (%d vs %d lifetimes)"
       (count "sharing.decisions") lifetimes)
    true
    (count "sharing.decisions" <= 2 * lifetimes);
  (* phase accounting: the same-epoch fast path and the analysed slow
     path partition the access stream *)
  Alcotest.(check int) "fast + analysed = accesses" s.stats.accesses
    (s.stats.same_epoch + count "accesses.analysed")

let suites : unit Alcotest.test list =
  [
    ( "state-machine.telemetry",
      [
        Alcotest.test_case "matrix vs decision counters" `Quick
          test_transition_telemetry;
      ] );
    ( "state-machine.figure2",
      [
        Alcotest.test_case "initial" `Quick test_initial;
        Alcotest.test_case "predicates" `Quick test_predicates;
        (* each arrow of Figure 2 *)
        Alcotest.test_case "init-private + neighbor -> init-shared" `Quick
          (check_step Init_private Init_neighbor_matched (Some Init_shared));
        Alcotest.test_case "init-shared + neighbor -> init-shared" `Quick
          (check_step Init_shared Init_neighbor_matched (Some Init_shared));
        Alcotest.test_case "init-private + 2nd epoch alone -> private" `Quick
          (check_step Init_private
             (Second_epoch_access { matching_settled_neighbor = false })
             (Some Private));
        Alcotest.test_case "init-private + 2nd epoch matched -> shared" `Quick
          (check_step Init_private
             (Second_epoch_access { matching_settled_neighbor = true })
             (Some Shared));
        Alcotest.test_case "init-shared + 2nd epoch alone -> private" `Quick
          (check_step Init_shared
             (Second_epoch_access { matching_settled_neighbor = false })
             (Some Private));
        Alcotest.test_case "init-shared + 2nd epoch matched -> shared" `Quick
          (check_step Init_shared
             (Second_epoch_access { matching_settled_neighbor = true })
             (Some Shared));
        Alcotest.test_case "private + adopted -> shared" `Quick
          (check_step Private Adopted_by_neighbor (Some Shared));
        Alcotest.test_case "shared + adopted -> shared" `Quick
          (check_step Shared Adopted_by_neighbor (Some Shared));
        Alcotest.test_case "shared + dissolved -> race" `Quick
          (check_step Shared Sharing_dissolved (Some Race));
        Alcotest.test_case "init-shared + dissolved -> race" `Quick
          (check_step Init_shared Sharing_dissolved (Some Race));
        Alcotest.test_case "private + dissolved undefined" `Quick
          (check_step Private Sharing_dissolved None);
        Alcotest.test_case "init-private + adopted undefined" `Quick
          (check_step Init_private Adopted_by_neighbor None);
        Alcotest.test_case "race absorbing" `Quick test_race_absorbing;
        Alcotest.test_case "race-on-l total" `Quick test_race_on_l_total;
        Alcotest.test_case "settled states are final" `Quick test_settled_final;
      ] );
  ]
