(* The serve stack: wire framing, the streamed trace codec, crash-only
   sessions, the supervised domain pool, the socket server (concurrent
   differential vs the one-shot engine, backpressure, drain, watchdog),
   spool mode, and the wire-level fault harness. *)

open Dgrace_events
open Dgrace_core
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error
module Json = Dgrace_obs.Json
module Clock = Dgrace_obs.Clock
module Wire = Dgrace_serve.Wire
module Codec = Dgrace_trace.Trace_codec
module Session = Dgrace_serve.Session
module Pool = Dgrace_serve.Pool
module Server = Dgrace_serve.Server
module Client = Dgrace_serve.Client
module Chaos = Dgrace_serve.Chaos

(* ------------------------------------------------------------------ *)
(* shared fixtures *)

(* Two unsynchronised writers over a small set of addresses plus a
   clean locked region: a deterministic multi-race stream. *)
let racy_events () =
  let open Tutil in
  [ fork 0 1; fork 0 2 ]
  @ List.concat_map
      (fun i ->
        let addr = 0x1000 + i mod 8 * 4 in
        [
          wr ~loc:"racy.c:w1" 1 addr;
          wr ~loc:"racy.c:w2" 2 addr;
          acq 1; wr ~loc:"racy.c:locked" 1 0x9000; rel 1;
          acq 2; rd ~loc:"racy.c:locked" 2 0x9000; rel 2;
        ])
      (List.init 100 Fun.id)
  @ [ Event.Thread_exit { tid = 1 }; Event.Thread_exit { tid = 2 } ]

let race_lines (s : Engine.summary) = List.map Report.to_string s.races

let baseline_lines ?vc_intern events =
  race_lines (Engine.replay ?vc_intern ~spec:Spec.dynamic (List.to_seq events))

let temp_socket () =
  let p = Filename.temp_file "dgrace-serve" ".sock" in
  Sys.remove p;
  p

(* substring check for error-message assertions *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let temp_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dgrace-spool-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o700;
  d

(* ------------------------------------------------------------------ *)
(* wire framing *)

let frames_equal a b =
  match (a, b) with
  | Wire.Feed x, Wire.Feed y
  | Wire.Feed_batch x, Wire.Feed_batch y
  | Wire.Race x, Wire.Race y ->
    x = y
  | Wire.Finish, Wire.Finish | Wire.Status, Wire.Status -> true
  | Wire.Open x, Wire.Open y
  | Wire.Opened x, Wire.Opened y
  | Wire.Ack x, Wire.Ack y
  | Wire.Summary x, Wire.Summary y
  | Wire.Err x, Wire.Err y
  | Wire.Overloaded x, Wire.Overloaded y
  | Wire.Status_doc x, Wire.Status_doc y ->
    Json.equal x y
  | _ -> false

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  let sample = Json.Obj [ ("spec", Json.String "dynamic"); ("n", Json.Int 3) ] in
  let all =
    [
      Wire.Open sample; Wire.Feed "\x00\x01binary\xff";
      Wire.Feed_batch "\x00\x01block\xff"; Wire.Finish;
      Wire.Status; Wire.Opened sample; Wire.Ack sample; Wire.Race "race on 0x1";
      Wire.Summary sample; Wire.Err sample; Wire.Overloaded sample;
      Wire.Status_doc sample;
    ]
  in
  List.iter
    (fun f ->
      with_socketpair (fun a b ->
          Wire.write a f;
          match Wire.read b with
          | Ok (Some g) ->
            Alcotest.(check bool)
              (Printf.sprintf "roundtrip '%c'" (Wire.type_byte f))
              true (frames_equal f g)
          | Ok None -> Alcotest.fail "unexpected EOF"
          | Error e -> Alcotest.fail e))
    all

let test_wire_eof_and_garbage () =
  (* clean EOF on a frame boundary *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Wire.read b with
      | Ok None -> ()
      | _ -> Alcotest.fail "expected clean EOF");
  (* unknown type byte *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00\x00\x00Z" 0 5);
      match Wire.read b with
      | Error e ->
        Alcotest.(check bool) "names the byte" true
          (contains ~affix:"unknown frame type" e)
      | _ -> Alcotest.fail "garbage type accepted");
  (* over-limit length *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\xff\xff\xff\xff\xff" 0 5);
      match Wire.read b with
      | Error e ->
        Alcotest.(check bool) "names the limit" true
          (contains ~affix:"exceeds limit" e)
      | _ -> Alcotest.fail "oversize length accepted");
  (* peer vanishing mid-frame *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00\x00\x10F12" 0 7);
      Unix.close a;
      match Wire.read b with
      | Error e ->
        Alcotest.(check bool) "truncated payload" true
          (contains ~affix:"truncated frame" e)
      | _ -> Alcotest.fail "truncated frame accepted")

(* ------------------------------------------------------------------ *)
(* trace codec *)

let test_codec_roundtrip_across_frames () =
  let events = racy_events () in
  let enc = Codec.encoder () in
  let chunk evs =
    let buf = Buffer.create 256 in
    List.iter (Codec.encode enc buf) evs;
    Buffer.contents buf
  in
  let rec split3 = function
    | a :: b :: c :: rest ->
      let xs, ys, zs = split3 rest in
      (a :: xs, b :: ys, c :: zs)
    | rest -> (rest, [], [])
  in
  let c1, c2, c3 = split3 events in
  let dec = Codec.decoder () in
  let decode payload =
    match Codec.decode_frame dec payload with
    | Ok evs -> evs
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  (* locations sent in frame 1 must resolve by id in frames 2 and 3 *)
  let round = decode (chunk c1) @ decode (chunk c2) @ decode (chunk c3) in
  Alcotest.(check int) "count" (List.length events) (List.length round);
  Alcotest.(check bool) "payload equal" true (List.sort compare events = List.sort compare round)

let test_codec_corruption_absolute_offset () =
  let dec = Codec.decoder () in
  let first = Codec.encode_all (racy_events ()) in
  (match Codec.decode_frame dec first with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Error.to_string e));
  match Codec.decode_frame dec "\xee\xee\xee" with
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error (Error.Corrupt_trace { offset; reason; _ }) ->
    Alcotest.(check bool) "offset is absolute in the stream" true
      (offset >= String.length first);
    Alcotest.(check bool) "names the tag" true
      (contains ~affix:"unknown tag" reason)
  | Error e -> Alcotest.fail (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* sessions *)

let test_session_matches_oneshot () =
  let events = racy_events () in
  let s = Session.open_ ~id:0 ~spec:Spec.dynamic () in
  (match Session.feed_frame s (Codec.encode_all events) with
   | Ok ack ->
     Alcotest.(check int) "events acked" (List.length events)
       ack.Session.ack_events
   | Error e -> Alcotest.fail (Error.to_string e));
  match Session.finalize s with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok summary ->
    Alcotest.(check (list string))
      "same races as Engine.replay" (baseline_lines events)
      (race_lines summary);
    Alcotest.(check int) "shadow released" 0 (Session.shadow_bytes s);
    (* finalize is idempotent *)
    (match Session.finalize s with
     | Ok again ->
       Alcotest.(check (list string))
         "idempotent" (race_lines summary) (race_lines again)
     | Error e -> Alcotest.fail (Error.to_string e))

let test_session_poisoned_by_corrupt_frame () =
  let s = Session.open_ ~id:1 ~spec:Spec.dynamic () in
  (match Session.feed_frame s (Codec.encode_all (racy_events ())) with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Error.to_string e));
  let stored =
    match Session.feed_frame s "\xee\xee" with
    | Ok _ -> Alcotest.fail "corrupt frame accepted"
    | Error e -> e
  in
  (match stored with
   | Error.Corrupt_trace _ -> ()
   | e -> Alcotest.fail ("wrong error: " ^ Error.to_string e));
  (match Session.state s with
   | `Poisoned _ -> ()
   | _ -> Alcotest.fail "not poisoned");
  Alcotest.(check int) "shadow released on poison" 0 (Session.shadow_bytes s);
  Alcotest.(check (list string)) "no races from a poisoned session" []
    (List.map Report.to_string (Session.races_so_far s));
  (* every later call answers the stored error *)
  (match Session.feed_events s [ Tutil.wr 1 0x1000 ] with
   | Error e ->
     Alcotest.(check string) "feed answers stored error"
       (Error.to_string stored) (Error.to_string e)
   | Ok _ -> Alcotest.fail "poisoned session accepted events");
  match Session.finalize s with
  | Error e ->
    Alcotest.(check string) "finalize answers stored error"
      (Error.to_string stored) (Error.to_string e)
  | Ok _ -> Alcotest.fail "poisoned session finalized"

let test_session_contains_crashing_detector () =
  let d =
    { (Dgrace_detectors.Detector.null ()) with
      on_event = (fun _ -> failwith "detector bug");
    }
  in
  let s = Session.of_detector ~id:2 d in
  (match Session.feed_events s [ Tutil.wr 1 0x1000 ] with
   | Error (Error.Internal { where; reason }) ->
     Alcotest.(check string) "where" "session.detector" where;
     Alcotest.(check bool) "reason" true
       (contains ~affix:"detector bug" reason)
   | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
   | Ok _ -> Alcotest.fail "crash not contained");
  match Session.state s with
  | `Poisoned (Error.Internal _) -> ()
  | _ -> Alcotest.fail "not poisoned by crash"

let test_session_budget_stop_is_answerable () =
  let events = racy_events () in
  let s =
    Session.open_ ~budget:(Budget.make ~max_events:50 ()) ~id:3
      ~spec:Spec.dynamic ()
  in
  (match Session.feed_events s events with
   | Error (Error.Budget_exhausted { budget; _ }) ->
     Alcotest.(check string) "events budget" "events" budget
   | Error e -> Alcotest.fail (Error.to_string e)
   | Ok _ -> Alcotest.fail "budget not enforced");
  Alcotest.(check bool) "stopped" true (Session.state s = `Stopped);
  (* further feeds keep answering the budget error... *)
  (match Session.feed_events s [ Tutil.wr 1 0x1000 ] with
   | Error (Error.Budget_exhausted _) -> ()
   | _ -> Alcotest.fail "stopped session did not answer budget error");
  (* ...while finalize returns the sealed partial summary *)
  match Session.finalize s with
  | Ok summary -> (
    match summary.Engine.partial with
    | Some (Budget.Max_events { limit }) ->
      Alcotest.(check int) "limit" 50 limit
    | _ -> Alcotest.fail "summary not flagged partial")
  | Error e -> Alcotest.fail (Error.to_string e)

let test_session_deadline_on_mock_clock () =
  (* one second per clock reading; the deadline poll (every 256 events)
     crosses 3 s deterministically, with zero real waiting *)
  let clock = Clock.ticker ~step:1_000_000_000 () in
  let s =
    Session.open_ ~budget:(Budget.make ~deadline_s:3.0 ()) ~clock ~id:4
      ~spec:Spec.dynamic ()
  in
  let events = List.init 2000 (fun i -> Tutil.wr 1 (0x1000 + (i mod 32) * 4)) in
  (match Session.feed_events s events with
   | Error (Error.Budget_exhausted { budget; _ }) ->
     Alcotest.(check string) "deadline budget" "deadline_s" budget
   | Error e -> Alcotest.fail (Error.to_string e)
   | Ok _ -> Alcotest.fail "mock deadline not enforced");
  match Session.finalize s with
  | Ok summary -> (
    match summary.Engine.partial with
    | Some (Budget.Deadline _) -> ()
    | _ -> Alcotest.fail "not a deadline stop")
  | Error e -> Alcotest.fail (Error.to_string e)

let test_session_expiry_watchdog_hook () =
  let clock = Clock.ticker ~step:1_000_000_000 () in
  let s = Session.open_ ~clock ~id:5 ~spec:Spec.dynamic () in
  (match Session.feed_events s [ Tutil.wr 1 0x1000 ] with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Error.to_string e));
  (match Session.expire_if_over s ~deadline_s:0.5 with
   | Some summary ->
     Alcotest.(check bool) "partial" true (summary.Engine.partial <> None)
   | None -> Alcotest.fail "expiry did not fire");
  Alcotest.(check bool) "stopped" true (Session.state s = `Stopped);
  (* expiry is one-shot *)
  match Session.expire_if_over s ~deadline_s:0.5 with
  | None -> ()
  | Some _ -> Alcotest.fail "expired twice"

(* ------------------------------------------------------------------ *)
(* pool supervision *)

let wait_for ?(timeout_s = 5.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let test_pool_runs_jobs () =
  let pool = Pool.create ~domains:3 () in
  let n = Atomic.make 0 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "submitted" true
      (Pool.submit pool (fun () -> Atomic.incr n))
  done;
  Alcotest.(check bool) "all ran" true (wait_for (fun () -> Atomic.get n = 50));
  Pool.shutdown pool;
  Alcotest.(check int) "no restarts" 0 (Pool.restarts pool);
  Alcotest.(check int) "all workers exited" 0 (Pool.alive pool);
  Alcotest.(check bool) "rejects after shutdown" false
    (Pool.submit pool (fun () -> ()))

let test_pool_restart_and_backoff () =
  let backoffs = ref [] in
  let mu = Mutex.create () in
  let pool =
    Pool.create ~domains:1 ~max_restarts:4 ~backoff0_s:0.01
      ~sleep:(fun s ->
        Mutex.lock mu;
        backoffs := s :: !backoffs;
        Mutex.unlock mu)
      ()
  in
  let n = Atomic.make 0 in
  Alcotest.(check bool) "crashing job accepted" true
    (Pool.submit pool (fun () -> failwith "worker bug"));
  Alcotest.(check bool) "worker restarted" true
    (wait_for (fun () -> Pool.restarts pool = 1));
  (* the replacement domain keeps serving the queue *)
  for _ = 1 to 5 do
    ignore (Pool.submit pool (fun () -> Atomic.incr n))
  done;
  Alcotest.(check bool) "replacement ran the queue" true
    (wait_for (fun () -> Atomic.get n = 5));
  ignore (Pool.submit pool (fun () -> failwith "again"));
  Alcotest.(check bool) "second restart" true
    (wait_for (fun () -> Pool.restarts pool = 2));
  Pool.shutdown pool;
  (* capped exponential: 0.01, then 0.02 *)
  let sorted = List.sort compare !backoffs in
  Alcotest.(check (list (float 1e-9))) "backoff doubles" [ 0.01; 0.02 ] sorted;
  Alcotest.(check int) "nothing permanently lost" 0 (Pool.lost pool)

let test_pool_restart_budget_spent () =
  let pool =
    Pool.create ~domains:1 ~max_restarts:0 ~sleep:(fun _ -> ()) ()
  in
  ignore (Pool.submit pool (fun () -> failwith "fatal"));
  Alcotest.(check bool) "worker stays down" true
    (wait_for (fun () -> Pool.lost pool = 1));
  Alcotest.(check int) "no restarts granted" 0 (Pool.restarts pool);
  Alcotest.(check int) "capacity degraded" 0 (Pool.alive pool);
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* socket server *)

let with_server ?(cfg = { Server.default_config with domains = 3 }) f =
  let socket = temp_socket () in
  let server = Server.start ~cfg ~socket () in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server socket)

let test_server_concurrent_differential () =
  let events = racy_events () in
  let oracle = baseline_lines events in
  (* the oracle itself is stable across the engine's own modes *)
  List.iter
    (fun batched ->
      Alcotest.(check (list string))
        (Printf.sprintf "sharded oracle agrees (batched=%b)" batched)
        oracle
        (race_lines
           (Engine.replay_sharded ~batched ~shards:4 ~spec:Spec.dynamic
              (List.to_seq events))))
    [ true; false ];
  Alcotest.(check (list string))
    "no-intern oracle agrees" oracle
    (baseline_lines ~vc_intern:false events);
  with_server (fun _server socket ->
      (* N concurrent sessions across client configurations — half over
         'E' event frames, half over 'B' v2-block batch frames: every
         one must report the oracle's races, byte for byte *)
      let configs =
        [
          (`Events, true, 512); (`Events, true, 64); (`Events, false, 512);
          (`Batches, true, 7); (`Batches, false, 131); (`Batches, true, 2048);
        ]
      in
      let results =
        List.map
          (fun (framing, vc_intern, chunk_events) ->
            let slot = ref (Error (Client.Protocol "not run")) in
            let th =
              Thread.create
                (fun () ->
                  slot :=
                    (match framing with
                     | `Events ->
                       Client.replay ~vc_intern ~chunk_events ~socket events
                     | `Batches ->
                       Client.replay_batched ~vc_intern ~chunk_events ~socket
                         events))
                ()
            in
            (th, slot))
          configs
      in
      List.iter (fun (th, _) -> Thread.join th) results;
      List.iteri
        (fun i (_, slot) ->
          match !slot with
          | Ok { Client.races; summary } ->
            Alcotest.(check (list string))
              (Printf.sprintf "client %d matches one-shot" i)
              oracle races;
            (match Json.member "races" summary with
             | Some (Json.Int n) ->
               Alcotest.(check int)
                 (Printf.sprintf "client %d summary count" i)
                 (List.length oracle) n
             | _ -> Alcotest.fail "summary missing race count")
          | Error f -> Alcotest.fail (Client.failure_to_string f))
        results)

let test_server_admission_overload () =
  let cfg = { Server.default_config with domains = 2; max_sessions = 1 } in
  with_server ~cfg (fun server socket ->
      match Client.connect ~socket with
      | Error f -> Alcotest.fail (Client.failure_to_string f)
      | Ok first ->
        (match Client.open_session first with
         | Ok _ -> ()
         | Error f -> Alcotest.fail (Client.failure_to_string f));
        (* a second session must be shed with a retry hint, raw on the
           wire so the client's auto-retry doesn't mask it *)
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        Wire.write fd (Wire.Open (Json.Obj []));
        (match Wire.read fd with
         | Ok (Some (Wire.Overloaded j)) ->
           Alcotest.(check bool) "retry hint" true
             (Json.member "retry_after_s" j <> None)
         | _ -> Alcotest.fail "expected Overloaded");
        Unix.close fd;
        Alcotest.(check bool) "shed counted" true (Server.shed_total server >= 1);
        (* finishing the first session frees the slot *)
        (match Client.finish first with
         | Ok _ -> ()
         | Error f -> Alcotest.fail (Client.failure_to_string f));
        Client.close first;
        match Client.replay ~socket (racy_events ()) with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Client.failure_to_string f))

let test_server_inbox_backpressure () =
  let cfg =
    { Server.default_config with domains = 1; inbox_frames = 2 }
  in
  with_server ~cfg (fun server socket ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          Wire.write fd (Wire.Open (Json.Obj []));
          (match Wire.read fd with
           | Ok (Some (Wire.Opened _)) -> ()
           | _ -> Alcotest.fail "open failed");
          (* one big frame keeps the only worker busy; tiny frames
             behind it overflow the 2-deep inbox.  One encoder for the
             whole connection: loc interning is per-session state. *)
          let enc = Codec.encoder () in
          let payload evs =
            let buf = Buffer.create 4096 in
            List.iter (Codec.encode enc buf) evs;
            Buffer.contents buf
          in
          let big =
            payload
              (List.init 300_000 (fun i -> Tutil.wr 0 (0x100000 + (i * 8))))
          in
          Wire.write fd (Wire.Feed big);
          let tiny = payload [ Tutil.wr 0 0x10 ] in
          let sent = 24 in
          for _ = 1 to sent do
            Wire.write fd (Wire.Feed tiny)
          done;
          let acks = ref 0 and overloaded = ref 0 in
          for _ = 1 to sent + 1 do
            match Wire.read fd with
            | Ok (Some (Wire.Ack _)) -> incr acks
            | Ok (Some (Wire.Overloaded _)) -> incr overloaded
            | Ok (Some (Wire.Race _)) -> ()
            | Ok (Some (Wire.Err j)) ->
              Alcotest.fail
                (Printf.sprintf "server error under backpressure: %s"
                   (Json.to_string ~minify:true j))
            | Ok (Some f) ->
              Alcotest.fail
                (Printf.sprintf "unexpected frame '%c' under backpressure"
                   (Wire.type_byte f))
            | Ok None -> Alcotest.fail "unexpected EOF under backpressure"
            | Error e -> Alcotest.fail e
          done;
          Alcotest.(check bool)
            (Printf.sprintf "some feeds shed (acks=%d overloaded=%d)" !acks
               !overloaded)
            true (!overloaded >= 1);
          Alcotest.(check bool) "shed counter" true
            (Server.shed_total server >= !overloaded)))

let test_server_drain_seals_partial () =
  let cfg =
    { Server.default_config with domains = 2; drain_deadline_s = 0.2 }
  in
  let socket = temp_socket () in
  let server = Server.start ~cfg ~socket () in
  match Client.connect ~socket with
  | Error f -> Alcotest.fail (Client.failure_to_string f)
  | Ok c ->
    (match Client.open_session c with
     | Ok _ -> ()
     | Error f -> Alcotest.fail (Client.failure_to_string f));
    (match Client.feed c (racy_events ()) with
     | Ok _ -> ()
     | Error f -> Alcotest.fail (Client.failure_to_string f));
    (* SIGTERM path: the session never sends Finish; drain must seal
       it as a partial summary *)
    Server.drain server;
    Alcotest.(check bool) "stopped" true (Server.stopped server);
    (match Client.finish c with
     | Ok summary ->
       (match Json.member "partial" summary with
        | Some (Json.Bool true) -> ()
        | _ -> Alcotest.fail "drained session not flagged partial");
       (match Json.member "races" summary with
        | Some (Json.Int n) ->
          Alcotest.(check int)
            "partial summary still reports the races"
            (List.length (baseline_lines (racy_events ())))
            n
        | _ -> Alcotest.fail "summary missing races")
     | Error f -> Alcotest.fail (Client.failure_to_string f));
    Client.close c;
    (* idempotent *)
    Server.drain server

let test_server_watchdog_expires_on_mock_clock () =
  let cfg =
    {
      Server.default_config with
      domains = 2;
      session_deadline_s = Some 1.0;
      clock = Clock.ticker ~step:100_000_000 ();  (* 0.1 s per reading *)
    }
  in
  with_server ~cfg (fun server socket ->
      match Client.connect ~socket with
      | Error f -> Alcotest.fail (Client.failure_to_string f)
      | Ok c ->
        (match Client.open_session c with
         | Ok _ -> ()
         | Error f -> Alcotest.fail (Client.failure_to_string f));
        (* every sweep reads the mock clock forward; the session must
           expire within a bounded number of sweeps, no real waiting *)
        let expired = ref 0 in
        let sweeps = ref 0 in
        while !expired = 0 && !sweeps < 100 do
          expired := Server.watchdog_sweep server;
          incr sweeps
        done;
        Alcotest.(check int) "one session expired" 1 !expired;
        (match Client.finish c with
         | Ok summary -> (
           match Json.member "partial" summary with
           | Some (Json.Bool true) -> ()
           | _ -> Alcotest.fail "expired session not partial")
         | Error f -> Alcotest.fail (Client.failure_to_string f));
        Client.close c)

let test_server_status_leak_free () =
  with_server (fun server socket ->
      let events = racy_events () in
      (match Client.replay ~socket events with
       | Ok _ -> ()
       | Error f -> Alcotest.fail (Client.failure_to_string f));
      (match
         Client.replay ~fault:Client.Garbage ~fault_after_frames:1 ~socket
           events
       with
       | Ok _ -> Alcotest.fail "faulted session completed"
       | Error _ -> ());
      let rec settle n =
        let j = Server.status_json server in
        let opened =
          match
            Option.bind (Json.member "sessions" j) (Json.member "open")
          with
          | Some (Json.Int k) -> k
          | _ -> -1
        in
        if opened = 0 || n = 0 then j
        else begin
          Thread.delay 0.02;
          settle (n - 1)
        end
      in
      let j = settle 200 in
      let get path =
        match
          List.fold_left
            (fun acc k -> Option.bind acc (Json.member k))
            (Some j) path
        with
        | Some (Json.Int n) -> n
        | _ -> -1
      in
      Alcotest.(check int) "finalized" 1 (get [ "sessions"; "finalized" ]);
      Alcotest.(check int) "poisoned" 1 (get [ "sessions"; "poisoned" ]);
      Alcotest.(check int) "no leaked shadow bytes" 0 (get [ "shadow_bytes" ]);
      Alcotest.(check int) "pool intact" (get [ "pool"; "domains" ])
        (get [ "pool"; "alive" ]))

(* ------------------------------------------------------------------ *)
(* wire-level fault isolation (the chaos gate, in process) *)

let test_chaos_matrix () =
  let events = racy_events () in
  List.iter
    (fun fault ->
      let outcome = Chaos.run ~events fault in
      Alcotest.(check bool) (Chaos.describe outcome) true
        (Chaos.acceptable outcome))
    [ Client.Garbage; Client.Truncate; Client.Disconnect ]

(* ------------------------------------------------------------------ *)
(* spool mode *)

let write_trace path events =
  ignore
    (Dgrace_trace.Trace_writer.to_file path (fun sink ->
         List.iter sink events))

let test_spool_matches_oneshot_and_isolates () =
  let dir = temp_dir () in
  let events = racy_events () in
  write_trace (Filename.concat dir "a.trc") events;
  write_trace (Filename.concat dir "b.trc") [ Tutil.wr 0 0x10 ];
  let oc = open_out_bin (Filename.concat dir "corrupt.trc") in
  output_string oc "DGRT\x01\xee\xee\xee\xee";
  close_out oc;
  let results =
    Server.process_spool
      ~cfg:{ Server.default_config with domains = 2 }
      ~dir ()
  in
  (match results with
   | [ ("a.trc", Ok a); ("b.trc", Ok b); ("corrupt.trc", Error e) ] ->
     Alcotest.(check (list string))
       "a.trc matches one-shot" (baseline_lines events) (race_lines a);
     Alcotest.(check int) "b.trc clean" 0 b.Engine.race_count;
     (match e with
      | Error.Corrupt_trace _ -> ()
      | e -> Alcotest.fail ("wrong spool error: " ^ Error.to_string e))
   | _ -> Alcotest.fail "unexpected spool result shape");
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)

let suites : unit Alcotest.test list =
  [
    ( "serve.wire",
      [
        Alcotest.test_case "frame roundtrip" `Quick test_wire_roundtrip;
        Alcotest.test_case "EOF and garbage" `Quick test_wire_eof_and_garbage;
      ] );
    ( "serve.codec",
      [
        Alcotest.test_case "roundtrip across frames" `Quick
          test_codec_roundtrip_across_frames;
        Alcotest.test_case "corruption at absolute offset" `Quick
          test_codec_corruption_absolute_offset;
      ] );
    ( "serve.session",
      [
        Alcotest.test_case "matches one-shot replay" `Quick
          test_session_matches_oneshot;
        Alcotest.test_case "corrupt frame poisons" `Quick
          test_session_poisoned_by_corrupt_frame;
        Alcotest.test_case "contains a crashing detector" `Quick
          test_session_contains_crashing_detector;
        Alcotest.test_case "budget stop stays answerable" `Quick
          test_session_budget_stop_is_answerable;
        Alcotest.test_case "deadline on a mock clock" `Quick
          test_session_deadline_on_mock_clock;
        Alcotest.test_case "watchdog expiry hook" `Quick
          test_session_expiry_watchdog_hook;
      ] );
    ( "serve.pool",
      [
        Alcotest.test_case "runs jobs on domains" `Quick test_pool_runs_jobs;
        Alcotest.test_case "restart with capped backoff" `Quick
          test_pool_restart_and_backoff;
        Alcotest.test_case "restart budget spent" `Quick
          test_pool_restart_budget_spent;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "concurrent differential" `Slow
          test_server_concurrent_differential;
        Alcotest.test_case "admission overload" `Quick
          test_server_admission_overload;
        Alcotest.test_case "inbox backpressure" `Slow
          test_server_inbox_backpressure;
        Alcotest.test_case "drain seals partial" `Quick
          test_server_drain_seals_partial;
        Alcotest.test_case "watchdog on a mock clock" `Quick
          test_server_watchdog_expires_on_mock_clock;
        Alcotest.test_case "status shows no leaks" `Quick
          test_server_status_leak_free;
      ] );
    ( "serve.chaos",
      [ Alcotest.test_case "fault matrix isolated" `Slow test_chaos_matrix ] );
    ( "serve.spool",
      [
        Alcotest.test_case "matches one-shot, isolates corruption" `Quick
          test_spool_matches_oneshot_and_isolates;
      ] );
  ]
