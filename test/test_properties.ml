(* Cross-detector property tests on randomly generated programs.

   Programs are generated as per-thread operation lists and executed by
   the simulator under a seeded random scheduler, so every detector
   sees exactly the same interleaving. *)

open Dgrace_sim
open Dgrace_detectors
open Tutil

(* ------------------------------------------------------------------ *)
(* Random program generation *)

type op =
  | Oread of int * int  (* addr offset, size *)
  | Owrite of int * int
  | Olocked of int * op list  (* lock index, body *)
  | Oyield

let rec pp_op = function
  | Oread (a, s) -> Printf.sprintf "r%d+%d" a s
  | Owrite (a, s) -> Printf.sprintf "w%d+%d" a s
  | Olocked (l, body) ->
    Printf.sprintf "L%d{%s}" l (String.concat ";" (List.map pp_op body))
  | Oyield -> "y"

type prog = { nthreads : int; ops : op list list; sched_seed : int }

let pp_prog p =
  Printf.sprintf "seed=%d threads=[%s]" p.sched_seed
    (String.concat " | " (List.map (fun l -> String.concat ";" (List.map pp_op l)) p.ops))

(* [aligned] restricts accesses to whole words, the regime where the
   dynamic detector is meant to be as precise as byte granularity *)
let gen_op ~aligned =
  let open QCheck.Gen in
  let addr_size =
    if aligned then map (fun a -> (4 * a, 4)) (int_bound 15)
    else
      map2 (fun a s -> (a, s)) (int_bound 60) (oneofl [ 1; 2; 4; 8 ])
  in
  fix
    (fun self depth ->
      let base =
        [
          (4, map (fun (a, s) -> Oread (a, s)) addr_size);
          (4, map (fun (a, s) -> Owrite (a, s)) addr_size);
          (1, return Oyield);
        ]
      in
      let with_lock =
        if depth <= 0 then []
        else
          [
            ( 2,
              map2
                (fun l body -> Olocked (l, body))
                (int_bound 2)
                (list_size (int_bound 4) (self (depth - 1))) );
          ]
      in
      frequency (base @ with_lock))
    1

let gen_prog ~aligned =
  let open QCheck.Gen in
  map3
    (fun nthreads ops sched_seed -> { nthreads; ops; sched_seed })
    (int_range 2 4)
    (list_size (return 4) (list_size (int_bound 12) (gen_op ~aligned)))
    (int_bound 1000)

let arb_prog ~aligned = QCheck.make ~print:pp_prog (gen_prog ~aligned)

(* build a simulator program; [extra_sync] wraps every access in a
   global lock, making the program race-free by construction *)
let to_sim ?(global_lock = false) p () =
  let base = Sim.static_alloc 128 in
  let locks = Array.init 3 (fun _ -> Sim.mutex ()) in
  let glock = Sim.mutex () in
  let rec exec op =
    match op with
    | Oread (a, s) ->
      if global_lock then Sim.with_lock glock (fun () -> Sim.read (base + a) s)
      else Sim.read (base + a) s
    | Owrite (a, s) ->
      if global_lock then Sim.with_lock glock (fun () -> Sim.write (base + a) s)
      else Sim.write (base + a) s
    | Olocked (l, body) -> Sim.with_lock locks.(l) (fun () -> List.iter exec body)
    | Oyield -> Sim.yield ()
  in
  let threads = List.filteri (fun i _ -> i < p.nthreads) p.ops in
  let tids = List.map (fun ops -> Sim.spawn (fun () -> List.iter exec ops)) threads in
  List.iter Sim.join tids

let run_prog ?global_lock det p =
  run_detector
    ~policy:(Scheduler.Random_each p.sched_seed)
    det
    (to_sim ?global_lock p)

(* ------------------------------------------------------------------ *)
(* Properties *)

let report_addrs d =
  List.map (fun (r : Dgrace_events.Report.t) -> r.addr) (races d)
  |> List.sort_uniq compare

(* P1: DJIT+ and FastTrack report races at the same locations (on
   word-aligned programs, where the reporting units coincide) *)
let p_djit_equiv_fasttrack =
  QCheck.Test.make ~name:"DJIT+ = FastTrack (report locations)" ~count:150
    (arb_prog ~aligned:true) (fun p ->
      let ft = run_prog (Djit.create ~granularity:1 ()) p in
      let bt =
        run_prog (Dynamic_granularity.create ~sharing:false ()) p
      in
      report_addrs ft = report_addrs bt)

(* P2: under a global lock no happens-before detector reports anything *)
let p_no_false_positives =
  QCheck.Test.make ~name:"race-free programs yield no reports" ~count:100
    (arb_prog ~aligned:false) (fun p ->
      List.for_all
        (fun (_, d) -> race_count (run_prog ~global_lock:true d p) = 0)
        (hb_detectors ()))

(* P3: the paper claims "minimal loss in detection precision": clock
   sharing can in principle mask a race (a neighbour's ordered access
   refreshes the shared clock), so the guarantee is statistical, not
   absolute.  Over a fixed corpus of word-aligned random programs the
   dynamic detector must cover almost every racy byte the byte
   detector finds. *)
let test_dynamic_minimal_loss () =
  let rand = Random.State.make [| 2014 |] in
  let total = ref 0 and missed = ref 0 in
  for _ = 1 to 200 do
    let p = QCheck.Gen.generate1 ~rand (gen_prog ~aligned:true) in
    let byte = run_prog (Dynamic_granularity.create ~sharing:false ()) p in
    let dyn = run_prog (Dynamic_granularity.create ()) p in
    let d = racy_bytes dyn in
    List.iter
      (fun a ->
        incr total;
        if not (List.mem a d) then incr missed)
      (racy_bytes byte)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "missed %d of %d racy bytes (<2%%)" !missed !total)
    true
    (!total = 0 || float_of_int !missed /. float_of_int !total < 0.02)

(* P4: detection is deterministic *)
let p_deterministic =
  QCheck.Test.make ~name:"same seed, same reports" ~count:50
    (arb_prog ~aligned:false) (fun p ->
      let r1 = races (run_prog (Dynamic_granularity.create ()) p) in
      let r2 = races (run_prog (Dynamic_granularity.create ()) p) in
      List.map Dgrace_events.Report.to_string r1
      = List.map Dgrace_events.Report.to_string r2)

(* P5: analysing a recorded trace equals analysing the live run *)
let p_replay_equals_live =
  QCheck.Test.make ~name:"trace replay = live analysis" ~count:50
    (arb_prog ~aligned:false) (fun p ->
      let events = ref [] in
      let _ =
        Sim.run
          ~policy:(Scheduler.Random_each p.sched_seed)
          ~sink:(fun e -> events := e :: !events)
          (to_sim p)
      in
      let events = List.rev !events in
      List.for_all
        (fun (_, mk) ->
          let live = run_prog (mk ()) p in
          let replay = feed_events (mk ()) events in
          racy_bytes live = racy_bytes replay)
        [
          ("byte", fun () -> Dynamic_granularity.create ~sharing:false ());
          ("dynamic", fun () -> Dynamic_granularity.create ());
          ("drd", fun () -> Drd_segment.create ());
        ])

(* P6: every unordered write-write conflict seeded explicitly is found *)
let p_seeded_conflict_found =
  QCheck.Test.make ~name:"seeded conflicting pair is detected" ~count:100
    (QCheck.pair (arb_prog ~aligned:true) (QCheck.make (QCheck.Gen.int_bound 15)))
    (fun (p, slot) ->
      (* append an unprotected write to a fresh address in two threads *)
      let off = 256 + (4 * slot) in
      let addr = 0x1000 + off (* static_alloc hands out the base at 0x1000 *) in
      let p =
        { p with ops = List.map (fun ops -> ops @ [ Owrite (off, 4) ]) p.ops }
      in
      List.for_all
        (fun (_, d) ->
          let d = run_prog d p in
          List.exists
            (fun (r : Dgrace_events.Report.t) ->
              r.granule_lo <= addr && addr < r.granule_hi)
            (races d))
        [
          ("byte", Dynamic_granularity.create ~sharing:false ());
          ("dynamic", Dynamic_granularity.create ());
          ("dynamic-ext",
           Dynamic_granularity.create ~reshare_after:4 ~write_guided_reads:true ());
          ("djit", Djit.create ());
          ("drd", Drd_segment.create ());
        ])

(* regression: heavy lock contention with many threads stays bounded
   in time and clock storage for every happens-before detector (the
   thread/lock clock mutual-join pattern once blew up exponentially
   beyond 5 threads) *)
let test_many_thread_contention_bounded () =
  let kernel () =
    let open Dgrace_sim in
    let arr = Sim.static_alloc 256 in
    let m = Sim.mutex () in
    let ts =
      List.init 12 (fun _ -> Sim.spawn (fun () ->
          for i = 0 to 63 do
            Sim.with_lock m (fun () ->
                Sim.read (arr + (4 * (i mod 64))) 4;
                Sim.write (arr + (4 * (i mod 64))) 4)
          done))
    in
    List.iter Sim.join ts
  in
  List.iter
    (fun (n, d) ->
      let d = run_detector d kernel in
      Alcotest.(check int) (n ^ ": race free") 0 (race_count d);
      Alcotest.(check bool) (n ^ ": clock bytes bounded") true
        (Dgrace_shadow.Accounting.peak_vc_bytes d.Detector.account < 10_000_000))
    (hb_detectors ())

(* ------------------------------------------------------------------ *)
(* Vector_clock laws.  [join] is the lattice operation every
   happens-before edge goes through; these properties guard both its
   algebra (idempotent / commutative / monotone least upper bound) and
   the storage discipline behind the documented exponential-blow-up
   fix in lib/vclock/vector_clock.ml: joining must never grow a clock
   beyond the largest tid actually seen. *)

module Vc = Dgrace_vclock.Vector_clock
module Epoch = Dgrace_vclock.Epoch

(* clocks as sparse (tid, clock) assignment lists; positive clocks
   only, so [max_tid_set] and "max tid seen" coincide *)
let gen_vc_entries =
  QCheck.Gen.(
    list_size (int_bound 12)
      (pair (int_bound 40) (map (fun c -> c + 1) (int_bound 1000))))

let vc_of_entries entries =
  let vc = Vc.create () in
  List.iter (fun (tid, c) -> Vc.set vc tid c) entries;
  vc

let pp_entries entries =
  Vc.to_string (vc_of_entries entries)

let arb_vc = QCheck.make ~print:pp_entries gen_vc_entries
let arb_vc2 = QCheck.pair arb_vc arb_vc

let joined a b =
  let j = Vc.copy a in
  Vc.join j b;
  j

let max_entry_tid entries =
  List.fold_left (fun acc (tid, _) -> max acc tid) (-1) entries

let p_join_idempotent =
  QCheck.Test.make ~name:"vc: join is idempotent" ~count:500 arb_vc
    (fun entries ->
      let a = vc_of_entries entries in
      Vc.equal (joined a a) a)

let p_join_commutative =
  QCheck.Test.make ~name:"vc: join is commutative" ~count:500 arb_vc2
    (fun (ea, eb) ->
      let a = vc_of_entries ea and b = vc_of_entries eb in
      Vc.equal (joined a b) (joined b a))

let p_join_monotone =
  QCheck.Test.make ~name:"vc: join is the least upper bound w.r.t. leq"
    ~count:500 arb_vc2 (fun (ea, eb) ->
      let a = vc_of_entries ea and b = vc_of_entries eb in
      let j = joined a b in
      (* upper bound *)
      Vc.leq a j && Vc.leq b j
      (* least: already-ordered operands add nothing *)
      && ((not (Vc.leq a b)) || Vc.equal (joined b a) b)
      && ((not (Vc.leq b a)) || Vc.equal (joined a b) a))

let p_assign_equal =
  QCheck.Test.make ~name:"vc: assign makes clocks equal" ~count:500 arb_vc2
    (fun (ea, eb) ->
      let a = vc_of_entries ea and b = vc_of_entries eb in
      Vc.assign a b;
      Vc.equal a b && Vc.leq a b && Vc.leq b a)

let p_epoch_leq_agrees =
  QCheck.Test.make
    ~name:"vc: epoch_leq e vc <=> leq (of_epoch e) vc" ~count:500
    (QCheck.pair (QCheck.pair (QCheck.int_bound 40) (QCheck.int_bound 1000))
       arb_vc)
    (fun ((tid, clock), entries) ->
      let e = Epoch.make ~tid ~clock in
      let vc = vc_of_entries entries in
      Vc.epoch_leq e vc = Vc.leq (Vc.of_epoch e) vc)

let p_join_capacity_bounded =
  QCheck.Test.make
    ~name:"vc: join adds no storage beyond its operands" ~count:500 arb_vc2
    (fun (ea, eb) ->
      let a = vc_of_entries ea and b = vc_of_entries eb in
      let j = joined a b in
      (* the blow-up fix: join grows dst exactly to src's length, never
         to an amortised doubled capacity *)
      Vc.size j <= max (Vc.size a) (Vc.size b)
      && Vc.max_tid_set j = max (Vc.max_tid_set a) (Vc.max_tid_set b)
      && Vc.max_tid_set j <= max (max_entry_tid ea) (max_entry_tid eb)
      (* and under repeated mutual joins — the thread/lock contention
         pattern — storage reaches a fixed point instead of doubling
         every round *)
      &&
      let cap_a = ref (Vc.size a) and cap_b = ref (Vc.size b) in
      let stable = ref true in
      for _ = 1 to 50 do
        Vc.join a b;
        Vc.join b a;
        if Vc.size a > max !cap_a !cap_b || Vc.size b > max !cap_a !cap_b then
          stable := false;
        cap_a := Vc.size a;
        cap_b := Vc.size b
      done;
      !stable)

let suites : unit Alcotest.test list =
  [
    ( "properties.vclock",
      List.map QCheck_alcotest.to_alcotest
        [
          p_join_idempotent;
          p_join_commutative;
          p_join_monotone;
          p_assign_equal;
          p_epoch_leq_agrees;
          p_join_capacity_bounded;
        ] );
    ( "properties.cross-detector",
      List.map QCheck_alcotest.to_alcotest
        [
          p_djit_equiv_fasttrack;
          p_no_false_positives;
          p_deterministic;
          p_replay_equals_live;
          p_seeded_conflict_found;
        ]
      @ [
          Alcotest.test_case "dynamic minimal precision loss" `Slow
            test_dynamic_minimal_loss;
          Alcotest.test_case "many-thread contention bounded" `Quick
            test_many_thread_contention_bounded;
        ] );
  ]
