(* Vector clocks and epochs: unit tests for the representation and
   qcheck laws for the join-semilattice structure that happens-before
   detection relies on. *)

open Dgrace_vclock

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Epoch *)

let test_epoch_pack () =
  let e = Epoch.make ~tid:7 ~clock:123 in
  check_int "tid" 7 (Epoch.tid e);
  check_int "clock" 123 (Epoch.clock e);
  check "none is none" true (Epoch.is_none Epoch.none);
  check "real epoch is not none" false (Epoch.is_none e);
  Alcotest.check_raises "tid too large" (Invalid_argument "Epoch.make: tid 1024 out of range")
    (fun () -> ignore (Epoch.make ~tid:1024 ~clock:1));
  Alcotest.check_raises "negative clock" (Invalid_argument "Epoch.make: negative clock")
    (fun () -> ignore (Epoch.make ~tid:0 ~clock:(-1)))

let test_epoch_pp () =
  Alcotest.(check string) "pp" "5@2" (Epoch.to_string (Epoch.make ~tid:2 ~clock:5));
  Alcotest.(check string) "pp none" "-" (Epoch.to_string Epoch.none)

let epoch_roundtrip =
  QCheck.Test.make ~name:"epoch pack/unpack roundtrip" ~count:500
    QCheck.(pair (int_bound Epoch.max_tid) (int_bound 1_000_000))
    (fun (tid, clock) ->
      let e = Epoch.make ~tid ~clock in
      Epoch.tid e = tid && Epoch.clock e = clock)

(* ------------------------------------------------------------------ *)
(* Vector clock *)

let test_get_set () =
  let vc = Vector_clock.create () in
  check_int "unset is 0" 0 (Vector_clock.get vc 5);
  Vector_clock.set vc 5 42;
  check_int "set" 42 (Vector_clock.get vc 5);
  check_int "beyond capacity is 0" 0 (Vector_clock.get vc 1000);
  Vector_clock.tick vc 5;
  check_int "tick" 43 (Vector_clock.get vc 5);
  Vector_clock.tick vc 9;
  check_int "tick from 0" 1 (Vector_clock.get vc 9)

let test_join_leq () =
  let a = Vector_clock.create () and b = Vector_clock.create () in
  Vector_clock.set a 0 3;
  Vector_clock.set b 1 5;
  check "incomparable a<=b" false (Vector_clock.leq a b);
  check "incomparable b<=a" false (Vector_clock.leq b a);
  Vector_clock.join a b;
  check_int "join keeps own" 3 (Vector_clock.get a 0);
  check_int "join takes other" 5 (Vector_clock.get a 1);
  check "b <= join" true (Vector_clock.leq b a)

let test_equal_ignores_capacity () =
  let a = Vector_clock.create ~capacity:2 () in
  let b = Vector_clock.create ~capacity:32 () in
  Vector_clock.set a 1 7;
  Vector_clock.set b 1 7;
  check "equal across capacities" true (Vector_clock.equal a b);
  Vector_clock.set b 20 1;
  check "not equal" false (Vector_clock.equal a b)

let test_epoch_leq () =
  let vc = Vector_clock.create () in
  Vector_clock.set vc 2 10;
  check "ordered" true (Vector_clock.epoch_leq (Epoch.make ~tid:2 ~clock:10) vc);
  check "not ordered" false (Vector_clock.epoch_leq (Epoch.make ~tid:2 ~clock:11) vc);
  check "none before everything" true (Vector_clock.epoch_leq Epoch.none vc)

let test_of_epoch () =
  let vc = Vector_clock.of_epoch (Epoch.make ~tid:3 ~clock:9) in
  check_int "component" 9 (Vector_clock.get vc 3);
  check_int "others" 0 (Vector_clock.get vc 0);
  check_int "max_tid_set" 3 (Vector_clock.max_tid_set vc)

let test_assign_copy () =
  let a = Vector_clock.create () in
  Vector_clock.set a 1 4;
  let b = Vector_clock.copy a in
  Vector_clock.set a 1 9;
  check_int "copy is independent" 4 (Vector_clock.get b 1);
  Vector_clock.set b 7 2;
  Vector_clock.assign b a;
  check "assign makes equal" true (Vector_clock.equal a b);
  check_int "assign cleared stale component" 0 (Vector_clock.get b 7)

(* regression: two clocks that repeatedly join each other (the
   thread/lock pattern under contention) must not inflate each other's
   storage — this once grew exponentially with >5 threads *)
let test_mutual_join_capacity_stable () =
  let a = Vector_clock.create () and b = Vector_clock.create () in
  Vector_clock.set a 8 1;
  (* b starts smaller; repeated mutual joins must converge, not race *)
  for i = 1 to 1000 do
    Vector_clock.set a 8 i;
    Vector_clock.join b a;
    Vector_clock.set b 3 i;
    Vector_clock.join a b
  done;
  check "a stays small" true (Vector_clock.heap_words a < 64);
  check "b stays small" true (Vector_clock.heap_words b < 64)

(* PR 5 regression: assign must reuse the destination's array when the
   source fits its capacity, and the join/assign fast paths must be
   allocation-free in steady state.  Minor-word deltas, not timings —
   stable on any machine. *)
let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_assign_reuses_array () =
  let src = Vector_clock.create () in
  Vector_clock.set src 5 9;
  let dst = Vector_clock.create ~capacity:8 () in
  Vector_clock.set dst 7 3;
  let arr_before = Vector_clock.raw dst in
  Vector_clock.assign dst src;
  check "content assigned" true (Vector_clock.equal dst src);
  check "array reused" true (Vector_clock.raw dst == arr_before);
  (* a wider source must still grow the destination correctly *)
  Vector_clock.set src 20 1;
  Vector_clock.assign dst src;
  check "grown content" true (Vector_clock.equal dst src)

let test_steady_state_allocation_free () =
  let a = Vector_clock.create () and b = Vector_clock.create () in
  for t = 0 to 7 do
    Vector_clock.set a t (t + 1);
    Vector_clock.set b t (8 - t)
  done;
  (* warm up: after the first round every capacity is settled *)
  Vector_clock.assign b a;
  Vector_clock.join b a;
  let iters = 1000 in
  let words =
    minor_words_of (fun () ->
        for i = 1 to iters do
          Vector_clock.set a 3 i;
          Vector_clock.assign b a;
          Vector_clock.join b a;
          ignore (Vector_clock.leq a b : bool)
        done)
  in
  (* zero in practice; the slack absorbs instrumentation noise *)
  if words >= 256. then
    Alcotest.failf "assign/join/leq allocated %.0f minor words / %d iters"
      words iters

let test_fold_pp () =
  let vc = Vector_clock.create () in
  Vector_clock.set vc 0 1;
  Vector_clock.set vc 2 3;
  let sum = Vector_clock.fold (fun _ c acc -> acc + c) vc 0 in
  check_int "fold over non-zero" 4 sum;
  Alcotest.(check string) "pp" "<1, 0, 3>" (Vector_clock.to_string vc)

(* qcheck: generate small clocks as lists of (tid, clock) *)
let gen_vc =
  QCheck.Gen.(
    map
      (fun l ->
        let vc = Vector_clock.create () in
        List.iter (fun (t, c) -> Vector_clock.set vc t c) l;
        vc)
      (small_list (pair (int_bound 12) (int_bound 50))))

let arb_vc = QCheck.make ~print:Vector_clock.to_string gen_vc

let join_into a b =
  let r = Vector_clock.copy a in
  Vector_clock.join r b;
  r

let law_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:300 (QCheck.pair arb_vc arb_vc)
    (fun (a, b) -> Vector_clock.equal (join_into a b) (join_into b a))

let law_join_associative =
  QCheck.Test.make ~name:"join associative" ~count:300
    (QCheck.triple arb_vc arb_vc arb_vc) (fun (a, b, c) ->
      Vector_clock.equal (join_into (join_into a b) c) (join_into a (join_into b c)))

let law_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:300 arb_vc (fun a ->
      Vector_clock.equal (join_into a a) a)

let law_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      let j = join_into a b in
      Vector_clock.leq a j && Vector_clock.leq b j)

let law_leq_antisym =
  QCheck.Test.make ~name:"leq antisymmetric" ~count:300 (QCheck.pair arb_vc arb_vc)
    (fun (a, b) ->
      if Vector_clock.leq a b && Vector_clock.leq b a then Vector_clock.equal a b
      else true)

let law_leq_transitive =
  QCheck.Test.make ~name:"leq transitive via join" ~count:300
    (QCheck.triple arb_vc arb_vc arb_vc) (fun (a, b, c) ->
      (* a <= a⊔b <= (a⊔b)⊔c *)
      let ab = join_into a b in
      let abc = join_into ab c in
      Vector_clock.leq a ab && Vector_clock.leq ab abc && Vector_clock.leq a abc)

let law_epoch_leq_consistent =
  QCheck.Test.make ~name:"epoch_leq agrees with leq of of_epoch" ~count:300
    (QCheck.pair (QCheck.pair (QCheck.int_bound 12) (QCheck.int_bound 50)) arb_vc)
    (fun ((tid, clock), vc) ->
      let e = Epoch.make ~tid ~clock in
      Vector_clock.epoch_leq e vc = Vector_clock.leq (Vector_clock.of_epoch e) vc)

let suites : unit Alcotest.test list =
  let q = List.map QCheck_alcotest.to_alcotest in
  [
      ( "vclock.epoch",
        [
          Alcotest.test_case "pack/unpack + bounds" `Quick test_epoch_pack;
          Alcotest.test_case "pretty printing" `Quick test_epoch_pp;
        ]
        @ q [ epoch_roundtrip ] );
      ( "vclock.vector-clock",
        [
          Alcotest.test_case "get/set/tick" `Quick test_get_set;
          Alcotest.test_case "join and leq" `Quick test_join_leq;
          Alcotest.test_case "equal ignores capacity" `Quick test_equal_ignores_capacity;
          Alcotest.test_case "epoch_leq" `Quick test_epoch_leq;
          Alcotest.test_case "of_epoch" `Quick test_of_epoch;
          Alcotest.test_case "assign/copy" `Quick test_assign_copy;
          Alcotest.test_case "mutual join capacity stable" `Quick test_mutual_join_capacity_stable;
          Alcotest.test_case "assign reuses destination array" `Quick test_assign_reuses_array;
          Alcotest.test_case "steady-state paths allocation-free" `Quick test_steady_state_allocation_free;
          Alcotest.test_case "fold and pp" `Quick test_fold_pp;
        ] );
      ( "vclock.laws",
        q
          [
            law_join_commutative;
            law_join_associative;
            law_join_idempotent;
            law_join_upper_bound;
            law_leq_antisym;
            law_leq_transitive;
            law_epoch_leq_consistent;
          ] );
    ]
