(* Dgrace_obs: registry semantics, sampler cadence, matrix accounting
   and the JSON printer/parser round-trip behind --metrics-out. *)

open Dgrace_obs

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) Json.equal

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter r "x" in
  Alcotest.(check int) "fresh" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "incr+add" 7 (Metrics.value c);
  (* find-or-create: same name is the same instrument *)
  Metrics.incr (Metrics.counter r "x");
  Alcotest.(check int) "idempotent registration" 8 (Metrics.value c);
  Alcotest.(check (option int)) "find_counter" (Some 8)
    (Metrics.find_counter r "x");
  Alcotest.(check (option int)) "find_counter missing" None
    (Metrics.find_counter r "y");
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: negative counter increment") (fun () ->
      Metrics.add c (-1))

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "live" in
  Metrics.set g 42;
  Metrics.set g 7;
  Alcotest.(check int) "moves both ways" 7 (Metrics.gauge_value g);
  Alcotest.(check (list (pair string int))) "listing" [ ("live", 7) ]
    (Metrics.gauges r)

let test_counters_sorted () =
  let r = Metrics.create () in
  List.iter
    (fun n -> Metrics.incr (Metrics.counter r n))
    [ "b"; "a"; "c"; "a" ];
  Alcotest.(check (list (pair string int)))
    "sorted by name"
    [ ("a", 2); ("b", 1); ("c", 1) ]
    (Metrics.counters r)

let test_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "sizes" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 2; 3; 4; 7; 8; 1024 ];
  Alcotest.(check int) "count" 9 (Metrics.histogram_count h);
  Alcotest.(check int) "sum" 1050 (Metrics.histogram_sum h);
  Alcotest.(check int) "max" 1024 (Metrics.histogram_max h);
  (* bucket 0 holds <=1; bucket i holds 2^i .. 2^(i+1)-1 *)
  Alcotest.(check (list (triple int int int)))
    "buckets"
    [ (0, 1, 3); (2, 3, 2); (4, 7, 2); (8, 15, 1); (1024, 2047, 1) ]
    (Metrics.histogram_buckets h)

(* ------------------------------------------------------------------ *)
(* Sampler cadence *)

let mk_sampler every =
  let clock = ref 0 in
  (clock, Sampler.create ~every ~sources:[ ("clock", fun () -> !clock) ])

let test_sampler_cadence () =
  let clock, s = mk_sampler 4 in
  for i = 1 to 10 do
    clock := i * 100;
    Sampler.tick s
  done;
  Alcotest.(check int) "two periods elapsed" 2 (Sampler.length s);
  Alcotest.(check (list (pair int int)))
    "samples at every=4 boundaries"
    [ (4, 400); (8, 800) ]
    (List.map
       (fun (x : Sampler.sample) -> (x.at_event, x.values.(0)))
       (Sampler.samples s))

let test_sampler_flush () =
  let clock, s = mk_sampler 4 in
  for i = 1 to 10 do
    clock := i * 100;
    Sampler.tick s
  done;
  Sampler.flush s;
  Alcotest.(check int) "flush adds the tail sample" 3 (Sampler.length s);
  Sampler.flush s;
  Alcotest.(check int) "flush is idempotent" 3 (Sampler.length s);
  let last = List.nth (Sampler.samples s) 2 in
  Alcotest.(check int) "tail at current event count" 10 last.at_event

let test_sampler_flush_aligned () =
  (* when the run length is a multiple of [every], flush must not
     duplicate the sample already taken there *)
  let _, s = mk_sampler 5 in
  for _ = 1 to 10 do
    Sampler.tick s
  done;
  Sampler.flush s;
  Alcotest.(check int) "no duplicate at the boundary" 2 (Sampler.length s)

let test_sampler_empty_run () =
  let _, s = mk_sampler 4 in
  Sampler.flush s;
  Alcotest.(check int) "no sample for an event-free run" 0 (Sampler.length s)

let test_sampler_invalid () =
  Alcotest.check_raises "every=0"
    (Invalid_argument "Sampler.create: non-positive period") (fun () ->
      ignore (Sampler.create ~every:0 ~sources:[ ("x", fun () -> 0) ]));
  Alcotest.check_raises "no sources"
    (Invalid_argument "Sampler.create: no sources") (fun () ->
      ignore (Sampler.create ~every:1 ~sources:[]))

(* ------------------------------------------------------------------ *)
(* State matrix *)

let test_matrix () =
  let m = State_matrix.create ~states:[| "a"; "b"; "c" |] in
  State_matrix.record m ~from_:0 ~to_:1;
  State_matrix.record m ~from_:0 ~to_:1;
  State_matrix.record m ~from_:1 ~to_:2;
  Alcotest.(check int) "get" 2 (State_matrix.get m ~from_:0 ~to_:1);
  Alcotest.(check int) "total" 3 (State_matrix.total m);
  Alcotest.(check int) "row" 2 (State_matrix.row_total m 0);
  Alcotest.(check int) "col" 1 (State_matrix.col_total m 2);
  let edges = ref [] in
  State_matrix.iter
    (fun ~from_ ~to_ ~count -> edges := (from_, to_, count) :: !edges)
    m;
  Alcotest.(check (list (triple int int int)))
    "non-zero edges, row-major"
    [ (0, 1, 2); (1, 2, 1) ]
    (List.rev !edges)

(* ------------------------------------------------------------------ *)
(* JSON round-trip and export envelope *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("n", Json.Null);
        ("b", Json.Bool true);
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("s", Json.String "a\"b\\c\nd\tunicode \xc3\xa9");
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.check json "pretty round-trip" v v'
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.parse (Json.to_string ~minify:true v) with
  | Ok v' -> Alcotest.check json "minified round-trip" v v'
  | Error e -> Alcotest.failf "minified parse failed: %s" e

let test_json_numbers () =
  (match Json.parse "17" with
  | Ok (Json.Int 17) -> ()
  | _ -> Alcotest.fail "bare int");
  (match Json.parse "1.5e2" with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "exponent" 150. f
  | _ -> Alcotest.fail "float with exponent");
  match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must not parse"

let test_envelope () =
  let doc = Export.envelope ~kind:"run" [ ("x", Json.Int 1) ] in
  (match Export.validate doc with
  | Ok (v, kind) ->
    Alcotest.(check int) "version" Export.schema_version v;
    Alcotest.(check string) "kind" "run" kind
  | Error e -> Alcotest.failf "validate: %s" e);
  (match Json.member Export.version_key doc with
  | Some (Json.Int _) -> ()
  | _ -> Alcotest.fail "version key present");
  match Export.validate (Json.Obj [ ("x", Json.Int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare object must not validate"

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "c");
  Metrics.set (Metrics.gauge r "g") 3;
  Metrics.observe (Metrics.histogram r "h") 5;
  let j = Metrics.to_json r in
  Alcotest.(check (option json)) "counters"
    (Some (Json.Obj [ ("c", Json.Int 1) ]))
    (Json.member "counters" j);
  Alcotest.(check (option json)) "gauges"
    (Some (Json.Obj [ ("g", Json.Int 3) ]))
    (Json.member "gauges" j);
  (* the whole registry export must survive a round-trip *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.check json "registry round-trip" j j'
  | Error e -> Alcotest.failf "registry parse: %s" e

let suites : unit Alcotest.test list =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "counters sorted" `Quick test_counters_sorted;
        Alcotest.test_case "histogram buckets" `Quick test_histogram;
      ] );
    ( "obs.sampler",
      [
        Alcotest.test_case "cadence" `Quick test_sampler_cadence;
        Alcotest.test_case "flush" `Quick test_sampler_flush;
        Alcotest.test_case "flush on boundary" `Quick test_sampler_flush_aligned;
        Alcotest.test_case "empty run" `Quick test_sampler_empty_run;
        Alcotest.test_case "invalid args" `Quick test_sampler_invalid;
      ] );
    ( "obs.matrix",
      [ Alcotest.test_case "record/totals/iter" `Quick test_matrix ] );
    ( "obs.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "numbers" `Quick test_json_numbers;
        Alcotest.test_case "envelope" `Quick test_envelope;
        Alcotest.test_case "registry export" `Quick test_metrics_json;
      ] );
  ]
