(* Dgrace_obs: registry semantics, sampler cadence, matrix accounting,
   the JSON printer/parser round-trip behind --metrics-out, and the
   span-tracing flight recorder behind --trace-out (rings, sampled
   timers, wall-clock recorder, Chrome export + validator). *)

open Dgrace_obs

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) Json.equal

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter r "x" in
  Alcotest.(check int) "fresh" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "incr+add" 7 (Metrics.value c);
  (* find-or-create: same name is the same instrument *)
  Metrics.incr (Metrics.counter r "x");
  Alcotest.(check int) "idempotent registration" 8 (Metrics.value c);
  Alcotest.(check (option int)) "find_counter" (Some 8)
    (Metrics.find_counter r "x");
  Alcotest.(check (option int)) "find_counter missing" None
    (Metrics.find_counter r "y");
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: negative counter increment") (fun () ->
      Metrics.add c (-1))

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "live" in
  Metrics.set g 42;
  Metrics.set g 7;
  Alcotest.(check int) "moves both ways" 7 (Metrics.gauge_value g);
  Alcotest.(check (list (pair string int))) "listing" [ ("live", 7) ]
    (Metrics.gauges r)

let test_counters_sorted () =
  let r = Metrics.create () in
  List.iter
    (fun n -> Metrics.incr (Metrics.counter r n))
    [ "b"; "a"; "c"; "a" ];
  Alcotest.(check (list (pair string int)))
    "sorted by name"
    [ ("a", 2); ("b", 1); ("c", 1) ]
    (Metrics.counters r)

let test_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "sizes" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 2; 3; 4; 7; 8; 1024 ];
  Alcotest.(check int) "count" 9 (Metrics.histogram_count h);
  Alcotest.(check int) "sum" 1050 (Metrics.histogram_sum h);
  Alcotest.(check int) "max" 1024 (Metrics.histogram_max h);
  (* bucket 0 holds <=1; bucket i holds 2^i .. 2^(i+1)-1 *)
  Alcotest.(check (list (triple int int int)))
    "buckets"
    [ (0, 1, 3); (2, 3, 2); (4, 7, 2); (8, 15, 1); (1024, 2047, 1) ]
    (Metrics.histogram_buckets h)

(* ------------------------------------------------------------------ *)
(* Sampler cadence *)

let mk_sampler every =
  let clock = ref 0 in
  (clock, Sampler.create ~every ~sources:[ ("clock", fun () -> !clock) ])

let test_sampler_cadence () =
  let clock, s = mk_sampler 4 in
  for i = 1 to 10 do
    clock := i * 100;
    Sampler.tick s
  done;
  Alcotest.(check int) "two periods elapsed" 2 (Sampler.length s);
  Alcotest.(check (list (pair int int)))
    "samples at every=4 boundaries"
    [ (4, 400); (8, 800) ]
    (List.map
       (fun (x : Sampler.sample) -> (x.at_event, x.values.(0)))
       (Sampler.samples s))

let test_sampler_flush () =
  let clock, s = mk_sampler 4 in
  for i = 1 to 10 do
    clock := i * 100;
    Sampler.tick s
  done;
  Sampler.flush s;
  Alcotest.(check int) "flush adds the tail sample" 3 (Sampler.length s);
  Sampler.flush s;
  Alcotest.(check int) "flush is idempotent" 3 (Sampler.length s);
  let last = List.nth (Sampler.samples s) 2 in
  Alcotest.(check int) "tail at current event count" 10 last.at_event

let test_sampler_flush_aligned () =
  (* when the run length is a multiple of [every], flush must not
     duplicate the sample already taken there *)
  let _, s = mk_sampler 5 in
  for _ = 1 to 10 do
    Sampler.tick s
  done;
  Sampler.flush s;
  Alcotest.(check int) "no duplicate at the boundary" 2 (Sampler.length s)

let test_sampler_empty_run () =
  let _, s = mk_sampler 4 in
  Sampler.flush s;
  Alcotest.(check int) "no sample for an event-free run" 0 (Sampler.length s)

let test_sampler_invalid () =
  Alcotest.check_raises "every=0"
    (Invalid_argument "Sampler.create: non-positive period") (fun () ->
      ignore (Sampler.create ~every:0 ~sources:[ ("x", fun () -> 0) ]));
  Alcotest.check_raises "no sources"
    (Invalid_argument "Sampler.create: no sources") (fun () ->
      ignore (Sampler.create ~every:1 ~sources:[]))

let test_sampler_tick_n () =
  let _, s = mk_sampler 4 in
  (* a batch crossing the boundary takes exactly one snapshot *)
  Sampler.tick_n s 10;
  Alcotest.(check int) "one snapshot for a big batch" 1 (Sampler.length s);
  (* the countdown resets to a full period after the batch *)
  Sampler.tick_n s 4;
  Alcotest.(check (list (pair int int)))
    "batched boundaries"
    [ (10, 0); (14, 0) ]
    (List.map
       (fun (x : Sampler.sample) -> (x.at_event, Array.length x.values - 1))
       (Sampler.samples s))

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_ticker () =
  let c = Clock.ticker () in
  Alcotest.(check int) "default start" 0 (c ());
  Alcotest.(check int) "default step" 1000 (c ());
  let c = Clock.ticker ~start:5 ~step:2 () in
  let a = c () in
  let b = c () in
  Alcotest.(check (list int)) "custom" [ 5; 7; 9 ] [ a; b; c () ]

(* ------------------------------------------------------------------ *)
(* Span lanes: bounded rings, sampled timers, dispatch wrapper *)

let lane_named t name =
  match
    List.find_opt (fun (lv : Span.lane_view) -> lv.lane = name)
      (Span.lane_views t)
  with
  | Some lv -> lv
  | None -> Alcotest.failf "no lane %S" name

let timer_named (lv : Span.lane_view) name =
  match
    List.find_opt (fun (tv : Span.timer_view) -> tv.timer_name = name)
      lv.timers
  with
  | Some tv -> tv
  | None -> Alcotest.failf "no timer %S on lane %S" name lv.lane

let test_span_ring () =
  let t = Span.create ~capacity_per_lane:16 ~clock:(Clock.ticker ()) () in
  let b = Span.main t in
  for i = 1 to 20 do
    Span.instant b (string_of_int i)
  done;
  let lv = lane_named t "main" in
  Alcotest.(check int) "ring keeps the last cap events" 16
    (List.length lv.events);
  Alcotest.(check string) "oldest survivor" "5"
    (List.hd lv.events).Span.name;
  Alcotest.(check int) "overwrites counted" 4 (Span.dropped t);
  (* a second lane is independent and registration is idempotent *)
  let b2 = Span.lane t "shard0" in
  Span.instant b2 "x";
  Alcotest.(check bool) "same buf for the same name" true
    (b2 == Span.lane t "shard0");
  Alcotest.(check int) "two lanes" 2 (List.length (Span.lane_views t))

let test_span_export_repairs () =
  (* spans left open (budget stop) and orphan ends (begin lost to the
     ring) must still export a validating trace *)
  let t = Span.create ~clock:(Clock.ticker ()) () in
  let b = Span.main t in
  Span.end_span b "orphan";
  Span.begin_span b "outer";
  Span.begin_span b "inner";
  Span.instant b "mark";
  (* neither span closed *)
  (match Chrome_trace.validate (Chrome_trace.to_json t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "repaired trace must validate: %s" e);
  match Chrome_trace.phases (Chrome_trace.to_json t) with
  | Error e -> Alcotest.failf "phases: %s" e
  | Ok r ->
    (* both spans were closed by the exporter, the orphan end dropped *)
    let names =
      List.map (fun (p : Chrome_trace.phase) -> p.phase_name) r.phases
    in
    Alcotest.(check (list string))
      "closed spans + instant, no orphan"
      [ "inner"; "mark"; "outer" ]
      (List.sort compare names)

let test_timer_sampling () =
  (* default-armed lane: one op in (mask+1) is clocked and the
     estimate scales the sampled mean to the full op count *)
  let t = Span.create ~clock:(Clock.ticker ()) () in
  let b = Span.main t in
  let tm = Span.timer b ~name:"phase.x" ~mask:1 in
  for _ = 1 to 8 do
    Span.timer_start tm;
    Span.timer_stop tm
  done;
  let tv = timer_named (lane_named t "main") "phase.x" in
  Alcotest.(check int) "all ops counted" 8 tv.Span.ops;
  Alcotest.(check int) "every 2nd op clocked" 4 tv.Span.sampled;
  (* each sampled op spans one 1000 ns tick: mean 1000 x 8 ops *)
  Alcotest.(check int) "estimate scaled to ops" 8000 tv.Span.estimate_ns;
  Alcotest.check_raises "mask must be 2^k - 1"
    (Invalid_argument "Span.timer: mask must be 2^k - 1") (fun () ->
      ignore (Span.timer b ~name:"bad" ~mask:2))

let test_wrap_dispatch () =
  let t = Span.create ~clock:(Clock.ticker ()) () in
  let b = Span.main t in
  let inner = Span.timer b ~name:"inner" ~mask:0 in
  let hits = ref 0 in
  let samples = ref 0 in
  let body () =
    incr hits;
    Span.timer_start inner;
    Span.timer_stop inner
  in
  let dispatch =
    Span.wrap_dispatch b ~name:"dispatch" ~stride:4
      ~on_sample:(fun () -> incr samples)
      (fun () -> body ())
  in
  for _ = 1 to 8 do
    dispatch ()
  done;
  Alcotest.(check int) "every event dispatched" 8 !hits;
  Alcotest.(check int) "on_sample once per armed event" 2 !samples;
  (* taking over the lane disarms it for direct (unsampled) calls *)
  body ();
  let lv = lane_named t "main" in
  let d = timer_named lv "dispatch" in
  Alcotest.(check int) "dispatch ops scaled by stride" 8 d.Span.ops;
  Alcotest.(check int) "one sample per armed event" 2 d.Span.sampled;
  (* each armed dispatch reads the clock twice around a body that
     reads it twice more: 3000 ns per sample, scaled to 8 events *)
  Alcotest.(check int) "dispatch estimate" 24000 d.Span.estimate_ns;
  let i = timer_named lv "inner" in
  Alcotest.(check int) "inner sees only armed events, scaled back" 8
    i.Span.ops;
  Alcotest.(check int) "inner sampled under the wrapper only" 2 i.Span.sampled;
  Alcotest.(check int) "inner estimate" 8000 i.Span.estimate_ns;
  Alcotest.check_raises "stride must be a power of two"
    (Invalid_argument "Span.wrap_dispatch: stride must be a power of two")
    (fun () ->
      ignore
        (Span.wrap_dispatch b ~name:"bad" ~stride:3
           ~on_sample:(fun () -> ())
           (fun () -> ())
          : unit -> unit))

let test_disabled_timer () =
  let tm = Span.disabled () in
  Span.timer_start tm;
  Span.timer_stop tm;
  Alcotest.(check int) "timer_time passes the result through" 7
    (Span.timer_time tm (fun () -> 7));
  (* a disabled timer is not registered anywhere: a fresh tracer's
     lanes are unaffected *)
  let t = Span.create ~clock:(Clock.ticker ()) () in
  ignore (Span.main t);
  Alcotest.(check int) "no timers on the lane" 0
    (List.length (lane_named t "main").timers)

(* ------------------------------------------------------------------ *)
(* Recorder: wall-clock stamps over the sampler *)

let test_recorder_stamps () =
  let clock = Clock.ticker ~start:1000 ~step:500 () in
  let r = Recorder.create ~clock ~every:2 ~sources:[ ("v", fun () -> 7) ] () in
  Alcotest.(check int) "epoch is the creation reading" 1000
    (Recorder.epoch_ns r);
  for _ = 1 to 5 do
    Recorder.tick r
  done;
  Alcotest.(check (list int))
    "one stamp per sample, read when taken"
    [ 1500; 2000 ]
    (Recorder.times_ns r);
  Recorder.flush r;
  Alcotest.(check (list int)) "flush stamps the tail" [ 1500; 2000; 2500 ]
    (Recorder.times_ns r);
  Alcotest.(check
              (list (pair string (list (pair int int)))))
    "counter series in Span.add_counter_series shape"
    [ ("v", [ (1500, 7); (2000, 7); (2500, 7) ]) ]
    (Recorder.counter_series r)

let test_recorder_tick_n () =
  let clock = Clock.ticker ~start:0 ~step:100 () in
  let r = Recorder.create ~clock ~every:8 ~sources:[ ("v", fun () -> 1) ] () in
  Recorder.tick_n r 20;
  (* one batch, one snapshot, one stamp *)
  Alcotest.(check (list int)) "batched stamp" [ 100 ] (Recorder.times_ns r)

let test_recorder_merged_final () =
  let mk start v =
    let r =
      Recorder.create
        ~clock:(Clock.ticker ~start ~step:100 ())
        ~every:2
        ~sources:[ ("v", fun () -> v) ]
        ()
    in
    for _ = 1 to 3 do
      Recorder.tick r
    done;
    Recorder.flush r;
    r
  in
  let r1 = mk 0 5 in
  let r2 = mk 10_000 11 in
  match Recorder.merged_final [ r1; r2 ] with
  | None -> Alcotest.fail "merged_final: expected a sample"
  | Some m ->
    let s = Sampler.samples (Recorder.sampler m) in
    Alcotest.(check int) "single merged sample" 1 (List.length s);
    let s = List.hd s in
    Alcotest.(check int) "events summed" 6 s.Sampler.at_event;
    Alcotest.(check (array int)) "values summed" [| 16 |] s.Sampler.values;
    Alcotest.(check (list int)) "stamped at the latest shard reading"
      [ 10_200 ]
      (Recorder.times_ns m)

(* ------------------------------------------------------------------ *)
(* Chrome export: golden aggregation over a deterministic clock *)

let test_chrome_export () =
  let t = Span.create ~clock:(Clock.ticker ()) () in
  let b = Span.main t in
  Span.begin_span b "work";
  Span.instant b "mark";
  Span.end_span b "work";
  let tm = Span.timer b ~name:"phase.x" ~mask:0 in
  Span.timer_start tm;
  Span.timer_stop tm;
  Span.timer_start tm;
  Span.timer_stop tm;
  Span.add_counter_series t ~name:"bytes" [ (1000, 5); (3000, 9) ];
  let doc = Chrome_trace.to_json t in
  (* the export must itself survive a JSON print/parse round-trip *)
  let doc =
    match Json.parse (Json.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "export round-trip: %s" e
  in
  match Chrome_trace.phases doc with
  | Error e -> Alcotest.failf "phases: %s" e
  | Ok r ->
    Alcotest.(check int) "timeline lanes (main + its phases)" 2 r.lanes;
    let phase name =
      match
        List.find_opt
          (fun (p : Chrome_trace.phase) -> p.phase_name = name)
          r.phases
      with
      | Some p -> p
      | None -> Alcotest.failf "no phase %S" name
    in
    let w = phase "work" in
    Alcotest.(check (pair int int)) "work: count, measured us" (1, 2)
      (w.count, w.total_us);
    Alcotest.(check bool) "work is measured, not estimated" false
      w.estimated;
    let x = phase "phase.x" in
    Alcotest.(check string) "timers land on the synthetic lane"
      "main phases" x.phase_lane;
    Alcotest.(check bool) "timer totals are estimates" true x.estimated;
    (* two ops x one 1000 ns tick each *)
    Alcotest.(check int) "timer estimate in us" 2 x.total_us

let test_chrome_rejects () =
  let bad =
    Json.Obj
      [
        ( "traceEvents",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "e");
                  ("ph", Json.String "E");
                  ("ts", Json.Int 1);
                  ("pid", Json.Int 1);
                  ("tid", Json.Int 0);
                ];
            ] );
      ]
  in
  (match Chrome_trace.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unbalanced end must not validate");
  match Chrome_trace.validate (Json.Obj []) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing traceEvents must not validate"

(* ------------------------------------------------------------------ *)
(* State matrix *)

let test_matrix () =
  let m = State_matrix.create ~states:[| "a"; "b"; "c" |] in
  State_matrix.record m ~from_:0 ~to_:1;
  State_matrix.record m ~from_:0 ~to_:1;
  State_matrix.record m ~from_:1 ~to_:2;
  Alcotest.(check int) "get" 2 (State_matrix.get m ~from_:0 ~to_:1);
  Alcotest.(check int) "total" 3 (State_matrix.total m);
  Alcotest.(check int) "row" 2 (State_matrix.row_total m 0);
  Alcotest.(check int) "col" 1 (State_matrix.col_total m 2);
  let edges = ref [] in
  State_matrix.iter
    (fun ~from_ ~to_ ~count -> edges := (from_, to_, count) :: !edges)
    m;
  Alcotest.(check (list (triple int int int)))
    "non-zero edges, row-major"
    [ (0, 1, 2); (1, 2, 1) ]
    (List.rev !edges)

(* ------------------------------------------------------------------ *)
(* JSON round-trip and export envelope *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("n", Json.Null);
        ("b", Json.Bool true);
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("s", Json.String "a\"b\\c\nd\tunicode \xc3\xa9");
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.check json "pretty round-trip" v v'
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.parse (Json.to_string ~minify:true v) with
  | Ok v' -> Alcotest.check json "minified round-trip" v v'
  | Error e -> Alcotest.failf "minified parse failed: %s" e

let test_json_numbers () =
  (match Json.parse "17" with
  | Ok (Json.Int 17) -> ()
  | _ -> Alcotest.fail "bare int");
  (match Json.parse "1.5e2" with
  | Ok (Json.Float f) -> Alcotest.(check (float 1e-9)) "exponent" 150. f
  | _ -> Alcotest.fail "float with exponent");
  match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must not parse"

let test_envelope () =
  let doc = Export.envelope ~kind:"run" [ ("x", Json.Int 1) ] in
  (match Export.validate doc with
  | Ok (v, kind) ->
    Alcotest.(check int) "version" Export.schema_version v;
    Alcotest.(check string) "kind" "run" kind
  | Error e -> Alcotest.failf "validate: %s" e);
  (match Json.member Export.version_key doc with
  | Some (Json.Int _) -> ()
  | _ -> Alcotest.fail "version key present");
  match Export.validate (Json.Obj [ ("x", Json.Int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare object must not validate"

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "c");
  Metrics.set (Metrics.gauge r "g") 3;
  Metrics.observe (Metrics.histogram r "h") 5;
  let j = Metrics.to_json r in
  Alcotest.(check (option json)) "counters"
    (Some (Json.Obj [ ("c", Json.Int 1) ]))
    (Json.member "counters" j);
  Alcotest.(check (option json)) "gauges"
    (Some (Json.Obj [ ("g", Json.Int 3) ]))
    (Json.member "gauges" j);
  (* the whole registry export must survive a round-trip *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.check json "registry round-trip" j j'
  | Error e -> Alcotest.failf "registry parse: %s" e

let suites : unit Alcotest.test list =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "counters sorted" `Quick test_counters_sorted;
        Alcotest.test_case "histogram buckets" `Quick test_histogram;
      ] );
    ( "obs.sampler",
      [
        Alcotest.test_case "cadence" `Quick test_sampler_cadence;
        Alcotest.test_case "flush" `Quick test_sampler_flush;
        Alcotest.test_case "flush on boundary" `Quick test_sampler_flush_aligned;
        Alcotest.test_case "empty run" `Quick test_sampler_empty_run;
        Alcotest.test_case "invalid args" `Quick test_sampler_invalid;
        Alcotest.test_case "batched tick_n" `Quick test_sampler_tick_n;
      ] );
    ("obs.clock", [ Alcotest.test_case "ticker" `Quick test_ticker ]);
    ( "obs.span",
      [
        Alcotest.test_case "ring wrap + dropped" `Quick test_span_ring;
        Alcotest.test_case "export repairs unbalanced spans" `Quick
          test_span_export_repairs;
        Alcotest.test_case "timer sampling + scaling" `Quick
          test_timer_sampling;
        Alcotest.test_case "wrap_dispatch arming" `Quick test_wrap_dispatch;
        Alcotest.test_case "disabled timer" `Quick test_disabled_timer;
      ] );
    ( "obs.recorder",
      [
        Alcotest.test_case "wall-clock stamps" `Quick test_recorder_stamps;
        Alcotest.test_case "batched tick_n" `Quick test_recorder_tick_n;
        Alcotest.test_case "merged final sample" `Quick
          test_recorder_merged_final;
      ] );
    ( "obs.chrome",
      [
        Alcotest.test_case "export aggregates + validates" `Quick
          test_chrome_export;
        Alcotest.test_case "validator rejects bad traces" `Quick
          test_chrome_rejects;
      ] );
    ( "obs.matrix",
      [ Alcotest.test_case "record/totals/iter" `Quick test_matrix ] );
    ( "obs.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "numbers" `Quick test_json_numbers;
        Alcotest.test_case "envelope" `Quick test_envelope;
        Alcotest.test_case "registry export" `Quick test_metrics_json;
      ] );
  ]
