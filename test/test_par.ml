(* Differential proof for the sharded parallel replay (doc/parallel.md):
   for every bundled workload x seed x shard count, the sharded
   analysis must be bit-identical to the sequential one on everything
   observable — the race reports themselves (content and order), the
   per-state transition counts, the stream statistics, and the exit
   code.  Both the dynamic-granularity and the byte detector run the
   gauntlet.  If a future change lets any sharing decision leak across
   an address line, or the merge lose determinism, this is the test
   that goes red. *)

open Dgrace_core
open Dgrace_events
open Dgrace_workloads
module Trace_shard = Dgrace_trace.Trace_shard

let seeds = [ 1; 2; 3 ]
let shard_counts = [ 1; 2; 4; 7 ]
let policy seed = Dgrace_sim.Scheduler.Chunked { seed; chunk = 64 }

(* One recording per (workload, seed), shared by every shard count and
   spec: the comparison is about the analysis, not the interleaving. *)
let recordings : (string * int, Event.t array) Hashtbl.t = Hashtbl.create 64

let recorded (w : Workload.t) seed =
  match Hashtbl.find_opt recordings (w.name, seed) with
  | Some a -> a
  | None ->
    let p = Workload.with_params ~scale:1 ~seed w in
    let buf = ref [] in
    ignore
      (Workload.run ~policy:(policy seed) ~params:p
         ~sink:(fun ev -> buf := ev :: !buf)
         w);
    let a = Array.of_list (List.rev !buf) in
    Hashtbl.replace recordings (w.name, seed) a;
    a

let json = Alcotest.testable (Fmt.of_to_string Dgrace_obs.Json.to_string)
    Dgrace_obs.Json.equal

let report = Alcotest.testable (Fmt.of_to_string Report.to_string) ( = )

let transitions_json (s : Engine.summary) =
  match s.transitions with
  | None -> Dgrace_obs.Json.Null
  | Some m -> Dgrace_obs.State_matrix.to_json m

let check_equivalent ~ctx (seq : Engine.summary) (par : Engine.summary) =
  Alcotest.(check (list report)) (ctx ^ ": race reports") seq.races par.races;
  Alcotest.(check int) (ctx ^ ": race count") seq.race_count par.race_count;
  Alcotest.(check int) (ctx ^ ": suppressed") seq.suppressed par.suppressed;
  Alcotest.check json (ctx ^ ": transition counts") (transitions_json seq)
    (transitions_json par);
  Alcotest.(check int)
    (ctx ^ ": exit code")
    (Engine.exit_code_of_summary seq)
    (Engine.exit_code_of_summary par);
  let st (s : Engine.summary) =
    let r = s.stats in
    Dgrace_detectors.Run_stats.
      (r.accesses, r.reads, r.writes, r.same_epoch, r.sync_ops, r.allocs,
       r.frees)
  in
  Alcotest.(check (pair (pair int int) (pair (pair int int) (pair int (pair int int)))))
    (ctx ^ ": stream stats")
    (let a, b, c, d, e, f, g = st seq in
     ((a, b), ((c, d), (e, (f, g)))))
    (let a, b, c, d, e, f, g = st par in
     ((a, b), ((c, d), (e, (f, g)))))

let diff_workload (w : Workload.t) spec () =
  List.iter
    (fun seed ->
      let events = recorded w seed in
      let seq = Engine.replay ~spec (Array.to_seq events) in
      List.iter
        (fun shards ->
          let par =
            Engine.replay_sharded ~shards ~spec (Array.to_seq events)
          in
          let ctx = Printf.sprintf "%s seed=%d shards=%d" w.name seed shards in
          check_equivalent ~ctx seq par)
        shard_counts)
    seeds

(* The batch dispatch cross-product: the struct-of-arrays fast path
   and the per-event sink must be indistinguishable on everything
   [check_equivalent] looks at, for every workload, with and without
   vector-clock interning, sequential and sharded.  One seed — the
   batch path has no scheduling freedom of its own, so extra seeds
   only re-test the splitter (covered above). *)
let diff_batch_workload (w : Workload.t) () =
  let events = recorded w 1 in
  List.iter
    (fun vc_intern ->
      let seq =
        Engine.replay ~batched:false ~vc_intern ~spec:Spec.dynamic
          (Array.to_seq events)
      in
      List.iter
        (fun shards ->
          List.iter
            (fun batched ->
              let par =
                Engine.replay_sharded ~batched ~vc_intern ~shards
                  ~spec:Spec.dynamic (Array.to_seq events)
              in
              let ctx =
                Printf.sprintf "%s vc_intern=%b shards=%d batched=%b" w.name
                  vc_intern shards batched
              in
              check_equivalent ~ctx seq par)
            [ true; false ])
        [ 1; 4 ];
      (* sequential batched path (Engine.replay ~batched:true) against
         the same per-event reference *)
      let seq_batched =
        Engine.replay ~batched:true ~vc_intern ~spec:Spec.dynamic
          (Array.to_seq events)
      in
      check_equivalent
        ~ctx:(Printf.sprintf "%s vc_intern=%b replay batched" w.name vc_intern)
        seq seq_batched)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* splitter invariants *)

let mk_access addr = Event.Access { tid = 0; kind = Write; addr; size = 4; loc = "t" }

let test_split_identity () =
  (* one shard is exactly the input stream, offsets 0..n-1 *)
  let events = recorded (Option.get (Registry.find "ffmpeg")) 1 in
  let plan = Trace_shard.split ~shards:1 ~granule:4096 events in
  Alcotest.(check int) "one shard" 1 (Array.length plan.shards);
  Alcotest.(check int) "all events" (Array.length events)
    (Array.length plan.shards.(0));
  Array.iteri
    (fun i (off, ev) ->
      assert (off = i);
      assert (ev == events.(i)))
    plan.shards.(0)

let test_split_routing () =
  let events = recorded (Option.get (Registry.find "pbzip2")) 1 in
  let k = 4 in
  let plan = Trace_shard.split ~shards:k ~granule:4096 events in
  (* every access lands on exactly one shard; every sync event on all *)
  let access_copies = Array.make (Array.length events) 0 in
  let sync_copies = Array.make (Array.length events) 0 in
  Array.iter
    (Array.iter (fun (off, ev) ->
         match ev with
         | Event.Access _ -> access_copies.(off) <- access_copies.(off) + 1
         | _ -> sync_copies.(off) <- sync_copies.(off) + 1))
    plan.shards;
  Array.iteri
    (fun off ev ->
      match ev with
      | Event.Access _ ->
        Alcotest.(check int)
          (Printf.sprintf "access %d on one shard" off)
          1 access_copies.(off)
      | _ ->
        Alcotest.(check int)
          (Printf.sprintf "event %d broadcast" off)
          k sync_copies.(off))
    events;
  (* per-shard offsets strictly increase: trace order is preserved *)
  Array.iter
    (fun shard ->
      ignore
        (Array.fold_left
           (fun last (off, _) ->
             assert (off > last);
             off)
           (-1) shard))
    plan.shards

let test_split_straddle () =
  (* an access straddling a granule line welds the two lines onto one
     shard: no other shard may then own either line *)
  let g = 4096 in
  let events =
    [|
      mk_access (g - 2);  (* straddles lines 0 and 1 *)
      mk_access 16;  (* line 0 *)
      mk_access (g + 16);  (* line 1 *)
      mk_access (10 * g);  (* unrelated line *)
    |]
  in
  let plan = Trace_shard.split ~shards:8 ~granule:g events in
  Alcotest.(check int) "straddling counted" 1 plan.straddling;
  let owner = ref (-1) in
  Array.iteri
    (fun s shard ->
      Array.iter
        (fun (off, _) ->
          if off <= 2 then begin
            if !owner = -1 then owner := s;
            Alcotest.(check int)
              (Printf.sprintf "event %d on welded shard" off)
              !owner s
          end)
        shard)
    plan.shards

let test_split_rejects () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Trace_shard.split: shards must be >= 1") (fun () ->
      ignore (Trace_shard.split ~shards:0 ~granule:4096 [||]));
  Alcotest.check_raises "non-pow2 granule"
    (Invalid_argument "Trace_shard.split: granule must be a power of two")
    (fun () -> ignore (Trace_shard.split ~shards:2 ~granule:100 [||]))

(* ------------------------------------------------------------------ *)
(* budgets apply per shard, and the merged summary keeps the
   resilience contract: partial/degraded still flag exit 3 and races
   stay a lower bound *)

let test_budget_partial () =
  let events = recorded (Option.get (Registry.find "pbzip2")) 1 in
  let budget = Dgrace_resilience.Budget.make ~max_events:1000 () in
  let s =
    Engine.replay_sharded ~budget ~shards:4 ~spec:Spec.dynamic
      (Array.to_seq events)
  in
  Alcotest.(check bool) "partial" true (s.partial <> None);
  Alcotest.(check int) "exit 3" Dgrace_resilience.Error.exit_partial
    (Engine.exit_code_of_summary s)

let test_budget_degraded () =
  let events = recorded (Option.get (Registry.find "raytrace")) 1 in
  let seq_races =
    (Engine.replay ~spec:Spec.dynamic (Array.to_seq events)).race_count
  in
  let budget = Dgrace_resilience.Budget.make ~max_shadow_bytes:100_000 () in
  let s =
    Engine.replay_sharded ~budget ~shards:4 ~spec:Spec.dynamic
      (Array.to_seq events)
  in
  Alcotest.(check bool) "degraded" true s.degraded;
  Alcotest.(check bool) "races still reported (lower bound)" true
    (s.race_count <= seq_races);
  Alcotest.(check int) "exit 3" Dgrace_resilience.Error.exit_partial
    (Engine.exit_code_of_summary s)

(* ------------------------------------------------------------------ *)
(* observability composes with sharding: per-shard recorders merge to
   the sequential run's final sample, and a traced sharded replay
   exports a validating timeline with one lane per shard *)

let test_sharded_metrics_merge () =
  let events = recorded (Option.get (Registry.find "dedup")) 1 in
  let final (s : Engine.summary) =
    match s.timeseries with
    | None -> Alcotest.fail "sample_every given but no time-series"
    | Some r -> (
      match List.rev (Dgrace_obs.Sampler.samples (Dgrace_obs.Recorder.sampler r)) with
      | last :: _ -> (last.at_event, Array.to_list last.values)
      | [] -> Alcotest.fail "empty time-series")
  in
  let seq =
    Engine.replay ~sample_every:512 ~spec:Spec.dynamic (Array.to_seq events)
  in
  List.iter
    (fun shards ->
      let par =
        Engine.replay_sharded ~sample_every:512 ~shards ~spec:Spec.dynamic
          (Array.to_seq events)
      in
      (* the merged values (additive sources) must equal the sequential
         run's last sample; the merged at_event counts each broadcast
         sync event once per shard, so it only matches at shards=1 *)
      Alcotest.(check (list int))
        (Printf.sprintf "final values equal sequential at shards=%d" shards)
        (snd (final seq))
        (snd (final par));
      if shards = 1 then
        Alcotest.(check int) "event count equals sequential at shards=1"
          (fst (final seq))
          (fst (final par)))
    [ 1; 4 ]

let test_sharded_trace_validates () =
  let events = recorded (Option.get (Registry.find "pbzip2")) 1 in
  let tracer = Dgrace_obs.Span.create () in
  let traced =
    Engine.replay_sharded ~tracer ~sample_every:1024 ~shards:4
      ~spec:Spec.dynamic (Array.to_seq events)
  in
  let plain = Engine.replay ~spec:Spec.dynamic (Array.to_seq events) in
  Alcotest.(check (list report)) "tracing does not change the races"
    plain.races traced.races;
  let doc = Dgrace_obs.Chrome_trace.to_json tracer in
  match Dgrace_obs.Chrome_trace.phases doc with
  | Error e -> Alcotest.failf "sharded trace must validate: %s" e
  | Ok r ->
    (* main + 4 shard lanes, each shard with a phases lane (the main
       lane records no per-access timers) *)
    Alcotest.(check bool)
      (Printf.sprintf "at least 9 lanes, got %d" r.lanes)
      true (r.lanes >= 9);
    let lanes_with name =
      List.filter
        (fun (p : Dgrace_obs.Chrome_trace.phase) -> p.phase_name = name)
        r.phases
      |> List.map (fun (p : Dgrace_obs.Chrome_trace.phase) -> p.phase_lane)
    in
    Alcotest.(check (list string))
      "every shard ran under a shard.run span"
      [ "shard0"; "shard1"; "shard2"; "shard3" ]
      (List.sort compare (lanes_with "shard.run"));
    Alcotest.(check (list string))
      "sampled dispatch timers on every shard's phases lane"
      [ "shard0 phases"; "shard1 phases"; "shard2 phases"; "shard3 phases" ]
      (List.sort compare (lanes_with "detector.on_event"))

(* ------------------------------------------------------------------ *)

let suites : unit Alcotest.test list =
  let diff_cases spec spec_name =
    List.map
      (fun (w : Workload.t) ->
        Alcotest.test_case
          (Printf.sprintf "%s [%s] seeds x shards" w.name spec_name)
          `Slow (diff_workload w spec))
      Registry.all
  in
  [
    ( "par.differential.dynamic",
      diff_cases Spec.dynamic "dynamic" );
    ( "par.differential.byte",
      diff_cases Spec.byte "byte" );
    ( "par.differential.batch",
      List.map
        (fun (w : Workload.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s batched x per-event x vc-intern" w.name)
            `Slow (diff_batch_workload w))
        Registry.all );
    ( "par.split",
      [
        Alcotest.test_case "one shard is the identity" `Quick
          test_split_identity;
        Alcotest.test_case "routing: accesses once, sync broadcast" `Quick
          test_split_routing;
        Alcotest.test_case "straddling access welds lines" `Quick
          test_split_straddle;
        Alcotest.test_case "invalid arguments rejected" `Quick
          test_split_rejects;
      ] );
    ( "par.budget",
      [
        Alcotest.test_case "event cap stops shards, merged partial" `Quick
          test_budget_partial;
        Alcotest.test_case "shadow cap degrades, races lower bound" `Quick
          test_budget_degraded;
      ] );
    ( "par.obs",
      [
        Alcotest.test_case "sharded metrics merge to sequential final" `Quick
          test_sharded_metrics_merge;
        Alcotest.test_case "sharded trace validates, one lane per shard"
          `Quick test_sharded_trace_validates;
      ] );
  ]
