(* The dynamic-granularity detector: sharing formation, the split at
   the second epoch, race dissolution, the Table 5 ablations, and the
   adaptive index integration. *)

open Dgrace_detectors
open Dgrace_shadow
open Tutil

let dynamic () = Dynamic_granularity.create ()

let check ?(det = dynamic) name events expected =
  let d = feed_events (det ()) events in
  Alcotest.(check int) name expected (race_count d)

(* basics: the dynamic detector is a full happens-before detector *)
let test_basic_races () =
  check "ww race" [ fork 0 1; wr 0 0x100; wr 1 0x100 ] 1;
  check "wr race" [ fork 0 1; wr 0 0x100; rd 1 0x100 ] 1;
  check "rw race" [ fork 0 1; rd 1 0x100; wr 0 0x100 ] 1;
  check "rr no race" [ fork 0 1; rd 0 0x100; rd 1 0x100 ] 0;
  check "lock ordering" [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ] 0

(* an initialisation sweep coalesces into few clocks *)
let test_init_coalescing () =
  let writes = List.map (fun i -> wr 0 (0x1000 + (4 * i))) (List.init 32 Fun.id) in
  let d = feed_events (dynamic ()) writes in
  Alcotest.(check int) "one clock for the whole sweep" 1
    (Accounting.peak_vcs d.Detector.account);
  (* the footprint (no-sharing) detector keeps one clock per access *)
  let d = feed_events (Dynamic_granularity.create ~sharing:false ()) writes in
  Alcotest.(check int) "footprint: one clock per word" 32
    (Accounting.peak_vcs d.Detector.account)

(* Table 5 ablation: no Init-state sharing -> higher peak clock count *)
let test_init_sharing_saves_memory () =
  let writes = List.map (fun i -> wr 0 (0x1000 + (4 * i))) (List.init 32 Fun.id) in
  let with_init = feed_events (dynamic ()) writes in
  let without =
    feed_events (Dynamic_granularity.create ~init_sharing:false ()) writes
  in
  Alcotest.(check bool) "init sharing reduces peak clocks" true
    (Accounting.peak_vcs with_init.Detector.account
     < Accounting.peak_vcs without.Detector.account)

(* Table 5 ablation: removing the Init state (single sharing decision
   at first access) produces false alarms on the init-then-partition
   pattern; the full machine does not *)
let init_then_partition =
  [
    (* t0 zeroes the pair of words in one epoch *)
    wr 0 0x100; wr 0 0x104;
    fork 0 1; fork 0 2;
    (* afterwards each element is consistently protected by its own lock *)
    acq 1; wr 1 0x100; rel 1;
    Dgrace_events.Event.Acquire { tid = 2; lock = 2; sync = Dgrace_events.Event.Lock };
    wr 2 0x104;
    Dgrace_events.Event.Release { tid = 2; lock = 2; sync = Dgrace_events.Event.Lock };
    (* second round in new epochs *)
    acq 1; wr 1 0x100; rel 1;
    Dgrace_events.Event.Acquire { tid = 2; lock = 2; sync = Dgrace_events.Event.Lock };
    wr 2 0x104;
    Dgrace_events.Event.Release { tid = 2; lock = 2; sync = Dgrace_events.Event.Lock };
  ]

let test_no_init_state_false_alarms () =
  check ~det:dynamic "full machine is precise" init_then_partition 0;
  let d =
    feed_events
      (Dynamic_granularity.create ~init_state:false ~init_sharing:false ())
      init_then_partition
  in
  Alcotest.(check bool) "no-Init-state variant false alarms" true (race_count d > 0)

(* the race dissolves a sharing group and reports its members *)
let test_dissolution_reports_members () =
  let evs =
    [
      (* t0 writes 4 words in one epoch: they share one clock *)
      wr 0 0x100; wr 0 0x104; wr 0 0x108; wr 0 0x10c;
      fork 0 1;
      (* t1 rewrites them in one epoch: still shared (second epoch,
         equal clocks, ordered by fork) *)
      wr 1 0x100; wr 1 0x104; wr 1 0x108; wr 1 0x10c;
      (* t0 races on one member: the whole group dissolves *)
      wr 0 0x104;
    ]
  in
  let d = feed_events (dynamic ()) evs in
  Alcotest.(check int) "one report per contiguous member run" 1 (race_count d);
  match races d with
  | [ r ] ->
    Alcotest.(check (pair int int)) "granule covers the group" (0x100, 0x110)
      (r.granule_lo, r.granule_hi)
  | _ -> Alcotest.fail "expected exactly one report"

(* after dissolution the location is parked: no further reports *)
let test_race_state_absorbing () =
  let evs =
    [ fork 0 1; wr 0 0x100; wr 1 0x100; wr 0 0x100; wr 1 0x100; rd 1 0x100 ]
  in
  check "single report" evs 1

(* packed sub-word fields with separate locks: the adaptive index keeps
   them apart (no ffmpeg-style false alarm) *)
let test_packed_fields_separate () =
  let evs =
    [
      fork 0 1;
      acq 0; wr ~size:1 0 0x100; rel 0;
      Dgrace_events.Event.Acquire { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      wr ~size:1 1 0x101;
      Dgrace_events.Event.Release { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      acq 0; wr ~size:1 0 0x100; rel 0;
      Dgrace_events.Event.Acquire { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      wr ~size:1 1 0x101;
      Dgrace_events.Event.Release { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
    ]
  in
  check "no false alarm on packed bytes" evs 0

(* unaligned racy bytes are found individually (the x264 case) *)
let test_unaligned_races () =
  let evs =
    [ fork 0 1; wr ~size:1 0 0x101; wr ~size:1 0 0x103;
      wr ~size:1 1 0x101; wr ~size:1 1 0x103 ]
  in
  let d = feed_events (dynamic ()) evs in
  Alcotest.(check int) "two distinct byte races" 2 (race_count d);
  (* the word detector masks them into one *)
  let dw = feed_events (Fasttrack.create ~granularity:4 ()) evs in
  Alcotest.(check int) "word masks to one" 1 (race_count dw)

(* the x264 packed-field scenario at offset 2: even but not
   word-aligned, the case the shadow table's old addr-land-1 default
   granularity masked into a word slot *)
let test_offset2_byte_race () =
  let base = 0x9000 in
  check "offset-2 byte race reported"
    [ fork 0 1; wr ~size:1 0 (base + 2); wr ~size:1 1 (base + 2) ]
    1;
  (* distinct bytes at offsets 2 and 3, each with its own lock: a word
     slot would collapse them into one location and false-alarm *)
  check "offset-2/3 under distinct locks stay apart"
    [
      fork 0 1;
      acq 0; wr ~size:1 0 (base + 2); rel 0;
      Dgrace_events.Event.Acquire { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      wr ~size:1 1 (base + 3);
      Dgrace_events.Event.Release { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      acq 0; wr ~size:1 0 (base + 2); rel 0;
      Dgrace_events.Event.Acquire { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      wr ~size:1 1 (base + 3);
      Dgrace_events.Event.Release { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
    ]
    0

(* splitting: after init together, one element accessed separately gets
   its own clock; its sibling keeps the shared one *)
let test_second_epoch_split () =
  let evs =
    [
      wr 0 0x100; wr 0 0x104;  (* shared Init cell *)
      acq 0; rel 0;  (* new epoch for t0 *)
      wr 0 0x100;  (* second-epoch access: split, settle private *)
    ]
  in
  let d = feed_events (dynamic ()) evs in
  (* split allocates a fresh clock: 1 (init) then split-off *)
  Alcotest.(check bool) "split created a clock" true
    (Accounting.total_vcs_created d.Detector.account >= 2);
  Alcotest.(check int) "no race" 0 (race_count d)

(* second-epoch re-coalescing: elements written separately but with
   equal clocks merge back (the pbzip2 pattern) *)
let test_second_epoch_merge () =
  let evs =
    [
      wr 0 0x100; wr 0 0x104; wr 0 0x108;  (* Init sweep *)
      acq 0; rel 0;
      (* one epoch later, same thread rewrites all three: each makes
         its firm decision and re-coalesces with its neighbour *)
      wr 0 0x100; wr 0 0x104; wr 0 0x108;
      acq 0; rel 0;
      wr 0 0x100; wr 0 0x104; wr 0 0x108;
    ]
  in
  let d = feed_events (dynamic ()) evs in
  Alcotest.(check int) "live clocks after merge" 1
    (Accounting.live_vcs d.Detector.account)

(* whole-cell bitmap marking: repeated reads of a coalesced block are
   same-epoch after the first *)
let test_cell_level_same_epoch () =
  let block = List.init 16 (fun i -> 0x100 + (4 * i)) in
  let evs =
    List.map (fun a -> wr 0 a) block
    @ [ acq 0; rel 0 ]
    @ List.map (fun a -> rd 0 a) block
    @ List.map (fun a -> rd 0 a) block
  in
  let d = feed_events (dynamic ()) evs in
  (* second read sweep must be filtered *)
  Alcotest.(check bool) "same-epoch ratio high" true
    (d.Detector.stats.same_epoch >= 16)

(* free() releases shared cells and recycled addresses start clean *)
let test_free_and_recycle () =
  let evs =
    [
      Dgrace_events.Event.Alloc { tid = 0; addr = 0x200; size = 16 };
      wr 0 0x200; wr 0 0x204; wr 0 0x208; wr 0 0x20c;
      free 0 0x200 16;
      fork 0 1;
      Dgrace_events.Event.Alloc { tid = 1; addr = 0x200; size = 16 };
      wr 1 0x200; wr 1 0x204;
    ]
  in
  let d = feed_events (dynamic ()) evs in
  Alcotest.(check int) "no false race on recycled memory" 0 (race_count d)

(* avg sharing statistic reflects coalescing *)
let test_avg_sharing_stat () =
  let writes = List.map (fun i -> wr 0 (0x1000 + (4 * i))) (List.init 32 Fun.id) in
  let d = feed_events (dynamic ()) writes in
  Alcotest.(check bool) "well above a word per clock" true
    (Accounting.avg_sharing d.Detector.account > 16.)

(* §VII extension: post-second-epoch resharing re-merges locations
   that settled Private but then keep matching their neighbour *)
let test_resharing_extension () =
  let evs =
    (* init together *)
    [ wr 0 0x100; wr 0 0x104 ]
    (* second epoch: updated under different locks -> settle Private *)
    @ [ acq 0; wr 0 0x100; rel 0;
        Dgrace_events.Event.Acquire { tid = 0; lock = 2; sync = Dgrace_events.Event.Lock };
        wr 0 0x104;
        Dgrace_events.Event.Release { tid = 0; lock = 2; sync = Dgrace_events.Event.Lock } ]
    (* afterwards: always updated wholesale in one epoch *)
    @ List.concat_map
        (fun _ -> [ acq 0; wr 0 0x100; wr 0 0x104; rel 0 ])
        (List.init 8 Fun.id)
  in
  let base = feed_events (dynamic ()) evs in
  let ext =
    feed_events (Dynamic_granularity.create ~reshare_after:4 ()) evs
  in
  Alcotest.(check int) "no races either way" 0 (race_count base + race_count ext);
  Alcotest.(check bool) "extension re-merged the clocks" true
    (Accounting.live_vcs ext.Detector.account
     < Accounting.live_vcs base.Detector.account)

(* §VII extension: write-guided read sharing joins a read location to a
   neighbour whose write clocks it already shares *)
let test_write_guided_reads () =
  let evs =
    [
      rd 0 0x100;  (* read cell A, epoch 1 *)
      acq 0; rel 0;
      rd 0 0x104;  (* read cell B, epoch 2 *)
      acq 0; rel 0;
      rd 0 0x104;  (* B settles Private *)
      acq 0; rel 0;
      wr 0 0x100; wr 0 0x104;  (* shared write cell; read states reset *)
      acq 0; rel 0;
      rd 0 0x100;  (* A's second epoch: can only merge via the writes *)
    ]
  in
  let base = feed_events (dynamic ()) evs in
  let ext =
    feed_events (Dynamic_granularity.create ~write_guided_reads:true ())
      evs
  in
  Alcotest.(check int) "no races" 0 (race_count base + race_count ext);
  Alcotest.(check bool) "write-guided sharing merged the read cells" true
    (Accounting.live_vcs ext.Detector.account
     < Accounting.live_vcs base.Detector.account)

let suites : unit Alcotest.test list =
  [
    ( "dynamic.detection",
      [
        Alcotest.test_case "basic races" `Quick test_basic_races;
        Alcotest.test_case "race state absorbing" `Quick test_race_state_absorbing;
        Alcotest.test_case "packed fields stay separate" `Quick test_packed_fields_separate;
        Alcotest.test_case "unaligned races found" `Quick test_unaligned_races;
        Alcotest.test_case "offset-2 packed bytes" `Quick test_offset2_byte_race;
        Alcotest.test_case "free and recycle" `Quick test_free_and_recycle;
      ] );
    ( "dynamic.sharing",
      [
        Alcotest.test_case "init coalescing" `Quick test_init_coalescing;
        Alcotest.test_case "init sharing saves memory" `Quick test_init_sharing_saves_memory;
        Alcotest.test_case "second-epoch split" `Quick test_second_epoch_split;
        Alcotest.test_case "second-epoch merge" `Quick test_second_epoch_merge;
        Alcotest.test_case "dissolution reporting" `Quick test_dissolution_reports_members;
        Alcotest.test_case "cell-level same-epoch" `Quick test_cell_level_same_epoch;
        Alcotest.test_case "avg sharing stat" `Quick test_avg_sharing_stat;
      ] );
    ( "dynamic.ablation",
      [
        Alcotest.test_case "no-Init-state false alarms" `Quick test_no_init_state_false_alarms;
      ] );
    ( "dynamic.extension",
      [
        Alcotest.test_case "post-second-epoch resharing" `Quick test_resharing_extension;
        Alcotest.test_case "write-guided read sharing" `Quick test_write_guided_reads;
      ] );
  ]
