(* Differential proof for the pipelined decode→detect replay and the
   page-clustered batch application (doc/trace.md, doc/shadow.md):

   - the pipelined replay must be bit-identical to the sequential
     batched path on races (content and order), stream stats,
     transition counts and exit code — corpus traces and random
     streams, sequential and sharded;
   - a trace cut at EVERY byte offset must fail through the pipeline
     with exactly the sequential error (same absolute offset, same
     events_read) after exactly the sequential prefix;
   - budget stops must pin the same stop_reason and partial summary;
   - page-clustered application (grouping a batch's rows by aligned
     share-granule page) must be report- and stats-identical to
     row-order application for the dynamic and fixed-granularity
     detectors, with and without vector-clock interning, sharded or
     not;
   - the batch ring honours its recycling protocol: FIFO, error only
     after drain, abort releases a blocked producer. *)

open Dgrace_events
open Dgrace_trace
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error
module Metrics = Dgrace_obs.Metrics
module Session = Dgrace_serve.Session

let tmp_file () = Filename.temp_file "dgrace" ".trace"
(* resolve next to the test binary so both `dune runtest` (cwd = test
   dir) and `dune exec test/test_main.exe` (cwd = project root) work *)
let corpus name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat "corpus" (name ^ ".trace.v2"))
let corpus_names = [ "clean"; "racy"; "deadlock_adjacent"; "straddle" ]

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let fold_feed path consume =
  Trace_format_v2.fold_batches path (fun () b -> consume b) ()

let report = Alcotest.testable (Fmt.of_to_string Report.to_string) ( = )

let json =
  Alcotest.testable
    (Fmt.of_to_string Dgrace_obs.Json.to_string)
    Dgrace_obs.Json.equal

let transitions_json (s : Engine.summary) =
  match s.transitions with
  | None -> Dgrace_obs.Json.Null
  | Some m -> Dgrace_obs.State_matrix.to_json m

let stats_tuple (s : Engine.summary) =
  let r = s.stats in
  Dgrace_detectors.Run_stats.
    (r.accesses, r.reads, r.writes, r.same_epoch, r.sync_ops, r.allocs, r.frees)

let check_equivalent ~ctx (a : Engine.summary) (b : Engine.summary) =
  Alcotest.(check (list report)) (ctx ^ ": race reports") a.races b.races;
  Alcotest.(check int) (ctx ^ ": race count") a.race_count b.race_count;
  Alcotest.(check int) (ctx ^ ": suppressed") a.suppressed b.suppressed;
  Alcotest.check json (ctx ^ ": transitions") (transitions_json a)
    (transitions_json b);
  Alcotest.(check int)
    (ctx ^ ": exit code")
    (Engine.exit_code_of_summary a)
    (Engine.exit_code_of_summary b);
  if stats_tuple a <> stats_tuple b then
    Alcotest.failf "%s: stream stats differ" ctx

(* boolean form for qcheck laws *)
let equivalent (a : Engine.summary) (b : Engine.summary) =
  List.map Report.to_string a.races = List.map Report.to_string b.races
  && a.race_count = b.race_count
  && Dgrace_obs.Json.equal (transitions_json a) (transitions_json b)
  && stats_tuple a = stats_tuple b

(* ------------------------------------------------------------------ *)
(* batch ring protocol *)

exception Boom

let test_ring_fifo () =
  let ring = Batch_ring.create ~slots:4 () in
  for i = 1 to 3 do
    match Batch_ring.acquire ring with
    | None -> Alcotest.fail "acquire returned None without an abort"
    | Some b ->
      Alcotest.(check int) "acquired batch is cleared" 0 (Batch.length b);
      Batch.push b ~off:i (Event.Thread_exit { tid = i });
      Batch_ring.publish ring b
  done;
  Batch_ring.close ring;
  for i = 1 to 3 do
    match Batch_ring.take ring with
    | None -> Alcotest.failf "ring drained %d batches early" (3 - i + 1)
    | Some b ->
      Alcotest.(check int) "FIFO order" i b.Batch.off.(0);
      Batch_ring.recycle ring b
  done;
  (match Batch_ring.take ring with
   | None -> ()
   | Some _ -> Alcotest.fail "batch after clean close drained");
  Alcotest.(check int) "blocks counted" 3 (Batch_ring.blocks ring)

let test_ring_error_after_drain () =
  (* a close error reaches the consumer only once every published
     batch was taken — the pipeline's corruption-offset guarantee *)
  let ring = Batch_ring.create ~slots:4 () in
  (match Batch_ring.acquire ring with
   | Some b ->
     Batch.push b (Event.Thread_exit { tid = 7 });
     Batch_ring.publish ring b
   | None -> Alcotest.fail "acquire");
  Batch_ring.close ~error:Boom ring;
  (match Batch_ring.take ring with
   | Some b -> Batch_ring.recycle ring b
   | None -> Alcotest.fail "published batch lost behind the error");
  match Batch_ring.take ring with
  | exception Boom -> ()
  | _ -> Alcotest.fail "close error not re-raised after drain"

let test_ring_abort_unblocks () =
  let ring = Batch_ring.create ~slots:2 () in
  let producer =
    Domain.spawn (fun () ->
        let published = ref 0 in
        let rec loop () =
          match Batch_ring.acquire ring with
          | None -> !published  (* woken by abort *)
          | Some b ->
            incr published;
            Batch_ring.publish ring b;
            loop ()
        in
        loop ())
  in
  (* consume one batch so the producer is demonstrably running, then
     abort while it is (or is about to be) blocked on a full ring *)
  (match Batch_ring.take ring with
   | Some b -> Batch_ring.recycle ring b
   | None -> Alcotest.fail "no batch from producer");
  Batch_ring.abort ring;
  let published = Domain.join producer in
  Alcotest.(check bool) "producer published then stopped" true (published >= 1)

(* ------------------------------------------------------------------ *)
(* feed: row-for-row agreement with the sequential reader *)

let rows_of feed path =
  let rows = ref [] in
  feed path (fun b ->
      for i = 0 to Batch.length b - 1 do
        rows := (b.Batch.off.(i), Event.to_string (Batch.event b i)) :: !rows
      done);
  List.rev !rows

let test_feed_matches_fold () =
  List.iter
    (fun name ->
      let path = corpus name in
      let seq = rows_of fold_feed path in
      let blocks = ref 0 in
      let pipe =
        rows_of
          (fun p consume ->
            let s = Trace_pipeline.feed p consume in
            blocks := s.Trace_pipeline.blocks)
          path
      in
      if seq <> pipe then Alcotest.failf "%s: rows differ" name;
      Alcotest.(check bool) (name ^ ": blocks counted") true (!blocks >= 1))
    corpus_names

(* ------------------------------------------------------------------ *)
(* engine-level differential on the corpus, sequential and sharded *)

let diff_corpus name () =
  let path = corpus name in
  let events = Trace_format_v2.read_file path in
  List.iter
    (fun spec ->
      let seq = Engine.replay_batches ~spec (fold_feed path) in
      let pipe = Engine.replay_pipelined ~spec path in
      let ctx = Printf.sprintf "%s %s pipelined" name (Spec.name spec) in
      check_equivalent ~ctx seq pipe;
      (* the pipeline gauges land in the summary metrics *)
      Alcotest.(check bool) (ctx ^ ": pipeline.blocks gauge") true
        (List.mem_assoc "pipeline.blocks" (Metrics.gauges pipe.metrics));
      List.iter
        (fun shards ->
          let base = Engine.replay_sharded ~shards ~spec (List.to_seq events) in
          let sp = Engine.replay_sharded_pipelined ~shards ~spec path in
          let ctx =
            Printf.sprintf "%s %s sharded=%d pipelined" name (Spec.name spec)
              shards
          in
          check_equivalent ~ctx base sp)
        [ 1; 4 ])
    [ Spec.dynamic; Spec.word ]

(* ------------------------------------------------------------------ *)
(* corruption: every truncation offset, pipelined = sequential *)

type cut_outcome = Clean of int | Corrupt of int * int * int
(* Clean rows | Corrupt (rows consumed, absolute offset, events_read) *)

let cut_outcome feed path =
  let rows = ref 0 in
  match feed path (fun b -> rows := !rows + Batch.length b) with
  | _ -> Clean !rows
  | exception Error.E (Error.Corrupt_trace c) ->
    Corrupt (!rows, c.offset, c.events_read)

let test_truncate_every_offset_pipelined () =
  let path = tmp_file () in
  let (), _ =
    Trace_format_v2.to_file path (fun sink ->
        for _ = 1 to 3 do
          List.iter sink Test_trace_v2.sample_events
        done)
  in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let cut_path = tmp_file () in
  for cut = 0 to String.length full - 1 do
    write_file cut_path (String.sub full 0 cut);
    let seq = cut_outcome fold_feed cut_path in
    let pipe =
      cut_outcome (fun p consume -> ignore (Trace_pipeline.feed p consume))
        cut_path
    in
    (match (seq, pipe) with
     | Clean a, Clean b when a = b -> ()
     | Corrupt (r1, o1, e1), Corrupt (r2, o2, e2)
       when r1 = r2 && o1 = o2 && e1 = e2 ->
       ()
     | _ ->
       let show = function
         | Clean r -> Printf.sprintf "clean after %d rows" r
         | Corrupt (r, o, e) ->
           Printf.sprintf "corrupt at byte %d (rows %d, events_read %d)" o r e
       in
       Alcotest.failf "cut at %d: sequential %s, pipelined %s" cut (show seq)
         (show pipe))
  done;
  Sys.remove cut_path

let test_corrupt_corpus_error_identity () =
  (* the bundled truncated trace, through the full engine *)
  let path = corpus "truncated" in
  let run f = match f () with _ -> None | exception Error.E e -> Some e in
  let seq = run (fun () -> Engine.replay_batches ~spec:Spec.dynamic (fold_feed path)) in
  let pipe = run (fun () -> Engine.replay_pipelined ~spec:Spec.dynamic path) in
  let sp = run (fun () ->
      Engine.replay_sharded_pipelined ~shards:4 ~spec:Spec.dynamic path)
  in
  let err = Alcotest.testable (Fmt.of_to_string Error.to_string) ( = ) in
  Alcotest.(check (option err)) "pipelined error identical" seq pipe;
  Alcotest.(check (option err)) "sharded pipelined error identical" seq sp;
  Alcotest.(check bool) "it is an error" true (seq <> None)

(* ------------------------------------------------------------------ *)
(* budget stop identity *)

let test_budget_stop_identity () =
  let path = corpus "racy" in
  List.iter
    (fun limit ->
      let seq =
        Engine.replay_batches
          ~budget:(Budget.make ~max_events:limit ())
          ~spec:Spec.dynamic (fold_feed path)
      in
      let pipe =
        Engine.replay_pipelined
          ~budget:(Budget.make ~max_events:limit ())
          ~spec:Spec.dynamic path
      in
      let stop = function
        | None -> "none"
        | Some s -> Budget.stop_to_string s
      in
      let ctx = Printf.sprintf "max_events=%d" limit in
      Alcotest.(check string)
        (ctx ^ ": stop reason")
        (stop seq.partial) (stop pipe.partial);
      check_equivalent ~ctx seq pipe)
    [ 1; 5; 1_000_000 ]

(* ------------------------------------------------------------------ *)
(* serve: split decode/apply = inline feed_batch_frame *)

let test_session_pipelined_feed () =
  let bodies =
    (* several blocks so location interning crosses frames *)
    let enc = Trace_format_v2.block_encoder () in
    List.map
      (fun events -> Trace_format_v2.encode_body enc (Batch.of_events events))
      [
        Test_trace_v2.sample_events;
        Test_trace_v2.sample_events;
        [
          Event.Access
            { tid = 0; kind = Write; addr = 0x40; size = 4; loc = "a" };
          Event.Access
            { tid = 1; kind = Write; addr = 0x40; size = 4; loc = "b" };
        ];
      ]
  in
  let inline = Session.open_ ~id:1 ~spec:Spec.dynamic () in
  let split = Session.open_ ~id:2 ~spec:Spec.dynamic () in
  List.iter
    (fun body ->
      let a =
        match Session.feed_batch_frame inline body with
        | Ok ack -> ack
        | Error e -> Alcotest.failf "inline feed failed: %s" (Error.to_string e)
      in
      let b =
        match Session.decode_batch_frame split body with
        | Error e -> Alcotest.failf "decode failed: %s" (Error.to_string e)
        | Ok batch -> (
          match Session.apply_decoded split batch with
          | Ok ack -> ack
          | Error e ->
            Alcotest.failf "apply failed: %s" (Error.to_string e))
      in
      Alcotest.(check int) "ack events" a.Session.ack_events b.Session.ack_events;
      Alcotest.(check (list report)) "ack races" a.Session.new_races
        b.Session.new_races)
    bodies;
  match (Session.finalize inline, Session.finalize split) with
  | Ok a, Ok b -> check_equivalent ~ctx:"session pipelined" a b
  | _ -> Alcotest.fail "finalize failed"

let test_session_decode_error_poisons_in_order () =
  let t = Session.open_ ~id:3 ~spec:Spec.dynamic () in
  match Session.decode_batch_frame t "\xff\xff\xff garbage" with
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error e -> (
    (match Session.poison_decoded t e with
     | Ok _ -> Alcotest.fail "poison_decoded returned Ok"
     | Error _ -> ());
    match Session.state t with
    | `Poisoned _ -> ()
    | _ -> Alcotest.fail "session not poisoned")

(* ------------------------------------------------------------------ *)
(* qcheck laws (fixed seed in CI via QCHECK_SEED) *)

let arb_events = QCheck.small_list Test_trace.arb_event

let with_v2 events f =
  let v2 = tmp_file () in
  let (), _ = Trace_format_v2.to_file v2 (fun sink -> List.iter sink events) in
  Fun.protect ~finally:(fun () -> Sys.remove v2) (fun () -> f v2)

let qcheck_page_cluster_law =
  QCheck.Test.make
    ~name:
      "pipeline: page-clustered = row-order (dynamic+word x intern x shards)"
    ~count:25 arb_events (fun events ->
      with_v2 events (fun v2 ->
          List.for_all
            (fun spec ->
              List.for_all
                (fun vc_intern ->
                  let base =
                    Engine.replay_batches ~vc_intern ~page_cluster:false ~spec
                      (fold_feed v2)
                  in
                  let clustered =
                    Engine.replay_batches ~vc_intern ~page_cluster:true ~spec
                      (fold_feed v2)
                  in
                  equivalent base clustered
                  && List.for_all
                       (fun shards ->
                         let sh =
                           Engine.replay_sharded ~vc_intern ~page_cluster:true
                             ~shards ~spec (List.to_seq events)
                         in
                         equivalent base sh)
                       [ 1; 4 ])
                [ true; false ])
            [ Spec.dynamic; Spec.word ]))

let qcheck_pipelined_identical =
  QCheck.Test.make ~name:"pipeline: pipelined replay = sequential batched"
    ~count:25 arb_events (fun events ->
      with_v2 events (fun v2 ->
          List.for_all
            (fun spec ->
              let seq = Engine.replay_batches ~spec (fold_feed v2) in
              let pipe = Engine.replay_pipelined ~spec v2 in
              let sharded = Engine.replay_sharded_pipelined ~shards:4 ~spec v2 in
              equivalent seq pipe && equivalent seq sharded)
            [ Spec.dynamic; Spec.word ]))

let suites : unit Alcotest.test list =
  [
    ( "pipeline.ring",
      [
        Alcotest.test_case "fifo + clean close" `Quick test_ring_fifo;
        Alcotest.test_case "error only after drain" `Quick
          test_ring_error_after_drain;
        Alcotest.test_case "abort unblocks producer" `Quick
          test_ring_abort_unblocks;
      ] );
    ( "pipeline.feed",
      [
        Alcotest.test_case "rows match sequential reader" `Quick
          test_feed_matches_fold;
        Alcotest.test_case "truncate at every offset" `Quick
          test_truncate_every_offset_pipelined;
      ] );
    ( "pipeline.engine",
      List.map
        (fun name ->
          Alcotest.test_case ("corpus differential: " ^ name) `Quick
            (diff_corpus name))
        corpus_names
      @ [
          Alcotest.test_case "corrupt corpus error identity" `Quick
            test_corrupt_corpus_error_identity;
          Alcotest.test_case "budget stop identity" `Quick
            test_budget_stop_identity;
          QCheck_alcotest.to_alcotest qcheck_page_cluster_law;
          QCheck_alcotest.to_alcotest qcheck_pipelined_identical;
        ] );
    ( "pipeline.serve",
      [
        Alcotest.test_case "split decode/apply = inline" `Quick
          test_session_pipelined_feed;
        Alcotest.test_case "decode error poisons in order" `Quick
          test_session_decode_error_poisons_in_order;
      ] );
  ]
