(* The cooperative simulator: event correctness, scheduling
   determinism, synchronisation semantics, memory allocator. *)

open Dgrace_sim
open Dgrace_events

let record ?policy prog =
  let events = ref [] in
  let r = Sim.run ?policy ~sink:(fun e -> events := e :: !events) prog in
  (r, List.rev !events)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_order_single_thread () =
  let _, evs = record (fun () ->
      let a = Sim.malloc 8 in
      Sim.write a 4;
      Sim.read a 4;
      Sim.free a)
  in
  let kinds = List.map (function
      | Event.Alloc _ -> "alloc" | Event.Access { kind = Write; _ } -> "w"
      | Event.Access { kind = Read; _ } -> "r" | Event.Free _ -> "free"
      | Event.Thread_exit _ -> "exit" | _ -> "?") evs
  in
  Alcotest.(check (list string)) "order" [ "alloc"; "w"; "r"; "free"; "exit" ] kinds

let test_result_counters () =
  let r, _ = record (fun () ->
      let a = Sim.malloc 100 in
      Sim.write a 4;
      let t = Sim.spawn (fun () -> Sim.read a 4) in
      Sim.join t;
      Sim.free a)
  in
  check_int "threads" 2 r.threads;
  check_int "accesses" 2 r.accesses;
  check_int "allocated" 100 r.total_allocated

let test_determinism () =
  let prog () =
    let a = Sim.static_alloc 64 in
    let m = Sim.mutex () in
    let ts = List.init 3 (fun i -> Sim.spawn (fun () ->
        for k = 0 to 9 do
          Sim.with_lock m (fun () -> Sim.write (a + 4 * ((i + k) mod 16)) 4)
        done))
    in
    List.iter Sim.join ts
  in
  (* sync-object ids are globally unique, so two runs differ in raw
     ids; compare the streams with lock ids renamed to first-use order *)
  let normalize evs =
    let ids = Hashtbl.create 8 in
    let rename l =
      match Hashtbl.find_opt ids l with
      | Some x -> x
      | None ->
        let x = Hashtbl.length ids in
        Hashtbl.replace ids l x;
        x
    in
    List.map
      (fun e ->
        match e with
        | Event.Acquire a -> Event.Acquire { a with lock = rename a.lock }
        | Event.Release r -> Event.Release { r with lock = rename r.lock }
        | e -> e)
      evs
  in
  let same policy =
    let _, e1 = record ~policy prog in
    let _, e2 = record ~policy prog in
    List.map Event.to_string (normalize e1)
    = List.map Event.to_string (normalize e2)
  in
  check_bool "round robin deterministic" true (same Scheduler.Round_robin);
  check_bool "random deterministic per seed" true (same (Scheduler.Random_each 7));
  check_bool "chunked deterministic per seed" true
    (same (Scheduler.Chunked { seed = 3; chunk = 16 }))

let test_policies_differ () =
  let prog () =
    let a = Sim.static_alloc 8 in
    let ts = List.init 2 (fun _ -> Sim.spawn (fun () ->
        for _ = 0 to 9 do Sim.write a 4 done))
    in
    List.iter Sim.join ts
  in
  let _, e1 = record ~policy:(Scheduler.Random_each 1) prog in
  let _, e2 = record ~policy:(Scheduler.Random_each 2) prog in
  check_bool "different seeds interleave differently" true
    (List.map Event.to_string e1 <> List.map Event.to_string e2)

let test_mutex_mutual_exclusion () =
  (* replaying the event stream, the lock is never acquired while held *)
  let m = ref None in
  let prog () =
    let mu = Sim.mutex () in
    m := Some mu;
    let a = Sim.static_alloc 4 in
    let ts = List.init 4 (fun _ -> Sim.spawn (fun () ->
        for _ = 0 to 19 do Sim.with_lock mu (fun () -> Sim.write a 4) done))
    in
    List.iter Sim.join ts
  in
  let _, evs = record ~policy:(Scheduler.Random_each 5) prog in
  let lid = Sim.mutex_id (Option.get !m) in
  let held = ref (-1) in
  List.iter
    (function
      | Event.Acquire { tid; lock; _ } when lock = lid ->
        check_int "acquired only when free" (-1) !held;
        held := tid
      | Event.Release { tid; lock; _ } when lock = lid ->
        check_int "released by holder" tid !held;
        held := -1
      | _ -> ())
    evs

let test_lock_error_cases () =
  Alcotest.check_raises "relock" (Invalid_argument "Sim.lock: mutex already held by caller")
    (fun () ->
      ignore (Sim.run (fun () ->
          let m = Sim.mutex () in
          Sim.lock m;
          Sim.lock m)));
  Alcotest.check_raises "unlock not held" (Invalid_argument "Sim.unlock: mutex not held by caller")
    (fun () -> ignore (Sim.run (fun () -> Sim.unlock (Sim.mutex ()))))

let test_deadlock_detection () =
  let raised = ref false in
  (try
     ignore (Sim.run ~policy:Scheduler.Round_robin (fun () ->
         let m1 = Sim.mutex () and m2 = Sim.mutex () in
         let t = Sim.spawn (fun () ->
             Sim.lock m2;
             Sim.yield ();
             Sim.lock m1;
             Sim.unlock m1;
             Sim.unlock m2)
         in
         Sim.lock m1;
         Sim.yield ();
         Sim.lock m2;
         Sim.unlock m2;
         Sim.unlock m1;
         Sim.join t))
   with Sim.Deadlock { blocked; held } ->
     raised := true;
     check_int "both threads blocked" 2 (List.length blocked);
     check_int "both locks held" 2 (List.length held));
  check_bool "deadlock raised" true !raised

let test_join_semantics () =
  let order = ref [] in
  let _, _ = record (fun () ->
      let t = Sim.spawn (fun () -> order := "child" :: !order) in
      Sim.join t;
      order := "parent" :: !order)
  in
  Alcotest.(check (list string)) "join waits" [ "parent"; "child" ] !order

let test_join_already_exited () =
  let _, evs = record (fun () ->
      let t = Sim.spawn (fun () -> ()) in
      (* let the child run to completion first *)
      for _ = 0 to 5 do Sim.yield () done;
      Sim.join t)
  in
  let joins = List.filter (function Event.Join _ -> true | _ -> false) evs in
  check_int "join event emitted" 1 (List.length joins)

let test_barrier_all_arrive_before_depart () =
  let prog () =
    let b = Sim.barrier 3 in
    let ts = List.init 2 (fun _ -> Sim.spawn (fun () -> Sim.barrier_wait b)) in
    Sim.barrier_wait b;
    List.iter Sim.join ts
  in
  let _, evs = record ~policy:(Scheduler.Random_each 11) prog in
  (* all three releases (arrivals) precede all three acquires (departures) *)
  let seq = List.filter_map (function
      | Event.Release { sync = Event.Barrier; _ } -> Some `R
      | Event.Acquire { sync = Event.Barrier; _ } -> Some `A
      | _ -> None) evs
  in
  Alcotest.(check (list bool)) "arrivals before departures"
    [ true; true; true; false; false; false ]
    (List.map (fun x -> x = `R) seq)

let test_barrier_reusable () =
  let counter = ref 0 in
  let _, _ = record (fun () ->
      let b = Sim.barrier 2 in
      let t = Sim.spawn (fun () ->
          Sim.barrier_wait b;
          Sim.barrier_wait b;
          incr counter)
      in
      Sim.barrier_wait b;
      Sim.barrier_wait b;
      incr counter;
      Sim.join t)
  in
  check_int "both passed two generations" 2 !counter

let test_event_flag () =
  let seen = ref false in
  let _, _ = record (fun () ->
      let f = Sim.event () in
      let t = Sim.spawn (fun () -> Sim.event_wait f; seen := true) in
      for _ = 0 to 3 do Sim.yield () done;
      check_bool "waiter blocked until set" false !seen;
      Sim.event_set f;
      Sim.join t)
  in
  check_bool "woken after set" true !seen

let test_try_lock () =
  let results = ref [] in
  let _, evs = record (fun () ->
      let m = Sim.mutex () in
      Sim.lock m;
      let t = Sim.spawn (fun () -> results := Sim.try_lock m :: !results) in
      Sim.join t;
      Sim.unlock m;
      results := Sim.try_lock m :: !results;
      Sim.unlock m)
  in
  Alcotest.(check (list bool)) "busy then free" [ true; false ] !results;
  let acquires = List.length (List.filter (function Event.Acquire _ -> true | _ -> false) evs) in
  check_int "failed try_lock emits nothing" 2 acquires

let test_condition_variable () =
  let log = ref [] in
  let _, _ = record ~policy:Scheduler.Round_robin (fun () ->
      let m = Sim.mutex () in
      let cv = Sim.condition () in
      let consumer = Sim.spawn (fun () ->
          Sim.lock m;
          log := "wait" :: !log;
          Sim.cond_wait cv m;
          log := "woken" :: !log;
          Sim.unlock m)
      in
      for _ = 0 to 5 do Sim.yield () done;
      Sim.lock m;
      log := "signal" :: !log;
      Sim.cond_signal cv;
      Sim.unlock m;
      Sim.join consumer)
  in
  Alcotest.(check (list string)) "wait blocks until signal"
    [ "woken"; "signal"; "wait" ] !log

let test_condition_broadcast () =
  let woken = ref 0 in
  let _, _ = record (fun () ->
      let m = Sim.mutex () in
      let cv = Sim.condition () in
      let entered = ref 0 in
      let ts = List.init 3 (fun _ -> Sim.spawn (fun () ->
          Sim.lock m;
          incr entered;
          Sim.cond_wait cv m;
          incr woken;
          Sim.unlock m))
      in
      while !entered < 3 do Sim.yield () done;
      (* all three hold-or-queued; one more lock round makes sure the
         last one reached the wait *)
      Sim.with_lock m (fun () -> ());
      Sim.with_lock m (fun () -> Sim.cond_broadcast cv);
      List.iter Sim.join ts)
  in
  check_int "all woken" 3 !woken

let test_cond_wait_requires_mutex () =
  Alcotest.check_raises "not held"
    (Invalid_argument "Sim.cond_wait: mutex not held by caller") (fun () ->
      ignore (Sim.run (fun () -> Sim.cond_wait (Sim.condition ()) (Sim.mutex ()))))

let test_cond_gives_hb_edge () =
  (* signaller's prior writes are ordered before the woken waiter *)
  let open Dgrace_detectors in
  let d = Dynamic_granularity.create () in
  let _ = Sim.run ~sink:d.Detector.on_event (fun () ->
      let m = Sim.mutex () and cv = Sim.condition () in
      let a = Sim.static_alloc 4 in
      let entered = ref false in
      let t = Sim.spawn (fun () ->
          Sim.lock m;
          entered := true;
          Sim.cond_wait cv m;
          Sim.read a 4;
          Sim.unlock m)
      in
      while not !entered do Sim.yield () done;
      Sim.with_lock m (fun () -> ());
      Sim.write a 4;
      Sim.with_lock m (fun () -> Sim.cond_signal cv);
      Sim.join t)
  in
  d.finish ();
  check_int "cond wait orders the read" 0 (Detector.race_count d)

let test_semaphore () =
  let order = ref [] in
  let _, _ = record ~policy:Scheduler.Round_robin (fun () ->
      let s = Sim.semaphore 0 in
      let t = Sim.spawn (fun () ->
          Sim.sem_wait s;
          order := "consumed" :: !order)
      in
      for _ = 0 to 5 do Sim.yield () done;
      order := "posting" :: !order;
      Sim.sem_post s;
      Sim.join t)
  in
  Alcotest.(check (list string)) "wait blocks until post"
    [ "consumed"; "posting" ] !order

let test_semaphore_counts () =
  let acquired = ref 0 in
  let _, _ = record (fun () ->
      let s = Sim.semaphore 2 in
      Sim.sem_wait s;
      incr acquired;
      Sim.sem_wait s;
      incr acquired;
      Sim.sem_post s;
      Sim.sem_wait s;
      incr acquired)
  in
  check_int "initial permits plus a post" 3 !acquired

let test_semaphore_hb_edge () =
  let open Dgrace_detectors in
  let d = Dynamic_granularity.create () in
  let _ = Sim.run ~sink:d.Detector.on_event (fun () ->
      let s = Sim.semaphore 0 in
      let a = Sim.static_alloc 4 in
      let t = Sim.spawn (fun () ->
          Sim.sem_wait s;
          Sim.write a 4)
      in
      Sim.write a 4;
      Sim.sem_post s;
      Sim.join t)
  in
  d.finish ();
  check_int "post orders the writes" 0 (Detector.race_count d)

let test_atomic_load_store () =
  let open Dgrace_detectors in
  let d = Dynamic_granularity.create () in
  let _ = Sim.run ~sink:d.Detector.on_event (fun () ->
      let a = Sim.static_alloc 4 in
      let t = Sim.spawn (fun () -> Sim.atomic_load a 4) in
      Sim.atomic_store a 4;
      Sim.join t)
  in
  d.finish ();
  check_int "atomics never race" 0 (Detector.race_count d)

let test_atomic_events () =
  let _, evs = record (fun () -> Sim.atomic_rmw 0x1000 4) in
  let shapes = List.filter_map (function
      | Event.Acquire { sync = Event.Atomic; _ } -> Some "acq"
      | Event.Release { sync = Event.Atomic; _ } -> Some "rel"
      | Event.Access { kind = Read; _ } -> Some "r"
      | Event.Access { kind = Write; _ } -> Some "w"
      | _ -> None) evs
  in
  Alcotest.(check (list string)) "atomic is acq/r/w/rel" [ "acq"; "r"; "w"; "rel" ] shapes

let test_self_ids () =
  let ids = ref [] in
  let _, _ = record (fun () ->
      ids := Sim.self () :: !ids;
      let t = Sim.spawn (fun () -> ids := Sim.self () :: !ids) in
      Sim.join t)
  in
  Alcotest.(check (list int)) "tids" [ 1; 0 ] !ids

let test_many_threads () =
  let n = 500 in
  let sum = ref 0 in
  let r, _ = record (fun () ->
      let a = Sim.static_alloc (4 * n) in
      let ts = List.init n (fun i -> Sim.spawn (fun () ->
          Sim.write (a + (4 * i)) 4;
          incr sum))
      in
      List.iter Sim.join ts)
  in
  check_int "all ran" n !sum;
  check_int "thread count" (n + 1) r.threads

let test_thread_limit () =
  Alcotest.check_raises "tid space bounded"
    (Invalid_argument "Sim.spawn: more than 1024 threads") (fun () ->
      ignore (Sim.run (fun () ->
          for _ = 1 to 1100 do
            ignore (Sim.spawn (fun () -> ()))
          done)))

let test_memory_allocator () =
  let m = Memory.create () in
  let a = Memory.alloc m 100 in
  let b = Memory.alloc m 100 in
  check_bool "blocks disjoint" true (b >= a + 100 || a >= b + 100);
  check_int "live" 200 (Memory.live_bytes m);
  Alcotest.(check (option int)) "size_of" (Some 100) (Memory.size_of m a);
  check_int "free returns size" 100 (Memory.free m a);
  check_int "live after free" 100 (Memory.live_bytes m);
  let c = Memory.alloc m 100 in
  check_int "freed block recycled" a c;
  check_int "total allocated accumulates" 300 (Memory.total_allocated m);
  check_int "alloc count" 3 (Memory.alloc_count m);
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Memory.free: unknown address 0x%x" b))
    (fun () -> ignore (Memory.free m b); ignore (Memory.free m b))

let test_memory_alignment () =
  let m = Memory.create () in
  let a = Memory.alloc m ~align:64 10 in
  check_int "aligned" 0 (a land 63);
  let s = Memory.alloc_static m ~align:16 5 in
  check_int "static aligned" 0 (s land 15)

let test_calloc_emits_init_write () =
  let _, evs = record (fun () -> ignore (Sim.calloc ~loc:"init" 32)) in
  let writes = List.filter (function
      | Event.Access { kind = Write; size = 32; loc = "init"; _ } -> true
      | _ -> false) evs
  in
  check_int "zeroing write" 1 (List.length writes)

let test_alloc_free_events_carry_size () =
  let _, evs = record (fun () ->
      let a = Sim.malloc 48 in
      Sim.free a)
  in
  List.iter (function
      | Event.Alloc { size; _ } -> check_int "alloc size" 48 size
      | Event.Free { size; _ } -> check_int "free size" 48 size
      | _ -> ()) evs

let suites : unit Alcotest.test list =
    [
      ( "sim.events",
        [
          Alcotest.test_case "single-thread order" `Quick test_event_order_single_thread;
          Alcotest.test_case "result counters" `Quick test_result_counters;
          Alcotest.test_case "atomic op shape" `Quick test_atomic_events;
          Alcotest.test_case "alloc/free sizes" `Quick test_alloc_free_events_carry_size;
          Alcotest.test_case "calloc init write" `Quick test_calloc_emits_init_write;
        ] );
      ( "sim.scheduling",
        [
          Alcotest.test_case "determinism per seed" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_policies_differ;
          Alcotest.test_case "self ids" `Quick test_self_ids;
        ] );
      ( "sim.sync",
        [
          Alcotest.test_case "mutex mutual exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "lock misuse errors" `Quick test_lock_error_cases;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "join waits" `Quick test_join_semantics;
          Alcotest.test_case "join after exit" `Quick test_join_already_exited;
          Alcotest.test_case "barrier ordering" `Quick test_barrier_all_arrive_before_depart;
          Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "event flag" `Quick test_event_flag;
          Alcotest.test_case "try_lock" `Quick test_try_lock;
          Alcotest.test_case "condition wait/signal" `Quick test_condition_variable;
          Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
          Alcotest.test_case "cond_wait requires mutex" `Quick test_cond_wait_requires_mutex;
          Alcotest.test_case "cond gives HB edge" `Quick test_cond_gives_hb_edge;
          Alcotest.test_case "semaphore blocks" `Quick test_semaphore;
          Alcotest.test_case "semaphore counts" `Quick test_semaphore_counts;
          Alcotest.test_case "semaphore HB edge" `Quick test_semaphore_hb_edge;
          Alcotest.test_case "atomic load/store" `Quick test_atomic_load_store;
        ] );
      ( "sim.memory",
        [
          Alcotest.test_case "allocator" `Quick test_memory_allocator;
          Alcotest.test_case "500 threads" `Quick test_many_threads;
          Alcotest.test_case "thread-id limit" `Quick test_thread_limit;
          Alcotest.test_case "alignment" `Quick test_memory_alignment;
        ] );
    ]
