(* Unit coverage for the smaller building blocks: the thread/lock clock
   environment, the adaptive read representation, lock tracking, the
   scheduler picker, the memory allocator, and race-info helpers. *)

open Dgrace_vclock
open Dgrace_detectors

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Vc_env *)

let test_vc_env_epochs () =
  let env = Vc_env.create () in
  check_int "fresh thread clock" 1 (Epoch.clock (Vc_env.epoch_of env 0));
  Vc_env.release env ~tid:0 ~lock:1;
  check_int "release starts a new epoch" 2 (Epoch.clock (Vc_env.epoch_of env 0));
  (* the other thread learns t0's released clock on acquire *)
  Vc_env.acquire env ~tid:1 ~lock:1;
  check_int "acquired knowledge" 1 (Vector_clock.get (Vc_env.clock_of env 1) 0);
  check_int "own clock unchanged by acquire" 1
    (Epoch.clock (Vc_env.epoch_of env 1))

let test_vc_env_fork_join () =
  let env = Vc_env.create () in
  Vc_env.release env ~tid:0 ~lock:9;  (* t0 now at clock 2 *)
  Vc_env.fork env ~parent:0 ~child:1;
  check_int "child inherits parent" 2 (Vector_clock.get (Vc_env.clock_of env 1) 0);
  check_int "fork bumps parent" 3 (Epoch.clock (Vc_env.epoch_of env 0));
  Vc_env.release env ~tid:1 ~lock:8;
  Vc_env.join env ~parent:0 ~child:1;
  check_bool "parent dominates child after join" true
    (Vector_clock.leq (Vc_env.clock_of env 1) (Vc_env.clock_of env 0))

let test_vc_env_handle_boundaries () =
  let env = Vc_env.create () in
  let boundaries = ref [] in
  let on_boundary tid = boundaries := tid :: !boundaries in
  let handled e = Vc_env.handle env e ~on_boundary in
  let open Dgrace_events.Event in
  check_bool "acquire handled" true (handled (Acquire { tid = 0; lock = 1; sync = Lock }));
  check_bool "release handled" true (handled (Release { tid = 0; lock = 1; sync = Lock }));
  check_bool "fork handled" true (handled (Fork { parent = 0; child = 1 }));
  check_bool "exit handled" true (handled (Thread_exit { tid = 1 }));
  check_bool "access not handled" false
    (handled (Access { tid = 0; kind = Read; addr = 0; size = 1; loc = "" }));
  (* boundaries: release t0, fork parent t0, exit t1 — not acquire *)
  Alcotest.(check (list int)) "boundary threads" [ 1; 0; 0 ] !boundaries

(* ------------------------------------------------------------------ *)
(* Read_state *)

let vc_of l =
  let vc = Vector_clock.create () in
  List.iter (fun (t, c) -> Vector_clock.set vc t c) l;
  vc

let test_read_state_exclusive_stays_epoch () =
  let intern = Vc_intern.create () in
  let tvc1 = vc_of [ (0, 3) ] in
  let r = Read_state.update ~intern Read_state.No_reads ~tid:0 ~tvc:tvc1 in
  check_bool "epoch repr" true (match r with Read_state.Ep _ -> true | _ -> false);
  (* a later ordered read by another thread stays an epoch *)
  let tvc2 = vc_of [ (0, 4); (1, 2) ] in
  let r = Read_state.update ~intern r ~tid:1 ~tvc:tvc2 in
  (match r with
   | Read_state.Ep e ->
     check_int "latest reader" 1 (Epoch.tid e);
     check_int "latest clock" 2 (Epoch.clock e)
   | _ -> Alcotest.fail "expected epoch");
  check_int "no extra bytes" 0 (Read_state.bytes r)

let test_read_state_inflates_on_concurrent_reads () =
  let intern = Vc_intern.create () in
  let r =
    Read_state.update ~intern Read_state.No_reads ~tid:0 ~tvc:(vc_of [ (0, 3) ])
  in
  (* t1 did not see t0's read: unordered -> vector clock *)
  let r = Read_state.update ~intern r ~tid:1 ~tvc:(vc_of [ (1, 5) ]) in
  (match r with
   | Read_state.Vc s ->
     check_int "keeps t0" 3 (Vc_intern.get s 0);
     check_int "keeps t1" 5 (Vc_intern.get s 1)
   | _ -> Alcotest.fail "expected vector clock");
  check_bool "vc costs bytes" true (Read_state.bytes r > 0);
  (* leq against a clock that saw both *)
  check_bool "leq both" true (Read_state.leq r (vc_of [ (0, 3); (1, 5) ]));
  check_bool "not leq partial" false (Read_state.leq r (vc_of [ (0, 9) ]))

let test_read_state_same_epoch () =
  let e = Epoch.make ~tid:2 ~clock:7 in
  check_bool "epoch matches" true (Read_state.same_epoch (Read_state.Ep e) e);
  check_bool "no_reads never" false (Read_state.same_epoch Read_state.No_reads e);
  check_bool "equal variants" true
    (Read_state.equal (Read_state.Ep e) (Read_state.Ep e));
  check_bool "different variants" false
    (Read_state.equal (Read_state.Ep e) Read_state.No_reads)

(* ------------------------------------------------------------------ *)
(* Lock_tracker *)

let test_lock_tracker () =
  let t = Lock_tracker.create () in
  let open Dgrace_events.Event in
  Lock_tracker.handle t (Acquire { tid = 3; lock = 7; sync = Lock });
  Lock_tracker.handle t (Acquire { tid = 3; lock = 8; sync = Lock });
  check_int "two held" 2 (Lock_tracker.Iset.cardinal (Lock_tracker.held t 3));
  Lock_tracker.handle t (Release { tid = 3; lock = 7; sync = Lock });
  check_bool "7 released" false (Lock_tracker.Iset.mem 7 (Lock_tracker.held t 3));
  (* non-lock sync kinds never enter locksets *)
  Lock_tracker.handle t (Acquire { tid = 3; lock = 9; sync = Barrier });
  Lock_tracker.handle t (Acquire { tid = 3; lock = 10; sync = Flag });
  Lock_tracker.handle t (Acquire { tid = 3; lock = 11; sync = Atomic });
  check_int "still one held" 1 (Lock_tracker.Iset.cardinal (Lock_tracker.held t 3));
  check_bool "unknown thread empty" true
    (Lock_tracker.Iset.is_empty (Lock_tracker.held t 99))

(* ------------------------------------------------------------------ *)
(* Race_info *)

let test_conflicting_tid () =
  let v = vc_of [ (0, 2); (3, 9) ] in
  let against = vc_of [ (0, 5) ] in
  check_int "finds the unordered component" 3
    (Race_info.conflicting_tid v ~against);
  check_int "none when dominated" (-1)
    (Race_info.conflicting_tid v ~against:(vc_of [ (0, 5); (3, 9) ]))

(* ------------------------------------------------------------------ *)
(* Scheduler picker *)

let test_scheduler_round_robin () =
  let s = Dgrace_sim.Scheduler.create Dgrace_sim.Scheduler.Round_robin in
  for _ = 1 to 5 do
    check_int "always head" 0
      (Dgrace_sim.Scheduler.pick s ~current:1 ~ready_tids:(fun i -> i) ~n:4)
  done

let test_scheduler_chunked_stays () =
  let s =
    Dgrace_sim.Scheduler.create (Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 100 })
  in
  (* after the first (random) pick, the same thread is preferred while
     the chunk budget lasts *)
  let first = Dgrace_sim.Scheduler.pick s ~current:(-1) ~ready_tids:(fun i -> i + 10) ~n:3 in
  let chosen = first + 10 in
  for _ = 1 to 10 do
    let i = Dgrace_sim.Scheduler.pick s ~current:chosen ~ready_tids:(fun i -> i + 10) ~n:3 in
    check_int "stays on current" (chosen - 10) i
  done

let test_scheduler_random_deterministic () =
  let picks seed =
    let s = Dgrace_sim.Scheduler.create (Dgrace_sim.Scheduler.Random_each seed) in
    List.init 20 (fun _ ->
        Dgrace_sim.Scheduler.pick s ~current:0 ~ready_tids:(fun i -> i) ~n:5)
  in
  Alcotest.(check (list int)) "same seed, same picks" (picks 7) (picks 7);
  check_bool "different seeds differ" true (picks 7 <> picks 8)

(* ------------------------------------------------------------------ *)
(* Memory allocator: random alloc/free sequences keep blocks disjoint *)

let allocator_model =
  QCheck.Test.make ~name:"allocator keeps live blocks disjoint" ~count:200
    QCheck.(small_list (pair bool (int_range 1 200)))
    (fun ops ->
      let m = Dgrace_sim.Memory.create () in
      let live = ref [] in
      List.iter
        (fun (do_free, n) ->
          if do_free && !live <> [] then begin
            let addr, _ = List.hd !live in
            ignore (Dgrace_sim.Memory.free m addr : int);
            live := List.tl !live
          end
          else begin
            let addr = Dgrace_sim.Memory.alloc m n in
            List.iter
              (fun (a, s) ->
                if addr < a + s && a < addr + n then
                  QCheck.Test.fail_reportf "overlap: 0x%x+%d with 0x%x+%d" addr n a s)
              !live;
            live := (addr, n) :: !live
          end)
        ops;
      let expected = List.fold_left (fun acc (_, s) -> acc + s) 0 !live in
      Dgrace_sim.Memory.live_bytes m = expected)

(* ------------------------------------------------------------------ *)
(* Accounting invariants under random deltas *)

let accounting_invariants =
  QCheck.Test.make ~name:"accounting peaks dominate currents" ~count:200
    QCheck.(small_list (pair (int_bound 2) (int_range (-50) 100)))
    (fun ops ->
      let open Dgrace_shadow in
      let a = Accounting.create () in
      List.iter
        (fun (k, d) ->
          match k with
          | 0 -> Accounting.add_hash a d
          | 1 -> Accounting.add_vc a d
          | _ -> Accounting.add_bitmap a d)
        ops;
      Accounting.peak_bytes a >= Accounting.current_bytes a
      && Accounting.peak_hash_bytes a >= Accounting.hash_bytes a
      && Accounting.peak_vc_bytes a >= Accounting.vc_bytes a
      && Accounting.peak_bitmap_bytes a >= Accounting.bitmap_bytes a
      && Accounting.peak_bytes a
         <= Accounting.peak_hash_bytes a + Accounting.peak_vc_bytes a
            + Accounting.peak_bitmap_bytes a)

let suites : unit Alcotest.test list =
  [
    ( "units.vc-env",
      [
        Alcotest.test_case "epochs and lock flow" `Quick test_vc_env_epochs;
        Alcotest.test_case "fork/join" `Quick test_vc_env_fork_join;
        Alcotest.test_case "handle + boundaries" `Quick test_vc_env_handle_boundaries;
      ] );
    ( "units.read-state",
      [
        Alcotest.test_case "ordered reads stay epochs" `Quick test_read_state_exclusive_stays_epoch;
        Alcotest.test_case "concurrent reads inflate" `Quick test_read_state_inflates_on_concurrent_reads;
        Alcotest.test_case "same-epoch and equality" `Quick test_read_state_same_epoch;
      ] );
    ( "units.lock-tracker",
      [ Alcotest.test_case "held sets" `Quick test_lock_tracker ] );
    ( "units.race-info",
      [ Alcotest.test_case "conflicting tid" `Quick test_conflicting_tid ] );
    ( "units.scheduler",
      [
        Alcotest.test_case "round robin" `Quick test_scheduler_round_robin;
        Alcotest.test_case "chunked stays on thread" `Quick test_scheduler_chunked_stays;
        Alcotest.test_case "random deterministic" `Quick test_scheduler_random_deterministic;
      ] );
    ( "units.memory",
      [ QCheck_alcotest.to_alcotest allocator_model ] );
    ( "units.accounting",
      [ QCheck_alcotest.to_alcotest accounting_invariants ] );
  ]
