(* Generates the recorded-trace corpus the format tests pin themselves
   to (dune rule in this directory).  Four traces, all hand-built and
   fully deterministic so any change to the trace encoding — header,
   tags, varints, location interning — breaks the consuming tests
   loudly instead of silently re-recording:

   - clean.trace: fork/join workers whose shared accesses are all
     lock-ordered — replays race-free;
   - racy.trace: the same shape with the lock forgotten around one
     shared counter — replays with exactly one race;
   - deadlock_adjacent.trace: two workers taking locks A and B in
     opposite orders, serialised so the recording completed — the
     hazard is in the lock history, not the replay;
   - truncated.trace: racy.trace cut mid-record — strict reads fail
     with a structured error, resync salvages the decodable prefix;
   - straddle.trace: one access straddling the 4 KiB share-granule
     line, racing an access in the next line — the shard splitter must
     weld the two lines into one super-granule or the sharded replay
     loses the race.

   Every trace except truncated also gets a v2 twin — same name with
   a .v2 suffix, the blocked column format — carrying the same events,
   plus
   truncated.trace.v2 — racy's v2 twin cut mid-block — for the strict
   v2 error path. *)

open Dgrace_events

let w ~tid addr loc = Event.Access { tid; kind = Write; addr; size = 4; loc }
let r ~tid addr loc = Event.Access { tid; kind = Read; addr; size = 4; loc }
let acq tid lock = Event.Acquire { tid; lock; sync = Event.Lock }
let rel tid lock = Event.Release { tid; lock; sync = Event.Lock }

let shared = 0x1000
let scratch tid = 0x2000 + (0x100 * tid)

let worker_locked tid =
  [
    w ~tid (scratch tid) "worker:private";
    acq tid 1;
    r ~tid shared "worker:counter";
    w ~tid shared "worker:counter";
    rel tid 1;
    r ~tid (scratch tid) "worker:private";
  ]

let clean =
  List.concat
    [
      [ Event.Alloc { tid = 0; addr = shared; size = 4 };
        w ~tid:0 shared "main:init";
        Event.Fork { parent = 0; child = 1 };
        Event.Fork { parent = 0; child = 2 } ];
      worker_locked 1;
      worker_locked 2;
      [ Event.Thread_exit { tid = 1 };
        Event.Join { parent = 0; child = 1 };
        Event.Thread_exit { tid = 2 };
        Event.Join { parent = 0; child = 2 };
        r ~tid:0 shared "main:report";
        Event.Free { tid = 0; addr = shared; size = 4 } ];
    ]

let racy =
  List.concat
    [
      [ Event.Alloc { tid = 0; addr = shared; size = 4 };
        w ~tid:0 shared "main:init";
        Event.Fork { parent = 0; child = 1 };
        Event.Fork { parent = 0; child = 2 } ];
      worker_locked 1;
      (* thread 2 forgets the lock: write-write race on the counter *)
      [ w ~tid:2 (scratch 2) "worker:private";
        w ~tid:2 shared "worker:unlocked";
        r ~tid:2 (scratch 2) "worker:private" ];
      [ Event.Thread_exit { tid = 1 };
        Event.Join { parent = 0; child = 1 };
        Event.Thread_exit { tid = 2 };
        Event.Join { parent = 0; child = 2 };
        Event.Free { tid = 0; addr = shared; size = 4 } ];
    ]

let deadlock_adjacent =
  List.concat
    [
      [ Event.Fork { parent = 0; child = 1 };
        Event.Fork { parent = 0; child = 2 } ];
      (* t1 takes A then B; t2 takes B then A — serialised here, so the
         recording completed, but the opposite lock order is the
         classic deadlock hazard a lock-graph analysis would flag *)
      [ acq 1 10; acq 1 20; w ~tid:1 shared "t1:both-locks"; rel 1 20;
        rel 1 10 ];
      [ acq 2 20; acq 2 10; w ~tid:2 shared "t2:both-locks"; rel 2 10;
        rel 2 20 ];
      [ Event.Thread_exit { tid = 1 };
        Event.Join { parent = 0; child = 1 };
        Event.Thread_exit { tid = 2 };
        Event.Join { parent = 0; child = 2 } ];
    ]

(* The share line is 4 KiB (Dynamic_granularity.share_granule, also
   the shard splitter's default granule): t1's write starts 2 bytes
   before the 0x3000 boundary and ends 2 bytes past it, t2's races
   with its tail from the next line. *)
let straddle =
  List.concat
    [
      [ Event.Fork { parent = 0; child = 1 };
        Event.Fork { parent = 0; child = 2 } ];
      [ Event.Access
          { tid = 1; kind = Write; addr = 0x2FFE; size = 4;
            loc = "t1:straddle" };
        Event.Access
          { tid = 2; kind = Write; addr = 0x3000; size = 4;
            loc = "t2:next-line" } ];
      [ Event.Thread_exit { tid = 1 };
        Event.Join { parent = 0; child = 1 };
        Event.Thread_exit { tid = 2 };
        Event.Join { parent = 0; child = 2 } ];
    ]

let write_trace path events =
  let (), n = Dgrace_trace.Trace_writer.to_file path (fun sink ->
      List.iter sink events)
  in
  Printf.printf "%s: %d events\n" path n

let write_trace_v2 path events =
  let (), n = Dgrace_trace.Trace_format_v2.to_file path (fun sink ->
      List.iter sink events)
  in
  Printf.printf "%s: %d events\n" path n

let truncate_trace ~src ~dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let keep = (len * 3 / 4) + 1 in
  (* +1 lands mid-record for this corpus; the consuming test only
     relies on the strict reader failing before [racy]'s event count *)
  let buf = really_input_string ic keep in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc buf;
  close_out oc;
  Printf.printf "%s: %d of %d bytes\n" dst keep len

let () =
  write_trace "clean.trace" clean;
  write_trace "racy.trace" racy;
  write_trace "deadlock_adjacent.trace" deadlock_adjacent;
  write_trace "straddle.trace" straddle;
  truncate_trace ~src:"racy.trace" ~dst:"truncated.trace";
  write_trace_v2 "clean.trace.v2" clean;
  write_trace_v2 "racy.trace.v2" racy;
  write_trace_v2 "deadlock_adjacent.trace.v2" deadlock_adjacent;
  write_trace_v2 "straddle.trace.v2" straddle;
  truncate_trace ~src:"racy.trace.v2" ~dst:"truncated.trace.v2"
