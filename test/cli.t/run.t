The racedet CLI end to end.  Everything here is deterministic: fixed
workload seeds and a fixed scheduler seed.

List what is available:

  $ racedet list | head -4
  workloads:
    facesim        barrier-phased solver over large word arrays (threads=4, 3 seeded races)
    ferret         four-stage pipeline over malloc'd items (threads=4, 2 seeded races)
    fluidanimate   region-locked grid updates with barrier iterations (threads=4, 1 seeded races)

  $ racedet list | grep -E 'dynamic$|multirace|literace' | sed 's/ *$//'
    dynamic
    multirace
    literace

Run a clean workload (exit code 0, no races):

  $ racedet run dedup --detector dynamic | grep races:
  races: 0 (0 suppressed)

Run a racy workload: exit code 2 and the report names the seeded bug.

  $ racedet run hmmsearch --detector dynamic -v | grep -o 'hmmsearch:hits' | sort -u
  hmmsearch:hits

The word detector masks x264's packed byte fields (996 < 1000):

  $ racedet run x264 --detector word 2>/dev/null | grep -o 'races: [0-9]*'
  races: 996

  $ racedet run x264 --detector byte 2>/dev/null | grep -o 'races: [0-9]*'
  races: 1000

Unknown arguments fail cleanly:

  $ racedet run nosuchworkload 2>&1 | head -1
  racedet: WORKLOAD argument: unknown workload "nosuchworkload" (try: facesim,

  $ racedet run hmmsearch --detector nosuchdetector 2>&1 | head -1
  racedet: option '--detector': unknown detector "nosuchdetector"

Record, inspect, and replay a trace; replay finds the same race:

  $ racedet record ffmpeg trace.bin | sed 's/ [0-9]* events/ N events/'
  recorded N events (16452 accesses, 3 threads) to trace.bin

  $ racedet trace-info trace.bin | head -4
  events:    17259
  accesses:  16452 (6526 reads, 9926 writes)
  sync ops:  602 on 102 sync objects
  threads:   3 (2 forks)

  $ racedet trace-dump trace.bin -n 2
  fork t0 -> t1
  fork t0 -> t2
  ... (17257 more events)

  $ racedet replay trace.bin --detector dynamic | grep 'races:'
  races: 1 (0 suppressed)

  $ rm trace.bin

Schedule exploration reports race stability across interleavings:

  $ racedet explore hmmsearch -n 3 | tail -2
  
  1 distinct racy location(s) across all seeds; 1 found under every seed

Per-phase profile: fast path + slow path always sum to the access
total; the dynamic detector shows its sharing decisions (elapsed is
the only non-deterministic line):

  $ racedet profile pbzip2 -d dynamic | grep -v elapsed
  workload: pbzip2 (threads=4 scale=1 seed=20)
  
  detector: ft-dynamic
    accesses                 : 51400
    same-epoch fast path     : 35678 (69.4%)
    slow path (analysed)     : 15722 (30.6%)
      epoch comparisons      : 15768
      full VC operations     : 0
    sync ops                 : 110
    sharing decisions        : 15718 (shared 15541 / private 177)
    state transitions        : 15720
    races                    : 1 (0 suppressed)

Compare ends with the geomean slowdown row (timing varies, shape not):

  $ racedet compare dedup 2>/dev/null | tail -1 | sed 's/[0-9][0-9.]*x/N.NNx/'
  geomean                                    N.NNx (slowdown vs none)

Metrics export: a racy run still writes the document (exit 2 is the
race signal), the JSON parses, carries the schema version, and
validates:

  $ racedet run pbzip2 -d dynamic --metrics-out m.json >/dev/null 2>&1; test $? -eq 2 && echo racy
  racy

  $ grep -c '"schema_version": 1' m.json
  1

  $ racedet metrics-info m.json
  schema_version: 1
  kind: run
  runs: 1
    ft-dynamic: samples=51 transitions=15720

Validation fails loudly on a non-envelope document:

  $ echo '{"x": 1}' > bad.json && racedet metrics-info bad.json
  metrics-info: bad.json: not a metrics document: missing "schema_version"
  [1]

  $ rm m.json bad.json
