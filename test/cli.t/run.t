The racedet CLI end to end.  Everything here is deterministic: fixed
workload seeds and a fixed scheduler seed.

List what is available:

  $ racedet list | head -4
  workloads:
    facesim        barrier-phased solver over large word arrays (threads=4, 3 seeded races)
    ferret         four-stage pipeline over malloc'd items (threads=4, 2 seeded races)
    fluidanimate   region-locked grid updates with barrier iterations (threads=4, 1 seeded races)

  $ racedet list | grep -E 'dynamic$|multirace|literace|sample' | sed 's/ *$//'
    dynamic
    multirace
    literace
    sample:<rate>
    sample-granule:<rate>

Run a clean workload (exit code 0, no races):

  $ racedet run dedup --detector dynamic | grep races:
  races: 0 (0 suppressed)

Run a racy workload: exit code 2 and the report names the seeded bug.

  $ racedet run hmmsearch --detector dynamic -v | grep -o 'hmmsearch:hits' | sort -u
  hmmsearch:hits

The word detector masks x264's packed byte fields (996 < 1000):

  $ racedet run x264 --detector word 2>/dev/null | grep -o 'races: [0-9]*'
  races: 996

  $ racedet run x264 --detector byte 2>/dev/null | grep -o 'races: [0-9]*'
  races: 1000

Granule-level sampling at rate 1.0 forwards everything — it is the
full dynamic detector (doc/sampling.md):

  $ racedet run hmmsearch --detector sample-granule:1 2>/dev/null | grep races:
  races: 1 (0 suppressed)

Unknown arguments fail cleanly:

  $ racedet run nosuchworkload 2>&1 | head -1
  racedet: WORKLOAD argument: unknown workload "nosuchworkload" (try: facesim,

  $ racedet run hmmsearch --detector nosuchdetector 2>&1 | head -1
  racedet: option '--detector': unknown detector "nosuchdetector"

Record, inspect, and replay a trace; replay finds the same race:

  $ racedet record ffmpeg trace.bin | sed 's/ [0-9]* events/ N events/'
  recorded N events (16452 accesses, 3 threads) to trace.bin

  $ racedet trace-info trace.bin | head -4
  events:    17259
  accesses:  16452 (6526 reads, 9926 writes)
  sync ops:  602 on 102 sync objects
  threads:   3 (2 forks)

  $ racedet trace-dump trace.bin -n 2
  fork t0 -> t1
  fork t0 -> t2
  ... (17257 more events)

  $ racedet replay trace.bin --detector dynamic | grep 'races:'
  races: 1 (0 suppressed)

Sharded replay (doc/parallel.md) finds the identical race set, and the
progress heartbeat goes to stderr so stdout stays parseable:

  $ racedet replay trace.bin --detector dynamic --shards 4 | grep 'races:'
  races: 1 (0 suppressed)

  $ racedet replay trace.bin --shards 4 --progress --progress-every 5000 2>hb.log | grep 'races:'
  races: 1 (0 suppressed)

  $ grep -c '^\[progress\] replayed' hb.log
  3

  $ racedet replay trace.bin --shards 0 2>&1 | head -1
  racedet: option '--shards': must be a positive integer

  $ rm trace.bin hb.log

Schedule exploration reports race stability across interleavings:

  $ racedet explore hmmsearch -n 3 | tail -2
  
  1 distinct racy location(s) across all seeds; 1 found under every seed

Per-phase profile: fast path + slow path always sum to the access
total; the dynamic detector shows its sharing decisions (elapsed is
the only non-deterministic line):

  $ racedet profile pbzip2 -d dynamic | grep -v elapsed
  workload: pbzip2 (threads=4 scale=1 seed=20)
  
  detector: ft-dynamic
    accesses                 : 51400
    same-epoch fast path     : 35678 (69.4%)
    slow path (analysed)     : 15722 (30.6%)
      epoch comparisons      : 15768
      full VC operations     : 0
    sync ops                 : 110
    sharing decisions        : 15718 (shared 15541 / private 177)
    state transitions        : 15720
    races                    : 1 (0 suppressed)

Compare ends with the geomean slowdown row (timing varies, shape not):

  $ racedet compare dedup 2>/dev/null | tail -1 | sed 's/[0-9][0-9.]*x/N.NNx/'
  geomean                                    N.NNx (slowdown vs none)

Metrics export: a racy run still writes the document (exit 2 is the
race signal), the JSON parses, carries the schema version, and
validates:

  $ racedet run pbzip2 -d dynamic --metrics-out m.json >/dev/null 2>&1; test $? -eq 2 && echo racy
  racy

  $ grep -c '"schema_version": 3' m.json
  1

  $ racedet metrics-info m.json
  schema_version: 3
  kind: run
  runs: 1
    ft-dynamic: samples=51 transitions=15720

Validation fails loudly on a non-envelope document (input error, exit 4):

  $ echo '{"x": 1}' > bad.json && racedet metrics-info bad.json
  metrics-info: bad.json: not a metrics document: missing "schema_version"
  [4]

  $ rm m.json bad.json

Resource budgets (doc/resilience.md): stopping at an event cap flags
the summary partial and exits 3; the JSON export carries the flags.

  $ racedet run pbzip2 --max-events 1000 --metrics-out b.json 2>/dev/null | grep status:
  status: partial (event budget reached (1000 events))

  $ racedet run pbzip2 --max-events 1000 >/dev/null 2>&1; echo "exit=$?"
  exit=3

  $ grep -o '"partial": true' b.json && rm b.json
  "partial": true

A shadow budget degrades the detector instead of killing the run; the
races are still found (exit 3 marks the shed precision):

  $ racedet run raytrace --max-shadow-bytes 300000 | grep -E 'status:|races:'
  status: degraded (shadow state shed under budget)
  races: 2 (1 suppressed)

  $ racedet run raytrace --max-shadow-bytes 300000 >/dev/null 2>&1; echo "exit=$?"
  exit=3

Bad budget and period values are usage errors, caught at parsing:

  $ racedet run dedup --max-events 0 2>&1 | head -1
  racedet: option '--max-events': must be a positive integer

  $ racedet run dedup --progress-every=0 2>&1 | head -1
  racedet: option '--progress-every': must be a positive integer

Corrupt traces fail with a structured error (exit 4) or, with
--resync, salvage the decodable remainder (exit 3):

  $ racedet record ffmpeg t.bin >/dev/null
  $ python3 -c "
  > import sys
  > b = bytearray(open('t.bin','rb').read())
  > b[len(b)//2] = 0xee
  > open('t.bin','wb').write(bytes(b[:3*len(b)//4]))"

  $ racedet replay t.bin 2>&1 | sed 's/byte [0-9]*/byte N/;s/([0-9]* events/(N events/'
  racedet: corrupt trace t.bin: truncated event at byte N (N events decoded before)

  $ racedet replay t.bin >/dev/null 2>&1; echo "exit=$?"
  exit=4

  $ racedet replay t.bin --resync 2>&1 | sed 's/[0-9][0-9]* byte(s)/N byte(s)/;s/[0-9][0-9]* gap(s)/N gap(s)/;s/[0-9][0-9]* event(s)/N event(s)/' | grep -E 'resync|races:'
  racedet: resync: dropped N byte(s) in N gap(s), N event(s) salvaged
  races: 1 (0 suppressed)

  $ racedet replay t.bin --resync >/dev/null 2>&1; echo "exit=$?"
  exit=3

  $ rm t.bin

Flight recorder (doc/observability.md): --trace-out writes a
Perfetto-loadable Chrome trace and racedet timings validates and
summarises it.  Times vary run to run; the lane/phase structure does
not:

  $ racedet record pbzip2 t.bin >/dev/null

  $ racedet replay t.bin -d dynamic --trace-out prof.json 2>/dev/null | grep races:
  races: 1 (0 suppressed)

  $ racedet timings prof.json | tail -n +3 | sed -E 's/ +[0-9]+ +[0-9]+~?$//'
  main           engine.finish
  main           engine.replay
  main           replay.decode
  main phases    detector.on_event
  main phases    phase.granularity
  main phases    phase.shadow_lookup
  main phases    phase.vc_check

A sampled-timer row ends in "~": an estimate scaled from sampled ops,
not a measured begin/end pair.

  $ racedet timings prof.json | grep -c '~$'
  4

Tracing composes with sharding — one timeline lane per shard plus its
phase estimates, and the race set is unchanged:

  $ racedet replay t.bin -d dynamic --shards 2 --trace-out prof2.json 2>/dev/null | grep races:
  races: 1 (0 suppressed)

  $ racedet timings prof2.json | tail -n +3 | sed -E 's/ +[0-9]+ +[0-9]+~?$//'
  main           par.join
  main           par.split
  main           replay.decode
  shard0         shard.finish
  shard0         shard.run
  shard0 phases  detector.on_event
  shard0 phases  phase.granularity
  shard0 phases  phase.shadow_lookup
  shard0 phases  phase.vc_check
  shard1         shard.finish
  shard1         shard.run
  shard1 phases  detector.on_event
  shard1 phases  phase.granularity
  shard1 phases  phase.shadow_lookup
  shard1 phases  phase.vc_check

...and with --no-vc-intern:

  $ racedet replay t.bin --no-vc-intern --trace-out p3.json 2>/dev/null | grep races:
  races: 1 (0 suppressed)

  $ racedet timings p3.json >/dev/null && echo validates
  validates

A budget-stopped (partial, exit 3) replay still writes a valid trace,
with the stop marked on the timeline:

  $ racedet replay t.bin --max-events 5000 --trace-out p4.json >/dev/null 2>&1; echo "exit=$?"
  exit=3

  $ racedet timings p4.json | grep -c 'budget.stop'
  1

An invalid document is an input error (exit 4):

  $ echo '{}' > bad.json && racedet timings bad.json
  timings: bad.json: invalid trace: missing "traceEvents"
  [4]

  $ rm t.bin prof.json prof2.json p3.json p4.json bad.json

The streaming service (doc/serve.md).  Spool mode pushes a directory
of traces through the same crash-only session layer, one line per
trace in name order; the worst per-file code is the exit code:

  $ mkdir spool
  $ racedet record ffmpeg spool/a.trc >/dev/null
  $ racedet record raytrace spool/b.trc >/dev/null
  $ racedet serve --spool spool
  a.trc: races=1
  b.trc: races=3
  [2]

Socket mode: a daemon multiplexes sessions onto worker domains; a
client replay reports the identical races and exit code as the
one-shot run above, and SIGTERM drains cleanly (exit 0):

  $ racedet serve --socket s.sock >/dev/null 2>serve.log & echo $! >serve.pid
  $ for i in $(seq 100); do test -S s.sock && break; sleep 0.1; done
  $ racedet client replay spool/a.trc --socket s.sock
  races: 1 (0 suppressed)
  [2]
  $ kill -TERM $(cat serve.pid)
  $ for i in $(seq 100); do grep -q drained serve.log && break; sleep 0.1; done
  $ cat serve.log
  [serve] listening on s.sock (domains=2 max-sessions=64)
  [serve] draining (deadline 5.0s)
  [serve] drained
  $ rm -rf spool serve.log serve.pid s.sock

The fault-injection harness: every seeded fault must end in recovery
or a declared structured error — exit 0 is the contract holding.

  $ racedet inject ffmpeg --seed 1 --fault stall --fault lost-unlock
  fault injection: workload=ffmpeg detector=ft-dynamic seeds=1
    seed=1   stall       declared: deadlock: threads [0,1] blocked; held locks []
    seed=1   lost-unlock declared: deadlock: threads [0,2] blocked; held locks [2@t1]
  all 2 injection(s) recovered or declared

The same contract over the wire: each fault poisons only its own
session while a healthy concurrent session matches the direct run,
with no shadow bytes leaked (doc/serve.md):

  $ racedet inject ffmpeg --via socket --seed 1
  fault injection (socket): workload=ffmpeg detector=ft-dynamic seeds=1
    seed=1   garbage     isolated: poisoned=1 healthy-match=true leaked-bytes=0
    seed=1   truncate    isolated: poisoned=1 healthy-match=true leaked-bytes=0
    seed=1   disconnect  isolated: poisoned=1 healthy-match=true leaked-bytes=0
  all 3 injection(s) isolated
