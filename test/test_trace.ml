(* Trace record/replay: round-trips, the varint encoding, location
   interning, and corruption handling. *)

open Dgrace_events
open Dgrace_trace
module Error = Dgrace_resilience.Error

let tmp_file () = Filename.temp_file "dgrace" ".trace"

let roundtrip events =
  let path = tmp_file () in
  let (), n = Trace_writer.to_file path (fun sink -> List.iter sink events) in
  let back = Trace_reader.read_file path in
  Sys.remove path;
  (n, back)

let sample_events =
  [
    Event.Fork { parent = 0; child = 1 };
    Event.Alloc { tid = 0; addr = 0x1000; size = 64 };
    Event.Access { tid = 0; kind = Write; addr = 0x1000; size = 4; loc = "init" };
    Event.Acquire { tid = 1; lock = 3; sync = Event.Lock };
    Event.Access { tid = 1; kind = Read; addr = 0x1001; size = 1; loc = "worker" };
    Event.Release { tid = 1; lock = 3; sync = Event.Lock };
    Event.Acquire { tid = 1; lock = 9; sync = Event.Barrier };
    Event.Release { tid = 0; lock = 10; sync = Event.Flag };
    Event.Acquire { tid = 0; lock = 11; sync = Event.Atomic };
    Event.Access { tid = 0; kind = Write; addr = 0x1000; size = 4; loc = "init" };
    Event.Free { tid = 0; addr = 0x1000; size = 64 };
    Event.Join { parent = 0; child = 1 };
    Event.Thread_exit { tid = 0 };
  ]

let test_roundtrip () =
  let n, back = roundtrip sample_events in
  Alcotest.(check int) "count" (List.length sample_events) n;
  Alcotest.(check (list string)) "events"
    (List.map Event.to_string sample_events)
    (List.map Event.to_string back)

let test_loc_interning_compact () =
  (* the same long label repeated must be written once *)
  let loc = String.make 100 'x' in
  let ev = Event.Access { tid = 0; kind = Read; addr = 1; size = 1; loc } in
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> for _ = 1 to 50 do sink ev done) in
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "interned (well under 50 copies)" true (size < 100 * 10)

let test_varint () =
  let buf = Buffer.create 16 in
  List.iter (Trace_format.write_varint buf) [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  let path = tmp_file () in
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc;
  let ic = open_in_bin path in
  let vals = List.init 6 (fun _ -> Trace_format.read_varint ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list int)) "roundtrip" [ 0; 1; 127; 128; 300; 1 lsl 40 ] vals;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Trace_format.write_varint: negative")
    (fun () -> Trace_format.write_varint buf (-1))

(* Every malformed input must surface as a structured Corrupt_trace
   carrying the path — never a bare End_of_file or Corrupt. *)
let expect_corrupt ~what path f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a structured corrupt-trace error" what
  | exception Error.E (Error.Corrupt_trace { path = p; offset; events_read; _ })
    ->
    Alcotest.(check (option string)) (what ^ ": path carried") (Some path) p;
    (offset, events_read)
  | exception exn ->
    Alcotest.failf "%s: expected Error.E (Corrupt_trace _), got %s" what
      (Printexc.to_string exn)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_bad_magic () =
  let path = tmp_file () in
  write_file path "NOPE!";
  let offset, events_read =
    expect_corrupt ~what:"bad magic" path (fun () -> Trace_reader.read_file path)
  in
  Alcotest.(check int) "at offset 0" 0 offset;
  Alcotest.(check int) "no events" 0 events_read;
  Sys.remove path

let test_short_header () =
  (* a file shorter than the header must not leak End_of_file *)
  let path = tmp_file () in
  List.iter
    (fun prefix ->
      write_file path prefix;
      ignore
        (expect_corrupt ~what:"short header" path (fun () ->
             Trace_reader.read_file path)
          : int * int))
    [ ""; "D"; "DGR"; "DGRT" ];
  Sys.remove path

let test_truncated_event () =
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> List.iter sink sample_events) in
  (* chop the file mid-record *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  write_file path (String.sub full 0 (String.length full - 1));
  let offset, events_read =
    expect_corrupt ~what:"truncation" path (fun () ->
        Trace_reader.read_file path)
  in
  Alcotest.(check bool) "events decoded before the cut" true (events_read > 0);
  Alcotest.(check bool) "offset inside file" true
    (offset > 0 && offset < String.length full);
  Sys.remove path

(* The generative truncation sweep: cut a valid trace at EVERY byte
   offset.  Strict reading must end in either success (boundary cut) or
   a structured error; resync must never raise and must salvage at
   least every event the strict reader decoded before the cut. *)
let test_truncate_every_offset () =
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> List.iter sink sample_events) in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let len = String.length full in
  let cut_path = tmp_file () in
  for cut = 0 to len - 1 do
    write_file cut_path (String.sub full 0 cut);
    let strict =
      match Trace_reader.read_file cut_path with
      | events -> List.length events
      | exception Error.E (Error.Corrupt_trace c) -> c.events_read
      | exception exn ->
        Alcotest.failf "cut at %d: unstructured exception %s" cut
          (Printexc.to_string exn)
    in
    let salvaged, r =
      match Trace_reader.read_file_resync cut_path with
      | res -> res
      | exception exn ->
        Alcotest.failf "cut at %d: resync raised %s" cut
          (Printexc.to_string exn)
    in
    if List.length salvaged < strict then
      Alcotest.failf "cut at %d: resync salvaged %d < strict %d" cut
        (List.length salvaged) strict;
    if r.Trace_reader.events <> List.length salvaged then
      Alcotest.failf "cut at %d: recovery report miscounts events" cut;
    if r.Trace_reader.gaps = 0 && r.Trace_reader.dropped_bytes <> 0 then
      Alcotest.failf "cut at %d: dropped bytes without a gap" cut
  done;
  Sys.remove cut_path

let test_resync_middle_corruption () =
  (* corrupt a byte in the middle: resync must report exactly one gap
     and deliver events from both sides of it *)
  let path = tmp_file () in
  let (), total =
    Trace_writer.to_file path (fun sink ->
        for _ = 1 to 20 do List.iter sink sample_events done)
  in
  let full = In_channel.with_open_bin path In_channel.input_all in
  let bytes = Bytes.of_string full in
  (* an unknown tag in the record stream *)
  Bytes.set bytes (Bytes.length bytes / 2) '\xee';
  write_file path (Bytes.to_string bytes);
  (match Trace_reader.read_file_resync path with
   | salvaged, r ->
     Alcotest.(check bool) "has gaps" true (r.Trace_reader.gaps >= 1);
     Alcotest.(check bool) "salvaged most events" true
       (List.length salvaged > total / 2);
     Alcotest.(check bool) "structured errors recorded" true
       (List.length r.Trace_reader.errors = r.Trace_reader.gaps)
   | exception exn ->
     Alcotest.failf "resync raised %s" (Printexc.to_string exn));
  Sys.remove path

let test_empty_trace () =
  let n, back = roundtrip [] in
  Alcotest.(check int) "count" 0 n;
  Alcotest.(check int) "empty" 0 (List.length back)

let test_fold_file () =
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> List.iter sink sample_events) in
  let n = Trace_reader.fold_file path (fun acc _ -> acc + 1) 0 in
  Sys.remove path;
  Alcotest.(check int) "fold count" (List.length sample_events) n

(* qcheck: arbitrary event lists survive the round-trip *)
let arb_event =
  let open QCheck.Gen in
  let tid = int_bound 50 in
  let addr = int_bound 0xffff in
  let size = oneofl [ 1; 2; 4; 8; 64 ] in
  let loc = oneofl [ ""; "a"; "some:place"; "other" ] in
  let sync = oneofl Event.[ Lock; Barrier; Flag; Atomic ] in
  QCheck.make
    (oneof
       [
         map (fun (t, a, (s, l)) -> Event.Access { tid = t; kind = Read; addr = a; size = s; loc = l })
           (triple tid addr (pair size loc));
         map (fun (t, a, (s, l)) -> Event.Access { tid = t; kind = Write; addr = a; size = s; loc = l })
           (triple tid addr (pair size loc));
         map (fun (t, l, s) -> Event.Acquire { tid = t; lock = l; sync = s }) (triple tid (int_bound 100) sync);
         map (fun (t, l, s) -> Event.Release { tid = t; lock = l; sync = s }) (triple tid (int_bound 100) sync);
         map (fun (p, c) -> Event.Fork { parent = p; child = c }) (pair tid tid);
         map (fun (p, c) -> Event.Join { parent = p; child = c }) (pair tid tid);
         map (fun (t, a, s) -> Event.Alloc { tid = t; addr = a; size = s }) (triple tid addr (int_bound 1024));
         map (fun (t, a, s) -> Event.Free { tid = t; addr = a; size = s }) (triple tid addr (int_bound 1024));
         map (fun t -> Event.Thread_exit { tid = t }) tid;
       ])

let qcheck_roundtrip =
  QCheck.Test.make ~name:"random event lists round-trip" ~count:100
    (QCheck.small_list arb_event) (fun events ->
      let _, back = roundtrip events in
      List.map Event.to_string back = List.map Event.to_string events)

(* ------------------------------------------------------------------ *)
(* The committed-by-rule corpus (test/corpus/gen_corpus.ml): known
   traces with pinned event counts and verdicts.  Any change to the
   trace encoding, the bounds-checked reader, or the resync scanner
   shows up here as a loud count/verdict mismatch instead of a silent
   re-record. *)

(* resolve next to the test binary so both `dune runtest` (cwd = test
   dir) and `dune exec test/test_main.exe` (cwd = project root) work *)
let corpus name =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat "corpus" name)

let replay_corpus name =
  Dgrace_core.Engine.replay ~spec:Dgrace_core.Spec.dynamic
    (List.to_seq (Trace_reader.read_file (corpus name)))

let test_corpus_clean () =
  let events = Trace_reader.read_file (corpus "clean.trace") in
  Alcotest.(check int) "pinned event count" 22 (List.length events);
  let s = replay_corpus "clean.trace" in
  Alcotest.(check int) "race free" 0 s.race_count

let test_corpus_racy () =
  let events = Trace_reader.read_file (corpus "racy.trace") in
  Alcotest.(check int) "pinned event count" 18 (List.length events);
  let s = replay_corpus "racy.trace" in
  Alcotest.(check int) "exactly the seeded race" 1 s.race_count;
  let r = List.hd s.races in
  Alcotest.(check int) "on the shared counter" 0x1000 r.Report.addr

let test_corpus_deadlock_adjacent () =
  let events = Trace_reader.read_file (corpus "deadlock_adjacent.trace") in
  Alcotest.(check int) "pinned event count" 16 (List.length events);
  (* opposite lock orders, but serialised: both writes are ordered
     through the common locks, so happens-before stays race-free *)
  let s = replay_corpus "deadlock_adjacent.trace" in
  Alcotest.(check int) "race free despite the hazard" 0 s.race_count;
  (* a well-formed trace resyncs to itself: no gaps, nothing dropped *)
  let back, r = Trace_reader.read_file_resync (corpus "deadlock_adjacent.trace") in
  Alcotest.(check int) "resync finds every event" 16 (List.length back);
  Alcotest.(check int) "no gaps" 0 r.Trace_reader.gaps

let test_corpus_truncated () =
  (* strict mode: structured failure, never a bare exception *)
  (match Trace_reader.read_file (corpus "truncated.trace") with
   | _ -> Alcotest.fail "strict read of a truncated trace must fail"
   | exception Error.E (Error.Corrupt_trace { events_read; _ }) ->
     Alcotest.(check bool) "decoded a strict prefix" true
       (events_read > 0 && events_read < 18)
   | exception e ->
     Alcotest.fail ("expected Corrupt_trace, got " ^ Printexc.to_string e));
  (* resync mode: the decodable prefix is salvaged and accounted for *)
  let events, r = Trace_reader.read_file_resync (corpus "truncated.trace") in
  Alcotest.(check bool) "salvaged a prefix" true
    (List.length events > 0 && List.length events < 18);
  Alcotest.(check bool) "the damage is on the books" true
    (r.Trace_reader.gaps >= 1)

(* v2 twins: same events through the blocked column format, and the
   batched replay path agrees with the per-event verdicts above. *)

let replay_corpus_v2_batched name =
  Dgrace_core.Engine.replay_batches ~spec:Dgrace_core.Spec.dynamic
    (fun consume ->
      Trace_format_v2.fold_batches (corpus name) (fun () b -> consume b) ())

let test_corpus_v2_twins () =
  List.iter
    (fun (name, count, races) ->
      let v1 = Trace_reader.read_file (corpus name) in
      let v2 = Trace_format_v2.read_file (corpus (name ^ ".v2")) in
      Alcotest.(check (list string))
        (name ^ ": v2 twin carries the same events")
        (List.map Event.to_string v1)
        (List.map Event.to_string v2);
      Alcotest.(check int) (name ^ ": pinned count") count (List.length v2);
      let s = replay_corpus_v2_batched (name ^ ".v2") in
      Alcotest.(check int) (name ^ ": batched v2 verdict") races s.race_count;
      Alcotest.(check int)
        (name ^ ": per-event verdict agrees")
        (replay_corpus name).race_count s.race_count)
    [
      ("clean.trace", 22, 0);
      ("racy.trace", 18, 1);
      ("deadlock_adjacent.trace", 16, 0);
      ("straddle.trace", 8, 1);
    ]

let test_corpus_v2_truncated () =
  match Trace_format_v2.read_file (corpus "truncated.trace.v2") with
  | _ -> Alcotest.fail "strict read of a truncated v2 trace must fail"
  | exception Error.E (Error.Corrupt_trace { events_read; _ }) ->
    Alcotest.(check bool) "failed before racy's event count" true
      (events_read >= 0 && events_read < 18)
  | exception e ->
    Alcotest.fail ("expected Corrupt_trace, got " ^ Printexc.to_string e)

(* The straddling access welds the two 4 KiB lines it touches into one
   super-granule, so the sharded replay keeps both racing accesses in
   one shard and the verdict matches the sequential run. *)
let test_corpus_straddle_welds () =
  let events = Trace_reader.read_file (corpus "straddle.trace") in
  Alcotest.(check int) "pinned event count" 8 (List.length events);
  let seq = replay_corpus "straddle.trace" in
  Alcotest.(check int) "sequential sees the race" 1 seq.race_count;
  let gauge (s : Dgrace_core.Engine.summary) name =
    match List.assoc_opt name (Dgrace_obs.Metrics.gauges s.metrics) with
    | Some v -> v
    | None -> Alcotest.fail ("missing gauge " ^ name)
  in
  List.iter
    (fun shards ->
      let s =
        Dgrace_core.Engine.replay_sharded ~shards ~spec:Dgrace_core.Spec.dynamic
          (List.to_seq events)
      in
      let tag = Printf.sprintf "shards=%d: " shards in
      Alcotest.(check int) (tag ^ "race survives sharding") 1 s.race_count;
      Alcotest.(check int)
        (tag ^ "exactly the one straddling access")
        1
        (gauge s "par.straddling");
      Alcotest.(check int)
        (tag ^ "one welded super-granule")
        1
        (gauge s "par.super_granules"))
    [ 1; 4 ]

let suites : unit Alcotest.test list =
    [
      ( "trace.format",
        [
          Alcotest.test_case "varint" `Quick test_varint;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "short header" `Quick test_short_header;
          Alcotest.test_case "truncated event" `Quick test_truncated_event;
          Alcotest.test_case "truncate at every offset" `Quick
            test_truncate_every_offset;
          Alcotest.test_case "resync mid-file corruption" `Quick
            test_resync_middle_corruption;
        ] );
      ( "trace.corpus",
        [
          Alcotest.test_case "clean" `Quick test_corpus_clean;
          Alcotest.test_case "racy" `Quick test_corpus_racy;
          Alcotest.test_case "deadlock-adjacent" `Quick
            test_corpus_deadlock_adjacent;
          Alcotest.test_case "truncated" `Quick test_corpus_truncated;
          Alcotest.test_case "v2 twins" `Quick test_corpus_v2_twins;
          Alcotest.test_case "v2 truncated" `Quick test_corpus_v2_truncated;
          Alcotest.test_case "straddle welds share lines" `Quick
            test_corpus_straddle_welds;
        ] );
      ( "trace.roundtrip",
        [
          Alcotest.test_case "all event kinds" `Quick test_roundtrip;
          Alcotest.test_case "empty" `Quick test_empty_trace;
          Alcotest.test_case "fold_file" `Quick test_fold_file;
          Alcotest.test_case "loc interning" `Quick test_loc_interning_compact;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
    ]
