(* Single test binary: every module contributes its suites. *)

let () =
  Alcotest.run "dgrace"
    (List.concat
       [
         Test_vclock.suites;
         Test_vc_intern.suites;
         Test_units.suites;
         Test_util.suites;
         Test_shadow.suites;
         Test_obs.suites;
         Test_events.suites;
         Test_sim.suites;
         Test_trace.suites;
         Test_trace_v2.suites;
         Test_state_machine.suites;
         Test_fasttrack.suites;
         Test_djit.suites;
         Test_dynamic.suites;
         Test_baselines.suites;
         Test_properties.suites;
         Test_related.suites;
         Test_sampler.suites;
         Test_workloads.suites;
         Test_engine.suites;
         Test_resilience.suites;
         Test_par.suites;
         Test_pipeline.suites;
         Test_serve.suites;
       ])
