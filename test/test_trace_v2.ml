(* Trace format v2 (blocked column encoding): round-trip laws, v1
   interchange, batched replay agreement, and the strict corruption
   contract — every truncation yields a structured [Corrupt_trace]
   with a sane absolute offset, never a bare exception. *)

open Dgrace_events
open Dgrace_trace
module Error = Dgrace_resilience.Error
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec

let tmp_file () = Filename.temp_file "dgrace" ".trace"

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let strings = List.map Event.to_string

let v2_roundtrip events =
  let path = tmp_file () in
  let (), n =
    Trace_format_v2.to_file path (fun sink -> List.iter sink events)
  in
  let back = Trace_format_v2.read_file path in
  Sys.remove path;
  (n, back)

(* Deterministic mixed stream, long enough to span several blocks when
   repeated: every tag, repeated tids/locs (RLE-friendly) and strided
   addrs (delta-friendly) plus breaks in both. *)
let sample_events =
  [
    Event.Fork { parent = 0; child = 1 };
    Event.Alloc { tid = 0; addr = 0x1000; size = 64 };
    Event.Access { tid = 0; kind = Write; addr = 0x1000; size = 4; loc = "init" };
    Event.Access { tid = 0; kind = Write; addr = 0x1004; size = 4; loc = "init" };
    Event.Access { tid = 0; kind = Write; addr = 0x1008; size = 4; loc = "init" };
    Event.Acquire { tid = 1; lock = 3; sync = Event.Lock };
    Event.Access { tid = 1; kind = Read; addr = 0x9000; size = 1; loc = "worker" };
    Event.Access { tid = 1; kind = Read; addr = 0x1001; size = 2; loc = "worker" };
    Event.Release { tid = 1; lock = 3; sync = Event.Lock };
    Event.Acquire { tid = 1; lock = 9; sync = Event.Barrier };
    Event.Release { tid = 0; lock = 10; sync = Event.Flag };
    Event.Access { tid = 0; kind = Write; addr = 0x1000; size = 8; loc = "" };
    Event.Free { tid = 0; addr = 0x1000; size = 64 };
    Event.Join { parent = 0; child = 1 };
    Event.Thread_exit { tid = 1 };
  ]

let test_roundtrip () =
  let n, back = v2_roundtrip sample_events in
  Alcotest.(check int) "count" (List.length sample_events) n;
  Alcotest.(check (list string)) "identical" (strings sample_events)
    (strings back)

let test_empty () =
  let n, back = v2_roundtrip [] in
  Alcotest.(check int) "count" 0 n;
  Alcotest.(check (list string)) "no events" [] (strings back)

let test_multi_block () =
  (* more than one block's worth of rows, so block boundaries, the
     cross-block location table, and the running row numbering are all
     exercised *)
  let reps = (Trace_format_v2.block_events / List.length sample_events) + 2 in
  let events =
    List.concat (List.init reps (fun _ -> sample_events))
  in
  let n, back = v2_roundtrip events in
  Alcotest.(check int) "count" (List.length events) n;
  Alcotest.(check bool) "identical" true (strings events = strings back)

let test_fold_batches_offsets () =
  let path = tmp_file () in
  let reps = (Trace_format_v2.block_events / List.length sample_events) + 2 in
  let events = List.concat (List.init reps (fun _ -> sample_events)) in
  let (), total =
    Trace_format_v2.to_file path (fun sink -> List.iter sink events)
  in
  (* rows are numbered by stream position, monotonically across blocks *)
  let next = ref 0 in
  let batches = ref 0 in
  Trace_format_v2.fold_batches path
    (fun () b ->
      incr batches;
      for i = 0 to Batch.length b - 1 do
        if b.Batch.off.(i) <> !next then
          Alcotest.failf "row %d numbered %d" !next b.Batch.off.(i);
        incr next
      done)
    ();
  Sys.remove path;
  Alcotest.(check int) "every row numbered" total !next;
  Alcotest.(check bool) "spans several blocks" true (!batches > 1)

(* v1 -> v2 interchange: converting a v1 stream and replaying it
   batched gives bit-identical races to the v1 per-event replay. *)
let test_v1_interchange () =
  let v1 = tmp_file () and v2 = tmp_file () in
  let racy =
    [
      Event.Fork { parent = 0; child = 1 };
      Event.Access { tid = 0; kind = Write; addr = 0x40; size = 4; loc = "a" };
      Event.Access { tid = 1; kind = Write; addr = 0x40; size = 4; loc = "b" };
      Event.Thread_exit { tid = 1 };
      Event.Join { parent = 0; child = 1 };
    ]
  in
  let (), _ = Trace_writer.to_file v1 (fun sink -> List.iter sink racy) in
  let events = Trace_reader.read_file v1 in
  let (), _ =
    Trace_format_v2.to_file v2 (fun sink -> List.iter sink events)
  in
  Alcotest.(check int) "v1 is v1" 1 (Trace_reader.probe_version v1);
  Alcotest.(check int) "v2 is v2" 2 (Trace_reader.probe_version v2);
  let per_event = Engine.replay ~spec:Spec.dynamic (List.to_seq events) in
  let batched =
    Engine.replay_batches ~spec:Spec.dynamic (fun consume ->
        Trace_format_v2.fold_batches v2 (fun () b -> consume b) ())
  in
  Sys.remove v1;
  Sys.remove v2;
  Alcotest.(check (list string))
    "race-bit-identical"
    (List.map Report.to_string per_event.races)
    (List.map Report.to_string batched.races);
  Alcotest.(check int) "the seeded race" 1 batched.race_count

(* Strict corruption contract: a v2 file cut at EVERY byte offset
   either decodes cleanly (a cut at a block boundary is a valid
   shorter stream) or fails with [Corrupt_trace] carrying an absolute
   offset inside the file — never a bare exception, and never events
   beyond the cut. *)
let test_truncate_every_offset () =
  let path = tmp_file () in
  let (), total =
    Trace_format_v2.to_file path (fun sink ->
        for _ = 1 to 3 do List.iter sink sample_events done)
  in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let len = String.length full in
  let cut_path = tmp_file () in
  let clean_cuts = ref 0 in
  for cut = 0 to len - 1 do
    write_file cut_path (String.sub full 0 cut);
    match Trace_format_v2.read_file cut_path with
    | events ->
      incr clean_cuts;
      if List.length events > total then
        Alcotest.failf "cut at %d: more events than written" cut
    | exception Error.E (Error.Corrupt_trace c) ->
      if c.offset < 0 || c.offset > cut then
        Alcotest.failf "cut at %d: offset %d outside the prefix" cut c.offset;
      if c.events_read < 0 || c.events_read > total then
        Alcotest.failf "cut at %d: events_read %d out of range" cut
          c.events_read
    | exception exn ->
      Alcotest.failf "cut at %d: unstructured exception %s" cut
        (Printexc.to_string exn)
  done;
  Sys.remove cut_path;
  (* at least the empty-body boundary after the header decodes *)
  Alcotest.(check bool) "some cuts are clean EOFs" true (!clean_cuts >= 1)

let test_corrupt_block_offset () =
  (* flip a byte inside the first block body: the error's absolute
     offset must point at or after the header, inside the file *)
  let path = tmp_file () in
  let (), _ =
    Trace_format_v2.to_file path (fun sink -> List.iter sink sample_events)
  in
  let full = In_channel.with_open_bin path In_channel.input_all in
  let bytes = Bytes.of_string full in
  Bytes.set bytes (Bytes.length bytes - 3) '\xff';
  write_file path (Bytes.to_string bytes);
  (match Trace_format_v2.read_file path with
   | _ -> ()  (* a flipped byte can decode as different valid columns *)
   | exception Error.E (Error.Corrupt_trace c) ->
     Alcotest.(check bool) "offset inside the file" true
       (c.offset >= 5 && c.offset <= String.length full)
   | exception exn ->
     Alcotest.failf "unstructured exception %s" (Printexc.to_string exn));
  Sys.remove path

(* qcheck laws (fixed seed in CI via QCHECK_SEED) *)

let arb_events = QCheck.small_list Test_trace.arb_event

let qcheck_roundtrip =
  QCheck.Test.make ~name:"v2: random event lists round-trip" ~count:100
    arb_events (fun events ->
      let _, back = v2_roundtrip events in
      strings back = strings events)

let qcheck_v1_v2_agree =
  QCheck.Test.make ~name:"v2: v1 and v2 encode the same stream" ~count:50
    arb_events (fun events ->
      let v1 = tmp_file () and v2 = tmp_file () in
      let (), _ = Trace_writer.to_file v1 (fun sink -> List.iter sink events) in
      let (), _ =
        Trace_format_v2.to_file v2 (fun sink -> List.iter sink events)
      in
      let a = Trace_reader.read_file v1 in
      let b = Trace_format_v2.read_file v2 in
      Sys.remove v1;
      Sys.remove v2;
      strings a = strings b)

let qcheck_batched_replay_identical =
  QCheck.Test.make
    ~name:"v2: batched replay race-identical to per-event" ~count:50
    arb_events (fun events ->
      let v2 = tmp_file () in
      let (), _ =
        Trace_format_v2.to_file v2 (fun sink -> List.iter sink events)
      in
      let per_event = Engine.replay ~spec:Spec.dynamic (List.to_seq events) in
      let batched =
        Engine.replay_batches ~spec:Spec.dynamic (fun consume ->
            Trace_format_v2.fold_batches v2 (fun () b -> consume b) ())
      in
      Sys.remove v2;
      List.map Report.to_string per_event.races
      = List.map Report.to_string batched.races)

let suites : unit Alcotest.test list =
  [
    ( "trace_v2.format",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "multi-block" `Quick test_multi_block;
        Alcotest.test_case "batch row numbering" `Quick
          test_fold_batches_offsets;
        Alcotest.test_case "v1 interchange replay" `Quick test_v1_interchange;
        Alcotest.test_case "truncate at every offset" `Quick
          test_truncate_every_offset;
        Alcotest.test_case "corrupt block offset" `Quick
          test_corrupt_block_offset;
        QCheck_alcotest.to_alcotest qcheck_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_v1_v2_agree;
        QCheck_alcotest.to_alcotest qcheck_batched_replay_identical;
      ] );
  ]
