(* The §VI related-work detectors: RaceTrack-style adaptive refinement,
   LiteRace-style sampling, and MultiRace. *)

open Dgrace_detectors
open Tutil

(* ------------------------------------------------------------------ *)
(* RaceTrack *)

let racetrack () = Racetrack_adaptive.create ()

(* a recurring race is refined on first sight and confirmed on
   recurrence *)
let test_racetrack_recurring_race () =
  let evs =
    fork 0 1
    :: List.concat_map
         (fun i ->
           [ wr 0 0x100;
             Dgrace_events.Event.Acquire { tid = 0; lock = 10 + i; sync = Dgrace_events.Event.Lock };
             Dgrace_events.Event.Release { tid = 0; lock = 10 + i; sync = Dgrace_events.Event.Lock };
             wr 1 0x100;
             Dgrace_events.Event.Acquire { tid = 1; lock = 40 + i; sync = Dgrace_events.Event.Lock };
             Dgrace_events.Event.Release { tid = 1; lock = 40 + i; sync = Dgrace_events.Event.Lock } ])
         (List.init 6 Fun.id)
  in
  let d = feed_events (racetrack ()) evs in
  Alcotest.(check int) "confirmed on recurrence" 1 (race_count d)

(* a one-shot race only triggers refinement and is lost — the designed
   blind spot the paper contrasts with its fine-to-coarse approach *)
let test_racetrack_one_shot_miss () =
  let evs = [ fork 0 1; wr 0 0x100; wr 1 0x100 ] in
  let d = feed_events (racetrack ()) evs in
  Alcotest.(check int) "one-shot race missed" 0 (race_count d);
  (* byte FastTrack finds it on the same stream *)
  let b = feed_events (Dynamic_granularity.create ~sharing:false ()) evs in
  Alcotest.(check int) "byte finds it" 1 (race_count b)

(* race-free programs stay race-free *)
let test_racetrack_clean () =
  let evs =
    [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ]
  in
  Alcotest.(check int) "clean" 0 (race_count (feed_events (racetrack ()) evs))

(* coarse regions use one clock until refined *)
let test_racetrack_coarse_memory () =
  let open Dgrace_shadow in
  let writes = List.map (fun i -> wr 0 (0x1000 + (4 * i))) (List.init 64 Fun.id) in
  let d = feed_events (racetrack ()) writes in
  (* 64 words over 64-byte regions: 4 coarse clocks *)
  Alcotest.(check int) "one clock per region" 4 (Accounting.peak_vcs d.Detector.account)

(* ------------------------------------------------------------------ *)
(* LiteRace *)

let test_literace_hot_region_sampled_away () =
  (* the same racy instruction pair executed many times in a hot
     region: decay drops the analysis rate and most races are missed;
     a one-off cold-region race is still caught *)
  let hot =
    fork 0 1
    :: (List.init 512 (fun i -> wr ~loc:"hot" 0 (0x1000 + (4 * (i mod 256))))
        @ List.init 512 (fun i -> wr ~loc:"hot" 1 (0x1000 + (4 * (i mod 256)))))
    @ [ wr ~loc:"cold" 0 0x8000; wr ~loc:"cold" 1 0x8000 ]
  in
  let lite = feed_events (Literace_sampling.create ()) hot in
  let full = feed_events (Dynamic_granularity.create ~sharing:false ()) hot in
  Alcotest.(check bool) "sampling misses most hot races" true
    (race_count lite < race_count full / 2);
  Alcotest.(check bool) "cold race found" true
    (List.exists
       (fun (r : Dgrace_events.Report.t) -> r.addr = 0x8000)
       (races lite))

let test_literace_sync_always_processed () =
  (* lock discipline is never sampled away: a fully ordered program
     yields no false positives even at the floor rate *)
  let evs =
    fork 0 1
    :: List.concat_map
         (fun i ->
           let a = 0x100 + (4 * (i mod 8)) in
           [ acq 0; wr ~loc:"hot" 0 a; rel 0; acq 1; wr ~loc:"hot" 1 a; rel 1 ])
         (List.init 400 Fun.id)
  in
  let d = feed_events (Literace_sampling.create ()) evs in
  Alcotest.(check int) "no false positives" 0 (race_count d)

let test_literace_skipped_counted () =
  let evs = fork 0 1 :: List.init 1000 (fun _ -> rd ~loc:"hot" 0 0x100) in
  let d = feed_events (Literace_sampling.create ()) evs in
  let skipped =
    Option.value ~default:0
      (Dgrace_obs.Metrics.find_counter d.Detector.metrics "sampling.skipped")
  in
  let analysed =
    Option.value ~default:0
      (Dgrace_obs.Metrics.find_counter d.Detector.metrics "sampling.analysed")
  in
  Alcotest.(check bool) "accesses skipped" true (skipped > 500);
  Alcotest.(check int) "every access accounted once" 1000 (skipped + analysed);
  (* the skip count must no longer pollute same-epoch telemetry: all
     1000 reads are a single thread re-reading one address, and only
     the analysed ones can register as same-epoch hits *)
  Alcotest.(check bool)
    "same_epoch not overloaded" true
    (d.Detector.stats.same_epoch <= analysed)

(* ------------------------------------------------------------------ *)
(* MultiRace *)

let test_multirace_confirms_real_races () =
  let evs = [ fork 0 1; wr 0 0x100; wr 1 0x100 ] in
  let d = feed_events (Multirace.create ()) evs in
  Alcotest.(check int) "confirmed" 1 (race_count d);
  Alcotest.(check int) "nothing potential-only" 0 (Multirace.potential_only d)

let test_multirace_filters_eraser_false_alarm () =
  (* ordered by fork/join: Eraser alone alarms, MultiRace's
     happens-before side explains it away *)
  let evs =
    [ wr 0 0x100; fork 0 1; wr 1 0x100;
      Dgrace_events.Event.Thread_exit { tid = 1 }; join 0 1; wr 0 0x100 ]
  in
  let d = feed_events (Multirace.create ()) evs in
  Alcotest.(check int) "no confirmed race" 0 (race_count d);
  Alcotest.(check int) "one potential-only" 1 (Multirace.potential_only d);
  let e = feed_events (Lockset.create ()) evs in
  Alcotest.(check int) "eraser alone alarms" 1 (race_count e)

let test_multirace_clean () =
  let evs =
    [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ]
  in
  let d = feed_events (Multirace.create ()) evs in
  Alcotest.(check int) "clean" 0 (race_count d);
  Alcotest.(check int) "no potentials" 0 (Multirace.potential_only d)

let suites : unit Alcotest.test list =
  [
    ( "related.racetrack",
      [
        Alcotest.test_case "recurring race confirmed" `Quick test_racetrack_recurring_race;
        Alcotest.test_case "one-shot race missed" `Quick test_racetrack_one_shot_miss;
        Alcotest.test_case "clean program" `Quick test_racetrack_clean;
        Alcotest.test_case "coarse clocks" `Quick test_racetrack_coarse_memory;
      ] );
    ( "related.literace",
      [
        Alcotest.test_case "hot region sampled away" `Quick test_literace_hot_region_sampled_away;
        Alcotest.test_case "sync always processed" `Quick test_literace_sync_always_processed;
        Alcotest.test_case "skip accounting" `Quick test_literace_skipped_counted;
      ] );
    ( "related.multirace",
      [
        Alcotest.test_case "confirms real races" `Quick test_multirace_confirms_real_races;
        Alcotest.test_case "filters Eraser false alarms" `Quick test_multirace_filters_eraser_false_alarm;
        Alcotest.test_case "clean program" `Quick test_multirace_clean;
      ] );
  ]
