(* Sampling detectors: the rate-floor contract of the LiteRace
   sampler (regression for the ceil/floor inversion + QCheck law), the
   granule sampler's subset/exactness guarantees, sample:1.0
   bit-identity with its inner detector across the corpus traces, and
   the engine.batch_fallback surfacing. *)

open Dgrace_events
open Dgrace_detectors
open Tutil
module Metrics = Dgrace_obs.Metrics
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec
module Trace_reader = Dgrace_trace.Trace_reader
module Trace_format_v2 = Dgrace_trace.Trace_format_v2

let counter_of d name =
  Option.value ~default:0 (Metrics.find_counter d.Detector.metrics name)

let analysed_fraction d =
  let a = counter_of d "sampling.analysed"
  and s = counter_of d "sampling.skipped" in
  if a + s = 0 then 1. else float_of_int a /. float_of_int (a + s)

(* ------------------------------------------------------------------ *)
(* LiteRace rate floor *)

let test_effective_floor_pinned () =
  (* regression for the ceil/floor inversion: 0.02 used to give 1/64 =
     1.56%, a whole halving below the documented floor *)
  List.iter
    (fun (floor_rate, expect) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "floor %g" floor_rate)
        expect
        (Literace_sampling.effective_floor ~floor_rate))
    [
      (0.02, 1. /. 32.);
      (0.05, 1. /. 16.);
      (0.1, 1. /. 8.);
      (0.25, 1. /. 4.);
      (0.3, 1. /. 2.);
      (0.5, 1. /. 2.);
      (0.7, 1.);
      (1.0, 1.);
    ];
  (* the contract itself, over a sweep *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "effective_floor %g >= %g" f f)
        true
        (Literace_sampling.effective_floor ~floor_rate:f >= f))
    [ 0.001; 0.01; 0.02; 0.03; 0.0625; 0.125; 0.2; 0.33; 0.49; 0.51; 0.99; 1.0 ]

let test_literace_floor_respected () =
  (* one maximally hot region: the analysed fraction converges to the
     effective floor and must never undershoot floor_rate *)
  List.iter
    (fun floor_rate ->
      let d = Literace_sampling.create ~floor_rate () in
      List.iter d.Detector.on_event
        (fork 0 1 :: List.init 100_000 (fun _ -> rd ~loc:"hot" 0 0x100));
      d.Detector.finish ();
      let frac = analysed_fraction d in
      Alcotest.(check bool)
        (Printf.sprintf "floor %g: fraction %.4f >= floor" floor_rate frac)
        true (frac >= floor_rate))
    [ 0.02; 0.05; 0.1; 0.3 ]

(* QCheck law: for ANY region access sequence the analysed fraction
   never drops below floor_rate.  Why it holds: per region, gaps
   between analysed accesses never exceed 2^floor_log2 and the first
   access is always analysed, so analysed_r >= ceil(n_r / 2^floor_log2)
   >= n_r * effective_floor >= n_r * floor_rate; summing over regions
   preserves the bound. *)
let qcheck_literace_floor_law =
  let gen =
    QCheck.pair
      (QCheck.oneofl [ 0.02; 0.05; 0.1; 0.3; 0.5 ])
      (QCheck.small_list (QCheck.pair (QCheck.int_range 0 4) (QCheck.int_range 1 60)))
  in
  QCheck.Test.make ~name:"literace: analysed fraction >= floor_rate" ~count:100
    gen (fun (floor_rate, bursts) ->
      let d = Literace_sampling.create ~floor_rate ~decay_every:8 () in
      List.iter
        (fun (region, n) ->
          let loc = "r" ^ string_of_int region in
          for i = 0 to n - 1 do
            d.Detector.on_event (rd ~loc 0 (0x1000 + (8 * i)))
          done)
        bursts;
      d.Detector.finish ();
      analysed_fraction d >= floor_rate)

(* ------------------------------------------------------------------ *)
(* Race_sampler: granule-level selection *)

let test_rate_validation () =
  List.iter
    (fun rate ->
      Alcotest.check_raises
        (Printf.sprintf "rate %g rejected" rate)
        (Invalid_argument "Race_sampler.create: rate must be in (0, 1]")
        (fun () ->
          ignore
            (Race_sampler.create ~rate
               ~inner:(Dynamic_granularity.create ())
               ())))
    [ 0.; -0.5; 1.5 ]

let test_rate_one_skips_nothing () =
  let d =
    Race_sampler.create ~rate:1.0 ~inner:(Dynamic_granularity.create ()) ()
  in
  let evs =
    fork 0 1
    :: List.init 500 (fun i -> rd 0 (0x1000 + (4096 * (i mod 37)) + (4 * i)))
  in
  let d = feed_events d evs in
  Alcotest.(check int) "nothing skipped" 0 (counter_of d "sampling.skipped");
  Alcotest.(check int) "all analysed" 500 (counter_of d "sampling.analysed")

let test_straddle_kept_when_either_side_selected () =
  let seed = Race_sampler.default_seed and rate = 0.5 in
  (* find an unselected granule whose right neighbour is selected *)
  let rec find g =
    if
      (not (Race_sampler.selected ~rate ~seed g))
      && Race_sampler.selected ~rate ~seed (g + 1)
    then g
    else find (g + 1)
  in
  let g = find 1 in
  let d () =
    Race_sampler.create ~rate ~seed ~inner:(Dynamic_granularity.create ()) ()
  in
  (* wholly inside the unselected granule: skipped *)
  let d0 = feed_events (d ()) [ wr 0 ((g * 4096) + 8) ] in
  Alcotest.(check int) "inside unselected: skipped" 1
    (counter_of d0 "sampling.skipped");
  (* straddling into the selected neighbour: analysed, so the selected
     granule sees its complete access set *)
  let d1 = feed_events (d ()) [ wr 0 (((g + 1) * 4096) - 2) ] in
  Alcotest.(check int) "straddle: analysed" 1 (counter_of d1 "sampling.analysed")

(* The granule guarantee: the sampler's reports are EXACTLY the full
   run's reports on selected granules — races on 64 distinct granules,
   sampled at 0.5, must match the hash-filtered full set. *)
let test_granule_subset_exact () =
  let evs =
    fork 0 1
    :: List.concat_map
         (fun g ->
           let a = ((g + 1) * 4096) + 16 in
           [ wr 0 a; wr 1 a ])
         (List.init 64 Fun.id)
  in
  let full = feed_events (Dynamic_granularity.create ()) evs in
  let rate = 0.5 and seed = Race_sampler.default_seed in
  let sampled =
    feed_events
      (Race_sampler.create ~rate ~seed ~inner:(Dynamic_granularity.create ()) ())
      evs
  in
  let expected =
    List.filter
      (fun (r : Report.t) ->
        Race_sampler.selected ~rate ~seed (Race_sampler.granule_of_addr r.addr))
      (races full)
  in
  Alcotest.(check (list string))
    "sampler = full restricted to selected granules"
    (List.map Report.to_string expected)
    (List.map Report.to_string (races sampled));
  let n = race_count sampled in
  Alcotest.(check bool) "a proper nonempty subset" true (n > 0 && n < 64)

(* ------------------------------------------------------------------ *)
(* sample:1.0 differential across the corpus traces *)

let corpus name =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat "corpus" name)

let corpus_names = [ "clean"; "racy"; "deadlock_adjacent"; "straddle" ]

let check_same_run name (a : Engine.summary) (b : Engine.summary) =
  Alcotest.(check (list string))
    (name ^ ": races bit-identical")
    (List.map Report.to_string a.races)
    (List.map Report.to_string b.races);
  Alcotest.(check int) (name ^ ": race_count") a.race_count b.race_count;
  Alcotest.(check int) (name ^ ": accesses") a.stats.accesses b.stats.accesses

let test_rate_one_identical_to_inner () =
  List.iter
    (fun base ->
      let events = Trace_reader.read_file (corpus (base ^ ".trace")) in
      let inner = Engine.replay ~spec:Spec.dynamic (List.to_seq events) in
      List.iter
        (fun granule ->
          let s =
            Engine.replay
              ~spec:(Spec.Sampling { rate = 1.0; granule })
              (List.to_seq events)
          in
          check_same_run
            (Printf.sprintf "%s granule=%b" base granule)
            inner s)
        [ true; false ])
    corpus_names

let test_rate_one_identical_to_inner_batched () =
  (* same law through the v2 batched pipeline: the sampler's
     process_batch at rate 1.0 forwards every row *)
  List.iter
    (fun base ->
      let path = corpus (base ^ ".trace.v2") in
      let feed consume =
        Trace_format_v2.fold_batches path (fun () b -> consume b) ()
      in
      let inner = Engine.replay_batches ~spec:Spec.dynamic feed in
      let s =
        Engine.replay_batches
          ~spec:(Spec.Sampling { rate = 1.0; granule = true })
          feed
      in
      check_same_run (base ^ ".v2") inner s)
    corpus_names

let test_batched_matches_per_event () =
  (* at a real rate, both sampler paths analyse the identical subset *)
  List.iter
    (fun base ->
      let events = Trace_reader.read_file (corpus (base ^ ".trace")) in
      let feed consume =
        Trace_format_v2.fold_batches
          (corpus (base ^ ".trace.v2"))
          (fun () b -> consume b)
          ()
      in
      List.iter
        (fun granule ->
          let spec = Spec.Sampling { rate = 0.37; granule } in
          let per_event = Engine.replay ~spec (List.to_seq events) in
          let batched = Engine.replay_batches ~spec feed in
          check_same_run
            (Printf.sprintf "%s rate 0.37 granule=%b" base granule)
            per_event batched)
        [ true; false ])
    corpus_names

(* ------------------------------------------------------------------ *)
(* engine.batch_fallback surfacing *)

let fallback_of (s : Engine.summary) =
  Option.value ~default:0 (Metrics.find_counter s.metrics "engine.batch_fallback")

let test_batch_fallback_counter () =
  let feed consume =
    Trace_format_v2.fold_batches
      (corpus "racy.trace.v2")
      (fun () b -> consume b)
      ()
  in
  (* no process_batch: every batch unrolls, and the counter says so *)
  let drd = Engine.replay_batches ~spec:Spec.Drd feed in
  Alcotest.(check bool) "drd fallback surfaced" true (fallback_of drd > 0);
  (* samplers ride the batched pipeline: no fallback *)
  let sampler =
    Engine.replay_batches ~spec:(Spec.Sampling { rate = 0.5; granule = true }) feed
  in
  Alcotest.(check int) "sampler: no fallback" 0 (fallback_of sampler);
  let literace = Engine.replay_batches ~spec:Spec.Literace feed in
  Alcotest.(check int) "literace: no fallback" 0 (fallback_of literace);
  (* a budget forces exact per-event semantics — surfaced, not silent *)
  let budgeted =
    Engine.replay_batches
      ~budget:(Dgrace_resilience.Budget.make ~max_events:1_000_000 ())
      ~spec:(Spec.Sampling { rate = 0.5; granule = true })
      feed
  in
  Alcotest.(check bool) "budgeted run surfaced" true (fallback_of budgeted > 0)

(* ------------------------------------------------------------------ *)
(* spec strings *)

let test_spec_strings () =
  let ok s spec =
    match Spec.of_string s with
    | Ok got -> Alcotest.(check string) s (Spec.name spec) (Spec.name got)
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "sample:0.25" (Spec.Sampling { rate = 0.25; granule = false });
  ok "sample-granule:0.5" (Spec.Sampling { rate = 0.5; granule = true });
  ok "sample-granule:1" (Spec.Sampling { rate = 1.0; granule = true });
  ok "sample" (Spec.Sampling { rate = 0.1; granule = false });
  ok "sample-granule" (Spec.Sampling { rate = 0.1; granule = true });
  List.iter
    (fun s ->
      match Spec.of_string s with
      | Ok _ -> Alcotest.fail (s ^ " must be rejected")
      | Error _ -> ())
    [ "sample:0"; "sample:1.5"; "sample:-0.1"; "sample:x"; "sample-granule:" ]

let suites : unit Alcotest.test list =
  [
    ( "sampler.floor",
      [
        Alcotest.test_case "effective floor pinned" `Quick test_effective_floor_pinned;
        Alcotest.test_case "floor respected on hot region" `Quick test_literace_floor_respected;
        QCheck_alcotest.to_alcotest qcheck_literace_floor_law;
      ] );
    ( "sampler.granule",
      [
        Alcotest.test_case "rate validation" `Quick test_rate_validation;
        Alcotest.test_case "rate 1.0 skips nothing" `Quick test_rate_one_skips_nothing;
        Alcotest.test_case "straddle kept" `Quick test_straddle_kept_when_either_side_selected;
        Alcotest.test_case "exact on selected granules" `Quick test_granule_subset_exact;
      ] );
    ( "sampler.differential",
      [
        Alcotest.test_case "sample:1.0 = inner (corpus)" `Quick test_rate_one_identical_to_inner;
        Alcotest.test_case "sample:1.0 = inner (batched v2)" `Quick test_rate_one_identical_to_inner_batched;
        Alcotest.test_case "batched = per-event" `Quick test_batched_matches_per_event;
      ] );
    ( "sampler.engine",
      [
        Alcotest.test_case "batch_fallback surfaced" `Quick test_batch_fallback_counter;
        Alcotest.test_case "spec strings" `Quick test_spec_strings;
      ] );
  ]
