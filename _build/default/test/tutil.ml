(* Shared helpers for the detector tests: run programs or raw event
   lists under detectors and extract comparable race summaries. *)

open Dgrace_events
open Dgrace_detectors
open Dgrace_sim

let run_detector ?policy (d : Detector.t) prog =
  let _ = Sim.run ?policy ~sink:d.on_event prog in
  d.finish ();
  d

let feed_events (d : Detector.t) events =
  List.iter d.on_event events;
  d.finish ();
  d

let races d = Detector.races d
let race_count d = Detector.race_count d

(* Every byte covered by some reported granule, for cross-detector
   comparison independent of reporting units. *)
let racy_bytes d =
  List.fold_left
    (fun acc (r : Report.t) ->
      let rec add acc a = if a >= r.granule_hi then acc else add (a :: acc) (a + 1) in
      add acc r.granule_lo)
    [] (races d)
  |> List.sort_uniq compare

(* Hand-built event streams: a tiny two-thread vocabulary.  [lock]/
   [unlock] use lock id 1. *)
let acq tid = Event.Acquire { tid; lock = 1; sync = Event.Lock }
let rel tid = Event.Release { tid; lock = 1; sync = Event.Lock }
let rd ?(size = 4) ?(loc = "") tid addr = Event.Access { tid; kind = Read; addr; size; loc }
let wr ?(size = 4) ?(loc = "") tid addr = Event.Access { tid; kind = Write; addr; size; loc }
let fork parent child = Event.Fork { parent; child }
let join parent child = Event.Join { parent; child }
let free tid addr size = Event.Free { tid; addr; size }

(* All happens-before detector constructors under test, by name.  The
   related-work detectors are happens-before based too (RaceTrack
   refines but still decides by clocks; LiteRace samples a
   happens-before detector; MultiRace intersects with LockSet), so a
   race-free program must be silent under every one of them. *)
let hb_detectors () =
  [
    ("ft-byte", Dynamic_granularity.create ~sharing:false ~name:"ft-byte" ());
    ("ft-word", Fasttrack.create ~granularity:4 ());
    ("djit", Djit.create ());
    ("dynamic", Dynamic_granularity.create ());
    ("dynamic-ext",
     Dynamic_granularity.create ~reshare_after:4 ~write_guided_reads:true ());
    ("drd", Drd_segment.create ());
    ("inspector", Hybrid_inspector.create ());
    ("racetrack", Racetrack_adaptive.create ());
    ("literace", Literace_sampling.create ());
    ("multirace", Multirace.create ());
  ]

let check_each_hb name prog expected =
  List.iter
    (fun (dn, d) ->
      let d = run_detector d prog in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s" name dn)
        expected (race_count d))
    (hb_detectors ())
