  $ racedet list | head -4
  $ racedet list | grep -E 'dynamic$|multirace|literace' | sed 's/ *$//'
  $ racedet run dedup --detector dynamic | grep races:
  $ racedet run hmmsearch --detector dynamic -v | grep -o 'hmmsearch:hits' | sort -u
  $ racedet run x264 --detector word 2>/dev/null | grep -o 'races: [0-9]*'
  $ racedet run x264 --detector byte 2>/dev/null | grep -o 'races: [0-9]*'
  $ racedet run nosuchworkload 2>&1 | head -1
  $ racedet run hmmsearch --detector nosuchdetector 2>&1 | head -1
  $ racedet record ffmpeg trace.bin | sed 's/ [0-9]* events/ N events/'
  $ racedet trace-info trace.bin | head -4
  $ racedet trace-dump trace.bin -n 2
  $ racedet replay trace.bin --detector dynamic | grep 'races:'
  $ rm trace.bin
  $ racedet explore hmmsearch -n 3 | tail -2
