test/test_sim.ml: Alcotest Detector Dgrace_detectors Dgrace_events Dgrace_sim Dynamic_granularity Event Hashtbl List Memory Option Printf Scheduler Sim
