test/test_state_machine.ml: Alcotest Dgrace_detectors Fmt List Share_state
