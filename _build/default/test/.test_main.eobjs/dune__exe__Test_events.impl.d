test/test_events.ml: Alcotest Dgrace_events Event List Option Report Suppression
