test/test_shadow.ml: Accounting Alcotest Array Dgrace_shadow Epoch_bitmap Hashtbl List QCheck QCheck_alcotest Shadow_table Test
