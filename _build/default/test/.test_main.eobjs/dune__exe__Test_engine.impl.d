test/test_engine.ml: Alcotest Astring_contains Dgrace_core Dgrace_events Dgrace_sim Dgrace_trace Engine Filename Format List Option Scheduler Sim Spec Suppression Sys
