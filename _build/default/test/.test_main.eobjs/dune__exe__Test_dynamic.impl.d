test/test_dynamic.ml: Accounting Alcotest Detector Dgrace_detectors Dgrace_events Dgrace_shadow Dynamic_granularity Fasttrack Fun List Tutil
