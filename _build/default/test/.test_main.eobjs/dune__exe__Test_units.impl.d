test/test_units.ml: Accounting Alcotest Dgrace_detectors Dgrace_events Dgrace_shadow Dgrace_sim Dgrace_vclock Epoch List Lock_tracker QCheck QCheck_alcotest Race_info Read_state Vc_env Vector_clock
