test/test_util.ml: Alcotest Dgrace_util List QCheck QCheck_alcotest Test
