test/test_fasttrack.ml: Accounting Alcotest Detector Dgrace_core Dgrace_detectors Dgrace_events Dgrace_shadow Fasttrack Tutil
