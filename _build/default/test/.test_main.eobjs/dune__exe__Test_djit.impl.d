test/test_djit.ml: Accounting Alcotest Detector Dgrace_detectors Dgrace_events Dgrace_shadow Djit Fasttrack Fun List Tutil
