test/test_baselines.ml: Accounting Alcotest Detector Dgrace_detectors Dgrace_events Dgrace_shadow Drd_segment Dynamic_granularity Event Fun Hybrid_inspector List Lockset Tutil
