test/test_vclock.ml: Alcotest Dgrace_vclock Epoch List QCheck QCheck_alcotest Vector_clock
