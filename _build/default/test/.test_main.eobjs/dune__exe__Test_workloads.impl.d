test/test_workloads.ml: Alcotest Dgrace_core Dgrace_detectors Dgrace_events Dgrace_workloads Engine List Option Registry Run_stats Spec Suppression Workload
