test/test_trace.ml: Alcotest Buffer Dgrace_events Dgrace_trace Event Filename In_channel List QCheck QCheck_alcotest String Sys Trace_format Trace_reader Trace_writer Unix
