(* Shadow memory: the Fig. 4 indexing structure, the same-epoch
   bitmaps, and the accounting that feeds Tables 2 and 3. *)

open Dgrace_shadow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Shadow_table, fixed mode *)

let test_fixed_set_get () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Alcotest.(check (option int)) "absent" None (Shadow_table.get t 0x1000);
  Shadow_table.set t 0x1001 7;
  (* slot covers the whole word *)
  Alcotest.(check (option int)) "same slot" (Some 7) (Shadow_table.get t 0x1003);
  Alcotest.(check (option int)) "next slot" None (Shadow_table.get t 0x1004);
  Alcotest.(check (pair int int)) "slot bounds" (0x1000, 0x1004)
    (Shadow_table.slot_bounds t 0x1002)

let test_set_range_remove_range () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1100 1;
  check_int "entries span blocks" 2 (Shadow_table.entry_count t);
  Alcotest.(check (option int)) "covered" (Some 1) (Shadow_table.get t 0x10fc);
  Shadow_table.remove_range t ~lo:0x1000 ~hi:0x1100;
  Alcotest.(check (option int)) "removed" None (Shadow_table.get t 0x1050);
  check_int "empty entries dropped" 0 (Shadow_table.entry_count t)

let test_partial_remove_keeps_entry () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1080 1;
  Shadow_table.remove_range t ~lo:0x1000 ~hi:0x1040;
  check_int "entry kept" 1 (Shadow_table.entry_count t);
  Alcotest.(check (option int)) "tail kept" (Some 1) (Shadow_table.get t 0x1060)

(* ------------------------------------------------------------------ *)
(* Adaptive mode: m/4 -> m expansion *)

let test_adaptive_expansion () =
  let a = Accounting.create () in
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive ~account:a () in
  Shadow_table.set t 0x1000 1;
  Alcotest.(check (pair int int)) "word slots initially" (0x1000, 0x1004)
    (Shadow_table.slot_bounds t 0x1001);
  let before = Shadow_table.bytes t in
  (* a sub-word access expands the entry to byte slots *)
  Shadow_table.ensure_granularity t ~addr:0x1001 ~size:1;
  Alcotest.(check (pair int int)) "byte slots after" (0x1001, 0x1002)
    (Shadow_table.slot_bounds t 0x1001);
  check_bool "index grew" true (Shadow_table.bytes t > before);
  (* the old word's pointer is inherited by each of its bytes *)
  Alcotest.(check (option int)) "byte 0" (Some 1) (Shadow_table.get t 0x1000);
  Alcotest.(check (option int)) "byte 3" (Some 1) (Shadow_table.get t 0x1003);
  Alcotest.(check (option int)) "byte 4" None (Shadow_table.get t 0x1004)

let test_adaptive_word_access_no_expansion () =
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  Shadow_table.set t 0x2000 1;
  Shadow_table.ensure_granularity t ~addr:0x2000 ~size:4;
  Alcotest.(check (pair int int)) "still word slots" (0x2000, 0x2004)
    (Shadow_table.slot_bounds t 0x2000);
  Shadow_table.ensure_granularity t ~addr:0x2008 ~size:8;
  Alcotest.(check (pair int int)) "8-byte aligned access stays word" (0x2008, 0x200c)
    (Shadow_table.slot_bounds t 0x2008)

let test_adaptive_precreates_byte_entry () =
  let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
  Shadow_table.ensure_granularity t ~addr:0x3001 ~size:1;
  Alcotest.(check (pair int int)) "fresh entry at byte slots" (0x3001, 0x3002)
    (Shadow_table.slot_bounds t 0x3001)

(* ------------------------------------------------------------------ *)
(* Neighbours and group *)

let test_neighbors () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1000 1;
  Shadow_table.set t 0x1008 2;
  (match Shadow_table.prev_neighbor t 0x1008 with
   | Some (lo, hi, v) ->
     check_int "prev lo" 0x1000 lo;
     check_int "prev hi" 0x1004 hi;
     check_int "prev v" 1 v
   | None -> Alcotest.fail "expected prev neighbor");
  (match Shadow_table.next_neighbor t 0x1000 with
   | Some (lo, _, v) ->
     check_int "next lo" 0x1008 lo;
     check_int "next v" 2 v
   | None -> Alcotest.fail "expected next neighbor");
  check_bool "no prev of first" true (Shadow_table.prev_neighbor t 0x1000 = None)

let test_neighbor_scan_is_bounded () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1000 1;
  (* a value far away is beyond the bounded neighbourhood *)
  check_bool "too far" true (Shadow_table.prev_neighbor t 0x1060 = None)

let test_neighbor_crosses_block () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x107c 5;
  (* 0x1080 is the next 128-byte block *)
  match Shadow_table.prev_neighbor t 0x1080 with
  | Some (lo, _, v) ->
    check_int "lo" 0x107c lo;
    check_int "v" 5 v
  | None -> Alcotest.fail "expected neighbor across block boundary"

let test_group () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1010 1;
  Shadow_table.set_range t ~lo:0x1010 ~hi:0x1018 2;
  let glo, ghi, v = Shadow_table.group t 0x1004 ~hi:0x1020 in
  check_int "group lo" 0x1004 glo;
  check_int "group hi stops at other cell" 0x1010 ghi;
  check_bool "value" true (v = Some 1);
  let glo, ghi, v = Shadow_table.group t 0x1018 ~hi:0x1030 in
  check_int "empty group lo" 0x1018 glo;
  check_int "empty group extends" 0x1030 ghi;
  check_bool "empty value" true (v = None)

let test_group_clips_to_slot_boundary () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1040 9;
  let glo, ghi, _ = Shadow_table.group t 0x1006 ~hi:0x1007 in
  check_int "lo aligned" 0x1004 glo;
  check_int "hi rounded up to slot" 0x1008 ghi

let test_group_crosses_blocks () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set_range t ~lo:0x1000 ~hi:0x1200 3;
  let _, ghi, v = Shadow_table.group t 0x1000 ~hi:0x1200 in
  check_int "crosses two blocks" 0x1200 ghi;
  check_bool "same value" true (v = Some 3)

let test_iter_range () =
  let t = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) () in
  Shadow_table.set t 0x1000 1;
  Shadow_table.set t 0x1004 2;
  Shadow_table.set t 0x1010 3;
  let acc = ref [] in
  Shadow_table.iter_range (fun lo _ v -> acc := (lo, v) :: !acc) t ~lo:0x1000 ~hi:0x1008;
  Alcotest.(check (list (pair int int))) "only intersecting slots"
    [ (0x1000, 1); (0x1004, 2) ] (List.rev !acc)

(* model-based: adaptive table vs a plain per-byte Hashtbl *)
let model_test =
  let open QCheck in
  Test.make ~name:"shadow table agrees with per-byte model" ~count:200
    (small_list
       (triple (int_bound 2) (int_bound 512) (int_bound 3)))
    (fun ops ->
      let t = Shadow_table.create ~mode:Shadow_table.Adaptive () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let base = 0x4000 in
      List.iter
        (fun (op, off, szi) ->
          let addr = base + off in
          let size = [| 1; 2; 4; 8 |].(szi) in
          match op with
          | 0 ->
            Shadow_table.ensure_granularity t ~addr ~size;
            let lo, hi = Shadow_table.slot_bounds t addr in
            let lo2, hi2 = (min lo addr, max hi (addr + size)) in
            Shadow_table.set_range t ~lo:lo2 ~hi:hi2 off;
            for a = lo2 to hi2 - 1 do Hashtbl.replace model a off done
          | 1 ->
            Shadow_table.remove_range t ~lo:addr ~hi:(addr + size);
            (* removal is slot-aligned: the model must drop whole slots *)
            let slo, _ = Shadow_table.slot_bounds t addr in
            let _, shi = Shadow_table.slot_bounds t (addr + size - 1) in
            for a = slo to shi - 1 do Hashtbl.remove model a done
          | _ ->
            let got = Shadow_table.get t addr in
            let expect = Hashtbl.find_opt model addr in
            if got <> expect then
              Test.fail_reportf "get 0x%x: got %s, expected %s" addr
                (match got with Some v -> string_of_int v | None -> "-")
                (match expect with Some v -> string_of_int v | None -> "-"))
        ops;
      true)

(* ------------------------------------------------------------------ *)
(* Epoch bitmap *)

let test_bitmap_planes () =
  let b = Epoch_bitmap.create () in
  Epoch_bitmap.mark b ~write:false ~lo:100 ~hi:104;
  check_bool "read marked" true (Epoch_bitmap.test b ~write:false 102);
  check_bool "write plane untouched" false (Epoch_bitmap.test b ~write:true 102);
  check_bool "outside" false (Epoch_bitmap.test b ~write:false 104);
  Epoch_bitmap.mark b ~write:true ~lo:102 ~hi:103;
  check_bool "write marked" true (Epoch_bitmap.test b ~write:true 102);
  check_bool "read still marked" true (Epoch_bitmap.test b ~write:false 102);
  Epoch_bitmap.reset b;
  check_bool "reset clears" false (Epoch_bitmap.test b ~write:false 102);
  check_int "reset releases storage" 0 (Epoch_bitmap.bytes b)

let bitmap_model =
  let open QCheck in
  Test.make ~name:"bitmap mark/test agrees with model" ~count:200
    (small_list (triple bool (int_bound 5000) (int_bound 600)))
    (fun ranges ->
      let b = Epoch_bitmap.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (write, lo, len) ->
          Epoch_bitmap.mark b ~write ~lo ~hi:(lo + len);
          for a = lo to lo + len - 1 do Hashtbl.replace model (write, a) () done)
        ranges;
      let ok = ref true in
      for a = 0 to 5700 do
        List.iter
          (fun write ->
            if Epoch_bitmap.test b ~write a <> Hashtbl.mem model (write, a) then
              ok := false)
          [ true; false ]
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Accounting *)

let test_accounting_peaks () =
  let a = Accounting.create () in
  Accounting.add_vc a 100;
  Accounting.add_hash a 50;
  Accounting.add_vc a (-80);
  check_int "current" 70 (Accounting.current_bytes a);
  check_int "peak" 150 (Accounting.peak_bytes a);
  check_int "peak vc" 100 (Accounting.peak_vc_bytes a);
  Accounting.vc_created a;
  Accounting.vc_created a;
  Accounting.vc_freed a;
  check_int "live" 1 (Accounting.live_vcs a);
  check_int "peak vcs" 2 (Accounting.peak_vcs a);
  Accounting.bind_locations a 10;
  Alcotest.(check (float 0.001)) "avg sharing" 5.0 (Accounting.avg_sharing a);
  Accounting.reset a;
  check_int "reset" 0 (Accounting.peak_bytes a)

let suites : unit Alcotest.test list =
    [
      ( "shadow.fixed",
        [
          Alcotest.test_case "set/get" `Quick test_fixed_set_get;
          Alcotest.test_case "set_range/remove_range" `Quick test_set_range_remove_range;
          Alcotest.test_case "partial remove" `Quick test_partial_remove_keeps_entry;
        ] );
      ( "shadow.adaptive",
        [
          Alcotest.test_case "sub-word access expands" `Quick test_adaptive_expansion;
          Alcotest.test_case "word access stays" `Quick test_adaptive_word_access_no_expansion;
          Alcotest.test_case "pre-creates byte entry" `Quick test_adaptive_precreates_byte_entry;
        ] );
      ( "shadow.navigation",
        [
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "bounded scan" `Quick test_neighbor_scan_is_bounded;
          Alcotest.test_case "cross-block neighbor" `Quick test_neighbor_crosses_block;
          Alcotest.test_case "group runs" `Quick test_group;
          Alcotest.test_case "group slot clipping" `Quick test_group_clips_to_slot_boundary;
          Alcotest.test_case "group across blocks" `Quick test_group_crosses_blocks;
          Alcotest.test_case "iter_range" `Quick test_iter_range;
          QCheck_alcotest.to_alcotest model_test;
        ] );
      ( "shadow.bitmap",
        [
          Alcotest.test_case "planes and reset" `Quick test_bitmap_planes;
          QCheck_alcotest.to_alcotest bitmap_model;
        ] );
      ( "shadow.accounting",
        [ Alcotest.test_case "peaks and sharing" `Quick test_accounting_peaks ] );
    ]
