(* The comparison detectors: Eraser LockSet, DRD-style segments, and
   the hybrid Inspector stand-in. *)

open Dgrace_detectors
open Dgrace_events
open Tutil

let acq2 tid lock = Event.Acquire { tid; lock; sync = Event.Lock }
let rel2 tid lock = Event.Release { tid; lock; sync = Event.Lock }

(* ------------------------------------------------------------------ *)
(* Eraser *)

let eraser () = Lockset.create ()

let test_eraser_discipline_violation () =
  (* two threads write the same word under different locks *)
  let evs =
    [ fork 0 1;
      acq2 0 1; wr 0 0x100; rel2 0 1;
      acq2 1 2; wr 1 0x100; rel2 1 2 ]
  in
  let d = feed_events (eraser ()) evs in
  Alcotest.(check int) "empty lockset reported" 1 (race_count d)

let test_eraser_consistent_lock_ok () =
  let evs =
    [ fork 0 1;
      acq2 0 1; wr 0 0x100; rel2 0 1;
      acq2 1 1; wr 1 0x100; rel2 1 1;
      acq2 0 1; wr 0 0x100; rel2 0 1 ]
  in
  let d = feed_events (eraser ()) evs in
  Alcotest.(check int) "consistent discipline" 0 (race_count d)

let test_eraser_exclusive_phase () =
  (* a single thread never triggers checks, whatever it does *)
  let evs = [ wr 0 0x100; rd 0 0x100; wr 0 0x100 ] in
  let d = feed_events (eraser ()) evs in
  Alcotest.(check int) "exclusive" 0 (race_count d)

let test_eraser_read_shared_no_report () =
  (* write then unprotected reads by others: Shared state, no report
     (the known Eraser miss on write-then-read-shared) *)
  let evs = [ fork 0 1; wr 0 0x100; rd 1 0x100 ] in
  let d = feed_events (eraser ()) evs in
  Alcotest.(check int) "shared state silent" 0 (race_count d)

let test_eraser_fork_join_false_alarm () =
  (* perfectly ordered by fork/join, yet LockSet has no lock in common *)
  let evs =
    [ wr 0 0x100; fork 0 1; wr 1 0x100;
      Event.Thread_exit { tid = 1 }; join 0 1; wr 0 0x100 ]
  in
  let d = feed_events (eraser ()) evs in
  Alcotest.(check int) "false alarm on fork/join" 1 (race_count d)

let test_eraser_barrier_not_a_lock () =
  (* barrier sync events must not enter locksets *)
  let evs =
    [ fork 0 1;
      Event.Acquire { tid = 0; lock = 9; sync = Event.Barrier };
      Event.Acquire { tid = 1; lock = 9; sync = Event.Barrier };
      wr 0 0x100; wr 1 0x100 ]
  in
  let d = feed_events (eraser ()) evs in
  Alcotest.(check int) "barrier does not protect" 1 (race_count d)

(* ------------------------------------------------------------------ *)
(* DRD segments *)

let drd () = Drd_segment.create ()

let test_drd_basic () =
  let d = feed_events (drd ()) [ fork 0 1; wr 0 0x100; wr 1 0x100 ] in
  Alcotest.(check int) "ww race" 1 (race_count d);
  let d = feed_events (drd ()) [ fork 0 1; rd 0 0x100; rd 1 0x100 ] in
  Alcotest.(check int) "rr ok" 0 (race_count d);
  let d =
    feed_events (drd ())
      [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ]
  in
  Alcotest.(check int) "lock ordered" 0 (race_count d)

let test_drd_segments_gc () =
  let open Dgrace_shadow in
  (* a long lock-ordered sequence: finished segments become ordered
     before every thread and must be swept *)
  let evs =
    fork 0 1
    :: List.concat_map
         (fun i ->
           [ acq 0; wr 0 (0x100 + (4 * (i mod 8))); rel 0;
             acq 1; wr 1 (0x100 + (4 * (i mod 8))); rel 1 ])
         (List.init 64 Fun.id)
  in
  let d = feed_events (drd ()) evs in
  Alcotest.(check int) "no race" 0 (race_count d);
  (* far fewer live segment clocks than segments created *)
  Alcotest.(check bool) "segments swept" true
    (Accounting.live_vcs d.Detector.account < 32)

let test_drd_free_purges () =
  let evs =
    [
      fork 0 1;
      Event.Alloc { tid = 0; addr = 0x200; size = 8 };
      wr 0 0x200;
      free 0 0x200 8;
      Event.Alloc { tid = 1; addr = 0x200; size = 8 };
      wr 1 0x200;
    ]
  in
  let d = feed_events (drd ()) evs in
  Alcotest.(check int) "recycled address is clean" 0 (race_count d)

let test_drd_same_segment_dedup () =
  let d = feed_events (drd ()) [ wr 0 0x100; wr 0 0x100; wr 0 0x100 ] in
  Alcotest.(check int) "same-segment accesses filtered" 2
    d.Detector.stats.same_epoch

(* ------------------------------------------------------------------ *)
(* Hybrid inspector *)

let inspector () = Hybrid_inspector.create ()

let test_inspector_basic () =
  let d = feed_events (inspector ()) [ fork 0 1; wr 0 0x100; wr 1 0x100 ] in
  Alcotest.(check int) "ww race" 1 (race_count d);
  let d =
    feed_events (inspector ())
      [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ]
  in
  Alcotest.(check int) "lock ordered" 0 (race_count d)

let test_inspector_pair_dedup () =
  (* many racy locations from the same instruction pair: one report *)
  let evs =
    fork 0 1
    :: (List.map (fun i -> wr ~loc:"a" 0 (0x100 + (4 * i))) (List.init 8 Fun.id)
        @ List.map (fun i -> wr ~loc:"b" 1 (0x100 + (4 * i))) (List.init 8 Fun.id))
  in
  let d = feed_events (inspector ()) evs in
  Alcotest.(check int) "per instruction pair" 1 (race_count d)

let test_inspector_window_eviction () =
  (* the bounded history can forget old accesses: with window 1, an
     intervening access by the same future-ordered thread hides the
     older racy write *)
  let evs =
    [ fork 0 1; wr 0 0x100;  (* racy with t1 below *)
      fork 0 2; wr 2 0x100;  (* also racy; fills the window *)
      wr 1 0x100 ]
  in
  let small = feed_events (Hybrid_inspector.create ~history:1 ()) evs in
  let big = feed_events (Hybrid_inspector.create ~history:4 ()) evs in
  Alcotest.(check bool) "bigger window finds at least as much" true
    (race_count big >= race_count small)

let test_inspector_memory_heavier_than_dynamic () =
  let open Dgrace_shadow in
  let evs =
    fork 0 1
    :: List.concat_map
         (fun i ->
           [ acq 0; wr 0 (0x1000 + (4 * (i mod 64))); rel 0;
             acq 1; rd 1 (0x1000 + (4 * (i mod 64))); rel 1 ])
         (List.init 128 Fun.id)
  in
  let ins = feed_events (inspector ()) evs in
  let dyn = feed_events (Dynamic_granularity.create ()) evs in
  Alcotest.(check bool) "inspector memory > dynamic memory" true
    (Accounting.peak_bytes ins.Detector.account
     > Accounting.peak_bytes dyn.Detector.account)

let suites : unit Alcotest.test list =
  [
    ( "baselines.eraser",
      [
        Alcotest.test_case "discipline violation" `Quick test_eraser_discipline_violation;
        Alcotest.test_case "consistent lock ok" `Quick test_eraser_consistent_lock_ok;
        Alcotest.test_case "exclusive phase" `Quick test_eraser_exclusive_phase;
        Alcotest.test_case "read-shared miss" `Quick test_eraser_read_shared_no_report;
        Alcotest.test_case "fork/join false alarm" `Quick test_eraser_fork_join_false_alarm;
        Alcotest.test_case "barrier is not a lock" `Quick test_eraser_barrier_not_a_lock;
      ] );
    ( "baselines.drd",
      [
        Alcotest.test_case "basic" `Quick test_drd_basic;
        Alcotest.test_case "segment GC" `Quick test_drd_segments_gc;
        Alcotest.test_case "free purges sets" `Quick test_drd_free_purges;
        Alcotest.test_case "same-segment dedup" `Quick test_drd_same_segment_dedup;
      ] );
    ( "baselines.inspector",
      [
        Alcotest.test_case "basic" `Quick test_inspector_basic;
        Alcotest.test_case "instruction-pair dedup" `Quick test_inspector_pair_dedup;
        Alcotest.test_case "window eviction" `Quick test_inspector_window_eviction;
        Alcotest.test_case "memory heavier than dynamic" `Quick test_inspector_memory_heavier_than_dynamic;
      ] );
  ]
