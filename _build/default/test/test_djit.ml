(* DJIT+ (full vector clocks per location): the same detection rules
   as FastTrack, at O(n) space per location. *)

open Dgrace_detectors
open Tutil

let djit () = Djit.create ()

let check name events expected =
  let d = feed_events (djit ()) events in
  Alcotest.(check int) name expected (race_count d)

let test_basic_races () =
  check "ww race" [ fork 0 1; wr 0 0x100; wr 1 0x100 ] 1;
  check "wr race" [ fork 0 1; wr 0 0x100; rd 1 0x100 ] 1;
  check "rw race" [ fork 0 1; rd 1 0x100; wr 0 0x100 ] 1;
  check "rr no race" [ fork 0 1; rd 0 0x100; rd 1 0x100 ] 0

let test_sync_edges () =
  check "lock ordering" [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ] 0;
  check "fork edge" [ wr 0 0x100; fork 0 1; wr 1 0x100 ] 0;
  check "join edge"
    [ fork 0 1; wr 1 0x100; Dgrace_events.Event.Thread_exit { tid = 1 }; join 0 1; wr 0 0x100 ]
    0

(* DJIT+ keeps the full read vector clock, so the read-shared pattern
   works without an adaptive representation *)
let test_read_shared () =
  check "unordered reads then racy write"
    [ fork 0 1; fork 0 2; rd 1 0x100; rd 2 0x100; wr 0 0x100 ]
    1

let test_granularity () =
  let d4 = feed_events (Djit.create ~granularity:4 ()) [ fork 0 1; wr ~size:1 0 0x100; wr ~size:1 1 0x103 ] in
  Alcotest.(check int) "word granularity conflates" 1 (race_count d4);
  let d1 = feed_events (Djit.create ~granularity:1 ()) [ fork 0 1; wr ~size:1 0 0x100; wr ~size:1 1 0x103 ] in
  Alcotest.(check int) "byte granularity separates" 0 (race_count d1)

let test_memory_is_heavier_than_fasttrack () =
  let open Dgrace_shadow in
  let events =
    (fork 0 1 :: acq 0 :: List.map (fun i -> wr 0 (0x1000 + (4 * i))) (List.init 64 Fun.id))
    @ (rel 0 :: acq 1 :: List.map (fun i -> rd 1 (0x1000 + (4 * i))) (List.init 64 Fun.id))
    @ [ rel 1 ]
  in
  let dj = feed_events (Djit.create ~granularity:4 ()) events in
  let ft = feed_events (Fasttrack.create ~granularity:4 ()) events in
  Alcotest.(check bool) "djit vc bytes > fasttrack vc bytes" true
    (Accounting.peak_vc_bytes dj.Detector.account
     > Accounting.peak_vc_bytes ft.Detector.account)

let test_free_retires () =
  let open Dgrace_shadow in
  let d =
    feed_events (djit ())
      [ wr 0 0x400; wr 0 0x401; free 0 0x400 8 ]
  in
  Alcotest.(check int) "retired" 0 (Accounting.live_vcs d.Detector.account)

let suites : unit Alcotest.test list =
  [
    ( "djit.rules",
      [
        Alcotest.test_case "basic races" `Quick test_basic_races;
        Alcotest.test_case "sync edges" `Quick test_sync_edges;
        Alcotest.test_case "read shared" `Quick test_read_shared;
        Alcotest.test_case "granularity" `Quick test_granularity;
      ] );
    ( "djit.memory",
      [
        Alcotest.test_case "heavier than FastTrack" `Quick test_memory_is_heavier_than_fasttrack;
        Alcotest.test_case "free retires clocks" `Quick test_free_retires;
      ] );
  ]
