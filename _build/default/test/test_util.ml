(* Vec: model-based testing against OCaml lists. *)

module Vec = Dgrace_util.Vec

let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let test_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do Vec.push v (i * 2) done;
  check_int "length" 100 (Vec.length v);
  check_int "get 0" 0 (Vec.get v 0);
  check_int "get 99" 198 (Vec.get v 99);
  Vec.set v 10 (-1);
  check_int "set" (-1) (Vec.get v 10);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 100))

let test_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "removed" 2 (Vec.swap_remove v 1);
  check_list "last moved in" [ 1; 4; 3 ] (Vec.to_list v)

let test_remove_ordered () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "removed" 2 (Vec.remove_ordered v 1);
  check_list "order preserved" [ 1; 3; 4 ] (Vec.to_list v);
  check_int "remove head" 1 (Vec.remove_ordered v 0);
  check_list "order preserved" [ 3; 4 ] (Vec.to_list v)

let test_pop_clear () =
  let v = Vec.of_list [ 5; 6 ] in
  Alcotest.(check (option int)) "pop" (Some 6) (Vec.pop v);
  Vec.clear v;
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_iterators () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_int "fold" 6 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  Alcotest.(check (option int)) "find_index" (Some 2) (Vec.find_index (fun x -> x = 3) v);
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  check_list "iter order" [ 3; 2; 1 ] !acc

(* model-based: a random sequence of operations applied to both a Vec
   and a list must agree *)
let model_ops =
  let open QCheck in
  Test.make ~name:"Vec agrees with list model" ~count:300
    (small_list (pair (int_bound 2) small_nat))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
            Vec.push v x;
            model := !model @ [ x ]
          | 1 ->
            if !model <> [] then begin
              let i = x mod List.length !model in
              let r = Vec.remove_ordered v i in
              let expected = List.nth !model i in
              assert (r = expected);
              model := List.filteri (fun j _ -> j <> i) !model
            end
          | _ ->
            if !model <> [] then begin
              let i = x mod List.length !model in
              Vec.set v i x;
              model := List.mapi (fun j y -> if j = i then x else y) !model
            end)
        ops;
      Vec.to_list v = !model)

let suites : unit Alcotest.test list =
    [
      ( "util.vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_push_get;
          Alcotest.test_case "swap_remove" `Quick test_swap_remove;
          Alcotest.test_case "remove_ordered" `Quick test_remove_ordered;
          Alcotest.test_case "pop/clear" `Quick test_pop_clear;
          Alcotest.test_case "iterators" `Quick test_iterators;
          QCheck_alcotest.to_alcotest model_ops;
        ] );
    ]
