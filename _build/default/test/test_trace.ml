(* Trace record/replay: round-trips, the varint encoding, location
   interning, and corruption handling. *)

open Dgrace_events
open Dgrace_trace

let tmp_file () = Filename.temp_file "dgrace" ".trace"

let roundtrip events =
  let path = tmp_file () in
  let (), n = Trace_writer.to_file path (fun sink -> List.iter sink events) in
  let back = Trace_reader.read_file path in
  Sys.remove path;
  (n, back)

let sample_events =
  [
    Event.Fork { parent = 0; child = 1 };
    Event.Alloc { tid = 0; addr = 0x1000; size = 64 };
    Event.Access { tid = 0; kind = Write; addr = 0x1000; size = 4; loc = "init" };
    Event.Acquire { tid = 1; lock = 3; sync = Event.Lock };
    Event.Access { tid = 1; kind = Read; addr = 0x1001; size = 1; loc = "worker" };
    Event.Release { tid = 1; lock = 3; sync = Event.Lock };
    Event.Acquire { tid = 1; lock = 9; sync = Event.Barrier };
    Event.Release { tid = 0; lock = 10; sync = Event.Flag };
    Event.Acquire { tid = 0; lock = 11; sync = Event.Atomic };
    Event.Access { tid = 0; kind = Write; addr = 0x1000; size = 4; loc = "init" };
    Event.Free { tid = 0; addr = 0x1000; size = 64 };
    Event.Join { parent = 0; child = 1 };
    Event.Thread_exit { tid = 0 };
  ]

let test_roundtrip () =
  let n, back = roundtrip sample_events in
  Alcotest.(check int) "count" (List.length sample_events) n;
  Alcotest.(check (list string)) "events"
    (List.map Event.to_string sample_events)
    (List.map Event.to_string back)

let test_loc_interning_compact () =
  (* the same long label repeated must be written once *)
  let loc = String.make 100 'x' in
  let ev = Event.Access { tid = 0; kind = Read; addr = 1; size = 1; loc } in
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> for _ = 1 to 50 do sink ev done) in
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Alcotest.(check bool) "interned (well under 50 copies)" true (size < 100 * 10)

let test_varint () =
  let buf = Buffer.create 16 in
  List.iter (Trace_format.write_varint buf) [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  let path = tmp_file () in
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc;
  let ic = open_in_bin path in
  let vals = List.init 6 (fun _ -> Trace_format.read_varint ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list int)) "roundtrip" [ 0; 1; 127; 128; 300; 1 lsl 40 ] vals;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Trace_format.write_varint: negative")
    (fun () -> Trace_format.write_varint buf (-1))

let test_bad_magic () =
  let path = tmp_file () in
  let oc = open_out_bin path in
  output_string oc "NOPE!";
  close_out oc;
  Alcotest.check_raises "corrupt" (Trace_format.Corrupt "bad magic") (fun () ->
      ignore (Trace_reader.read_file path));
  Sys.remove path

let test_truncated_event () =
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> List.iter sink sample_events) in
  (* chop the file mid-record *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 1));
  close_out oc;
  Alcotest.check_raises "truncation detected" (Trace_format.Corrupt "truncated event")
    (fun () -> ignore (Trace_reader.read_file path));
  Sys.remove path

let test_empty_trace () =
  let n, back = roundtrip [] in
  Alcotest.(check int) "count" 0 n;
  Alcotest.(check int) "empty" 0 (List.length back)

let test_fold_file () =
  let path = tmp_file () in
  let (), _ = Trace_writer.to_file path (fun sink -> List.iter sink sample_events) in
  let n = Trace_reader.fold_file path (fun acc _ -> acc + 1) 0 in
  Sys.remove path;
  Alcotest.(check int) "fold count" (List.length sample_events) n

(* qcheck: arbitrary event lists survive the round-trip *)
let arb_event =
  let open QCheck.Gen in
  let tid = int_bound 50 in
  let addr = int_bound 0xffff in
  let size = oneofl [ 1; 2; 4; 8; 64 ] in
  let loc = oneofl [ ""; "a"; "some:place"; "other" ] in
  let sync = oneofl Event.[ Lock; Barrier; Flag; Atomic ] in
  QCheck.make
    (oneof
       [
         map (fun (t, a, (s, l)) -> Event.Access { tid = t; kind = Read; addr = a; size = s; loc = l })
           (triple tid addr (pair size loc));
         map (fun (t, a, (s, l)) -> Event.Access { tid = t; kind = Write; addr = a; size = s; loc = l })
           (triple tid addr (pair size loc));
         map (fun (t, l, s) -> Event.Acquire { tid = t; lock = l; sync = s }) (triple tid (int_bound 100) sync);
         map (fun (t, l, s) -> Event.Release { tid = t; lock = l; sync = s }) (triple tid (int_bound 100) sync);
         map (fun (p, c) -> Event.Fork { parent = p; child = c }) (pair tid tid);
         map (fun (p, c) -> Event.Join { parent = p; child = c }) (pair tid tid);
         map (fun (t, a, s) -> Event.Alloc { tid = t; addr = a; size = s }) (triple tid addr (int_bound 1024));
         map (fun (t, a, s) -> Event.Free { tid = t; addr = a; size = s }) (triple tid addr (int_bound 1024));
         map (fun t -> Event.Thread_exit { tid = t }) tid;
       ])

let qcheck_roundtrip =
  QCheck.Test.make ~name:"random event lists round-trip" ~count:100
    (QCheck.small_list arb_event) (fun events ->
      let _, back = roundtrip events in
      List.map Event.to_string back = List.map Event.to_string events)

let suites : unit Alcotest.test list =
    [
      ( "trace.format",
        [
          Alcotest.test_case "varint" `Quick test_varint;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncated event" `Quick test_truncated_event;
        ] );
      ( "trace.roundtrip",
        [
          Alcotest.test_case "all event kinds" `Quick test_roundtrip;
          Alcotest.test_case "empty" `Quick test_empty_trace;
          Alcotest.test_case "fold_file" `Quick test_fold_file;
          Alcotest.test_case "loc interning" `Quick test_loc_interning_compact;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
    ]
