(* The eleven benchmark workloads: seeded race counts under every
   detector, determinism, and the paper's per-workload signatures. *)

open Dgrace_core
open Dgrace_workloads
open Dgrace_events

let small w = Workload.with_params ~scale:1 w

let run ?(suppression = Suppression.default_runtime) spec (w : Workload.t) =
  Engine.run ~suppression ~spec (w.program (small w))

let find name = Option.get (Registry.find name)

let test_registry () =
  Alcotest.(check int) "eleven workloads" 11 (List.length Registry.all);
  Alcotest.(check (list string)) "table 1 order"
    [ "facesim"; "ferret"; "fluidanimate"; "raytrace"; "x264"; "canneal";
      "dedup"; "streamcluster"; "ffmpeg"; "pbzip2"; "hmmsearch" ]
    Registry.names;
  Alcotest.(check bool) "find" true (Registry.find "x264" <> None);
  Alcotest.(check bool) "find missing" true (Registry.find "nope" = None)

let test_with_params () =
  let w = find "ferret" in
  let p = Workload.with_params ~threads:8 w in
  Alcotest.(check int) "override" 8 p.threads;
  Alcotest.(check int) "default kept" w.defaults.scale p.scale

(* every workload finds exactly its seeded races under byte FastTrack *)
let test_expected_races_byte () =
  List.iter
    (fun (w : Workload.t) ->
      let s = run Spec.byte w in
      Alcotest.(check int) (w.name ^ " byte races") w.expected_races s.race_count)
    Registry.all

(* the dynamic detector agrees except for the documented streamcluster
   false alarms *)
let test_dynamic_agrees_with_byte () =
  List.iter
    (fun (w : Workload.t) ->
      let s = run Spec.dynamic w in
      if w.name = "streamcluster" then
        Alcotest.(check bool) "streamcluster: a few false alarms" true
          (s.race_count >= 0 && s.race_count <= 8)
      else
        Alcotest.(check int) (w.name ^ " dynamic races") w.expected_races
          s.race_count)
    Registry.all

(* word-granularity signatures from the paper's §V.A *)
let test_word_signatures () =
  let x264 = run Spec.word (find "x264") in
  Alcotest.(check int) "x264: packed bytes masked to words" 996 x264.race_count;
  let ffmpeg = run Spec.word (find "ffmpeg") in
  Alcotest.(check int) "ffmpeg: word-granularity false alarm" 2 ffmpeg.race_count

(* raytrace carries a suppressed runtime race: DRD (no suppressions)
   reports it, our detectors hide it *)
let test_raytrace_suppression () =
  let dyn = run Spec.dynamic (find "raytrace") in
  Alcotest.(check int) "dynamic suppresses pthread race" 2 dyn.race_count;
  Alcotest.(check int) "suppressed count" 1 dyn.suppressed;
  let drd = run ~suppression:Suppression.empty Spec.Drd (find "raytrace") in
  Alcotest.(check int) "drd reports it" 3 drd.race_count

(* eraser false-alarms heavily on barrier-phased programs and misses
   nothing it is designed for: just check the qualitative signature *)
let test_eraser_signature () =
  let s = run ~suppression:Suppression.empty Spec.Eraser (find "facesim") in
  Alcotest.(check bool) "flood of false alarms" true (s.race_count > 100);
  let s = run ~suppression:Suppression.empty Spec.Eraser (find "dedup") in
  Alcotest.(check int) "pipeline under locks is clean" 0 s.race_count

(* per-workload memory/statistics signatures *)
let test_dynamic_memory_signatures () =
  (* pbzip2: highest sharing *)
  let s = run Spec.dynamic (find "pbzip2") in
  Alcotest.(check bool) "pbzip2 avg sharing high" true (s.mem.avg_sharing > 16.);
  (* canneal: no sharing benefit *)
  let c = run Spec.dynamic (find "canneal") in
  Alcotest.(check bool) "canneal avg sharing low" true (c.mem.avg_sharing < 8.);
  (* dynamic uses far fewer clocks than byte on facesim *)
  let fb = run Spec.byte (find "facesim") in
  let fd = run Spec.dynamic (find "facesim") in
  Alcotest.(check bool) "facesim clocks collapse" true
    (fd.mem.peak_vcs * 10 < fb.mem.peak_vcs)

let test_same_epoch_signatures () =
  let open Dgrace_detectors in
  (* streamcluster: dynamic lifts the same-epoch ratio dramatically *)
  let sb = run Spec.byte (find "streamcluster") in
  let sd = run Spec.dynamic (find "streamcluster") in
  Alcotest.(check bool) "dynamic same-epoch ratio higher" true
    (Run_stats.same_epoch_ratio sd.stats
     > Run_stats.same_epoch_ratio sb.stats +. 0.15)

(* dedup: the allocation-churn signature *)
let test_dedup_churn () =
  let s = run Spec.dynamic (find "dedup") in
  let sim = Option.get s.sim in
  Alcotest.(check bool) "large cumulative allocation" true
    (sim.total_allocated > 50_000);
  Alcotest.(check bool) "clocks are retired (few live at end)" true
    (s.mem.total_vcs > 4 * s.mem.peak_vcs)

(* the §VI related-work detectors show their designed blind spots on
   the suite *)
let test_related_signatures () =
  (* RaceTrack-style refinement loses ferret's rare counter races but
     keeps the recurring ones elsewhere *)
  let rt = run (Spec.Racetrack { region = 64 }) (find "ferret") in
  Alcotest.(check int) "racetrack misses ferret" 0 rt.race_count;
  let rt = run (Spec.Racetrack { region = 64 }) (find "facesim") in
  Alcotest.(check int) "racetrack confirms recurring facesim races" 3 rt.race_count;
  (* LiteRace samples away most of x264's hot races *)
  let lr = run Spec.Literace (find "x264") in
  Alcotest.(check bool) "literace finds some x264 races" true (lr.race_count > 0);
  Alcotest.(check bool) "literace misses most x264 races" true (lr.race_count < 500);
  (* MultiRace agrees with byte on the real races of hmmsearch/pbzip2 *)
  List.iter
    (fun n ->
      let m = run Spec.Multirace (find n) in
      Alcotest.(check int) (n ^ " multirace") (find n).expected_races m.race_count)
    [ "hmmsearch"; "pbzip2"; "fluidanimate" ]

(* workloads are deterministic: two runs, identical summaries *)
let test_determinism () =
  List.iter
    (fun (w : Workload.t) ->
      let s1 = run Spec.dynamic w and s2 = run Spec.dynamic w in
      Alcotest.(check int) (w.name ^ " races stable") s1.race_count s2.race_count;
      Alcotest.(check int) (w.name ^ " accesses stable") s1.stats.accesses
        s2.stats.accesses;
      Alcotest.(check int) (w.name ^ " peak bytes stable") s1.mem.peak_bytes
        s2.mem.peak_bytes)
    Registry.all

(* scale parameter scales the stream *)
let test_scale () =
  let w = find "hmmsearch" in
  let s1 = Engine.run ~spec:Spec.No_detection (w.program (Workload.with_params ~scale:1 w)) in
  let s2 = Engine.run ~spec:Spec.No_detection (w.program (Workload.with_params ~scale:2 w)) in
  Alcotest.(check bool) "roughly doubles" true
    (s2.stats.accesses = 0 (* null detector counts nothing *)
     &&
     let a1 = (Option.get s1.sim).accesses and a2 = (Option.get s2.sim).accesses in
     a2 > (3 * a1) / 2)

(* every workload runs to completion under every detector *)
let test_all_run_everywhere () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun spec -> ignore (run spec w : Engine.summary))
        [ Spec.No_detection; Spec.word; Spec.Djit { granularity = 4 };
          Spec.Inspector; Spec.Eraser; Spec.Multirace;
          Spec.Racetrack { region = 64 }; Spec.Literace; Spec.Dynamic_ext;
          Spec.Dynamic { init_state = true; init_sharing = false };
          Spec.Dynamic { init_state = false; init_sharing = false } ])
    Registry.all

let suites : unit Alcotest.test list =
  [
    ( "workloads.registry",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "with_params" `Quick test_with_params;
      ] );
    ( "workloads.races",
      [
        Alcotest.test_case "byte finds seeded races" `Slow test_expected_races_byte;
        Alcotest.test_case "dynamic agrees with byte" `Slow test_dynamic_agrees_with_byte;
        Alcotest.test_case "word signatures" `Slow test_word_signatures;
        Alcotest.test_case "raytrace suppression" `Slow test_raytrace_suppression;
        Alcotest.test_case "eraser signature" `Slow test_eraser_signature;
      ] );
    ( "workloads.signatures",
      [
        Alcotest.test_case "dynamic memory" `Slow test_dynamic_memory_signatures;
        Alcotest.test_case "same-epoch ratios" `Slow test_same_epoch_signatures;
        Alcotest.test_case "dedup churn" `Slow test_dedup_churn;
        Alcotest.test_case "related-work signatures" `Slow test_related_signatures;
      ] );
    ( "workloads.robustness",
      [
        Alcotest.test_case "determinism" `Slow test_determinism;
        Alcotest.test_case "scale" `Quick test_scale;
        Alcotest.test_case "all detectors run" `Slow test_all_run_everywhere;
      ] );
  ]
