(* Events, race reports, the first-race-per-location collector, and
   suppression rules. *)

open Dgrace_events

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ep ?(tid = 0) ?(kind = Event.Write) ?(clock = 1) ?(loc = "") () : Report.endpoint =
  { tid; kind; clock; loc }

let report ?(addr = 0x1000) ?(size = 4) ?cur ?prev () =
  Report.make ~addr ~size
    ~current:(Option.value cur ~default:(ep ~tid:1 ()))
    ~previous:(Option.value prev ~default:(ep ~tid:0 ()))
    ()

let test_event_pp () =
  check_str "access" "W t2 0x1a40+4 (worker:update)"
    (Event.to_string
       (Event.Access { tid = 2; kind = Event.Write; addr = 0x1a40; size = 4; loc = "worker:update" }));
  check_str "acquire" "acq t1 l3"
    (Event.to_string (Event.Acquire { tid = 1; lock = 3; sync = Event.Lock }));
  check_str "barrier release" "rel t1 b3"
    (Event.to_string (Event.Release { tid = 1; lock = 3; sync = Event.Barrier }));
  check_str "fork" "fork t0 -> t1" (Event.to_string (Event.Fork { parent = 0; child = 1 }))

let test_event_tid () =
  check_int "access tid" 4 (Event.tid (Event.Access { tid = 4; kind = Read; addr = 0; size = 1; loc = "" }));
  check_int "fork tid is parent" 2 (Event.tid (Event.Fork { parent = 2; child = 3 }));
  check_bool "is_access" true (Event.is_access (Event.Access { tid = 0; kind = Read; addr = 0; size = 1; loc = "" }));
  check_bool "not is_access" false (Event.is_access (Event.Thread_exit { tid = 0 }))

let test_report_basics () =
  let r = report ~cur:((ep ~tid:1 ~kind:Event.Write ())) ~prev:((ep ~tid:0 ~kind:Event.Write ())) () in
  check_bool "ww" true (Report.is_write_write r);
  let r2 = report ~cur:((ep ~kind:Event.Read ())) () in
  check_bool "not ww" false (Report.is_write_write r2);
  check_int "default granule lo" 0x1000 r.granule_lo;
  check_int "default granule hi" 0x1004 r.granule_hi

let test_collector_dedup () =
  let c = Report.Collector.create () in
  check_bool "first add" true (Report.Collector.add c (report ()));
  check_bool "same addr rejected" false (Report.Collector.add c (report ()));
  check_bool "different addr" true (Report.Collector.add c (report ~addr:0x2000 ()));
  check_int "count" 2 (Report.Collector.count c);
  Alcotest.(check (list int)) "racy addrs" [ 0x1000; 0x2000 ] (Report.Collector.racy_addrs c)

let test_collector_suppression () =
  let supp = Suppression.default_runtime in
  let c = Report.Collector.create ~suppression:supp () in
  (* both endpoints in the runtime: suppressed *)
  let both_runtime =
    report ~cur:((ep ~loc:"pthread:mutex" ())) ~prev:((ep ~loc:"libc:malloc" ())) ()
  in
  check_bool "suppressed" false (Report.Collector.add c both_runtime);
  check_int "suppressed count" 1 (Report.Collector.suppressed c);
  (* mixed runtime/application: reported *)
  let mixed =
    report ~addr:0x2000 ~cur:((ep ~loc:"app:update" ())) ~prev:((ep ~loc:"pthread:mutex" ())) ()
  in
  check_bool "mixed reported" true (Report.Collector.add c mixed);
  (* suppressed races still count as seen: no duplicate report later *)
  check_bool "suppressed addr is seen" false (Report.Collector.add c (report ()))

let test_suppression_rules () =
  let s = Suppression.of_rules [ Suppression.Addr_range (0x100, 0x200) ] in
  check_bool "addr in range" true (Suppression.matches s ~addr:0x150 ~locs:[ "x" ]);
  check_bool "addr out of range" false (Suppression.matches s ~addr:0x250 ~locs:[ "x" ]);
  let s = Suppression.add Suppression.empty (Suppression.Loc_prefix "rt:") in
  check_bool "all locs match" true (Suppression.matches s ~addr:0 ~locs:[ "rt:a"; "rt:b" ]);
  check_bool "one loc differs" false (Suppression.matches s ~addr:0 ~locs:[ "rt:a"; "app" ]);
  check_bool "empty loc never matches" false (Suppression.matches s ~addr:0 ~locs:[ "rt:a"; "" ]);
  check_int "rules listed" 1 (List.length (Suppression.rules s));
  check_bool "empty suppresses nothing" false
    (Suppression.matches Suppression.empty ~addr:0 ~locs:[ "anything" ])

let test_report_pp () =
  let r =
    report
      ~cur:((ep ~tid:1 ~kind:Event.Write ~clock:3 ~loc:"b" ()))
      ~prev:((ep ~tid:0 ~kind:Event.Read ~clock:2 ~loc:"a" ()))
      ()
  in
  check_str "pp"
    "race on 0x1000 (size 4, granule 0x1000-0x1004): W by t1@3 at b conflicts with R by t0@2 at a"
    (Report.to_string r)

let suites : unit Alcotest.test list =
    [
      ( "events.event",
        [
          Alcotest.test_case "pretty printing" `Quick test_event_pp;
          Alcotest.test_case "tid extraction" `Quick test_event_tid;
        ] );
      ( "events.report",
        [
          Alcotest.test_case "basics" `Quick test_report_basics;
          Alcotest.test_case "pretty printing" `Quick test_report_pp;
        ] );
      ( "events.collector",
        [
          Alcotest.test_case "first race per location" `Quick test_collector_dedup;
          Alcotest.test_case "suppression" `Quick test_collector_suppression;
        ] );
      ( "events.suppression",
        [ Alcotest.test_case "rule semantics" `Quick test_suppression_rules ] );
    ]
