The racedet CLI end to end.  Everything here is deterministic: fixed
workload seeds and a fixed scheduler seed.

List what is available:

  $ racedet list | head -4
  workloads:
    facesim        barrier-phased solver over large word arrays (threads=4, 3 seeded races)
    ferret         four-stage pipeline over malloc'd items (threads=4, 2 seeded races)
    fluidanimate   region-locked grid updates with barrier iterations (threads=4, 1 seeded races)

  $ racedet list | grep -E 'dynamic$|multirace|literace' | sed 's/ *$//'
    dynamic
    multirace
    literace

Run a clean workload (exit code 0, no races):

  $ racedet run dedup --detector dynamic | grep races:
  races: 0 (0 suppressed)

Run a racy workload: exit code 2 and the report names the seeded bug.

  $ racedet run hmmsearch --detector dynamic -v | grep -o 'hmmsearch:hits' | sort -u
  hmmsearch:hits

The word detector masks x264's packed byte fields (996 < 1000):

  $ racedet run x264 --detector word 2>/dev/null | grep -o 'races: [0-9]*'
  races: 996

  $ racedet run x264 --detector byte 2>/dev/null | grep -o 'races: [0-9]*'
  races: 1000

Unknown arguments fail cleanly:

  $ racedet run nosuchworkload 2>&1 | head -1
  racedet: WORKLOAD argument: unknown workload "nosuchworkload" (try: facesim,

  $ racedet run hmmsearch --detector nosuchdetector 2>&1 | head -1
  racedet: option '--detector': unknown detector "nosuchdetector"

Record, inspect, and replay a trace; replay finds the same race:

  $ racedet record ffmpeg trace.bin | sed 's/ [0-9]* events/ N events/'
  recorded N events (16452 accesses, 3 threads) to trace.bin

  $ racedet trace-info trace.bin | head -4
  events:    17259
  accesses:  16452 (6526 reads, 9926 writes)
  sync ops:  602 on 102 sync objects
  threads:   3 (2 forks)

  $ racedet trace-dump trace.bin -n 2
  fork t0 -> t1
  fork t0 -> t2
  ... (17257 more events)

  $ racedet replay trace.bin --detector dynamic | grep 'races:'
  races: 1 (0 suppressed)

  $ rm trace.bin

Schedule exploration reports race stability across interleavings:

  $ racedet explore hmmsearch -n 3 | tail -2
  
  1 distinct racy location(s) across all seeds; 1 found under every seed
