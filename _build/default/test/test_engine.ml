(* The public API: detector specs, the engine, and trace integration. *)

open Dgrace_core
open Dgrace_sim
open Dgrace_events

let test_spec_names () =
  Alcotest.(check string) "byte" "ft-byte" (Spec.name Spec.byte);
  Alcotest.(check string) "word" "ft-word" (Spec.name Spec.word);
  Alcotest.(check string) "dynamic" "ft-dynamic" (Spec.name Spec.dynamic);
  Alcotest.(check string) "ablation"
    "ft-dynamic-no-init-state"
    (Spec.name (Spec.Dynamic { init_state = false; init_sharing = false }));
  Alcotest.(check string) "drd" "drd" (Spec.name Spec.Drd)

let test_spec_parse () =
  let ok s expected =
    match Spec.of_string s with
    | Ok spec -> Alcotest.(check string) s expected (Spec.name spec)
    | Error e -> Alcotest.fail e
  in
  ok "byte" "ft-byte";
  ok "word" "ft-word";
  ok "dynamic" "ft-dynamic";
  ok "dynamic-no-init-sharing" "ft-dynamic-no-init-sharing";
  ok "dynamic-no-init-state" "ft-dynamic-no-init-state";
  ok "dynamic-ext" "ft-dynamic-ext";
  ok "djit" "djit";
  ok "djit:4" "djit-4B";
  ok "ft:8" "ft-8B";
  ok "drd" "drd";
  ok "inspector" "inspector";
  ok "eraser" "eraser";
  ok "none" "none";
  (match Spec.of_string "bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus accepted");
  Alcotest.(check bool) "all_names non-empty" true (Spec.all_names <> [])

let racy_prog () =
  let a = Sim.static_alloc 8 in
  let t = Sim.spawn (fun () -> Sim.write ~loc:"child" a 4) in
  Sim.write ~loc:"main" a 4;
  Sim.join t

let test_engine_run () =
  let s = Engine.run ~spec:Spec.dynamic racy_prog in
  Alcotest.(check string) "detector name" "ft-dynamic" s.detector;
  Alcotest.(check int) "race found" 1 s.race_count;
  Alcotest.(check int) "sim threads" 2 (Option.get s.sim).threads;
  Alcotest.(check bool) "elapsed sane" true (s.elapsed >= 0.);
  Alcotest.(check bool) "accesses counted" true (s.stats.accesses = 2);
  match s.races with
  | [ r ] ->
    Alcotest.(check bool) "locs captured" true
      (List.sort compare [ r.current.loc; r.previous.loc ] = [ "child"; "main" ])
  | _ -> Alcotest.fail "expected one race"

let test_engine_null () =
  let s = Engine.run ~spec:Spec.No_detection racy_prog in
  Alcotest.(check int) "no detection" 0 s.race_count;
  Alcotest.(check int) "no memory" 0 s.mem.peak_bytes

let test_engine_policy_passthrough () =
  let s1 =
    Engine.run ~policy:(Scheduler.Random_each 1) ~spec:Spec.byte racy_prog
  in
  Alcotest.(check int) "still finds the race" 1 s1.race_count

let test_replay_matches_run () =
  let path = Filename.temp_file "dgrace" ".trace" in
  let (), n =
    Dgrace_trace.Trace_writer.to_file path (fun sink ->
        ignore (Sim.run ~sink racy_prog))
  in
  Alcotest.(check bool) "events recorded" true (n > 0);
  let events = Dgrace_trace.Trace_reader.read_file path in
  Sys.remove path;
  let live = Engine.run ~spec:Spec.dynamic racy_prog in
  let replayed = Engine.replay ~spec:Spec.dynamic (List.to_seq events) in
  Alcotest.(check int) "same races" live.race_count replayed.race_count;
  Alcotest.(check bool) "replay has no sim result" true (replayed.sim = None);
  Alcotest.(check int) "same accesses" live.stats.accesses replayed.stats.accesses

let test_suppression_passthrough () =
  let prog () =
    let a = Sim.static_alloc 8 in
    let t = Sim.spawn (fun () -> Sim.write ~loc:"libc:internal" a 4) in
    Sim.write ~loc:"libc:internal" a 4;
    Sim.join t
  in
  let s = Engine.run ~suppression:Suppression.default_runtime ~spec:Spec.byte prog in
  Alcotest.(check int) "suppressed" 0 s.race_count;
  Alcotest.(check int) "counted as suppressed" 1 s.suppressed

let test_pp_summary () =
  let s = Engine.run ~spec:Spec.dynamic racy_prog in
  let str = Format.asprintf "%a" Engine.pp_summary s in
  Alcotest.(check bool) "mentions detector" true
    (Astring_contains.contains str "ft-dynamic");
  Alcotest.(check bool) "mentions races" true (Astring_contains.contains str "races: 1")

let suites : unit Alcotest.test list =
  [
    ( "engine.spec",
      [
        Alcotest.test_case "names" `Quick test_spec_names;
        Alcotest.test_case "parsing" `Quick test_spec_parse;
      ] );
    ( "engine.run",
      [
        Alcotest.test_case "run summary" `Quick test_engine_run;
        Alcotest.test_case "null detector" `Quick test_engine_null;
        Alcotest.test_case "policy passthrough" `Quick test_engine_policy_passthrough;
        Alcotest.test_case "replay matches run" `Quick test_replay_matches_run;
        Alcotest.test_case "suppression passthrough" `Quick test_suppression_passthrough;
        Alcotest.test_case "summary printing" `Quick test_pp_summary;
      ] );
  ]
