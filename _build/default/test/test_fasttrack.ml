(* FastTrack semantics, checked by feeding hand-built event streams:
   the read/write rules of §II.C, the epoch optimisation, the adaptive
   read representation, and the same-epoch fast path. *)

open Dgrace_detectors
open Tutil

let byte () = Dgrace_core.Spec.to_detector Dgrace_core.Spec.byte
let word () = Fasttrack.create ~granularity:4 ()

let check_races name det events expected =
  let d = feed_events (det ()) events in
  Alcotest.(check int) name expected (race_count d)

(* write-write, unordered -> race *)
let test_ww_race () =
  let evs = [ fork 0 1; wr 0 0x100; wr 1 0x100 ] in
  check_races "byte" byte evs 1;
  check_races "word" word evs 1

(* write then read, unordered -> race *)
let test_wr_race () =
  let evs = [ fork 0 1; wr 0 0x100; rd 1 0x100 ] in
  check_races "byte" byte evs 1

(* read then write, unordered -> race *)
let test_rw_race () =
  let evs = [ fork 0 1; rd 1 0x100; wr 0 0x100 ] in
  check_races "byte" byte evs 1

(* read/read is never a race *)
let test_rr_no_race () =
  let evs = [ fork 0 1; rd 0 0x100; rd 1 0x100; rd 0 0x100 ] in
  check_races "byte" byte evs 0

(* lock-ordered accesses are fine *)
let test_lock_ordered () =
  let evs =
    [ fork 0 1; acq 0; wr 0 0x100; rel 0; acq 1; wr 1 0x100; rel 1 ]
  in
  check_races "byte" byte evs 0

(* fork edge orders parent-before-child *)
let test_fork_edge () =
  let evs = [ wr 0 0x100; fork 0 1; rd 1 0x100; wr 1 0x100 ] in
  check_races "byte" byte evs 0

(* join edge orders child-before-parent *)
let test_join_edge () =
  let evs = [ fork 0 1; wr 1 0x100; Dgrace_events.Event.Thread_exit { tid = 1 }; join 0 1; wr 0 0x100 ] in
  check_races "byte" byte evs 0

(* read-shared: two ordered readers then an unordered writer races with
   BOTH recorded reads (the vector-clock read representation) *)
let test_read_shared_write () =
  let evs =
    [
      fork 0 1;
      fork 0 2;
      (* unordered reads by t1 and t2 inflate the read state to a full
         vector clock (read-shared) — and are not a race *)
      rd 1 0x100;
      rd 2 0x100;
      (* t0's unordered write races with the recorded reads *)
      wr 0 0x100;
    ]
  in
  check_races "byte" byte evs 1

(* a write ordered after all reads resets the read state: the next
   read in a new epoch is checked against the write only *)
let test_write_resets_reads () =
  let evs =
    [
      fork 0 1;
      fork 0 2;
      rd 1 0x100;
      rd 2 0x100;  (* read-shared vector clock *)
      Dgrace_events.Event.Thread_exit { tid = 1 };
      Dgrace_events.Event.Thread_exit { tid = 2 };
      join 0 1;
      join 0 2;
      wr 0 0x100;  (* ordered after both reads: no race, resets reads *)
      fork 0 3;
      rd 3 0x100;  (* ordered after the write: no race *)
    ]
  in
  check_races "byte" byte evs 0

(* same-epoch accesses are filtered: the stats must show it *)
let test_same_epoch_stat () =
  let d =
    feed_events (byte ())
      [ wr 0 0x100; wr 0 0x100; rd 0 0x100; rd 0 0x100; rd 0 0x104 ]
  in
  Alcotest.(check int) "accesses" 5 d.Detector.stats.accesses;
  Alcotest.(check int) "same-epoch filtered" 2 d.Detector.stats.same_epoch

(* after a lock release the epoch changes and the bitmap resets *)
let test_epoch_boundary_resets_bitmap () =
  let d = feed_events (byte ()) [ wr 0 0x100; acq 0; rel 0; wr 0 0x100 ] in
  Alcotest.(check int) "second write re-analysed" 0 d.Detector.stats.same_epoch

(* first race per location: racing repeatedly on one address yields one
   report *)
let test_first_race_per_location () =
  let evs = [ fork 0 1; wr 0 0x100; wr 1 0x100; wr 0 0x100; wr 1 0x100 ] in
  check_races "byte" byte evs 1

(* word granularity conflates sub-word fields; byte does not *)
let test_word_conflation () =
  let evs =
    [
      fork 0 1;
      (* two adjacent bytes, each consistently lock-protected by its
         own thread's lock *)
      acq 0; wr ~size:1 0 0x100; rel 0;
      Dgrace_events.Event.Acquire { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
      wr ~size:1 1 0x101;
      Dgrace_events.Event.Release { tid = 1; lock = 2; sync = Dgrace_events.Event.Lock };
    ]
  in
  check_races "byte precise" byte evs 0;
  check_races "word false alarm" word evs 1

(* free() retires shadow state: a recycled address does not conflict
   with the old allocation *)
let test_free_resets () =
  let evs =
    [
      fork 0 1;
      Dgrace_events.Event.Alloc { tid = 0; addr = 0x200; size = 8 };
      wr 0 0x200;
      free 0 0x200 8;
      (* same address reallocated; t1's access ordered only by the
         malloc (modelled here as nothing): would be a false race
         without the free handling, but the write history is gone.
         The new owner writes it alone: no race. *)
      Dgrace_events.Event.Alloc { tid = 1; addr = 0x200; size = 8 };
      wr 1 0x200;
      wr 1 0x204;
    ]
  in
  check_races "byte" byte evs 0;
  check_races "word" word evs 0

(* memory accounting: cells are created and retired *)
let test_accounting_lifecycle () =
  let open Dgrace_shadow in
  let d =
    feed_events (word ())
      [
        Dgrace_events.Event.Alloc { tid = 0; addr = 0x300; size = 16 };
        wr 0 0x300; wr 0 0x304; wr 0 0x308; wr 0 0x30c;
        free 0 0x300 16;
      ]
  in
  Alcotest.(check int) "peak vcs" 4 (Accounting.peak_vcs d.Detector.account);
  Alcotest.(check int) "all retired" 0 (Accounting.live_vcs d.Detector.account)

let suites : unit Alcotest.test list =
  [
    ( "fasttrack.rules",
      [
        Alcotest.test_case "write-write race" `Quick test_ww_race;
        Alcotest.test_case "write-read race" `Quick test_wr_race;
        Alcotest.test_case "read-write race" `Quick test_rw_race;
        Alcotest.test_case "read-read is no race" `Quick test_rr_no_race;
        Alcotest.test_case "lock ordering" `Quick test_lock_ordered;
        Alcotest.test_case "fork edge" `Quick test_fork_edge;
        Alcotest.test_case "join edge" `Quick test_join_edge;
        Alcotest.test_case "read-shared vector clock" `Quick test_read_shared_write;
        Alcotest.test_case "write resets read state" `Quick test_write_resets_reads;
        Alcotest.test_case "first race per location" `Quick test_first_race_per_location;
      ] );
    ( "fasttrack.mechanics",
      [
        Alcotest.test_case "same-epoch stat" `Quick test_same_epoch_stat;
        Alcotest.test_case "epoch boundary resets bitmap" `Quick test_epoch_boundary_resets_bitmap;
        Alcotest.test_case "word conflation" `Quick test_word_conflation;
        Alcotest.test_case "free retires shadow" `Quick test_free_resets;
        Alcotest.test_case "accounting lifecycle" `Quick test_accounting_lifecycle;
      ] );
  ]
