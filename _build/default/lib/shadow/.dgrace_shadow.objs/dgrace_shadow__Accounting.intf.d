lib/shadow/accounting.mli:
