lib/shadow/shadow_table.ml: Accounting Array Hashtbl
