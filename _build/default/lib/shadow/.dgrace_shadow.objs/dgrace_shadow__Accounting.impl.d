lib/shadow/accounting.ml:
