lib/shadow/epoch_bitmap.mli: Accounting
