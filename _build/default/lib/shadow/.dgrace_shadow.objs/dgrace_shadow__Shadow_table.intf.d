lib/shadow/shadow_table.mli: Accounting
