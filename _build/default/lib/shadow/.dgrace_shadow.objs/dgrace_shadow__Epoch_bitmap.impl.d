lib/shadow/epoch_bitmap.ml: Accounting Bytes Char Hashtbl
