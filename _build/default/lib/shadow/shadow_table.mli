(** The shadow-memory indexing structure of the paper's Figure 4.

    A chained hash table maps the upper bits of an address to an entry
    covering a [block]-byte aligned region (default m = 128 bytes).
    Each entry holds an {e indexing array} of pointers to shadow
    values: it starts with [m/4] slots (word granularity, the common
    access pattern) and, in adaptive mode, is expanded to [m] slots
    (byte granularity) the first time a non-half-word-aligned access
    touches the region.  The same structure serves the byte- and
    word-granularity detectors with a fixed slot size.

    Values are arbitrary; the dynamic-granularity detector stores
    shared cell records, so several slots (possibly in different
    entries) may point to one value.  All index-structure size changes
    are reported to an {!Accounting} sink. *)

type mode =
  | Fixed_bytes of int
      (** every entry uses slots of exactly this many bytes (1 for the
          byte detector, 4 for the word detector) *)
  | Adaptive
      (** entries start at word slots and expand to byte slots when an
          odd address is accessed (paper §IV.B) *)

type 'a t

val create : ?block:int -> mode:mode -> ?account:Accounting.t -> unit -> 'a t
(** [block] must be a power of two and a multiple of the slot size
    (default 128). *)

val mode : 'a t -> mode
val block : 'a t -> int

val ensure_granularity : 'a t -> addr:int -> size:int -> unit
(** In adaptive mode, switch the entries covering the access to byte
    slots when the access is {e sub-word} — smaller than a word or not
    word-aligned — creating empty byte-granularity entries on demand.
    Call at the start of every access so that the slot bounds the
    detector sees are stable for the whole access.  No-op for accesses
    that cover whole aligned words, and in fixed mode. *)

val slot_bounds : 'a t -> int -> int * int
(** [slot_bounds t addr] is the address range [\[lo, hi)] of the slot
    that contains [addr], under the entry's current granularity (or the
    granularity a fresh entry would get). *)

val get : 'a t -> int -> 'a option
(** Value of the slot containing the address, if any. *)

val set : 'a t -> int -> 'a -> unit
(** Point the slot containing the address at the value, creating the
    entry on demand. *)

val set_range : 'a t -> lo:int -> hi:int -> 'a -> unit
(** Point every slot intersecting [\[lo, hi)] at the value — how a
    vector clock is shared across a neighbourhood. *)

val remove_range : 'a t -> lo:int -> hi:int -> unit
(** Clear every slot intersecting the range (used on [free]); entries
    left empty are dropped and their index bytes released. *)

val prev_neighbor : 'a t -> int -> (int * int * 'a) option
(** [prev_neighbor t addr] is the nearest non-empty slot strictly
    before the slot of [addr] — [(lo, hi, v)] — looking through the
    entry of [addr] and the immediately preceding block (the "nearest
    predecessor that has a valid vector clock" of §III.A, bounded to
    the indexing neighbourhood). *)

val next_neighbor : 'a t -> int -> (int * int * 'a) option
(** Symmetric successor search. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f lo hi v] to every non-empty slot. *)

val iter_range : (int -> int -> 'a -> unit) -> 'a t -> lo:int -> hi:int -> unit
(** [iter_range f t ~lo ~hi] applies [f slot_lo slot_hi v] to every
    non-empty slot intersecting [\[lo, hi)], in address order. *)

val entry_count : 'a t -> int
val bytes : 'a t -> int
(** Current index-structure footprint in bytes (as reported to the
    accounting sink). *)

val group : 'a t -> int -> hi:int -> int * int * 'a option
(** [group t addr ~hi] is [(glo, ghi, v)]: the maximal run of
    consecutive slots starting at [addr]'s slot that all point to the
    same value [v] (physical equality) or are all empty ([None]),
    clipped to the first slot boundary at or after [hi].  This is the
    access-walk primitive of the dynamic-granularity detector: one
    entry lookup per block instead of one per slot. *)
