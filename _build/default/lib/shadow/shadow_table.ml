type mode = Fixed_bytes of int | Adaptive

type 'a entry = {
  base : int;
  mutable slot_bytes : int;
  mutable slots : 'a option array;
}

type 'a t = {
  block : int;
  tmode : mode;
  table : (int, 'a entry) Hashtbl.t;
  account : Accounting.t option;
  mutable bytes : int;
  (* one-entry lookup cache: accesses are overwhelmingly sequential *)
  mutable cached : 'a entry option;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let initial_slot_bytes = function
  | Fixed_bytes g -> g
  | Adaptive -> 4

let create ?(block = 128) ~mode ?account () =
  if not (is_pow2 block) then invalid_arg "Shadow_table.create: block not a power of two";
  let g = initial_slot_bytes mode in
  if not (is_pow2 g) || g > block then
    invalid_arg "Shadow_table.create: bad slot size";
  { block; tmode = mode; table = Hashtbl.create 256; account; bytes = 0;
    cached = None }

let mode t = t.tmode
let block t = t.block

(* entry record (4 words) + array header (1 word) + one word per slot *)
let entry_bytes nslots = 8 * (5 + nslots)

let account_delta t d =
  t.bytes <- t.bytes + d;
  match t.account with Some a -> Accounting.add_hash a d | None -> ()

let base_of t addr = addr land lnot (t.block - 1)

let find_entry t addr =
  let base = base_of t addr in
  match t.cached with
  | Some e when e.base = base -> t.cached
  | _ ->
    let r = Hashtbl.find_opt t.table base in
    (match r with Some _ -> t.cached <- r | None -> ());
    r

let make_entry ?gran t addr =
  let base = base_of t addr in
  let g =
    match gran with
    | Some g -> g
    | None -> (
      match t.tmode with
      | Fixed_bytes g -> g
      | Adaptive -> if addr land 1 = 1 then 1 else 4)
  in
  let nslots = t.block / g in
  let e = { base; slot_bytes = g; slots = Array.make nslots None } in
  Hashtbl.replace t.table base e;
  t.cached <- Some e;
  account_delta t (entry_bytes nslots);
  e

let expand e t =
  (* word slots -> byte slots: every byte inherits its word's pointer *)
  let old = e.slots in
  let oldg = e.slot_bytes in
  let nslots = t.block in
  let slots = Array.make nslots None in
  Array.iteri
    (fun i v ->
      if v <> None then
        for j = i * oldg to ((i + 1) * oldg) - 1 do
          slots.(j) <- v
        done)
    old;
  account_delta t (entry_bytes nslots - entry_bytes (Array.length old));
  e.slots <- slots;
  e.slot_bytes <- 1

let ensure_granularity t ~addr ~size =
  match t.tmode with
  | Fixed_bytes _ -> ()
  | Adaptive ->
    let sub_word = size < 4 || addr land 3 <> 0 in
    if sub_word then begin
      let a = ref addr in
      let hi = addr + size in
      while !a < hi do
        (match find_entry t !a with
         | Some e when e.slot_bytes > 1 -> expand e t
         | Some _ -> ()
         | None -> ignore (make_entry ~gran:1 t !a : _ entry));
        a := base_of t !a + t.block
      done
    end

let slot_bounds t addr =
  let g =
    match find_entry t addr with
    | Some e -> e.slot_bytes
    | None -> (
      match t.tmode with
      | Fixed_bytes g -> g
      | Adaptive -> if addr land 1 = 1 then 1 else 4)
  in
  let lo = addr land lnot (g - 1) in
  (lo, lo + g)

let slot_index e addr = (addr - e.base) / e.slot_bytes

let get t addr =
  match find_entry t addr with
  | None -> None
  | Some e -> e.slots.(slot_index e addr)

let set t addr v =
  let e = match find_entry t addr with Some e -> e | None -> make_entry t addr in
  (match t.tmode with
   | Adaptive when addr land 1 = 1 && e.slot_bytes > 1 -> expand e t
   | _ -> ());
  e.slots.(slot_index e addr) <- Some v

let drop_if_empty t e =
  if Array.for_all (fun v -> v = None) e.slots then begin
    Hashtbl.remove t.table e.base;
    (match t.cached with
     | Some c when c == e -> t.cached <- None
     | Some _ | None -> ());
    account_delta t (-entry_bytes (Array.length e.slots))
  end

let set_range t ~lo ~hi v =
  if hi > lo then begin
    let addr = ref lo in
    while !addr < hi do
      let e =
        match find_entry t !addr with Some e -> e | None -> make_entry t !addr
      in
      let block_hi = e.base + t.block in
      let upper = min hi block_hi in
      let i0 = slot_index e !addr in
      let i1 = slot_index e (upper - 1) in
      for i = i0 to i1 do
        e.slots.(i) <- Some v
      done;
      addr := block_hi
    done
  end

let remove_range t ~lo ~hi =
  if hi > lo then begin
    let addr = ref lo in
    while !addr < hi do
      (match find_entry t !addr with
       | None -> ()
       | Some e ->
         let block_hi = e.base + t.block in
         let upper = min hi block_hi in
         let i0 = slot_index e !addr in
         let i1 = slot_index e (upper - 1) in
         for i = i0 to i1 do
           e.slots.(i) <- None
         done;
         drop_if_empty t e);
      addr := base_of t !addr + t.block
    done
  end

(* Neighbour searches are bounded: a "neighbouring" location more than
   [scan_limit] slots away is not worth sharing with, and unbounded
   scans over sparse entries would dominate the per-access cost. *)
let scan_limit = 4

(* Rightmost non-empty slot in [e] with index <= [i]; None if all empty. *)
let scan_left e i =
  let stop = max 0 (i - scan_limit + 1) in
  let rec loop i =
    if i < stop then None
    else
      match e.slots.(i) with
      | Some v ->
        let lo = e.base + (i * e.slot_bytes) in
        Some (lo, lo + e.slot_bytes, v)
      | None -> loop (i - 1)
  in
  loop (min i (Array.length e.slots - 1))

let scan_right e i =
  let n = Array.length e.slots in
  let stop = min (n - 1) (i + scan_limit - 1) in
  let rec loop i =
    if i > stop then None
    else
      match e.slots.(i) with
      | Some v ->
        let lo = e.base + (i * e.slot_bytes) in
        Some (lo, lo + e.slot_bytes, v)
      | None -> loop (i + 1)
  in
  loop (max i 0)

let prev_neighbor t addr =
  let here =
    match find_entry t addr with
    | Some e ->
      let i = slot_index e addr in
      scan_left e (i - 1)
    | None -> None
  in
  match here with
  | Some _ as r -> r
  | None -> (
    let prev_base = base_of t addr - t.block in
    match Hashtbl.find_opt t.table prev_base with
    | None -> None
    | Some e -> scan_left e (Array.length e.slots - 1))

let next_neighbor t addr =
  let here =
    match find_entry t addr with
    | Some e ->
      let i = slot_index e addr in
      scan_right e (i + 1)
    | None -> None
  in
  match here with
  | Some _ as r -> r
  | None -> (
    let next_base = base_of t addr + t.block in
    match Hashtbl.find_opt t.table next_base with
    | None -> None
    | Some e -> scan_right e 0)

(* Maximal run of consecutive slots starting at [addr]'s slot that all
   hold the same value (or are all empty), clipped to the first slot
   boundary at or after [hi].  One entry lookup per block touched. *)
let group t addr ~hi =
  let same v w =
    match (v, w) with
    | None, None -> true
    | Some a, Some b -> a == b
    | (None | Some _), _ -> false
  in
  let default_g =
    match t.tmode with Fixed_bytes g -> g | Adaptive -> 4
  in
  let start_entry = find_entry t addr in
  let g0 =
    match start_entry with Some e -> e.slot_bytes | None -> default_g
  in
  let glo = addr land lnot (g0 - 1) in
  let v = match start_entry with None -> None | Some e -> e.slots.(slot_index e addr) in
  let rec walk_entry cur entry =
    (* cur is slot-aligned within [entry]'s block (or entry is None) *)
    match entry with
    | None ->
      if not (same v None) then cur
      else begin
        let block_hi = base_of t cur + t.block in
        if block_hi >= hi then (hi + default_g - 1) land lnot (default_g - 1)
        else walk_entry block_hi (find_entry t block_hi)
      end
    | Some e ->
      let block_hi = e.base + t.block in
      let rec slots cur =
        if cur >= hi then (cur + e.slot_bytes - 1) land lnot (e.slot_bytes - 1)
        else if cur >= block_hi then walk_entry cur (find_entry t cur)
        else if same v e.slots.(slot_index e cur) then slots (cur + e.slot_bytes)
        else cur
      in
      slots cur
  in
  let ghi = walk_entry (glo + g0) start_entry in
  (glo, max ghi (glo + g0), v)

let iter f t =
  Hashtbl.iter
    (fun _ e ->
      Array.iteri
        (fun i v ->
          match v with
          | Some v ->
            let lo = e.base + (i * e.slot_bytes) in
            f lo (lo + e.slot_bytes) v
          | None -> ())
        e.slots)
    t.table

let iter_range f t ~lo ~hi =
  if hi > lo then begin
    let addr = ref lo in
    while !addr < hi do
      (match find_entry t !addr with
       | None -> ()
       | Some e ->
         let block_hi = e.base + t.block in
         let upper = min hi block_hi in
         let i0 = slot_index e !addr in
         let i1 = slot_index e (upper - 1) in
         for i = i0 to i1 do
           match e.slots.(i) with
           | Some v ->
             let slot_lo = e.base + (i * e.slot_bytes) in
             f slot_lo (slot_lo + e.slot_bytes) v
           | None -> ()
         done);
      addr := base_of t !addr + t.block
    done
  end

let entry_count t = Hashtbl.length t.table
let bytes t = t.bytes
