type t = {
  block : int;
  chunks : (int, Bytes.t) Hashtbl.t;  (* block base -> 2 bits per address *)
  account : Accounting.t option;
  mutable bytes : int;
  (* one-chunk cache: accesses cluster heavily *)
  mutable cached_base : int;
  mutable cached_chunk : Bytes.t;
}

let create ?(block = 1024) ?account () =
  if block <= 0 || block land (block - 1) <> 0 then
    invalid_arg "Epoch_bitmap.create: block not a power of two";
  { block; chunks = Hashtbl.create 64; account; bytes = 0;
    cached_base = min_int; cached_chunk = Bytes.empty }

let account_delta t d =
  t.bytes <- t.bytes + d;
  match t.account with Some a -> Accounting.add_bitmap a d | None -> ()

(* 2 bits per address: bit 0 = read plane, bit 1 = write plane *)
let chunk_bytes t = t.block / 4

let chunk t addr =
  let base = addr land lnot (t.block - 1) in
  if base = t.cached_base then t.cached_chunk
  else begin
    let c =
      match Hashtbl.find_opt t.chunks base with
      | Some c -> c
      | None ->
        let c = Bytes.make (chunk_bytes t) '\000' in
        Hashtbl.replace t.chunks base c;
        account_delta t (chunk_bytes t + 16);
        c
    in
    t.cached_base <- base;
    t.cached_chunk <- c;
    c
  end

let plane_bit write = if write then 2 else 1

let orset c i m =
  let b = Char.code (Bytes.get c i) in
  if b lor m <> b then Bytes.set c i (Char.chr (b lor m))

(* Marking can cover whole shared granules, so it works byte-at-a-time
   on the chunk (4 addresses per byte) rather than per address. *)
let mark t ~write ~lo ~hi =
  let bit = plane_bit write in
  let pattern = bit * 0x55 in
  let addr = ref lo in
  while !addr < hi do
    let base = !addr land lnot (t.block - 1) in
    let c = chunk t !addr in
    let upper = min hi (base + t.block) in
    let off0 = !addr - base and off1 = upper - base in
    let head_end = min off1 ((off0 + 3) land lnot 3) in
    for o = off0 to head_end - 1 do
      orset c (o lsr 2) (bit lsl ((o land 3) * 2))
    done;
    let body_end = off1 land lnot 3 in
    let o = ref head_end in
    while !o < body_end do
      orset c (!o lsr 2) pattern;
      o := !o + 4
    done;
    for o = max body_end head_end to off1 - 1 do
      orset c (o lsr 2) (bit lsl ((o land 3) * 2))
    done;
    addr := upper
  done

let test t ~write addr =
  let base = addr land lnot (t.block - 1) in
  let c =
    if base = t.cached_base then Some t.cached_chunk
    else Hashtbl.find_opt t.chunks base
  in
  match c with
  | None -> false
  | Some c ->
    let off = addr land (t.block - 1) in
    let i = off lsr 2 and shift = (off land 3) * 2 in
    let b = Char.code (Bytes.get c i) in
    b land (plane_bit write lsl shift) <> 0

let reset t =
  let n = Hashtbl.length t.chunks in
  Hashtbl.reset t.chunks;
  t.cached_base <- min_int;
  t.cached_chunk <- Bytes.empty;
  account_delta t (-n * (chunk_bytes t + 16))

let bytes t = t.bytes
