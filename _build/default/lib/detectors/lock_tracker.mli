(** Tracks the set of locks each thread currently holds — the input to
    the LockSet discipline (Eraser) and to the hybrid detector's
    common-lock test. *)

module Iset : Set.S with type elt = int

type t

val create : unit -> t

val acquire : t -> tid:int -> lock:int -> unit
val release : t -> tid:int -> lock:int -> unit

val held : t -> int -> Iset.t
(** Locks currently held by the thread (empty if none). *)

val handle : t -> Dgrace_events.Event.t -> unit
(** Feed acquire/release events; ignores everything else. *)
