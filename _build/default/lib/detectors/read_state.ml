open Dgrace_vclock

type t = No_reads | Ep of Epoch.t | Vc of Vector_clock.t

let equal a b =
  match (a, b) with
  | No_reads, No_reads -> true
  | Ep e1, Ep e2 -> Epoch.equal e1 e2
  | Vc v1, Vc v2 -> Vector_clock.equal v1 v2
  | (No_reads | Ep _ | Vc _), _ -> false

let leq r tvc =
  match r with
  | No_reads -> true
  | Ep e -> Vector_clock.epoch_leq e tvc
  | Vc v -> Vector_clock.leq v tvc

let same_epoch r e =
  match r with Ep e' -> Epoch.equal e e' | No_reads | Vc _ -> false

let update r ~tid ~tvc =
  let here = Epoch.make ~tid ~clock:(Vector_clock.get tvc tid) in
  match r with
  | No_reads -> Ep here
  | Ep e ->
    if Vector_clock.epoch_leq e tvc then Ep here
    else begin
      (* read-shared: inflate to a vector clock holding both reads *)
      let v = Vector_clock.of_epoch e in
      Vector_clock.set v tid (Epoch.clock here);
      Vc v
    end
  | Vc v ->
    Vector_clock.set v tid (Epoch.clock here);
    Vc v

let bytes = function
  | No_reads | Ep _ -> 0
  | Vc v -> 8 * Vector_clock.heap_words v

let pp ppf = function
  | No_reads -> Format.pp_print_string ppf "r:-"
  | Ep e -> Format.fprintf ppf "r:%a" Epoch.pp e
  | Vc v -> Format.fprintf ppf "r:%a" Vector_clock.pp v
