lib/detectors/run_stats.mli: Format
