lib/detectors/fasttrack.mli: Detector Dgrace_events Suppression
