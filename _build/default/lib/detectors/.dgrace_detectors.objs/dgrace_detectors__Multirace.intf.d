lib/detectors/multirace.mli: Detector Dgrace_events Suppression
