lib/detectors/djit.mli: Detector Dgrace_events Suppression
