lib/detectors/literace_sampling.ml: Detector Dgrace_events Dynamic_granularity Event Hashtbl Run_stats Suppression
