lib/detectors/djit.ml: Accounting Detector Dgrace_events Dgrace_shadow Dgrace_util Dgrace_vclock Epoch_bitmap Event Printf Race_info Report Run_stats Shadow_table Suppression Vc_env Vector_clock
