lib/detectors/read_state.mli: Dgrace_vclock Epoch Format Vector_clock
