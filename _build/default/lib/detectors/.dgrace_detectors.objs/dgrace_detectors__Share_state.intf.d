lib/detectors/share_state.mli: Format
