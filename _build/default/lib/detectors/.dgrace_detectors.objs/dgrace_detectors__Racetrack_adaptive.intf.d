lib/detectors/racetrack_adaptive.mli: Detector Dgrace_events Suppression
