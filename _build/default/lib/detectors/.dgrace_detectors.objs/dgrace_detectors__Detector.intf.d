lib/detectors/detector.mli: Accounting Dgrace_events Dgrace_shadow Event Report Run_stats
