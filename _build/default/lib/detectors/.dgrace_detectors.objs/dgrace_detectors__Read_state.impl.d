lib/detectors/read_state.ml: Dgrace_vclock Epoch Format Vector_clock
