lib/detectors/literace_sampling.mli: Detector Dgrace_events Suppression
