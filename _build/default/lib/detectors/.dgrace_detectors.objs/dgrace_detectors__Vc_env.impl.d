lib/detectors/vc_env.ml: Dgrace_events Dgrace_util Dgrace_vclock Epoch Event Hashtbl Vector_clock
