lib/detectors/race_info.ml: Dgrace_events Dgrace_vclock Epoch Event Read_state Report Vector_clock
