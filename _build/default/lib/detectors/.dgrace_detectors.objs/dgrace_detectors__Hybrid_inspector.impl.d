lib/detectors/hybrid_inspector.ml: Accounting Detector Dgrace_events Dgrace_shadow Dgrace_vclock Event Hashtbl List Lock_tracker Report Run_stats Shadow_table Suppression Vc_env Vector_clock
