lib/detectors/lock_tracker.ml: Array Dgrace_events Int Set
