lib/detectors/dynamic_granularity.mli: Detector Dgrace_events Dgrace_shadow Suppression
