lib/detectors/run_stats.ml: Format
