lib/detectors/race_info.mli: Dgrace_events Dgrace_vclock Epoch Event Read_state Report Vector_clock
