lib/detectors/drd_segment.ml: Accounting Bytes Char Detector Dgrace_events Dgrace_shadow Dgrace_util Dgrace_vclock Event Hashtbl List Report Run_stats Suppression Vc_env Vector_clock
