lib/detectors/lock_tracker.mli: Dgrace_events Set
