lib/detectors/share_state.ml: Format
