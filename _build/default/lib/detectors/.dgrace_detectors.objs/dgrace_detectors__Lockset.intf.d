lib/detectors/lockset.mli: Detector Dgrace_events Suppression
