lib/detectors/vc_env.mli: Dgrace_events Dgrace_vclock Epoch Event Vector_clock
