lib/detectors/detector.ml: Accounting Dgrace_events Dgrace_shadow Event Report Run_stats
