lib/detectors/multirace.ml: Detector Dgrace_events Djit List Lockset Report Suppression
