lib/detectors/hybrid_inspector.mli: Detector Dgrace_events Suppression
