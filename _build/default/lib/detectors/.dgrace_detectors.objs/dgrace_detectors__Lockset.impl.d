lib/detectors/lockset.ml: Accounting Detector Dgrace_events Dgrace_shadow Event Lock_tracker Report Run_stats Shadow_table Suppression
