lib/detectors/drd_segment.mli: Detector Dgrace_events Suppression
