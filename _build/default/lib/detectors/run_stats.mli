(** Counters every detector keeps while consuming an event stream.

    These feed the evaluation tables: total shared accesses (Table 1),
    the fraction filtered as same-epoch accesses (Table 4), and basic
    stream composition. *)

type t = {
  mutable accesses : int;  (** shared access events processed *)
  mutable reads : int;
  mutable writes : int;
  mutable same_epoch : int;
      (** accesses dismissed by the same-epoch fast path (thread-local
          bitmap hit or epoch-equal shadow state) *)
  mutable sync_ops : int;  (** acquire/release/fork/join events *)
  mutable allocs : int;
  mutable frees : int;
}

val create : unit -> t

val same_epoch_ratio : t -> float
(** [same_epoch / accesses] in [0..1] (0 when no accesses). *)

val pp : Format.formatter -> t -> unit
