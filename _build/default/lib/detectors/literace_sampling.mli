(** LiteRace-style sampling (Marino, Musuvathi & Narayanasamy, PLDI
    2009), from the paper's §VI.

    LiteRace instruments everything but {e analyses} only a sample of
    accesses, guided by the cold-region hypothesis: rarely executed
    code is more likely to hide races than hot code, so each code
    region's sampling rate starts at 100% and decays as the region gets
    hot, down to a floor.  Synchronisation operations are always
    processed (the clocks must stay exact); skipped accesses simply
    never reach the underlying detector — which is why sampling trades
    coverage for speed and "may miss critical data races" (§VI).

    We use the access's source-location label as the code region and
    byte-granularity FastTrack underneath. *)

open Dgrace_events

val create :
  ?floor_rate:float ->
  ?decay_every:int ->
  ?suppression:Suppression.t ->
  unit ->
  Detector.t
(** Each region starts at rate 1.0; after every [decay_every] analysed
    accesses from a region its rate halves, stopping at [floor_rate]
    (defaults: 0.02 and 64).  Deterministic: the "coin" is a counter
    per region, not a PRNG. *)
