(** DJIT+ (Pozniansky & Schuster), the paper's §II.B baseline.

    Each location granule keeps two {e full} vector clocks — one for
    reads, one for writes — so the per-access cost and the shadow
    footprint are O(n) in the thread count.  FastTrack's epoch
    optimisation reduces exactly this; running both detectors on the
    same stream demonstrates (and our property tests check) that they
    report the same first race per location. *)

open Dgrace_events

val create :
  ?granularity:int ->
  ?suppression:Suppression.t ->
  unit ->
  Detector.t
(** Granularity defaults to 1 byte; must be a power of two. *)
