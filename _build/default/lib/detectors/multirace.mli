(** MultiRace (Pozniansky & Schuster, PPoPP 2003), from the paper's
    §VI: DJIT+ combined with Eraser's LockSet.

    The LockSet side cheaply flags {e potential} races (discipline
    violations, including on paths not exercised); the happens-before
    side confirms or refutes them for the observed execution.  Reports
    are split accordingly:

    - a location that is both discipline-violating {e and}
      happens-before concurrent is a confirmed race (reported through
      the collector, like every other detector here);
    - a discipline violation that happens-before ordering explains away
      is a {e potential} race only, counted in {!potential_only} — the
      false alarms Eraser alone would have raised.

    The detector also inherits LockSet's blind spot the other way
    around: it never reports a happens-before race that respects some
    locking discipline... there is none — any HB race on a
    lock-disciplined location is impossible, so confirmed = HB ∩
    LockSet is exactly DJIT+'s verdict restricted to
    discipline-violating locations. *)

open Dgrace_events

val create :
  ?granularity:int ->
  ?suppression:Suppression.t ->
  unit ->
  Detector.t
(** Granularity defaults to 4 bytes as in MultiRace's "view" units. *)

val potential_only : Detector.t -> int
(** Discipline violations that were happens-before ordered (Eraser-only
    false alarms), for a detector made by {!create}; 0 for others. *)
