(** Helpers for constructing the two endpoints of a race report from
    shadow state, shared by the happens-before detectors. *)

open Dgrace_vclock
open Dgrace_events

val current : tid:int -> kind:Event.access_kind -> clock:int -> loc:string -> Report.endpoint

val of_write : w:Epoch.t -> loc:string -> Report.endpoint
(** Previous-access endpoint from a write epoch. *)

val of_read_state : Read_state.t -> against:Vector_clock.t -> loc:string -> Report.endpoint
(** Previous-access endpoint from a read state, choosing — when the
    state is a full vector clock — a thread whose read is not ordered
    before [against] (there is one whenever this is called on a race). *)

val conflicting_tid : Vector_clock.t -> against:Vector_clock.t -> int
(** Some thread id [j] with [v(j) > against(j)], or [-1] if none. *)
