type t = {
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;
  mutable same_epoch : int;
  mutable sync_ops : int;
  mutable allocs : int;
  mutable frees : int;
}

let create () =
  { accesses = 0; reads = 0; writes = 0; same_epoch = 0; sync_ops = 0;
    allocs = 0; frees = 0 }

let same_epoch_ratio t =
  if t.accesses = 0 then 0.0
  else float_of_int t.same_epoch /. float_of_int t.accesses

let pp ppf t =
  Format.fprintf ppf
    "accesses=%d (r=%d w=%d) same-epoch=%d (%.0f%%) sync=%d alloc=%d free=%d"
    t.accesses t.reads t.writes t.same_epoch
    (100. *. same_epoch_ratio t)
    t.sync_ops t.allocs t.frees
