(** Eraser's LockSet algorithm (Savage et al., §I of the paper).

    Each shared location carries a candidate set of locks that has
    protected every access so far; the set is refined by intersection
    with the accessing thread's held locks, and an empty candidate set
    in the Shared-Modified state is reported as a (potential) race.
    LockSet checks a {e discipline}, not the happens-before relation,
    so it finds potential races on paths not exercised — and produces
    the false alarms (fork/join ordering, unrecognised idioms) that
    motivate the happens-before detectors this repository is about. *)

open Dgrace_events

val create :
  ?granularity:int ->
  ?suppression:Suppression.t ->
  unit ->
  Detector.t
(** Granularity defaults to 4 (Eraser tracked word-sized shadow). *)
