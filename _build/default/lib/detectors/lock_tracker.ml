module Iset = Set.Make (Int)

type t = { mutable held : Iset.t array }

let create () = { held = Array.make 8 Iset.empty }

let ensure t tid =
  if tid >= Array.length t.held then begin
    let a = Array.make (max (tid + 1) (2 * Array.length t.held)) Iset.empty in
    Array.blit t.held 0 a 0 (Array.length t.held);
    t.held <- a
  end

let acquire t ~tid ~lock =
  ensure t tid;
  t.held.(tid) <- Iset.add lock t.held.(tid)

let release t ~tid ~lock =
  ensure t tid;
  t.held.(tid) <- Iset.remove lock t.held.(tid)

let held t tid = if tid < Array.length t.held then t.held.(tid) else Iset.empty

let handle t ev =
  match ev with
  | Dgrace_events.Event.Acquire { tid; lock; sync = Dgrace_events.Event.Lock } ->
    acquire t ~tid ~lock
  | Dgrace_events.Event.Release { tid; lock; sync = Dgrace_events.Event.Lock } ->
    release t ~tid ~lock
  | _ -> ()
