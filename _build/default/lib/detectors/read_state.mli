(** FastTrack's adaptive read representation.

    Writes to a location are totally ordered until the first race, so a
    single epoch suffices for the write history.  Reads are not: after
    a read-shared pattern (several threads reading without ordering)
    the full vector clock is needed.  This module is the adaptive
    [None | Epoch | Vc] representation together with the FastTrack read
    rules (§II.C of the paper, rules READ EXCLUSIVE / READ SHARE /
    READ SHARED of the FastTrack paper). *)

open Dgrace_vclock

type t =
  | No_reads  (** never read (or reset by a dominating write) *)
  | Ep of Epoch.t  (** all reads ordered; last one was this epoch *)
  | Vc of Vector_clock.t  (** read-shared: per-thread last read clocks *)

val equal : t -> t -> bool
(** Structural equality — the "same vector clock" test used by sharing
    decisions. *)

val leq : t -> Vector_clock.t -> bool
(** Do all recorded reads happen before the given thread clock?  The
    read-write race check is the negation. *)

val same_epoch : t -> Epoch.t -> bool
(** Is the last recorded read exactly this epoch (FastTrack's O(1)
    same-epoch read fast path)? *)

val update : t -> tid:int -> tvc:Vector_clock.t -> t
(** Record a read by [tid] whose thread clock is [tvc]: stays an epoch
    when the previous reads are ordered before this one, inflates to a
    vector clock otherwise.  May mutate and return the existing [Vc]. *)

val bytes : t -> int
(** Storage attributed to this representation beyond the cell record
    (0 for [No_reads]/[Ep], the clock footprint for [Vc]). *)

val pp : Format.formatter -> t -> unit
