(* canneal: simulated annealing over a netlist.  The connectivity
   array is read-only after load (random, cache-hostile reads), and
   element locations are swapped with lock-free atomic exchanges —
   race-free by construction.  Neighbouring words almost never carry
   the same clock here, so dynamic granularity cannot share: the
   workload where the paper sees no benefit over byte granularity.
   No seeded races. *)

open Dgrace_sim

let program (p : Workload.params) () =
  let elems = 4096 * p.scale in
  let conn = Sim.static_alloc (4 * elems) in
  let locs = Sim.static_alloc (4 * elems) in
  Wutil.touch_words ~loc:"canneal:load" ~write:true conn (4 * elems);
  Wutil.touch_words ~loc:"canneal:load" ~write:true locs (4 * elems);
  let steps = 700 * p.scale in
  let worker w =
    let st = Wutil.rng (p.seed + w) in
    for _step = 1 to steps do
      (* evaluate a candidate swap: random connectivity reads *)
      for _k = 1 to 6 do
        let i = Random.State.int st elems in
        Sim.read ~loc:"canneal:cost" (conn + (4 * i)) 4
      done;
      (* commit the swap with two atomic exchanges *)
      let a = Random.State.int st elems and b = Random.State.int st elems in
      Sim.atomic_rmw ~loc:"canneal:swap" (locs + (4 * a)) 4;
      Sim.atomic_rmw ~loc:"canneal:swap" (locs + (4 * b)) 4
    done
  in
  Wutil.spawn_workers p.threads worker

let workload : Workload.t =
  {
    name = "canneal";
    description = "lock-free random swaps over a large netlist";
    defaults = { threads = 4; scale = 1; seed = 16 };
    expected_races = 0;
    program;
  }
