let all : Workload.t list =
  [
    Facesim.workload;
    Ferret.workload;
    Fluidanimate.workload;
    Raytrace.workload;
    X264.workload;
    Canneal.workload;
    Dedup.workload;
    Streamcluster.workload;
    Ffmpeg_w.workload;
    Pbzip2.workload;
    Hmmsearch.workload;
  ]

let find name = List.find_opt (fun (w : Workload.t) -> w.name = name) all
let names = List.map (fun (w : Workload.t) -> w.name) all
