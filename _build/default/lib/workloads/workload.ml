open Dgrace_sim

type params = { threads : int; scale : int; seed : int }

type t = {
  name : string;
  description : string;
  defaults : params;
  expected_races : int;
  program : params -> unit -> unit;
}

let with_params ?threads ?scale ?seed w =
  let d = w.defaults in
  {
    threads = Option.value threads ~default:d.threads;
    scale = Option.value scale ~default:d.scale;
    seed = Option.value seed ~default:d.seed;
  }

let run ?policy ?params ~sink w =
  let params = Option.value params ~default:w.defaults in
  Sim.run ?policy ~sink (w.program params)
