(* x264: frame encoder with the staggered row dependency of the real
   program — the thread encoding frame f+1 may start row r once frame f
   has finished row r+2, so consecutive frames encode concurrently.
   The seeded bug reproduces the paper's x264 discussion: a large
   unprotected per-frame statistics array (992 aligned words) plus 8
   single-byte fields at odd offsets packed into 4 words.  The byte and
   dynamic detectors count 1000 racy locations; the word detector masks
   the packed bytes to their words and reports 996. *)

open Dgrace_sim

let rows = 16
let row_words = 48
let stat_words = 992
let packed_bytes = 8

let program (p : Workload.params) () =
  let frames = 8 * p.scale in
  let row_data = Sim.static_alloc (4 * rows * row_words * 2) in
  (* two frame-sized row buffers, alternating: ref and current *)
  let stats = Sim.static_alloc (4 * stat_words) in
  let packed = Sim.static_alloc 16 in
  let done_flags = Array.init frames (fun _ -> Array.init rows (fun _ -> Sim.event ())) in
  let frame_buf f = row_data + (4 * rows * row_words * (f land 1)) in
  let encode_frame f =
    for r = 0 to rows - 1 do
      (* wait for the reference rows of the previous frame *)
      if f > 0 then Sim.event_wait done_flags.(f - 1).(min (rows - 1) (r + 2));
      let cur = frame_buf f + (4 * r * row_words) in
      let reference = frame_buf (f - 1) + (4 * r * row_words) in
      if f > 0 then
        Wutil.touch_words ~loc:"x264:motion-search" ~write:false reference
          (4 * row_words);
      Wutil.touch_words ~loc:"x264:encode-row" ~write:true cur (4 * row_words);
      Sim.event_set done_flags.(f).(r)
    done;
    (* per-frame rate-control statistics, unprotected across frames *)
    Wutil.touch_words ~loc:"x264:rc-stats" ~write:true stats (4 * stat_words);
    for k = 0 to (packed_bytes / 2) - 1 do
      (* two odd-offset byte fields per packed word *)
      Sim.write ~loc:"x264:rc-flags" (packed + (4 * k) + 1) 1;
      Sim.write ~loc:"x264:rc-flags" (packed + (4 * k) + 3) 1
    done
  in
  let next_frame = ref 0 in
  let worker _w =
    let continue_ = ref true in
    while !continue_ do
      (* frame assignment is host-level bookkeeping, not shared memory *)
      let f = !next_frame in
      if f >= frames then continue_ := false
      else begin
        incr next_frame;
        encode_frame f
      end
    done
  in
  Wutil.spawn_workers p.threads worker

let workload : Workload.t =
  {
    name = "x264";
    description = "staggered-frame encoder with a large unprotected stats array";
    defaults = { threads = 4; scale = 1; seed = 15 };
    expected_races = stat_words + packed_bytes;
    program;
  }
