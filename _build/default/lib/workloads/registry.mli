(** The benchmark suite: the paper's eleven programs. *)

val all : Workload.t list
(** In the paper's Table 1 order: facesim, ferret, fluidanimate,
    raytrace, x264, canneal, dedup, streamcluster, ffmpeg, pbzip2,
    hmmsearch. *)

val find : string -> Workload.t option
val names : string list
