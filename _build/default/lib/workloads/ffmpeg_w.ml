(* ffmpeg: decode/filter/encode over malloc'd frame buffers handed
   between two workers.  Reproduces both race findings of the paper's
   §V: (1) one real race — the two workers bump a shared frame counter
   without protection (found by the dynamic detector, missed by DRD in
   the paper's run); (2) a word-granularity false alarm — two adjacent
   single-byte fields packed into one word, each correctly protected
   by its own lock, which the word detector conflates. *)

open Dgrace_sim

let frame_bytes = 256

let program (p : Workload.params) () =
  let frames = 100 * p.scale in
  let decoded = Wutil.Handoff.create frames in
  let frame_count = Wutil.Counter.create ~loc:"ffmpeg:frame_count" () in
  let packed_flags = Sim.static_alloc 4 in
  let flag_lock_a = Sim.mutex () and flag_lock_b = Sim.mutex () in
  let decoder () =
    for i = 0 to frames - 1 do
      let buf = Sim.malloc frame_bytes in
      Wutil.touch_words ~loc:"ffmpeg:decode" ~write:true buf frame_bytes;
      (* byte field 0, protected by its own lock *)
      Sim.with_lock flag_lock_a (fun () ->
          Sim.write ~loc:"ffmpeg:interlace-flag" packed_flags 1);
      if i land 7 = 0 then Wutil.Counter.incr_racy frame_count;
      Wutil.Handoff.put decoded i ~value:buf
    done
  in
  let encoder () =
    for i = 0 to frames - 1 do
      let buf = Wutil.Handoff.take decoded i in
      Wutil.touch_words ~loc:"ffmpeg:encode-read" ~write:false buf frame_bytes;
      Wutil.touch_words ~loc:"ffmpeg:encode-write" ~write:true buf (frame_bytes / 2);
      (* adjacent byte field 1 (odd address), its own lock: race-free,
         but the word detector sees the same shadow word as field 0 *)
      Sim.with_lock flag_lock_b (fun () ->
          Sim.write ~loc:"ffmpeg:keyframe-flag" (packed_flags + 1) 1);
      if i land 7 = 0 then Wutil.Counter.incr_racy frame_count;
      Sim.free buf
    done
  in
  let t1 = Sim.spawn decoder in
  let t2 = Sim.spawn encoder in
  Sim.join t1;
  Sim.join t2

let workload : Workload.t =
  {
    name = "ffmpeg";
    description = "two-stage codec; one real race plus a word-granularity trap";
    defaults = { threads = 2; scale = 1; seed = 19 };
    expected_races = 1;
    program;
  }
