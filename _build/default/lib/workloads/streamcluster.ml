(* streamcluster: barrier-phased clustering.  A large point array is
   read by every worker once (or twice) per phase — the low same-epoch
   ratio at byte granularity that dynamic granularity lifts to ~97% by
   coalescing each partition into a handful of shared clocks.  The
   centre array alternates between being rewritten wholesale by one
   worker (which lets its words share one clock) and being updated
   per-centre under per-centre locks by different workers — the
   pattern that provokes the dynamic detector's (paper-documented)
   false alarms on streamcluster.  No real races are seeded. *)

open Dgrace_sim

let phases_per_scale = 16
let centers = 8

let program (p : Workload.params) () =
  let phases = phases_per_scale * p.scale in
  let points = 1024 in
  let parr = Sim.static_alloc (4 * points) in
  let carr = Sim.static_alloc (4 * centers) in
  let center_locks = Array.init centers (fun _ -> Sim.mutex ()) in
  let b = Sim.barrier p.threads in
  Wutil.touch_words ~loc:"stream:load" ~write:true parr (4 * points);
  Wutil.touch_words ~loc:"stream:init-centers" ~write:true carr (4 * centers);
  let part = points / p.threads in
  let worker w =
    let lo = w * part and hi = if w = p.threads - 1 then points else (w + 1) * part in
    for phase = 1 to phases do
      Sim.barrier_wait b;
      for i = lo to hi - 1 do
        let a = parr + (4 * i) in
        Sim.read ~loc:"stream:dist" a 4;
        (* every other point is re-examined within the phase *)
        if i land 1 = 0 then Sim.read ~loc:"stream:dist" a 4
      done;
      if phase land 1 = 1 then begin
        (* odd phases: one worker recomputes every centre wholesale *)
        if w = 0 then
          Sim.with_lock center_locks.(0) (fun () ->
              Wutil.touch_words ~loc:"stream:recenter" ~write:true carr
                (4 * centers))
      end
      else begin
        (* even phases: each worker refines its own centres under the
           per-centre lock *)
        let c = ref w in
        while !c < centers do
          Sim.with_lock center_locks.(!c) (fun () ->
              Sim.read ~loc:"stream:refine" (carr + (4 * !c)) 4;
              Sim.write ~loc:"stream:refine" (carr + (4 * !c)) 4);
          c := !c + p.threads
        done
      end
    done
  in
  let tids =
    List.init (p.threads - 1) (fun w -> Sim.spawn (fun () -> worker (w + 1)))
  in
  worker 0;
  List.iter Sim.join tids

let workload : Workload.t =
  {
    name = "streamcluster";
    description = "barrier-phased clustering; centre updates provoke dynamic false alarms";
    defaults = { threads = 4; scale = 1; seed = 18 };
    expected_races = 0;
    program;
  }
