(* pbzip2: block-parallel compression.  The producer fills large
   blocks wholesale; consumers make several passes over each block and
   emit an output block, so whole blocks are touched together within
   single epochs — the workload with the paper's highest average
   vector-clock sharing (33.3 locations per clock) where the dynamic
   detector's win comes from eliminating per-byte clock create/delete
   traffic.  Seeded race: an unprotected progress counter. *)

open Dgrace_sim

let block_bytes = 512
let passes = 6

let program (p : Workload.params) () =
  let blocks = 50 * p.scale in
  let consumers = max 1 (p.threads - 1) in
  let queues = Array.init consumers (fun _ -> Wutil.Handoff.create blocks) in
  let progress = Wutil.Counter.create ~loc:"pbzip2:progress" () in
  let consumer c =
    let i = ref c in
    while !i < blocks do
      let blk = Wutil.Handoff.take queues.(c) !i in
      for _pass = 1 to passes do
        Wutil.touch_words ~loc:"pbzip2:compress" ~write:false blk block_bytes
      done;
      let out = Sim.malloc block_bytes in
      Wutil.touch_words ~loc:"pbzip2:emit" ~write:true out block_bytes;
      Sim.free blk;
      Sim.free out;
      Wutil.Counter.incr_racy progress;
      i := !i + consumers
    done
  in
  let tids = List.init consumers (fun c -> Sim.spawn (fun () -> consumer c)) in
  for i = 0 to blocks - 1 do
    let blk = Sim.malloc block_bytes in
    Wutil.touch_words ~loc:"pbzip2:read-input" ~write:true blk block_bytes;
    Wutil.Handoff.put queues.(i mod consumers) i ~value:blk
  done;
  List.iter Sim.join tids

let workload : Workload.t =
  {
    name = "pbzip2";
    description = "block-parallel compressor with wholesale block access";
    defaults = { threads = 4; scale = 1; seed = 20 };
    expected_races = 1;
    program;
  }
