lib/workloads/hmmsearch.ml: Dgrace_sim Sim Workload Wutil
