lib/workloads/dedup.ml: Array Dgrace_sim List Sim Workload Wutil
