lib/workloads/raytrace.ml: Dgrace_sim Random Sim Workload Wutil
