lib/workloads/wutil.mli: Dgrace_sim Random Sim
