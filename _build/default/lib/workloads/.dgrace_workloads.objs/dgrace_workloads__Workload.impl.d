lib/workloads/workload.ml: Dgrace_sim Option Sim
