lib/workloads/fluidanimate.ml: Array Dgrace_sim List Sim Workload Wutil
