lib/workloads/ferret.ml: Array Dgrace_sim List Sim Workload Wutil
