lib/workloads/pbzip2.ml: Array Dgrace_sim List Sim Workload Wutil
