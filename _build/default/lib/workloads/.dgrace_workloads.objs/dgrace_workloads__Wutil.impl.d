lib/workloads/wutil.ml: Array Dgrace_sim Hashtbl List Random Sim
