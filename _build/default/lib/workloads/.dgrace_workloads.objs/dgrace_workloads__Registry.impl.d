lib/workloads/registry.ml: Canneal Dedup Facesim Ferret Ffmpeg_w Fluidanimate Hmmsearch List Pbzip2 Raytrace Streamcluster Workload X264
