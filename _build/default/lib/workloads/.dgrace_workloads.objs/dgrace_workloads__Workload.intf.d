lib/workloads/workload.mli: Dgrace_events Dgrace_sim Scheduler Sim
