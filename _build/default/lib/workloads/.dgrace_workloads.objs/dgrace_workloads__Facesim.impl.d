lib/workloads/facesim.ml: Dgrace_sim List Sim Workload Wutil
