lib/workloads/canneal.ml: Dgrace_sim Random Sim Workload Wutil
