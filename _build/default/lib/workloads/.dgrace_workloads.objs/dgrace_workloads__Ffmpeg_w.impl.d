lib/workloads/ffmpeg_w.ml: Dgrace_sim Sim Workload Wutil
