lib/workloads/x264.ml: Array Dgrace_sim Sim Workload Wutil
