lib/workloads/streamcluster.ml: Array Dgrace_sim List Sim Workload Wutil
