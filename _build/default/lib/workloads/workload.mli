(** Synthetic benchmark workloads.

    Each workload models the shared-memory access {e pattern} of one of
    the paper's eleven benchmark programs (8 PARSEC programs plus
    FFmpeg, pbzip2 and hmmsearch) — the statistics that drive the
    evaluation: access sizes and alignment, same-epoch ratio,
    neighbourhood share-ability, allocation churn, read-sharing — and
    seeds exactly the races the paper reports finding.  The benchmark
    harness runs these under every detector. *)

open Dgrace_sim

type params = {
  threads : int;  (** worker thread count (the paper's Table 1 column) *)
  scale : int;  (** linear size factor; 1 ≈ 10⁵ access events *)
  seed : int;  (** PRNG seed for data-dependent access patterns *)
}

type t = {
  name : string;
  description : string;
  defaults : params;
  expected_races : int;
      (** distinct racy locations seeded, as counted by the
          byte-granularity FastTrack detector with the default
          suppression rules *)
  program : params -> unit -> unit;
      (** builds a fresh program closure; all sync objects are created
          inside, so the closure can be run any number of times *)
}

val with_params : ?threads:int -> ?scale:int -> ?seed:int -> t -> params
(** The workload's defaults overridden field-wise. *)

val run :
  ?policy:Scheduler.policy ->
  ?params:params ->
  sink:(Dgrace_events.Event.t -> unit) ->
  t ->
  Sim.result
(** Run once under the simulator, delivering events to [sink]. *)
