(** Building blocks shared by the workload programs. *)

open Dgrace_sim

val rng : int -> Random.State.t
(** Deterministic PRNG for a workload seed. *)

val spawn_workers : int -> (int -> unit) -> unit
(** [spawn_workers n body] spawns [n] threads running [body i] and
    joins them all (fork/join happens-before edges). *)

val touch_words : ?loc:string -> write:bool -> int -> int -> unit
(** [touch_words ~write addr bytes] reads or writes the range as a
    sequence of word (4-byte) accesses — the common C loop over an
    array. *)

(** A single-producer single-consumer handoff channel built from
    simulated shared slots and event flags: the put of item [i]
    happens-before the take of item [i].  This is the queue idiom of
    the pipeline benchmarks (ferret, dedup, pbzip2, ffmpeg). *)
module Handoff : sig
  type t

  val create : int -> t
  (** [create n] — channel for items [0 .. n-1]; allocates the slot
      array in simulated static memory. *)

  val put : t -> int -> value:int -> unit
  (** Publish item [i] carrying [value] (typically a buffer address):
      writes the slot, then signals. *)

  val take : t -> int -> int
  (** Wait for item [i] and read its value. *)
end

(** A counter in simulated shared memory. *)
module Counter : sig
  type t

  val create : ?loc:string -> unit -> t

  val incr_locked : t -> Sim.mutex -> unit
  (** Read-modify-write under the given lock — race-free. *)

  val incr_racy : t -> unit
  (** Read-modify-write with no protection — one seeded racy word. *)

  val addr : t -> int
end
