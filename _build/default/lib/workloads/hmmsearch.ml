(* hmmsearch: profile-HMM sequence search.  Workers scan a read-only
   sequence database (read-shared clocks) and score into private
   buffers; shared traffic is small and the detector overheads are
   the lowest of the suite, as in the paper.  Seeded race: the final
   unprotected update of the shared hit counter — the single race all
   three tools in the paper's Table 6 agree on. *)

open Dgrace_sim

let program (p : Workload.params) () =
  let db_words = 6144 * p.scale in
  let db = Sim.static_alloc (4 * db_words) in
  let hits = Wutil.Counter.create ~loc:"hmmsearch:hits" () in
  Wutil.touch_words ~loc:"hmmsearch:load-db" ~write:true db (4 * db_words);
  let worker w =
    let score = Sim.malloc (4 * 64) in
    Wutil.touch_words ~loc:"hmmsearch:viterbi-init" ~write:true score 256;
    let part = db_words / p.threads in
    let lo = w * part and hi = if w = p.threads - 1 then db_words else (w + 1) * part in
    for i = lo to hi - 1 do
      Sim.read ~loc:"hmmsearch:scan" (db + (4 * i)) 4;
      if i land 15 = 0 then
        Sim.write ~loc:"hmmsearch:viterbi" (score + (4 * (i land 63))) 4
    done;
    (* unprotected aggregation at the end of the scan: the one race *)
    Wutil.Counter.incr_racy hits;
    Sim.free score
  in
  Wutil.spawn_workers p.threads worker

let workload : Workload.t =
  {
    name = "hmmsearch";
    description = "read-only database scan with private score buffers";
    defaults = { threads = 4; scale = 1; seed = 21 };
    expected_races = 1;
    program;
  }
