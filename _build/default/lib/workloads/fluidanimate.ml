(* fluidanimate: grid of cells protected by fine-grained region locks,
   updated over barrier-separated iterations.  Heavy locking (many
   short epochs), word accesses only, moderate neighbourhood sharing.
   Seeded race: one boundary cell that both adjacent workers update
   without taking its region lock. *)

open Dgrace_sim

let iters_per_scale = 12
let cells_per_lock = 16

let program (p : Workload.params) () =
  let iters = iters_per_scale * p.scale in
  let cells = 768 in
  let grid = Sim.static_alloc (4 * cells) in
  let locks = Array.init (cells / cells_per_lock) (fun _ -> Sim.mutex ()) in
  let b = Sim.barrier p.threads in
  let boundary = grid + (4 * (cells / 2)) in
  Wutil.touch_words ~loc:"fluid:init" ~write:true grid (4 * cells);
  let part = cells / p.threads in
  let worker w =
    let lo = w * part and hi = if w = p.threads - 1 then cells else (w + 1) * part in
    for _it = 1 to iters do
      Sim.barrier_wait b;
      let region = ref (-1) in
      for i = lo to hi - 1 do
        let r = i / cells_per_lock in
        if r <> !region then begin
          if !region >= 0 then Sim.unlock locks.(!region);
          Sim.lock locks.(r);
          region := r
        end;
        let a = grid + (4 * i) in
        Sim.read ~loc:"fluid:density" a 4;
        (* neighbour read stays within the lock region *)
        if (i + 1) / cells_per_lock = r && i + 1 < hi then
          Sim.read ~loc:"fluid:density" (a + 4) 4;
        Sim.write ~loc:"fluid:force" a 4
      done;
      if !region >= 0 then Sim.unlock locks.(!region);
      (* the seeded bug: both middle workers poke the boundary cell
         without holding its region lock *)
      if w = p.threads / 2 || w = (p.threads / 2) - 1 then
        Sim.write ~loc:"fluid:boundary" boundary 4
    done
  in
  let tids =
    List.init (p.threads - 1) (fun w -> Sim.spawn (fun () -> worker (w + 1)))
  in
  worker 0;
  List.iter Sim.join tids

let workload : Workload.t =
  {
    name = "fluidanimate";
    description = "region-locked grid updates with barrier iterations";
    defaults = { threads = 4; scale = 1; seed = 13 };
    expected_races = 1;
    program;
  }
