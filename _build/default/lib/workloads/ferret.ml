(* ferret: a four-stage similarity-search pipeline.  Items are malloc'd
   buffers initialised by the producer and handed stage to stage
   through event-flag channels; each stage reads the previous stage's
   fields and writes its own.  Many short-lived shadow locations and
   moderate sharing.  Seeded races: two unprotected statistics
   counters updated by different stages. *)

open Dgrace_sim

let stages = 4
let item_bytes = 128

let program (p : Workload.params) () =
  let items = 250 * p.scale in
  let channels = Array.init stages (fun _ -> Wutil.Handoff.create items) in
  let stat_a = Wutil.Counter.create ~loc:"ferret:rank-stats" () in
  let stat_b = Wutil.Counter.create ~loc:"ferret:index-stats" () in
  let stage_field s = 32 * s in
  let stage s =
    for i = 0 to items - 1 do
      let buf = Wutil.Handoff.take channels.(s - 1) i in
      (* read everything produced so far, write this stage's field *)
      Wutil.touch_words ~loc:"ferret:stage-read" ~write:false buf (stage_field s);
      Wutil.touch_words ~loc:"ferret:stage-write" ~write:true
        (buf + stage_field s) 32;
      if (s = 2 || s = 3) && i land 7 = 0 then begin
        (* both stages bump both counters, unprotected: two races *)
        Wutil.Counter.incr_racy stat_a;
        Wutil.Counter.incr_racy stat_b
      end;
      if s = stages - 1 then Sim.free buf
      else Wutil.Handoff.put channels.(s) i ~value:buf
    done
  in
  let tids = List.init (stages - 1) (fun k -> Sim.spawn (fun () -> stage (k + 1))) in
  (* the producer stage runs on the main thread *)
  for i = 0 to items - 1 do
    let buf = Sim.malloc item_bytes in
    Wutil.touch_words ~loc:"ferret:load" ~write:true buf 32;
    Wutil.Handoff.put channels.(0) i ~value:buf
  done;
  List.iter Sim.join tids

let workload : Workload.t =
  {
    name = "ferret";
    description = "four-stage pipeline over malloc'd items";
    defaults = { threads = 4; scale = 1; seed = 12 };
    expected_races = 2;
    program;
  }
