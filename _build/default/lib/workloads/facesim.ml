(* facesim: barrier-phased physics solver.  Large word-aligned arrays,
   partitioned updates with neighbour reads (high same-epoch ratio,
   wide contiguous neighbourhoods — the friendliest case for dynamic
   granularity), plus an unprotected 3-word frame-statistics block
   written by every worker each phase: the seeded races. *)

open Dgrace_sim

let phases_per_scale = 20

let program (p : Workload.params) () =
  let phases = phases_per_scale * p.scale in
  let n_words = 1024 in
  let grid = Sim.static_alloc (4 * n_words) in
  let stats = Sim.static_alloc 12 in
  let b = Sim.barrier (p.threads + 1) in
  Wutil.touch_words ~loc:"facesim:init" ~write:true grid (4 * n_words);
  let part = n_words / p.threads in
  let worker w =
    let lo = w * part and hi = if w = p.threads - 1 then n_words else (w + 1) * part in
    for _phase = 1 to phases do
      Sim.barrier_wait b;
      for i = lo to hi - 1 do
        let a = grid + (4 * i) in
        Sim.read ~loc:"facesim:solve" a 4;
        if i + 1 < hi then Sim.read ~loc:"facesim:solve" (a + 4) 4;
        Sim.write ~loc:"facesim:solve" a 4
      done;
      (* racy frame statistics: no lock, every worker, every phase *)
      Sim.write ~loc:"facesim:stats" stats 4;
      Sim.write ~loc:"facesim:stats" (stats + 4) 4;
      Sim.write ~loc:"facesim:stats" (stats + 8) 4
    done
  in
  let tids = List.init p.threads (fun w -> Sim.spawn (fun () -> worker w)) in
  for _phase = 1 to phases do
    Sim.barrier_wait b
  done;
  List.iter Sim.join tids

let workload : Workload.t =
  {
    name = "facesim";
    description = "barrier-phased solver over large word arrays";
    defaults = { threads = 4; scale = 1; seed = 11 };
    expected_races = 3;
    program;
  }
