(* raytrace: a large read-only scene shared by all workers (exercises
   FastTrack's read-shared vector clocks) and a frame buffer with
   per-worker rows.  Random scene reads give poor locality, so dynamic
   granularity gains little here — as in the paper.  Seeded races: two
   unprotected progress counters, plus one race inside the "pthread"
   runtime that the default suppression rules hide from our detectors
   but DRD-style tools report. *)

open Dgrace_sim

let program (p : Workload.params) () =
  let scene_words = 4096 * p.scale in
  let pixels = 6144 * p.scale in
  let scene = Sim.static_alloc (4 * scene_words) in
  let fb = Sim.static_alloc (4 * pixels) in
  let progress = Wutil.Counter.create ~loc:"raytrace:progress" () in
  let rays = Wutil.Counter.create ~loc:"raytrace:rays" () in
  (* runtime-internal word, far from application data as in a real address space *)
  let tls = Sim.static_alloc ~align:65536 4 in
  Wutil.touch_words ~loc:"raytrace:scene-load" ~write:true scene (4 * scene_words);
  let part = pixels / p.threads in
  let worker w =
    let st = Wutil.rng (p.seed + w) in
    let lo = w * part and hi = if w = p.threads - 1 then pixels else (w + 1) * part in
    for px = lo to hi - 1 do
      for _bounce = 1 to 3 do
        let i = Random.State.int st scene_words in
        Sim.read ~loc:"raytrace:trace" (scene + (4 * i)) 4
      done;
      Sim.write ~loc:"raytrace:shade" (fb + (4 * px)) 4;
      if px land 255 = 0 then begin
        Wutil.Counter.incr_racy progress;
        Wutil.Counter.incr_racy rays;
        (* runtime-internal write, suppressed by Suppression.default_runtime *)
        Sim.write ~loc:"pthread:tls-cache" tls 4
      end
    done
  in
  Wutil.spawn_workers p.threads worker

let workload : Workload.t =
  {
    name = "raytrace";
    description = "read-shared scene, random reads, per-worker framebuffer rows";
    defaults = { threads = 4; scale = 1; seed = 14 };
    expected_races = 2;
    program;
  }
