(* dedup: the allocation-churn benchmark.  A four-stage pipeline where
   every item is a freshly malloc'd chunk that lives for a handful of
   epochs and is freed — the paper reports 14 GB of cumulative
   allocation and credits the dynamic detector's 1.78x speedup on
   dedup to the reduction in vector-clock create/delete traffic (avg
   sharing only 1.7).  A global bucket table under per-bucket locks
   models the duplicate index.  No seeded races. *)

open Dgrace_sim

let chunk_bytes = 256
let out_bytes = 128
let buckets = 64

let program (p : Workload.params) () =
  let items = 250 * p.scale in
  let to_hash = Wutil.Handoff.create items in
  let to_compress = Wutil.Handoff.create items in
  let to_write = Wutil.Handoff.create items in
  let index = Sim.static_alloc (4 * buckets) in
  let bucket_locks = Array.init buckets (fun _ -> Sim.mutex ()) in
  let hasher () =
    for i = 0 to items - 1 do
      let chunk = Wutil.Handoff.take to_hash i in
      Wutil.touch_words ~loc:"dedup:hash" ~write:false chunk chunk_bytes;
      let b = i * 17 mod buckets in
      Sim.with_lock bucket_locks.(b) (fun () ->
          Sim.read ~loc:"dedup:index" (index + (4 * b)) 4;
          Sim.write ~loc:"dedup:index" (index + (4 * b)) 4);
      Wutil.Handoff.put to_compress i ~value:chunk
    done
  in
  let compressor () =
    for i = 0 to items - 1 do
      let chunk = Wutil.Handoff.take to_compress i in
      let out = Sim.malloc out_bytes in
      Wutil.touch_words ~loc:"dedup:compress-read" ~write:false chunk chunk_bytes;
      Wutil.touch_words ~loc:"dedup:compress-write" ~write:true out out_bytes;
      Sim.free chunk;
      Wutil.Handoff.put to_write i ~value:out
    done
  in
  let writer () =
    for i = 0 to items - 1 do
      let out = Wutil.Handoff.take to_write i in
      Wutil.touch_words ~loc:"dedup:write" ~write:false out out_bytes;
      Sim.free out
    done
  in
  let tids = List.map Sim.spawn [ hasher; compressor; writer ] in
  for i = 0 to items - 1 do
    let chunk = Sim.malloc chunk_bytes in
    Wutil.touch_words ~loc:"dedup:fragment" ~write:true chunk chunk_bytes;
    Wutil.Handoff.put to_hash i ~value:chunk
  done;
  List.iter Sim.join tids

let workload : Workload.t =
  {
    name = "dedup";
    description = "malloc/free-heavy pipeline with a locked bucket index";
    defaults = { threads = 4; scale = 1; seed = 17 };
    expected_races = 0;
    program;
  }
