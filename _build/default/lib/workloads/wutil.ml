open Dgrace_sim

let rng seed = Random.State.make [| seed; 0x6b43a9b5 |]

let spawn_workers n body =
  let tids = List.init n (fun i -> Sim.spawn (fun () -> body i)) in
  List.iter Sim.join tids

let touch_words ?(loc = "") ~write addr bytes =
  let op = if write then Sim.write else Sim.read in
  let a = ref addr in
  let hi = addr + bytes in
  while !a < hi do
    op ~loc !a (min 4 (hi - !a));
    a := !a + 4
  done

module Handoff = struct
  type t = { slots : int; flags : Sim.event_flag array }

  let create n = { slots = Sim.static_alloc (4 * n); flags = Array.init n (fun _ -> Sim.event ()) }

  (* The value channel is host-level; the simulated slot write/read
     models the shared-memory traffic and the event flag carries the
     happens-before edge. *)
  let values : (int * int, int) Hashtbl.t = Hashtbl.create 64

  let put t i ~value =
    Hashtbl.replace values (t.slots, i) value;
    Sim.write ~loc:"queue:put" (t.slots + (4 * i)) 4;
    Sim.event_set t.flags.(i)

  let take t i =
    Sim.event_wait t.flags.(i);
    Sim.read ~loc:"queue:take" (t.slots + (4 * i)) 4;
    match Hashtbl.find_opt values (t.slots, i) with
    | Some v -> v
    | None -> invalid_arg "Handoff.take before put"
end

module Counter = struct
  type t = { caddr : int; loc : string }

  let create ?(loc = "counter") () = { caddr = Sim.static_alloc 4; loc }

  let incr_locked t m =
    Sim.with_lock m (fun () ->
        Sim.read ~loc:t.loc t.caddr 4;
        Sim.write ~loc:t.loc t.caddr 4)

  let incr_racy t =
    Sim.read ~loc:t.loc t.caddr 4;
    Sim.write ~loc:t.loc t.caddr 4

  let addr t = t.caddr
end
