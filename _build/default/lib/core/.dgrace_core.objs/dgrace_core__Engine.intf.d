lib/core/engine.mli: Detector Dgrace_detectors Dgrace_events Dgrace_sim Event Format Report Run_stats Scheduler Seq Sim Spec Suppression
