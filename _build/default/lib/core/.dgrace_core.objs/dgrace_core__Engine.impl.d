lib/core/engine.ml: Accounting Detector Dgrace_detectors Dgrace_events Dgrace_shadow Dgrace_sim Format List Report Run_stats Seq Sim Spec Unix
