lib/core/spec.mli: Detector Dgrace_detectors Dgrace_events Suppression
