(** The analysis engine: run a simulated program (or a recorded event
    stream) under a detector and collect everything the evaluation
    needs — races, stream statistics, shadow-memory accounting and
    wall-clock time.

    This is the main entry point of the library:

    {[
      let summary =
        Engine.run ~spec:Spec.dynamic (fun () ->
          let a = Sim.malloc 64 in
          let t = Sim.spawn (fun () -> Sim.write a 4) in
          Sim.write a 4;
          Sim.join t)
      in
      List.iter (fun r -> print_endline (Report.to_string r)) summary.races
    ]} *)

open Dgrace_events
open Dgrace_detectors
open Dgrace_sim

type summary = {
  detector : string;  (** detector name *)
  races : Report.t list;  (** distinct-location races, detection order *)
  race_count : int;
  suppressed : int;  (** reports dropped by suppression rules *)
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;  (** wall-clock seconds for the instrumented run *)
  sim : Sim.result option;  (** simulator result (None for replays) *)
}

and mem_summary = {
  peak_bytes : int;  (** peak of hash + vector clock + bitmap bytes *)
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_vcs : int;  (** max vector clocks simultaneously live *)
  total_vcs : int;  (** vector clocks ever created *)
  avg_sharing : float;  (** average bytes sharing one vector clock *)
}

val run :
  ?policy:Scheduler.policy ->
  ?suppression:Suppression.t ->
  spec:Spec.t ->
  (unit -> unit) ->
  summary
(** Execute the program under the simulator, feeding every event to a
    fresh detector built from [spec]. *)

val replay :
  ?suppression:Suppression.t ->
  spec:Spec.t ->
  Event.t Seq.t ->
  summary
(** Analyse a pre-recorded event stream (see {!Dgrace_trace}). *)

val with_detector :
  ?policy:Scheduler.policy -> Detector.t -> (unit -> unit) -> summary
(** Like {!run} for an externally constructed detector. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line human-readable rendering. *)
