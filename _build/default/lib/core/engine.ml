open Dgrace_events
open Dgrace_detectors
open Dgrace_shadow
open Dgrace_sim

type summary = {
  detector : string;
  races : Report.t list;
  race_count : int;
  suppressed : int;
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;
  sim : Sim.result option;
}

and mem_summary = {
  peak_bytes : int;
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_vcs : int;
  total_vcs : int;
  avg_sharing : float;
}

let mem_of_account a =
  {
    peak_bytes = Accounting.peak_bytes a;
    peak_hash_bytes = Accounting.peak_hash_bytes a;
    peak_vc_bytes = Accounting.peak_vc_bytes a;
    peak_bitmap_bytes = Accounting.peak_bitmap_bytes a;
    peak_vcs = Accounting.peak_vcs a;
    total_vcs = Accounting.total_vcs_created a;
    avg_sharing = Accounting.avg_sharing a;
  }

let summarize (d : Detector.t) ~elapsed ~sim =
  {
    detector = d.name;
    races = Detector.races d;
    race_count = Detector.race_count d;
    suppressed = Report.Collector.suppressed d.collector;
    stats = d.stats;
    mem = mem_of_account d.account;
    elapsed;
    sim;
  }

let with_detector ?policy (d : Detector.t) program =
  let t0 = Unix.gettimeofday () in
  let sim = Sim.run ?policy ~sink:d.on_event program in
  d.finish ();
  let elapsed = Unix.gettimeofday () -. t0 in
  summarize d ~elapsed ~sim:(Some sim)

let run ?policy ?suppression ~spec program =
  with_detector ?policy (Spec.to_detector ?suppression spec) program

let replay ?suppression ~spec events =
  let d = Spec.to_detector ?suppression spec in
  let t0 = Unix.gettimeofday () in
  Seq.iter d.on_event events;
  d.finish ();
  let elapsed = Unix.gettimeofday () -. t0 in
  summarize d ~elapsed ~sim:None

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>detector: %s@,elapsed: %.3fs@,%a@," s.detector
    s.elapsed Run_stats.pp s.stats;
  Format.fprintf ppf
    "memory: peak=%dB (hash=%d vc=%d bitmap=%d) peak-vcs=%d avg-sharing=%.1f@,"
    s.mem.peak_bytes s.mem.peak_hash_bytes s.mem.peak_vc_bytes
    s.mem.peak_bitmap_bytes s.mem.peak_vcs s.mem.avg_sharing;
  Format.fprintf ppf "races: %d (%d suppressed)" s.race_count s.suppressed;
  List.iter (fun r -> Format.fprintf ppf "@,  %a" Report.pp r) s.races;
  Format.fprintf ppf "@]"
