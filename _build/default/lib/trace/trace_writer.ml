open Dgrace_events
open Trace_format

let sync_code = function
  | Event.Lock -> 0
  | Event.Barrier -> 1
  | Event.Flag -> 2
  | Event.Atomic -> 3

type t = {
  oc : out_channel;
  buf : Buffer.t;
  locs : (string, int) Hashtbl.t;
  mutable next_loc : int;
  mutable count : int;
}

let create oc =
  output_string oc magic;
  output_byte oc version;
  { oc; buf = Buffer.create 1024; locs = Hashtbl.create 64; next_loc = 0; count = 0 }

let loc_id t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some id -> (id, false)
  | None ->
    let id = t.next_loc in
    t.next_loc <- id + 1;
    Hashtbl.replace t.locs loc id;
    (id, true)

let flush_buf t =
  Buffer.output_buffer t.oc t.buf;
  Buffer.clear t.buf

let write t ev =
  let buf = t.buf in
  (match ev with
   | Event.Access { tid; kind; addr; size; loc } ->
     let tag = if kind = Event.Read then tag_read else tag_write in
     Buffer.add_char buf (Char.chr tag);
     write_varint buf tid;
     write_varint buf addr;
     write_varint buf size;
     let id, fresh = loc_id t loc in
     write_varint buf id;
     if fresh then begin
       write_varint buf (String.length loc);
       Buffer.add_string buf loc
     end
   | Event.Acquire { tid; lock; sync } ->
     Buffer.add_char buf (Char.chr tag_acquire);
     write_varint buf tid;
     write_varint buf lock;
     write_varint buf (sync_code sync)
   | Event.Release { tid; lock; sync } ->
     Buffer.add_char buf (Char.chr tag_release);
     write_varint buf tid;
     write_varint buf lock;
     write_varint buf (sync_code sync)
   | Event.Fork { parent; child } ->
     Buffer.add_char buf (Char.chr tag_fork);
     write_varint buf parent;
     write_varint buf child
   | Event.Join { parent; child } ->
     Buffer.add_char buf (Char.chr tag_join);
     write_varint buf parent;
     write_varint buf child
   | Event.Alloc { tid; addr; size } ->
     Buffer.add_char buf (Char.chr tag_alloc);
     write_varint buf tid;
     write_varint buf addr;
     write_varint buf size
   | Event.Free { tid; addr; size } ->
     Buffer.add_char buf (Char.chr tag_free);
     write_varint buf tid;
     write_varint buf addr;
     write_varint buf size
   | Event.Thread_exit { tid } ->
     Buffer.add_char buf (Char.chr tag_exit);
     write_varint buf tid);
  t.count <- t.count + 1;
  if Buffer.length buf >= 1 lsl 16 then flush_buf t

let sink t ev = write t ev
let events_written t = t.count

let close t =
  flush_buf t;
  close_out t.oc

let to_file path f =
  let oc = open_out_bin path in
  let t = create oc in
  match f (sink t) with
  | v ->
    let n = t.count in
    close t;
    (v, n)
  | exception e ->
    close t;
    raise e
