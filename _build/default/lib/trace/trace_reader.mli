(** Replays event streams recorded by {!Trace_writer}. *)

open Dgrace_events

val read : in_channel -> Event.t Seq.t
(** Lazy sequence of events; consumes the channel as it is forced.
    @raise Trace_format.Corrupt on a bad header or malformed event. *)

val fold_file : string -> ('a -> Event.t -> 'a) -> 'a -> 'a
(** [fold_file path f init] opens, folds over every event, and closes
    the file (also on exceptions). *)

val read_file : string -> Event.t list
(** Whole trace in memory — convenient for tests on small traces. *)
