lib/trace/trace_writer.ml: Buffer Char Dgrace_events Event Hashtbl String Trace_format
