lib/trace/trace_format.mli: Buffer
