lib/trace/trace_reader.mli: Dgrace_events Event Seq
