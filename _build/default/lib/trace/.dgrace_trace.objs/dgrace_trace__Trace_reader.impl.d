lib/trace/trace_reader.ml: Dgrace_events Event Hashtbl List Printf Seq String Trace_format
