lib/trace/trace_format.ml: Buffer Char
