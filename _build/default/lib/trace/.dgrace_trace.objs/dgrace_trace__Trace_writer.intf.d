lib/trace/trace_writer.mli: Dgrace_events Event
