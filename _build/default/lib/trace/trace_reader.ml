open Dgrace_events
open Trace_format

let sync_of_code = function
  | 0 -> Event.Lock
  | 1 -> Event.Barrier
  | 2 -> Event.Flag
  | 3 -> Event.Atomic
  | n -> raise (Corrupt (Printf.sprintf "bad sync kind %d" n))

type reader_state = {
  ic : in_channel;
  locs : (int, string) Hashtbl.t;
}

let check_header ic =
  let m = really_input_string ic (String.length magic) in
  if m <> magic then raise (Corrupt "bad magic");
  let v = input_byte ic in
  if v <> version then raise (Corrupt (Printf.sprintf "unsupported version %d" v))

let read_loc st =
  let id = read_varint st.ic in
  match Hashtbl.find_opt st.locs id with
  | Some loc -> loc
  | None ->
    let len = read_varint st.ic in
    let loc = really_input_string st.ic len in
    Hashtbl.replace st.locs id loc;
    loc

let read_event st =
  match input_byte st.ic with
  | exception End_of_file -> None
  | tag ->
    let ev =
      if tag = tag_read || tag = tag_write then begin
        let tid = read_varint st.ic in
        let addr = read_varint st.ic in
        let size = read_varint st.ic in
        let loc = read_loc st in
        let kind = if tag = tag_read then Event.Read else Event.Write in
        Event.Access { tid; kind; addr; size; loc }
      end
      else if tag = tag_acquire then begin
        let tid = read_varint st.ic in
        let lock = read_varint st.ic in
        Event.Acquire { tid; lock; sync = sync_of_code (read_varint st.ic) }
      end
      else if tag = tag_release then begin
        let tid = read_varint st.ic in
        let lock = read_varint st.ic in
        Event.Release { tid; lock; sync = sync_of_code (read_varint st.ic) }
      end
      else if tag = tag_fork then begin
        let parent = read_varint st.ic in
        Event.Fork { parent; child = read_varint st.ic }
      end
      else if tag = tag_join then begin
        let parent = read_varint st.ic in
        Event.Join { parent; child = read_varint st.ic }
      end
      else if tag = tag_alloc then begin
        let tid = read_varint st.ic in
        let addr = read_varint st.ic in
        Event.Alloc { tid; addr; size = read_varint st.ic }
      end
      else if tag = tag_free then begin
        let tid = read_varint st.ic in
        let addr = read_varint st.ic in
        Event.Free { tid; addr; size = read_varint st.ic }
      end
      else if tag = tag_exit then Event.Thread_exit { tid = read_varint st.ic }
      else raise (Corrupt (Printf.sprintf "unknown tag %d" tag))
    in
    Some ev

(* EOF after the tag byte means the record is cut short *)
let read_event st =
  try read_event st with End_of_file -> raise (Corrupt "truncated event")

let read ic =
  check_header ic;
  let st = { ic; locs = Hashtbl.create 64 } in
  let rec next () =
    match read_event st with
    | None -> Seq.Nil
    | Some ev -> Seq.Cons (ev, next)
  in
  next

let fold_file path f init =
  let ic = open_in_bin path in
  match Seq.fold_left f init (read ic) with
  | acc ->
    close_in ic;
    acc
  | exception e ->
    close_in ic;
    raise e

let read_file path = List.rev (fold_file path (fun acc ev -> ev :: acc) [])
