(** Records an event stream to a channel in the {!Trace_format}
    encoding.  Typical use: pass {!sink} as the simulator's event sink,
    then {!close}. *)

open Dgrace_events

type t

val create : out_channel -> t
(** Writes the header immediately. *)

val write : t -> Event.t -> unit

val sink : t -> Event.t -> unit
(** Same as {!write}, shaped for [Sim.run ~sink]. *)

val events_written : t -> int

val close : t -> unit
(** Flush and close the underlying channel. *)

val to_file : string -> ((Event.t -> unit) -> 'a) -> 'a * int
(** [to_file path f] opens [path], runs [f sink], closes, and returns
    [f]'s result with the number of events written.  The file is closed
    (and kept — partial traces are still replayable prefix-wise) even
    if [f] raises. *)
