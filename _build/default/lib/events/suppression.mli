(** Suppression rules for race reports.

    Industrial detectors ship suppression files for known-benign races
    in runtime libraries (DRD suppresses libc/ld by default; the paper
    applies the same rules to its detector, §V.C).  A rule matches on
    the source-location label of either endpoint. *)

type rule =
  | Loc_prefix of string
      (** contributes to suppression when an endpoint's location label
          starts with the given prefix, e.g. [Loc_prefix "libc:"]; a
          race is suppressed only when {e every} endpoint matches some
          prefix rule (a race between application code and runtime
          code is still an application race) *)
  | Addr_range of int * int
      (** suppress races whose address falls in [\[lo, hi)] *)

type t

val empty : t
(** Suppresses nothing. *)

val of_rules : rule list -> t

val default_runtime : t
(** The DRD-like default: suppresses labels prefixed ["libc:"],
    ["ld:"] and ["pthread:"]. *)

val add : t -> rule -> t

val matches : t -> addr:int -> locs:string list -> bool
(** [matches t ~addr ~locs] is true when the race should be hidden:
    [addr] falls in a suppressed range, or every endpoint label in
    [locs] matches a prefix rule. *)

val rules : t -> rule list
