type rule = Loc_prefix of string | Addr_range of int * int

type t = { rules : rule list }

let empty = { rules = [] }
let of_rules rules = { rules }

let default_runtime =
  of_rules [ Loc_prefix "libc:"; Loc_prefix "ld:"; Loc_prefix "pthread:" ]

let add t r = { rules = r :: t.rules }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let matches t ~addr ~locs =
  let addr_hit =
    List.exists
      (function Addr_range (lo, hi) -> addr >= lo && addr < hi | Loc_prefix _ -> false)
      t.rules
  in
  let loc_hit l =
    List.exists
      (function Loc_prefix p -> starts_with ~prefix:p l | Addr_range _ -> false)
      t.rules
  in
  (* a race is runtime-internal only when every endpoint is *)
  addr_hit || (locs <> [] && List.for_all loc_hit locs)
let rules t = t.rules
