lib/events/suppression.ml: List String
