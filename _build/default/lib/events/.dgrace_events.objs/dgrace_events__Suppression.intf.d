lib/events/suppression.mli:
