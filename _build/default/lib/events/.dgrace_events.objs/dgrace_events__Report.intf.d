lib/events/report.mli: Event Format Suppression
