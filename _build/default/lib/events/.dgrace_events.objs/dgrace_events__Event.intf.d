lib/events/event.mli: Format
