lib/events/event.ml: Format Printf
