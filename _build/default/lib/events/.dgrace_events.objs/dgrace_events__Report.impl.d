lib/events/report.ml: Event Format Hashtbl List Printf Suppression
