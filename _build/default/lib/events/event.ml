type access_kind = Read | Write
type sync_kind = Lock | Barrier | Flag | Atomic

type t =
  | Access of { tid : int; kind : access_kind; addr : int; size : int; loc : string }
  | Acquire of { tid : int; lock : int; sync : sync_kind }
  | Release of { tid : int; lock : int; sync : sync_kind }
  | Fork of { parent : int; child : int }
  | Join of { parent : int; child : int }
  | Alloc of { tid : int; addr : int; size : int }
  | Free of { tid : int; addr : int; size : int }
  | Thread_exit of { tid : int }

let pp_access_kind ppf = function
  | Read -> Format.pp_print_char ppf 'R'
  | Write -> Format.pp_print_char ppf 'W'

let sync_prefix = function
  | Lock -> "l"
  | Barrier -> "b"
  | Flag -> "f"
  | Atomic -> "a"

let pp ppf = function
  | Access { tid; kind; addr; size; loc } ->
    Format.fprintf ppf "%a t%d 0x%x+%d%s" pp_access_kind kind tid addr size
      (if loc = "" then "" else Printf.sprintf " (%s)" loc)
  | Acquire { tid; lock; sync } ->
    Format.fprintf ppf "acq t%d %s%d" tid (sync_prefix sync) lock
  | Release { tid; lock; sync } ->
    Format.fprintf ppf "rel t%d %s%d" tid (sync_prefix sync) lock
  | Fork { parent; child } -> Format.fprintf ppf "fork t%d -> t%d" parent child
  | Join { parent; child } -> Format.fprintf ppf "join t%d <- t%d" parent child
  | Alloc { tid; addr; size } -> Format.fprintf ppf "alloc t%d 0x%x+%d" tid addr size
  | Free { tid; addr; size } -> Format.fprintf ppf "free t%d 0x%x+%d" tid addr size
  | Thread_exit { tid } -> Format.fprintf ppf "exit t%d" tid

let to_string e = Format.asprintf "%a" pp e

let tid = function
  | Access { tid; _ } | Acquire { tid; _ } | Release { tid; _ }
  | Alloc { tid; _ } | Free { tid; _ } | Thread_exit { tid } -> tid
  | Fork { parent; _ } | Join { parent; _ } -> parent

let is_access = function Access _ -> true | _ -> false
