(** The per-operation event stream a detector consumes.

    This is the OCaml equivalent of the analysis callbacks a PIN tool
    registers: one event per shared memory access and one per
    synchronisation operation, in a single global order chosen by the
    simulator's scheduler.  Addresses are byte addresses in the
    simulated address space; [size] is the access width in bytes. *)

type access_kind = Read | Write

type sync_kind =
  | Lock  (** a mutex: participates in LockSet disciplines *)
  | Barrier  (** barrier arrival/departure *)
  | Flag  (** event-flag signal/wait (condition-variable style) *)
  | Atomic  (** C11-atomic style per-address synchronisation *)
(** What kind of sync object an acquire/release is on.  All kinds give
    the same happens-before edge; lockset-based detectors only treat
    [Lock] as a lock (a real tool knows the pthread API that was
    called, so the event stream records it too). *)

type t =
  | Access of {
      tid : int;
      kind : access_kind;
      addr : int;
      size : int;
      loc : string;  (** source-location label, for race reports *)
    }
  | Acquire of { tid : int; lock : int; sync : sync_kind }
      (** acquire side of a happens-before edge; [lock] is the sync
          object id *)
  | Release of { tid : int; lock : int; sync : sync_kind }
  | Fork of { parent : int; child : int }
      (** thread creation: everything the parent did so far
          happens-before everything the child does *)
  | Join of { parent : int; child : int }
      (** thread join: everything the child did happens-before
          everything the parent does next *)
  | Alloc of { tid : int; addr : int; size : int }
      (** dynamic allocation of [addr .. addr+size-1] *)
  | Free of { tid : int; addr : int; size : int }
      (** deallocation; detectors drop shadow state for the range *)
  | Thread_exit of { tid : int }

val pp_access_kind : Format.formatter -> access_kind -> unit

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g. [W t2 0x1a40+4 (worker:update)]. *)

val to_string : t -> string

val tid : t -> int
(** The thread performing the event ([parent] for fork/join). *)

val is_access : t -> bool
(** True for [Access _]. *)
