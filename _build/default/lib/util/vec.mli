(** Minimal growable arrays (OCaml 5.1 lacks [Dynarray]).

    Used for scheduler ready queues and shadow bookkeeping.  Removal by
    index is O(1) swap-with-last, which is exactly what a randomised
    scheduler wants and acceptable everywhere else we use it. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes and returns element [i], moving the last
    element into its place.  Order is not preserved. *)

val remove_ordered : 'a t -> int -> 'a
(** [remove_ordered v i] removes and returns element [i], shifting the
    tail left.  O(n), preserves order — used for FIFO scheduling. *)

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val find_index : ('a -> bool) -> 'a t -> int option
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
