lib/util/vec.mli:
