type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len
let is_empty v = v.len = 0

let grow v x =
  let cap = max 8 (2 * Array.length v.data) in
  let a = Array.make cap x in
  Array.blit v.data 0 a 0 v.len;
  v.data <- a

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let swap_remove v i =
  check v i;
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let remove_ordered v i =
  check v i;
  let x = v.data.(i) in
  for j = i to v.len - 2 do
    v.data.(j) <- v.data.(j + 1)
  done;
  v.len <- v.len - 1;
  x

let pop v = if v.len = 0 then None else Some (swap_remove v (v.len - 1))
let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do f v.data.(i) done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do acc := f !acc v.data.(i) done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let find_index p v =
  let rec loop i =
    if i >= v.len then None else if p v.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v
