type t = {
  mutable heap_next : int;
  mutable static_next : int;
  live : (int, int) Hashtbl.t;  (* addr -> size *)
  free_lists : (int, int list ref) Hashtbl.t;  (* size class -> addrs *)
  mutable live_bytes : int;
  mutable total_allocated : int;
  mutable alloc_count : int;
}

let create ?(heap_base = 0x1000_0000) ?(static_base = 0x1000) () =
  {
    heap_next = heap_base;
    static_next = static_base;
    live = Hashtbl.create 1024;
    free_lists = Hashtbl.create 32;
    live_bytes = 0;
    total_allocated = 0;
    alloc_count = 0;
  }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let round_up n align = (n + align - 1) land lnot (align - 1)

let size_class n =
  let rec loop c = if c >= n then c else loop (2 * c) in
  loop 8

let check_alloc_args n align =
  if n <= 0 then invalid_arg "Memory.alloc: non-positive size";
  if not (is_pow2 align) then invalid_arg "Memory.alloc: bad alignment"

let alloc t ?(align = 8) n =
  check_alloc_args n align;
  let cls = size_class n in
  let addr =
    match Hashtbl.find_opt t.free_lists cls with
    | Some ({ contents = a :: rest } as cell) when a land (align - 1) = 0 ->
      cell := rest;
      a
    | _ ->
      let a = round_up t.heap_next align in
      (* reserve the whole size class so recycling keeps blocks disjoint *)
      t.heap_next <- a + cls;
      a
  in
  Hashtbl.replace t.live addr n;
  t.live_bytes <- t.live_bytes + n;
  t.total_allocated <- t.total_allocated + n;
  t.alloc_count <- t.alloc_count + 1;
  addr

let alloc_static t ?(align = 8) n =
  check_alloc_args n align;
  let a = round_up t.static_next align in
  t.static_next <- a + n;
  a

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Memory.free: unknown address 0x%x" addr)
  | Some n ->
    Hashtbl.remove t.live addr;
    t.live_bytes <- t.live_bytes - n;
    let cls = size_class n in
    (match Hashtbl.find_opt t.free_lists cls with
     | Some cell -> cell := addr :: !cell
     | None -> Hashtbl.replace t.free_lists cls (ref [ addr ]));
    n

let size_of t addr = Hashtbl.find_opt t.live addr
let live_bytes t = t.live_bytes
let total_allocated t = t.total_allocated
let alloc_count t = t.alloc_count
