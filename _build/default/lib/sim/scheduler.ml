type policy =
  | Round_robin
  | Random_each of int
  | Chunked of { seed : int; chunk : int }

let default = Chunked { seed = 1; chunk = 64 }

let pp ppf = function
  | Round_robin -> Format.pp_print_string ppf "round-robin"
  | Random_each seed -> Format.fprintf ppf "random(seed=%d)" seed
  | Chunked { seed; chunk } -> Format.fprintf ppf "chunked(seed=%d,chunk=%d)" seed chunk

let to_string p = Format.asprintf "%a" pp p

type t = {
  policy : policy;
  rng : Random.State.t;
  mutable budget : int;  (* remaining ops in the current chunk *)
}

let create policy =
  let seed =
    match policy with
    | Round_robin -> 0
    | Random_each s -> s
    | Chunked { seed; _ } -> seed
  in
  { policy; rng = Random.State.make [| seed; 0x9e3779b9 |]; budget = 0 }

let pick t ~current ~ready_tids ~n =
  if n <= 0 then invalid_arg "Scheduler.pick: empty ready set";
  match t.policy with
  | Round_robin -> 0
  | Random_each _ -> Random.State.int t.rng n
  | Chunked { chunk; _ } ->
    let same =
      if t.budget > 0 && current >= 0 then
        let rec find i = if i >= n then None else if ready_tids i = current then Some i else find (i + 1) in
        find 0
      else None
    in
    (match same with
     | Some i ->
       t.budget <- t.budget - 1;
       i
     | None ->
       t.budget <- chunk;
       Random.State.int t.rng n)
