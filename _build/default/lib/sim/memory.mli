(** Simulated shared address space with a heap allocator.

    Stands in for the target program's heap and globals: detectors only
    care about addresses, sizes and alignment, so we model memory as an
    allocator over a flat byte-addressed space and never store data.

    Freed blocks are recycled through power-of-two free lists, so
    allocation-heavy workloads (dedup) reuse addresses — exactly the
    behaviour that forces a race detector to retire shadow state on
    [free] and that the paper credits for the dynamic detector's
    speedup on dedup. *)

type t

val create : ?heap_base:int -> ?static_base:int -> unit -> t
(** Fresh address space.  The heap grows from [heap_base] (default
    [0x1000_0000]); static/global data from [static_base] (default
    [0x1000]). *)

val alloc : t -> ?align:int -> int -> int
(** [alloc t n] returns the base address of a fresh block of [n] bytes
    aligned to [align] (default 8).  Recycles freed blocks of the same
    size class when available.
    @raise Invalid_argument if [n <= 0] or [align] is not a power of two. *)

val alloc_static : t -> ?align:int -> int -> int
(** Like {!alloc} but from the static region; never recycled and not
    meant to be freed — models globals and [.bss]. *)

val free : t -> int -> int
(** [free t addr] releases a block previously returned by {!alloc} and
    returns its size.  @raise Invalid_argument on unknown or
    double-freed addresses. *)

val size_of : t -> int -> int option
(** Size of the live block at exactly [addr], if any. *)

val live_bytes : t -> int
(** Bytes currently allocated (heap only). *)

val total_allocated : t -> int
(** Cumulative bytes ever allocated (heap only) — the paper's "1.7 GB
    average, 14 GB in dedup" figure is this counter. *)

val alloc_count : t -> int
(** Number of [alloc] calls so far. *)
