(** Scheduling policies for the cooperative simulator.

    Every simulated operation is a potential preemption point; the
    policy decides which ready thread runs next.  All policies are
    deterministic given their seed, so a workload run is exactly
    reproducible — the property that lets us feed {e identical}
    interleavings to every detector under comparison. *)

type policy =
  | Round_robin
      (** FIFO among ready threads: switch after every operation. *)
  | Random_each of int
      (** [Random_each seed]: uniformly random ready thread after every
          operation. *)
  | Chunked of { seed : int; chunk : int }
      (** [Chunked {seed; chunk}]: keep running the same thread for
          [chunk] operations before switching to a random ready thread.
          Chunky interleavings are what real schedulers produce and
          what makes DJIT+-style epochs long; this is the default used
          by the benchmark workloads. *)

val default : policy
(** [Chunked { seed = 1; chunk = 64 }]. *)

val pp : Format.formatter -> policy -> unit
val to_string : policy -> string

(** Internal picker state used by the simulator. *)
type t

val create : policy -> t

val pick : t -> current:int -> ready_tids:(int -> int) -> n:int -> int
(** [pick t ~current ~ready_tids ~n] chooses the index (in [0..n-1]) of
    the next runnable to execute, where [ready_tids i] gives the thread
    id of runnable [i].  [current] is the thread that just ran (or -1). *)
