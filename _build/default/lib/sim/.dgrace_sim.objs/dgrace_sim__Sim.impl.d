lib/sim/sim.ml: Dgrace_events Dgrace_util Dgrace_vclock Effect Event Hashtbl List Memory Printf Scheduler
