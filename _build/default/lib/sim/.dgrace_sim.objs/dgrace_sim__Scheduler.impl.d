lib/sim/scheduler.ml: Format Random
