lib/sim/memory.mli:
