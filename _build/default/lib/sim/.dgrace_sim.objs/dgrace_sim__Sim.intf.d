lib/sim/sim.mli: Dgrace_events Event Scheduler
