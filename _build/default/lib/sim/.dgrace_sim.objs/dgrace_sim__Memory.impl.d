lib/sim/memory.ml: Hashtbl Printf
