lib/sim/scheduler.mli: Format
