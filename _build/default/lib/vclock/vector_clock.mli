(** Vector clocks (Fidge/Mattern logical time) over thread ids.

    A vector clock maps every thread id to the logical clock of that
    thread as last known to the clock's owner.  Thread ids index a
    growable array; entries beyond the stored length are implicitly 0,
    so clocks for executions with few threads stay small.

    All mutating operations update the clock in place — detectors own
    their clocks and copy explicitly where sharing would be unsound. *)

type t
(** A mutable vector clock. *)

val create : ?capacity:int -> unit -> t
(** A fresh clock with every component 0.  [capacity] pre-sizes the
    underlying array (default 4); it does not affect semantics. *)

val get : t -> int -> int
(** [get vc tid] is the component for [tid] (0 if never set). *)

val set : t -> int -> int -> unit
(** [set vc tid c] assigns component [tid], growing storage as needed.
    @raise Invalid_argument on negative [tid] or [c]. *)

val tick : t -> int -> unit
(** [tick vc tid] increments component [tid] by one. *)

val size : t -> int
(** Number of stored components (indices [0 .. size-1] are backed by
    storage; all components at and beyond [size] are 0). *)

val copy : t -> t
(** An independent copy. *)

val assign : t -> t -> unit
(** [assign dst src] makes [dst] equal to [src] component-wise. *)

val join : t -> t -> unit
(** [join dst src] sets [dst] to the element-wise maximum of [dst] and
    [src] — the vector-clock update performed by lock acquire/release
    and fork/join edges. *)

val leq : t -> t -> bool
(** [leq a b] is the happens-before partial order: every component of
    [a] is [<=] the corresponding component of [b]. *)

val equal : t -> t -> bool
(** Component-wise equality (trailing zeros ignored, so clocks of
    different capacities compare correctly). *)

val epoch_leq : Epoch.t -> t -> bool
(** [epoch_leq e vc] is [Epoch.clock e <= get vc (Epoch.tid e)] — the
    FastTrack O(1) ordering test between a last-access epoch and a
    thread clock.  {!Epoch.none} is ordered before everything. *)

val of_epoch : Epoch.t -> t
(** A vector clock that is 0 everywhere except the epoch's component. *)

val max_tid_set : t -> int
(** Largest tid with a non-zero component, or -1 if the clock is 0. *)

val heap_words : t -> int
(** Approximate heap footprint in machine words (array + record
    headers), used by the shadow-memory accounting of Table 2. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f vc acc] folds [f tid clock] over non-zero components. *)

val pp : Format.formatter -> t -> unit
(** Prints [<c0, c1, ...>] up to the last non-zero component. *)

val to_string : t -> string
