type t = { mutable clocks : int array }

let create ?(capacity = 4) () =
  let capacity = max capacity 1 in
  { clocks = Array.make capacity 0 }

let get vc tid = if tid < Array.length vc.clocks then vc.clocks.(tid) else 0

let grow vc needed =
  let cap = max needed (2 * Array.length vc.clocks) in
  let a = Array.make cap 0 in
  Array.blit vc.clocks 0 a 0 (Array.length vc.clocks);
  vc.clocks <- a

let set vc tid c =
  if tid < 0 then invalid_arg "Vector_clock.set: negative tid";
  if c < 0 then invalid_arg "Vector_clock.set: negative clock";
  if tid >= Array.length vc.clocks then grow vc (tid + 1);
  vc.clocks.(tid) <- c

let tick vc tid = set vc tid (get vc tid + 1)
let size vc = Array.length vc.clocks
let copy vc = { clocks = Array.copy vc.clocks }

let assign dst src =
  let n = Array.length src.clocks in
  if n > Array.length dst.clocks then dst.clocks <- Array.make n 0
  else Array.fill dst.clocks 0 (Array.length dst.clocks) 0;
  Array.blit src.clocks 0 dst.clocks 0 n

let join dst src =
  let n = Array.length src.clocks in
  (* grow exactly to [n], never beyond: growing to amortised capacity
     here would let two clocks that repeatedly join each other (thread
     and lock clocks under contention) double one another's storage on
     every round — exponential blow-up *)
  if n > Array.length dst.clocks then begin
    let a = Array.make n 0 in
    Array.blit dst.clocks 0 a 0 (Array.length dst.clocks);
    dst.clocks <- a
  end;
  for i = 0 to n - 1 do
    if src.clocks.(i) > dst.clocks.(i) then dst.clocks.(i) <- src.clocks.(i)
  done

let leq a b =
  let rec loop i =
    if i >= Array.length a.clocks then true
    else if a.clocks.(i) > get b i then false
    else loop (i + 1)
  in
  loop 0

let equal a b =
  let n = max (Array.length a.clocks) (Array.length b.clocks) in
  let rec loop i = i >= n || (get a i = get b i && loop (i + 1)) in
  loop 0

let epoch_leq e vc = Epoch.clock e <= get vc (Epoch.tid e)

let of_epoch e =
  let vc = create ~capacity:(Epoch.tid e + 1) () in
  set vc (Epoch.tid e) (Epoch.clock e);
  vc

let max_tid_set vc =
  let rec loop i = if i < 0 then -1 else if vc.clocks.(i) > 0 then i else loop (i - 1) in
  loop (Array.length vc.clocks - 1)

(* record header+field (2) + array header (1) + cells *)
let heap_words vc = 3 + Array.length vc.clocks

let fold f vc acc =
  let acc = ref acc in
  for i = 0 to Array.length vc.clocks - 1 do
    if vc.clocks.(i) <> 0 then acc := f i vc.clocks.(i) !acc
  done;
  !acc

let pp ppf vc =
  let last = max_tid_set vc in
  Format.pp_print_string ppf "<";
  for i = 0 to last do
    if i > 0 then Format.pp_print_string ppf ", ";
    Format.pp_print_int ppf vc.clocks.(i)
  done;
  Format.pp_print_string ppf ">"

let to_string vc = Format.asprintf "%a" pp vc
