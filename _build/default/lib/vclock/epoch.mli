(** Epochs: the [c@t] scalar-pair representation of a thread's last access.

    FastTrack (Flanagan & Freund, PLDI 2009) observes that most accesses
    can be summarised by the {e last} access alone, written [c@t] for
    logical clock [c] of thread [t].  We pack the pair into a single
    immediate integer so that an epoch costs no allocation at all, which
    is what gives FastTrack its O(1) common case. *)

type t = private int
(** A packed epoch.  The low {!tid_bits} bits hold the thread id, the
    remaining bits hold the logical clock.  Exposed as [private int] so
    epochs can be compared with [=] and stored unboxed. *)

val tid_bits : int
(** Number of bits reserved for the thread id (10, i.e. up to 1024
    threads per execution). *)

val max_tid : int
(** Largest representable thread id, [2^tid_bits - 1]. *)

val none : t
(** The distinguished "no access yet" epoch.  [tid none] is 0 and
    [clock none] is 0; no real access ever has clock 0 (thread clocks
    start at 1), so [none] is unambiguous. *)

val make : tid:int -> clock:int -> t
(** [make ~tid ~clock] packs an epoch.  @raise Invalid_argument if
    [tid] is negative or exceeds {!max_tid}, or if [clock] is negative. *)

val tid : t -> int
(** Thread id component. *)

val clock : t -> int
(** Logical clock component. *)

val is_none : t -> bool
(** [is_none e] is [e = none]. *)

val equal : t -> t -> bool
(** Structural equality (same thread and same clock). *)

val pp : Format.formatter -> t -> unit
(** Prints [c@t], or [-] for {!none}. *)

val to_string : t -> string
(** String form of {!pp}. *)
