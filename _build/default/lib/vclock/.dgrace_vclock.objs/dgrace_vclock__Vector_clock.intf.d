lib/vclock/vector_clock.mli: Epoch Format
