lib/vclock/vector_clock.ml: Array Epoch Format
