lib/vclock/epoch.ml: Format Printf
