type t = int

let tid_bits = 10
let max_tid = (1 lsl tid_bits) - 1
let none = 0

let make ~tid ~clock =
  if tid < 0 || tid > max_tid then
    invalid_arg (Printf.sprintf "Epoch.make: tid %d out of range" tid);
  if clock < 0 then invalid_arg "Epoch.make: negative clock";
  (clock lsl tid_bits) lor tid

let tid e = e land max_tid
let clock e = e lsr tid_bits
let is_none e = e = none
let equal (a : t) (b : t) = a = b

let pp ppf e =
  if is_none e then Format.pp_print_string ppf "-"
  else Format.fprintf ppf "%d@@%d" (clock e) (tid e)

let to_string e = Format.asprintf "%a" pp e
