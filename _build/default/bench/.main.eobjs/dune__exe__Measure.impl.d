bench/measure.ml: Dgrace_core Dgrace_detectors Dgrace_events Dgrace_sim Dgrace_workloads Engine Float Hashtbl List Option Spec Suppression Workload
