bench/main.ml: Analyze Array Bechamel Benchmark Dgrace_core Dgrace_sim Dgrace_workloads Hashtbl Instance List Measure Option Printf Spec Staged String Sys Tables Test Time
