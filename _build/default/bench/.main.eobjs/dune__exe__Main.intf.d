bench/main.mli:
