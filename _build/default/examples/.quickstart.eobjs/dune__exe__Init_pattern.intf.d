examples/init_pattern.mli:
