examples/quickstart.mli:
