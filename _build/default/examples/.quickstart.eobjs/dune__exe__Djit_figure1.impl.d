examples/djit_figure1.ml: Dgrace_core Dgrace_detectors Dgrace_events Dgrace_sim Dgrace_vclock Engine Event List Printf Report Scheduler Sim Spec
