examples/racy_queue.ml: Array Dgrace_core Dgrace_sim Engine List Printf Sim Spec
