examples/init_pattern.ml: Array Dgrace_core Dgrace_events Dgrace_sim Engine List Printf Sim Spec
