examples/racy_queue.mli:
