examples/quickstart.ml: Dgrace_core Dgrace_events Dgrace_sim Engine Format List Printf Report Sim Spec
