examples/djit_figure1.mli:
