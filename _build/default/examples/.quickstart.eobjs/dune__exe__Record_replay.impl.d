examples/record_replay.ml: Dgrace_core Dgrace_detectors Dgrace_trace Dgrace_workloads Engine Filename List Option Printf Registry Spec Sys Trace_reader Trace_writer Unix Workload
