(* A realistic producer/consumer pipeline with one subtle bug, analysed
   by every detector in the suite — a side-by-side view of their
   different verdicts (precision, misses, false alarms).

     dune exec examples/racy_queue.exe *)

open Dgrace_core
open Dgrace_sim

let items = 64
let item_bytes = 64

let program () =
  let ready = Array.init items (fun _ -> Sim.event ()) in
  let slots = Sim.static_alloc (8 * items) in
  let processed = Sim.static_alloc 4 in
  let stats_lock = Sim.mutex () in
  let producer () =
    for i = 0 to items - 1 do
      let buf = Sim.malloc item_bytes in
      Sim.write ~loc:"producer:fill" buf item_bytes;
      Sim.write ~loc:"queue:slot" (slots + (8 * i)) 8;
      Sim.event_set ready.(i)
    done
  in
  let consumer c =
    let i = ref c in
    while !i < items do
      Sim.event_wait ready.(!i);
      Sim.read ~loc:"queue:slot" (slots + (8 * !i)) 8;
      (* the consumer reads the item it was handed: race-free thanks to
         the event-flag edge *)
      Sim.read ~loc:"consumer:process" (slots + (8 * !i)) 8;
      (* the bug: "processed++" takes the lock only on even items *)
      if !i land 1 = 0 then
        Sim.with_lock stats_lock (fun () ->
            Sim.read ~loc:"consumer:processed" processed 4;
            Sim.write ~loc:"consumer:processed" processed 4)
      else begin
        Sim.read ~loc:"consumer:processed-bug" processed 4;
        Sim.write ~loc:"consumer:processed-bug" processed 4
      end;
      i := !i + 2
    done
  in
  let p = Sim.spawn producer in
  let c1 = Sim.spawn (fun () -> consumer 0) in
  let c2 = Sim.spawn (fun () -> consumer 1) in
  List.iter Sim.join [ p; c1; c2 ]

let () =
  Printf.printf "%-14s %8s %10s %10s  %s\n" "detector" "races" "time(ms)"
    "peak KB" "verdict";
  List.iter
    (fun spec ->
      let s = Engine.run ~spec program in
      let verdict =
        match (Spec.name spec, s.race_count) with
        | "eraser", n when n > 1 -> "lockset discipline: false alarms"
        | "eraser", 1 -> "found the inconsistent lock"
        | _, 1 -> "exactly the seeded bug"
        | _, 0 -> "missed it"
        | _, _ -> "extra reports"
      in
      Printf.printf "%-14s %8d %10.2f %10d  %s\n" s.detector s.race_count
        (1000. *. s.elapsed)
        (s.mem.peak_bytes / 1024)
        verdict)
    [
      Spec.byte; Spec.word; Spec.dynamic;
      Spec.Djit { granularity = 4 };
      Spec.Drd; Spec.Inspector; Spec.Eraser;
    ]
