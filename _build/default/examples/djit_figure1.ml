(* The paper's Figure 1, reproduced: two threads, a lock [s] and a
   shared variable [x].  Thread 0 writes x under the lock; thread 1
   then acquires the lock but writes x *after* releasing nothing — the
   second write is concurrent with the first and DJIT+ flags it.

   The example prints the vector clocks as they evolve, matching the
   figure's annotations.

     dune exec examples/djit_figure1.exe *)

open Dgrace_core
open Dgrace_sim
open Dgrace_events

let () =
  let x = ref 0 in
  let trace = ref [] in
  let program () =
    x := Sim.static_alloc 4;
    let s = Sim.mutex () in
    let t1 =
      Sim.spawn (fun () ->
          (* thread 1: lock(s); ...; unlock(s); write(x)  — the write
             happens outside the critical section *)
          Sim.with_lock s (fun () -> ());
          Sim.write ~loc:"fig1:t1-write-x" !x 4)
    in
    (* thread 0: lock(s); write(x); unlock(s) *)
    Sim.with_lock s (fun () -> Sim.write ~loc:"fig1:t0-write-x" !x 4);
    Sim.join t1
  in
  (* record the stream so we can narrate it, then analyse it *)
  let events = ref [] in
  let _ = Sim.run ~policy:Scheduler.Round_robin ~sink:(fun e -> events := e :: !events) program in
  trace := List.rev !events;

  print_endline "event stream (paper Fig. 1, T0 and T1 with lock s):";
  List.iter (fun e -> Printf.printf "  %s\n" (Event.to_string e)) !trace;

  (* replay under DJIT+ and under FastTrack-dynamic: both must report
     the same single write-write race on x *)
  print_newline ();
  List.iter
    (fun spec ->
      let s = Engine.replay ~spec (List.to_seq !trace) in
      Printf.printf "%s: %d race(s)\n" s.detector s.race_count;
      List.iter (fun r -> Printf.printf "  %s\n" (Report.to_string r)) s.races)
    [ Spec.Djit { granularity = 4 }; Spec.dynamic ];

  (* narrate the clocks like the figure: T0 and T1 vector clocks around
     the synchronisation *)
  print_newline ();
  print_endline "clock evolution (c.f. Fig. 1 annotations):";
  let env = Dgrace_detectors.Vc_env.create () in
  List.iter
    (fun e ->
      (match e with
       | Event.Acquire { tid; lock; _ } ->
         Dgrace_detectors.Vc_env.acquire env ~tid ~lock
       | Event.Release { tid; lock; _ } ->
         Dgrace_detectors.Vc_env.release env ~tid ~lock
       | Event.Fork { parent; child } ->
         Dgrace_detectors.Vc_env.fork env ~parent ~child
       | Event.Join { parent; child } ->
         Dgrace_detectors.Vc_env.join env ~parent ~child
       | _ -> ());
      Printf.printf "  %-28s T0=%s T1=%s\n" (Event.to_string e)
        (Dgrace_vclock.Vector_clock.to_string
           (Dgrace_detectors.Vc_env.clock_of env 0))
        (Dgrace_vclock.Vector_clock.to_string
           (Dgrace_detectors.Vc_env.clock_of env 1)))
    !trace
