(* Quickstart: write a tiny multithreaded program against the simulator
   API, run it under the dynamic-granularity detector, and print the
   races it finds.

     dune exec examples/quickstart.exe *)

open Dgrace_core
open Dgrace_sim
open Dgrace_events

(* A worker pool sums into per-worker slots (fine) and into one shared
   total without a lock (the bug). *)
let program () =
  let slots = Sim.static_alloc (4 * 4) in
  let total = Sim.static_alloc 4 in
  let m = Sim.mutex () in
  let workers =
    List.init 4 (fun w ->
        Sim.spawn (fun () ->
            for _ = 1 to 100 do
              (* private slot: no lock needed, no race *)
              Sim.read ~loc:"worker:slot" (slots + (4 * w)) 4;
              Sim.write ~loc:"worker:slot" (slots + (4 * w)) 4
            done;
            (* aggregate under the lock ... *)
            Sim.with_lock m (fun () ->
                Sim.read ~loc:"worker:total" total 4;
                Sim.write ~loc:"worker:total" total 4);
            (* ... but the final "progress" poke forgets the lock *)
            Sim.write ~loc:"worker:progress-bug" total 4))
  in
  List.iter Sim.join workers

let () =
  let summary = Engine.run ~spec:Spec.dynamic program in
  Format.printf "%a@." Engine.pp_summary summary;
  match summary.races with
  | [] -> print_endline "no races found (unexpected!)"
  | races ->
    Printf.printf "\n%d race(s); the first one:\n  %s\n" (List.length races)
      (Report.to_string (List.hd races))
