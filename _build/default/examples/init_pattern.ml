(* The initialisation pattern the paper's Init state is designed for:
   an array is zeroed wholesale, then its elements are updated under
   per-element locks.  The example prints the shadow-memory footprint
   of the byte detector, the dynamic detector, and the two Table 5
   ablations, showing where the savings come from.

     dune exec examples/init_pattern.exe *)

open Dgrace_core
open Dgrace_sim

let words = 4096
let rounds = 4

let program () =
  let arr = Sim.static_alloc (4 * words) in
  let locks = Array.init 16 (fun _ -> Sim.mutex ()) in
  (* init: one thread zeroes everything in a single epoch *)
  Sim.write ~loc:"init:zero-out" arr (4 * words);
  (* contiguous partitions; the block lock is held across the whole
     64-word block, so the block's elements stay in one epoch and can
     share one clock *)
  let block = words / 16 in
  let worker w =
    let lo = w * (words / 4) and hi = (w + 1) * (words / 4) in
    for _round = 1 to rounds do
      let b = ref (lo / block) in
      while !b * block < hi do
        Sim.with_lock locks.(!b) (fun () ->
            for i = !b * block to min hi ((!b + 1) * block) - 1 do
              Sim.read ~loc:"update" (arr + (4 * i)) 4;
              Sim.write ~loc:"update" (arr + (4 * i)) 4
            done);
        incr b
      done
    done
  in
  let ts = List.init 4 (fun w -> Sim.spawn (fun () -> worker w)) in
  List.iter Sim.join ts

let () =
  Printf.printf "%-28s %8s %10s %12s %12s\n" "detector" "races" "peak VCs"
    "VC bytes" "avg share";
  List.iter
    (fun spec ->
      let s = Engine.run ~spec program in
      Printf.printf "%-28s %8d %10d %12d %12.1f\n" s.detector s.race_count
        s.mem.peak_vcs s.mem.peak_vc_bytes s.mem.avg_sharing)
    [
      Spec.byte;
      Spec.word;
      Spec.dynamic;
      Spec.Dynamic { init_state = true; init_sharing = false };
      Spec.Dynamic { init_state = false; init_sharing = false };
    ];
  print_newline ();
  print_endline
    "ft-dynamic shares one clock across the whole zero-out (Init state),";
  print_endline
    "then re-coalesces per-lock groups at the second epoch.  Disabling the";
  print_endline
    "Init state makes the sharing decision once, at first access — cheaper";
  print_endline
    "to decide but wrong for this pattern: watch its false alarms.";
  print_newline ();
  (* show one of the no-Init-state false alarms explicitly *)
  let s =
    Engine.run ~spec:(Spec.Dynamic { init_state = false; init_sharing = false })
      program
  in
  match s.races with
  | r :: _ ->
    Printf.printf "no-Init-state false alarm example:\n  %s\n"
      (Dgrace_events.Report.to_string r)
  | [] -> print_endline "(no false alarm in this interleaving)"
