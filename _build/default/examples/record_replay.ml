(* Record once, analyse many times: run a workload recording its event
   stream to a compact trace file, then replay the identical
   interleaving through several detectors.  This is how the benchmark
   methodology guarantees every detector sees the same execution.

     dune exec examples/record_replay.exe *)

open Dgrace_core
open Dgrace_workloads
open Dgrace_trace

let () =
  let w = Option.get (Registry.find "pbzip2") in
  let path = Filename.temp_file "pbzip2" ".trace" in
  let sim, n =
    Trace_writer.to_file path (fun sink ->
        ignore (Workload.run ~sink w))
  in
  ignore sim;
  let bytes = (Unix.stat path).Unix.st_size in
  Printf.printf "recorded %s: %d events, %d bytes (%.1f bytes/event)\n\n"
    w.Workload.name n bytes
    (float_of_int bytes /. float_of_int (max n 1));

  Printf.printf "%-14s %8s %12s\n" "detector" "races" "same-epoch";
  List.iter
    (fun spec ->
      let events = Trace_reader.fold_file path (fun acc e -> e :: acc) [] in
      let s = Engine.replay ~spec (List.to_seq (List.rev events)) in
      Printf.printf "%-14s %8d %11.0f%%\n" s.detector s.race_count
        (100. *. Dgrace_detectors.Run_stats.same_epoch_ratio s.stats))
    [ Spec.byte; Spec.word; Spec.dynamic; Spec.Drd ];
  Sys.remove path
