(* Measurement core shared by every table: run (workload × detector)
   and cache the result, since Tables 1–4 all read the same runs.

   Methodology notes (see EXPERIMENTS.md):
   - time is the minimum wall clock over [reps] runs of the identical
     (seeded) interleaving; "slowdown" is relative to the same run
     under the null detector, which is the paper's base time;
   - memory is the explicit shadow-structure accounting (the paper
     measures "based on object size" the same way);
   - suppression rules: our FastTrack-family detectors run with the
     DRD-like default rules, DRD/Inspector run unsuppressed — the
     paper's §V.C setup. *)

open Dgrace_core
open Dgrace_workloads
open Dgrace_events

type m = {
  elapsed : float;
  mem : Engine.mem_summary;
  same_epoch_ratio : float;
  accesses : int;
  races : int;
  suppressed : int;
  sim_threads : int;
  sim_accesses : int;
  total_allocated : int;
}

let scale = ref 4
let reps = ref 3

(* Full summaries of every (workload x detector) run this process made,
   for the self-describing BENCH metrics export. *)
let summaries : (string * string, Engine.summary) Hashtbl.t = Hashtbl.create 64

let suppression_for = function
  | Spec.Drd | Spec.Inspector | Spec.Eraser -> Suppression.empty
  | _ -> Suppression.default_runtime

let cache : (string * string, m) Hashtbl.t = Hashtbl.create 64

let run_once (w : Workload.t) spec =
  let p = Workload.with_params ~scale:!scale w in
  Engine.run
    ~policy:(Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 })
    ~suppression:(suppression_for spec) ~spec
    (w.program p)

let get (w : Workload.t) spec =
  let key = (w.name, Spec.name spec) in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
    let best = ref None in
    for _ = 1 to !reps do
      let s = run_once w spec in
      match !best with
      | Some (b : Engine.summary) when b.elapsed <= s.elapsed -> ()
      | _ -> best := Some s
    done;
    let s = Option.get !best in
    Hashtbl.replace summaries key s;
    let sim = Option.get s.sim in
    let m =
      {
        elapsed = s.elapsed;
        mem = s.mem;
        same_epoch_ratio = Dgrace_detectors.Run_stats.same_epoch_ratio s.stats;
        accesses = s.stats.accesses;
        races = s.race_count;
        suppressed = s.suppressed;
        sim_threads = sim.threads;
        sim_accesses = sim.accesses;
        total_allocated = sim.total_allocated;
      }
    in
    Hashtbl.replace cache key m;
    m

let slowdown w spec =
  let base = (get w Spec.No_detection).elapsed in
  let t = (get w spec).elapsed in
  if base <= 0. then Float.nan else t /. base

(* memory relative to the byte detector, the paper's reference point *)
let mem_vs_byte w spec =
  let byte = (get w Spec.byte).mem.peak_bytes in
  let m = (get w spec).mem.peak_bytes in
  if byte = 0 then Float.nan else float_of_int m /. float_of_int byte

let geomean = Dgrace_util.Stat.geomean
let kb n = n / 1024

(* Everything measured so far as one versioned document: each run is
   the same JSON body [racedet run --metrics-out] writes, so BENCH
   trajectories carry their own schema. *)
let metrics_json () =
  let module Json = Dgrace_obs.Json in
  let runs =
    Hashtbl.fold
      (fun (wname, dname) s acc -> ((wname, dname), s) :: acc)
      summaries []
    |> List.sort compare
    |> List.map (fun ((wname, _), s) ->
        match Engine.summary_to_json ~workload:(Json.String wname) s with
        | Json.Obj fields ->
          (* strip the per-run envelope; the document carries one *)
          Json.Obj
            (List.filter
               (fun (k, _) ->
                 k <> Dgrace_obs.Export.version_key
                 && k <> "kind" && k <> "generator")
               fields)
        | other -> other)
  in
  Dgrace_obs.Export.envelope ~kind:"bench"
    [
      ("scale", Json.Int !scale);
      ("reps", Json.Int !reps);
      ("runs", Json.List runs);
    ]
