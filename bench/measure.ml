(* Measurement core shared by every table: run (workload × detector)
   and cache the result, since Tables 1–4 all read the same runs.

   Methodology notes (see EXPERIMENTS.md):
   - time is the minimum wall clock over [reps] runs of the identical
     (seeded) interleaving; "slowdown" is relative to the same run
     under the null detector, which is the paper's base time;
   - memory is the explicit shadow-structure accounting (the paper
     measures "based on object size" the same way);
   - suppression rules: our FastTrack-family detectors run with the
     DRD-like default rules, DRD/Inspector run unsuppressed — the
     paper's §V.C setup. *)

open Dgrace_core
open Dgrace_workloads
open Dgrace_events

type m = {
  elapsed : float;
  mem : Engine.mem_summary;
  same_epoch_ratio : float;
  accesses : int;
  races : int;
  suppressed : int;
  sim_threads : int;
  sim_accesses : int;
  total_allocated : int;
}

let scale = ref 4
let reps = ref 3

let shards = ref 1
(* With [--shards K > 1] every measured analysis run becomes a sharded
   replay of the workload's recorded stream (doc/parallel.md) — same
   races, same columns; only timing and the par.* metrics move.  The
   CI bench-smoke job diffs the race columns of a 1-shard and a
   4-shard run of table1 to keep that equivalence locked in. *)

(* Full summaries of every (workload x detector) run this process made,
   for the self-describing BENCH metrics export. *)
let summaries : (string * string, Engine.summary) Hashtbl.t = Hashtbl.create 64

let suppression_for = function
  | Spec.Drd | Spec.Inspector | Spec.Eraser -> Suppression.empty
  | _ -> Suppression.default_runtime

let cache : (string * string, m) Hashtbl.t = Hashtbl.create 64

(* One recorded event stream per workload at the current scale: the
   sharded measurements replay the identical trace for every detector
   and shard count. *)
let recordings : (string, Event.t array * Dgrace_sim.Sim.result) Hashtbl.t =
  Hashtbl.create 16

let recorded (w : Workload.t) =
  match Hashtbl.find_opt recordings w.name with
  | Some r -> r
  | None ->
    let p = Workload.with_params ~scale:!scale w in
    let buf = ref [] in
    let sim =
      Workload.run
        ~policy:(Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 })
        ~params:p
        ~sink:(fun ev -> buf := ev :: !buf)
        w
    in
    let r = (Array.of_list (List.rev !buf), sim) in
    Hashtbl.replace recordings w.name r;
    r

let replay_sharded_once (w : Workload.t) spec ~mode ~shards =
  let events, _ = recorded w in
  (* DGRACE_BENCH_NO_BATCH=1 forces the per-event dispatch path, for
     separating format/dispatch effects from detector changes when a
     timing table moves *)
  let batched = Sys.getenv_opt "DGRACE_BENCH_NO_BATCH" = None in
  Engine.replay_sharded ~batched ~mode ~suppression:(suppression_for spec)
    ~shards ~spec (Array.to_seq events)

let run_once (w : Workload.t) spec =
  if !shards > 1 then
    replay_sharded_once w spec ~mode:Dgrace_par.Par.Parallel ~shards:!shards
  else begin
    let p = Workload.with_params ~scale:!scale w in
    Engine.run
      ~policy:(Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 })
      ~suppression:(suppression_for spec) ~spec
      (w.program p)
  end

let get (w : Workload.t) spec =
  let key = (w.name, Spec.name spec) in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
    let best = ref None in
    for _ = 1 to !reps do
      let s = run_once w spec in
      match !best with
      | Some (b : Engine.summary) when b.elapsed <= s.elapsed -> ()
      | _ -> best := Some s
    done;
    let s = Option.get !best in
    Hashtbl.replace summaries key s;
    let sim =
      match s.sim with Some sim -> sim | None -> snd (recorded w)
    in
    let m =
      {
        elapsed = s.elapsed;
        mem = s.mem;
        same_epoch_ratio = Dgrace_detectors.Run_stats.same_epoch_ratio s.stats;
        accesses = s.stats.accesses;
        races = s.race_count;
        suppressed = s.suppressed;
        sim_threads = sim.threads;
        sim_accesses = sim.accesses;
        total_allocated = sim.total_allocated;
      }
    in
    Hashtbl.replace cache key m;
    m

(* full summary of the cached best run, for readers that need the
   detector's own instruments (the vclock table reads vclock.* gauges) *)
let summary (w : Workload.t) spec =
  ignore (get w spec : m);
  Hashtbl.find summaries (w.name, Spec.name spec)

let gauge w spec name =
  match List.assoc_opt name (Dgrace_obs.Metrics.gauges (summary w spec).metrics) with
  | Some v -> v
  | None -> 0

let slowdown w spec =
  let base = (get w Spec.No_detection).elapsed in
  let t = (get w spec).elapsed in
  if base <= 0. then Float.nan else t /. base

(* memory relative to the byte detector, the paper's reference point *)
let mem_vs_byte w spec =
  let byte = (get w Spec.byte).mem.peak_bytes in
  let m = (get w spec).mem.peak_bytes in
  if byte = 0 then Float.nan else float_of_int m /. float_of_int byte

let geomean = Dgrace_util.Stat.geomean
let kb n = n / 1024

(* ------------------------------------------------------------------ *)
(* Critical-path measurement for the par table.  Shards run back to
   back on the calling domain ([Sequential] mode) so each shard's busy
   time is uncontended; the critical path — the max per-shard busy
   time — is the analysis time a machine with one free core per shard
   would observe.  That keeps the speedup column meaningful on
   core-starved CI runners too (EXPERIMENTS.md records the method). *)

type par_m = {
  p_events : int;  (** events in the recorded trace *)
  p_critical_s : float;  (** max per-shard analysis time, min over reps *)
  p_split_s : float;  (** trace-routing time for that best rep *)
  p_races : int;
}

let par_cache : (string * string * int, par_m) Hashtbl.t = Hashtbl.create 32

let gauge_s (s : Engine.summary) name =
  match List.assoc_opt name (Dgrace_obs.Metrics.gauges s.metrics) with
  | Some v -> float_of_int v /. 1e6
  | None -> Float.nan

let par_get (w : Workload.t) spec ~shards:k =
  let key = (w.name, Spec.name spec, k) in
  match Hashtbl.find_opt par_cache key with
  | Some m -> m
  | None ->
    let best = ref None in
    for _ = 1 to !reps do
      let s =
        replay_sharded_once w spec ~mode:Dgrace_par.Par.Sequential ~shards:k
      in
      let c = gauge_s s "par.critical_path_us" in
      match !best with
      | Some (bc, _) when bc <= c -> ()
      | _ -> best := Some (c, s)
    done;
    let c, s = Option.get !best in
    let m =
      {
        p_events = Array.length (fst (recorded w));
        p_critical_s = c;
        p_split_s = gauge_s s "par.split_us";
        p_races = s.race_count;
      }
    in
    Hashtbl.replace par_cache key m;
    m

(* Everything measured so far as one versioned document: each run is
   the same JSON body [racedet run --metrics-out] writes, so BENCH
   trajectories carry their own schema. *)
let metrics_json () =
  let module Json = Dgrace_obs.Json in
  let runs =
    Hashtbl.fold
      (fun (wname, dname) s acc -> ((wname, dname), s) :: acc)
      summaries []
    |> List.sort compare
    |> List.map (fun ((wname, _), s) ->
        match Engine.summary_to_json ~workload:(Json.String wname) s with
        | Json.Obj fields ->
          (* strip the per-run envelope; the document carries one *)
          Json.Obj
            (List.filter
               (fun (k, _) ->
                 k <> Dgrace_obs.Export.version_key
                 && k <> "kind" && k <> "generator")
               fields)
        | other -> other)
  in
  Dgrace_obs.Export.envelope ~kind:"bench"
    [
      ("scale", Json.Int !scale);
      ("reps", Json.Int !reps);
      ("shards", Json.Int !shards);
      ("runs", Json.List runs);
    ]
