(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation section.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 fig4  # a subset
     dune exec bench/main.exe -- --scale 8    # bigger workloads
     dune exec bench/main.exe -- --bechamel   # Bechamel timing runs,
                                              # one Test per table
     dune exec bench/main.exe -- --metrics-out BENCH.json
                                              # dump every measured run
                                              # as versioned JSON

   The Bechamel mode measures the wall-clock cost of the measurement
   kernel behind each table (workload x detector analysis runs) with
   bechamel's monotonic clock; the table mode prints the paper-style
   rows.  EXPERIMENTS.md records the paper-vs-measured comparison. *)

let all_tables : (string * (unit -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("table6", Tables.table6);
    ("par", Tables.par);
    ("trace", Tables.trace);
    ("batch", Tables.batch);
    ("pipeline", Tables.pipeline);
    ("vclock", Vclock_bench.run);
    ("ext", Tables.ext);
    ("related", Tables.related);
    ("sampling", Tables.sampling);
    ("sampling-scaled", Tables.sampling_scaled);
    ("threads", Tables.threads);
    ("csv", Tables.csv);
    ("fig1", Tables.fig1);
    ("fig4", Tables.fig4);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel: one Test.make per table.  Each test's kernel is a single
   fresh (workload x detector) analysis run representative of that
   table, so bechamel reports a stable per-run cost. *)

let kernel_run spec wname =
  let w = Option.get (Dgrace_workloads.Registry.find wname) in
  fun () ->
    ignore
      (Dgrace_core.Engine.run
         ~policy:(Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 })
         ~spec
         (w.Dgrace_workloads.Workload.program w.defaults)
        : Dgrace_core.Engine.summary)

let bechamel_tests () =
  let open Bechamel in
  let open Dgrace_core in
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"table1-byte-facesim" (Staged.stage (kernel_run Spec.byte "facesim"));
      Test.make ~name:"table1-dynamic-facesim" (Staged.stage (kernel_run Spec.dynamic "facesim"));
      Test.make ~name:"table2-dynamic-dedup" (Staged.stage (kernel_run Spec.dynamic "dedup"));
      Test.make ~name:"table3-dynamic-pbzip2" (Staged.stage (kernel_run Spec.dynamic "pbzip2"));
      Test.make ~name:"table4-byte-streamcluster" (Staged.stage (kernel_run Spec.byte "streamcluster"));
      Test.make ~name:"table5-noinit-x264"
        (Staged.stage
           (kernel_run (Spec.Dynamic { init_state = false; init_sharing = false }) "x264"));
      Test.make ~name:"table6-drd-hmmsearch" (Staged.stage (kernel_run Spec.Drd "hmmsearch"));
      Test.make ~name:"table6-inspector-ferret" (Staged.stage (kernel_run Spec.Inspector "ferret"));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  List.iter
    (fun instance ->
      let tbl = Analyze.all ols instance raw in
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl [] in
      List.iter
        (fun (name, v) ->
          match Analyze.OLS.estimates v with
          | Some (est :: _) ->
            Printf.printf "%-36s %12.3f ms/run (%s)\n" name (est /. 1e6)
              (Bechamel.Measure.label instance)
          | Some [] | None -> Printf.printf "%-36s (no estimate)\n" name)
        (List.sort compare rows))
    instances

(* ------------------------------------------------------------------ *)
(* --faults: the resilience acceptance matrix — every fault mode under
   five seeds, asserting the recover-or-declare contract holds while
   the benchmark workloads are in the loop. *)

let run_faults () =
  let open Dgrace_core in
  let w = Option.get (Dgrace_workloads.Registry.find "dedup") in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  Printf.printf "\n== fault injection (workload=%s, %d seeds x %d modes) ==\n"
    w.Dgrace_workloads.Workload.name (List.length seeds)
    (List.length Fault_harness.all);
  let failures = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun fault ->
          let outcome =
            Fault_harness.run ~seed
              ~program:(w.Dgrace_workloads.Workload.program w.defaults)
              fault
          in
          if not (Fault_harness.acceptable outcome) then incr failures;
          Printf.printf "  seed=%-3d %-11s %s\n%!" seed
            (Fault_harness.name fault)
            (Fault_harness.describe outcome))
        Fault_harness.all)
    seeds;
  if !failures > 0 then begin
    Printf.eprintf "bench: --faults: %d contract violation(s)\n" !failures;
    exit 1
  end
  else Printf.printf "all injections recovered or declared\n"

let metrics_out = ref None

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse sel = function
    | [] -> List.rev sel
    | "--scale" :: n :: rest ->
      Measure.scale := int_of_string n;
      parse sel rest
    | "--reps" :: n :: rest ->
      Measure.reps := int_of_string n;
      parse sel rest
    | "--shards" :: n :: rest ->
      let k = int_of_string n in
      if k < 1 then begin
        Printf.eprintf "--shards must be >= 1\n";
        exit 1
      end;
      Measure.shards := k;
      parse sel rest
    | "--metrics-out" :: file :: rest ->
      metrics_out := Some file;
      parse sel rest
    | "--bechamel" :: rest ->
      run_bechamel ();
      parse sel rest
    | "--faults" :: rest ->
      run_faults ();
      parse sel rest
    | name :: rest when List.mem_assoc name all_tables -> parse (name :: sel) rest
    | other :: _ ->
      Printf.eprintf
        "unknown argument %S; expected: %s, --scale N, --reps N, --shards K, \
         --bechamel, --faults, --metrics-out FILE\n"
        other
        (String.concat ", " (List.map fst all_tables));
      exit 1
  in
  let selected = parse [] args in
  let selected =
    if selected = [] && args = [] then
      (* csv is opt-in output, sampling-scaled is a long-running demo *)
      List.filter
        (fun n -> n <> "csv" && n <> "sampling-scaled")
        (List.map fst all_tables)
    else selected
  in
  Printf.printf
    "dgrace benchmark harness — scale=%d reps=%d shards=%d (threads/workload \
     defaults)\n"
    !Measure.scale !Measure.reps !Measure.shards;
  List.iter (fun name -> (List.assoc name all_tables) ()) selected;
  match !metrics_out with
  | None -> ()
  | Some file ->
    Dgrace_obs.Json.to_file file (Measure.metrics_json ());
    Printf.eprintf "bench metrics written to %s\n" file
