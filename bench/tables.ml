(* The paper's evaluation, regenerated: one printer per table/figure.
   Absolute numbers differ from the paper (our substrate is a
   simulator, not the authors' Core Duo + PIN testbed); the *shape* —
   who wins, by what factor, where the crossovers are — is the
   reproduction target, recorded in EXPERIMENTS.md. *)

open Dgrace_core
open Dgrace_workloads

let line = String.make 110 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

let byte = Spec.byte
let word = Spec.word
let dynamic = Spec.dynamic
let grans = [ ("Byte", byte); ("Word", word); ("Dynamic", dynamic) ]

(* Recorded streams as trace-v2 files, for the tables that replay from
   disk (the pipelined-replay gate and Table 1's footer).  One temp
   file per workload, shared across tables, removed at exit. *)
let v2_files : (string, string) Hashtbl.t = Hashtbl.create 16

let v2_file (w : Workload.t) =
  match Hashtbl.find_opt v2_files w.name with
  | Some p -> p
  | None ->
    let events, _ = Measure.recorded w in
    let p = Filename.temp_file ("dgrace_" ^ w.name) ".trace.v2" in
    let (), _ =
      Dgrace_trace.Trace_format_v2.to_file p (fun sink ->
          Array.iter sink events)
    in
    at_exit (fun () -> try Sys.remove p with Sys_error _ -> ());
    Hashtbl.replace v2_files w.name p;
    p

let replay_v2_inline ?suppression path =
  (* the PR 8 batched path: decode and detect alternate on one domain;
     clustering off so the baseline predates this PR entirely *)
  Engine.replay_batches ?suppression ~page_cluster:false ~spec:Spec.dynamic
    (fun consume ->
      Dgrace_trace.Trace_format_v2.fold_batches path (fun () b -> consume b) ())

(* ------------------------------------------------------------------ *)

let table1 () =
  header
    "Table 1. Overall results: FastTrack with byte / word / dynamic granularity";
  Printf.printf "%-14s %10s %4s %9s | %7s %7s %7s | %8s %8s %8s | %6s %6s %6s\n"
    "program" "accesses" "thr" "base(ms)" "slw-B" "slw-W" "slw-D" "memB-KB"
    "memW-KB" "memD-KB" "racB" "racW" "racD";
  let slows = Hashtbl.create 8 and mems = Hashtbl.create 8 in
  List.iter
    (fun (w : Workload.t) ->
      let base = Measure.get w Spec.No_detection in
      Printf.printf "%-14s %10d %4d %9.1f |" w.name base.sim_accesses
        base.sim_threads (1000. *. base.elapsed);
      List.iter
        (fun (n, g) ->
          let s = Measure.slowdown w g in
          Hashtbl.replace slows (n, w.name) s;
          Printf.printf " %7.2f" s)
        grans;
      Printf.printf " |";
      List.iter
        (fun (n, g) ->
          let m = Measure.get w g in
          Hashtbl.replace mems (n, w.name) m.mem.peak_bytes;
          Printf.printf " %8d" (Measure.kb m.mem.peak_bytes))
        grans;
      Printf.printf " |";
      List.iter (fun (_, g) -> Printf.printf " %6d" (Measure.get w g).races) grans;
      print_newline ())
    Registry.all;
  let avg f = Measure.geomean (List.map f Registry.all) in
  Printf.printf "%-14s %10s %4s %9s |" "geomean" "" "" "";
  List.iter (fun (_, g) -> Printf.printf " %7.2f" (avg (fun w -> Measure.slowdown w g))) grans;
  Printf.printf " |";
  List.iter
    (fun (_, g) ->
      Printf.printf " %8.2f" (avg (fun w -> Measure.mem_vs_byte w g)))
    grans;
  Printf.printf "  (memory relative to byte)\n";
  let dyn_vs_byte =
    avg (fun w -> Measure.slowdown w byte /. Measure.slowdown w dynamic)
  in
  let dyn_vs_word =
    avg (fun w -> Measure.slowdown w word /. Measure.slowdown w dynamic)
  in
  Printf.printf
    "\ndynamic is %.2fx faster than byte and %.2fx than word (paper: 1.43x, 1.25x);\n"
    dyn_vs_byte dyn_vs_word;
  Printf.printf "dynamic uses %.0f%% less memory than byte (paper: 60%%).\n"
    (100. *. (1. -. avg (fun w -> Measure.mem_vs_byte w dynamic)));
  (* detector-only ratio: replay the recorded trace (no simulation in
     the loop) and compare per-shard busy time, byte vs dynamic *)
  let det_only =
    avg (fun w ->
        let b = (Measure.par_get w byte ~shards:1).p_critical_s in
        let d = (Measure.par_get w dynamic ~shards:1).p_critical_s in
        if d > 0. then b /. d else Float.nan)
  in
  Printf.printf
    "detector-time-only (trace replay): dynamic is %.2fx faster than byte.\n"
    det_only;
  (* detector time off disk: replaying the v2 trace file through the
     decode→detect pipeline (PR 10) vs inline decode, small subset.
     Modelled as in the `pipeline` table (which runs the full gated
     comparison): the pipeline's critical path is max(decode-only,
     detect-only), the time a machine with a free core for the
     decoder would observe. *)
  let det_pipe =
    Measure.geomean
      (List.filter_map
         (fun name ->
           Option.map
             (fun w ->
               let path = v2_file w in
               let supp = Measure.suppression_for dynamic in
               let events, _ = Measure.recorded w in
               let bs =
                 Dgrace_trace.Trace_shard.batches_of
                   (Array.mapi (fun i ev -> (i, ev)) events)
               in
               let seq = replay_v2_inline ~suppression:supp path in
               let t0 = Unix.gettimeofday () in
               Dgrace_trace.Trace_format_v2.fold_batches path
                 (fun () (_ : Dgrace_events.Batch.t) -> ())
                 ();
               let d = Unix.gettimeofday () -. t0 in
               let det =
                 Engine.replay_batches ~suppression:supp ~page_cluster:true
                   ~spec:dynamic (fun consume -> Array.iter consume bs)
               in
               let critical = Float.max d det.Engine.elapsed in
               if critical > 0. then seq.elapsed /. critical else Float.nan)
             (Registry.find name))
         [ "ffmpeg"; "dedup"; "x264" ])
  in
  Printf.printf
    "replayed from a v2 trace file, the decode→detect pipeline's critical \
     path is a further %.2fx over inline decode (3-workload subset; see the \
     `pipeline` table).\n"
    det_pipe;
  (* interned-VC memory (PR 5): how much of the dynamic detector's
     clock storage is deduplicated snapshots, and how hard they share *)
  let interned_kb =
    List.fold_left
      (fun acc w -> acc + Measure.kb (Measure.get w dynamic).mem.peak_interned_bytes)
      0 Registry.all
  in
  let dedup =
    avg (fun w ->
        let interns = Measure.gauge w dynamic "vclock.interns" in
        let stored = max 1 (interns - Measure.gauge w dynamic "vclock.intern_hits") in
        float_of_int (max 1 interns) /. float_of_int stored)
  in
  Printf.printf
    "interned VC snapshots (dynamic): %d KB peak across the suite, %.1fx \
     dedup (intern calls per stored snapshot).\n"
    interned_kb dedup

(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2. Memory overhead split: hash / vector clock / bitmap (KB)";
  Printf.printf "%-14s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n" "program"
    "B-hash" "B-vc" "B-bmap" "W-hash" "W-vc" "W-bmap" "D-hash" "D-vc" "D-bmap";
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%-14s |" w.name;
      List.iter
        (fun (_, g) ->
          let m = (Measure.get w g).mem in
          Printf.printf " %8d %8d %8d"
            (Measure.kb m.peak_hash_bytes)
            (Measure.kb m.peak_vc_bytes)
            (Measure.kb m.peak_bitmap_bytes);
          print_string " |")
        grans;
      print_newline ())
    Registry.all;
  print_endline
    "\nshape check: D-vc << B-vc (the paper's ~4x saving on vector clocks);";
  print_endline "B-hash ~ D-hash (dynamic does not save on indexing, paper §V.A)."

(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3. Maximum number of vector clocks present, and average sharing";
  Printf.printf "%-14s %10s %10s %10s %14s\n" "program" "Byte" "Word" "Dynamic"
    "avg sharing(D)";
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%-14s %10d %10d %10d %14.1f\n" w.name
        (Measure.get w byte).mem.peak_vcs (Measure.get w word).mem.peak_vcs
        (Measure.get w dynamic).mem.peak_vcs
        (Measure.get w dynamic).mem.avg_sharing)
    Registry.all;
  print_endline
    "\nshape check: byte ~ word on word-access programs (paper Table 3),";
  print_endline "dynamic collapses clock counts by 10-1000x; pbzip2 shares widest."

(* ------------------------------------------------------------------ *)

let table4 () =
  header "Table 4. Same-epoch access ratio vs slowdown";
  Printf.printf "%-14s | %8s %8s %8s | %8s %8s %8s\n" "program" "slw-B" "slw-W"
    "slw-D" "same-B" "same-W" "same-D";
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%-14s |" w.name;
      List.iter (fun (_, g) -> Printf.printf " %8.2f" (Measure.slowdown w g)) grans;
      Printf.printf " |";
      List.iter
        (fun (_, g) ->
          Printf.printf " %7.0f%%" (100. *. (Measure.get w g).same_epoch_ratio))
        grans;
      print_newline ())
    Registry.all;
  print_endline
    "\nshape check: performance gains track the same-epoch ratio (paper §V.A);";
  print_endline
    "streamcluster jumps from ~30% (byte) to ~60%+ (dynamic), canneal stays flat."

(* ------------------------------------------------------------------ *)

let table5 () =
  header "Table 5. State machine ablations (paper Table 5)";
  let no_init_sharing = Spec.Dynamic { init_state = true; init_sharing = false } in
  let no_init_state = Spec.Dynamic { init_state = false; init_sharing = false } in
  Printf.printf "%-14s | %12s %12s | %10s %10s\n" "program" "mem:no-share"
    "mem:share" "races:noIS" "races:full";
  List.iter
    (fun (w : Workload.t) ->
      let m_nosh = (Measure.get w no_init_sharing).mem.peak_bytes in
      let m_full = (Measure.get w dynamic).mem.peak_bytes in
      let r_nois = (Measure.get w no_init_state).races in
      let r_full = (Measure.get w dynamic).races in
      Printf.printf "%-14s | %11dK %11dK | %10d %10d\n" w.name
        (Measure.kb m_nosh) (Measure.kb m_full) r_nois r_full)
    Registry.all;
  print_endline
    "\nshape check: sharing at Init lowers peak memory (left pair);";
  print_endline
    "removing the Init state (single first-epoch decision) adds false alarms";
  print_endline "(right pair), the paper's argument for the two-decision design."

(* ------------------------------------------------------------------ *)

let table6 () =
  header "Table 6. Valgrind-DRD-style and Inspector-style tools vs dynamic";
  let specs =
    [ ("drd", Spec.Drd); ("inspector", Spec.Inspector); ("ft-dynamic", dynamic) ]
  in
  Printf.printf "%-14s |" "program";
  List.iter (fun (n, _) -> Printf.printf " %9s-slw %9s-mem %9s-rac |" n n n) specs;
  print_newline ();
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%-14s |" w.name;
      List.iter
        (fun (_, g) ->
          let m = Measure.get w g in
          Printf.printf " %13.2f %12dK %13d |" (Measure.slowdown w g)
            (Measure.kb m.mem.peak_bytes) m.races)
        specs;
      print_newline ())
    Registry.all;
  let avg f = Measure.geomean (List.map f Registry.all) in
  let rel spec =
    avg (fun w -> Measure.slowdown w spec /. Measure.slowdown w dynamic)
  in
  let relmem spec =
    avg (fun w ->
        float_of_int (Measure.get w spec).mem.peak_bytes
        /. float_of_int (Measure.get w dynamic).mem.peak_bytes)
  in
  Printf.printf
    "\nDRD is %.1fx slower than dynamic (paper: 2.2x); Inspector is %.1fx slower\n"
    (rel Spec.Drd) (rel Spec.Inspector);
  Printf.printf
    "and uses %.1fx the memory (paper: 2.8x).  DRD memory is %.1fx dynamic's.\n"
    (relmem Spec.Inspector) (relmem Spec.Drd)

(* ------------------------------------------------------------------ *)

let ext () =
  header
    "Extension (paper SVII future work): resharing after the 2nd epoch + write-guided reads";
  Printf.printf "%-14s | %8s %8s | %10s %10s | %6s %6s\n" "program" "dyn-slw"
    "ext-slw" "dyn-VCs" "ext-VCs" "dyn-r" "ext-r";
  List.iter
    (fun (w : Workload.t) ->
      let d = Measure.get w dynamic and e = Measure.get w Spec.Dynamic_ext in
      Printf.printf "%-14s | %8.2f %8.2f | %10d %10d | %6d %6d\n" w.name
        (Measure.slowdown w dynamic)
        (Measure.slowdown w Spec.Dynamic_ext)
        d.mem.peak_vcs e.mem.peak_vcs d.races e.races)
    Registry.all;
  print_endline
    "\nthe extensions are race-neutral on the suite; they pay off on programs";
  print_endline
    "whose sharing opportunities only appear after the second epoch (see the";
  print_endline "dynamic.extension unit tests for the targeted patterns)."

(* thread scaling: vector clocks are O(n) in DJIT+ but O(1) in the
   FastTrack family — visible as DJIT+'s memory growing with the
   worker count while the epoch-based detectors stay flat *)
let threads () =
  header "Thread scaling: epoch O(1) vs full-vector-clock O(n) state";
  let counts = [ 2; 4; 8; 16; 32 ] in
  (* every thread touches every location under a lock: each DJIT+
     location clock accumulates one component per thread, while the
     FastTrack family keeps a single last-access epoch *)
  let kernel nthreads () =
    let open Dgrace_sim in
    let words = 512 in
    let arr = Sim.static_alloc (4 * words) in
    let m = Sim.mutex () in
    let worker _ =
      for round = 1 to 3 do
        ignore round;
        for i = 0 to words - 1 do
          Sim.with_lock m (fun () ->
              Sim.read (arr + (4 * i)) 4;
              Sim.write (arr + (4 * i)) 4)
        done
      done
    in
    let ts = List.init nthreads (fun i -> Sim.spawn (fun () -> worker i)) in
    List.iter Sim.join ts
  in
  Printf.printf "%-10s" "threads";
  List.iter (fun n -> Printf.printf " | %8s-slw %8s-vcKB" n n)
    [ "djit"; "byte"; "dynamic" ];
  print_newline ();
  List.iter
    (fun t ->
      let base = (Engine.run ~spec:Spec.No_detection (kernel t)).elapsed in
      Printf.printf "%-10d" t;
      List.iter
        (fun spec ->
          let s = Engine.run ~spec (kernel t) in
          Printf.printf " | %12.2f %12d"
            (if base > 0. then s.elapsed /. base else Float.nan)
            (s.mem.peak_vc_bytes / 1024))
        [ Spec.Djit { granularity = 4 }; byte; dynamic ];
      print_newline ())
    counts;
  print_endline
    "\nshape check: DJIT+'s clock bytes grow with the thread count (O(n) per";
  print_endline
    "location); the epoch-based byte/dynamic detectors stay nearly flat (O(1))."

(* one flat CSV with every (workload x detector) measurement, for
   external plotting *)
let csv () =
  let specs =
    [ Spec.No_detection; byte; word; dynamic;
      Spec.Dynamic { init_state = true; init_sharing = false };
      Spec.Dynamic { init_state = false; init_sharing = false };
      Spec.Dynamic_ext; Spec.Djit { granularity = 4 }; Spec.Drd;
      Spec.Inspector; Spec.Eraser; Spec.Multirace;
      Spec.Racetrack { region = 64 }; Spec.Literace ]
  in
  print_endline
    "workload,detector,slowdown,elapsed_s,peak_bytes,peak_hash,peak_vc,peak_bitmap,peak_vcs,avg_sharing,same_epoch_ratio,accesses,races,suppressed";
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun spec ->
          let m = Measure.get w spec in
          Printf.printf "%s,%s,%.4f,%.6f,%d,%d,%d,%d,%d,%.2f,%.4f,%d,%d,%d\n"
            w.name (Spec.name spec)
            (Measure.slowdown w spec)
            m.elapsed m.mem.peak_bytes m.mem.peak_hash_bytes m.mem.peak_vc_bytes
            m.mem.peak_bitmap_bytes m.mem.peak_vcs m.mem.avg_sharing
            m.same_epoch_ratio m.accesses m.races m.suppressed)
        specs)
    Registry.all

let related () =
  header
    "Related work (paper SVI): RaceTrack-style adaptive, LiteRace-style sampling, MultiRace";
  let specs =
    [ ("byte", byte); ("racetrack", Spec.Racetrack { region = 64 });
      ("literace", Spec.Literace); ("multirace", Spec.Multirace) ]
  in
  Printf.printf "%-14s |" "program";
  List.iter (fun (n, _) -> Printf.printf " %10s-r %8s-slw |" n n) specs;
  print_newline ();
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%-14s |" w.name;
      List.iter
        (fun (_, g) ->
          let m = Measure.get w g in
          Printf.printf " %12d %12.2f |" m.races (Measure.slowdown w g))
        specs;
      print_newline ())
    Registry.all;
  print_endline
    "\nshape check: RaceTrack-style refinement misses one-shot/rare races";
  print_endline
    "(ferret) and conflates packed fields (ffmpeg, like word granularity);";
  print_endline
    "LiteRace's sampling is fast but loses most of x264's hot races;";
  print_endline
    "MultiRace matches the happens-before verdict on discipline-violating";
  print_endline "locations while suppressing Eraser-only alarms."

let fig1 () =
  header "Figure 1. DJIT+ example execution (clock evolution and the race)";
  let open Dgrace_sim in
  let open Dgrace_events in
  let x = ref 0 in
  let program () =
    x := Sim.static_alloc 4;
    let s = Sim.mutex () in
    let t1 =
      Sim.spawn (fun () ->
          Sim.with_lock s (fun () -> ());
          Sim.write ~loc:"t1:write-x" !x 4)
    in
    Sim.with_lock s (fun () -> Sim.write ~loc:"t0:write-x" !x 4);
    Sim.join t1
  in
  let events = ref [] in
  let _ = Sim.run ~policy:Scheduler.Round_robin ~sink:(fun e -> events := e :: !events) program in
  let events = List.rev !events in
  let env = Dgrace_detectors.Vc_env.create () in
  List.iter
    (fun e ->
      ignore (Dgrace_detectors.Vc_env.handle env e ~on_boundary:(fun _ -> ()) : bool);
      Printf.printf "  %-28s T0=%-10s T1=%s\n" (Event.to_string e)
        (Dgrace_vclock.Vector_clock.to_string (Dgrace_detectors.Vc_env.clock_of env 0))
        (Dgrace_vclock.Vector_clock.to_string (Dgrace_detectors.Vc_env.clock_of env 1)))
    events;
  let s = Engine.replay ~spec:(Spec.Djit { granularity = 4 }) (List.to_seq events) in
  List.iter (fun r -> Printf.printf "\n  DJIT+ reports: %s\n" (Report.to_string r)) s.races

(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Figure 4. Indexing-array expansion: m/4 word slots -> m byte slots";
  let open Dgrace_shadow in
  let run_stream name accesses =
    let a = Accounting.create () in
    let t : int Shadow_table.t = Shadow_table.create ~mode:Shadow_table.Adaptive ~account:a () in
    List.iter
      (fun (addr, size) ->
        Shadow_table.ensure_granularity t ~addr ~size;
        Shadow_table.set t addr 1)
      accesses;
    Printf.printf "  %-34s entries=%4d index-bytes=%7d\n" name
      (Shadow_table.entry_count t) (Shadow_table.bytes t)
  in
  (* identical 16 KiB address span for all three streams *)
  let n = 4096 in
  run_stream "all word-aligned accesses"
    (List.init n (fun i -> (0x10000 + (4 * i), 4)));
  run_stream "1% unaligned byte accesses"
    (List.init n (fun i ->
         if i mod 100 = 0 then (0x10000 + (4 * i) + 1, 1) else (0x10000 + (4 * i), 4)));
  run_stream "all byte accesses"
    (List.init n (fun i -> (0x10000 + (4 * i) + 1, 1)));
  print_endline
    "\nshape check: indexing cost grows ~4x only for the entries that actually";
  print_endline "see byte accesses (the paper's adaptive m/4 -> m expansion)."

(* ------------------------------------------------------------------ *)

(* The flight recorder's acceptance gate (doc/observability.md): replay
   the identical recorded trace with the tracer off and on, min over
   reps on both sides.  The traced run carries everything `racedet
   replay --trace-out` would — engine spans, the sampled
   detector.on_event dispatch timer, the gated per-phase timers — so
   the ratio is the full cost a profiling user pays.  Race reports
   must be bit-identical and the exported document must pass the
   Chrome_trace validator; either failing, or the geomean ratio
   exceeding the 1.05 budget, exits 1.

   Minimum-over-reps still jitters by several percent on loaded
   machines (CI runners included) while the real overhead sits around
   1-3%, so the gate is made noise-robust: workloads over budget after
   the first pass are re-measured with fresh reps (mins only improve),
   up to three extra rounds.  Noise spikes converge; a real regression
   keeps every round over budget and still fails. *)
let trace () =
  header
    "Table T. Flight-recorder overhead: trace replay with the tracer off vs \
     on (dynamic detector)";
  let supp = Measure.suppression_for Spec.dynamic in
  let best_off : (string, Engine.summary) Hashtbl.t = Hashtbl.create 16 in
  let best_on : (string, Engine.summary * Dgrace_obs.Span.t) Hashtbl.t =
    Hashtbl.create 16
  in
  (* off and on alternate inside one rep loop, each behind a full
     major collection: an off-vs-on diff must not be a diff in
     inherited GC debt or warm-up, only in the traced event loop *)
  let measure (w : Workload.t) =
    let events, _ = Measure.recorded w in
    for _ = 1 to max 1 !Measure.reps do
      Gc.full_major ();
      let s =
        Engine.replay ~suppression:supp ~spec:Spec.dynamic
          (Array.to_seq events)
      in
      (match Hashtbl.find_opt best_off w.name with
       | Some p when p.Engine.elapsed <= s.elapsed -> ()
       | _ -> Hashtbl.replace best_off w.name s);
      Gc.full_major ();
      (* a fresh tracer per rep: rings must not accumulate across reps *)
      let t = Dgrace_obs.Span.create () in
      let s =
        Engine.replay ~suppression:supp ~spec:Spec.dynamic ~tracer:t
          (Array.to_seq events)
      in
      match Hashtbl.find_opt best_on w.name with
      | Some (p, _) when p.Engine.elapsed <= s.elapsed -> ()
      | _ -> Hashtbl.replace best_on w.name (s, t)
    done
  in
  let ratio (w : Workload.t) =
    let off = Hashtbl.find best_off w.name in
    let on, _ = Hashtbl.find best_on w.name in
    if off.Engine.elapsed > 0. then on.Engine.elapsed /. off.Engine.elapsed
    else Float.nan
  in
  let geomean_ratio () =
    Measure.geomean
      (List.filter_map
         (fun w ->
           let r = ratio w in
           if Float.is_nan r then None else Some r)
         Registry.all)
  in
  List.iter measure Registry.all;
  let rounds = ref 0 in
  while geomean_ratio () > 1.05 && !rounds < 3 do
    incr rounds;
    List.iter (fun w -> if ratio w > 1.02 then measure w) Registry.all
  done;
  if !rounds > 0 then
    Printf.printf
      "(%d extra measurement round(s) for workloads over budget)\n" !rounds;
  Printf.printf "%-14s %10s %9s %9s %7s %8s %6s | %6s %6s\n" "program" "events"
    "off(ms)" "on(ms)" "ratio" "spans" "drop" "r-off" "r-on";
  let mismatches = ref 0 in
  let invalid = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      let events, _ = Measure.recorded w in
      let off = Hashtbl.find best_off w.name in
      let on, tracer = Hashtbl.find best_on w.name in
      let span_events =
        match
          Dgrace_obs.Chrome_trace.phases (Dgrace_obs.Chrome_trace.to_json tracer)
        with
        | Ok r -> r.Dgrace_obs.Chrome_trace.events
        | Error e ->
          incr invalid;
          Printf.eprintf "bench: trace: %s: invalid trace: %s\n" w.name e;
          -1
      in
      let same =
        off.race_count = on.race_count
        && List.map Dgrace_events.Report.to_string off.races
           = List.map Dgrace_events.Report.to_string on.races
      in
      if not same then incr mismatches;
      Printf.printf "%-14s %10d %9.2f %9.2f %7.2f %8d %6d | %6d %6d%s\n" w.name
        (Array.length events)
        (1000. *. off.elapsed)
        (1000. *. on.elapsed)
        (ratio w) span_events
        (Dgrace_obs.Span.dropped tracer)
        off.race_count on.race_count
        (if same then "" else "  RACE MISMATCH"))
    Registry.all;
  let g = geomean_ratio () in
  Printf.printf "%-14s %10s %9s %9s %7.2f  (geomean; budget 1.05)\n" "geomean"
    "" "" "" g;
  print_endline
    "\noff/on replay the identical recorded stream; on pays for engine spans,";
  print_endline
    "the sampled dispatch timer and the gated phase timers — the full cost of";
  print_endline "`racedet replay --trace-out` minus the file write.";
  if !mismatches > 0 || !invalid > 0 then begin
    Printf.eprintf "bench: trace: %d race mismatch(es), %d invalid trace(s)\n"
      !mismatches !invalid;
    exit 1
  end;
  if g > 1.05 then begin
    Printf.eprintf
      "bench: trace: tracing overhead geomean %.3f exceeds the 1.05 budget\n" g;
    exit 1
  end

(* ------------------------------------------------------------------ *)

(* Batched dispatch acceptance gate (doc/trace.md): replay the same
   recorded stream per-event and as struct-of-arrays batches, min over
   reps, both sides behind a full major collection.  Races must be
   bit-identical, and batched must not lose to per-event on any
   workload — that is the PR's acceptance criterion, so losing after
   the noise-retry rounds exits 1.  The [batchstat] lines are the
   machine-readable summary the CI trace-v2 job checks against
   bench/batch_baseline_s1.txt. *)
let batch () =
  header
    "Table B. Batched replay: per-event vs struct-of-arrays dispatch \
     (dynamic detector)";
  let supp = Measure.suppression_for Spec.dynamic in
  let best_pe : (string, Engine.summary) Hashtbl.t = Hashtbl.create 16 in
  let best_b : (string, Engine.summary) Hashtbl.t = Hashtbl.create 16 in
  let batches_for : (string, Dgrace_events.Batch.t array) Hashtbl.t =
    Hashtbl.create 16
  in
  let batches (w : Workload.t) =
    match Hashtbl.find_opt batches_for w.name with
    | Some b -> b
    | None ->
      let events, _ = Measure.recorded w in
      let b =
        Dgrace_trace.Trace_shard.batches_of
          (Array.mapi (fun i ev -> (i, ev)) events)
      in
      Hashtbl.replace batches_for w.name b;
      b
  in
  (* The speedup statistic is the median of paired ratios: each rep
     runs per-event and batched back to back (alternating order), so
     the pair shares whatever load the machine is under and the ratio
     is immune to drift between reps.  Min-over-reps still feeds the
     ms columns; comparing two mins taken minutes apart is what it is
     NOT robust for. *)
  let ratios : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let measure (w : Workload.t) =
    let events, _ = Measure.recorded w in
    let bs = batches w in
    let rl =
      match Hashtbl.find_opt ratios w.name with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace ratios w.name r;
        r
    in
    let run_pe () =
      Gc.full_major ();
      Engine.replay ~suppression:supp ~spec:Spec.dynamic (Array.to_seq events)
    in
    let run_b () =
      Gc.full_major ();
      Engine.replay_batches ~suppression:supp ~spec:Spec.dynamic
        (fun consume -> Array.iter consume bs)
    in
    let keep tbl (s : Engine.summary) =
      match Hashtbl.find_opt tbl w.name with
      | Some p when p.Engine.elapsed <= s.Engine.elapsed -> ()
      | _ -> Hashtbl.replace tbl w.name s
    in
    for _ = 1 to max 1 !Measure.reps do
      (* ABBA: linear load drift inside the block cancels out of the
         summed ratio *)
      let pe1 = run_pe () in
      let b1 = run_b () in
      let b2 = run_b () in
      let pe2 = run_pe () in
      keep best_pe pe1;
      keep best_pe pe2;
      keep best_b b1;
      keep best_b b2;
      let bmin = Float.min b1.Engine.elapsed b2.Engine.elapsed in
      if bmin > 0. then
        rl :=
          (Float.min pe1.Engine.elapsed pe2.Engine.elapsed /. bmin) :: !rl
    done
  in
  let speedup (w : Workload.t) =
    match Hashtbl.find_opt ratios w.name with
    | None | Some { contents = [] } -> Float.nan
    | Some { contents = rs } ->
      let a = Array.of_list rs in
      Array.sort compare a;
      let n = Array.length a in
      if n land 1 = 1 then a.(n / 2)
      else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))
  in
  List.iter measure Registry.all;
  (* mins only improve on re-measure, so a workload that loses to
     scheduler noise converges back over 1.0 while a real regression
     keeps losing every round.  The margin is genuinely thin (the
     detector dominates; dispatch is a few percent), hence the
     generous round count. *)
  let rounds = ref 0 in
  while
    List.exists (fun w -> speedup w < 1.005) Registry.all && !rounds < 10
  do
    incr rounds;
    List.iter (fun w -> if speedup w < 1.02 then measure w) Registry.all
  done;
  if !rounds > 0 then
    Printf.printf "(%d extra measurement round(s) for workloads over budget)\n"
      !rounds;
  Printf.printf "%-14s %10s %9s %9s %8s %10s | %6s %6s\n" "program" "events"
    "pe(ms)" "batch(ms)" "speedup" "Mev/s" "r-pe" "r-b";
  let mismatches = ref 0 in
  let speedups = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let events, _ = Measure.recorded w in
      let pe = Hashtbl.find best_pe w.name in
      let b = Hashtbl.find best_b w.name in
      let same =
        pe.race_count = b.race_count
        && List.map Dgrace_events.Report.to_string pe.races
           = List.map Dgrace_events.Report.to_string b.races
      in
      if not same then incr mismatches;
      speedups := speedup w :: !speedups;
      Printf.printf "%-14s %10d %9.2f %9.2f %7.2fx %10.1f | %6d %6d%s\n" w.name
        (Array.length events)
        (1000. *. pe.elapsed)
        (1000. *. b.elapsed)
        (speedup w)
        (if b.elapsed > 0. then
           float_of_int (Array.length events) /. b.elapsed /. 1e6
         else Float.nan)
        pe.race_count b.race_count
        (if same then "" else "  RACE MISMATCH"))
    Registry.all;
  Printf.printf "%-14s %10s %9s %9s %7.2fx  (geomean)\n" "geomean" "" "" ""
    (Measure.geomean !speedups);
  (* machine-readable rows for the CI guard: name, races on both
     paths, speedup x100 *)
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "batchstat %s %d %d %.0f\n" w.name
        (Hashtbl.find best_pe w.name).Engine.race_count
        (Hashtbl.find best_b w.name).Engine.race_count
        (100. *. speedup w))
    Registry.all;
  print_endline
    "\nboth sides replay the identical recorded stream; batch rows are \
     4096-event";
  print_endline
    "struct-of-arrays buffers consumed by the detector's process_batch fast \
     path.";
  if !mismatches > 0 then begin
    Printf.eprintf "bench: batch: %d race mismatch(es) vs per-event\n"
      !mismatches;
    exit 1
  end;
  (* Gate mirrors the trace table's tolerance: a single workload may
     read under 1.0x by scheduler jitter even after the retry rounds
     (the true margin is a few percent), so only a drop past the 10%
     noise floor — or a geomean that no longer favours batched — is a
     regression. *)
  let bad = ref false in
  List.iter
    (fun (w : Workload.t) ->
      if speedup w < 0.90 then begin
        Printf.eprintf
          "bench: batch: %s: batched slower than per-event beyond noise \
           (%.2fx)\n"
          w.name (speedup w);
        bad := true
      end
      else if speedup w < 1.0 then
        Printf.eprintf "bench: batch: %s: within noise floor (%.2fx)\n" w.name
          (speedup w))
    Registry.all;
  if Measure.geomean !speedups < 1.0 then begin
    Printf.eprintf "bench: batch: geomean %.2fx does not favour batched\n"
      (Measure.geomean !speedups);
    bad := true
  end;
  if !bad then exit 1

(* ------------------------------------------------------------------ *)

(* Pipelined replay acceptance gate (doc/trace.md): replay the same
   recorded stream from a trace-v2 file three ways —
     S  inline:  decode and detect alternate on one domain
                 (fold_batches feeding replay_batches, clustering off —
                 the PR 8 batched path);
     D  decode:  fold the file into batches and drop them;
     T  detect:  apply prebuilt batches, page clustering on.
   The pipeline overlaps D with T on two domains, so its critical path
   is max(D, T) — the analysis time a machine with a free core for the
   decoder would observe, the same modelling the par table uses for
   sharded critical paths (a box without a spare core measures
   domain-spawn cost and GC cross-talk, not overlap).  The speedup
   statistic is the median of ABBA-paired ratios S / max(D, T) exactly
   as in the batch table; losing the geomean after the noise-retry
   rounds exits 1 — this PR's acceptance criterion.  A live two-domain
   replay still runs once per workload: it gates bit-identical races
   and feeds the dstall% / clhit% columns.  The [pipestat] lines are
   the machine-readable summary the CI pipeline job checks against
   bench/pipeline_baseline_s1.txt. *)
let pipeline () =
  header
    "Table Q. Pipelined replay: inline decode vs decode→detect pipeline \
     (dynamic detector, modelled critical path)";
  let supp = Measure.suppression_for Spec.dynamic in
  let batches_for : (string, Dgrace_events.Batch.t array) Hashtbl.t =
    Hashtbl.create 16
  in
  let batches (w : Workload.t) =
    match Hashtbl.find_opt batches_for w.name with
    | Some b -> b
    | None ->
      let events, _ = Measure.recorded w in
      let b =
        Dgrace_trace.Trace_shard.batches_of
          (Array.mapi (fun i ev -> (i, ev)) events)
      in
      Hashtbl.replace batches_for w.name b;
      b
  in
  let best_seq : (string, Engine.summary) Hashtbl.t = Hashtbl.create 16 in
  let best_det : (string, Engine.summary) Hashtbl.t = Hashtbl.create 16 in
  let decode_s : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
  let ratios : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let measure (w : Workload.t) =
    let path = v2_file w in
    let bs = batches w in
    let rl =
      match Hashtbl.find_opt ratios w.name with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace ratios w.name r;
        r
    in
    let dref =
      match Hashtbl.find_opt decode_s w.name with
      | Some r -> r
      | None ->
        let r = ref infinity in
        Hashtbl.replace decode_s w.name r;
        r
    in
    let run_seq () =
      Gc.full_major ();
      replay_v2_inline ~suppression:supp path
    in
    let run_det () =
      Gc.full_major ();
      Engine.replay_batches ~suppression:supp ~page_cluster:true
        ~spec:Spec.dynamic (fun consume -> Array.iter consume bs)
    in
    let run_decode () =
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      Dgrace_trace.Trace_format_v2.fold_batches path
        (fun () (_ : Dgrace_events.Batch.t) -> ())
        ();
      Unix.gettimeofday () -. t0
    in
    let keep tbl (s : Engine.summary) =
      match Hashtbl.find_opt tbl w.name with
      | Some p when p.Engine.elapsed <= s.Engine.elapsed -> ()
      | _ -> Hashtbl.replace tbl w.name s
    in
    for _ = 1 to max 1 !Measure.reps do
      dref := Float.min !dref (run_decode ());
      (* ABBA: linear load drift inside the block cancels out of the
         paired ratio *)
      let s1 = run_seq () in
      let t1 = run_det () in
      let t2 = run_det () in
      let s2 = run_seq () in
      keep best_seq s1;
      keep best_seq s2;
      keep best_det t1;
      keep best_det t2;
      let critical =
        Float.max !dref (Float.min t1.Engine.elapsed t2.Engine.elapsed)
      in
      if critical > 0. then
        rl :=
          (Float.min s1.Engine.elapsed s2.Engine.elapsed /. critical) :: !rl
    done
  in
  let speedup (w : Workload.t) =
    match Hashtbl.find_opt ratios w.name with
    | None | Some { contents = [] } -> Float.nan
    | Some { contents = rs } ->
      let a = Array.of_list rs in
      Array.sort compare a;
      let n = Array.length a in
      if n land 1 = 1 then a.(n / 2)
      else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))
  in
  List.iter measure Registry.all;
  let rounds = ref 0 in
  while
    List.exists (fun w -> speedup w < 1.005) Registry.all && !rounds < 10
  do
    incr rounds;
    List.iter (fun w -> if speedup w < 1.02 then measure w) Registry.all
  done;
  if !rounds > 0 then
    Printf.printf "(%d extra measurement round(s) for workloads over budget)\n"
      !rounds;
  (* one live two-domain run per workload: race identity + the stall
     and cluster-hit instruments (not a timing source on a box with no
     spare core for the decoder) *)
  let pipe_run : (string, Engine.summary) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (w : Workload.t) ->
      let path = v2_file w in
      Gc.full_major ();
      Hashtbl.replace pipe_run w.name
        (Engine.replay_pipelined ~suppression:supp ~spec:Spec.dynamic path))
    Registry.all;
  let gauge (s : Engine.summary) name =
    Option.value ~default:0
      (List.assoc_opt name (Dgrace_obs.Metrics.gauges s.Engine.metrics))
  in
  let counter (s : Engine.summary) name =
    Option.value ~default:0
      (Dgrace_obs.Metrics.find_counter s.Engine.metrics name)
  in
  (* decode-stall share of the decoder's wall time, and the fraction
     of batch rows absorbed by an already-open page cluster *)
  let dstall_pct (s : Engine.summary) =
    let decode = gauge s "pipeline.decode_us" in
    if decode = 0 then 0.
    else
      100.
      *. float_of_int (gauge s "pipeline.decode_stall_us")
      /. float_of_int decode
  in
  let clhit_pct (s : Engine.summary) =
    let rows = counter s "cluster.rows" in
    if rows = 0 then 0.
    else
      100.
      *. (1.
          -. float_of_int (counter s "cluster.pages") /. float_of_int rows)
  in
  Printf.printf "%-14s %10s %9s %9s %9s %8s %7s %7s | %6s %6s\n" "program"
    "events" "seq(ms)" "dec(ms)" "det(ms)" "speedup" "dstall%" "clhit%"
    "r-seq" "r-pipe";
  let mismatches = ref 0 in
  let speedups = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let events, _ = Measure.recorded w in
      let s = Hashtbl.find best_seq w.name in
      let t = Hashtbl.find best_det w.name in
      let p = Hashtbl.find pipe_run w.name in
      let d = !(Hashtbl.find decode_s w.name) in
      let races (x : Engine.summary) =
        List.map Dgrace_events.Report.to_string x.races
      in
      let same =
        s.race_count = p.race_count
        && s.race_count = t.Engine.race_count
        && races s = races p
        && races s = races t
      in
      if not same then incr mismatches;
      speedups := speedup w :: !speedups;
      Printf.printf
        "%-14s %10d %9.2f %9.2f %9.2f %7.2fx %6.1f%% %6.1f%% | %6d %6d%s\n"
        w.name
        (Array.length events)
        (1000. *. s.elapsed) (1000. *. d)
        (1000. *. t.Engine.elapsed)
        (speedup w) (dstall_pct p) (clhit_pct p) s.race_count p.race_count
        (if same then "" else "  RACE MISMATCH"))
    Registry.all;
  Printf.printf "%-14s %10s %9s %9s %9s %7.2fx  (geomean)\n" "geomean" "" ""
    "" "" (Measure.geomean !speedups);
  (* machine-readable rows for the CI guard: name, races on both
     paths, modelled speedup x100 *)
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "pipestat %s %d %d %.0f\n" w.name
        (Hashtbl.find best_seq w.name).Engine.race_count
        (Hashtbl.find pipe_run w.name).Engine.race_count
        (100. *. speedup w))
    Registry.all;
  print_endline
    "\nall three columns replay the identical v2 stream; seq decodes each";
  print_endline
    "block on the detecting domain, dec folds the file into batches and";
  print_endline
    "drops them, det applies prebuilt batches page-clustered.  speedup =";
  print_endline
    "seq / max(dec, det): the pipeline's critical path on a machine with";
  print_endline
    "a free core for the decoder, as in the par table.  dstall% / clhit%";
  print_endline
    "come from a live two-domain run that also gates race identity.";
  if !mismatches > 0 then begin
    Printf.eprintf
      "bench: pipeline: %d race mismatch(es) vs inline decode\n" !mismatches;
    exit 1
  end;
  let bad = ref false in
  List.iter
    (fun (w : Workload.t) ->
      if speedup w < 0.90 then begin
        Printf.eprintf
          "bench: pipeline: %s: pipelined critical path slower than inline \
           decode beyond noise (%.2fx)\n"
          w.name (speedup w);
        bad := true
      end
      else if speedup w < 1.0 then
        Printf.eprintf "bench: pipeline: %s: within noise floor (%.2fx)\n"
          w.name (speedup w))
    Registry.all;
  if Measure.geomean !speedups < 1.0 then begin
    Printf.eprintf
      "bench: pipeline: geomean %.2fx does not favour the pipeline\n"
      (Measure.geomean !speedups);
    bad := true
  end;
  if !bad then exit 1

(* ------------------------------------------------------------------ *)

let par () =
  let k = if !Measure.shards > 1 then !Measure.shards else 4 in
  header
    (Printf.sprintf
       "Table P. Sharded replay (dynamic detector): analysis critical path, \
        %d shards vs 1" k);
  Printf.printf "%-14s %10s %9s %9s %10s %8s | %7s %7s\n" "program" "events"
    "T1(ms)" (Printf.sprintf "T%d(ms)" k) "split(ms)" "speedup" "races1"
    (Printf.sprintf "races%d" k);
  let speedups = ref [] in
  let mismatches = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      let m1 = Measure.par_get w Spec.dynamic ~shards:1 in
      let mk = Measure.par_get w Spec.dynamic ~shards:k in
      let sp =
        if mk.p_critical_s > 0. then m1.p_critical_s /. mk.p_critical_s
        else Float.nan
      in
      speedups := sp :: !speedups;
      if m1.p_races <> mk.p_races then incr mismatches;
      Printf.printf "%-14s %10d %9.2f %9.2f %10.2f %7.2fx | %7d %7d%s\n" w.name
        m1.p_events
        (1000. *. m1.p_critical_s)
        (1000. *. mk.p_critical_s)
        (1000. *. mk.p_split_s)
        sp m1.p_races mk.p_races
        (if m1.p_races <> mk.p_races then "  RACE MISMATCH" else ""))
    Registry.all;
  Printf.printf "%-14s %10s %9s %9s %10s %7.2fx | (geomean)\n" "geomean" "" ""
    "" ""
    (Measure.geomean !speedups);
  print_endline
    "\nT1/TK are per-shard busy times measured uncontended (Sequential mode):";
  print_endline
    "the critical path a machine with one core per shard would observe.";
  print_endline "Split time is paid once per replay and is not in T.";
  if !mismatches > 0 then begin
    Printf.eprintf "bench: par: %d race-set mismatch(es) vs 1 shard\n"
      !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sampling table: races-found vs fraction-sampled vs speedup for the
   granule sampler (doc/sampling.md) wrapped around the dynamic
   detector, across all 11 workloads.  Both sides replay the identical
   recorded stream through the batched pipeline; the speedup column is
   the median of ABBA-paired ratios exactly as in the batch table.
   Races and analysed fractions are deterministic (hash-selected
   granules over a seeded recording), so the [samplestat] rows are
   checked against bench/sampling_baseline_s1.txt by the CI sampling
   job.  The sampler's granule guarantee — every reported race is one
   the full run reports — is asserted here on every workload. *)

let sampling_rates = [ 0.25; 0.05 ]

let sampling () =
  header
    "Table S. Granule sampling: races-found vs fraction-sampled vs speedup \
     (inner: dynamic)";
  let supp = Measure.suppression_for Spec.dynamic in
  let batches_for : (string, Dgrace_events.Batch.t array) Hashtbl.t =
    Hashtbl.create 16
  in
  let batches (w : Workload.t) =
    match Hashtbl.find_opt batches_for w.name with
    | Some b -> b
    | None ->
      let events, _ = Measure.recorded w in
      let b =
        Dgrace_trace.Trace_shard.batches_of
          (Array.mapi (fun i ev -> (i, ev)) events)
      in
      Hashtbl.replace batches_for w.name b;
      b
  in
  let best : (string * string, Engine.summary) Hashtbl.t = Hashtbl.create 64 in
  let ratios : (string * float, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let run_spec w spec =
    Gc.full_major ();
    Engine.replay_batches ~suppression:supp ~spec (fun consume ->
        Array.iter consume (batches w))
  in
  let keep w spec (s : Engine.summary) =
    let key = (w.Workload.name, Spec.name spec) in
    match Hashtbl.find_opt best key with
    | Some p when p.Engine.elapsed <= s.Engine.elapsed -> ()
    | _ -> Hashtbl.replace best key s
  in
  let measure (w : Workload.t) rate =
    let spec = Spec.Sampling { rate; granule = true } in
    let rl =
      match Hashtbl.find_opt ratios (w.name, rate) with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace ratios (w.name, rate) r;
        r
    in
    for _ = 1 to max 1 !Measure.reps do
      (* ABBA pairing: load drift cancels out of the ratio *)
      let f1 = run_spec w Spec.dynamic in
      let s1 = run_spec w spec in
      let s2 = run_spec w spec in
      let f2 = run_spec w Spec.dynamic in
      keep w Spec.dynamic f1;
      keep w Spec.dynamic f2;
      keep w spec s1;
      keep w spec s2;
      let smin = Float.min s1.Engine.elapsed s2.Engine.elapsed in
      if smin > 0. then
        rl := (Float.min f1.Engine.elapsed f2.Engine.elapsed /. smin) :: !rl
    done
  in
  let speedup (w : Workload.t) rate =
    match Hashtbl.find_opt ratios (w.name, rate) with
    | None | Some { contents = [] } -> Float.nan
    | Some { contents = rs } ->
      let a = Array.of_list rs in
      Array.sort compare a;
      let n = Array.length a in
      if n land 1 = 1 then a.(n / 2)
      else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))
  in
  let fraction (s : Engine.summary) =
    let c name =
      Option.value ~default:0 (Dgrace_obs.Metrics.find_counter s.metrics name)
    in
    let a = c "sampling.analysed" and k = c "sampling.skipped" in
    if a + k = 0 then 1. else float_of_int a /. float_of_int (a + k)
  in
  List.iter
    (fun (w : Workload.t) -> List.iter (measure w) sampling_rates)
    Registry.all;
  Printf.printf "%-14s %10s %6s |" "program" "events" "races";
  List.iter
    (fun r -> Printf.printf " r=%-4g %6s %6s %7s |" r "races" "frac%" "spd")
    sampling_rates;
  print_newline ();
  let bad = ref false in
  List.iter
    (fun (w : Workload.t) ->
      let full = Hashtbl.find best (w.name, Spec.name Spec.dynamic) in
      Printf.printf "%-14s %10d %6d |" w.name
        (Array.length (fst (Measure.recorded w)))
        full.race_count;
      List.iter
        (fun rate ->
          let spec = Spec.Sampling { rate; granule = true } in
          let s = Hashtbl.find best (w.name, Spec.name spec) in
          (* the granule guarantee: sampled races are a subset of the
             full run's, bit-identical where they overlap *)
          let full_set =
            List.map Dgrace_events.Report.to_string full.races
          in
          List.iter
            (fun r ->
              let r = Dgrace_events.Report.to_string r in
              if not (List.mem r full_set) then begin
                Printf.eprintf
                  "bench: sampling: %s r=%g reported a race the full run \
                   did not: %s\n"
                  w.name rate r;
                bad := true
              end)
            s.races;
          Printf.printf "       %6d %5.1f%% %6.2fx |" s.race_count
            (100. *. fraction s) (speedup w rate))
        sampling_rates;
      print_newline ())
    Registry.all;
  (* machine-readable rows for the CI guard: name, full races, then
     per rate races + analysed fraction in permille — everything on
     the row is deterministic (timing is deliberately excluded) *)
  List.iter
    (fun (w : Workload.t) ->
      let full = Hashtbl.find best (w.name, Spec.name Spec.dynamic) in
      Printf.printf "samplestat %s %d" w.name full.race_count;
      List.iter
        (fun rate ->
          let s =
            Hashtbl.find best
              (w.name, Spec.name (Spec.Sampling { rate; granule = true }))
          in
          Printf.printf " %d %.0f" s.race_count (1000. *. fraction s))
        sampling_rates;
      print_newline ())
    Registry.all;
  print_endline
    "\nfrac% is the analysed share of accesses (sampling.analysed /\n\
     (analysed+skipped)); sync, alloc and free events are never sampled\n\
     away.  Races found at any rate are bit-identical to the full run's\n\
     reports on the selected granules (doc/sampling.md).";
  if !bad then exit 1

(* ------------------------------------------------------------------ *)
(* The ROADMAP item-3 scenario at 100x scale: under a shadow budget
   the full detector degrades, exhausts, and stops partial a fraction
   of the way into the trace, while a campaign of bounded sampling
   passes (one in-budget run per seed, each analysing ~rate of the
   granule population) covers the whole trace and still finds true
   races.  Everything is deterministic: seeded workload, seeded
   scheduler, hash-selected granules per pass seed. *)

let scaled_workload = "raytrace"
let scaled_scale = 100
let scaled_budget_bytes = 8_000_000
let scaled_rate = 0.1
let scaled_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let sampling_scaled () =
  header
    (Printf.sprintf
       "Sampling at %dx scale: budgeted full detector vs bounded sampling \
        campaign (%s)"
       scaled_scale scaled_workload)
  ;
  let w = Option.get (Registry.find scaled_workload) in
  let p = Workload.with_params ~scale:scaled_scale w in
  let policy = Dgrace_sim.Scheduler.Chunked { seed = 1; chunk = 64 } in
  let budget =
    Dgrace_resilience.Budget.make ~max_shadow_bytes:scaled_budget_bytes ()
  in
  let supp = Measure.suppression_for Spec.dynamic in
  let full =
    Engine.run ~policy ~budget ~suppression:supp ~spec:Spec.dynamic
      (w.program p)
  in
  let stopped = full.partial <> None in
  Printf.printf
    "full %-12s: %8d accesses analysed, peak %6dKB, races %d%s\n"
    full.detector full.stats.accesses
    (full.mem.peak_bytes / 1024)
    full.race_count
    (if stopped then "  STOPPED PARTIAL (budget)" else "");
  let union : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let all_ok = ref true in
  List.iter
    (fun seed ->
      let inner = Spec.to_detector ~suppression:supp Spec.dynamic in
      let d =
        Dgrace_detectors.Race_sampler.create ~rate:scaled_rate ~seed ~inner ()
      in
      let s = Engine.with_detector ~policy ~budget d (w.program p) in
      let ok = s.partial = None && not s.degraded in
      if not ok then all_ok := false;
      List.iter
        (fun r ->
          Hashtbl.replace union (Dgrace_events.Report.to_string r) ())
        s.races;
      let c name =
        Option.value ~default:0
          (Dgrace_obs.Metrics.find_counter s.metrics name)
      in
      let a = c "sampling.analysed" and k = c "sampling.skipped" in
      Printf.printf
        "pass seed=%-2d  : %8d/%d accesses analysed (%4.1f%%), peak %6dKB, \
         races %d%s\n"
        seed a (a + k)
        (100. *. float_of_int a /. float_of_int (max 1 (a + k)))
        (s.mem.peak_bytes / 1024)
        s.race_count
        (if ok then "" else "  FAILED TO COMPLETE"))
    scaled_seeds;
  let union_races = Hashtbl.length union in
  Printf.printf
    "campaign     : %d bounded passes at rate %g under a %dKB budget, \
     union races %d\n"
    (List.length scaled_seeds) scaled_rate (scaled_budget_bytes / 1024)
    union_races;
  Printf.printf "scaledstat full_partial=%b passes_ok=%b union_races=%d\n"
    stopped !all_ok union_races;
  if not stopped then begin
    Printf.eprintf
      "bench: sampling-scaled: full detector completed under the budget — \
       the scenario no longer demonstrates anything\n";
    exit 1
  end;
  if not !all_ok then begin
    Printf.eprintf
      "bench: sampling-scaled: a sampling pass breached the budget\n";
    exit 1
  end;
  if union_races < 1 then begin
    Printf.eprintf
      "bench: sampling-scaled: the campaign found no race\n";
    exit 1
  end
