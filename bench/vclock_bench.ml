(* The vclock table (ISSUE PR 5 satellite): microbenchmark of the
   Vector_clock fast paths and the Vc_intern arena, plus the arena's
   per-workload statistics under the dynamic detector.

   Part 1 — operation throughput (ops/sec, best of [Measure.reps]
   timed batches) for the operations the access fast path leans on:
   join / leq / assign (array-reusing) / copy (the legacy allocating
   path) and intern under memo hit, bucket hit and miss.

   Part 2 — allocation profile of the read-capture loop: minor-GC
   words per million capture events, comparing hash-consed interning,
   the --no-vc-intern arena (pooled but not consed) and the pre-arena
   per-capture deep copy.  The interning-vs-deep-copy reduction is the
   acceptance number recorded in EXPERIMENTS.md.

   Part 3 — `vcstat` lines, one per workload: the dynamic detector's
   vclock.* gauges in machine-readable form for the CI bench-smoke
   guard (bench/vclock_baseline_s1.txt):

     vcstat <workload> <arena-peak-bytes> <dedup x100>

   dedup = intern calls per stored snapshot (higher = more sharing). *)

open Dgrace_core
open Dgrace_vclock
open Dgrace_workloads

let line = String.make 110 '-'

(* ops/sec of [f] applied [batch] times, best of [reps] runs *)
let ops_per_sec ?(batch = 200_000) f =
  let best = ref infinity in
  for _ = 1 to max 1 !Measure.reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  if !best > 0. then float_of_int batch /. !best else Float.nan

let mk_clock n =
  let vc = Vector_clock.create () in
  for t = 0 to n - 1 do
    Vector_clock.set vc t ((t * 7) + 3)
  done;
  vc

let micro () =
  Printf.printf "%-26s %14s %14s\n" "operation" "narrow(4t)" "wide(16t)";
  let row name f4 f16 =
    Printf.printf "%-26s %12.1fM %12.1fM\n" name (ops_per_sec f4 /. 1e6)
      (ops_per_sec f16 /. 1e6)
  in
  let pair n =
    let a = mk_clock n and b = mk_clock n in
    Vector_clock.set b (n - 1) 1000;
    (a, b)
  in
  let a4, b4 = pair 4 and a16, b16 = pair 16 in
  row "leq"
    (fun () -> ignore (Vector_clock.leq a4 b4 : bool))
    (fun () -> ignore (Vector_clock.leq a16 b16 : bool));
  let d4 = Vector_clock.create () and d16 = Vector_clock.create () in
  row "join"
    (fun () -> Vector_clock.join d4 a4)
    (fun () -> Vector_clock.join d16 a16);
  row "assign (reusing)"
    (fun () -> Vector_clock.assign d4 a4)
    (fun () -> Vector_clock.assign d16 a16);
  row "copy (allocating)"
    (fun () -> ignore (Vector_clock.copy a4 : Vector_clock.t))
    (fun () -> ignore (Vector_clock.copy a16 : Vector_clock.t));
  let arena = Vc_intern.create () in
  (* hold a base reference so the memoised snapshot stays live — the
     steady state of a read-shared granule *)
  let base4 = Vc_intern.intern arena a4
  and base16 = Vc_intern.intern arena a16 in
  let memo_hit vc () = Vc_intern.release (Vc_intern.intern arena vc) in
  row "intern (memo hit)" (memo_hit a4) (memo_hit a16);
  (* forcing gen to move invalidates the memo: bucket-probe path *)
  let bucket_hit vc n () =
    Vector_clock.set vc (n - 1) (Vector_clock.get vc (n - 1) + 1);
    Vector_clock.set vc (n - 1) (Vector_clock.get vc (n - 1) - 1);
    Vc_intern.release (Vc_intern.intern arena vc)
  in
  row "intern (bucket hit)" (bucket_hit a4 4) (bucket_hit a16 16);
  let clk = ref 1000 in
  let miss vc n () =
    incr clk;
    Vector_clock.set vc (n - 1) !clk;
    Vc_intern.release (Vc_intern.intern arena vc)
  in
  row "intern (miss)" (miss b4 4) (miss b16 16);
  let s4 = Vc_intern.intern arena a4 and s16 = Vc_intern.intern arena a16 in
  row "share (retain+release)"
    (fun () ->
      Vc_intern.retain s4;
      Vc_intern.release s4)
    (fun () ->
      Vc_intern.retain s16;
      Vc_intern.release s16);
  Vc_intern.release s4;
  Vc_intern.release s16;
  Vc_intern.release base4;
  Vc_intern.release base16

(* Minor-GC words per million capture events.  The loop models the
   read-shared fast path: each "event" captures the reader's current
   clock into shadow state, replacing the previous capture; every
   [epoch] events the clock advances (a sync boundary).  With
   interning on, the steady state is a memo hit per event and one
   fresh snapshot per epoch. *)
let capture_words ~consing ~epoch n =
  let arena = Vc_intern.create ~hash_consing:consing () in
  let vc = mk_clock 8 in
  let prev = ref (Vc_intern.intern arena vc) in
  let w0 = Gc.minor_words () in
  for i = 1 to n do
    if i mod epoch = 0 then Vector_clock.set vc 0 (Vector_clock.get vc 0 + 1);
    let s = Vc_intern.intern arena vc in
    Vc_intern.release !prev;
    prev := s
  done;
  let dw = Gc.minor_words () -. w0 in
  Vc_intern.release !prev;
  dw *. 1e6 /. float_of_int n

let deep_copy_words ~epoch n =
  let vc = mk_clock 8 in
  let prev = ref (Vector_clock.copy vc) in
  let w0 = Gc.minor_words () in
  for i = 1 to n do
    if i mod epoch = 0 then Vector_clock.set vc 0 (Vector_clock.get vc 0 + 1);
    prev := Vector_clock.copy vc
  done;
  let dw = Gc.minor_words () -. w0 in
  ignore !prev;
  dw *. 1e6 /. float_of_int n

let alloc_profile () =
  let n = 1_000_000 and epoch = 64 in
  let on = capture_words ~consing:true ~epoch n in
  let off = capture_words ~consing:false ~epoch n in
  let deep = deep_copy_words ~epoch n in
  Printf.printf
    "\ncapture loop (8 threads, epoch every %d events): minor words / Mev\n"
    epoch;
  Printf.printf "  %-24s %12.0f\n" "interning (consed)" on;
  Printf.printf "  %-24s %12.0f\n" "arena, no consing" off;
  Printf.printf "  %-24s %12.0f\n" "per-capture deep copy" deep;
  let reduction = if deep > 0. then 100. *. (1. -. (on /. deep)) else 0. in
  Printf.printf "  interning allocates %.0f%% fewer minor words than deep copy\n"
    reduction;
  (* machine-readable for the CI smoke step *)
  Printf.printf "vcmicro alloc_reduction_pct %.0f\n" reduction

let vcstat () =
  Printf.printf
    "\nper-workload arena statistics (dynamic detector, vclock.* gauges):\n";
  Printf.printf "%-14s %10s %10s %10s %8s %8s\n" "program" "peak-KB" "interns"
    "stored" "dedup" "memo%";
  List.iter
    (fun (w : Workload.t) ->
      let g = Measure.gauge w Spec.dynamic in
      let interns = g "vclock.interns" and hits = g "vclock.intern_hits" in
      let memo = g "vclock.memo_hits" in
      let stored = max 1 (interns - hits) in
      let dedup = float_of_int interns /. float_of_int stored in
      let memo_pct =
        if interns = 0 then 0.
        else 100. *. float_of_int memo /. float_of_int interns
      in
      Printf.printf "%-14s %10d %10d %10d %7.1fx %7.1f%%\n" w.name
        (Measure.kb (g "vclock.arena_peak_bytes"))
        interns stored dedup memo_pct;
      Printf.printf "vcstat %s %d %d\n" w.name
        (g "vclock.arena_peak_bytes")
        (int_of_float (dedup *. 100.)))
    Registry.all

let run () =
  Printf.printf "\n%s\nTable V. Vector-clock arena: fast-path throughput and \
                 interning profile\n%s\n" line line;
  micro ();
  alloc_profile ();
  vcstat ()
