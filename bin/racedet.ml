(* racedet — command-line front end.

   Subcommands:
     run          analyse a workload with one detector
     compare      analyse a workload with several detectors side by side
     profile      phase/hot-path breakdown of one workload per detector
     record       record a workload's event stream to a trace file
     convert      rewrite a trace between the v1 and v2 formats
     replay       analyse a recorded trace (format auto-detected)
     inject       fault-injection harness (corrupt traces, stuck threads,
                  wire faults against a live serve session with --via socket)
     serve        crash-isolated streaming detection service (socket/spool)
     client       stream a trace through a serve instance / query status
     metrics-info validate and summarise a --metrics-out document
     timings      validate and summarise a --trace-out timeline
     list         list workloads and detectors

   Exit codes (doc/resilience.md, doc/serve.md):
     0  run completed, no races
     2  run completed, races found
     3  partial or degraded results (budget stop, deadlock, resynced trace)
     4  input error (corrupt trace, invalid argument values)
     5  internal failure contained as a structured error (crash-only
        session isolation) *)

open Cmdliner
open Dgrace_core
open Dgrace_workloads
open Dgrace_events
module Json = Dgrace_obs.Json
module Metrics = Dgrace_obs.Metrics
module Sampler = Dgrace_obs.Sampler
module Span = Dgrace_obs.Span
module Chrome_trace = Dgrace_obs.Chrome_trace
module State_matrix = Dgrace_obs.State_matrix
module Export = Dgrace_obs.Export
module Rerr = Dgrace_resilience.Error
module Budget = Dgrace_resilience.Budget

(* ------------------------------------------------------------------ *)
(* converters and shared options *)

let spec_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Spec.of_string s) in
  let print ppf s = Format.pp_print_string ppf (Spec.name s) in
  Arg.conv (parse, print)

(* Limits and periods are validated here, at argument parsing, so a
   bad value is a usage error (cmdliner's exit 124) with a pointed
   message — not an [Invalid_argument] from deep inside the engine. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg "must be a positive integer")
    | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float =
  let parse s =
    match float_of_string_opt s with
    | Some x when x > 0. -> Ok x
    | Some _ -> Error (`Msg "must be positive")
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let workload_conv =
  let parse s =
    match Registry.find s with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown workload %S (try: %s)" s
              (String.concat ", " Registry.names)))
  in
  let print ppf (w : Workload.t) = Format.pp_print_string ppf w.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Benchmark workload to run (see $(b,list)).")

let spec_arg =
  Arg.(
    value
    & opt spec_conv Spec.dynamic
    & info [ "d"; "detector" ] ~docv:"DETECTOR"
        ~doc:
          (Printf.sprintf "Detection algorithm: one of %s."
             (String.concat ", " Spec.all_names)))

let threads_arg =
  Arg.(value & opt (some int) None & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker thread count.")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "s"; "scale" ] ~docv:"K" ~doc:"Workload size factor.")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")

let sched_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "sched-seed" ] ~docv:"SEED" ~doc:"Scheduler interleaving seed.")

let no_suppress_arg =
  Arg.(
    value & flag
    & info [ "no-suppressions" ]
        ~doc:"Disable the default runtime suppression rules (libc/ld/pthread).")

let no_vc_intern_arg =
  Arg.(
    value & flag
    & info [ "no-vc-intern" ]
        ~doc:
          "Disable hash-consing of vector-clock snapshots (fall back to \
           per-capture deep copies).  Escape hatch for one release; races are \
           identical either way.")

let no_page_cluster_arg =
  Arg.(
    value & flag
    & info [ "no-page-cluster" ]
        ~doc:
          "Disable page-clustered batch application (apply batch rows in row \
           order instead of grouped by aligned shadow page).  Escape hatch \
           for one release; races, report order and stats are identical \
           either way (doc/shadow.md).")

(* tri-state: None = auto (pipeline v2 inputs), Some true/false forced *)
let pipeline_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "pipeline" ]
              ~doc:
                "Force the two-stage decode/detect pipeline (requires a v2 \
                 trace).  This is already the default for v2 inputs; the \
                 flag exists to make scripts explicit and to get an error \
                 instead of a silent sequential replay on a v1 trace." );
          ( Some false,
            info [ "no-pipeline" ]
              ~doc:
                "Decode and detect on one domain, strictly alternating (the \
                 pre-pipeline behaviour).  Races and offsets are identical; \
                 this is a performance escape hatch." );
        ])

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every race report.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's structured metrics (summary, time-series, \
           state-transition matrix) as versioned JSON to $(docv).")

let sample_every_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "sample-every" ] ~docv:"N"
        ~doc:
          "Snapshot shadow-memory accounting every $(docv) events into the \
           exported time-series (active only with $(b,--metrics-out)).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ] ~doc:"Print a heartbeat line to stderr.")

let progress_every_arg =
  Arg.(
    value
    & opt pos_int 100_000
    & info [ "progress-every" ] ~docv:"N"
        ~doc:
          "Heartbeat period in events for $(b,--progress) (must be \
           positive; default 100000).")

let shards_arg =
  Arg.(
    value
    & opt pos_int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Shard the analysis K ways by hashed address line and replay one \
           OCaml domain per shard (doc/parallel.md).  Results — races, \
           transition counts, exit code — are identical to $(b,--shards 1); \
           only the timing and the $(b,par.*) metrics change.")

(* Budget flags (doc/resilience.md): exceeding the shadow cap degrades
   the detector and keeps going; exceeding events/deadline stops the
   run with partial results and exit code 3. *)
let max_shadow_arg =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "max-shadow-bytes" ] ~docv:"BYTES"
        ~doc:
          "Shadow-memory budget: over this the detector sheds state \
           (degraded results), and the run stops only if shedding is \
           exhausted.")

let max_events_arg =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Stop (partial results) after analysing $(docv) events.")

let deadline_arg =
  Arg.(
    value
    & opt (some pos_float) None
    & info [ "deadline-s" ] ~docv:"SECONDS"
        ~doc:"Stop (partial results) after $(docv) seconds of wall clock.")

let budget max_shadow_bytes max_events deadline_s =
  Budget.make ?max_shadow_bytes ?max_events ?deadline_s ()

let params w threads scale seed = Workload.with_params ?threads ?scale ?seed w

let suppression no_suppress =
  if no_suppress then Suppression.empty else Suppression.default_runtime

let policy sched_seed = Dgrace_sim.Scheduler.Chunked { seed = sched_seed; chunk = 64 }

(* Heartbeat for long runs: reads the live detector state so the line
   shows real progress, not just an event count.  Lines go through the
   shared {!Stderr_line} emitter so they stay whole even when other
   domains print. *)
let progress_for flag every (d : Dgrace_detectors.Detector.t) =
  if not flag then None
  else begin
    let t0 = Unix.gettimeofday () in
    Some
      ( every,
        fun events ->
          Stderr_line.line
            "[progress] %s: events=%d accesses=%d races=%d shadow=%dKB (%.1fs)"
            d.name events d.stats.Dgrace_detectors.Run_stats.accesses
            (Dgrace_detectors.Detector.race_count d)
            (Dgrace_shadow.Accounting.current_bytes d.account / 1024)
            (Unix.gettimeofday () -. t0) )
  end

(* Heartbeat for replays: detector state lives in the replay (or in
   per-shard domains), so the line reports the event count only.  It
   goes to stderr, like every other diagnostic, so it can never
   interleave with the summary on stdout under cram. *)
let replay_progress flag every =
  if not flag then None
  else
    Some (every, fun events -> Stderr_line.line "[progress] replayed %d events" events)

(* Structured-failure boundary: anything the stack declares — corrupt
   trace, deadlocked workload — is printed to stderr and mapped to the
   documented exit code.  No raw exception ever reaches the user. *)
let or_fail f =
  try f () with
  | Rerr.E e ->
    Stderr_line.linef "racedet: %a" Rerr.pp e;
    exit (Rerr.exit_code e)
  | Dgrace_sim.Sim.Deadlock { Dgrace_sim.Sim.blocked; held } ->
    let e = Rerr.Deadlock { blocked; held } in
    Stderr_line.linef "racedet: %a" Rerr.pp e;
    exit (Rerr.exit_code e)

let workload_json (w : Workload.t) (p : Workload.params) =
  Json.Obj
    [
      ("name", Json.String w.name);
      ("threads", Json.Int p.threads);
      ("scale", Json.Int p.scale);
      ("seed", Json.Int p.seed);
    ]

let write_metrics path json =
  Json.to_file path json;
  Stderr_line.line "metrics written to %s" path

(* --trace-out plumbing: a tracer exists only when asked for, so the
   traced-off paths stay the exact pre-tracing code. *)
let tracer_for trace_out = Option.map (fun _ -> Span.create ()) trace_out

let write_trace tracer trace_out =
  match (tracer, trace_out) with
  | Some t, Some path ->
    Json.to_file path (Chrome_trace.to_json t);
    Stderr_line.line "trace written to %s" path
  | (Some _ | None), _ -> ()

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's span timeline as Chrome trace_event JSON to \
           $(docv): one lane per shard plus the main lane, sampled \
           per-phase detector timers, and counter tracks.  Load it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing, or summarise \
           it with $(b,racedet timings).")

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let action w spec threads scale seed sched_seed no_suppress no_vc_intern
      verbose metrics_out sample_every trace_out progress progress_every
      max_shadow max_events deadline =
    or_fail @@ fun () ->
    let p = params w threads scale seed in
    let tracer = tracer_for trace_out in
    let d =
      Spec.to_detector ~suppression:(suppression no_suppress)
        ~vc_intern:(not no_vc_intern)
        ?tracer:(Option.map Span.main tracer)
        spec
    in
    let s =
      Engine.with_detector ~policy:(policy sched_seed)
        ~budget:(budget max_shadow max_events deadline)
        ?sample_every:(Option.map (fun _ -> sample_every) metrics_out)
        ?progress:(progress_for progress progress_every d)
        ?tracer d
        (w.Workload.program p)
    in
    Format.printf "workload: %s (threads=%d scale=%d seed=%d)@." w.name p.threads
      p.scale p.seed;
    Format.printf "%a@." Engine.pp_summary s;
    if verbose then
      List.iter (fun r -> Format.printf "%s@." (Report.to_string r)) s.races;
    Option.iter
      (fun path ->
        write_metrics path
          (Engine.summary_to_json ~workload:(workload_json w p) s))
      metrics_out;
    write_trace tracer trace_out;
    let code = Engine.exit_code_of_summary s in
    if code <> 0 then exit code
  in
  let term =
    Term.(
      const action $ workload_arg $ spec_arg $ threads_arg $ scale_arg
      $ seed_arg $ sched_seed_arg $ no_suppress_arg $ no_vc_intern_arg
      $ verbose_arg $ metrics_out_arg $ sample_every_arg $ trace_out_arg
      $ progress_arg $ progress_every_arg $ max_shadow_arg $ max_events_arg
      $ deadline_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one detector."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Exit code 0 when clean, 2 when races are found, 3 when a \
              resource budget made the results partial or degraded, 4 on \
              input errors." ])
    term

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_cmd =
  let action w threads scale seed sched_seed no_suppress no_vc_intern shards
      metrics_out sample_every trace_out =
    let p = params w threads scale seed in
    let t0 = Unix.gettimeofday () in
    let tracer = tracer_for trace_out in
    Format.printf "workload: %s (threads=%d scale=%d seed=%d)@.@." w.name
      p.threads p.scale p.seed;
    if shards > 1 then
      Format.printf "shards: %d (recorded once, replayed sharded)@.@." shards;
    (* sharded comparison analyses a recorded stream: capture the
       workload's events once so every detector replays the identical
       trace (exactly what `record` + `replay --shards` would do,
       without the file) *)
    let recorded =
      if shards = 1 then [||]
      else begin
        let buf = ref [] in
        ignore
          (Workload.run ~policy:(policy sched_seed) ~params:p
             ~sink:(fun ev -> buf := ev :: !buf)
             w);
        Array.of_list (List.rev !buf)
      end
    in
    Format.printf "%-28s %8s %10s %12s %10s %10s@." "detector" "races"
      "time(ms)" "peak-mem" "peak-VCs" "same-ep";
    let base = ref 0. in
    let slowdowns = ref [] in
    let summaries = ref [] in
    List.iter
      (fun spec ->
        let s =
          if shards > 1 then
            Engine.replay_sharded ~suppression:(suppression no_suppress)
              ~vc_intern:(not no_vc_intern) ?tracer ~shards ~spec
              (Array.to_seq recorded)
          else
            Engine.run ~policy:(policy sched_seed)
              ~suppression:(suppression no_suppress)
              ~vc_intern:(not no_vc_intern)
              ?sample_every:(Option.map (fun _ -> sample_every) metrics_out)
              ?tracer ~spec
              (w.Workload.program p)
        in
        summaries := s :: !summaries;
        if spec = Spec.No_detection then base := s.elapsed
        else if !base > 0. then
          slowdowns := (s.elapsed /. !base) :: !slowdowns;
        Format.printf "%-28s %8d %10.1f %11dK %10d %9.0f%%@." s.detector
          s.race_count (1000. *. s.elapsed)
          (s.mem.peak_bytes / 1024)
          s.mem.peak_vcs
          (100. *. Dgrace_detectors.Run_stats.same_epoch_ratio s.stats))
      [
        Spec.No_detection; Spec.byte; Spec.word; Spec.dynamic;
        Spec.Djit { granularity = 4 }; Spec.Drd; Spec.Inspector; Spec.Eraser;
        Spec.Multirace; Spec.Racetrack { region = 64 }; Spec.Literace;
        Spec.Sampling { rate = 0.1; granule = true };
      ];
    (* the paper's Figure 7 summary statistic: geometric-mean slowdown
       of each detector relative to the uninstrumented (null) run *)
    if !slowdowns <> [] then
      Format.printf "@.%-28s %8s %9.2fx (slowdown vs none)@." "geomean" ""
        (Dgrace_util.Stat.geomean !slowdowns);
    Option.iter
      (fun path ->
        write_metrics path
          (Engine.summaries_to_json ~workload:(workload_json w p)
             ~elapsed_s:(Unix.gettimeofday () -. t0)
             (List.rev !summaries)))
      metrics_out;
    write_trace tracer trace_out
  in
  let term =
    Term.(
      const action $ workload_arg $ threads_arg $ scale_arg $ seed_arg
      $ sched_seed_arg $ no_suppress_arg $ no_vc_intern_arg $ shards_arg
      $ metrics_out_arg $ sample_every_arg $ trace_out_arg)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run one workload under every detector.") term

(* ------------------------------------------------------------------ *)
(* profile *)

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let print_profile (s : Engine.summary) =
  let stats = s.stats in
  let total = stats.accesses in
  let fast = stats.same_epoch in
  let analysed =
    (* instrumented detectors count this directly; the invariant
       fast + analysed = total holds by construction *)
    Option.value
      (Metrics.find_counter s.metrics "accesses.analysed")
      ~default:(total - fast)
  in
  Format.printf "@.detector: %s@." s.detector;
  Format.printf "  accesses                 : %d@." total;
  Format.printf "  same-epoch fast path     : %d (%.1f%%)@." fast
    (pct fast total);
  Format.printf "  slow path (analysed)     : %d (%.1f%%)@." analysed
    (pct analysed total);
  Option.iter
    (Format.printf "    epoch comparisons      : %d@.")
    (Metrics.find_counter s.metrics "phase.epoch_compare");
  Option.iter
    (Format.printf "    full VC operations     : %d@.")
    (Metrics.find_counter s.metrics "phase.vc_op");
  Format.printf "  sync ops                 : %d@." stats.sync_ops;
  (match
     ( Metrics.find_counter s.metrics "sharing.decisions",
       Metrics.find_counter s.metrics "sharing.decisions.shared",
       Metrics.find_counter s.metrics "sharing.decisions.private" )
   with
   | Some d, Some sh, Some pr when d > 0 ->
     Format.printf "  sharing decisions        : %d (shared %d / private %d)@."
       d sh pr
   | _ -> ());
  Option.iter
    (fun m ->
      Format.printf "  state transitions        : %d@." (State_matrix.total m))
    s.transitions;
  Format.printf "  races                    : %d (%d suppressed)@." s.race_count
    s.suppressed;
  Format.printf "  elapsed                  : %.3fs@." s.elapsed

let profile_cmd =
  let action w specs threads scale seed sched_seed no_suppress metrics_out
      sample_every progress progress_every =
    let specs =
      if specs = [] then [ Spec.byte; Spec.word; Spec.dynamic ] else specs
    in
    let p = params w threads scale seed in
    Format.printf "workload: %s (threads=%d scale=%d seed=%d)@." w.name
      p.threads p.scale p.seed;
    let summaries =
      List.map
        (fun spec ->
          let d =
            Spec.to_detector ~suppression:(suppression no_suppress) spec
          in
          let s =
            Engine.with_detector ~policy:(policy sched_seed)
              ?sample_every:(Option.map (fun _ -> sample_every) metrics_out)
              ?progress:(progress_for progress progress_every d)
              d
              (w.Workload.program p)
          in
          print_profile s;
          s)
        specs
    in
    Option.iter
      (fun path ->
        write_metrics path
          (Engine.summaries_to_json ~workload:(workload_json w p) summaries))
      metrics_out
  in
  let specs_arg =
    Arg.(
      value
      & opt_all spec_conv []
      & info [ "d"; "detector" ] ~docv:"DETECTOR"
          ~doc:
            "Detector(s) to profile (repeatable); default: byte, word, \
             dynamic.")
  in
  let term =
    Term.(
      const action $ workload_arg $ specs_arg $ threads_arg $ scale_arg
      $ seed_arg $ sched_seed_arg $ no_suppress_arg $ metrics_out_arg
      $ sample_every_arg $ progress_arg $ progress_every_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload and print the per-detector phase breakdown: \
          same-epoch fast path vs. epoch comparison vs. full vector-clock \
          work, plus sharing-state telemetry."
       ~man:
         [ `S Manpage.s_description;
           `P
             "The fast-path and slow-path counts sum to the total number of \
              analysed memory accesses; the sharing lines expose the \
              dynamic-granularity state machine (paper Fig. 2) directly." ])
    term

(* ------------------------------------------------------------------ *)
(* metrics-info *)

let metrics_info_cmd =
  let action path =
    match Json.parse_file path with
    | Error msg ->
      Format.eprintf "metrics-info: %s: invalid JSON: %s@." path msg;
      exit Rerr.exit_input_error
    | Ok doc -> (
      match Export.validate doc with
      | Error msg ->
        Format.eprintf "metrics-info: %s: not a metrics document: %s@." path
          msg;
        exit Rerr.exit_input_error
      | Ok (version, kind) ->
        Format.printf "%s: %d@." Export.version_key version;
        Format.printf "kind: %s@." kind;
        let runs =
          match Json.member "runs" doc with
          | Some (Json.List rs) -> rs
          | _ -> [ doc ]
        in
        Format.printf "runs: %d@." (List.length runs);
        List.iter
          (fun run ->
            let detector =
              match Json.member "detector" run with
              | Some (Json.String d) -> d
              | _ -> "?"
            in
            let samples =
              match
                Option.bind (Json.member "timeseries" run) (Json.member "samples")
              with
              | Some (Json.List ss) -> List.length ss
              | _ -> 0
            in
            let transitions =
              match
                Option.bind (Json.member "transitions" run) (Json.member "total")
              with
              | Some (Json.Int n) -> n
              | _ -> 0
            in
            Format.printf "  %s: samples=%d transitions=%d@." detector samples
              transitions)
          runs)
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A --metrics-out document.")
  in
  Cmd.v
    (Cmd.info "metrics-info"
       ~doc:"Validate and summarise a --metrics-out JSON document.")
    Term.(const action $ path_arg)

(* ------------------------------------------------------------------ *)
(* record / replay *)

let trace_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"TRACE" ~doc:"Trace file path.")

let trace_v2_arg =
  Arg.(
    value & flag
    & info [ "trace-v2" ]
        ~doc:
          "Write the v2 trace format: run-length/delta-compressed blocks \
           that replay decodes straight into struct-of-arrays batches \
           (doc/trace.md).  Readers auto-detect the version.")

let record_cmd =
  let action w threads scale seed sched_seed v2 path =
    let p = params w threads scale seed in
    let to_file =
      if v2 then Dgrace_trace.Trace_format_v2.to_file
      else Dgrace_trace.Trace_writer.to_file
    in
    let sim, n =
      to_file path (fun sink ->
          Workload.run ~policy:(policy sched_seed) ~params:p ~sink w)
    in
    Format.printf "recorded %d events (%d accesses, %d threads) to %s%s@." n
      sim.accesses sim.threads path
      (if v2 then " (v2)" else "")
  in
  let term =
    Term.(
      const action $ workload_arg $ threads_arg $ scale_arg $ seed_arg
      $ sched_seed_arg $ trace_v2_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a workload's event stream to a trace file.")
    term

(* convert: rewrite a trace in the other (or a chosen) format.  The
   source version is probed from the header; events stream straight
   from one decoder into the other encoder, so traces larger than
   memory convert fine. *)
let convert_cmd =
  let action src v2 dst progress progress_every =
    or_fail @@ fun () ->
    let src_version = Dgrace_trace.Trace_reader.probe_version src in
    (* default output flips the input format; --trace-v2 forces v2 *)
    let to_v2 = v2 || src_version < 2 in
    (* optional heartbeat: conversion is streaming (one decoded block
       resident at a time), so on multi-gigabyte traces the heartbeat
       is the only sign of life *)
    let count = ref 0 in
    let tick =
      if progress then (fun () ->
        incr count;
        if !count mod progress_every = 0 then
          Stderr_line.line "racedet: convert: %d events" !count)
      else fun () -> incr count
    in
    let feed sink =
      let sink ev =
        sink ev;
        tick ()
      in
      if src_version >= 2 then
        Dgrace_trace.Trace_format_v2.fold_file src (fun () ev -> sink ev) ()
      else Dgrace_trace.Trace_reader.fold_file src (fun () ev -> sink ev) ()
    in
    let (), n =
      if to_v2 then Dgrace_trace.Trace_format_v2.to_file dst feed
      else Dgrace_trace.Trace_writer.to_file dst feed
    in
    Format.printf "converted %s (v%d) -> %s (v%d): %d events@." src src_version
      dst
      (if to_v2 then 2 else 1)
      n
  in
  let src_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SRC" ~doc:"Trace to convert (version auto-detected).")
  in
  let dst_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DST" ~doc:"Output trace path.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a trace between the v1 and v2 formats."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Without $(b,--trace-v2) the output uses the format the input \
              is not in (v1 input converts to v2 and vice versa); with it \
              the output is always v2.  Replay results are bit-identical \
              across formats.  Conversion streams block by block — memory \
              stays bounded no matter the trace size — and $(b,--progress) \
              prints a heartbeat every $(b,--progress-every) events." ])
    Term.(
      const action $ src_arg $ trace_v2_arg $ dst_arg $ progress_arg
      $ progress_every_arg)

let replay_cmd =
  let action path spec no_suppress no_vc_intern no_page_cluster pipeline
      verbose resync no_batch shards metrics_out sample_every trace_out
      progress progress_every max_shadow max_events deadline =
    or_fail @@ fun () ->
    let version = Dgrace_trace.Trace_reader.probe_version path in
    if resync && version >= 2 then
      raise
        (Rerr.E
           (Rerr.Invalid_input
              {
                what = "replay --resync";
                reason =
                  "v2 traces are length-prefixed blocks with no resync scan; \
                   convert to v1 first (racedet convert)";
              }));
    let tracer = tracer_for trace_out in
    let lane = Option.map Span.main tracer in
    let budget = budget max_shadow max_events deadline in
    let suppression = suppression no_suppress in
    let progress = replay_progress progress progress_every in
    let vc_intern = not no_vc_intern in
    let page_cluster = not no_page_cluster in
    let sample_every = Option.map (fun _ -> sample_every) metrics_out in
    (* pipeline disposition: on for v2 inputs unless --no-pipeline or
       --no-batch (auto); --pipeline forces it and faults on v1 *)
    let use_pipeline =
      match pipeline with
      | Some false -> false
      | Some true ->
        if version < 2 then
          raise
            (Rerr.E
               (Rerr.Invalid_input
                  {
                    what = "replay --pipeline";
                    reason =
                      "the decode/detect pipeline needs a v2 trace; convert \
                       first (racedet convert --trace-v2)";
                  }));
        true
      | None -> version >= 2 && not no_batch
    in
    let read_events () =
      (* decode vs dispatch: the trace shows file reading as its own
         span, before the engine's replay span starts *)
      (match lane with Some b -> Span.begin_span b "replay.decode" | None -> ());
      let events, recovered_gaps =
        if version >= 2 then (Dgrace_trace.Trace_format_v2.read_file path, 0)
        else if resync then begin
          let events, r = Dgrace_trace.Trace_reader.read_file_resync path in
          if r.Dgrace_trace.Trace_reader.gaps > 0 then
            Stderr_line.line
              "racedet: resync: dropped %d byte(s) in %d gap(s), %d event(s) \
               salvaged"
              r.dropped_bytes r.gaps r.events;
          (events, r.gaps)
        end
        else (Dgrace_trace.Trace_reader.read_file path, 0)
      in
      (match lane with Some b -> Span.end_span b "replay.decode" | None -> ());
      (events, recovered_gaps)
    in
    let s, recovered_gaps =
      if use_pipeline && shards = 1 then
        (* decode on its own domain, detect here; identical races,
           offsets and stop reasons as the sequential v2 paths *)
        ( Engine.replay_pipelined ~budget ~suppression ~vc_intern ~page_cluster
            ?sample_every ?progress ?tracer ~spec path,
          0 )
      else if
        use_pipeline && shards > 1
        && Budget.is_unlimited budget
        && sample_every = None && progress = None && tracer = None
      then
        (* streaming sharded pipeline: planner prepass + decoder domain
           + router + one detector domain per shard.  Per-event
           machinery (budget/metrics/progress/tracer) needs the
           materialised sharded path below. *)
        ( Engine.replay_sharded_pipelined ~suppression ~vc_intern ~page_cluster
            ~shards ~spec path,
          0 )
      else if version >= 2 && shards = 1 && not no_batch then
        (* stream blocks straight into the detector's batch fast path;
           decode interleaves with dispatch, no event list is built *)
        ( Engine.replay_batches ~budget ~suppression ~vc_intern ~page_cluster
            ?sample_every ?progress ?tracer ~spec
            (fun consume ->
              Dgrace_trace.Trace_format_v2.fold_batches path
                (fun () b -> consume b)
                ()),
          0 )
      else begin
        let events, recovered_gaps = read_events () in
        let s =
          if shards = 1 then
            Engine.replay ~budget ~suppression ~vc_intern ~page_cluster
              ?sample_every ?progress ?tracer ~spec (List.to_seq events)
          else
            Engine.replay_sharded ~batched:(not no_batch) ~budget ~suppression
              ~vc_intern ~page_cluster ?sample_every ?progress ?tracer ~shards
              ~spec (List.to_seq events)
        in
        (s, recovered_gaps)
      end
    in
    Format.printf "%a@." Engine.pp_summary s;
    if verbose then
      List.iter (fun r -> Format.printf "%s@." (Report.to_string r)) s.races;
    Option.iter
      (fun out -> write_metrics out (Engine.summary_to_json s))
      metrics_out;
    write_trace tracer trace_out;
    let code = Engine.exit_code_of_summary s in
    (* a resynced trace is partial evidence even when the run itself
       completed: races are a lower bound *)
    let code = if recovered_gaps > 0 then max code Rerr.exit_partial else code in
    if code <> 0 then exit code
  in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let resync_arg =
    Arg.(
      value & flag
      & info [ "resync" ]
          ~doc:
            "Skip corrupt trace regions instead of failing: scan forward to \
             the next decodable record, report what was dropped on stderr, \
             and exit 3 (partial) if anything was.  v1 traces only.")
  in
  let no_batch_arg =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Force per-event dispatch even where the batch fast path would \
             engage (v2 traces, sharded replay).  Races are identical \
             either way; this is a performance escape hatch.")
  in
  let term =
    Term.(
      const action $ path_arg $ spec_arg $ no_suppress_arg $ no_vc_intern_arg
      $ no_page_cluster_arg $ pipeline_arg $ verbose_arg $ resync_arg
      $ no_batch_arg $ shards_arg $ metrics_out_arg $ sample_every_arg
      $ trace_out_arg $ progress_arg $ progress_every_arg $ max_shadow_arg
      $ max_events_arg $ deadline_arg)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Analyse a recorded trace."
       ~man:
         [ `S Manpage.s_description;
           `P
             "A corrupt trace fails with a structured error (exit 4) unless \
              $(b,--resync) is given, in which case decodable events around \
              the damage are still analysed (exit 3).";
           `P
             "v2 traces replay through a two-stage pipeline by default: a \
              decoder domain streams blocks into a bounded ring while the \
              detector drains it ($(b,--shards) K adds a router and one \
              detector domain per shard).  Races, report offsets, corruption \
              offsets and budget stop reasons are bit-identical to the \
              sequential path; $(b,--no-pipeline) restores it.  The summary \
              metrics report $(b,pipeline.decode_stall_us) / \
              $(b,pipeline.detect_stall_us) gauges, and with \
              $(b,--trace-out) the decoder runs on its own $(b,decoder) \
              timeline lane ($(b,racedet timings) then shows the \
              decode-vs-detect split)." ])
    term

(* ------------------------------------------------------------------ *)
(* inject: the fault-injection harness *)

let inject_cmd =
  let action w spec threads scale seeds fault_names via =
    let p = params w threads scale None in
    if via = "socket" then begin
      (* satellite harness: drive the same recover-or-declare contract
         through the serve wire path (Dgrace_serve.Chaos) — a faulted
         session must end poisoned while a concurrent healthy session
         matches the one-shot oracle and nothing leaks *)
      let faults =
        match fault_names with
        | [] ->
          [ Dgrace_serve.Client.Garbage; Dgrace_serve.Client.Truncate;
            Dgrace_serve.Client.Disconnect ]
        | names ->
          List.map
            (fun n ->
              match Dgrace_serve.Client.fault_of_string n with
              | Ok f -> f
              | Error msg ->
                Format.eprintf "racedet: %s@." msg;
                exit Rerr.exit_input_error)
            names
      in
      let fault_name = function
        | Dgrace_serve.Client.Garbage -> "garbage"
        | Dgrace_serve.Client.Truncate -> "truncate"
        | Dgrace_serve.Client.Disconnect -> "disconnect"
      in
      Format.printf "fault injection (socket): workload=%s detector=%s seeds=%s@."
        w.name (Spec.name spec)
        (String.concat "," (List.map string_of_int seeds));
      let failures = ref 0 in
      List.iter
        (fun injection_seed ->
          let evs = ref [] in
          ignore
            (Workload.run ~policy:(policy injection_seed) ~params:p
               ~sink:(fun e -> evs := e :: !evs)
               w);
          let events = List.rev !evs in
          List.iter
            (fun fault ->
              let outcome = Dgrace_serve.Chaos.run ~spec ~events fault in
              if not (Dgrace_serve.Chaos.acceptable outcome) then incr failures;
              Format.printf "  seed=%-3d %-11s %s@." injection_seed
                (fault_name fault)
                (Dgrace_serve.Chaos.describe outcome))
            faults)
        seeds;
      if !failures > 0 then begin
        Format.eprintf "racedet: inject: %d contract violation(s)@." !failures;
        exit 1
      end
      else
        Format.printf "all %d injection(s) isolated@."
          (List.length seeds * List.length faults);
      exit 0
    end;
    let faults =
      match fault_names with
      | [] -> Fault_harness.all
      | names ->
        List.map
          (fun n ->
            match Fault_harness.of_name n with
            | Some f -> f
            | None ->
              Format.eprintf "racedet: unknown fault %S (try: %s)@." n
                (String.concat ", " Fault_harness.names);
              exit Rerr.exit_input_error)
          names
    in
    Format.printf "fault injection: workload=%s detector=%s seeds=%s@." w.name
      (Spec.name spec)
      (String.concat "," (List.map string_of_int seeds));
    let failures = ref 0 in
    List.iter
      (fun injection_seed ->
        List.iter
          (fun fault ->
            let outcome =
              Fault_harness.run ~spec ~seed:injection_seed
                ~program:(w.Workload.program p) fault
            in
            if not (Fault_harness.acceptable outcome) then incr failures;
            Format.printf "  seed=%-3d %-11s %s@." injection_seed
              (Fault_harness.name fault)
              (Fault_harness.describe outcome))
          faults)
      seeds;
    if !failures > 0 then begin
      Format.eprintf "racedet: inject: %d contract violation(s)@." !failures;
      exit 1
    end
    else
      Format.printf "all %d injection(s) recovered or declared@."
        (List.length seeds * List.length faults)
  in
  let seeds_arg =
    Arg.(
      value
      & opt_all pos_int [ 1 ]
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Injection seed (repeatable; default 1).")
  in
  let faults_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:
            (Printf.sprintf "Fault to inject (repeatable): one of %s. \
                             Default: all."
               (String.concat ", " Fault_harness.names)))
  in
  let via_arg =
    Arg.(
      value
      & opt (enum [ ("direct", "direct"); ("socket", "socket") ]) "direct"
      & info [ "via" ] ~docv:"PATH"
          ~doc:
            "Injection path: $(b,direct) corrupts the pipeline in process; \
             $(b,socket) drives wire faults ($(b,garbage), $(b,truncate), \
             $(b,disconnect)) into a live serve session while a healthy \
             session streams next to it.")
  in
  let term =
    Term.(
      const action $ workload_arg $ spec_arg $ threads_arg $ scale_arg
      $ seeds_arg $ faults_arg $ via_arg)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Inject deterministic faults (corrupt trace bytes, stalled \
          threads, lost unlocks) and verify the recover-or-declare \
          contract."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Every injected fault must end in recovery (resync) or a \
              structured declared error — never an uncaught exception or a \
              hang.  Exit 0 when the contract holds for every seed/fault \
              pair, 1 otherwise.  The same seed always reproduces the same \
              corruption." ])
    term

(* ------------------------------------------------------------------ *)
(* explore: schedule sensitivity *)

let explore_cmd =
  let action w spec threads scale seed seeds no_suppress =
    let p = params w threads scale seed in
    Format.printf "workload: %s, detector: %s, %d scheduler seeds@.@." w.name
      (Spec.name spec) seeds;
    let union = Hashtbl.create 64 and inter = ref None in
    let counts =
      List.init seeds (fun i ->
          let s =
            Engine.run ~policy:(policy (i + 1))
              ~suppression:(suppression no_suppress) ~spec
              (w.Workload.program p)
          in
          let addrs =
            List.map (fun (r : Report.t) -> r.addr) s.races
            |> List.sort_uniq compare
          in
          List.iter (fun a -> Hashtbl.replace union a ()) addrs;
          (inter :=
             match !inter with
             | None -> Some addrs
             | Some prev -> Some (List.filter (fun a -> List.mem a addrs) prev));
          s.race_count)
    in
    List.iteri (fun i c -> Format.printf "seed %2d: %d race(s)@." (i + 1) c) counts;
    let inter = Option.value !inter ~default:[] in
    Format.printf
      "@.%d distinct racy location(s) across all seeds; %d found under every seed@."
      (Hashtbl.length union) (List.length inter);
    if Hashtbl.length union > List.length inter then
      Format.printf
        "schedule-sensitive: some races only surface under some interleavings@."
  in
  let seeds_arg =
    Arg.(value & opt int 5 & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of scheduler seeds (default 5).")
  in
  let term =
    Term.(
      const action $ workload_arg $ spec_arg $ threads_arg $ scale_arg
      $ seed_arg $ seeds_arg $ no_suppress_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Run a workload under several scheduler seeds and report race stability.")
    term

(* ------------------------------------------------------------------ *)
(* trace-info / trace-dump *)

let trace_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

(* both formats fold the same way; the header byte picks the decoder *)
let fold_trace path f init =
  if Dgrace_trace.Trace_reader.probe_version path >= 2 then
    Dgrace_trace.Trace_format_v2.fold_file path f init
  else Dgrace_trace.Trace_reader.fold_file path f init

let trace_info_cmd =
  let action path =
    or_fail @@ fun () ->
    let accesses = ref 0 and reads = ref 0 and writes = ref 0 in
    let syncs = ref 0 and allocs = ref 0 and frees = ref 0 in
    let forks = ref 0 and bytes_alloc = ref 0 in
    let tids = Hashtbl.create 16 and locks = Hashtbl.create 16 in
    let lo_addr = ref max_int and hi_addr = ref 0 in
    let total =
      fold_trace path
        (fun n ev ->
          (match ev with
           | Event.Access { tid; kind; addr; size; _ } ->
             incr accesses;
             (if kind = Event.Read then incr reads else incr writes);
             Hashtbl.replace tids tid ();
             lo_addr := min !lo_addr addr;
             hi_addr := max !hi_addr (addr + size)
           | Event.Acquire { tid; lock; _ } | Event.Release { tid; lock; _ } ->
             incr syncs;
             Hashtbl.replace tids tid ();
             Hashtbl.replace locks lock ()
           | Event.Fork { parent; child } ->
             incr forks;
             Hashtbl.replace tids parent ();
             Hashtbl.replace tids child ()
           | Event.Join _ -> incr syncs
           | Event.Alloc { size; _ } ->
             incr allocs;
             bytes_alloc := !bytes_alloc + size
           | Event.Free _ -> incr frees
           | Event.Thread_exit _ -> ());
          n + 1)
        0
    in
    Printf.printf "events:    %d
" total;
    Printf.printf "accesses:  %d (%d reads, %d writes)
" !accesses !reads !writes;
    Printf.printf "sync ops:  %d on %d sync objects
" !syncs (Hashtbl.length locks);
    Printf.printf "threads:   %d (%d forks)
" (Hashtbl.length tids) !forks;
    Printf.printf "heap:      %d allocs / %d frees, %d bytes total
" !allocs !frees !bytes_alloc;
    if !accesses > 0 then
      Printf.printf "addresses: 0x%x - 0x%x
" !lo_addr !hi_addr
  in
  Cmd.v
    (Cmd.info "trace-info" ~doc:"Summarise a recorded trace.")
    Term.(const action $ trace_path_arg)

let trace_dump_cmd =
  let action path limit =
    or_fail @@ fun () ->
    let printed =
      fold_trace path
        (fun n ev ->
          if n < limit then print_endline (Event.to_string ev);
          n + 1)
        0
    in
    if printed > limit then Printf.printf "... (%d more events)
" (printed - limit)
  in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "n"; "limit" ] ~docv:"N" ~doc:"Events to print (default 100).")
  in
  Cmd.v
    (Cmd.info "trace-dump" ~doc:"Print the events of a recorded trace.")
    Term.(const action $ trace_path_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* timings: validate a --trace-out document and print per-phase totals *)

let timings_cmd =
  let action path =
    match Json.parse_file path with
    | Error msg ->
      Stderr_line.line "timings: %s: invalid JSON: %s" path msg;
      exit Rerr.exit_input_error
    | Ok doc -> (
      match Chrome_trace.phases doc with
      | Error msg ->
        Stderr_line.line "timings: %s: invalid trace: %s" path msg;
        exit Rerr.exit_input_error
      | Ok r ->
        Format.printf "trace: %d event(s), %d lane(s), %d us wall@."
          r.Chrome_trace.events r.Chrome_trace.lanes r.Chrome_trace.wall_us;
        Format.printf "%-14s %-24s %10s %12s@." "lane" "phase" "count"
          "total(us)";
        List.iter
          (fun (p : Chrome_trace.phase) ->
            Format.printf "%-14s %-24s %10d %11d%s@." p.Chrome_trace.phase_lane
              p.Chrome_trace.phase_name p.Chrome_trace.count
              p.Chrome_trace.total_us
              (if p.Chrome_trace.estimated then "~" else ""))
          r.Chrome_trace.phases)
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A --trace-out document.")
  in
  Cmd.v
    (Cmd.info "timings"
       ~doc:
         "Validate a --trace-out Chrome trace and print the per-lane, \
          per-phase time table."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Checks the trace is loadable (balanced begin/end pairs, \
              monotone per-lane timestamps, well-formed counters), then \
              aggregates spans and sampled timers into one row per (lane, \
              phase).  A trailing $(b,~) marks totals estimated from \
              sampled timers rather than measured span pairs.  Exit 4 on \
              an invalid document." ])
    Term.(const action $ path_arg)

(* ------------------------------------------------------------------ *)
(* serve: the crash-isolated streaming detection service *)

module Serve = Dgrace_serve.Server
module Serve_client = Dgrace_serve.Client
module Serve_chaos = Dgrace_serve.Chaos

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to serve on.")

let serve_cmd =
  let action socket spool domains max_sessions inbox session_deadline
      drain_deadline spec no_vc_intern max_shadow max_events deadline =
    or_fail @@ fun () ->
    let cfg =
      {
        Serve.default_config with
        domains;
        max_sessions;
        inbox_frames = inbox;
        session_deadline_s = session_deadline;
        drain_deadline_s = drain_deadline;
        log = Stderr_line.emit;
        spool_spec = spec;
        spool_vc_intern = not no_vc_intern;
        spool_budget = budget max_shadow max_events deadline;
      }
    in
    match (socket, spool) with
    | Some path, None ->
      Stderr_line.set_tag (Some "serve");
      let t = Serve.start ~cfg ~socket:path () in
      Stderr_line.line "listening on %s (domains=%d max-sessions=%d)" path
        domains max_sessions;
      let stop = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Sys.set_signal Sys.sigterm handler;
      Sys.set_signal Sys.sigint handler;
      let rec park () =
        if not (Atomic.get stop) then begin
          Thread.delay 0.1;
          park ()
        end
      in
      park ();
      Stderr_line.line "draining (deadline %.1fs)" drain_deadline;
      Serve.drain t;
      Stderr_line.line "drained"
    | None, Some dir ->
      let results = Serve.process_spool ~cfg ~dir () in
      let code =
        List.fold_left
          (fun acc (f, r) ->
            match r with
            | Ok (s : Engine.summary) ->
              Format.printf "%s: races=%d%s%s@." f s.race_count
                (if s.partial <> None then " partial" else "")
                (if s.degraded then " degraded" else "");
              max acc (Engine.exit_code_of_summary s)
            | Error e ->
              Format.printf "%s: error: %s@." f (Rerr.to_string e);
              max acc (Rerr.exit_code e))
          0 results
      in
      if code <> 0 then exit code
    | _ ->
      Stderr_line.line "serve: exactly one of --socket or --spool is required";
      exit Rerr.exit_input_error
  in
  let spool_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "One-shot batch mode: analyse every *.trc file in $(docv) as \
             its own session and print one line per file.")
  in
  let domains_arg =
    Arg.(
      value & opt pos_int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let max_sessions_arg =
    Arg.(
      value & opt pos_int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Admission cap: concurrent sessions past $(docv) are answered \
             with Overloaded and a retry hint.")
  in
  let inbox_arg =
    Arg.(
      value & opt pos_int 64
      & info [ "inbox" ] ~docv:"FRAMES"
          ~doc:
            "Per-session inbox bound; FEED frames past it are shed with \
             Overloaded (the client retries the same frame).")
  in
  let session_deadline_arg =
    Arg.(
      value
      & opt (some pos_float) None
      & info [ "session-deadline-s" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog: a session still streaming after $(docv) seconds is \
             sealed as a partial summary.")
  in
  let drain_deadline_arg =
    Arg.(
      value & opt pos_float 5.0
      & info [ "drain-deadline-s" ] ~docv:"SECONDS"
          ~doc:
            "Grace given to in-flight sessions on SIGTERM before they are \
             sealed as partial summaries (default 5).")
  in
  let term =
    Term.(
      const action $ socket_arg $ spool_arg $ domains_arg $ max_sessions_arg
      $ inbox_arg $ session_deadline_arg $ drain_deadline_arg $ spec_arg
      $ no_vc_intern_arg $ max_shadow_arg $ max_events_arg $ deadline_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve streaming race detection over a Unix socket (or a spool \
          directory) with per-session crash isolation."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Sessions are crash-only: a corrupt frame, an exhausted budget \
              or an internal failure poisons only that session, which then \
              answers every request with its structured error.  Worker \
              domains that crash are restarted with capped exponential \
              backoff.  SIGTERM drains: in-flight sessions get \
              $(b,--drain-deadline-s) to finish, stragglers are sealed as \
              partial summaries (exit-code-3 semantics), and the server \
              exits 0.  See doc/serve.md for the wire protocol.";
           `P
             "The detector/budget flags apply to $(b,--spool) sessions; \
              socket clients pick their own per session." ])
    term

(* client: drive a serve instance *)

let client_fault_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Serve_client.fault_of_string s) in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with
       | Serve_client.Garbage -> "garbage"
       | Serve_client.Truncate -> "truncate"
       | Serve_client.Disconnect -> "disconnect")
  in
  Arg.conv (parse, print)

let req_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Server socket to connect to.")

let client_replay_cmd =
  let action path socket spec no_vc_intern chunk_events fault fault_after
      verbose max_shadow max_events deadline =
    or_fail @@ fun () ->
    let v2 = Dgrace_trace.Trace_reader.probe_version path >= 2 in
    let events =
      if v2 then Dgrace_trace.Trace_format_v2.read_file path
      else Dgrace_trace.Trace_reader.read_file path
    in
    match
      (* a v2 trace streams as BATCH frames (the server's batch fast
         path); fault injection exercises the v1 FEED framing *)
      if v2 && fault = None then
        Serve_client.replay_batched ~spec:(Spec.name spec)
          ~vc_intern:(not no_vc_intern) ?max_events ?deadline_s:deadline
          ?max_shadow_bytes:max_shadow ~chunk_events ~socket events
      else
        Serve_client.replay ~spec:(Spec.name spec) ~vc_intern:(not no_vc_intern)
          ?max_events ?deadline_s:deadline ?max_shadow_bytes:max_shadow
          ~chunk_events ?fault ~fault_after_frames:fault_after ~socket events
    with
    | Ok { Serve_client.races; summary } ->
      if verbose then List.iter print_endline races;
      let geti k =
        match Json.member k summary with Some (Json.Int n) -> n | _ -> 0
      in
      let getb k =
        match Json.member k summary with Some (Json.Bool b) -> b | _ -> false
      in
      let partial = getb "partial" and degraded = getb "degraded" in
      Format.printf "races: %d (%d suppressed)%s%s@." (geti "races")
        (geti "suppressed")
        (if partial then " partial" else "")
        (if degraded then " degraded" else "");
      let code =
        if partial || degraded then Rerr.exit_partial
        else if geti "races" > 0 then Rerr.exit_races
        else Rerr.exit_ok
      in
      if code <> 0 then exit code
    | Error (Serve_client.Server { code; error }) ->
      Stderr_line.line "client: server error: %s"
        (Json.to_string ~minify:true error);
      exit code
    | Error f ->
      Stderr_line.line "client: %s" (Serve_client.failure_to_string f);
      exit Rerr.exit_input_error
  in
  let trace_pos_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file to stream.")
  in
  let chunk_events_arg =
    Arg.(
      value & opt pos_int 512
      & info [ "chunk-events" ] ~docv:"N"
          ~doc:"Events per FEED frame (default 512).")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some client_fault_conv) None
      & info [ "inject-fault" ] ~docv:"FAULT"
          ~doc:
            "Break the wire on purpose: one of $(b,garbage), $(b,truncate), \
             $(b,disconnect).  The session must end declared, not crash the \
             server.")
  in
  let fault_after_arg =
    Arg.(
      value & opt int 2
      & info [ "fault-after" ] ~docv:"FRAMES"
          ~doc:"Inject after $(docv) FEED frames (default 2).")
  in
  let term =
    Term.(
      const action $ trace_pos_arg $ req_socket_arg $ spec_arg
      $ no_vc_intern_arg $ chunk_events_arg $ fault_arg $ fault_after_arg
      $ verbose_arg $ max_shadow_arg $ max_events_arg $ deadline_arg)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Stream a recorded trace through a serve instance.")
    term

let client_status_cmd =
  let action socket =
    match Serve_client.connect ~socket with
    | Error f ->
      Stderr_line.line "client: %s" (Serve_client.failure_to_string f);
      exit Rerr.exit_input_error
    | Ok c -> (
      let r = Serve_client.status c in
      Serve_client.close c;
      match r with
      | Ok j -> print_endline (Json.to_string j)
      | Error f ->
        Stderr_line.line "client: %s" (Serve_client.failure_to_string f);
        exit Rerr.exit_input_error)
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Print a serve instance's status document.")
    Term.(const action $ req_socket_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a racedet serve instance (replay a trace, get status).")
    [ client_replay_cmd; client_status_cmd ]

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let action () =
    print_endline "workloads:";
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "  %-14s %s (threads=%d, %d seeded races)\n" w.name
          w.description w.defaults.threads w.expected_races)
      Registry.all;
    print_endline "\ndetectors:";
    List.iter (Printf.printf "  %s\n") Spec.all_names
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available workloads and detectors.")
    Term.(const action $ const ())

let () =
  let doc = "dynamic-granularity data race detection (IPDPS 2014 reproduction)" in
  let info = Cmd.info "racedet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; compare_cmd; profile_cmd; explore_cmd; record_cmd;
            convert_cmd; replay_cmd; inject_cmd; serve_cmd; client_cmd;
            trace_info_cmd; trace_dump_cmd; metrics_info_cmd; timings_cmd;
            list_cmd ]))
