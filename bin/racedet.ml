(* racedet — command-line front end.

   Subcommands:
     run          analyse a workload with one detector
     compare      analyse a workload with several detectors side by side
     profile      phase/hot-path breakdown of one workload per detector
     record       record a workload's event stream to a trace file
     replay       analyse a recorded trace
     metrics-info validate and summarise a --metrics-out document
     list         list workloads and detectors *)

open Cmdliner
open Dgrace_core
open Dgrace_workloads
open Dgrace_events
module Json = Dgrace_obs.Json
module Metrics = Dgrace_obs.Metrics
module Sampler = Dgrace_obs.Sampler
module State_matrix = Dgrace_obs.State_matrix
module Export = Dgrace_obs.Export

(* ------------------------------------------------------------------ *)
(* converters and shared options *)

let spec_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Spec.of_string s) in
  let print ppf s = Format.pp_print_string ppf (Spec.name s) in
  Arg.conv (parse, print)

let workload_conv =
  let parse s =
    match Registry.find s with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown workload %S (try: %s)" s
              (String.concat ", " Registry.names)))
  in
  let print ppf (w : Workload.t) = Format.pp_print_string ppf w.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Benchmark workload to run (see $(b,list)).")

let spec_arg =
  Arg.(
    value
    & opt spec_conv Spec.dynamic
    & info [ "d"; "detector" ] ~docv:"DETECTOR"
        ~doc:
          (Printf.sprintf "Detection algorithm: one of %s."
             (String.concat ", " Spec.all_names)))

let threads_arg =
  Arg.(value & opt (some int) None & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker thread count.")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "s"; "scale" ] ~docv:"K" ~doc:"Workload size factor.")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")

let sched_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "sched-seed" ] ~docv:"SEED" ~doc:"Scheduler interleaving seed.")

let no_suppress_arg =
  Arg.(
    value & flag
    & info [ "no-suppressions" ]
        ~doc:"Disable the default runtime suppression rules (libc/ld/pthread).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every race report.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's structured metrics (summary, time-series, \
           state-transition matrix) as versioned JSON to $(docv).")

let sample_every_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "sample-every" ] ~docv:"N"
        ~doc:
          "Snapshot shadow-memory accounting every $(docv) events into the \
           exported time-series (active only with $(b,--metrics-out)).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Print a heartbeat line to stderr every 100k events.")

let params w threads scale seed = Workload.with_params ?threads ?scale ?seed w

let suppression no_suppress =
  if no_suppress then Suppression.empty else Suppression.default_runtime

let policy sched_seed = Dgrace_sim.Scheduler.Chunked { seed = sched_seed; chunk = 64 }

(* Heartbeat for long runs: reads the live detector state so the line
   shows real progress, not just an event count. *)
let progress_for flag (d : Dgrace_detectors.Detector.t) =
  if not flag then None
  else begin
    let t0 = Unix.gettimeofday () in
    Some
      ( 100_000,
        fun events ->
          Printf.eprintf
            "[progress] %s: events=%d accesses=%d races=%d shadow=%dKB (%.1fs)\n%!"
            d.name events d.stats.Dgrace_detectors.Run_stats.accesses
            (Dgrace_detectors.Detector.race_count d)
            (Dgrace_shadow.Accounting.current_bytes d.account / 1024)
            (Unix.gettimeofday () -. t0) )
  end

let workload_json (w : Workload.t) (p : Workload.params) =
  Json.Obj
    [
      ("name", Json.String w.name);
      ("threads", Json.Int p.threads);
      ("scale", Json.Int p.scale);
      ("seed", Json.Int p.seed);
    ]

let write_metrics path json =
  Json.to_file path json;
  Format.eprintf "metrics written to %s@." path

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let action w spec threads scale seed sched_seed no_suppress verbose
      metrics_out sample_every progress =
    let p = params w threads scale seed in
    let d = Spec.to_detector ~suppression:(suppression no_suppress) spec in
    let s =
      Engine.with_detector ~policy:(policy sched_seed)
        ?sample_every:(Option.map (fun _ -> sample_every) metrics_out)
        ?progress:(progress_for progress d) d
        (w.Workload.program p)
    in
    Format.printf "workload: %s (threads=%d scale=%d seed=%d)@." w.name p.threads
      p.scale p.seed;
    Format.printf "%a@." Engine.pp_summary s;
    if verbose then
      List.iter (fun r -> Format.printf "%s@." (Report.to_string r)) s.races;
    Option.iter
      (fun path ->
        write_metrics path
          (Engine.summary_to_json ~workload:(workload_json w p) s))
      metrics_out;
    if s.race_count > 0 then exit 2
  in
  let term =
    Term.(
      const action $ workload_arg $ spec_arg $ threads_arg $ scale_arg
      $ seed_arg $ sched_seed_arg $ no_suppress_arg $ verbose_arg
      $ metrics_out_arg $ sample_every_arg $ progress_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one detector."
       ~man:
         [ `S Manpage.s_description;
           `P "Exit code 2 when races are found, 0 when clean." ])
    term

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_cmd =
  let action w threads scale seed sched_seed no_suppress metrics_out
      sample_every =
    let p = params w threads scale seed in
    Format.printf "workload: %s (threads=%d scale=%d seed=%d)@.@." w.name
      p.threads p.scale p.seed;
    Format.printf "%-28s %8s %10s %12s %10s %10s@." "detector" "races"
      "time(ms)" "peak-mem" "peak-VCs" "same-ep";
    let base = ref 0. in
    let slowdowns = ref [] in
    let summaries = ref [] in
    List.iter
      (fun spec ->
        let s =
          Engine.run ~policy:(policy sched_seed)
            ~suppression:(suppression no_suppress)
            ?sample_every:(Option.map (fun _ -> sample_every) metrics_out)
            ~spec
            (w.Workload.program p)
        in
        summaries := s :: !summaries;
        if spec = Spec.No_detection then base := s.elapsed
        else if !base > 0. then
          slowdowns := (s.elapsed /. !base) :: !slowdowns;
        Format.printf "%-28s %8d %10.1f %11dK %10d %9.0f%%@." s.detector
          s.race_count (1000. *. s.elapsed)
          (s.mem.peak_bytes / 1024)
          s.mem.peak_vcs
          (100. *. Dgrace_detectors.Run_stats.same_epoch_ratio s.stats))
      [
        Spec.No_detection; Spec.byte; Spec.word; Spec.dynamic;
        Spec.Djit { granularity = 4 }; Spec.Drd; Spec.Inspector; Spec.Eraser;
        Spec.Multirace; Spec.Racetrack { region = 64 }; Spec.Literace;
      ];
    (* the paper's Figure 7 summary statistic: geometric-mean slowdown
       of each detector relative to the uninstrumented (null) run *)
    if !slowdowns <> [] then
      Format.printf "@.%-28s %8s %9.2fx (slowdown vs none)@." "geomean" ""
        (Dgrace_util.Stat.geomean !slowdowns);
    Option.iter
      (fun path ->
        write_metrics path
          (Engine.summaries_to_json ~workload:(workload_json w p)
             (List.rev !summaries)))
      metrics_out
  in
  let term =
    Term.(
      const action $ workload_arg $ threads_arg $ scale_arg $ seed_arg
      $ sched_seed_arg $ no_suppress_arg $ metrics_out_arg $ sample_every_arg)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run one workload under every detector.") term

(* ------------------------------------------------------------------ *)
(* profile *)

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let print_profile (s : Engine.summary) =
  let stats = s.stats in
  let total = stats.accesses in
  let fast = stats.same_epoch in
  let analysed =
    (* instrumented detectors count this directly; the invariant
       fast + analysed = total holds by construction *)
    Option.value
      (Metrics.find_counter s.metrics "accesses.analysed")
      ~default:(total - fast)
  in
  Format.printf "@.detector: %s@." s.detector;
  Format.printf "  accesses                 : %d@." total;
  Format.printf "  same-epoch fast path     : %d (%.1f%%)@." fast
    (pct fast total);
  Format.printf "  slow path (analysed)     : %d (%.1f%%)@." analysed
    (pct analysed total);
  Option.iter
    (Format.printf "    epoch comparisons      : %d@.")
    (Metrics.find_counter s.metrics "phase.epoch_compare");
  Option.iter
    (Format.printf "    full VC operations     : %d@.")
    (Metrics.find_counter s.metrics "phase.vc_op");
  Format.printf "  sync ops                 : %d@." stats.sync_ops;
  (match
     ( Metrics.find_counter s.metrics "sharing.decisions",
       Metrics.find_counter s.metrics "sharing.decisions.shared",
       Metrics.find_counter s.metrics "sharing.decisions.private" )
   with
   | Some d, Some sh, Some pr when d > 0 ->
     Format.printf "  sharing decisions        : %d (shared %d / private %d)@."
       d sh pr
   | _ -> ());
  Option.iter
    (fun m ->
      Format.printf "  state transitions        : %d@." (State_matrix.total m))
    s.transitions;
  Format.printf "  races                    : %d (%d suppressed)@." s.race_count
    s.suppressed;
  Format.printf "  elapsed                  : %.3fs@." s.elapsed

let profile_cmd =
  let action w specs threads scale seed sched_seed no_suppress metrics_out
      sample_every progress =
    let specs =
      if specs = [] then [ Spec.byte; Spec.word; Spec.dynamic ] else specs
    in
    let p = params w threads scale seed in
    Format.printf "workload: %s (threads=%d scale=%d seed=%d)@." w.name
      p.threads p.scale p.seed;
    let summaries =
      List.map
        (fun spec ->
          let d =
            Spec.to_detector ~suppression:(suppression no_suppress) spec
          in
          let s =
            Engine.with_detector ~policy:(policy sched_seed)
              ?sample_every:(Option.map (fun _ -> sample_every) metrics_out)
              ?progress:(progress_for progress d) d
              (w.Workload.program p)
          in
          print_profile s;
          s)
        specs
    in
    Option.iter
      (fun path ->
        write_metrics path
          (Engine.summaries_to_json ~workload:(workload_json w p) summaries))
      metrics_out
  in
  let specs_arg =
    Arg.(
      value
      & opt_all spec_conv []
      & info [ "d"; "detector" ] ~docv:"DETECTOR"
          ~doc:
            "Detector(s) to profile (repeatable); default: byte, word, \
             dynamic.")
  in
  let term =
    Term.(
      const action $ workload_arg $ specs_arg $ threads_arg $ scale_arg
      $ seed_arg $ sched_seed_arg $ no_suppress_arg $ metrics_out_arg
      $ sample_every_arg $ progress_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload and print the per-detector phase breakdown: \
          same-epoch fast path vs. epoch comparison vs. full vector-clock \
          work, plus sharing-state telemetry."
       ~man:
         [ `S Manpage.s_description;
           `P
             "The fast-path and slow-path counts sum to the total number of \
              analysed memory accesses; the sharing lines expose the \
              dynamic-granularity state machine (paper Fig. 2) directly." ])
    term

(* ------------------------------------------------------------------ *)
(* metrics-info *)

let metrics_info_cmd =
  let action path =
    match Json.parse_file path with
    | Error msg ->
      Format.eprintf "metrics-info: %s: invalid JSON: %s@." path msg;
      exit 1
    | Ok doc -> (
      match Export.validate doc with
      | Error msg ->
        Format.eprintf "metrics-info: %s: not a metrics document: %s@." path
          msg;
        exit 1
      | Ok (version, kind) ->
        Format.printf "%s: %d@." Export.version_key version;
        Format.printf "kind: %s@." kind;
        let runs =
          match Json.member "runs" doc with
          | Some (Json.List rs) -> rs
          | _ -> [ doc ]
        in
        Format.printf "runs: %d@." (List.length runs);
        List.iter
          (fun run ->
            let detector =
              match Json.member "detector" run with
              | Some (Json.String d) -> d
              | _ -> "?"
            in
            let samples =
              match
                Option.bind (Json.member "timeseries" run) (Json.member "samples")
              with
              | Some (Json.List ss) -> List.length ss
              | _ -> 0
            in
            let transitions =
              match
                Option.bind (Json.member "transitions" run) (Json.member "total")
              with
              | Some (Json.Int n) -> n
              | _ -> 0
            in
            Format.printf "  %s: samples=%d transitions=%d@." detector samples
              transitions)
          runs)
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A --metrics-out document.")
  in
  Cmd.v
    (Cmd.info "metrics-info"
       ~doc:"Validate and summarise a --metrics-out JSON document.")
    Term.(const action $ path_arg)

(* ------------------------------------------------------------------ *)
(* record / replay *)

let trace_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"TRACE" ~doc:"Trace file path.")

let record_cmd =
  let action w threads scale seed sched_seed path =
    let p = params w threads scale seed in
    let sim, n =
      Dgrace_trace.Trace_writer.to_file path (fun sink ->
          Workload.run ~policy:(policy sched_seed) ~params:p ~sink w)
    in
    Format.printf "recorded %d events (%d accesses, %d threads) to %s@." n
      sim.accesses sim.threads path
  in
  let term =
    Term.(
      const action $ workload_arg $ threads_arg $ scale_arg $ seed_arg
      $ sched_seed_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a workload's event stream to a trace file.")
    term

let replay_cmd =
  let action path spec no_suppress verbose =
    let events = Dgrace_trace.Trace_reader.read_file path in
    let s =
      Engine.replay ~suppression:(suppression no_suppress) ~spec
        (List.to_seq events)
    in
    Format.printf "%a@." Engine.pp_summary s;
    if verbose then
      List.iter (fun r -> Format.printf "%s@." (Report.to_string r)) s.races;
    if s.race_count > 0 then exit 2
  in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let term =
    Term.(const action $ path_arg $ spec_arg $ no_suppress_arg $ verbose_arg)
  in
  Cmd.v (Cmd.info "replay" ~doc:"Analyse a recorded trace.") term

(* ------------------------------------------------------------------ *)
(* explore: schedule sensitivity *)

let explore_cmd =
  let action w spec threads scale seed seeds no_suppress =
    let p = params w threads scale seed in
    Format.printf "workload: %s, detector: %s, %d scheduler seeds@.@." w.name
      (Spec.name spec) seeds;
    let union = Hashtbl.create 64 and inter = ref None in
    let counts =
      List.init seeds (fun i ->
          let s =
            Engine.run ~policy:(policy (i + 1))
              ~suppression:(suppression no_suppress) ~spec
              (w.Workload.program p)
          in
          let addrs =
            List.map (fun (r : Report.t) -> r.addr) s.races
            |> List.sort_uniq compare
          in
          List.iter (fun a -> Hashtbl.replace union a ()) addrs;
          (inter :=
             match !inter with
             | None -> Some addrs
             | Some prev -> Some (List.filter (fun a -> List.mem a addrs) prev));
          s.race_count)
    in
    List.iteri (fun i c -> Format.printf "seed %2d: %d race(s)@." (i + 1) c) counts;
    let inter = Option.value !inter ~default:[] in
    Format.printf
      "@.%d distinct racy location(s) across all seeds; %d found under every seed@."
      (Hashtbl.length union) (List.length inter);
    if Hashtbl.length union > List.length inter then
      Format.printf
        "schedule-sensitive: some races only surface under some interleavings@."
  in
  let seeds_arg =
    Arg.(value & opt int 5 & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of scheduler seeds (default 5).")
  in
  let term =
    Term.(
      const action $ workload_arg $ spec_arg $ threads_arg $ scale_arg
      $ seed_arg $ seeds_arg $ no_suppress_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Run a workload under several scheduler seeds and report race stability.")
    term

(* ------------------------------------------------------------------ *)
(* trace-info / trace-dump *)

let trace_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let trace_info_cmd =
  let action path =
    let accesses = ref 0 and reads = ref 0 and writes = ref 0 in
    let syncs = ref 0 and allocs = ref 0 and frees = ref 0 in
    let forks = ref 0 and bytes_alloc = ref 0 in
    let tids = Hashtbl.create 16 and locks = Hashtbl.create 16 in
    let lo_addr = ref max_int and hi_addr = ref 0 in
    let total =
      Dgrace_trace.Trace_reader.fold_file path
        (fun n ev ->
          (match ev with
           | Event.Access { tid; kind; addr; size; _ } ->
             incr accesses;
             (if kind = Event.Read then incr reads else incr writes);
             Hashtbl.replace tids tid ();
             lo_addr := min !lo_addr addr;
             hi_addr := max !hi_addr (addr + size)
           | Event.Acquire { tid; lock; _ } | Event.Release { tid; lock; _ } ->
             incr syncs;
             Hashtbl.replace tids tid ();
             Hashtbl.replace locks lock ()
           | Event.Fork { parent; child } ->
             incr forks;
             Hashtbl.replace tids parent ();
             Hashtbl.replace tids child ()
           | Event.Join _ -> incr syncs
           | Event.Alloc { size; _ } ->
             incr allocs;
             bytes_alloc := !bytes_alloc + size
           | Event.Free _ -> incr frees
           | Event.Thread_exit _ -> ());
          n + 1)
        0
    in
    Printf.printf "events:    %d
" total;
    Printf.printf "accesses:  %d (%d reads, %d writes)
" !accesses !reads !writes;
    Printf.printf "sync ops:  %d on %d sync objects
" !syncs (Hashtbl.length locks);
    Printf.printf "threads:   %d (%d forks)
" (Hashtbl.length tids) !forks;
    Printf.printf "heap:      %d allocs / %d frees, %d bytes total
" !allocs !frees !bytes_alloc;
    if !accesses > 0 then
      Printf.printf "addresses: 0x%x - 0x%x
" !lo_addr !hi_addr
  in
  Cmd.v
    (Cmd.info "trace-info" ~doc:"Summarise a recorded trace.")
    Term.(const action $ trace_path_arg)

let trace_dump_cmd =
  let action path limit =
    let printed =
      Dgrace_trace.Trace_reader.fold_file path
        (fun n ev ->
          if n < limit then print_endline (Event.to_string ev);
          n + 1)
        0
    in
    if printed > limit then Printf.printf "... (%d more events)
" (printed - limit)
  in
  let limit_arg =
    Arg.(value & opt int 100 & info [ "n"; "limit" ] ~docv:"N" ~doc:"Events to print (default 100).")
  in
  Cmd.v
    (Cmd.info "trace-dump" ~doc:"Print the events of a recorded trace.")
    Term.(const action $ trace_path_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let action () =
    print_endline "workloads:";
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "  %-14s %s (threads=%d, %d seeded races)\n" w.name
          w.description w.defaults.threads w.expected_races)
      Registry.all;
    print_endline "\ndetectors:";
    List.iter (Printf.printf "  %s\n") Spec.all_names
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available workloads and detectors.")
    Term.(const action $ const ())

let () =
  let doc = "dynamic-granularity data race detection (IPDPS 2014 reproduction)" in
  let info = Cmd.info "racedet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; compare_cmd; profile_cmd; explore_cmd; record_cmd;
            replay_cmd; trace_info_cmd; trace_dump_cmd; metrics_info_cmd;
            list_cmd ]))
