(* One process-wide emitter for diagnostic lines.

   Everything racedet says on stderr — progress heartbeats, structured
   errors, resync reports, "written to" notices — goes through [line],
   which writes the whole line (newline included) as a single buffered
   write followed by one flush, under one mutex.  Sharded replay runs
   detectors on several domains; without this, a heartbeat fired from
   one domain could interleave mid-line with an error printed from
   another.  [Printf.eprintf] buffers per call site and flushes
   independently, which is exactly the interleaving hazard. *)

let mu = Mutex.create ()

let emit s =
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '\n' then s
    else s ^ "\n"
  in
  Mutex.lock mu;
  output_string stderr s;
  flush stderr;
  Mutex.unlock mu

let line fmt = Printf.ksprintf emit fmt

(* For callers holding a [Format] pretty-printer (structured errors):
   render to a string first, then emit atomically. *)
let linef fmt = Format.kasprintf emit fmt
