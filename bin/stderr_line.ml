(* One process-wide emitter for diagnostic lines.

   Everything racedet says on stderr — progress heartbeats, structured
   errors, resync reports, "written to" notices, serve's supervision
   log — goes through [line]: the whole line (tag, newline included)
   is rendered first, then written and flushed as one critical section
   under one mutex.  Sharded replay and `racedet serve` run detectors
   on several domains; without this, a heartbeat fired from one domain
   could interleave mid-line with an error printed from another.
   [Printf.eprintf] buffers per call site and flushes independently,
   which is exactly the interleaving hazard.

   The emitter never raises: a dead stderr (closed pipe under a
   supervisor) silently drops the line rather than crashing the worker
   that tried to log — logging is never allowed to take down an
   otherwise healthy session. *)

let mu = Mutex.create ()

(* Per-domain line tag: `racedet serve` workers set it to the session
   id they are processing, so every line emitted from inside that
   session's detector (heartbeats, degrade notices) is attributable
   without threading a logger through the whole stack.  Domain-local
   on purpose: each worker domain owns one session at a time. *)
let tag_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_tag t = Domain.DLS.set tag_key t

let with_tag t f =
  let old = Domain.DLS.get tag_key in
  Domain.DLS.set tag_key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set tag_key old) f

let emit s =
  let s =
    match Domain.DLS.get tag_key with
    | Some t -> Printf.sprintf "[%s] %s" t s
    | None -> s
  in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '\n' then s
    else s ^ "\n"
  in
  Mutex.lock mu;
  (try
     output_string stderr s;
     flush stderr
   with Sys_error _ -> ());
  Mutex.unlock mu

let line fmt = Printf.ksprintf emit fmt

(* For callers holding a [Format] pretty-printer (structured errors):
   render to a string first, then emit atomically. *)
let linef fmt = Format.kasprintf emit fmt
