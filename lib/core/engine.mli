(** The analysis engine: run a simulated program (or a recorded event
    stream) under a detector and collect everything the evaluation
    needs — races, stream statistics, shadow-memory accounting,
    wall-clock time, and (on request) a sampled time-series plus the
    detector's own telemetry.

    This is the main entry point of the library:

    {[
      let summary =
        Engine.run ~spec:Spec.dynamic (fun () ->
          let a = Sim.malloc 64 in
          let t = Sim.spawn (fun () -> Sim.write a 4) in
          Sim.write a 4;
          Sim.join t)
      in
      List.iter (fun r -> print_endline (Report.to_string r)) summary.races
    ]}

    {b Resource budgets.}  Every entry point takes an optional
    {!Dgrace_resilience.Budget.t}.  Exceeding the shadow-memory cap
    first asks the detector to degrade (shed shadow state; the summary
    is flagged [degraded]); exceeding the event or wall-clock cap —
    or the shadow cap once degradation is exhausted — ends the run
    early with [partial = Some reason].  A partial or degraded summary
    still reports every race found: results are a lower bound, never
    garbage.  See [doc/resilience.md].

    {b Clocks.}  Every entry point also takes an optional
    [clock : Dgrace_obs.Clock.source].  The budget's deadline check and
    the summary's [elapsed] field read it instead of the wall clock, so
    deadline behaviour is deterministic under {!Dgrace_obs.Clock.ticker}
    in tests; the default is {!Dgrace_obs.Clock.ns}. *)

open Dgrace_events
open Dgrace_detectors
open Dgrace_sim

type summary = {
  detector : string;  (** detector name *)
  races : Report.t list;  (** distinct-location races, detection order *)
  race_count : int;
  suppressed : int;  (** reports dropped by suppression rules *)
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;  (** wall-clock seconds for the instrumented run *)
  sim : Sim.result option;
      (** simulator result (None for replays and budget-stopped runs) *)
  partial : Dgrace_resilience.Budget.stop option;
      (** why the run ended before end-of-stream, if it did *)
  degraded : bool;
      (** the detector shed shadow state to stay under its budget *)
  metrics : Dgrace_obs.Metrics.t;  (** the detector's instruments *)
  transitions : Dgrace_obs.State_matrix.t option;
      (** sharing-state transition counts (dynamic detectors) *)
  timeseries : Dgrace_obs.Recorder.t option;
      (** wall-clock-stamped memory/stream samples, present iff
          [sample_every] was given *)
}

and mem_summary = {
  peak_bytes : int;  (** peak of hash + vector clock + bitmap bytes *)
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_interned_bytes : int;
      (** the deduplicated (hash-consed snapshot) portion of
          [peak_vc_bytes] — an annotation, not a fourth factor of
          [peak_bytes] *)
  peak_vcs : int;  (** max vector clocks simultaneously live *)
  total_vcs : int;  (** vector clocks ever created *)
  avg_sharing : float;  (** average bytes sharing one vector clock *)
}

val run :
  ?policy:Scheduler.policy ->
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  (unit -> unit) ->
  summary
(** Execute the program under the simulator, feeding every event to a
    fresh detector built from [spec].

    [batched] (default [false]) accumulates the pushed events into
    {!Dgrace_events.Batch.t} buffers and hands full batches to the
    detector's [process_batch] fast path.  It engages only when the
    detector has one {e and} nothing per-event is observable — no
    budget, [sample_every], [progress] or [tracer] — so results are
    always identical to the per-event loop (doc/trace.md).

    [sample_every] snapshots shadow-memory accounting and stream
    counters every N events into [summary.timeseries] (a final sample
    is always taken at end of stream).  [progress] is [(every, f)]:
    [f events] is called every [every] events — the CLI heartbeat;
    [every] must be positive (the CLI argument parser enforces this).

    [tracer] turns on the flight recorder (doc/observability.md): the
    run phase becomes an ["engine.run"] span on the ["main"] lane,
    [d.finish] an ["engine.finish"] span, budget shedding and stops
    ["budget.degrade"]/["budget.stop"] instants; the detector's
    per-phase sampled timers and a ["detector.on_event"] timer land on
    the same lane, and the recorder's series are attached as counter
    tracks — export with {!Dgrace_obs.Chrome_trace.to_json}.

    When nothing is given the event loop is exactly the detector's own
    handler: observability and governance cost nothing unless asked
    for.

    @raise Sim.Deadlock when the workload globally deadlocks
    (see {!run_checked} for the [result] form). *)

val replay :
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  Event.t Seq.t ->
  summary
(** Analyse a pre-recorded event stream (see {!Dgrace_trace}).
    [batched] works as in {!run}; [tracer] works as in {!run}, with
    the dispatch phase recorded as an ["engine.replay"] span.
    @raise Dgrace_resilience.Error.E when forcing the sequence hits a
    corrupt record (see {!replay_checked} for the [result] form). *)

val replay_batches :
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  ((Batch.t -> unit) -> unit) ->
  summary
(** Batched replay proper: [replay_batches ~spec feed] calls
    [feed consume] and expects the producer to push whole
    {!Dgrace_events.Batch.t} buffers — decoded v2 blocks
    ({!Dgrace_trace.Trace_format_v2.fold_batches}) or pre-packed
    arrays.  An eligible detector consumes them via [process_batch];
    under any budget, [sample_every], [progress] or [tracer], or for a
    detector without the fast path, each batch is unrolled through the
    same composed per-event sink as {!replay}, so those semantics are
    preserved exactly.  Budget stops raised while the producer runs
    are converted to [partial] as usual; errors the producer raises
    (e.g. a corrupt v2 block) propagate.
    @raise Dgrace_resilience.Error.E on corrupt input (see
    {!replay_batches_checked}). *)

val replay_sharded :
  ?mode:Dgrace_par.Par.mode ->
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  shards:int ->
  spec:Spec.t ->
  Event.t Seq.t ->
  summary
(** Sharded parallel replay (doc/parallel.md): the stream is
    partitioned by hashed {!Dynamic_granularity.share_granule}-sized
    address line — sync events broadcast — and each shard replays on a
    fresh detector, one OCaml domain per shard in the default
    [Parallel] mode.  The merged summary is deterministic and
    bit-identical to {!replay} on races (stable-sorted by trace
    offset), transition counts and exit code; [test/test_par.ml]
    asserts this for every bundled workload.  [batched] (default
    [true]) lets each shard consume its stream as struct-of-arrays
    batches when its detector has a [process_batch] fast path and
    nothing per-event is requested (see {!Dgrace_par.Par.analyze});
    races are bit-identical either way.  Differences from
    {!replay}: [budget] applies {e per shard} (the merged [partial] is
    the earliest shard stop), [sample_every] attaches one flight
    recorder per shard and merges their {e final} samples into the
    summary time-series (element-wise sum — intermediate samples do
    not line up across shards), memory peaks are summed across shards,
    and the merged metrics gain [par.*] gauges (shard count, split and
    critical-path times, straddling-access and super-granule counts
    from the splitter, per-shard event/busy figures).  [tracer] adds
    one timeline lane per shard plus the main lane's split/join
    markers (see {!Dgrace_par.Par.analyze}) and per-shard counter
    tracks.
    @raise Dgrace_resilience.Error.E when materialising the sequence
    hits a corrupt record.
    @raise Invalid_argument when [shards < 1]. *)

val replay_pipelined :
  ?slots:int ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  string ->
  summary
(** Pipelined replay of a trace-v2 file (doc/trace.md): a dedicated
    decoder domain streams blocks into a bounded ring of [slots]
    recycled batches ({!Dgrace_trace.Trace_pipeline}) while the
    calling domain detects — decode and detect overlap instead of
    alternating.  Results are bit-identical to
    [replay_batches ~spec (fold_batches path)]: same batches and row
    numbering; a [Corrupt_trace] surfaces at the same absolute offset
    after the same prefix was analysed (the ring drains before
    re-raising); budgets, [sample_every], [progress] and [tracer]
    force the same per-event unrolled sink, with decode still
    overlapped.  On completion the summary metrics gain the
    [pipeline.blocks] / [pipeline.decode_stall_us] /
    [pipeline.detect_stall_us] / [pipeline.decode_us] gauges (stall
    time is measured on [clock]); with a [tracer], block decodes land
    on a ["decoder"] lane so [racedet timings] shows the
    decode-vs-detect split.
    @raise Dgrace_resilience.Error.E on corrupt input (see
    {!replay_pipelined_checked}). *)

val replay_sharded_pipelined :
  ?slots:int ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  shards:int ->
  spec:Spec.t ->
  string ->
  summary
(** Pipelined {e sharded} replay of a trace-v2 file: a sequential
    planner prepass ({!Dgrace_trace.Trace_shard.planner}) learns the
    straddle welds — and surfaces any [Corrupt_trace] at the
    sequential offset — then a decoder domain streams blocks while the
    calling domain routes rows into one bounded ring per shard and
    [shards] detector domains drain them
    ({!Dgrace_par.Par.analyze_pipelined}).  The merged summary is
    bit-identical to {!replay_sharded} on races, stats, transitions
    and exit code, and gains the same [pipeline.*] gauges as
    {!replay_pipelined} on top of the [par.*] ones.  Per-event
    machinery (budget, recorder, progress, tracer) is not offered on
    this path — callers needing it use {!replay_sharded}.
    @raise Dgrace_resilience.Error.E on corrupt input.
    @raise Invalid_argument when [shards < 1]. *)

val with_detector :
  ?policy:Scheduler.policy ->
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  Detector.t ->
  (unit -> unit) ->
  summary
(** Like {!run} for an externally constructed detector.  (The
    detector's own phase timers are wired at construction — see
    {!Spec.to_detector}; [tracer] here records the engine-level spans
    and counter tracks.) *)

(** {1 Checked entry points}

    The same runs with every anticipated failure — deadlocked
    workload, corrupt trace, exhausted budget raised as an error by a
    lower layer — returned as a structured
    {!Dgrace_resilience.Error.t} instead of an exception.  Budget
    stops are {e not} errors here: they produce [Ok summary] with
    [partial] set. *)

val run_checked :
  ?policy:Scheduler.policy ->
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  (unit -> unit) ->
  (summary, Dgrace_resilience.Error.t) result

val replay_checked :
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  Event.t Seq.t ->
  (summary, Dgrace_resilience.Error.t) result

val replay_batches_checked :
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  ((Batch.t -> unit) -> unit) ->
  (summary, Dgrace_resilience.Error.t) result

val replay_sharded_checked :
  ?mode:Dgrace_par.Par.mode ->
  ?batched:bool ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  shards:int ->
  spec:Spec.t ->
  Event.t Seq.t ->
  (summary, Dgrace_resilience.Error.t) result

val replay_pipelined_checked :
  ?slots:int ->
  ?budget:Dgrace_resilience.Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  spec:Spec.t ->
  string ->
  (summary, Dgrace_resilience.Error.t) result

val replay_sharded_pipelined_checked :
  ?slots:int ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  shards:int ->
  spec:Spec.t ->
  string ->
  (summary, Dgrace_resilience.Error.t) result

val summarize_detector :
  Detector.t ->
  elapsed:float ->
  partial:Dgrace_resilience.Budget.stop option ->
  degraded:bool ->
  summary
(** Package a finished detector (after [d.finish ()]) as a {!summary} —
    the hook the incremental session layer ([Dgrace_serve.Session])
    uses to report exactly the same document as a one-shot run,
    including the partial/degraded contract. *)

val exit_code_of_summary : summary -> int
(** The documented exit-code contract applied to a completed run:
    {!Dgrace_resilience.Error.exit_partial} when partial or degraded,
    {!Dgrace_resilience.Error.exit_races} when races were found,
    {!Dgrace_resilience.Error.exit_ok} otherwise. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line human-readable rendering (includes [status:] lines for
    partial/degraded runs). *)

(** {1 Structured export}

    Versioned machine-readable documents (see {!Dgrace_obs.Export} and
    [doc/observability.md]). *)

val summary_to_json : ?workload:Dgrace_obs.Json.t -> summary -> Dgrace_obs.Json.t
(** One run as a [kind = "run"] envelope: summary, stats, memory
    peaks, metrics, partial/degraded flags (plus [stop_reason] when
    partial), and — when present — transition matrix and time-series.
    Since schema v3 the wall clock is the envelope's own ["elapsed_s"]
    field. *)

val summaries_to_json :
  ?workload:Dgrace_obs.Json.t ->
  ?elapsed_s:float ->
  summary list ->
  Dgrace_obs.Json.t
(** Several runs of the same workload as a [kind = "compare"]
    envelope; [elapsed_s] (total wall clock for the whole comparison)
    goes on the envelope, while each nested run object keeps its own
    ["elapsed_s"]. *)
