(** The analysis engine: run a simulated program (or a recorded event
    stream) under a detector and collect everything the evaluation
    needs — races, stream statistics, shadow-memory accounting,
    wall-clock time, and (on request) a sampled time-series plus the
    detector's own telemetry.

    This is the main entry point of the library:

    {[
      let summary =
        Engine.run ~spec:Spec.dynamic (fun () ->
          let a = Sim.malloc 64 in
          let t = Sim.spawn (fun () -> Sim.write a 4) in
          Sim.write a 4;
          Sim.join t)
      in
      List.iter (fun r -> print_endline (Report.to_string r)) summary.races
    ]} *)

open Dgrace_events
open Dgrace_detectors
open Dgrace_sim

type summary = {
  detector : string;  (** detector name *)
  races : Report.t list;  (** distinct-location races, detection order *)
  race_count : int;
  suppressed : int;  (** reports dropped by suppression rules *)
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;  (** wall-clock seconds for the instrumented run *)
  sim : Sim.result option;  (** simulator result (None for replays) *)
  metrics : Dgrace_obs.Metrics.t;  (** the detector's instruments *)
  transitions : Dgrace_obs.State_matrix.t option;
      (** sharing-state transition counts (dynamic detectors) *)
  timeseries : Dgrace_obs.Sampler.t option;
      (** memory/stream samples, present iff [sample_every] was given *)
}

and mem_summary = {
  peak_bytes : int;  (** peak of hash + vector clock + bitmap bytes *)
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_vcs : int;  (** max vector clocks simultaneously live *)
  total_vcs : int;  (** vector clocks ever created *)
  avg_sharing : float;  (** average bytes sharing one vector clock *)
}

val run :
  ?policy:Scheduler.policy ->
  ?suppression:Suppression.t ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  spec:Spec.t ->
  (unit -> unit) ->
  summary
(** Execute the program under the simulator, feeding every event to a
    fresh detector built from [spec].

    [sample_every] snapshots shadow-memory accounting and stream
    counters every N events into [summary.timeseries] (a final sample
    is always taken at end of stream).  [progress] is [(every, f)]:
    [f events] is called every [every] events — the CLI heartbeat.
    When neither is given the event loop is exactly the detector's own
    handler: observability costs nothing unless asked for. *)

val replay :
  ?suppression:Suppression.t ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  spec:Spec.t ->
  Event.t Seq.t ->
  summary
(** Analyse a pre-recorded event stream (see {!Dgrace_trace}). *)

val with_detector :
  ?policy:Scheduler.policy ->
  ?sample_every:int ->
  ?progress:int * (int -> unit) ->
  Detector.t ->
  (unit -> unit) ->
  summary
(** Like {!run} for an externally constructed detector. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line human-readable rendering. *)

(** {1 Structured export}

    Versioned machine-readable documents (see {!Dgrace_obs.Export} and
    [doc/observability.md]). *)

val summary_to_json : ?workload:Dgrace_obs.Json.t -> summary -> Dgrace_obs.Json.t
(** One run as a [kind = "run"] envelope: summary, stats, memory
    peaks, metrics, and — when present — transition matrix and
    time-series. *)

val summaries_to_json :
  ?workload:Dgrace_obs.Json.t -> summary list -> Dgrace_obs.Json.t
(** Several runs of the same workload as a [kind = "compare"]
    envelope. *)
