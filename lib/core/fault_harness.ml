open Dgrace_sim
open Dgrace_trace
module Error = Dgrace_resilience.Error
module Fault = Dgrace_resilience.Fault

type fault =
  | Trace_fault of Fault.trace_fault
  | Stall
  | Lost_unlock

let all =
  List.map (fun f -> Trace_fault f) Fault.all @ [ Stall; Lost_unlock ]

let name = function
  | Trace_fault f -> Fault.name f
  | Stall -> "stall"
  | Lost_unlock -> "lost-unlock"

let names = List.map name all

let of_name s =
  match Fault.of_name s with
  | Some f -> Some (Trace_fault f)
  | None -> (
    match s with
    | "stall" -> Some Stall
    | "lost-unlock" -> Some Lost_unlock
    | _ -> None)

type outcome =
  | Completed of Engine.summary
  | Recovered of {
      recovery : Trace_reader.recovery;
      summary : Engine.summary;
    }
  | Declared of Error.t
  | Unexpected of string

let acceptable = function
  | Completed _ | Recovered _ | Declared _ -> true
  | Unexpected _ -> false

let describe = function
  | Completed s ->
    Printf.sprintf "completed: %d events, %d race(s)"
      s.Engine.stats.Dgrace_detectors.Run_stats.accesses s.Engine.race_count
  | Recovered { recovery = r; summary = s } ->
    Printf.sprintf
      "recovered: %d event(s) salvaged, %d byte(s) dropped in %d gap(s), %d race(s)"
      r.Trace_reader.events r.Trace_reader.dropped_bytes r.Trace_reader.gaps
      s.Engine.race_count
  | Declared e -> "declared: " ^ Error.to_string e
  | Unexpected msg -> "UNEXPECTED: " ^ msg

(* ------------------------------------------------------------------ *)
(* trace faults: record, corrupt, strict replay, resync replay *)

let read_image path = In_channel.with_open_bin path In_channel.input_all

let write_image path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let with_temp f =
  let path = Filename.temp_file "dgrace-fault" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let inject_trace_fault ~spec ~seed ~program tf =
  with_temp @@ fun clean_path ->
  with_temp @@ fun bad_path ->
  let (_ : Sim.result), (_ : int) =
    Trace_writer.to_file clean_path (fun sink ->
        Sim.run ~policy:(Scheduler.Chunked { seed; chunk = 8 }) ~sink program)
  in
  write_image bad_path (Fault.apply ~seed tf (read_image clean_path));
  let strict =
    let ic = open_in_bin bad_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Engine.replay_checked ~spec (Trace_reader.read ~path:bad_path ic))
  in
  match strict with
  | Ok summary -> Completed summary
  | Error (Error.Corrupt_trace _) -> (
    (* the declared path worked; now prove the resync path salvages
       what it can from the same image *)
    let events, recovery = Trace_reader.read_file_resync bad_path in
    match Engine.replay_checked ~spec (List.to_seq events) with
    | Ok summary -> Recovered { recovery; summary }
    | Error e -> Declared e)
  | Error e -> Declared e

(* ------------------------------------------------------------------ *)
(* scheduler faults: synthetic workloads with the bug baked in *)

(* A worker waits on a flag that is never set; main joins it. *)
let stall_program () =
  let flag = Sim.event () in
  let a = Sim.malloc 8 in
  let t =
    Sim.spawn (fun () ->
        Sim.write a 4;
        Sim.event_wait flag)
  in
  Sim.write ~loc:"stall.c:9" (a + 4) 4;
  Sim.join t

(* A thread exits while holding a mutex; the next thread that wants it
   blocks forever. *)
let lost_unlock_program () =
  let m = Sim.mutex () in
  let a = Sim.malloc 8 in
  let t1 =
    Sim.spawn (fun () ->
        Sim.lock m;
        Sim.write a 4 (* exits without unlock *))
  in
  Sim.join t1;
  let t2 =
    Sim.spawn (fun () ->
        Sim.lock m;
        Sim.write a 4;
        Sim.unlock m)
  in
  Sim.join t2

let inject_sched_fault ~spec ~seed prog =
  match
    Engine.run_checked ~policy:(Scheduler.Chunked { seed; chunk = 8 }) ~spec
      prog
  with
  | Ok summary -> Completed summary
  | Error e -> Declared e

let run ?(spec = Spec.dynamic) ~seed ~program fault =
  match
    match fault with
    | Trace_fault tf -> inject_trace_fault ~spec ~seed ~program tf
    | Stall -> inject_sched_fault ~spec ~seed stall_program
    | Lost_unlock -> inject_sched_fault ~spec ~seed lost_unlock_program
  with
  | outcome -> outcome
  | exception exn -> Unexpected (Printexc.to_string exn)
