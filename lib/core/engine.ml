open Dgrace_events
open Dgrace_detectors
open Dgrace_shadow
open Dgrace_sim
module Json = Dgrace_obs.Json
module Metrics = Dgrace_obs.Metrics
module Sampler = Dgrace_obs.Sampler
module State_matrix = Dgrace_obs.State_matrix
module Export = Dgrace_obs.Export

type summary = {
  detector : string;
  races : Report.t list;
  race_count : int;
  suppressed : int;
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;
  sim : Sim.result option;
  metrics : Metrics.t;
  transitions : State_matrix.t option;
  timeseries : Sampler.t option;
}

and mem_summary = {
  peak_bytes : int;
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_vcs : int;
  total_vcs : int;
  avg_sharing : float;
}

let mem_of_account a =
  {
    peak_bytes = Accounting.peak_bytes a;
    peak_hash_bytes = Accounting.peak_hash_bytes a;
    peak_vc_bytes = Accounting.peak_vc_bytes a;
    peak_bitmap_bytes = Accounting.peak_bitmap_bytes a;
    peak_vcs = Accounting.peak_vcs a;
    total_vcs = Accounting.total_vcs_created a;
    avg_sharing = Accounting.avg_sharing a;
  }

let summarize (d : Detector.t) ~elapsed ~sim ~timeseries =
  {
    detector = d.name;
    races = Detector.races d;
    race_count = Detector.race_count d;
    suppressed = Report.Collector.suppressed d.collector;
    stats = d.stats;
    mem = mem_of_account d.account;
    elapsed;
    sim;
    metrics = d.metrics;
    transitions = d.transitions;
    timeseries;
  }

(* The memory-over-time sources of the paper's Table 2/3 quantities,
   read live from the detector's accounting on each sample. *)
let sampler_sources (d : Detector.t) =
  [
    ("hash_bytes", fun () -> Accounting.hash_bytes d.account);
    ("vc_bytes", fun () -> Accounting.vc_bytes d.account);
    ("bitmap_bytes", fun () -> Accounting.bitmap_bytes d.account);
    ("total_bytes", fun () -> Accounting.current_bytes d.account);
    ("live_vcs", fun () -> Accounting.live_vcs d.account);
    ("accesses", fun () -> d.stats.Run_stats.accesses);
    ("races", fun () -> Report.Collector.count d.collector);
  ]

(* Compose the detector sink with sampler ticks and the progress
   heartbeat; when neither is requested the sink is the detector's own
   handler and the event loop pays nothing. *)
let make_sink (d : Detector.t) ~sampler ~progress =
  match (sampler, progress) with
  | None, None -> d.on_event
  | _ ->
    let events = ref 0 in
    let progress_tick =
      match progress with
      | None -> fun (_ : int) -> ()
      | Some (every, f) ->
        if every <= 0 then invalid_arg "Engine: non-positive progress period";
        fun n -> if n mod every = 0 then f n
    in
    fun ev ->
      d.on_event ev;
      (match sampler with Some s -> Sampler.tick s | None -> ());
      incr events;
      progress_tick !events

let with_detector ?policy ?sample_every ?progress (d : Detector.t) program =
  let sampler =
    Option.map
      (fun every -> Sampler.create ~every ~sources:(sampler_sources d))
      sample_every
  in
  let sink = make_sink d ~sampler ~progress in
  let t0 = Unix.gettimeofday () in
  let sim = Sim.run ?policy ~sink program in
  d.finish ();
  Option.iter Sampler.flush sampler;
  let elapsed = Unix.gettimeofday () -. t0 in
  summarize d ~elapsed ~sim:(Some sim) ~timeseries:sampler

let run ?policy ?suppression ?sample_every ?progress ~spec program =
  with_detector ?policy ?sample_every ?progress
    (Spec.to_detector ?suppression spec)
    program

let replay ?suppression ?sample_every ?progress ~spec events =
  let d = Spec.to_detector ?suppression spec in
  let sampler =
    Option.map
      (fun every -> Sampler.create ~every ~sources:(sampler_sources d))
      sample_every
  in
  let sink = make_sink d ~sampler ~progress in
  let t0 = Unix.gettimeofday () in
  Seq.iter sink events;
  d.finish ();
  Option.iter Sampler.flush sampler;
  let elapsed = Unix.gettimeofday () -. t0 in
  summarize d ~elapsed ~sim:None ~timeseries:sampler

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>detector: %s@,elapsed: %.3fs@,%a@," s.detector
    s.elapsed Run_stats.pp s.stats;
  Format.fprintf ppf
    "memory: peak=%dB (hash=%d vc=%d bitmap=%d) peak-vcs=%d avg-sharing=%.1f@,"
    s.mem.peak_bytes s.mem.peak_hash_bytes s.mem.peak_vc_bytes
    s.mem.peak_bitmap_bytes s.mem.peak_vcs s.mem.avg_sharing;
  Format.fprintf ppf "races: %d (%d suppressed)" s.race_count s.suppressed;
  List.iter (fun r -> Format.fprintf ppf "@,  %a" Report.pp r) s.races;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* structured export (doc/observability.md documents the schema) *)

let stats_to_json (st : Run_stats.t) =
  Json.Obj
    [
      ("accesses", Json.Int st.accesses);
      ("reads", Json.Int st.reads);
      ("writes", Json.Int st.writes);
      ("same_epoch", Json.Int st.same_epoch);
      ("sync_ops", Json.Int st.sync_ops);
      ("allocs", Json.Int st.allocs);
      ("frees", Json.Int st.frees);
    ]

let mem_to_json m =
  Json.Obj
    [
      ("peak_bytes", Json.Int m.peak_bytes);
      ("peak_hash_bytes", Json.Int m.peak_hash_bytes);
      ("peak_vc_bytes", Json.Int m.peak_vc_bytes);
      ("peak_bitmap_bytes", Json.Int m.peak_bitmap_bytes);
      ("peak_vcs", Json.Int m.peak_vcs);
      ("total_vcs", Json.Int m.total_vcs);
      ("avg_sharing", Json.Float m.avg_sharing);
    ]

let summary_body ?workload s =
  List.concat
    [
      [ ("detector", Json.String s.detector) ];
      (match workload with Some w -> [ ("workload", w) ] | None -> []);
      [
        ("elapsed_s", Json.Float s.elapsed);
        ("races", Json.Int s.race_count);
        ("suppressed", Json.Int s.suppressed);
        ("stats", stats_to_json s.stats);
        ("memory", mem_to_json s.mem);
        ("metrics", Metrics.to_json s.metrics);
      ];
      (match s.transitions with
       | Some m -> [ ("transitions", State_matrix.to_json m) ]
       | None -> []);
      (match s.timeseries with
       | Some ts -> [ ("timeseries", Sampler.to_json ts) ]
       | None -> []);
      (match s.sim with
       | Some sim ->
         [
           ( "sim",
             Json.Obj
               [
                 ("threads", Json.Int sim.Sim.threads);
                 ("events", Json.Int sim.Sim.events);
                 ("accesses", Json.Int sim.Sim.accesses);
                 ("total_allocated", Json.Int sim.Sim.total_allocated);
               ] );
         ]
       | None -> []);
    ]

let summary_to_json ?workload s =
  Export.envelope ~kind:"run" (summary_body ?workload s)

let summaries_to_json ?workload ss =
  Export.envelope ~kind:"compare"
    [
      (match workload with Some w -> ("workload", w) | None -> ("workload", Json.Null));
      ("runs", Json.List (List.map (fun s -> Json.Obj (summary_body s)) ss));
    ]
