open Dgrace_events
open Dgrace_detectors
open Dgrace_shadow
open Dgrace_sim
module Json = Dgrace_obs.Json
module Metrics = Dgrace_obs.Metrics
module Sampler = Dgrace_obs.Sampler
module State_matrix = Dgrace_obs.State_matrix
module Export = Dgrace_obs.Export
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error

type summary = {
  detector : string;
  races : Report.t list;
  race_count : int;
  suppressed : int;
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;
  sim : Sim.result option;
  partial : Budget.stop option;
  degraded : bool;
  metrics : Metrics.t;
  transitions : State_matrix.t option;
  timeseries : Sampler.t option;
}

and mem_summary = {
  peak_bytes : int;
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_interned_bytes : int;
  peak_vcs : int;
  total_vcs : int;
  avg_sharing : float;
}

let mem_of_account a =
  {
    peak_bytes = Accounting.peak_bytes a;
    peak_hash_bytes = Accounting.peak_hash_bytes a;
    peak_vc_bytes = Accounting.peak_vc_bytes a;
    peak_bitmap_bytes = Accounting.peak_bitmap_bytes a;
    peak_interned_bytes = Accounting.peak_interned_bytes a;
    peak_vcs = Accounting.peak_vcs a;
    total_vcs = Accounting.total_vcs_created a;
    avg_sharing = Accounting.avg_sharing a;
  }

let summarize (d : Detector.t) ~elapsed ~sim ~partial ~degraded ~timeseries =
  {
    detector = d.name;
    races = Detector.races d;
    race_count = Detector.race_count d;
    suppressed = Report.Collector.suppressed d.collector;
    stats = d.stats;
    mem = mem_of_account d.account;
    elapsed;
    sim;
    partial;
    degraded;
    metrics = d.metrics;
    transitions = d.transitions;
    timeseries;
  }

(* The memory-over-time sources of the paper's Table 2/3 quantities,
   read live from the detector's accounting on each sample. *)
let sampler_sources (d : Detector.t) =
  [
    ("hash_bytes", fun () -> Accounting.hash_bytes d.account);
    ("vc_bytes", fun () -> Accounting.vc_bytes d.account);
    ("bitmap_bytes", fun () -> Accounting.bitmap_bytes d.account);
    ("total_bytes", fun () -> Accounting.current_bytes d.account);
    ("live_vcs", fun () -> Accounting.live_vcs d.account);
    ("accesses", fun () -> d.stats.Run_stats.accesses);
    ("races", fun () -> Report.Collector.count d.collector);
  ]

(* Raised from the sink when a budget limit is breached: unwinds
   [Sim.run] (any suspended thread continuations are simply collected
   by the GC) or the replay loop, and is converted to the [partial]
   field of the summary.  Never escapes this module. *)
exception Stop of Budget.stop

(* Enforce the budget after each delivered event.  Shadow pressure is
   answered by asking the detector to degrade — one shedding step at a
   time — and only stops the run once the detector can shed nothing
   more and the accounting is still over the cap.  The deadline is
   polled every 256 events to keep [gettimeofday] off the hot path. *)
let budget_guard (d : Detector.t) (b : Budget.t) ~degraded ~t0 =
  let events = ref 0 in
  let over limit = Accounting.current_bytes d.account > limit in
  let rec shed limit =
    if over limit then
      match d.degrade with
      | Some step when step () ->
        degraded := true;
        shed limit
      | Some _ | None ->
        raise
          (Stop
             (Budget.Shadow_bytes
                { limit; bytes = Accounting.current_bytes d.account }))
  in
  fun () ->
    incr events;
    (match b.Budget.max_events with
     | Some limit when !events >= limit ->
       raise (Stop (Budget.Max_events { limit }))
     | Some _ | None -> ());
    (match b.Budget.max_shadow_bytes with
     | Some limit -> if over limit then shed limit
     | None -> ());
    match b.Budget.deadline_s with
    | Some limit_s when !events land 255 = 0 ->
      let elapsed_s = Unix.gettimeofday () -. t0 in
      if elapsed_s > limit_s then
        raise (Stop (Budget.Deadline { limit_s; elapsed_s }))
    | Some _ | None -> ()

(* Compose the detector sink with budget checks, sampler ticks and the
   progress heartbeat; when none are requested the sink is the
   detector's own handler and the event loop pays nothing.  The
   progress period is validated by the CLI (its [--progress-every]
   parser rejects non-positive values), so it is taken as given
   here. *)
let make_sink (d : Detector.t) ~budget ~sampler ~progress =
  let guard =
    match budget with
    | Some (b, degraded, t0) when not (Budget.is_unlimited b) ->
      Some (budget_guard d b ~degraded ~t0)
    | Some _ | None -> None
  in
  match (guard, sampler, progress) with
  | None, None, None -> d.on_event
  | _ ->
    let events = ref 0 in
    let progress_tick =
      match progress with
      | None -> fun (_ : int) -> ()
      | Some (every, f) -> fun n -> if n mod every = 0 then f n
    in
    fun ev ->
      d.on_event ev;
      (match guard with Some g -> g () | None -> ());
      (match sampler with Some s -> Sampler.tick s | None -> ());
      incr events;
      progress_tick !events

let with_detector ?policy ?(budget = Budget.unlimited) ?sample_every ?progress
    (d : Detector.t) program =
  let sampler =
    Option.map
      (fun every -> Sampler.create ~every ~sources:(sampler_sources d))
      sample_every
  in
  let t0 = Unix.gettimeofday () in
  let degraded = ref false in
  let sink = make_sink d ~budget:(Some (budget, degraded, t0)) ~sampler ~progress in
  let sim, partial =
    match Sim.run ?policy ~sink program with
    | sim -> (Some sim, None)
    | exception Stop stop -> (None, Some stop)
  in
  d.finish ();
  Option.iter Sampler.flush sampler;
  let elapsed = Unix.gettimeofday () -. t0 in
  summarize d ~elapsed ~sim ~partial ~degraded:!degraded ~timeseries:sampler

let run ?policy ?budget ?suppression ?vc_intern ?sample_every ?progress ~spec
    program =
  with_detector ?policy ?budget ?sample_every ?progress
    (Spec.to_detector ?suppression ?vc_intern spec)
    program

let replay ?(budget = Budget.unlimited) ?suppression ?vc_intern ?sample_every
    ?progress ~spec events =
  let d = Spec.to_detector ?suppression ?vc_intern spec in
  let sampler =
    Option.map
      (fun every -> Sampler.create ~every ~sources:(sampler_sources d))
      sample_every
  in
  let t0 = Unix.gettimeofday () in
  let degraded = ref false in
  let sink = make_sink d ~budget:(Some (budget, degraded, t0)) ~sampler ~progress in
  let partial =
    match Seq.iter sink events with
    | () -> None
    | exception Stop stop -> Some stop
  in
  d.finish ();
  Option.iter Sampler.flush sampler;
  let elapsed = Unix.gettimeofday () -. t0 in
  summarize d ~elapsed ~sim:None ~partial ~degraded:!degraded
    ~timeseries:sampler

(* ------------------------------------------------------------------ *)
(* sharded replay (doc/parallel.md): split the trace by address line,
   replay one detector per shard — one OCaml domain each in [Parallel]
   mode — and merge the per-shard outcomes into one summary that is
   bit-identical to the sequential replay on races, transition counts
   and exit code (test/test_par.ml is the differential proof). *)

module Par = Dgrace_par.Par

let zero_mem =
  {
    peak_bytes = 0;
    peak_hash_bytes = 0;
    peak_vc_bytes = 0;
    peak_bitmap_bytes = 0;
    peak_interned_bytes = 0;
    peak_vcs = 0;
    total_vcs = 0;
    avg_sharing = 0.;
  }

(* Peaks are per-domain observations; their sum is the honest upper
   bound on what the sharded run held live at once (the shards really
   do coexist in [Parallel] mode).  [avg_sharing] is weighted by each
   shard's clock population. *)
let merge_mem ms =
  let m =
    Array.fold_left
      (fun acc m ->
        {
          peak_bytes = acc.peak_bytes + m.peak_bytes;
          peak_hash_bytes = acc.peak_hash_bytes + m.peak_hash_bytes;
          peak_vc_bytes = acc.peak_vc_bytes + m.peak_vc_bytes;
          peak_bitmap_bytes = acc.peak_bitmap_bytes + m.peak_bitmap_bytes;
          peak_interned_bytes = acc.peak_interned_bytes + m.peak_interned_bytes;
          peak_vcs = acc.peak_vcs + m.peak_vcs;
          total_vcs = acc.total_vcs + m.total_vcs;
          avg_sharing =
            acc.avg_sharing +. (m.avg_sharing *. float_of_int m.total_vcs);
        })
      zero_mem ms
  in
  {
    m with
    avg_sharing =
      (if m.total_vcs = 0 then 0. else m.avg_sharing /. float_of_int m.total_vcs);
  }

let merge_sharded ~elapsed (r : Par.result) =
  let outs = r.Par.outcomes in
  let d0 = outs.(0).Par.detector in
  let stats = Run_stats.create () in
  Array.iter
    (fun (o : Par.shard_outcome) ->
      let s = o.Par.detector.Detector.stats in
      stats.Run_stats.accesses <- stats.Run_stats.accesses + s.Run_stats.accesses;
      stats.Run_stats.reads <- stats.Run_stats.reads + s.Run_stats.reads;
      stats.Run_stats.writes <- stats.Run_stats.writes + s.Run_stats.writes;
      stats.Run_stats.same_epoch <-
        stats.Run_stats.same_epoch + s.Run_stats.same_epoch)
    outs;
  (* sync/alloc/free events are broadcast to every shard; summing the
     per-shard counts would multiply them by the shard count, so the
     merged stats take the splitter's global counts instead *)
  stats.Run_stats.sync_ops <- r.Par.plan.Dgrace_trace.Trace_shard.sync_ops;
  stats.Run_stats.allocs <- r.Par.plan.Dgrace_trace.Trace_shard.allocs;
  stats.Run_stats.frees <- r.Par.plan.Dgrace_trace.Trace_shard.frees;
  let metrics = Metrics.create () in
  Array.iter
    (fun (o : Par.shard_outcome) ->
      Metrics.merge_into ~into:metrics o.Par.detector.Detector.metrics)
    outs;
  let usec s = int_of_float (s *. 1e6) in
  Metrics.set (Metrics.gauge metrics "par.shards") (Array.length outs);
  Metrics.set (Metrics.gauge metrics "par.split_us") (usec r.Par.split_s);
  Metrics.set
    (Metrics.gauge metrics "par.critical_path_us")
    (usec r.Par.critical_path_s);
  Array.iter
    (fun (o : Par.shard_outcome) ->
      let pfx = Printf.sprintf "par.shard%d." o.Par.index in
      Metrics.set (Metrics.gauge metrics (pfx ^ "events")) o.Par.events;
      Metrics.set (Metrics.gauge metrics (pfx ^ "busy_us")) (usec o.Par.busy_s))
    outs;
  let transitions =
    match d0.Detector.transitions with
    | None -> None
    | Some m0 ->
      let states =
        Array.init (State_matrix.n_states m0) (State_matrix.state_name m0)
      in
      let acc = State_matrix.create ~states in
      Array.iter
        (fun (o : Par.shard_outcome) ->
          match o.Par.detector.Detector.transitions with
          | Some m -> State_matrix.merge_into ~into:acc m
          | None -> ())
        outs;
      Some acc
  in
  let races = Par.merged_races r in
  {
    detector = d0.Detector.name;
    races;
    race_count = List.length races;
    suppressed =
      Array.fold_left
        (fun acc (o : Par.shard_outcome) ->
          acc + Report.Collector.suppressed o.Par.detector.Detector.collector)
        0 outs;
    stats;
    mem =
      merge_mem
        (Array.map
           (fun (o : Par.shard_outcome) ->
             mem_of_account o.Par.detector.Detector.account)
           outs);
    elapsed;
    sim = None;
    partial = Option.map snd (Par.merged_stop r);
    degraded = Par.any_degraded r;
    metrics;
    transitions;
    timeseries = None;
  }

let replay_sharded ?mode ?budget ?suppression ?vc_intern ?progress ~shards
    ~spec events =
  if shards < 1 then invalid_arg "Engine.replay_sharded: shards must be >= 1";
  let t0 = Unix.gettimeofday () in
  (* materialise first: the splitter needs two passes, and forcing the
     sequence here surfaces corrupt-trace errors before any domain is
     spawned *)
  let events = Array.of_seq events in
  let make () = Spec.to_detector ?suppression ?vc_intern spec in
  let budget =
    match budget with
    | Some b when not (Budget.is_unlimited b) -> Some b
    | Some _ | None -> None
  in
  let r =
    Par.analyze ?mode ?budget ?progress ~make ~shards
      ~granule:Dynamic_granularity.share_granule events
  in
  merge_sharded ~elapsed:(Unix.gettimeofday () -. t0) r

(* ------------------------------------------------------------------ *)
(* checked entry points: structured errors instead of exceptions *)

let checked f =
  match f () with
  | s -> Ok s
  | exception Error.E e -> Error e
  | exception Sim.Deadlock { Sim.blocked; held } ->
    Error (Error.Deadlock { blocked; held })

let run_checked ?policy ?budget ?suppression ?vc_intern ?sample_every ?progress
    ~spec program =
  checked (fun () ->
      run ?policy ?budget ?suppression ?vc_intern ?sample_every ?progress ~spec
        program)

let replay_checked ?budget ?suppression ?vc_intern ?sample_every ?progress
    ~spec events =
  checked (fun () ->
      replay ?budget ?suppression ?vc_intern ?sample_every ?progress ~spec
        events)

let replay_sharded_checked ?mode ?budget ?suppression ?vc_intern ?progress
    ~shards ~spec events =
  checked (fun () ->
      replay_sharded ?mode ?budget ?suppression ?vc_intern ?progress ~shards
        ~spec events)

let exit_code_of_summary s =
  if s.partial <> None || s.degraded then Error.exit_partial
  else if s.race_count > 0 then Error.exit_races
  else Error.exit_ok

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>detector: %s@,elapsed: %.3fs@,%a@," s.detector
    s.elapsed Run_stats.pp s.stats;
  Format.fprintf ppf
    "memory: peak=%dB (hash=%d vc=%d bitmap=%d) peak-vcs=%d avg-sharing=%.1f@,"
    s.mem.peak_bytes s.mem.peak_hash_bytes s.mem.peak_vc_bytes
    s.mem.peak_bitmap_bytes s.mem.peak_vcs s.mem.avg_sharing;
  (match s.partial with
   | Some stop ->
     Format.fprintf ppf "status: partial (%s)@," (Budget.stop_to_string stop)
   | None -> ());
  if s.degraded then
    Format.fprintf ppf "status: degraded (shadow state shed under budget)@,";
  Format.fprintf ppf "races: %d (%d suppressed)" s.race_count s.suppressed;
  List.iter (fun r -> Format.fprintf ppf "@,  %a" Report.pp r) s.races;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* structured export (doc/observability.md documents the schema) *)

let stats_to_json (st : Run_stats.t) =
  Json.Obj
    [
      ("accesses", Json.Int st.accesses);
      ("reads", Json.Int st.reads);
      ("writes", Json.Int st.writes);
      ("same_epoch", Json.Int st.same_epoch);
      ("sync_ops", Json.Int st.sync_ops);
      ("allocs", Json.Int st.allocs);
      ("frees", Json.Int st.frees);
    ]

let mem_to_json m =
  Json.Obj
    [
      ("peak_bytes", Json.Int m.peak_bytes);
      ("peak_hash_bytes", Json.Int m.peak_hash_bytes);
      ("peak_vc_bytes", Json.Int m.peak_vc_bytes);
      ("peak_bitmap_bytes", Json.Int m.peak_bitmap_bytes);
      ("peak_interned_bytes", Json.Int m.peak_interned_bytes);
      ("peak_vcs", Json.Int m.peak_vcs);
      ("total_vcs", Json.Int m.total_vcs);
      ("avg_sharing", Json.Float m.avg_sharing);
    ]

let summary_body ?workload s =
  List.concat
    [
      [ ("detector", Json.String s.detector) ];
      (match workload with Some w -> [ ("workload", w) ] | None -> []);
      [
        ("elapsed_s", Json.Float s.elapsed);
        ("races", Json.Int s.race_count);
        ("suppressed", Json.Int s.suppressed);
        ("partial", Json.Bool (s.partial <> None));
        ("degraded", Json.Bool s.degraded);
      ];
      (match s.partial with
       | Some stop -> [ ("stop_reason", Budget.stop_to_json stop) ]
       | None -> []);
      [
        ("stats", stats_to_json s.stats);
        ("memory", mem_to_json s.mem);
        ("metrics", Metrics.to_json s.metrics);
      ];
      (match s.transitions with
       | Some m -> [ ("transitions", State_matrix.to_json m) ]
       | None -> []);
      (match s.timeseries with
       | Some ts -> [ ("timeseries", Sampler.to_json ts) ]
       | None -> []);
      (match s.sim with
       | Some sim ->
         [
           ( "sim",
             Json.Obj
               [
                 ("threads", Json.Int sim.Sim.threads);
                 ("events", Json.Int sim.Sim.events);
                 ("accesses", Json.Int sim.Sim.accesses);
                 ("total_allocated", Json.Int sim.Sim.total_allocated);
               ] );
         ]
       | None -> []);
    ]

let summary_to_json ?workload s =
  Export.envelope ~kind:"run" (summary_body ?workload s)

let summaries_to_json ?workload ss =
  Export.envelope ~kind:"compare"
    [
      (match workload with Some w -> ("workload", w) | None -> ("workload", Json.Null));
      ("runs", Json.List (List.map (fun s -> Json.Obj (summary_body s)) ss));
    ]
