open Dgrace_events
open Dgrace_detectors
open Dgrace_shadow
open Dgrace_sim
module Json = Dgrace_obs.Json
module Metrics = Dgrace_obs.Metrics
module Sampler = Dgrace_obs.Sampler
module Recorder = Dgrace_obs.Recorder
module Span = Dgrace_obs.Span
module State_matrix = Dgrace_obs.State_matrix
module Export = Dgrace_obs.Export
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error
module Trace_pipeline = Dgrace_trace.Trace_pipeline

type summary = {
  detector : string;
  races : Report.t list;
  race_count : int;
  suppressed : int;
  stats : Run_stats.t;
  mem : mem_summary;
  elapsed : float;
  sim : Sim.result option;
  partial : Budget.stop option;
  degraded : bool;
  metrics : Metrics.t;
  transitions : State_matrix.t option;
  timeseries : Recorder.t option;
}

and mem_summary = {
  peak_bytes : int;
  peak_hash_bytes : int;
  peak_vc_bytes : int;
  peak_bitmap_bytes : int;
  peak_interned_bytes : int;
  peak_vcs : int;
  total_vcs : int;
  avg_sharing : float;
}

let mem_of_account a =
  {
    peak_bytes = Accounting.peak_bytes a;
    peak_hash_bytes = Accounting.peak_hash_bytes a;
    peak_vc_bytes = Accounting.peak_vc_bytes a;
    peak_bitmap_bytes = Accounting.peak_bitmap_bytes a;
    peak_interned_bytes = Accounting.peak_interned_bytes a;
    peak_vcs = Accounting.peak_vcs a;
    total_vcs = Accounting.total_vcs_created a;
    avg_sharing = Accounting.avg_sharing a;
  }

let summarize (d : Detector.t) ~elapsed ~sim ~partial ~degraded ~timeseries =
  {
    detector = d.name;
    races = Detector.races d;
    race_count = Detector.race_count d;
    suppressed = Report.Collector.suppressed d.collector;
    stats = d.stats;
    mem = mem_of_account d.account;
    elapsed;
    sim;
    partial;
    degraded;
    metrics = d.metrics;
    transitions = d.transitions;
    timeseries;
  }

(* The memory-over-time sources of the paper's Table 2/3 quantities,
   read live from the detector's accounting on each sample. *)
let sampler_sources (d : Detector.t) =
  [
    ("hash_bytes", fun () -> Accounting.hash_bytes d.account);
    ("vc_bytes", fun () -> Accounting.vc_bytes d.account);
    ("bitmap_bytes", fun () -> Accounting.bitmap_bytes d.account);
    ("total_bytes", fun () -> Accounting.current_bytes d.account);
    ("live_vcs", fun () -> Accounting.live_vcs d.account);
    ("accesses", fun () -> d.stats.Run_stats.accesses);
    ("races", fun () -> Report.Collector.count d.collector);
  ]

(* Raised from the sink when a budget limit is breached: unwinds
   [Sim.run] (any suspended thread continuations are simply collected
   by the GC) or the replay loop, and is converted to the [partial]
   field of the summary.  Never escapes this module. *)
exception Stop of Budget.stop

(* Enforce the budget after each delivered event.  Shadow pressure is
   answered by asking the detector to degrade — one shedding step at a
   time — and only stops the run once the detector can shed nothing
   more and the accounting is still over the cap.  The deadline is
   polled every 256 events to keep the clock read off the hot path;
   [now_s] comes from the caller's {!Dgrace_obs.Clock.source} so
   deadline behaviour is testable on a mock clock.  [note] marks each
   shedding pass on the trace timeline. *)
let budget_guard ?(note = fun () -> ()) (d : Detector.t) (b : Budget.t)
    ~degraded ~now_s ~t0 =
  let events = ref 0 in
  let over limit = Accounting.current_bytes d.account > limit in
  let rec shed limit =
    if over limit then
      match d.degrade with
      | Some step when step () ->
        degraded := true;
        note ();
        shed limit
      | Some _ | None ->
        raise
          (Stop
             (Budget.Shadow_bytes
                { limit; bytes = Accounting.current_bytes d.account }))
  in
  fun () ->
    incr events;
    (match b.Budget.max_events with
     | Some limit when !events >= limit ->
       raise (Stop (Budget.Max_events { limit }))
     | Some _ | None -> ());
    (match b.Budget.max_shadow_bytes with
     | Some limit -> if over limit then shed limit
     | None -> ());
    match b.Budget.deadline_s with
    | Some limit_s when !events land 255 = 0 ->
      let elapsed_s = now_s () -. t0 in
      if elapsed_s > limit_s then
        raise (Stop (Budget.Deadline { limit_s; elapsed_s }))
    | Some _ | None -> ()

(* Compose the detector sink with budget checks, recorder ticks, the
   progress heartbeat and the tracing timer; when none are requested
   the sink is the detector's own handler and the event loop pays
   nothing.  The progress period is validated by the CLI (its
   [--progress-every] parser rejects non-positive values), so it is
   taken as given here.

   A traced sink samples one event in [dispatch_stride]: only that
   event is dispatched with the lane armed (timing the dispatch and
   letting the detector's gated phase timers run), so the other
   [dispatch_stride - 1] events pay one counter and one branch — the
   mechanism behind the bench's tracing-overhead budget.  [exact]
   states whether the recorder's samples are observable output
   ([sample_every] was given): an exact recorder is ticked once per
   event; a recorder that exists only to feed counter tracks is
   batch-ticked on sampled events. *)
let dispatch_stride = 64

let make_sink (d : Detector.t) ~budget ~recorder ~exact ~progress ~lane =
  let guard =
    match budget with
    | Some (b, degraded, now_s, t0) when not (Budget.is_unlimited b) ->
      let note =
        match lane with
        | Some buf -> fun () -> Span.instant buf "budget.degrade"
        | None -> fun () -> ()
      in
      Some (budget_guard ~note d b ~degraded ~now_s ~t0)
    | Some _ | None -> None
  in
  match (guard, recorder, progress, lane) with
  | None, None, None, None -> d.on_event
  | None, _, None, Some buf when not exact ->
    (* the [--trace-out]-only shape (no budget, no heartbeat, no
       [--metrics-out]): the whole traced loop is the dispatch
       wrapper, with the counter-track recorder batch-ticked on
       sampled events *)
    let on_sample =
      match recorder with
      | Some r -> fun () -> Recorder.tick_n r dispatch_stride
      | None -> fun () -> ()
    in
    Span.wrap_dispatch buf ~name:"detector.on_event" ~stride:dispatch_stride
      ~on_sample d.on_event
  | _ ->
    let on_event =
      match lane with
      | None -> d.on_event
      | Some buf ->
        (* per-event attribution cheap enough for the hot loop: the
           sampled dispatch wrapper, not a span per event *)
        Span.wrap_dispatch buf ~name:"detector.on_event"
          ~stride:dispatch_stride
          ~on_sample:(fun () -> ())
          d.on_event
    in
    let events = ref 0 in
    let progress_tick =
      match progress with
      | None -> fun (_ : int) -> ()
      | Some (every, f) -> fun n -> if n mod every = 0 then f n
    in
    fun ev ->
      on_event ev;
      (match guard with Some g -> g () | None -> ());
      (match recorder with Some r -> Recorder.tick r | None -> ());
      incr events;
      progress_tick !events

(* Accumulate pushed events into one reused batch and hand full
   batches to the detector's [process_batch] — the batched shape of a
   push-style source (the simulator, a v1 event sequence).  Only used
   when nothing per-event is observable (no budget, recorder, progress
   or lane), so the fallback per-event loop keeps those semantics
   bit-exact.  [off] is the running event index: the same monotone
   order key the shard splitter and the v2 decoder use. *)
(* A batched run that had to unroll to the per-event loop (no
   [process_batch], or a budget/recorder/progress/lane forcing exact
   per-event semantics) is surfaced as the [engine.batch_fallback]
   counter in the detector's registry: once per run for the push-style
   entry points, once per unrolled batch in [replay_batches].  Silent
   unrolling made sampling-detector slowdowns invisible. *)
let note_batch_fallback (d : Detector.t) =
  Metrics.incr (Metrics.counter d.Detector.metrics "engine.batch_fallback")

let batching_sink pb =
  let batch = Batch.create () in
  let n = ref 0 in
  let sink ev =
    Batch.push batch ~off:!n ev;
    incr n;
    if Batch.is_full batch then begin
      pb batch;
      Batch.clear batch
    end
  in
  let flush () =
    if Batch.length batch > 0 then begin
      pb batch;
      Batch.clear batch
    end
  in
  (sink, flush)

(* The flight recorder exists when the caller wants a sampled
   time-series ([sample_every], i.e. [--metrics-out]) or a trace
   (counter tracks need wall-clock-stamped samples); it only reaches
   the summary in the first case, keeping [timeseries]'s presence
   keyed to [sample_every] as it always was. *)
let make_recorder (d : Detector.t) ~sample_every ~tracer =
  match (sample_every, tracer) with
  | Some every, _ ->
    Some (Recorder.create ~every ~sources:(sampler_sources d) ())
  | None, Some _ ->
    Some (Recorder.create ~every:1024 ~sources:(sampler_sources d) ())
  | None, None -> None

let feed_counter_tracks ~tracer ~prefix recorder =
  match (tracer, recorder) with
  | Some t, Some r ->
    List.iter
      (fun (nm, series) -> Span.add_counter_series t ~name:(prefix ^ "." ^ nm) series)
      (Recorder.counter_series r)
  | (Some _ | None), _ -> ()

(* Policy time (budget deadlines) reads the caller's clock source so a
   mock clock drives it in tests; [elapsed] in the summary follows the
   same source, which is the real wall clock by default. *)
let seconds_of clock =
  fun () -> float_of_int (clock ()) *. 1e-9

let with_detector ?policy ?(batched = false) ?(budget = Budget.unlimited)
    ?(clock = Dgrace_obs.Clock.ns) ?sample_every ?progress ?tracer
    (d : Detector.t) program =
  let lane = Option.map Span.main tracer in
  let recorder = make_recorder d ~sample_every ~tracer in
  let now_s = seconds_of clock in
  let t0 = now_s () in
  let degraded = ref false in
  let sink, flush =
    match d.Detector.process_batch with
    | Some pb
      when batched && Budget.is_unlimited budget && Option.is_none recorder
           && Option.is_none progress && Option.is_none lane ->
      batching_sink pb
    | _ ->
      if batched then note_batch_fallback d;
      ( make_sink d ~budget:(Some (budget, degraded, now_s, t0)) ~recorder
          ~exact:(sample_every <> None) ~progress ~lane,
        fun () -> () )
  in
  (match lane with Some b -> Span.begin_span b "engine.run" | None -> ());
  let sim, partial =
    match Sim.run ?policy ~sink program with
    | sim -> (Some sim, None)
    | exception Stop stop ->
      (match lane with Some b -> Span.instant b "budget.stop" | None -> ());
      (None, Some stop)
  in
  flush ();
  (match lane with Some b -> Span.end_span b "engine.run" | None -> ());
  (match lane with
   | Some b -> Span.span b "engine.finish" d.finish
   | None -> d.finish ());
  Option.iter Recorder.flush recorder;
  feed_counter_tracks ~tracer ~prefix:d.name recorder;
  let elapsed = now_s () -. t0 in
  let timeseries = match sample_every with Some _ -> recorder | None -> None in
  summarize d ~elapsed ~sim ~partial ~degraded:!degraded ~timeseries

let run ?policy ?batched ?budget ?clock ?suppression ?vc_intern ?page_cluster
    ?sample_every ?progress ?tracer ~spec program =
  with_detector ?policy ?batched ?budget ?clock ?sample_every ?progress ?tracer
    (Spec.to_detector ?suppression ?vc_intern ?page_cluster
       ?tracer:(Option.map Span.main tracer) spec)
    program

let replay ?(batched = false) ?(budget = Budget.unlimited)
    ?(clock = Dgrace_obs.Clock.ns) ?suppression ?vc_intern ?page_cluster
    ?sample_every ?progress ?tracer ~spec events =
  let lane = Option.map Span.main tracer in
  let d =
    Spec.to_detector ?suppression ?vc_intern ?page_cluster ?tracer:lane spec
  in
  let recorder = make_recorder d ~sample_every ~tracer in
  let now_s = seconds_of clock in
  let t0 = now_s () in
  let degraded = ref false in
  let sink, flush =
    match d.Detector.process_batch with
    | Some pb
      when batched && Budget.is_unlimited budget && Option.is_none recorder
           && Option.is_none progress && Option.is_none lane ->
      batching_sink pb
    | _ ->
      if batched then note_batch_fallback d;
      ( make_sink d ~budget:(Some (budget, degraded, now_s, t0)) ~recorder
          ~exact:(sample_every <> None) ~progress ~lane,
        fun () -> () )
  in
  (match lane with Some b -> Span.begin_span b "engine.replay" | None -> ());
  let partial =
    match Seq.iter sink events with
    | () -> None
    | exception Stop stop ->
      (match lane with Some b -> Span.instant b "budget.stop" | None -> ());
      Some stop
  in
  flush ();
  (match lane with Some b -> Span.end_span b "engine.replay" | None -> ());
  (match lane with
   | Some b -> Span.span b "engine.finish" d.finish
   | None -> d.finish ());
  Option.iter Recorder.flush recorder;
  feed_counter_tracks ~tracer ~prefix:d.name recorder;
  let elapsed = now_s () -. t0 in
  let timeseries = match sample_every with Some _ -> recorder | None -> None in
  summarize d ~elapsed ~sim:None ~partial ~degraded:!degraded ~timeseries

(* Batched replay proper: the producer pushes whole {!Batch.t} buffers
   (decoded v2 blocks, pre-split shard batches).  An eligible detector
   consumes them through [process_batch]; otherwise — or under any
   budget, recorder, progress or tracer — each batch is unrolled
   through the same composed per-event sink as {!replay}, preserving
   those semantics exactly. *)
let replay_batches ?(budget = Budget.unlimited) ?(clock = Dgrace_obs.Clock.ns)
    ?suppression ?vc_intern ?page_cluster ?sample_every ?progress ?tracer ~spec
    feed =
  let lane = Option.map Span.main tracer in
  let d =
    Spec.to_detector ?suppression ?vc_intern ?page_cluster ?tracer:lane spec
  in
  let recorder = make_recorder d ~sample_every ~tracer in
  let now_s = seconds_of clock in
  let t0 = now_s () in
  let degraded = ref false in
  let consume =
    match d.Detector.process_batch with
    | Some pb
      when Budget.is_unlimited budget && Option.is_none recorder
           && Option.is_none progress && Option.is_none lane ->
      pb
    | _ ->
      let sink =
        make_sink d ~budget:(Some (budget, degraded, now_s, t0)) ~recorder
          ~exact:(sample_every <> None) ~progress ~lane
      in
      fun b ->
        note_batch_fallback d;
        Batch.iter_events sink b
  in
  (match lane with Some b -> Span.begin_span b "engine.replay" | None -> ());
  let partial =
    match feed consume with
    | () -> None
    | exception Stop stop ->
      (match lane with Some b -> Span.instant b "budget.stop" | None -> ());
      Some stop
  in
  (match lane with Some b -> Span.end_span b "engine.replay" | None -> ());
  (match lane with
   | Some b -> Span.span b "engine.finish" d.finish
   | None -> d.finish ());
  Option.iter Recorder.flush recorder;
  feed_counter_tracks ~tracer ~prefix:d.name recorder;
  let elapsed = now_s () -. t0 in
  let timeseries = match sample_every with Some _ -> recorder | None -> None in
  summarize d ~elapsed ~sim:None ~partial ~degraded:!degraded ~timeseries

(* ------------------------------------------------------------------ *)
(* sharded replay (doc/parallel.md): split the trace by address line,
   replay one detector per shard — one OCaml domain each in [Parallel]
   mode — and merge the per-shard outcomes into one summary that is
   bit-identical to the sequential replay on races, transition counts
   and exit code (test/test_par.ml is the differential proof). *)

module Par = Dgrace_par.Par

let zero_mem =
  {
    peak_bytes = 0;
    peak_hash_bytes = 0;
    peak_vc_bytes = 0;
    peak_bitmap_bytes = 0;
    peak_interned_bytes = 0;
    peak_vcs = 0;
    total_vcs = 0;
    avg_sharing = 0.;
  }

(* Peaks are per-domain observations; their sum is the honest upper
   bound on what the sharded run held live at once (the shards really
   do coexist in [Parallel] mode).  [avg_sharing] is weighted by each
   shard's clock population. *)
let merge_mem ms =
  let m =
    Array.fold_left
      (fun acc m ->
        {
          peak_bytes = acc.peak_bytes + m.peak_bytes;
          peak_hash_bytes = acc.peak_hash_bytes + m.peak_hash_bytes;
          peak_vc_bytes = acc.peak_vc_bytes + m.peak_vc_bytes;
          peak_bitmap_bytes = acc.peak_bitmap_bytes + m.peak_bitmap_bytes;
          peak_interned_bytes = acc.peak_interned_bytes + m.peak_interned_bytes;
          peak_vcs = acc.peak_vcs + m.peak_vcs;
          total_vcs = acc.total_vcs + m.total_vcs;
          avg_sharing =
            acc.avg_sharing +. (m.avg_sharing *. float_of_int m.total_vcs);
        })
      zero_mem ms
  in
  {
    m with
    avg_sharing =
      (if m.total_vcs = 0 then 0. else m.avg_sharing /. float_of_int m.total_vcs);
  }

let merge_sharded ~elapsed ~timeseries (r : Par.result) =
  let outs = r.Par.outcomes in
  let d0 = outs.(0).Par.detector in
  let stats = Run_stats.create () in
  Array.iter
    (fun (o : Par.shard_outcome) ->
      let s = o.Par.detector.Detector.stats in
      stats.Run_stats.accesses <- stats.Run_stats.accesses + s.Run_stats.accesses;
      stats.Run_stats.reads <- stats.Run_stats.reads + s.Run_stats.reads;
      stats.Run_stats.writes <- stats.Run_stats.writes + s.Run_stats.writes;
      stats.Run_stats.same_epoch <-
        stats.Run_stats.same_epoch + s.Run_stats.same_epoch)
    outs;
  (* sync/alloc/free events are broadcast to every shard; summing the
     per-shard counts would multiply them by the shard count, so the
     merged stats take the splitter's global counts instead *)
  stats.Run_stats.sync_ops <- r.Par.plan.Dgrace_trace.Trace_shard.sync_ops;
  stats.Run_stats.allocs <- r.Par.plan.Dgrace_trace.Trace_shard.allocs;
  stats.Run_stats.frees <- r.Par.plan.Dgrace_trace.Trace_shard.frees;
  let metrics = Metrics.create () in
  Array.iter
    (fun (o : Par.shard_outcome) ->
      Metrics.merge_into ~into:metrics o.Par.detector.Detector.metrics)
    outs;
  let usec s = int_of_float (s *. 1e6) in
  Metrics.set (Metrics.gauge metrics "par.shards") (Array.length outs);
  Metrics.set (Metrics.gauge metrics "par.split_us") (usec r.Par.split_s);
  Metrics.set
    (Metrics.gauge metrics "par.critical_path_us")
    (usec r.Par.critical_path_s);
  Metrics.set
    (Metrics.gauge metrics "par.straddling")
    r.Par.plan.Dgrace_trace.Trace_shard.straddling;
  Metrics.set
    (Metrics.gauge metrics "par.super_granules")
    r.Par.plan.Dgrace_trace.Trace_shard.super_granules;
  Array.iter
    (fun (o : Par.shard_outcome) ->
      let pfx = Printf.sprintf "par.shard%d." o.Par.index in
      Metrics.set (Metrics.gauge metrics (pfx ^ "events")) o.Par.events;
      Metrics.set (Metrics.gauge metrics (pfx ^ "busy_us")) (usec o.Par.busy_s))
    outs;
  let transitions =
    match d0.Detector.transitions with
    | None -> None
    | Some m0 ->
      let states =
        Array.init (State_matrix.n_states m0) (State_matrix.state_name m0)
      in
      let acc = State_matrix.create ~states in
      Array.iter
        (fun (o : Par.shard_outcome) ->
          match o.Par.detector.Detector.transitions with
          | Some m -> State_matrix.merge_into ~into:acc m
          | None -> ())
        outs;
      Some acc
  in
  let races = Par.merged_races r in
  {
    detector = d0.Detector.name;
    races;
    race_count = List.length races;
    suppressed =
      Array.fold_left
        (fun acc (o : Par.shard_outcome) ->
          acc + Report.Collector.suppressed o.Par.detector.Detector.collector)
        0 outs;
    stats;
    mem =
      merge_mem
        (Array.map
           (fun (o : Par.shard_outcome) ->
             mem_of_account o.Par.detector.Detector.account)
           outs);
    elapsed;
    sim = None;
    partial = Option.map snd (Par.merged_stop r);
    degraded = Par.any_degraded r;
    metrics;
    transitions;
    timeseries;
  }

let replay_sharded ?mode ?batched ?budget ?clock ?suppression ?vc_intern
    ?page_cluster ?sample_every ?progress ?tracer ~shards ~spec events =
  if shards < 1 then invalid_arg "Engine.replay_sharded: shards must be >= 1";
  let t0 = Unix.gettimeofday () in
  (* materialise first: the splitter needs two passes, and forcing the
     sequence here surfaces corrupt-trace errors before any domain is
     spawned *)
  let events = Array.of_seq events in
  (* shard [i]'s detector traces onto the same lane the shard's own
     spans land on (the [Par.shard_lane] convention) *)
  let make i =
    Spec.to_detector ?suppression ?vc_intern ?page_cluster
      ?tracer:(Option.map (fun t -> Span.lane t (Par.shard_lane i)) tracer)
      spec
  in
  let recorder_for =
    match
      (match (sample_every, tracer) with
       | Some every, _ -> Some every
       | None, Some _ -> Some 1024
       | None, None -> None)
    with
    | None -> None
    | Some every ->
      Some
        (fun (_ : int) (d : Detector.t) ->
          Some (Recorder.create ~every ~sources:(sampler_sources d) ()))
  in
  let budget =
    match budget with
    | Some b when not (Budget.is_unlimited b) -> Some b
    | Some _ | None -> None
  in
  let r =
    Par.analyze ?mode ?batched ?budget ?clock ?progress ?tracer ?recorder_for
      ~make ~shards ~granule:Dynamic_granularity.share_granule events
  in
  let recorders =
    Array.to_list r.Par.outcomes
    |> List.filter_map (fun (o : Par.shard_outcome) -> o.Par.recorder)
  in
  (match tracer with
   | Some t ->
     Array.iter
       (fun (o : Par.shard_outcome) ->
         match o.Par.recorder with
         | Some rc ->
           List.iter
             (fun (nm, series) ->
               Span.add_counter_series t
                 ~name:(Printf.sprintf "%s.%s" (Par.shard_lane o.Par.index) nm)
                 series)
             (Recorder.counter_series rc)
         | None -> ())
       r.Par.outcomes
   | None -> ());
  (* same rule as the sequential entry points: the merged time-series
     reaches the summary only when the caller asked for one *)
  let timeseries =
    match sample_every with
    | Some _ -> Recorder.merged_final recorders
    | None -> None
  in
  merge_sharded ~elapsed:(Unix.gettimeofday () -. t0) ~timeseries r

(* ------------------------------------------------------------------ *)
(* pipelined replay (doc/trace.md): decode on its own domain, detect
   here — the decode and detect stages of a v2 file replay overlap
   instead of alternating.  Results are bit-identical to the
   sequential [replay_batches] over [fold_batches]: same batches, same
   row numbering, errors surfacing after the same prefix (the ring
   drains before re-raising), and per-event semantics (budgets,
   recorders, progress, tracing) via the same unrolled sink. *)

let pipeline_gauges metrics (p : Trace_pipeline.stats) =
  let usec ns = ns / 1000 in
  Metrics.set (Metrics.gauge metrics "pipeline.blocks") p.Trace_pipeline.blocks;
  Metrics.set
    (Metrics.gauge metrics "pipeline.decode_stall_us")
    (usec p.Trace_pipeline.decode_stall_ns);
  Metrics.set
    (Metrics.gauge metrics "pipeline.detect_stall_us")
    (usec p.Trace_pipeline.detect_stall_ns);
  Metrics.set
    (Metrics.gauge metrics "pipeline.decode_us")
    (usec p.Trace_pipeline.decode_ns)

let replay_pipelined ?slots ?(budget = Budget.unlimited)
    ?(clock = Dgrace_obs.Clock.ns) ?suppression ?vc_intern ?page_cluster
    ?sample_every ?progress ?tracer ~spec path =
  let lane = Option.map Span.main tracer in
  let d =
    Spec.to_detector ?suppression ?vc_intern ?page_cluster ?tracer:lane spec
  in
  let recorder = make_recorder d ~sample_every ~tracer in
  let now_s = seconds_of clock in
  let t0 = now_s () in
  let degraded = ref false in
  let consume =
    match d.Detector.process_batch with
    | Some pb
      when Budget.is_unlimited budget && Option.is_none recorder
           && Option.is_none progress && Option.is_none lane ->
      pb
    | _ ->
      let sink =
        make_sink d ~budget:(Some (budget, degraded, now_s, t0)) ~recorder
          ~exact:(sample_every <> None) ~progress ~lane
      in
      fun b ->
        note_batch_fallback d;
        Batch.iter_events sink b
  in
  (* the decoder domain lands its block decodes on a "decoder" lane, so
     [racedet timings] shows the decode-vs-detect split side by side *)
  let span =
    Option.map
      (fun t ->
        let dl = Span.lane t "decoder" in
        fun name f -> Span.span dl name f)
      tracer
  in
  let consumer_span =
    Option.map (fun b -> fun name f -> Span.span b name f) lane
  in
  (match lane with Some b -> Span.begin_span b "engine.replay" | None -> ());
  let pipe = ref None in
  let partial =
    match Trace_pipeline.feed ?slots ~clock ?span ?consumer_span path consume with
    | stats ->
      pipe := Some stats;
      None
    | exception Stop stop ->
      (match lane with Some b -> Span.instant b "budget.stop" | None -> ());
      Some stop
  in
  Option.iter (pipeline_gauges d.Detector.metrics) !pipe;
  (match lane with Some b -> Span.end_span b "engine.replay" | None -> ());
  (match lane with
   | Some b -> Span.span b "engine.finish" d.finish
   | None -> d.finish ());
  Option.iter Recorder.flush recorder;
  feed_counter_tracks ~tracer ~prefix:d.name recorder;
  let elapsed = now_s () -. t0 in
  let timeseries = match sample_every with Some _ -> recorder | None -> None in
  summarize d ~elapsed ~sim:None ~partial ~degraded:!degraded ~timeseries

let replay_sharded_pipelined ?slots ?(clock = Dgrace_obs.Clock.ns) ?suppression
    ?vc_intern ?page_cluster ~shards ~spec path =
  if shards < 1 then
    invalid_arg "Engine.replay_sharded_pipelined: shards must be >= 1";
  let t0 = Unix.gettimeofday () in
  let make (_ : int) =
    Spec.to_detector ?suppression ?vc_intern ?page_cluster spec
  in
  let r, pipe =
    Par.analyze_pipelined ?slots ~clock ~make ~shards
      ~granule:Dynamic_granularity.share_granule path
  in
  let s = merge_sharded ~elapsed:(Unix.gettimeofday () -. t0) ~timeseries:None r in
  pipeline_gauges s.metrics pipe;
  s

(* ------------------------------------------------------------------ *)
(* checked entry points: structured errors instead of exceptions *)

let checked f =
  match f () with
  | s -> Ok s
  | exception Error.E e -> Error e
  | exception Sim.Deadlock { Sim.blocked; held } ->
    Error (Error.Deadlock { blocked; held })

let run_checked ?policy ?batched ?budget ?clock ?suppression ?vc_intern
    ?page_cluster ?sample_every ?progress ?tracer ~spec program =
  checked (fun () ->
      run ?policy ?batched ?budget ?clock ?suppression ?vc_intern ?page_cluster
        ?sample_every ?progress ?tracer ~spec program)

let replay_checked ?batched ?budget ?clock ?suppression ?vc_intern
    ?page_cluster ?sample_every ?progress ?tracer ~spec events =
  checked (fun () ->
      replay ?batched ?budget ?clock ?suppression ?vc_intern ?page_cluster
        ?sample_every ?progress ?tracer ~spec events)

let replay_batches_checked ?budget ?clock ?suppression ?vc_intern ?page_cluster
    ?sample_every ?progress ?tracer ~spec feed =
  checked (fun () ->
      replay_batches ?budget ?clock ?suppression ?vc_intern ?page_cluster
        ?sample_every ?progress ?tracer ~spec feed)

let replay_sharded_checked ?mode ?batched ?budget ?clock ?suppression
    ?vc_intern ?page_cluster ?sample_every ?progress ?tracer ~shards ~spec
    events =
  checked (fun () ->
      replay_sharded ?mode ?batched ?budget ?clock ?suppression ?vc_intern
        ?page_cluster ?sample_every ?progress ?tracer ~shards ~spec events)

let replay_pipelined_checked ?slots ?budget ?clock ?suppression ?vc_intern
    ?page_cluster ?sample_every ?progress ?tracer ~spec path =
  checked (fun () ->
      replay_pipelined ?slots ?budget ?clock ?suppression ?vc_intern
        ?page_cluster ?sample_every ?progress ?tracer ~spec path)

let replay_sharded_pipelined_checked ?slots ?clock ?suppression ?vc_intern
    ?page_cluster ~shards ~spec path =
  checked (fun () ->
      replay_sharded_pipelined ?slots ?clock ?suppression ?vc_intern
        ?page_cluster ~shards ~spec path)

let summarize_detector d ~elapsed ~partial ~degraded =
  summarize d ~elapsed ~sim:None ~partial ~degraded ~timeseries:None

let exit_code_of_summary s =
  if s.partial <> None || s.degraded then Error.exit_partial
  else if s.race_count > 0 then Error.exit_races
  else Error.exit_ok

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>detector: %s@,elapsed: %.3fs@,%a@," s.detector
    s.elapsed Run_stats.pp s.stats;
  Format.fprintf ppf
    "memory: peak=%dB (hash=%d vc=%d bitmap=%d) peak-vcs=%d avg-sharing=%.1f@,"
    s.mem.peak_bytes s.mem.peak_hash_bytes s.mem.peak_vc_bytes
    s.mem.peak_bitmap_bytes s.mem.peak_vcs s.mem.avg_sharing;
  (match s.partial with
   | Some stop ->
     Format.fprintf ppf "status: partial (%s)@," (Budget.stop_to_string stop)
   | None -> ());
  if s.degraded then
    Format.fprintf ppf "status: degraded (shadow state shed under budget)@,";
  Format.fprintf ppf "races: %d (%d suppressed)" s.race_count s.suppressed;
  List.iter (fun r -> Format.fprintf ppf "@,  %a" Report.pp r) s.races;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* structured export (doc/observability.md documents the schema) *)

let stats_to_json (st : Run_stats.t) =
  Json.Obj
    [
      ("accesses", Json.Int st.accesses);
      ("reads", Json.Int st.reads);
      ("writes", Json.Int st.writes);
      ("same_epoch", Json.Int st.same_epoch);
      ("sync_ops", Json.Int st.sync_ops);
      ("allocs", Json.Int st.allocs);
      ("frees", Json.Int st.frees);
    ]

let mem_to_json m =
  Json.Obj
    [
      ("peak_bytes", Json.Int m.peak_bytes);
      ("peak_hash_bytes", Json.Int m.peak_hash_bytes);
      ("peak_vc_bytes", Json.Int m.peak_vc_bytes);
      ("peak_bitmap_bytes", Json.Int m.peak_bitmap_bytes);
      ("peak_interned_bytes", Json.Int m.peak_interned_bytes);
      ("peak_vcs", Json.Int m.peak_vcs);
      ("total_vcs", Json.Int m.total_vcs);
      ("avg_sharing", Json.Float m.avg_sharing);
    ]

(* [with_elapsed:false] is for the top-level "run" document, where v3
   moved the wall clock onto the envelope itself; nested run objects
   (compare's [runs] list) keep it in the body. *)
let summary_body ?workload ?(with_elapsed = true) s =
  List.concat
    [
      [ ("detector", Json.String s.detector) ];
      (match workload with Some w -> [ ("workload", w) ] | None -> []);
      (if with_elapsed then [ ("elapsed_s", Json.Float s.elapsed) ] else []);
      [
        ("races", Json.Int s.race_count);
        ("suppressed", Json.Int s.suppressed);
        ("partial", Json.Bool (s.partial <> None));
        ("degraded", Json.Bool s.degraded);
      ];
      (match s.partial with
       | Some stop -> [ ("stop_reason", Budget.stop_to_json stop) ]
       | None -> []);
      [
        ("stats", stats_to_json s.stats);
        ("memory", mem_to_json s.mem);
        ("metrics", Metrics.to_json s.metrics);
      ];
      (match s.transitions with
       | Some m -> [ ("transitions", State_matrix.to_json m) ]
       | None -> []);
      (match s.timeseries with
       | Some ts -> [ ("timeseries", Recorder.to_json ts) ]
       | None -> []);
      (match s.sim with
       | Some sim ->
         [
           ( "sim",
             Json.Obj
               [
                 ("threads", Json.Int sim.Sim.threads);
                 ("events", Json.Int sim.Sim.events);
                 ("accesses", Json.Int sim.Sim.accesses);
                 ("total_allocated", Json.Int sim.Sim.total_allocated);
               ] );
         ]
       | None -> []);
    ]

let summary_to_json ?workload s =
  Export.envelope ~kind:"run" ~elapsed_s:s.elapsed
    (summary_body ?workload ~with_elapsed:false s)

let summaries_to_json ?workload ?elapsed_s ss =
  Export.envelope ~kind:"compare" ?elapsed_s
    [
      (match workload with Some w -> ("workload", w) | None -> ("workload", Json.Null));
      ("runs", Json.List (List.map (fun s -> Json.Obj (summary_body s)) ss));
    ]
