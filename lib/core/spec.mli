(** Detector specifications — the user-facing way to name a detection
    algorithm and configuration. *)

open Dgrace_events
open Dgrace_detectors

type t =
  | No_detection  (** run the program uninstrumented (base time/memory) *)
  | Fasttrack of { granularity : int }  (** fixed-granularity FastTrack *)
  | Djit of { granularity : int }  (** DJIT+ with full vector clocks *)
  | Dynamic of { init_state : bool; init_sharing : bool }
      (** the paper's dynamic-granularity detector; both flags [true]
          is the full algorithm, the other combinations are the
          Table 5 ablations *)
  | Dynamic_ext
      (** the paper's §VII future-work extensions on top of the
          dynamic detector: post-second-epoch resharing and
          write-guided read sharing *)
  | Drd  (** segment-based Valgrind-DRD-style detector *)
  | Inspector  (** hybrid Inspector-XE stand-in *)
  | Eraser  (** LockSet *)
  | Multirace  (** DJIT+ combined with LockSet (§VI) *)
  | Racetrack of { region : int }
      (** RaceTrack-style coarse-to-fine adaptive granularity (§VI) —
          misses one-shot races by design *)
  | Literace  (** LiteRace-style cold-region sampling (§VI) *)
  | Sampling of { rate : float; granule : bool }
      (** deterministic O(1)-cost sampling wrapper around the dynamic
          detector ({!Dgrace_detectors.Race_sampler}): [granule = true]
          samples whole share-granule lines — exact on the sampled
          subspace — [false] flips an independent per-access coin.
          doc/sampling.md *)

val byte : t
(** FastTrack at byte granularity. *)

val word : t
(** FastTrack at word granularity. *)

val dynamic : t
(** The full dynamic-granularity detector. *)

val name : t -> string
(** Stable short name, e.g. ["ft-dynamic"]. *)

val of_string : string -> (t, string) result
(** Parses the CLI names: [none], [byte], [word], [ft:<n>], [djit],
    [djit:<n>], [dynamic], [dynamic-no-init-sharing],
    [dynamic-no-init-state], [drd], [inspector], [eraser],
    [sample:<rate>], [sample-granule:<rate>] (rate a float in (0, 1];
    bare [sample]/[sample-granule] default to 0.1). *)

val all_names : string list
(** Accepted [of_string] inputs, for CLI help. *)

val to_detector :
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?tracer:Dgrace_obs.Span.buf ->
  t ->
  Detector.t
(** Instantiate a fresh detector.  [~vc_intern:false] disables
    hash-consing of vector-clock snapshots in the detectors that keep
    them (the FastTrack family, DRD, Inspector, RaceTrack) — the
    [--no-vc-intern] escape hatch.  [~page_cluster:false] disables
    page-clustered batch application in the detectors with a batched
    fast path (the FastTrack family) — the [--no-page-cluster] escape
    hatch; per-event dispatch is unaffected either way.
    [~tracer:lane] registers sampled per-phase timers on the given
    tracing lane in the detectors that support them (the FastTrack
    family — see {!Dynamic_granularity.create}); other detectors
    ignore it. *)
