(** Deterministic fault injection against the whole pipeline.

    The resilience contract this repo makes is {e recover or declare}:
    whatever is thrown at the system — corrupt trace bytes, a workload
    thread that stalls forever, a lock whose unlock is lost — the run
    must end either with results (possibly via resync recovery) or
    with a structured {!Dgrace_resilience.Error.t}.  Never an uncaught
    exception, never a hang.  This harness injects exactly those
    faults, seeded so every run replays byte-for-byte
    ([racedet inject], [bench --faults], and the CI job drive it). *)

(** What to break. *)
type fault =
  | Trace_fault of Dgrace_resilience.Fault.trace_fault
      (** corrupt the recorded trace image before replay *)
  | Stall
      (** a workload thread waits on a flag nobody sets — the run must
          end in a structured deadlock report, not a hang *)
  | Lost_unlock
      (** a thread exits still holding a mutex a later thread needs —
          the deadlock report must name the orphaned lock *)

val all : fault list

val name : fault -> string
(** ["bitflip"], ["truncate"], ["duplicate"], ["stall"],
    ["lost-unlock"]. *)

val of_name : string -> fault option
val names : string list

(** How the run ended. *)
type outcome =
  | Completed of Engine.summary
      (** the fault was absorbed: strict replay still succeeded
          (e.g. a duplicated span that re-decodes as valid records) *)
  | Recovered of {
      recovery : Dgrace_trace.Trace_reader.recovery;
      summary : Engine.summary;
    }  (** strict replay hit corruption; resync salvaged the rest *)
  | Declared of Dgrace_resilience.Error.t
      (** the run failed with the structured error it should *)
  | Unexpected of string
      (** contract violation: an exception escaped — this is the only
          outcome the harness (and CI) treats as a failure *)

val acceptable : outcome -> bool
(** Everything except {!Unexpected}. *)

val describe : outcome -> string
(** One line per outcome, stable for a given seed — the [inject]
    report row. *)

val run :
  ?spec:Spec.t ->
  seed:int ->
  program:(unit -> unit) ->
  fault ->
  outcome
(** Inject one fault and classify the result.

    For a {!Trace_fault}: [program] is recorded to a temporary trace
    (deterministic chunked schedule derived from [seed]), the image is
    corrupted with {!Dgrace_resilience.Fault.apply}, replayed
    strictly, and — when strict replay reports corruption — replayed
    again in resync mode.  Temporary files are removed even on
    exceptions.

    For {!Stall}/{!Lost_unlock}: [program] is ignored and a small
    synthetic workload with the scheduler fault baked in runs under
    {!Engine.run_checked}; the expected outcome is a {!Declared}
    deadlock naming the stuck threads (and, for lost unlocks, the
    orphaned mutex).

    Catches every exception: a bug anywhere in the stack surfaces as
    {!Unexpected}, not a harness crash. *)
