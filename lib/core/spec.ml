open Dgrace_detectors

type t =
  | No_detection
  | Fasttrack of { granularity : int }
  | Djit of { granularity : int }
  | Dynamic of { init_state : bool; init_sharing : bool }
  | Dynamic_ext
  | Drd
  | Inspector
  | Eraser
  | Multirace
  | Racetrack of { region : int }
  | Literace
  | Sampling of { rate : float; granule : bool }

let byte = Fasttrack { granularity = 1 }
let word = Fasttrack { granularity = 4 }
let dynamic = Dynamic { init_state = true; init_sharing = true }

let name = function
  | No_detection -> "none"
  | Fasttrack { granularity = 1 } -> "ft-byte"
  | Fasttrack { granularity = 4 } -> "ft-word"
  | Fasttrack { granularity } -> Printf.sprintf "ft-%dB" granularity
  | Djit { granularity = 1 } -> "djit"
  | Djit { granularity } -> Printf.sprintf "djit-%dB" granularity
  | Dynamic { init_state = true; init_sharing = true } -> "ft-dynamic"
  | Dynamic { init_state = true; init_sharing = false } ->
    "ft-dynamic-no-init-sharing"
  | Dynamic { init_state = false; _ } -> "ft-dynamic-no-init-state"
  | Dynamic_ext -> "ft-dynamic-ext"
  | Multirace -> "multirace"
  | Racetrack { region } -> Printf.sprintf "racetrack-%dB" region
  | Literace -> "literace"
  | Sampling { rate; granule = true } -> Printf.sprintf "sample-granule:%g" rate
  | Sampling { rate; granule = false } -> Printf.sprintf "sample:%g" rate
  | Drd -> "drd"
  | Inspector -> "inspector"
  | Eraser -> "eraser"

let parse_gran prefix s =
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    int_of_string_opt (String.sub s plen (String.length s - plen))
  else None

(* [sample:<rate>] / [sample-granule:<rate>] — the rate is a float in
   (0, 1]; anything else is a parse error, not a clamp. *)
let parse_rate prefix s =
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    match float_of_string_opt (String.sub s plen (String.length s - plen)) with
    | Some r when r > 0. && r <= 1. -> Some (Ok r)
    | Some _ ->
      Some (Error (Printf.sprintf "%s rate must be in (0, 1], got %S" prefix s))
    | None -> Some (Error (Printf.sprintf "bad rate in %S" s))
  else None

let of_string s =
  match s with
  | "none" -> Ok No_detection
  | "byte" | "ft-byte" -> Ok byte
  | "word" | "ft-word" -> Ok word
  | "dynamic" | "ft-dynamic" -> Ok dynamic
  | "dynamic-no-init-sharing" ->
    Ok (Dynamic { init_state = true; init_sharing = false })
  | "dynamic-no-init-state" ->
    Ok (Dynamic { init_state = false; init_sharing = false })
  | "dynamic-ext" -> Ok Dynamic_ext
  | "djit" -> Ok (Djit { granularity = 1 })
  | "drd" -> Ok Drd
  | "inspector" -> Ok Inspector
  | "eraser" -> Ok Eraser
  | "multirace" -> Ok Multirace
  | "racetrack" -> Ok (Racetrack { region = 64 })
  | "literace" -> Ok Literace
  | "sample" -> Ok (Sampling { rate = 0.1; granule = false })
  | "sample-granule" -> Ok (Sampling { rate = 0.1; granule = true })
  | _ -> (
    match parse_gran "ft:" s with
    | Some g -> Ok (Fasttrack { granularity = g })
    | None -> (
      match parse_gran "djit:" s with
      | Some g -> Ok (Djit { granularity = g })
      | None -> (
        match parse_gran "racetrack:" s with
        | Some region -> Ok (Racetrack { region })
        | None -> (
          (* sample-granule: first — "sample:" is its prefix *)
          match parse_rate "sample-granule:" s with
          | Some (Ok rate) -> Ok (Sampling { rate; granule = true })
          | Some (Error e) -> Error e
          | None -> (
            match parse_rate "sample:" s with
            | Some (Ok rate) -> Ok (Sampling { rate; granule = false })
            | Some (Error e) -> Error e
            | None -> Error (Printf.sprintf "unknown detector %S" s))))))

let all_names =
  [
    "none"; "byte"; "word"; "dynamic"; "dynamic-no-init-sharing";
    "dynamic-no-init-state"; "dynamic-ext"; "djit"; "djit:<n>"; "ft:<n>"; "drd"; "inspector";
    "eraser"; "multirace"; "racetrack"; "racetrack:<n>"; "literace";
    "sample:<rate>"; "sample-granule:<rate>";
  ]

let rec to_detector ?suppression ?vc_intern ?page_cluster ?tracer spec =
  match spec with
  | No_detection -> Detector.null ()
  | Fasttrack { granularity = 1 } ->
    (* the paper's byte detector: access-footprint locations with
       byte-resolution indexing (see Dynamic_granularity) *)
    Dynamic_granularity.create ~sharing:false ~name:"ft-byte" ?suppression
      ?vc_intern ?page_cluster ?tracer ()
  | Fasttrack { granularity = 4 } ->
    (* the paper's word detector: the same machinery, addresses masked
       to word granules *)
    Dynamic_granularity.create ~sharing:false
      ~index:(Dgrace_shadow.Shadow_table.Fixed_bytes 4) ~name:"ft-word"
      ?suppression ?vc_intern ?page_cluster ?tracer ()
  | Fasttrack { granularity } ->
    Fasttrack.create ~granularity ?suppression ?vc_intern ?page_cluster
      ?tracer ()
  | Djit { granularity } -> Djit.create ~granularity ?suppression ()
  | Dynamic { init_state; init_sharing } ->
    Dynamic_granularity.create ~init_state ~init_sharing ?suppression
      ?vc_intern ?page_cluster ?tracer ()
  | Dynamic_ext ->
    Dynamic_granularity.create ~reshare_after:4 ~write_guided_reads:true
      ?suppression ?vc_intern ?page_cluster ?tracer ()
  | Drd -> Drd_segment.create ?suppression ?vc_intern ()
  | Inspector -> Hybrid_inspector.create ?suppression ?vc_intern ()
  | Eraser -> Lockset.create ?suppression ()
  | Multirace -> Multirace.create ?suppression ()
  | Racetrack { region } ->
    Racetrack_adaptive.create ~region ?suppression ?vc_intern ()
  | Literace -> Literace_sampling.create ?suppression ()
  | Sampling { rate; granule } ->
    (* the sampler wraps the full dynamic detector: granule-level
       sampling and dynamic granularity compose (doc/sampling.md) *)
    let inner =
      to_detector ?suppression ?vc_intern ?page_cluster ?tracer dynamic
    in
    Race_sampler.create
      ~mode:(if granule then Race_sampler.Granule else Race_sampler.Access)
      ~rate ~name:(name spec) ~inner ()
