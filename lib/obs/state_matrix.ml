type t = { states : string array; counts : int array }

let create ~states =
  let n = Array.length states in
  { states; counts = Array.make (n * n) 0 }

let n_states t = Array.length t.states
let state_name t i = t.states.(i)

let[@inline] record t ~from_ ~to_ =
  let i = (from_ * Array.length t.states) + to_ in
  t.counts.(i) <- t.counts.(i) + 1

let get t ~from_ ~to_ = t.counts.((from_ * Array.length t.states) + to_)
let total t = Array.fold_left ( + ) 0 t.counts

let row_total t from_ =
  let n = Array.length t.states in
  let acc = ref 0 in
  for to_ = 0 to n - 1 do
    acc := !acc + t.counts.((from_ * n) + to_)
  done;
  !acc

let col_total t to_ =
  let n = Array.length t.states in
  let acc = ref 0 in
  for from_ = 0 to n - 1 do
    acc := !acc + t.counts.((from_ * n) + to_)
  done;
  !acc

let iter f t =
  let n = Array.length t.states in
  for from_ = 0 to n - 1 do
    for to_ = 0 to n - 1 do
      let count = t.counts.((from_ * n) + to_) in
      if count > 0 then f ~from_ ~to_ ~count
    done
  done

let merge_into ~into src =
  if into.states <> src.states then
    invalid_arg "State_matrix.merge_into: different state sets";
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) src.counts

let to_json t =
  let edges = ref [] in
  iter
    (fun ~from_ ~to_ ~count ->
      edges :=
        Json.Obj
          [ ("from", Json.String t.states.(from_));
            ("to", Json.String t.states.(to_)); ("count", Json.Int count) ]
        :: !edges)
    t;
  Json.Obj
    [
      ("states", Json.List (Array.to_list (Array.map (fun s -> Json.String s) t.states)));
      ("total", Json.Int (total t));
      ("edges", Json.List (List.rev !edges));
    ]

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  iter
    (fun ~from_ ~to_ ~count ->
      if not !first then Format.pp_print_cut ppf ();
      first := false;
      Format.fprintf ppf "%-18s -> %-18s %d" t.states.(from_) t.states.(to_)
        count)
    t;
  Format.pp_close_box ppf ()
