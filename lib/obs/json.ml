type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f then "null" (* JSON has no NaN *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape_string buf k;
          Buffer.add_string buf (if minify then ":" else ": ");
          go (indent + 2) item)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           (* UTF-8 encode the code point (surrogates kept verbatim) *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
         | c -> fail (Printf.sprintf "bad escape \\%C" c));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* integer overflow: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let equal (a : t) b = a = b
