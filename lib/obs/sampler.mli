(** Periodic snapshotting of integer-valued sources into an in-memory
    time-series.

    The engine ticks the sampler once per event; every [every] events
    the sampler reads each source and appends one sample.  This turns
    the end-of-run aggregates (peak bytes, live vector clocks) into the
    paper's memory-over-time behaviour.  [tick] is one integer
    increment and compare until a sample is due. *)

type t

type sample = {
  at_event : int;  (** event count when the snapshot was taken *)
  values : int array;  (** one reading per source, in source order *)
}

val create : every:int -> sources:(string * (unit -> int)) list -> t
(** @raise Invalid_argument when [every <= 0] or [sources] is empty. *)

val tick : t -> unit
(** Count one event; snapshots when the period elapses. *)

val tick_n : t -> int -> unit
(** Count [n] events at once, taking at most one snapshot — for
    sampled event loops that only call in every [n] events.  With
    [n = 1] this is exactly {!tick}. *)

val flush : t -> unit
(** Take a final sample at the current event count (end of run) unless
    one was already taken there; guarantees a non-empty series for any
    run with at least one event. *)

val every : t -> int
val source_names : t -> string list
val length : t -> int
val samples : t -> sample list
(** In chronological order. *)

val merged_final : t list -> t option
(** Merge per-shard samplers ([flush] them first) into one holding a
    single sample: values summed element-wise over each input's last
    sample, [at_event] the total events ticked.  For additive sources
    (event and race counts) this equals the last sample of the
    equivalent sequential run.  [None] when no input has a sample.
    Sources are assumed congruent (same list, same order) — the engine
    builds every shard's sampler from one source list. *)

val to_json : t -> Json.t
(** [{ "every": n, "sources": [..], "samples": [[at_event, v1, ..], ..] }]
    — samples as flat rows to keep large series compact. *)
