(** The flight recorder: {!Sampler} extended with a wall-clock time
    dimension.  Each sample the sampler takes is stamped with the
    clock, giving memory-over-time series a real x-axis (the sampler
    alone only knows event counts) and feeding Chrome counter tracks
    via {!counter_series}. *)

type t

val create :
  ?clock:Clock.source ->
  every:int ->
  sources:(string * (unit -> int)) list ->
  unit ->
  t
(** Same contract as {!Sampler.create}; [clock] defaults to
    {!Clock.ns}.
    @raise Invalid_argument when [every <= 0] or [sources] is empty. *)

val tick : t -> unit
(** {!Sampler.tick} plus a clock stamp when a sample was taken; costs
    one extra comparison on the non-sampling path. *)

val tick_n : t -> int -> unit
(** {!Sampler.tick_n} with the same stamping — for sampled event loops
    that batch their recorder bookkeeping. *)

val flush : t -> unit
(** {!Sampler.flush}, stamping the tail sample. *)

val sampler : t -> Sampler.t
val epoch_ns : t -> int
(** Clock reading at creation. *)

val times_ns : t -> int list
(** Absolute clock reading of each sample, chronological; same length
    as [Sampler.samples (sampler t)]. *)

val counter_series : t -> (string * (int * int) list) list
(** One [(ns, value)] series per source — the shape
    {!Span.add_counter_series} takes. *)

val merged_final : t list -> t option
(** {!Sampler.merged_final} over the underlying samplers; the merged
    sample is stamped at the latest input reading.  [None] when no
    input has a sample. *)

val to_json : t -> Json.t
(** {!Sampler.to_json} plus an ["at_s"] array: seconds since the
    recorder's epoch, one per sample. *)
