(** Nanosecond wall-clock readings for span tracing.

    A {!source} is any [unit -> int] producing nanoseconds; the tracing
    layer takes one at construction so tests can substitute a
    deterministic clock ({!ticker}) for the real one ({!ns}). *)

type source = unit -> int
(** Nanoseconds as a plain (unboxed) [int]. *)

val ns : source
(** The real wall clock ([Unix.gettimeofday], scaled).  May step
    backwards under clock adjustment; {!Span} clamps per-lane
    timestamps so exported traces stay monotone regardless. *)

val ticker : ?start:int -> ?step:int -> unit -> source
(** [ticker ()] is a deterministic source for tests: the first reading
    is [start] (default 0) and each subsequent reading advances by
    [step] nanoseconds (default 1000). *)
