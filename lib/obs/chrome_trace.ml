(* Chrome trace_event export (the JSON object format Perfetto and
   chrome://tracing load): one timeline lane per Span lane, a
   synthetic "<lane> phases" lane for sampled timers, and counter
   tracks from Recorder series.

   The exporter guarantees a valid trace whatever happened at record
   time: timestamps are clamped monotone per lane by Span, orphan end
   events (their begin was overwritten by the ring) are dropped, and
   spans still open at export — budget early stop, an exception — get
   a synthesised closing event at the lane's last timestamp.  The
   [validate]/[phases] checker below is the other half of the
   contract; `racedet timings`, the test suite and the CI smoke job
   all run it. *)

type report = {
  phases : phase list;  (* sorted by (lane, phase) *)
  events : int;  (* trace events checked *)
  lanes : int;  (* distinct (pid, tid) timeline lanes *)
  wall_us : int;  (* last span timestamp - first *)
}

and phase = {
  phase_lane : string;
  phase_name : string;
  count : int;
  total_us : int;
  estimated : bool;  (* from a sampled-timer aggregate, not B/E pairs *)
}

(* ------------------------------------------------------------------ *)
(* export *)

let us_of ~t0 ns = (ns - t0) / 1000

let to_json (t : Span.t) =
  let t0 = Span.epoch_ns t in
  let evs = ref [] in
  let push e = evs := e :: !evs in
  let ev ?(extra = []) ?(args = []) ~ph ~name ~tid ~ts () =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String ph);
         ("ts", Json.Int ts);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
       ]
       @ extra
       @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  let meta ~tid ~lane ~sort =
    push
      (ev ~ph:"M" ~name:"thread_name" ~tid ~ts:0
         ~args:[ ("name", Json.String lane) ] ());
    push
      (ev ~ph:"M" ~name:"thread_sort_index" ~tid ~ts:0
         ~args:[ ("sort_index", Json.Int sort) ] ())
  in
  List.iter
    (fun (lv : Span.lane_view) ->
      let tid = lv.id in
      meta ~tid ~lane:lv.lane ~sort:tid;
      let stack = ref [] in
      let last = ref 0 in
      List.iter
        (fun (e : Span.event) ->
          let ts = us_of ~t0 e.ns in
          last := max !last ts;
          match e.kind with
          | Span.Begin ->
            stack := e.name :: !stack;
            push (ev ~ph:"B" ~name:e.name ~tid ~ts ())
          | Span.End -> (
            match !stack with
            | top :: rest ->
              stack := rest;
              push (ev ~ph:"E" ~name:top ~tid ~ts ())
            | [] -> () (* begin lost to the ring: drop the orphan end *))
          | Span.Instant ->
            push
              (ev ~ph:"i" ~name:e.name ~tid ~ts
                 ~extra:[ ("s", Json.String "t") ] ()))
        lv.events;
      (* close anything still open so begin/end pairs always balance *)
      List.iter (fun name -> push (ev ~ph:"E" ~name ~tid ~ts:!last ())) !stack;
      (* sampled timers: one complete event each, laid out sequentially
         on a synthetic lane (durations are estimates, not a timeline) *)
      if lv.timers <> [] then begin
        let ptid = 1000 + lv.id in
        meta ~tid:ptid ~lane:(lv.lane ^ " phases") ~sort:ptid;
        let cursor = ref 0 in
        List.iter
          (fun (tv : Span.timer_view) ->
            let dur = tv.estimate_ns / 1000 in
            push
              (ev ~ph:"X" ~name:tv.timer_name ~tid:ptid ~ts:!cursor
                 ~extra:[ ("dur", Json.Int dur) ]
                 ~args:
                   [
                     ("ops", Json.Int tv.ops);
                     ("sampled", Json.Int tv.sampled);
                     ("estimated", Json.Bool true);
                   ]
                 ());
            cursor := !cursor + dur)
          lv.timers
      end)
    (Span.lane_views t);
  List.iter
    (fun (name, series) ->
      List.iter
        (fun (ns, v) ->
          push
            (ev ~ph:"C" ~name ~tid:0 ~ts:(us_of ~t0 ns)
               ~args:[ ("value", Json.Int v) ] ()))
        series)
    (Span.counter_tracks t);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !evs));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("generator", Json.String "dgrace");
            ("dropped_events", Json.Int (Span.dropped t));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* validation + per-phase aggregation over a parsed trace document *)

type lane_state = {
  mutable last_ts : int;
  mutable stack : (string * int) list;  (* open spans: (name, begin ts) *)
  mutable lane_label : string option;
}

exception Invalid of string

let phases (doc : Json.t) =
  let fail i msg = raise (Invalid (Printf.sprintf "event %d: %s" i msg)) in
  let str i k ev =
    match Json.member k ev with
    | Some (Json.String s) -> s
    | _ -> fail i (Printf.sprintf "missing string %S" k)
  in
  let int_ i k ev =
    match Json.member k ev with
    | Some (Json.Int n) -> n
    | _ -> fail i (Printf.sprintf "missing integer %S" k)
  in
  let lanes : (int * int, lane_state) Hashtbl.t = Hashtbl.create 16 in
  let lane_of i ev =
    let key = (int_ i "pid" ev, int_ i "tid" ev) in
    match Hashtbl.find_opt lanes key with
    | Some st -> (key, st)
    | None ->
      let st = { last_ts = min_int; stack = []; lane_label = None } in
      Hashtbl.replace lanes key st;
      (key, st)
  in
  let agg : (string * string, int ref * int ref * bool ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let bump ~lane ~name ~dur ~estimated =
    let count, total, est =
      match Hashtbl.find_opt agg (lane, name) with
      | Some cell -> cell
      | None ->
        let cell = (ref 0, ref 0, ref false) in
        Hashtbl.replace agg (lane, name) cell;
        cell
    in
    incr count;
    total := !total + dur;
    if estimated then est := true
  in
  let lo = ref max_int and hi = ref min_int in
  let n_events = ref 0 in
  match
    let events =
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) -> evs
      | Some _ -> raise (Invalid "\"traceEvents\" is not a list")
      | None -> raise (Invalid "missing \"traceEvents\"")
    in
    List.iteri
      (fun i ev ->
        incr n_events;
        let ph = str i "ph" ev in
        let name = str i "name" ev in
        let _, st = lane_of i ev in
        let span_ts () =
          let ts = int_ i "ts" ev in
          if ts < 0 then fail i "negative timestamp";
          if ts < st.last_ts then
            fail i
              (Printf.sprintf "timestamp %d before %d on the same lane" ts
                 st.last_ts);
          st.last_ts <- ts;
          lo := min !lo ts;
          hi := max !hi ts;
          ts
        in
        match ph with
        | "M" ->
          if name = "thread_name" then
            st.lane_label <-
              Option.bind (Json.member "args" ev) (Json.member "name")
              |> Option.map (function Json.String s -> s | _ -> "?")
        | "B" -> st.stack <- (name, span_ts ()) :: st.stack
        | "E" -> (
          let ts = span_ts () in
          match st.stack with
          | (top, t0) :: rest when top = name ->
            st.stack <- rest;
            bump
              ~lane:(Option.value st.lane_label ~default:"?")
              ~name ~dur:(ts - t0) ~estimated:false
          | (top, _) :: _ ->
            fail i (Printf.sprintf "end %S does not match open span %S" name top)
          | [] -> fail i (Printf.sprintf "end %S with no open span" name))
        | "i" | "I" ->
          let _ = span_ts () in
          bump
            ~lane:(Option.value st.lane_label ~default:"?")
            ~name ~dur:0 ~estimated:false
        | "X" ->
          let ts = span_ts () in
          let dur = int_ i "dur" ev in
          if dur < 0 then fail i "negative duration";
          hi := max !hi (ts + dur);
          bump
            ~lane:(Option.value st.lane_label ~default:"?")
            ~name ~dur ~estimated:true
        | "C" -> (
          match Option.bind (Json.member "args" ev) (Json.member "value") with
          | Some (Json.Int _) -> ()
          | _ -> fail i "counter without an integer args.value")
        | ph -> fail i (Printf.sprintf "unknown phase %S" ph))
      events;
    Hashtbl.iter
      (fun (pid, tid) st ->
        match st.stack with
        | (name, _) :: _ ->
          raise
            (Invalid
               (Printf.sprintf "lane (%d,%d): span %S never closed" pid tid name))
        | [] -> ())
      lanes;
    let phases =
      Hashtbl.fold
        (fun (lane, name) (count, total, est) acc ->
          {
            phase_lane = lane;
            phase_name = name;
            count = !count;
            total_us = !total;
            estimated = !est;
          }
          :: acc)
        agg []
      |> List.sort (fun a b ->
             compare (a.phase_lane, a.phase_name) (b.phase_lane, b.phase_name))
    in
    {
      phases;
      events = !n_events;
      lanes = Hashtbl.length lanes;
      wall_us = (if !hi >= !lo then !hi - !lo else 0);
    }
  with
  | r -> Ok r
  | exception Invalid msg -> Error msg

let validate doc = Result.map (fun (_ : report) -> ()) (phases doc)
