(** A labeled state-transition counting matrix.

    Built for the dynamic-granularity sharing state machine (paper
    Fig. 2) but generic: states are given as names at creation and
    transitions are recorded by index, so the hot path is one array
    store.  The detector owns the state-name-to-index mapping. *)

type t

val create : states:string array -> t

val record : t -> from_:int -> to_:int -> unit
(** Count one [from_ -> to_] transition.  No bounds check beyond the
    array's own; indices come from the creator's own enumeration. *)

val get : t -> from_:int -> to_:int -> int
val n_states : t -> int
val state_name : t -> int -> string

val total : t -> int
(** All transitions ever recorded. *)

val row_total : t -> int -> int
(** Transitions out of one state. *)

val col_total : t -> int -> int
(** Transitions into one state. *)

val iter : (from_:int -> to_:int -> count:int -> unit) -> t -> unit
(** Visit the non-zero edges in row-major order. *)

val merge_into : into:t -> t -> unit
(** Add [src]'s edge counts into [into].  Both matrices must have been
    created over the same state-name array.
    @raise Invalid_argument otherwise. *)

val to_json : t -> Json.t
(** [{ "states": [..], "total": n, "edges": [{"from","to","count"}..] }]
    with edges in row-major order (deterministic). *)

val pp : Format.formatter -> t -> unit
(** Non-zero edges, one [from -> to: count] line each. *)
