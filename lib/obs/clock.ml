(* Wall-clock nanoseconds for the tracing layer.  [Unix.gettimeofday]
   is the only portable time source available without C stubs; it can
   step backwards under NTP, so [Span] clamps per-lane timestamps to
   keep exported traces monotone.  Plain [int] nanoseconds: 63 bits
   hold wall-clock epochs until the year 2262, and unboxed ints keep
   the hot recording path allocation-free. *)

type source = unit -> int

let ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Deterministic clock for tests: starts at [start] and advances by
   [step] nanoseconds per reading. *)
let ticker ?(start = 0) ?(step = 1000) () =
  let now = ref (start - step) in
  fun () ->
    now := !now + step;
    !now
