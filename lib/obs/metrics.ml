type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }

type histogram = {
  h_name : string;
  buckets : int array;  (* index = floor(log2 v), 0 for v <= 1 *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type t = {
  mutable counters_rev : counter list;
  mutable gauges_rev : gauge list;
  mutable histograms_rev : histogram list;
}

let n_buckets = 62

let create () = { counters_rev = []; gauges_rev = []; histograms_rev = [] }

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters_rev with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    t.counters_rev <- c :: t.counters_rev;
    c

let gauge t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges_rev with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0 } in
    t.gauges_rev <- g :: t.gauges_rev;
    g

let histogram t name =
  match List.find_opt (fun h -> h.h_name = name) t.histograms_rev with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; buckets = Array.make n_buckets 0; h_count = 0;
        h_sum = 0; h_max = 0 }
    in
    t.histograms_rev <- h :: t.histograms_rev;
    h

let[@inline] incr c = c.c_value <- c.c_value + 1

let[@inline] add c d =
  if d < 0 then invalid_arg "Metrics.add: negative counter increment";
  c.c_value <- c.c_value + d

let[@inline] set g v = g.g_value <- v

(* floor(log2 v) without allocation; v >= 2 *)
let log2_floor v =
  let b = ref 0 and v = ref v in
  while !v > 1 do
    v := !v lsr 1;
    b := !b + 1
  done;
  !b

let observe h v =
  let b = if v <= 1 then 0 else log2_floor v in
  let b = if b >= n_buckets then n_buckets - 1 else b in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + (if v > 0 then v else 0);
  if v > h.h_max then h.h_max <- v

let value c = c.c_value
let gauge_value g = g.g_value

let find_counter t name =
  Option.map value (List.find_opt (fun c -> c.c_name = name) t.counters_rev)

let counters t =
  List.rev_map (fun c -> (c.c_name, c.c_value)) t.counters_rev
  |> List.sort compare

let gauges t =
  List.rev_map (fun g -> (g.g_name, g.g_value)) t.gauges_rev
  |> List.sort compare

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_max h = h.h_max

let histogram_buckets h =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    if h.buckets.(b) > 0 then begin
      let lo = if b = 0 then 0 else 1 lsl b in
      let hi = (1 lsl (b + 1)) - 1 in
      out := (lo, hi, h.buckets.(b)) :: !out
    end
  done;
  !out

let merge_into ~into src =
  List.iter
    (fun c ->
      let dst = counter into c.c_name in
      dst.c_value <- dst.c_value + c.c_value)
    (List.rev src.counters_rev);
  (* gauges are point-in-time readings; max is the only merge that
     makes sense for the peaks we track (live bytes, capacities) *)
  List.iter
    (fun g ->
      let dst = gauge into g.g_name in
      if g.g_value > dst.g_value then dst.g_value <- g.g_value)
    (List.rev src.gauges_rev);
  List.iter
    (fun h ->
      let dst = histogram into h.h_name in
      Array.iteri (fun b n -> dst.buckets.(b) <- dst.buckets.(b) + n) h.buckets;
      dst.h_count <- dst.h_count + h.h_count;
      dst.h_sum <- dst.h_sum + h.h_sum;
      if h.h_max > dst.h_max then dst.h_max <- h.h_max)
    (List.rev src.histograms_rev)

let to_json t =
  let counters = List.map (fun (n, v) -> (n, Json.Int v)) (counters t) in
  let gauges = List.map (fun (n, v) -> (n, Json.Int v)) (gauges t) in
  let histograms =
    List.rev_map
      (fun h ->
        ( h.h_name,
          Json.Obj
            [
              ("count", Json.Int h.h_count);
              ("sum", Json.Int h.h_sum);
              ("max", Json.Int h.h_max);
              ( "buckets",
                Json.List
                  (List.map
                     (fun (lo, hi, c) ->
                       Json.Obj
                         [ ("lo", Json.Int lo); ("hi", Json.Int hi);
                           ("count", Json.Int c) ])
                     (histogram_buckets h)) );
            ] ))
      t.histograms_rev
    |> List.sort compare
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms) ]
