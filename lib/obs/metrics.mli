(** A lightweight metrics registry: named counters, gauges and
    log-scale histograms.

    Detectors register their instruments once at construction and keep
    direct references; every hot-path update is then a single mutable
    integer store — no lookup, no allocation.  The registry exists so
    the engine, the CLI and the export layer can enumerate whatever a
    detector chose to expose without knowing the detector. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Integer that can move both ways (e.g. live bytes). *)

type histogram
(** Power-of-two bucketed distribution of non-negative integers:
    bucket 0 holds values [<= 0] and [1]; bucket [i >= 1] holds
    [2^i .. 2^(i+1) - 1]. *)

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create by name; the same name always yields the same
    instrument, so re-registering is cheap and idempotent. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Hot-path updates (no allocation)} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on negative increments. *)

val set : gauge -> int -> unit
val observe : histogram -> int -> unit

(** {1 Readouts} *)

val value : counter -> int
val gauge_value : gauge -> int

val find_counter : t -> string -> int option
(** Value by name, [None] when never registered. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * int) list

val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_max : histogram -> int

val histogram_buckets : histogram -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)] with [lo]/[hi] the inclusive
    value range the bucket covers. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into], registering missing instruments on demand:
    counters and histogram buckets/count/sum add, gauge values and
    histogram maxima take the max (gauges are point-in-time peaks —
    live bytes, capacities — so summing them would double-count).
    Used by the sharded replay to collapse per-shard registries into
    one merged document. *)

val to_json : t -> Json.t
(** [{ "counters": {..}, "gauges": {..}, "histograms": {..} }]; fields
    sorted by name so output is deterministic. *)
