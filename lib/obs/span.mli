(** Span tracing: a bounded flight recorder of begin/end/instant
    events, one lock-free lane per domain, exported to Chrome
    [trace_event] JSON by {!Chrome_trace}.

    A tracer ({!t}) owns a set of {e lanes} ({!buf}): the main thread
    registers [main t], each replay shard registers
    [lane t "shardN"].  Every lane must have exactly one writing
    domain — recording then needs no synchronisation; only lane
    registration takes the tracer's mutex.  Each lane is a bounded
    ring: when full, the oldest events are overwritten (and counted as
    dropped), so tracing a run of any length costs fixed memory.

    Tracing is zero-cost when off by construction: the engine only
    calls into this module when a tracer was passed, and the untraced
    event loop is exactly the detector's own handler. *)

type t
(** A tracer: lanes + counter tracks + the trace epoch. *)

type buf
(** One lane.  Single-writer: record only from the domain that owns
    it. *)

val create : ?capacity_per_lane:int -> ?clock:Clock.source -> unit -> t
(** [capacity_per_lane] (default 65536, rounded up to a power of two)
    bounds each lane's ring.  [clock] defaults to {!Clock.ns}.
    @raise Invalid_argument when [capacity_per_lane <= 0]. *)

val epoch_ns : t -> int
(** Clock reading at tracer creation; the exporter's time origin. *)

val main : t -> buf
(** The lane named ["main"] (registered on first use). *)

val lane : t -> string -> buf
(** [lane t name] finds or registers the lane [name].  Safe to call
    from any domain; returns the same [buf] for the same name. *)

(** {1 Recording} *)

val begin_span : buf -> string -> unit
val end_span : buf -> string -> unit
(** Spans nest per lane; close in LIFO order.  The exporter repairs
    unbalanced pairs (ring overwrite, early stop) so the output always
    validates. *)

val instant : buf -> string -> unit
(** A point event (degradation step, budget stop, weld). *)

val span : buf -> string -> (unit -> 'a) -> 'a
(** [span b name f] wraps [f] in a begin/end pair, exception-safe. *)

(** {1 Sampled aggregate timers}

    Cheap per-phase attribution for per-access call sites: one {e
    armed} op in [mask + 1] is actually timed and the per-phase
    estimate scales the sampled mean to the full op count.  A lane's
    timers are armed by default; an event loop that owns the lane can
    take over the sampling with {!wrap_dispatch}, which arms the lane
    for one event in [stride] — a disarmed [timer_start] costs one
    load and one branch, which is what keeps tracing within its
    overhead budget on per-access sites.  The exporter renders each
    timer as a complete ("X") event on a synthetic [<lane> phases]
    lane with op/sample counts in its args. *)

type timer

val timer : buf -> name:string -> mask:int -> timer
(** @raise Invalid_argument unless [mask] is [2^k - 1]. *)

val disabled : unit -> timer
(** A timer that never samples and is never exported: a load and a
    branch per call.  Detectors keep it in place of a real timer when
    no tracer was attached, so per-access sites have one unconditional
    code path — and the off-vs-on cost difference the tracing-overhead
    budget measures stays at the event loop, not in the detector. *)

val timer_start : timer -> unit
(** No-op while the lane is disarmed. *)

val timer_stop : timer -> unit
(** [timer_stop] is a no-op unless this op was sampled. *)

val timer_time : timer -> (unit -> 'a) -> 'a
(** [timer_time tm f] runs [f] under start/stop, exception-safe. *)

val wrap_dispatch :
  buf -> name:string -> stride:int -> on_sample:(unit -> unit) ->
  ('a -> unit) -> 'a -> unit
(** [wrap_dispatch b ~name ~stride ~on_sample f] is [f] as a sampled
    per-event sink: one event in [stride] runs with the lane armed and
    is timed under a timer called [name]; [on_sample] runs after each
    sampled event (coarse bookkeeping — e.g. a recorder tick batched
    by [stride]).  Taking over the lane disarms it for all other
    events, and the read-out ({!lane_views}) scales every timer on the
    lane by [stride].  One wrapper per lane: the last call's [stride]
    wins.  Not exception-safe: an exception from a sampled call loses
    that one sample (the engine only stops a sink by exception, and a
    lost sample only widens the estimate's error bar).
    @raise Invalid_argument unless [stride] is a power of two. *)

(** {1 Counter tracks} *)

val add_counter_series : t -> name:string -> (int * int) list -> unit
(** [(ns, value)] samples (absolute clock readings) attached at end of
    run — typically {!Recorder} output — rendered as a Chrome counter
    track. *)

(** {1 Read-out} (used by {!Chrome_trace} and tests) *)

type kind = Begin | End | Instant
type event = { kind : kind; name : string; ns : int }

type timer_view = {
  timer_name : string;
  ops : int;
  sampled : int;
  estimate_ns : int;
}

type lane_view = {
  lane : string;
  id : int;  (** registration order; the exporter's tid *)
  events : event list;  (** oldest surviving entry first *)
  timers : timer_view list;
  lane_dropped : int;  (** events overwritten by the ring *)
}

val lane_views : t -> lane_view list
(** In registration (id) order. *)

val counter_tracks : t -> (string * (int * int) list) list
val dropped : t -> int
(** Total events lost to ring overwrite across all lanes. *)
