(** Export a {!Span} tracer as Chrome [trace_event] JSON — the object
    format Perfetto ({:https://ui.perfetto.dev}) and [chrome://tracing]
    load — plus the validator/aggregator behind [racedet timings] and
    the CI smoke check.

    Output layout (see doc/observability.md for the walkthrough): one
    timeline lane per Span lane (named via thread metadata, ordered by
    registration), a synthetic ["<lane> phases"] lane of complete
    events for each lane's sampled timers, and one counter track per
    attached series.  Timestamps are microseconds relative to the
    tracer's epoch.  The exporter repairs what recording could not
    know: orphan end events are dropped and still-open spans are
    closed at the lane's last timestamp, so the output always passes
    {!validate} — even for a run stopped mid-stream by a budget. *)

val to_json : Span.t -> Json.t
(** [{ "traceEvents": [...], "displayTimeUnit": "ms",
      "otherData": { "generator", "dropped_events" } }] *)

(** {1 Validation and aggregation} *)

type report = {
  phases : phase list;  (** sorted by (lane, phase) *)
  events : int;  (** trace events checked *)
  lanes : int;  (** distinct (pid, tid) timeline lanes *)
  wall_us : int;  (** span of timestamps covered *)
}

and phase = {
  phase_lane : string;
  phase_name : string;
  count : int;
  total_us : int;
  estimated : bool;
      (** from a sampled-timer aggregate ("X"), not begin/end pairs *)
}

val phases : Json.t -> (report, string) result
(** Validate a parsed trace document and aggregate per-phase totals.
    Checks: ["traceEvents"] list present; every event has string
    [ph]/[name] and integer [ts]/[pid]/[tid]; [ph] is one of
    B/E/i/I/X/C/M; timestamps are monotone per lane (counters and
    metadata exempt); begin/end pairs balance with matching names;
    complete events carry a non-negative [dur]; counters carry an
    integer [args.value]. *)

val validate : Json.t -> (unit, string) result
(** {!phases} without the aggregation. *)
