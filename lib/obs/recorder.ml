(* The flight recorder: a Sampler plus a wall-clock reading per
   sample, so memory-over-time series have a real x-axis and can feed
   Chrome counter tracks.  The tick path is the sampler's countdown
   plus one field comparison; the clock is only read when a sample was
   actually taken. *)

type t = {
  sampler : Sampler.t;
  clock : Clock.source;
  t0_ns : int;
  mutable ns_rev : int list;  (* absolute ns, one per sample, newest first *)
  mutable stamped : int;  (* samples stamped so far *)
}

let create ?(clock = Clock.ns) ~every ~sources () =
  {
    sampler = Sampler.create ~every ~sources;
    clock;
    t0_ns = clock ();
    ns_rev = [];
    stamped = 0;
  }

(* Every new sampler sample gets the current clock; [tick] adds at
   most one sample so the loop runs 0 or 1 times. *)
let stamp t =
  let k = Sampler.length t.sampler in
  while t.stamped < k do
    t.ns_rev <- t.clock () :: t.ns_rev;
    t.stamped <- t.stamped + 1
  done

let tick t =
  Sampler.tick t.sampler;
  if Sampler.length t.sampler > t.stamped then stamp t

let tick_n t n =
  Sampler.tick_n t.sampler n;
  if Sampler.length t.sampler > t.stamped then stamp t

let flush t =
  Sampler.flush t.sampler;
  stamp t

let sampler t = t.sampler
let epoch_ns t = t.t0_ns
let times_ns t = List.rev t.ns_rev

(* One series per source, each sample as (absolute ns, value): the
   shape Span.add_counter_series takes. *)
let counter_series t =
  let names = Array.of_list (Sampler.source_names t.sampler) in
  let rec zip ss ts =
    match (ss, ts) with
    | s :: ss', n :: ts' -> (n, s) :: zip ss' ts'
    | _ -> []
  in
  let stamped = zip (Sampler.samples t.sampler) (times_ns t) in
  Array.to_list
    (Array.mapi
       (fun i name ->
         ( name,
           List.map (fun (ns, (s : Sampler.sample)) -> (ns, s.values.(i))) stamped
         ))
       names)

(* Merge per-shard recorders (see Sampler.merged_final): the single
   merged sample is stamped at the latest shard reading. *)
let merged_final rs =
  match Sampler.merged_final (List.map (fun r -> r.sampler) rs) with
  | None -> None
  | Some s ->
    let t0 =
      List.fold_left (fun acc r -> min acc r.t0_ns) max_int rs
    in
    let last =
      List.fold_left
        (fun acc r -> match r.ns_rev with ns :: _ -> max acc ns | [] -> acc)
        t0 rs
    in
    Some
      {
        sampler = s;
        clock = (fun () -> last);
        t0_ns = t0;
        ns_rev = [ last ];
        stamped = 1;
      }

let to_json t =
  let at_s =
    List.rev_map
      (fun ns -> Json.Float (float_of_int (ns - t.t0_ns) /. 1e9))
      t.ns_rev
  in
  match Sampler.to_json t.sampler with
  | Json.Obj fields -> Json.Obj (fields @ [ ("at_s", Json.List at_s) ])
  | j -> j
