(** The versioned export envelope shared by every metrics document the
    system writes ([racedet run/compare/profile --metrics-out] and the
    bench harness).

    Consumers dispatch on two top-level keys: ["schema_version"] (bump
    on any incompatible change) and ["kind"] (what the body is). *)

val schema_version : int
(** Currently [3] (v3 added the envelope-level ["elapsed_s"]). *)

val version_key : string
(** The literal key name, ["schema_version"]. *)

val envelope : ?elapsed_s:float -> kind:string -> (string * Json.t) list -> Json.t
(** [envelope ~kind body] is an object starting with
    [schema_version]/[kind]/[generator] — plus ["elapsed_s"] (wall
    clock, seconds) when given — followed by [body]. *)

val validate : Json.t -> (int * string, string) result
(** Check a parsed document is an envelope; returns
    [(schema_version, kind)]. *)
