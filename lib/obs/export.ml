(* v2: run summaries gained "partial"/"degraded" flags and, when a
   budget stopped the run, a "stop_reason" object.
   v3: the envelope itself carries wall-clock "elapsed_s" when the
   producer measured one (runs and compares do; static documents like
   bench tables may not). *)
let schema_version = 3
let version_key = "schema_version"

let envelope ?elapsed_s ~kind body =
  Json.Obj
    ((version_key, Json.Int schema_version)
     :: ("kind", Json.String kind)
     :: ("generator", Json.String "dgrace")
     :: ((match elapsed_s with
          | Some s -> [ ("elapsed_s", Json.Float s) ]
          | None -> [])
         @ body))

let validate doc =
  match Json.member version_key doc with
  | Some (Json.Int v) -> (
    match Json.member "kind" doc with
    | Some (Json.String kind) -> Ok (v, kind)
    | Some _ -> Error "\"kind\" is not a string"
    | None -> Error "missing \"kind\"")
  | Some _ -> Error (Printf.sprintf "%S is not an integer" version_key)
  | None -> Error (Printf.sprintf "missing %S" version_key)
