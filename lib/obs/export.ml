(* v2: run summaries gained "partial"/"degraded" flags and, when a
   budget stopped the run, a "stop_reason" object. *)
let schema_version = 2
let version_key = "schema_version"

let envelope ~kind body =
  Json.Obj
    ((version_key, Json.Int schema_version)
     :: ("kind", Json.String kind)
     :: ("generator", Json.String "dgrace")
     :: body)

let validate doc =
  match Json.member version_key doc with
  | Some (Json.Int v) -> (
    match Json.member "kind" doc with
    | Some (Json.String kind) -> Ok (v, kind)
    | Some _ -> Error "\"kind\" is not a string"
    | None -> Error "missing \"kind\"")
  | Some _ -> Error (Printf.sprintf "%S is not an integer" version_key)
  | None -> Error (Printf.sprintf "missing %S" version_key)
