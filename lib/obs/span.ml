(* Span tracing: a flight recorder of begin/end/instant events in
   per-lane bounded rings.

   One [buf] per lane (the main thread, each replay shard); every lane
   has exactly one writer — its own domain — so recording takes no
   lock.  Only lane registration and counter-track attachment go
   through the tracer's mutex.  The ring overwrites its oldest entries
   when full and counts what it dropped, so tracing a run of any
   length costs a fixed amount of memory.

   Recording one event is: one clock read, a monotonicity clamp, and
   three array stores into pre-allocated rings — no allocation when
   the event name is a literal.  When tracing is off the engine never
   constructs a tracer and none of this code runs. *)

type kind = Begin | End | Instant

type timer = {
  t_name : string;
  t_mask : int;  (* sample one armed op in (mask+1); mask = 2^k - 1 *)
  t_gate : bool ref;  (* the owning lane's [armed]: disarmed ops cost
                         one load and branch *)
  t_clock : Clock.source;
  mutable t_ops : int;  (* armed ops seen (scale by the lane stride) *)
  mutable t_sampled : int;
  mutable t_acc_ns : int;  (* time accumulated over sampled ops *)
  mutable t_open_ns : int;  (* start of the in-flight sampled op; -1 if none *)
}

type buf = {
  lane_name : string;
  lane_id : int;
  clock : Clock.source;
  cap : int;  (* power of two *)
  kinds : Bytes.t;
  names : string array;
  stamps : int array;
  mutable head : int;  (* events ever recorded; head land (cap-1) is next slot *)
  mutable last_ns : int;  (* monotonicity clamp for this lane *)
  armed : bool ref;  (* gate shared by this lane's timers; [true] until
                        a dispatch wrapper takes over the sampling *)
  mutable stride : int;  (* ops-per-armed-op scale for the read-out *)
  mutable timers_rev : timer list;
}

type t = {
  t0_ns : int;
  clock : Clock.source;
  capacity : int;
  mu : Mutex.t;  (* guards lane registration and counter tracks *)
  mutable lanes_rev : buf list;
  mutable n_lanes : int;
  mutable tracks_rev : (string * (int * int) list) list;
}

let next_pow2 n =
  let v = ref 1 in
  while !v < n do
    v := !v lsl 1
  done;
  !v

let create ?(capacity_per_lane = 65536) ?(clock = Clock.ns) () =
  if capacity_per_lane <= 0 then
    invalid_arg "Span.create: non-positive capacity";
  {
    t0_ns = clock ();
    clock;
    capacity = next_pow2 (max 16 capacity_per_lane);
    mu = Mutex.create ();
    lanes_rev = [];
    n_lanes = 0;
    tracks_rev = [];
  }

let epoch_ns t = t.t0_ns

let lane t name =
  Mutex.lock t.mu;
  let b =
    match List.find_opt (fun b -> b.lane_name = name) t.lanes_rev with
    | Some b -> b
    | None ->
      let b =
        {
          lane_name = name;
          lane_id = t.n_lanes;
          clock = t.clock;
          cap = t.capacity;
          kinds = Bytes.make t.capacity 'B';
          names = Array.make t.capacity "";
          stamps = Array.make t.capacity 0;
          head = 0;
          last_ns = t.t0_ns;
          armed = ref true;
          stride = 1;
          timers_rev = [];
        }
      in
      t.lanes_rev <- b :: t.lanes_rev;
      t.n_lanes <- t.n_lanes + 1;
      b
  in
  Mutex.unlock t.mu;
  b

let main t = lane t "main"

(* ------------------------------------------------------------------ *)
(* recording (single writer per lane: no locking) *)

let char_of_kind = function Begin -> 'B' | End -> 'E' | Instant -> 'I'
let kind_of_char = function 'B' -> Begin | 'E' -> End | _ -> Instant

let record (b : buf) kind name =
  let ns = b.clock () in
  let ns = if ns > b.last_ns then ns else b.last_ns in
  b.last_ns <- ns;
  let i = b.head land (b.cap - 1) in
  Bytes.unsafe_set b.kinds i (char_of_kind kind);
  Array.unsafe_set b.names i name;
  Array.unsafe_set b.stamps i ns;
  b.head <- b.head + 1

let begin_span b name = record b Begin name
let end_span b name = record b End name
let instant b name = record b Instant name

let span b name f =
  begin_span b name;
  Fun.protect ~finally:(fun () -> end_span b name) f

(* ------------------------------------------------------------------ *)
(* sampled aggregate timers: per-phase attribution cheap enough for
   per-access sites.  One op in (mask+1) is timed; the estimate scales
   the sampled mean to the full op count. *)

let timer (b : buf) ~name ~mask =
  if mask < 0 || mask land (mask + 1) <> 0 then
    invalid_arg "Span.timer: mask must be 2^k - 1";
  let tm =
    {
      t_name = name;
      t_mask = mask;
      t_gate = b.armed;
      t_clock = b.clock;
      t_ops = 0;
      t_sampled = 0;
      t_acc_ns = 0;
      t_open_ns = -1;
    }
  in
  b.timers_rev <- tm :: b.timers_rev;
  tm

(* A timer that never samples: its gate is a private always-false ref,
   so [timer_start]/[timer_stop] reduce to a load and a branch.  Lets
   per-access call sites keep one unconditional code path whether or
   not a tracer was attached; never registered on a lane, never
   exported. *)
let disabled () =
  {
    t_name = "";
    t_mask = 0;
    t_gate = ref false;
    t_clock = (fun () -> 0);
    t_ops = 0;
    t_sampled = 0;
    t_acc_ns = 0;
    t_open_ns = -1;
  }

let[@inline] timer_start tm =
  if !(tm.t_gate) then begin
    tm.t_ops <- tm.t_ops + 1;
    if tm.t_ops land tm.t_mask = 0 then tm.t_open_ns <- tm.t_clock ()
  end

let[@inline] timer_stop tm =
  if tm.t_open_ns >= 0 then begin
    let d = tm.t_clock () - tm.t_open_ns in
    tm.t_acc_ns <- (tm.t_acc_ns + if d > 0 then d else 0);
    tm.t_sampled <- tm.t_sampled + 1;
    tm.t_open_ns <- -1
  end

(* The per-event sink wrapper: the event loop's sampling authority for
   its lane.  One event in [stride] is dispatched armed — this lane's
   phase timers see only those events, and the dispatch itself is
   timed — so the common (unsampled) event pays one counter, one
   branch and the call to [f].  The read-out scales every timer on the
   lane back up by [stride]. *)
let wrap_dispatch (b : buf) ~name ~stride ~on_sample f =
  if stride <= 0 || stride land (stride - 1) <> 0 then
    invalid_arg "Span.wrap_dispatch: stride must be a power of two";
  let tm = timer b ~name ~mask:0 in
  b.stride <- stride;
  b.armed := false;
  let mask = stride - 1 in
  let n = ref 0 in
  fun x ->
    let c = !n + 1 in
    n := c;
    if c land mask = 0 then begin
      b.armed := true;
      tm.t_ops <- tm.t_ops + 1;
      let t0 = tm.t_clock () in
      f x;
      let d = tm.t_clock () - t0 in
      tm.t_acc_ns <- (tm.t_acc_ns + if d > 0 then d else 0);
      tm.t_sampled <- tm.t_sampled + 1;
      b.armed := false;
      on_sample ()
    end
    else f x

let timer_time tm f =
  timer_start tm;
  match f () with
  | v ->
    timer_stop tm;
    v
  | exception e ->
    timer_stop tm;
    raise e

(* ------------------------------------------------------------------ *)
(* counter tracks: time-stamped series attached once at end of run
   (from [Recorder] samples) so the exporter is the single sink *)

let add_counter_series t ~name series =
  Mutex.lock t.mu;
  t.tracks_rev <- (name, series) :: t.tracks_rev;
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)
(* read-out for the exporter *)

type event = { kind : kind; name : string; ns : int }

type timer_view = {
  timer_name : string;
  ops : int;
  sampled : int;
  estimate_ns : int;  (* sampled mean scaled to all ops *)
}

type lane_view = {
  lane : string;
  id : int;
  events : event list;  (* oldest surviving entry first *)
  timers : timer_view list;
  lane_dropped : int;
}

let timer_view ~stride tm =
  {
    timer_name = tm.t_name;
    ops = tm.t_ops * stride;
    sampled = tm.t_sampled;
    estimate_ns =
      (if tm.t_sampled = 0 then 0
       else
         int_of_float
           (float_of_int tm.t_acc_ns /. float_of_int tm.t_sampled
            *. float_of_int (tm.t_ops * stride)));
  }

let lane_view (b : buf) =
  let n = min b.head b.cap in
  let start = b.head - n in
  {
    lane = b.lane_name;
    id = b.lane_id;
    events =
      List.init n (fun j ->
          let i = (start + j) land (b.cap - 1) in
          {
            kind = kind_of_char (Bytes.get b.kinds i);
            name = b.names.(i);
            ns = b.stamps.(i);
          });
    timers = List.rev_map (timer_view ~stride:b.stride) b.timers_rev;
    lane_dropped = (if b.head > b.cap then b.head - b.cap else 0);
  }

let lane_views t =
  Mutex.lock t.mu;
  let lanes = t.lanes_rev in
  Mutex.unlock t.mu;
  List.rev_map lane_view lanes

let counter_tracks t =
  Mutex.lock t.mu;
  let tracks = List.rev t.tracks_rev in
  Mutex.unlock t.mu;
  tracks

let dropped t =
  List.fold_left (fun acc lv -> acc + lv.lane_dropped) 0 (lane_views t)
