type sample = { at_event : int; values : int array }

type t = {
  every : int;
  names : string array;
  reads : (unit -> int) array;
  mutable events : int;
  mutable until_next : int;  (* countdown to the next snapshot *)
  mutable samples_rev : sample list;
  mutable n_samples : int;
}

let create ~every ~sources =
  if every <= 0 then invalid_arg "Sampler.create: non-positive period";
  if sources = [] then invalid_arg "Sampler.create: no sources";
  {
    every;
    names = Array.of_list (List.map fst sources);
    reads = Array.of_list (List.map snd sources);
    events = 0;
    until_next = every;
    samples_rev = [];
    n_samples = 0;
  }

let snapshot t =
  let values = Array.map (fun read -> read ()) t.reads in
  t.samples_rev <- { at_event = t.events; values } :: t.samples_rev;
  t.n_samples <- t.n_samples + 1

let tick t =
  t.events <- t.events + 1;
  t.until_next <- t.until_next - 1;
  if t.until_next = 0 then begin
    t.until_next <- t.every;
    snapshot t
  end

(* Batched tick for sampled event loops: [n] events land at once, at
   most one snapshot is taken (callers batch with n << every). *)
let tick_n t n =
  t.events <- t.events + n;
  t.until_next <- t.until_next - n;
  if t.until_next <= 0 then begin
    t.until_next <- t.every;
    snapshot t
  end

let flush t =
  match t.samples_rev with
  | { at_event; _ } :: _ when at_event = t.events -> ()
  | _ -> if t.events > 0 then snapshot t

let every t = t.every
let source_names t = Array.to_list t.names
let length t = t.n_samples
let samples t = List.rev t.samples_rev

(* Collapse per-shard samplers into one final sample: values summed
   element-wise over each input's last (flushed) sample, at_event the
   total events ticked across inputs.  Intermediate samples are
   per-shard local history and do not merge (shards progress
   independently); the final sums are what sequential replay's last
   sample reports for additive sources. *)
let merged_final ts =
  match ts with
  | [] -> None
  | t0 :: _ ->
    let finals = List.filter_map (fun t -> match t.samples_rev with s :: _ -> Some s | [] -> None) ts in
    if finals = [] then None
    else begin
      let values = Array.make (Array.length t0.names) 0 in
      List.iter
        (fun s ->
          Array.iteri
            (fun i v -> if i < Array.length values then values.(i) <- values.(i) + v)
            s.values)
        finals;
      let at_event = List.fold_left (fun acc t -> acc + t.events) 0 ts in
      Some
        {
          every = t0.every;
          names = Array.copy t0.names;
          reads = Array.map (fun v -> fun () -> v) values;
          events = at_event;
          until_next = t0.every;
          samples_rev = [ { at_event; values } ];
          n_samples = 1;
        }
    end

let to_json t =
  Json.Obj
    [
      ("every", Json.Int t.every);
      ( "sources",
        Json.List (Array.to_list (Array.map (fun s -> Json.String s) t.names)) );
      ( "samples",
        Json.List
          (List.rev_map
             (fun s ->
               Json.List
                 (Json.Int s.at_event
                  :: Array.to_list (Array.map (fun v -> Json.Int v) s.values)))
             t.samples_rev) );
    ]
