type sample = { at_event : int; values : int array }

type t = {
  every : int;
  names : string array;
  reads : (unit -> int) array;
  mutable events : int;
  mutable until_next : int;  (* countdown to the next snapshot *)
  mutable samples_rev : sample list;
  mutable n_samples : int;
}

let create ~every ~sources =
  if every <= 0 then invalid_arg "Sampler.create: non-positive period";
  if sources = [] then invalid_arg "Sampler.create: no sources";
  {
    every;
    names = Array.of_list (List.map fst sources);
    reads = Array.of_list (List.map snd sources);
    events = 0;
    until_next = every;
    samples_rev = [];
    n_samples = 0;
  }

let snapshot t =
  let values = Array.map (fun read -> read ()) t.reads in
  t.samples_rev <- { at_event = t.events; values } :: t.samples_rev;
  t.n_samples <- t.n_samples + 1

let tick t =
  t.events <- t.events + 1;
  t.until_next <- t.until_next - 1;
  if t.until_next = 0 then begin
    t.until_next <- t.every;
    snapshot t
  end

let flush t =
  match t.samples_rev with
  | { at_event; _ } :: _ when at_event = t.events -> ()
  | _ -> if t.events > 0 then snapshot t

let every t = t.every
let source_names t = Array.to_list t.names
let length t = t.n_samples
let samples t = List.rev t.samples_rev

let to_json t =
  Json.Obj
    [
      ("every", Json.Int t.every);
      ( "sources",
        Json.List (Array.to_list (Array.map (fun s -> Json.String s) t.names)) );
      ( "samples",
        Json.List
          (List.rev_map
             (fun s ->
               Json.List
                 (Json.Int s.at_event
                  :: Array.to_list (Array.map (fun v -> Json.Int v) s.values)))
             t.samples_rev) );
    ]
