(** A minimal JSON tree, printer and parser.

    The observability exports must be machine-readable without adding a
    dependency the container does not bake in, so this module carries
    just enough JSON: a value type, a deterministic printer (object
    fields stay in insertion order), and a strict recursive-descent
    parser used by [racedet metrics-info] and the round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; the default is indented, [~minify:true] is single-line. *)

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document.  Numbers without [.],
    [e] or [E] become [Int]; everything else numeric becomes [Float]. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct). *)
