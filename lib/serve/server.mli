(** The supervised streaming detection server behind [racedet serve].

    Connection I/O runs on systhreads (one accept loop, one reader per
    connection); detection runs on a bounded {!Pool} of worker
    domains.  Each {!Session} has a bounded inbox drained serially by
    one worker at a time, so a session is single-threaded while
    distinct sessions run in parallel.

    Backpressure is explicit: admission past [max_sessions] and FEED
    frames past the [inbox_frames] bound are answered with an
    [Overloaded] frame carrying a retry hint and counted in {!shed_total};
    nothing is silently dropped out of order.  Failures are
    per-session (crash-only sessions; a worker crash poisons only the
    session it served before the pool restarts the domain).

    See [doc/serve.md] for the wire protocol and lifecycle. *)

module Json = Dgrace_obs.Json
module Spec = Dgrace_core.Spec
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error

type config = {
  domains : int;  (** worker domains in the pool *)
  max_sessions : int;  (** admission cap on concurrently streaming sessions *)
  inbox_frames : int;  (** bounded per-session inbox *)
  session_deadline_s : float option;  (** watchdog expiry per session *)
  drain_deadline_s : float;  (** grace given to in-flight sessions on drain *)
  retry_after_s : float;  (** hint carried by [Overloaded] *)
  max_frame_bytes : int;
  clock : Dgrace_obs.Clock.source;
      (** drives session budgets, uptime and the watchdog — mock it in
          tests for deterministic expiry *)
  log : string -> unit;  (** supervision log sink *)
  spool_spec : Spec.t;  (** detector for spool-mode sessions *)
  spool_budget : Budget.t;
  spool_vc_intern : bool;
}

val default_config : config
(** 2 domains, 64 sessions, 64-frame inboxes, no session deadline,
    5 s drain grace, real clock, [stderr] log, dynamic spool spec. *)

type t

(** {1 Socket mode} *)

val start : ?cfg:config -> socket:string -> unit -> t
(** Bind a Unix-domain listener at [socket] (replacing a stale file),
    spawn the accept loop and — when [session_deadline_s] is set — the
    watchdog thread, and return immediately. *)

val drain : t -> unit
(** Graceful shutdown: stop admitting, give in-flight sessions
    [drain_deadline_s] to finish, seal stragglers as partial summaries
    and push them to their clients, then shut the pool down and remove
    the socket.  Idempotent; this is the SIGTERM path. *)

val stop : t -> unit
(** Alias of {!drain}. *)

val wait : t -> unit
(** Block until {!drain} completes (the serve main loop's parking spot). *)

val stopped : t -> bool
val draining : t -> bool

(** {1 Introspection} *)

val status_json : t -> Json.t
(** The status document served for [Status] frames: session counts by
    state (open/stopped/finalized/poisoned/degraded), live shadow
    bytes, shed total, pool health (alive/restarts/lost/queue depth). *)

val shed_total : t -> int

val watchdog_sweep : t -> int
(** One deadline sweep over all sessions on the configured clock;
    returns how many sessions were expired to partial summaries.  The
    production watchdog thread calls this on a timer; tests call it
    directly with a mocked clock. *)

(** {1 Spool mode} *)

val process_spool :
  ?cfg:config ->
  dir:string ->
  unit ->
  (string * (Dgrace_core.Engine.summary, Error.t) result) list
(** One-shot batch mode: every [*.trc] file in [dir] becomes one
    session fed in frame-sized chunks through the same session layer
    (identical budget/poison semantics), processed in parallel on a
    pool, results in file-name order.  A budget stop yields that
    session's sealed partial summary; corrupt traces yield their
    structured error. *)
