module Json = Dgrace_obs.Json
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec
module Report = Dgrace_events.Report

(* The socket-path counterpart of Dgrace_core.Fault_harness: drive a
   wire-level fault into one live serve session while a healthy
   session streams the same trace next to it, and check the whole
   resilience contract at once —

   - the faulted session ends {e declared}: the server holds it as a
     poisoned session with a structured error, never a crash;
   - the healthy session is untouched: its race lines match a direct
     one-shot [Engine.replay] of the same events, byte for byte;
   - nothing leaks: once every session is terminal the status document
     reports zero live shadow bytes.

   [racedet inject --via socket] and the serve test suite drive this
   for every wire fault. *)

type outcome =
  | Isolated of {
      poisoned : int;  (* sessions the server declared poisoned *)
      healthy_match : bool;  (* healthy races == one-shot baseline *)
      leaked_shadow_bytes : int;  (* live shadow bytes after the dust settles *)
    }
  | Unexpected of string

let acceptable = function
  | Isolated { poisoned; healthy_match; leaked_shadow_bytes } ->
    poisoned >= 1 && healthy_match && leaked_shadow_bytes = 0
  | Unexpected _ -> false

let describe = function
  | Isolated { poisoned; healthy_match; leaked_shadow_bytes } ->
    Printf.sprintf "isolated: poisoned=%d healthy-match=%b leaked-bytes=%d%s"
      poisoned healthy_match leaked_shadow_bytes
      (if poisoned >= 1 && healthy_match && leaked_shadow_bytes = 0 then ""
       else " [CONTRACT VIOLATION]")
  | Unexpected reason -> Printf.sprintf "UNEXPECTED: %s" reason

let int_at path j =
  let rec go j = function
    | [] -> ( match j with Json.Int n -> Some n | _ -> None)
    | k :: rest -> ( match Json.member k j with Some j -> go j rest | None -> None)
  in
  go j path

let run ?(spec = Spec.dynamic) ?socket ~events fault =
  let socket =
    match socket with
    | Some p -> p
    | None ->
      let p = Filename.temp_file "racedet-chaos" ".sock" in
      Sys.remove p;
      p
  in
  try
    (* the oracle: the same events through the plain engine *)
    let baseline =
      let s = Engine.replay ~spec (List.to_seq events) in
      List.map Report.to_string s.Engine.races
    in
    let cfg = { Server.default_config with domains = 2; max_sessions = 8 } in
    let server = Server.start ~cfg ~socket () in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        let spec_name = Spec.name spec in
        (* victim and healthy stream concurrently so the fault lands
           while the healthy session is genuinely in flight *)
        let healthy = ref (Error (Client.Protocol "not run")) in
        let healthy_t =
          Thread.create
            (fun () ->
              healthy := Client.replay ~spec:spec_name ~socket events)
            ()
        in
        let victim =
          Client.replay ~spec:spec_name ~fault ~fault_after_frames:1 ~socket
            events
        in
        Thread.join healthy_t;
        (* the victim must NOT have completed normally *)
        match victim with
        | Ok _ -> Unexpected "faulted session completed with a summary"
        | Error _ -> (
          (* let the server notice half-closed peers, then inspect *)
          let rec settle tries =
            match Client.connect ~socket with
            | Error f -> Error f
            | Ok c ->
              let s = Client.status c in
              Client.close c;
              (match s with
               | Ok j when tries > 0 && int_at [ "sessions"; "open" ] j <> Some 0
                 ->
                 Thread.delay 0.05;
                 settle (tries - 1)
               | r -> r)
          in
          match settle 100 with
          | Error f ->
            Unexpected
              (Printf.sprintf "status probe failed: %s"
                 (Client.failure_to_string f))
          | Ok status ->
            let poisoned =
              Option.value ~default:(-1)
                (int_at [ "sessions"; "poisoned" ] status)
            in
            let leaked =
              Option.value ~default:(-1) (int_at [ "shadow_bytes" ] status)
            in
            let healthy_match =
              match !healthy with
              | Ok { Client.races; _ } -> races = baseline
              | Error _ -> false
            in
            Isolated { poisoned; healthy_match; leaked_shadow_bytes = leaked }))
  with exn -> Unexpected (Printexc.to_string exn)
