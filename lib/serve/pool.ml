(* A bounded pool of worker domains with supervision.  Jobs are
   thunks; a job that raises is a worker crash — the domain dies, the
   supervisor logic (run in the dying domain's last breath) spawns a
   replacement after a capped exponential backoff, and queued jobs
   carry over to the replacement.  The restart budget is global: once
   it is spent, crashed workers stay down and [lost] counts them, so a
   crash loop degrades capacity instead of spinning forever.

   The sleep used for backoff is injectable so tests can run the
   crash/restart path without real waiting. *)

type t = {
  mu : Mutex.t;
  work : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable alive : int;
  mutable restarts : int;  (* restarts performed so far *)
  mutable lost : int;  (* workers permanently down (budget spent) *)
  mutable handles : unit Domain.t list;
  domains : int;
  max_restarts : int;
  backoff0_s : float;
  max_backoff_s : float;
  sleep : float -> unit;
  on_crash : int -> exn -> unit;
}

let backoff_s t n =
  Float.min t.max_backoff_s (t.backoff0_s *. (2. ** float_of_int n))

(* Under [t.mu]: next job, or None once stopping and drained.  Workers
   finish everything already queued before exiting — shutdown drains. *)
let rec take t =
  if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
  else if t.stopping then None
  else begin
    Condition.wait t.work t.mu;
    take t
  end

let rec worker_loop t =
  Mutex.lock t.mu;
  let job = take t in
  Mutex.unlock t.mu;
  match job with
  | None -> ()
  | Some j ->
    j ();
    worker_loop t

let rec worker_main t wid =
  match worker_loop t with
  | () ->
    Mutex.lock t.mu;
    t.alive <- t.alive - 1;
    Mutex.unlock t.mu
  | exception exn ->
    t.on_crash wid exn;
    Mutex.lock t.mu;
    if t.stopping || t.restarts >= t.max_restarts then begin
      t.alive <- t.alive - 1;
      if not t.stopping then t.lost <- t.lost + 1;
      Mutex.unlock t.mu
    end
    else begin
      let attempt = t.restarts in
      t.restarts <- attempt + 1;
      Mutex.unlock t.mu;
      t.sleep (backoff_s t attempt);
      Mutex.lock t.mu;
      if t.stopping then begin
        t.alive <- t.alive - 1;
        Mutex.unlock t.mu
      end
      else begin
        (* replace this worker; [alive] is unchanged — the
           replacement inherits the dying domain's slot *)
        let h = Domain.spawn (fun () -> worker_main t wid) in
        t.handles <- h :: t.handles;
        Mutex.unlock t.mu
      end
    end

let create ?(max_restarts = 8) ?(backoff0_s = 0.05) ?(max_backoff_s = 2.0)
    ?(sleep = Unix.sleepf) ?(on_crash = fun _ _ -> ()) ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      mu = Mutex.create ();
      work = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      alive = domains;
      restarts = 0;
      lost = 0;
      handles = [];
      domains;
      max_restarts;
      backoff0_s;
      max_backoff_s;
      sleep;
      on_crash;
    }
  in
  for wid = 0 to domains - 1 do
    let h = Domain.spawn (fun () -> worker_main t wid) in
    Mutex.lock t.mu;
    t.handles <- h :: t.handles;
    Mutex.unlock t.mu
  done;
  t

let submit t job =
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    false
  end
  else begin
    Queue.push job t.jobs;
    Condition.signal t.work;
    Mutex.unlock t.mu;
    true
  end

let queue_depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mu;
  n

let restarts t =
  Mutex.lock t.mu;
  let n = t.restarts in
  Mutex.unlock t.mu;
  n

let lost t =
  Mutex.lock t.mu;
  let n = t.lost in
  Mutex.unlock t.mu;
  n

let alive t =
  Mutex.lock t.mu;
  let n = t.alive in
  Mutex.unlock t.mu;
  n

let size t = t.domains

(* Stop accepting, let workers drain the queue, join every domain —
   including replacements spawned after shutdown began (their handles
   land in [t.handles] before the dying domain exits, so the loop
   below cannot miss them). *)
let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  let rec join_all () =
    Mutex.lock t.mu;
    match t.handles with
    | [] -> Mutex.unlock t.mu
    | h :: rest ->
      t.handles <- rest;
      Mutex.unlock t.mu;
      Domain.join h;
      join_all ()
  in
  join_all ()
