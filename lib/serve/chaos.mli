(** Wire-level fault injection against a live serve instance.

    The socket-path counterpart of {!Dgrace_core.Fault_harness}: one
    client injects a wire fault (garbage bytes, truncated frame,
    mid-session disconnect) into its own session while a healthy
    client streams the same events concurrently.  The contract checked
    is {e recover-or-declare, per session, with zero blast radius}:
    the faulted session must end poisoned with a structured error, the
    healthy session's races must match a direct {!Dgrace_core.Engine.replay}
    byte for byte, and the status document must show no leaked shadow
    bytes once every session is terminal. *)

type outcome =
  | Isolated of {
      poisoned : int;  (** sessions the server declared poisoned *)
      healthy_match : bool;  (** healthy races == one-shot baseline *)
      leaked_shadow_bytes : int;  (** live shadow bytes after settle *)
    }
  | Unexpected of string  (** an exception escaped — always a failure *)

val acceptable : outcome -> bool
(** [Isolated] with at least one poisoned session, a matching healthy
    run, and zero leaked bytes. *)

val describe : outcome -> string

val run :
  ?spec:Dgrace_core.Spec.t ->
  ?socket:string ->
  events:Dgrace_events.Event.t list ->
  Client.fault ->
  outcome
(** Start a private server (2 domains) on [socket] (a fresh temp path
    by default), run the victim/healthy pair, classify, and always
    stop the server.  Catches every exception into [Unexpected]. *)
