module Json = Dgrace_obs.Json

(* The serve wire protocol (doc/serve.md): length-prefixed frames over
   a byte stream.  Every frame is

     4 bytes  payload length, big-endian
     1 byte   frame type (an ASCII letter)
     N bytes  payload

   Requests use upper-case types, responses lower-case.  Payloads are
   minified JSON except FEED, whose payload is a run of binary trace
   records (Trace_codec).  The reader is deliberately paranoid: an
   unknown type byte or an over-size length is a protocol error, not a
   crash — the server answers it by poisoning that one session. *)

type frame =
  (* requests *)
  | Open of Json.t  (* session options: spec, budget, vc_intern *)
  | Feed of string  (* binary event records *)
  | Feed_batch of string  (* one v2 block body (Trace_format_v2) *)
  | Finish
  | Status
  (* responses *)
  | Opened of Json.t  (* { "session": id } *)
  | Ack of Json.t  (* { "events": n, "races": n } *)
  | Race of string  (* one incremental race report line *)
  | Summary of Json.t  (* the run envelope, plus race report lines *)
  | Err of Json.t  (* { "code": n, "error": ... } *)
  | Overloaded of Json.t  (* { "retry_after_s": s } *)
  | Status_doc of Json.t

(* Frames a client may send; everything else arriving on the server
   side is a protocol error. *)
let is_request = function
  | Open _ | Feed _ | Feed_batch _ | Finish | Status -> true
  | _ -> false

let default_max_frame_bytes = 16 * 1024 * 1024

(* A peer that vanishes must surface as EPIPE on the write (which the
   callers handle), not as a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let type_byte = function
  | Open _ -> 'O'
  | Feed _ -> 'F'
  | Feed_batch _ -> 'B'
  | Finish -> 'N'
  | Status -> 'S'
  | Opened _ -> 'o'
  | Ack _ -> 'a'
  | Race _ -> 'r'
  | Summary _ -> 's'
  | Err _ -> 'e'
  | Overloaded _ -> 'v'
  | Status_doc _ -> 't'

let payload = function
  | Open j | Opened j | Ack j | Summary j | Err j | Overloaded j
  | Status_doc j ->
    Json.to_string ~minify:true j
  | Feed s | Feed_batch s | Race s -> s
  | Finish | Status -> ""

(* ------------------------------------------------------------------ *)
(* fd I/O.  Writers serialise externally (one mutex per connection);
   a frame is rendered to one string and written with one loop so a
   frame is never interleaved with another writer's bytes. *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = try Unix.write_substring fd s off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd s (off + n) (len - n)
  end

let encode frame =
  let p = payload frame in
  let len = String.length p in
  let b = Bytes.create (5 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.set b 4 (type_byte frame);
  Bytes.blit_string p 0 b 5 len;
  Bytes.unsafe_to_string b

let write fd frame =
  let s = encode frame in
  write_all fd s 0 (String.length s)

(* Read exactly [len] bytes; [`Eof n] reports how many arrived before
   the peer went away. *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec loop off =
    if off >= len then `Ok (Bytes.unsafe_to_string b)
    else
      match Unix.read fd b off (len - off) with
      | 0 -> `Eof off
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        `Eof off
  in
  loop 0

let parse_json s =
  match Json.parse s with
  | Ok j -> Ok j
  | Error msg -> Error (Printf.sprintf "bad JSON payload: %s" msg)

let frame_of ~typ ~body =
  match typ with
  | 'O' -> Result.map (fun j -> Open j) (parse_json body)
  | 'F' -> Ok (Feed body)
  | 'B' -> Ok (Feed_batch body)
  | 'N' -> Ok Finish
  | 'S' -> Ok Status
  | 'o' -> Result.map (fun j -> Opened j) (parse_json body)
  | 'a' -> Result.map (fun j -> Ack j) (parse_json body)
  | 'r' -> Ok (Race body)
  | 's' -> Result.map (fun j -> Summary j) (parse_json body)
  | 'e' -> Result.map (fun j -> Err j) (parse_json body)
  | 'v' -> Result.map (fun j -> Overloaded j) (parse_json body)
  | 't' -> Result.map (fun j -> Status_doc j) (parse_json body)
  | c -> Error (Printf.sprintf "unknown frame type 0x%02x" (Char.code c))

(* [read fd] is [Ok None] on clean end-of-stream (EOF on a frame
   boundary), [Ok (Some frame)] on a well-formed frame, and [Error
   reason] on everything else: garbage type bytes, an over-limit
   length, or a peer that vanished mid-frame. *)
let read ?(max_frame_bytes = default_max_frame_bytes) fd =
  match read_exact fd 5 with
  | `Eof 0 -> Ok None
  | `Eof _ -> Error "truncated frame header"
  | `Ok hdr ->
    let len =
      (Char.code hdr.[0] lsl 24)
      lor (Char.code hdr.[1] lsl 16)
      lor (Char.code hdr.[2] lsl 8)
      lor Char.code hdr.[3]
    in
    if len > max_frame_bytes then
      Error (Printf.sprintf "frame length %d exceeds limit %d" len max_frame_bytes)
    else (
      match read_exact fd len with
      | `Eof got ->
        Error (Printf.sprintf "truncated frame: %d of %d payload bytes" got len)
      | `Ok body ->
        Result.map Option.some (frame_of ~typ:hdr.[4] ~body))
