module Json = Dgrace_obs.Json
module Trace_codec = Dgrace_trace.Trace_codec
module Trace_format_v2 = Dgrace_trace.Trace_format_v2

(* Client side of the serve wire protocol — used by [racedet client],
   the differential tests and the socket-path fault harness.  The
   protocol is deliberately synchronous per request: a client sends
   one frame and reads until the matching response, collecting any
   incremental [Race] lines that arrive in between.  Synchronous
   feeding also closes the classic both-sides-blocked-writing deadlock
   by construction. *)

type t = {
  fd : Unix.file_descr;
  enc : Trace_codec.encoder;
  benc : Trace_format_v2.block_encoder;  (* 'B' frame bodies *)
  mutable races : string list;  (* newest first *)
}

type failure =
  | Protocol of string  (* transport/framing trouble on our side *)
  | Server of { code : int; error : Json.t }  (* structured Err frame *)
  | Gave_up of string  (* backpressure retries exhausted *)

let failure_to_string = function
  | Protocol r -> Printf.sprintf "protocol: %s" r
  | Server { code; error } ->
    Printf.sprintf "server error (exit code %d): %s" code
      (Json.to_string ~minify:true error)
  | Gave_up r -> Printf.sprintf "gave up: %s" r

let connect ~socket =
  Wire.ignore_sigpipe ();
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
    Ok
      {
        fd;
        enc = Trace_codec.encoder ();
        benc = Trace_format_v2.block_encoder ();
        races = [];
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Protocol (Printf.sprintf "connect %s: %s" socket (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let races t = List.rev t.races

(* Read until a non-[Race] response arrives. *)
let rec await t =
  match Wire.read t.fd with
  | Ok None -> Error (Protocol "server closed connection")
  | Error reason -> Error (Protocol reason)
  | Ok (Some (Wire.Race line)) ->
    t.races <- line :: t.races;
    await t
  | Ok (Some frame) -> Ok frame

let server_failure j =
  let code =
    match Json.member "code" j with Some (Json.Int n) -> n | _ -> -1
  in
  let error =
    match Json.member "error" j with Some e -> e | None -> Json.Null
  in
  Server { code; error }

let retry_after j =
  match Json.member "retry_after_s" j with
  | Some (Json.Float s) -> s
  | Some (Json.Int s) -> float_of_int s
  | _ -> 0.1

let max_retries = 200

(* Send [frame], await its response; on [Overloaded] wait the hinted
   time and resend the identical frame (the server accepted nothing,
   so ordering is preserved). *)
let request t frame ~expect =
  let rec go attempt =
    match
      try Ok (Wire.write t.fd frame)
      with Unix.Unix_error (e, _, _) ->
        Error (Protocol (Printf.sprintf "write: %s" (Unix.error_message e)))
    with
    | Error f -> Error f
    | Ok () -> (
      match await t with
      | Error f -> Error f
      | Ok (Wire.Overloaded j) ->
        if attempt >= max_retries then
          Error (Gave_up "overloaded: retry budget exhausted")
        else begin
          Thread.delay (retry_after j);
          go (attempt + 1)
        end
      | Ok (Wire.Err j) -> Error (server_failure j)
      | Ok frame -> (
        match expect frame with
        | Some v -> Ok v
        | None -> Error (Protocol "unexpected response frame")))
  in
  go 0

let open_session ?(spec = "dynamic") ?(vc_intern = true) ?max_events
    ?deadline_s ?max_shadow_bytes t =
  let fields =
    [ ("spec", Json.String spec); ("vc_intern", Json.Bool vc_intern) ]
    @ (match max_events with Some n -> [ ("max_events", Json.Int n) ] | None -> [])
    @ (match deadline_s with
       | Some s -> [ ("deadline_s", Json.Float s) ]
       | None -> [])
    @
    match max_shadow_bytes with
    | Some n -> [ ("max_shadow_bytes", Json.Int n) ]
    | None -> []
  in
  request t (Wire.Open (Json.Obj fields)) ~expect:(function
    | Wire.Opened j -> (
      match Json.member "session" j with
      | Some (Json.Int id) -> Some id
      | _ -> None)
    | _ -> None)

let feed t events =
  let buf = Buffer.create 4096 in
  List.iter (Trace_codec.encode t.enc buf) events;
  request t (Wire.Feed (Buffer.contents buf)) ~expect:(function
    | Wire.Ack j -> Some j
    | _ -> None)

(* One BATCH frame: the batch encodes to a v2 block body once, so an
   Overloaded retry resends the identical bytes (the encoder's intern
   table advanced exactly once). *)
let feed_batch t batch =
  let body = Trace_format_v2.encode_body t.benc batch in
  request t (Wire.Feed_batch body) ~expect:(function
    | Wire.Ack j -> Some j
    | _ -> None)

let finish t =
  request t Wire.Finish ~expect:(function
    | Wire.Summary j -> Some j
    | _ -> None)

let status t =
  request t Wire.Status ~expect:(function
    | Wire.Status_doc j -> Some j
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* fault injection (the socket-path fault harness drives these) *)

type fault =
  | Garbage  (* bytes that are not a frame *)
  | Truncate  (* half a valid frame, then close *)
  | Disconnect  (* vanish mid-session without Finish *)

let fault_of_string = function
  | "garbage" -> Ok Garbage
  | "truncate" -> Ok Truncate
  | "disconnect" -> Ok Disconnect
  | s -> Error (Printf.sprintf "unknown fault %S (garbage|truncate|disconnect)" s)

let write_raw fd s =
  let rec loop off =
    if off < String.length s then
      match Unix.write_substring fd s off (String.length s - off) with
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  (try loop 0 with Unix.Unix_error _ -> ())

let inject t fault =
  (match fault with
   | Garbage ->
     (* a length field far over the limit: the server's reader rejects
        it as a protocol error and poisons the session *)
     write_raw t.fd "\xff\xff\xff\xff\xff"
   | Truncate ->
     let frame = Wire.encode (Wire.Feed (String.make 64 '\x00')) in
     write_raw t.fd (String.sub frame 0 (String.length frame / 2))
   | Disconnect -> ());
  close t

(* ------------------------------------------------------------------ *)
(* one-shot replay: the whole client lifecycle over one session *)

type outcome = { races : string list; summary : Json.t }

let chunks n l =
  let rec take k acc = function
    | [] -> (List.rev acc, [])
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | l ->
      let c, rest = take n [] l in
      loop (c :: acc) rest
  in
  loop [] l

let replay ?spec ?vc_intern ?max_events ?deadline_s ?max_shadow_bytes
    ?(chunk_events = 512) ?fault ?(fault_after_frames = 2) ~socket events =
  match connect ~socket with
  | Error f -> Error f
  | Ok t ->
    let finally_close r =
      close t;
      r
    in
    (match
       open_session ?spec ?vc_intern ?max_events ?deadline_s ?max_shadow_bytes t
     with
     | Error f -> finally_close (Error f)
     | Ok _id ->
       let rec feed_all i = function
         | [] -> Ok ()
         | c :: rest -> (
           match fault with
           | Some f when i = fault_after_frames ->
             inject t f;
             Error (Protocol "fault injected")
           | _ -> (
             match feed t c with
             | Ok _ -> feed_all (i + 1) rest
             | Error f -> Error f))
       in
       (match feed_all 0 (chunks chunk_events events) with
        | Error f -> finally_close (Error f)
        | Ok () -> (
          match finish t with
          | Error f -> finally_close (Error f)
          | Ok summary -> finally_close (Ok { races = races t; summary }))))

(* Same lifecycle over BATCH frames: each chunk is packed into a
   struct-of-arrays batch and sent as one v2 block body.  Chunks are
   clamped to the v2 block capacity. *)
let replay_batched ?spec ?vc_intern ?max_events ?deadline_s ?max_shadow_bytes
    ?(chunk_events = 512) ~socket events =
  let chunk_events = min chunk_events Trace_format_v2.block_events in
  match connect ~socket with
  | Error f -> Error f
  | Ok t ->
    let finally_close r =
      close t;
      r
    in
    (match
       open_session ?spec ?vc_intern ?max_events ?deadline_s ?max_shadow_bytes t
     with
     | Error f -> finally_close (Error f)
     | Ok _id ->
       let rec feed_all = function
         | [] -> Ok ()
         | c :: rest -> (
           match feed_batch t (Dgrace_events.Batch.of_events c) with
           | Ok _ -> feed_all rest
           | Error f -> Error f)
       in
       (match feed_all (chunks chunk_events events) with
        | Error f -> finally_close (Error f)
        | Ok () -> (
          match finish t with
          | Error f -> finally_close (Error f)
          | Ok summary -> finally_close (Ok { races = races t; summary }))))
