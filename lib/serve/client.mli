(** Client side of the serve wire protocol.

    Used by [racedet client], the concurrent differential tests and
    the socket-path fault harness ({!Chaos}).  Requests are
    synchronous: each call sends one frame and reads until the
    matching response, collecting incremental [Race] lines on the way
    (fetch them with {!races}).  [Overloaded] responses are retried
    after the server's hint, resending the identical frame, so
    backpressure never reorders the stream. *)

module Json = Dgrace_obs.Json

type t

type failure =
  | Protocol of string  (** transport or framing trouble *)
  | Server of { code : int; error : Json.t }
      (** a structured [Err] frame: the session's terminal
          {!Dgrace_resilience.Error.t} as JSON plus its exit code *)
  | Gave_up of string  (** backpressure retry budget exhausted *)

val failure_to_string : failure -> string

val connect : socket:string -> (t, failure) result
val close : t -> unit

val open_session :
  ?spec:string ->
  ?vc_intern:bool ->
  ?max_events:int ->
  ?deadline_s:float ->
  ?max_shadow_bytes:int ->
  t ->
  (int, failure) result
(** Returns the server-assigned session id. *)

val feed : t -> Dgrace_events.Event.t list -> (Json.t, failure) result
(** Encode and send one FEED frame; returns the [Ack] body.  Location
    strings are interned per connection across feeds. *)

val feed_batch : t -> Dgrace_events.Batch.t -> (Json.t, failure) result
(** Encode the batch as one v2 block body and send it as a BATCH
    frame; returns the [Ack] body.  Locations intern per connection
    across batch frames (independently of {!feed}'s table). *)

val finish : t -> (Json.t, failure) result
(** Finalize; returns the [Summary] body (the run envelope). *)

val status : t -> (Json.t, failure) result

val races : t -> string list
(** Incremental race lines collected so far, oldest first. *)

(** {1 Fault injection} *)

type fault =
  | Garbage  (** bytes that are not a frame *)
  | Truncate  (** half a valid frame, then close *)
  | Disconnect  (** vanish mid-session without Finish *)

val fault_of_string : string -> (fault, string) result

val inject : t -> fault -> unit
(** Perform the fault on the live connection and close it. *)

(** {1 One-shot replay} *)

type outcome = { races : string list; summary : Json.t }

val replay :
  ?spec:string ->
  ?vc_intern:bool ->
  ?max_events:int ->
  ?deadline_s:float ->
  ?max_shadow_bytes:int ->
  ?chunk_events:int ->
  ?fault:fault ->
  ?fault_after_frames:int ->
  socket:string ->
  Dgrace_events.Event.t list ->
  (outcome, failure) result
(** The whole client lifecycle over one session: connect, open, feed
    in [chunk_events]-sized frames (default 512), finish, close.  With
    [fault], the fault is injected instead of frame
    [fault_after_frames] and the call reports how the session died. *)

val replay_batched :
  ?spec:string ->
  ?vc_intern:bool ->
  ?max_events:int ->
  ?deadline_s:float ->
  ?max_shadow_bytes:int ->
  ?chunk_events:int ->
  socket:string ->
  Dgrace_events.Event.t list ->
  (outcome, failure) result
(** {!replay} over BATCH frames: each chunk travels as one v2 block
    body and the server delivers it through the detector's batch fast
    path.  Results are bit-identical to {!replay} — the differential
    serve tests compare the two. *)
