module Json = Dgrace_obs.Json
module Clock = Dgrace_obs.Clock
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error
module Report = Dgrace_events.Report

(* The supervised serve loop.  Two kinds of threads of control:

   - {e systhreads} handle connection I/O — one accept loop, one
     reader per connection.  They block in [read]/[write] (releasing
     the runtime lock) and never run detector code.
   - {e worker domains} (a {!Pool.t}) run the detectors.  Each session
     has a bounded inbox of work items; the connection thread enqueues
     and marks the session scheduled, a worker drains the inbox
     serially (a detector is not thread-safe), so one session never
     occupies more than one domain while distinct sessions run in
     parallel.

   Backpressure is explicit at two points: admission (too many live
   sessions → [Overloaded] with a retry hint, nothing is created) and
   the per-session inbox (full → the FEED is shed with [Overloaded];
   the client retries the same frame, ordering is preserved because
   nothing later was accepted either).

   Failure is per-session by construction: the session layer converts
   every fault into a terminal state, and a worker that nonetheless
   crashes poisons only the session it was serving before the pool
   restarts the domain. *)

type config = {
  domains : int;
  max_sessions : int;  (* admission cap on concurrently streaming sessions *)
  inbox_frames : int;  (* bounded per-session inbox *)
  session_deadline_s : float option;  (* watchdog expiry *)
  drain_deadline_s : float;  (* grace given to in-flight sessions on drain *)
  retry_after_s : float;  (* hint sent with Overloaded *)
  max_frame_bytes : int;
  clock : Clock.source;  (* drives session budgets and the watchdog *)
  log : string -> unit;  (* supervision log line (bin wires Stderr_line) *)
  spool_spec : Spec.t;  (* detector for spool-mode sessions *)
  spool_budget : Budget.t;
  spool_vc_intern : bool;
}

let default_config =
  {
    domains = 2;
    max_sessions = 64;
    inbox_frames = 64;
    session_deadline_s = None;
    drain_deadline_s = 5.0;
    retry_after_s = 0.25;
    max_frame_bytes = Wire.default_max_frame_bytes;
    clock = Clock.ns;
    log = prerr_endline;
    spool_spec = Spec.dynamic;
    spool_budget = Budget.unlimited;
    spool_vc_intern = true;
  }

type item =
  | Feed_payload of string
  | Decoded_batch of Dgrace_events.Batch.t
      (* one 'B' frame, decoded on the connection thread
         (Session.decode_batch_frame) so decode overlaps detection *)
  | Decode_failed of Error.t
      (* a 'B' frame that failed reader-side decode; poisons the
         session when it reaches this position in the stream *)
  | Finish_req

type entry = {
  session : Session.t;
  inbox : item Queue.t;
  emu : Mutex.t;
  mutable scheduled : bool;  (* a worker owns (or is queued for) the inbox *)
  respond : Wire.frame -> unit;
}

type t = {
  cfg : config;
  pool : Pool.t;
  mu : Mutex.t;
  stopped_cond : Condition.t;
  sessions : (int, entry) Hashtbl.t;
  mutable next_id : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable shed : int;  (* Overloaded responses sent *)
  mutable opened_total : int;
  mutable accept_thread : Thread.t option;
  mutable watchdog_thread : Thread.t option;
  socket_path : string option;
  t0_s : float;
}

let now_s t = float_of_int (t.cfg.clock ()) *. 1e-9

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* ------------------------------------------------------------------ *)
(* response frames *)

let err_frame e =
  Wire.Err
    (Json.Obj [ ("code", Json.Int (Error.exit_code e)); ("error", Error.to_json e) ])

let overloaded_frame t =
  Wire.Overloaded (Json.Obj [ ("retry_after_s", Json.Float t.cfg.retry_after_s) ])

(* One writer closure per connection; its mutex keeps a frame from
   interleaving with another thread's (acks from a worker domain,
   drain summaries from the drain thread).  A vanished peer is not an
   error worth anything — the session outcome is already recorded. *)
let responder fd =
  let wmu = Mutex.create () in
  fun frame ->
    Mutex.lock wmu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wmu)
      (fun () ->
        try Wire.write fd frame with Unix.Unix_error _ | Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* worker side: drain one session's inbox serially *)

let rec drain_inbox entry =
  Mutex.lock entry.emu;
  let item =
    if Queue.is_empty entry.inbox then begin
      entry.scheduled <- false;
      None
    end
    else Some (Queue.pop entry.inbox)
  in
  Mutex.unlock entry.emu;
  match item with
  | None -> ()
  | Some ((Feed_payload _ | Decoded_batch _ | Decode_failed _) as it) ->
    let fed =
      match it with
      | Feed_payload payload -> Session.feed_frame entry.session payload
      | Decoded_batch b -> Session.apply_decoded entry.session b
      | Decode_failed e -> Session.poison_decoded entry.session e
      | Finish_req -> assert false
    in
    (match fed with
     | Ok ack ->
       List.iter
         (fun r -> entry.respond (Wire.Race (Report.to_string r)))
         ack.Session.new_races;
       entry.respond
         (Wire.Ack
            (Json.Obj
               [
                 ("events", Json.Int ack.Session.ack_events);
                 ("races", Json.Int (List.length ack.Session.new_races));
               ]))
     | Error e -> entry.respond (err_frame e));
    drain_inbox entry
  | Some Finish_req ->
    (match Session.finalize entry.session with
     | Ok s -> entry.respond (Wire.Summary (Engine.summary_to_json s))
     | Error e -> entry.respond (err_frame e));
    drain_inbox entry

(* The job handed to the pool.  The session layer already converts
   detector faults into terminal states, so an exception here means a
   bug below the session boundary; contain it on this one session,
   then re-raise so the supervisor counts a worker crash and restarts
   the domain. *)
let session_job entry () =
  try drain_inbox entry
  with exn ->
    let e =
      Error.Internal { where = "serve.worker"; reason = Printexc.to_string exn }
    in
    Session.abort entry.session e;
    Mutex.lock entry.emu;
    Queue.clear entry.inbox;
    entry.scheduled <- false;
    Mutex.unlock entry.emu;
    entry.respond (err_frame e);
    raise exn

(* Under [entry.emu].  Returns [`Inline] when the pool is shutting
   down: the session is terminal by then (drain sealed it), so the
   caller answers from the stored state on the connection thread
   instead of leaving the request unanswered forever. *)
let schedule t entry =
  if entry.scheduled then `Queued
  else begin
    entry.scheduled <- true;
    if Pool.submit t.pool (session_job entry) then `Queued else `Inline
  end

(* ------------------------------------------------------------------ *)
(* session bookkeeping *)

let streaming_count t =
  Hashtbl.fold
    (fun _ e acc ->
      match Session.state e.session with `Streaming -> acc + 1 | _ -> acc)
    t.sessions 0

let budget_of_open j =
  let int_field k =
    match Json.member k j with Some (Json.Int n) -> Some n | _ -> None
  in
  let float_field k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  Budget.make
    ?max_shadow_bytes:(int_field "max_shadow_bytes")
    ?max_events:(int_field "max_events")
    ?deadline_s:(float_field "deadline_s")
    ()

let open_session t ~(respond : Wire.frame -> unit) j =
  let spec_name =
    match Json.member "spec" j with
    | Some (Json.String s) -> s
    | _ -> "dynamic"
  in
  let vc_intern =
    match Json.member "vc_intern" j with Some (Json.Bool b) -> b | _ -> true
  in
  match Spec.of_string spec_name with
  | Error reason -> Error (Error.Invalid_input { what = "open.spec"; reason })
  | Ok spec -> (
    match budget_of_open j with
    | exception Invalid_argument reason ->
      Error (Error.Invalid_input { what = "open.budget"; reason })
    | budget ->
      locked t @@ fun () ->
      if t.draining then Error (Error.Invalid_input { what = "open"; reason = "server draining" })
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        t.opened_total <- t.opened_total + 1;
        let session =
          Session.open_ ~budget ~clock:t.cfg.clock ~vc_intern ~id ~spec ()
        in
        let entry =
          {
            session;
            inbox = Queue.create ();
            emu = Mutex.create ();
            scheduled = false;
            respond;
          }
        in
        Hashtbl.replace t.sessions id entry;
        Ok (id, entry)
      end)

(* ------------------------------------------------------------------ *)
(* status document *)

let status_json t =
  locked t @@ fun () ->
  let streaming = ref 0
  and stopped = ref 0
  and finalized = ref 0
  and poisoned = ref 0
  and degraded = ref 0
  and shadow = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      (match Session.state e.session with
       | `Streaming -> incr streaming
       | `Stopped -> incr stopped
       | `Finalized -> incr finalized
       | `Poisoned _ -> incr poisoned);
      if Session.degraded e.session then incr degraded;
      shadow := !shadow + Session.shadow_bytes e.session)
    t.sessions;
  Json.Obj
    [
      ("uptime_s", Json.Float (now_s t -. t.t0_s));
      ("draining", Json.Bool t.draining);
      ( "sessions",
        Json.Obj
          [
            ("open", Json.Int !streaming);
            ("stopped", Json.Int !stopped);
            ("finalized", Json.Int !finalized);
            ("poisoned", Json.Int !poisoned);
            ("degraded", Json.Int !degraded);
            ("opened_total", Json.Int t.opened_total);
          ] );
      ("shadow_bytes", Json.Int !shadow);
      ("shed", Json.Int t.shed);
      ( "pool",
        Json.Obj
          [
            ("domains", Json.Int (Pool.size t.pool));
            ("alive", Json.Int (Pool.alive t.pool));
            ("restarts", Json.Int (Pool.restarts t.pool));
            ("lost", Json.Int (Pool.lost t.pool));
            ("queue_depth", Json.Int (Pool.queue_depth t.pool));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* connection handling (systhreads) *)

let handle_conn t fd =
  let respond = responder fd in
  let current : entry option ref = ref None in
  let declare_abort e reason_frame =
    Session.abort e.session reason_frame
  in
  let rec loop () =
    match Wire.read ~max_frame_bytes:t.cfg.max_frame_bytes fd with
    | Ok None ->
      (* clean EOF: a session still streaming was abandoned mid-stream *)
      Option.iter
        (fun e ->
          declare_abort e
            (Error.Invalid_input
               { what = "connection"; reason = "disconnected mid-session" }))
        !current
    | Error reason ->
      let err = Error.Invalid_input { what = "frame"; reason } in
      Option.iter (fun e -> declare_abort e err) !current;
      respond (err_frame err)
    | Ok (Some frame) -> (
      match frame with
      | Wire.Status ->
        respond (Wire.Status_doc (status_json t));
        loop ()
      | Wire.Open j -> (
        match !current with
        | Some _ ->
          respond
            (err_frame
               (Error.Invalid_input
                  { what = "open"; reason = "session already open on this connection" }));
          loop ()
        | None ->
          let admitted =
            locked t (fun () ->
                if t.draining || streaming_count t >= t.cfg.max_sessions then begin
                  if not t.draining then t.shed <- t.shed + 1;
                  false
                end
                else true)
          in
          if not admitted then begin
            respond (overloaded_frame t);
            loop ()
          end
          else (
            match open_session t ~respond j with
            | Ok (id, entry) ->
              current := Some entry;
              respond (Wire.Opened (Json.Obj [ ("session", Json.Int id) ]));
              loop ()
            | Error e ->
              respond (err_frame e);
              loop ()))
      | Wire.Feed _ | Wire.Feed_batch _ -> (
        match !current with
        | None ->
          respond
            (err_frame
               (Error.Invalid_input { what = "feed"; reason = "no open session" }));
          loop ()
        | Some entry ->
          (* shed check before any decode: a shed frame is retried
             verbatim by the client, so the session's v2 decoder must
             not have advanced over it.  Only this connection thread
             pushes to this inbox, so the length can only shrink
             between the check and the push below. *)
          let full =
            Mutex.lock entry.emu;
            let f = Queue.length entry.inbox >= t.cfg.inbox_frames in
            Mutex.unlock entry.emu;
            f
          in
          if full then begin
            locked t (fun () -> t.shed <- t.shed + 1);
            respond (overloaded_frame t);
            loop ()
          end
          else begin
            let item =
              match frame with
              | Wire.Feed payload -> Feed_payload payload
              | Wire.Feed_batch payload -> (
                (* decode on this connection thread — outside [emu],
                   since an exhausted pool blocks until the worker
                   recycles — so decode overlaps the worker's
                   detection of earlier batches *)
                match Session.decode_batch_frame entry.session payload with
                | Ok b -> Decoded_batch b
                | Error e -> Decode_failed e)
              | _ -> assert false
            in
            let disposition =
              Mutex.lock entry.emu;
              Queue.push item entry.inbox;
              let d = schedule t entry in
              Mutex.unlock entry.emu;
              d
            in
            (match disposition with
             | `Queued -> ()
             | `Inline -> drain_inbox entry);
            loop ()
          end)
      | Wire.Finish -> (
        match !current with
        | None ->
          respond
            (err_frame
               (Error.Invalid_input { what = "finish"; reason = "no open session" }));
          loop ()
        | Some entry ->
          let disposition =
            Mutex.lock entry.emu;
            Queue.push Finish_req entry.inbox;
            let d = schedule t entry in
            Mutex.unlock entry.emu;
            d
          in
          (match disposition with
           | `Queued -> ()
           | `Inline -> drain_inbox entry);
          loop ())
      | _ ->
        respond
          (err_frame
             (Error.Invalid_input
                { what = "frame"; reason = "response frame sent by client" }));
        loop ())
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* watchdog *)

let watchdog_sweep t =
  match t.cfg.session_deadline_s with
  | None -> 0
  | Some deadline_s ->
    let entries = locked t (fun () -> Hashtbl.fold (fun _ e l -> e :: l) t.sessions []) in
    List.fold_left
      (fun n e ->
        match Session.expire_if_over e.session ~deadline_s with
        | Some s ->
          e.respond (Wire.Summary (Engine.summary_to_json s));
          n + 1
        | None -> n)
      0 entries

let rec watchdog_loop t =
  Thread.delay 0.2;
  let stop = locked t (fun () -> t.stopped || t.draining) in
  if not stop then begin
    ignore (watchdog_sweep t);
    watchdog_loop t
  end

(* ------------------------------------------------------------------ *)
(* listener *)

let accept_loop t lfd =
  let stop () = locked t (fun () -> t.draining || t.stopped) in
  let rec loop () =
    if not (stop ()) then begin
      (match Unix.select [ lfd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
         match Unix.accept ~cloexec:true lfd with
         | fd, _ -> ignore (Thread.create (fun () -> handle_conn t fd) ())
         | exception
             Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
           -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close lfd with Unix.Unix_error _ -> ())

let start ?(cfg = default_config) ~socket () =
  Wire.ignore_sigpipe ();
  if Sys.file_exists socket then Unix.unlink socket;
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lfd (Unix.ADDR_UNIX socket);
     Unix.listen lfd 64
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      pool =
        Pool.create ~domains:cfg.domains
          ~on_crash:(fun wid exn ->
            cfg.log
              (Printf.sprintf "serve: worker %d crashed: %s (restarting)" wid
                 (Printexc.to_string exn)))
          ();
      mu = Mutex.create ();
      stopped_cond = Condition.create ();
      sessions = Hashtbl.create 64;
      next_id = 0;
      draining = false;
      stopped = false;
      shed = 0;
      opened_total = 0;
      accept_thread = None;
      watchdog_thread = None;
      socket_path = Some socket;
      t0_s = float_of_int (cfg.clock ()) *. 1e-9;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t lfd) ());
  if cfg.session_deadline_s <> None then
    t.watchdog_thread <- Some (Thread.create (fun () -> watchdog_loop t) ());
  t

(* ------------------------------------------------------------------ *)
(* drain / stop *)

(* Graceful drain: stop admitting, give in-flight sessions
   [drain_deadline_s] to finish on their own, then seal the stragglers
   as partial summaries (PR 2's partial contract) and push those to
   their clients before the pool shuts down. *)
let drain t =
  let already = locked t (fun () ->
      let d = t.draining in
      t.draining <- true;
      d)
  in
  if not already then begin
    let t0 = now_s t in
    let rec wait_inflight () =
      let live = locked t (fun () -> streaming_count t) in
      if live > 0 && now_s t -. t0 < t.cfg.drain_deadline_s then begin
        Thread.delay 0.05;
        wait_inflight ()
      end
    in
    wait_inflight ();
    let entries =
      locked t (fun () -> Hashtbl.fold (fun _ e l -> e :: l) t.sessions [])
    in
    List.iter
      (fun e ->
        match Session.state e.session with
        | `Streaming -> (
          let stop =
            Budget.Deadline
              {
                limit_s = t.cfg.drain_deadline_s;
                elapsed_s = Session.elapsed_s e.session;
              }
          in
          match Session.finalize_partial e.session ~stop with
          | Ok s -> e.respond (Wire.Summary (Engine.summary_to_json s))
          | Error err -> e.respond (err_frame err))
        | _ -> ())
      entries;
    Pool.shutdown t.pool;
    Option.iter Thread.join t.accept_thread;
    Option.iter Thread.join t.watchdog_thread;
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      t.socket_path;
    locked t (fun () ->
        t.stopped <- true;
        Condition.broadcast t.stopped_cond)
  end

let stop = drain

let wait t =
  Mutex.lock t.mu;
  while not t.stopped do
    Condition.wait t.stopped_cond t.mu
  done;
  Mutex.unlock t.mu

let stopped t = locked t (fun () -> t.stopped)
let draining t = locked t (fun () -> t.draining)
let shed_total t = locked t (fun () -> t.shed)

(* ------------------------------------------------------------------ *)
(* spool mode: every trace file in a directory becomes one session,
   fed in frame-sized chunks through the same session layer (so spool
   runs exercise the identical budget/poison semantics), processed in
   parallel on a pool, results in file-name order. *)

let chunks n l =
  let rec take k acc = function
    | [] -> (List.rev acc, [])
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | l ->
      let c, rest = take n [] l in
      loop (c :: acc) rest
  in
  loop [] l

let process_one_spool ~cfg ~id path =
  match
    (* spool directories may mix v1 and v2 traces *)
    if Dgrace_trace.Trace_reader.probe_version path >= 2 then
      Dgrace_trace.Trace_format_v2.read_file path
    else Dgrace_trace.Trace_reader.read_file path
  with
  | exception Error.E e -> Error e
  | exception exn ->
    Error (Error.Internal { where = "spool.read"; reason = Printexc.to_string exn })
  | events -> (
    let session =
      Session.open_ ~budget:cfg.spool_budget ~clock:cfg.clock
        ~vc_intern:cfg.spool_vc_intern ~id ~spec:cfg.spool_spec ()
    in
    let rec feed = function
      | [] -> Ok ()
      | c :: rest -> (
        match Session.feed_events session c with
        | Ok _ -> feed rest
        | Error e -> Error e)
    in
    match feed (chunks 4096 events) with
    | Ok () -> Session.finalize session
    | Error (Error.Budget_exhausted _) ->
      (* budget stop mid-stream: the sealed partial summary is the
         documented outcome, same as a one-shot budgeted run *)
      Session.finalize session
    | Error e -> Error e)

let process_spool ?(cfg = default_config) ~dir () =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trc")
    |> List.sort compare
  in
  let n = List.length files in
  let results = Array.make n None in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let finished = ref 0 in
  let pool = Pool.create ~domains:cfg.domains () in
  List.iteri
    (fun i f ->
      let ok =
        Pool.submit pool (fun () ->
            let r =
              try process_one_spool ~cfg ~id:i (Filename.concat dir f)
              with exn ->
                Error
                  (Error.Internal
                     { where = "spool"; reason = Printexc.to_string exn })
            in
            Mutex.lock mu;
            results.(i) <- Some r;
            incr finished;
            Condition.broadcast cond;
            Mutex.unlock mu)
      in
      if not ok then begin
        Mutex.lock mu;
        results.(i) <-
          Some
            (Error
               (Error.Internal { where = "spool"; reason = "pool rejected job" }));
        incr finished;
        Mutex.unlock mu
      end)
    files;
  Mutex.lock mu;
  while !finished < n do
    Condition.wait cond mu
  done;
  Mutex.unlock mu;
  Pool.shutdown pool;
  List.mapi
    (fun i f ->
      ( f,
        match results.(i) with
        | Some r -> r
        | None ->
          Error (Error.Internal { where = "spool"; reason = "lost result" }) ))
    files
