(** Length-prefixed framing for the serve wire protocol.

    One frame is [4-byte big-endian payload length | 1 type byte |
    payload].  Requests use upper-case type bytes, responses
    lower-case; payloads are minified JSON except {!Feed}/{!Race},
    which carry binary trace records / rendered report lines.  See
    [doc/serve.md] for the full protocol. *)

module Json = Dgrace_obs.Json

type frame =
  | Open of Json.t
      (** open a session: [{"spec": name, "vc_intern": bool,
          "max_events"/"deadline_s"/"max_shadow_bytes": budget}] *)
  | Feed of string  (** binary event records ({!Dgrace_trace.Trace_codec}) *)
  | Feed_batch of string
      (** one v2 block body ({!Dgrace_trace.Trace_format_v2.encode_body}):
          the batched feed path — the server decodes it straight into a
          struct-of-arrays {!Dgrace_events.Batch.t} and, when the
          session's detector has a batch fast path and the budget is
          unlimited, delivers it without materializing events *)
  | Finish  (** finalize the session and request its summary *)
  | Status  (** request the server status document *)
  | Opened of Json.t  (** [{"session": id}] *)
  | Ack of Json.t  (** per-FEED receipt: [{"events": n, "races": n}] *)
  | Race of string  (** one incremental race report line *)
  | Summary of Json.t  (** the finalized run envelope *)
  | Err of Json.t
      (** [{"code": exit-code, "error": {...}}] — the structured
          {!Dgrace_resilience.Error.t} with its documented code *)
  | Overloaded of Json.t  (** backpressure: [{"retry_after_s": s}] *)
  | Status_doc of Json.t

val is_request : frame -> bool

val default_max_frame_bytes : int
(** 16 MiB — the reader rejects longer frames as a protocol error. *)

val ignore_sigpipe : unit -> unit
(** Make a vanished peer an [EPIPE] on the write instead of a fatal
    SIGPIPE.  {!Server.start} and {!Client.connect} call it. *)

val type_byte : frame -> char
val encode : frame -> string

val write : Unix.file_descr -> frame -> unit
(** Render and write the whole frame as one byte run.  Callers
    serialise concurrent writers (one mutex per connection). *)

val read :
  ?max_frame_bytes:int ->
  Unix.file_descr ->
  (frame option, string) result
(** [Ok None] on clean end-of-stream, [Ok (Some f)] on a well-formed
    frame, [Error reason] on garbage, over-size lengths, or a peer
    that vanished mid-frame. *)
