open Dgrace_events
open Dgrace_detectors
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error
module Accounting = Dgrace_shadow.Accounting
module Trace_codec = Dgrace_trace.Trace_codec
module Trace_format_v2 = Dgrace_trace.Trace_format_v2
module Batch_ring = Dgrace_trace.Batch_ring
module Clock = Dgrace_obs.Clock

(* One trace session as a reusable incremental handle: a detector fed
   batch by batch, owning its own budget state, frame decoder and
   clock.  The design is crash-only: every failure — corrupt frame,
   budget exhaustion, an exception escaping the detector — becomes a
   terminal state stored on the session, and every later call answers
   from that state.  Nothing raises across the session boundary, so a
   poisoned session can never take the server (or a sibling session)
   down with it.

   Terminal states release the detector reference: the session keeps
   only the finished summary (or the error), and the detector's shadow
   pages and vc-intern arena become garbage immediately — the status
   endpoint's live-byte gauge drops to zero for the session the moment
   it dies, which is how the chaos tests verify nothing leaks. *)

type phase =
  | Streaming
  | Stopped of Budget.stop * Engine.summary
      (* budget stop: the partial summary is already sealed; further
         feeds answer the budget error, finalize returns the summary *)
  | Finalized of Engine.summary
  | Poisoned of Error.t

type t = {
  id : int;
  spec_name : string;
  budget : Budget.t;
  now_s : unit -> float;
  t0 : float;
  dec : Trace_codec.decoder;
  v2 : Trace_format_v2.stream_decoder;  (* B-frame (batch) decoder *)
  mutable v2_base : int;  (* bytes of v2 bodies consumed so far *)
  batch : Batch.t;  (* reused decode target for both batch paths *)
  dmu : Mutex.t;  (* serialises reader-side B-frame decodes *)
  dpool : Batch_ring.t;  (* bounded pool of reader-side decode targets *)
  mutable dec_failed : Error.t option;  (* sticky decode failure *)
  mu : Mutex.t;
  mutable detector : Detector.t option;  (* None once terminal *)
  mutable phase : phase;
  mutable degraded : bool;
  mutable events : int;
  mutable reported : int;  (* races already handed out via acks *)
}

type ack = { ack_events : int; new_races : Report.t list }

(* How far a reader-side decode may run ahead of the worker applying
   the batches: the pool is the session's pipeline depth, and blocking
   on an exhausted pool is the natural backpressure (the connection
   thread simply stops reading the socket). *)
let decode_pool_slots = 4

let open_ ?(budget = Budget.unlimited) ?(clock = Clock.ns) ?suppression
    ?vc_intern ?page_cluster ?tracer ~id ~spec () =
  let d = Spec.to_detector ?suppression ?vc_intern ?page_cluster ?tracer spec in
  let now_s () = float_of_int (clock ()) *. 1e-9 in
  {
    id;
    spec_name = Spec.name spec;
    budget;
    now_s;
    t0 = now_s ();
    dec = Trace_codec.decoder ();
    v2 = Trace_format_v2.stream_decoder ();
    v2_base = 0;
    batch = Batch.create ();
    dmu = Mutex.create ();
    dpool = Batch_ring.create ~slots:decode_pool_slots ();
    dec_failed = None;
    mu = Mutex.create ();
    detector = Some d;
    phase = Streaming;
    degraded = false;
    events = 0;
    reported = 0;
  }

(* Build a session around an externally constructed detector — the
   test hook that lets the suite inject a detector that raises and
   prove the crash-only contract contains it. *)
let of_detector ?(budget = Budget.unlimited) ?(clock = Clock.ns) ~id d =
  let now_s () = float_of_int (clock ()) *. 1e-9 in
  {
    id;
    spec_name = d.Detector.name;
    budget;
    now_s;
    t0 = now_s ();
    dec = Trace_codec.decoder ();
    v2 = Trace_format_v2.stream_decoder ();
    v2_base = 0;
    batch = Batch.create ();
    dmu = Mutex.create ();
    dpool = Batch_ring.create ~slots:decode_pool_slots ();
    dec_failed = None;
    mu = Mutex.create ();
    detector = Some d;
    phase = Streaming;
    degraded = false;
    events = 0;
    reported = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let id t = t.id
let detector_name t = t.spec_name
let events t = t.events
let degraded t = locked t (fun () -> t.degraded)
let elapsed_s t = t.now_s () -. t.t0

exception Stop_ of Budget.stop

(* Same degrade-don't-die semantics as the engine's budget guard,
   per delivered event; the deadline is polled every 256 events and
   reads the session's (mockable) clock. *)
let check_budget t (d : Detector.t) =
  (match t.budget.Budget.max_events with
   | Some limit when t.events >= limit ->
     raise (Stop_ (Budget.Max_events { limit }))
   | Some _ | None -> ());
  (match t.budget.Budget.max_shadow_bytes with
   | Some limit ->
     let over () = Accounting.current_bytes d.account > limit in
     let rec shed () =
       if over () then
         match d.degrade with
         | Some step when step () ->
           t.degraded <- true;
           shed ()
         | Some _ | None ->
           raise
             (Stop_
                (Budget.Shadow_bytes
                   { limit; bytes = Accounting.current_bytes d.account }))
     in
     shed ()
   | None -> ());
  match t.budget.Budget.deadline_s with
  | Some limit_s when t.events land 255 = 0 ->
    let elapsed_s = t.now_s () -. t.t0 in
    if elapsed_s > limit_s then
      raise (Stop_ (Budget.Deadline { limit_s; elapsed_s }))
  | Some _ | None -> ()

(* Terminal transitions.  [seal] finishes the detector and packages
   the summary exactly as a one-shot run would; [poison] abandons the
   detector without finishing it (its state is suspect).  Both drop
   the detector reference so its shadow memory is reclaimed. *)

let seal t (d : Detector.t) ~partial =
  d.Detector.finish ();
  let s =
    Engine.summarize_detector d
      ~elapsed:(t.now_s () -. t.t0)
      ~partial ~degraded:t.degraded
  in
  t.detector <- None;
  s

let poison_locked t e =
  t.detector <- None;
  t.phase <- Poisoned e;
  (* a reader thread blocked acquiring a decode batch must not wait on
     a worker that will never recycle one *)
  Batch_ring.abort t.dpool

(* The state every answer derives from once the session left
   [Streaming]. *)
let terminal_error = function
  | Streaming -> assert false
  | Stopped (stop, _) -> Budget.stop_to_error stop
  | Finalized _ ->
    Error.Invalid_input { what = "session"; reason = "already finalized" }
  | Poisoned e -> e

let take_new_races t (races : Report.t list) =
  let n = List.length races in
  let fresh =
    if n <= t.reported then []
    else List.filteri (fun i _ -> i >= t.reported) races
  in
  t.reported <- n;
  fresh

(* Run one delivery action (per-event loop, batch dispatch, or a
   decode-and-deliver closure) under the session's crash-only contract:
   success acks, a budget stop seals the partial summary, a decode
   error or detector exception poisons.  Called with [t.mu] held. *)
let deliver_locked t (d : Detector.t) run =
  match run () with
  | () ->
    Ok { ack_events = t.events; new_races = take_new_races t (Detector.races d) }
  | exception Stop_ stop ->
    (* seal the partial summary now; the feed itself answers the
       budget error so the client knows to stop sending *)
    (match seal t d ~partial:(Some stop) with
     | s -> t.phase <- Stopped (stop, s)
     | exception exn ->
       poison_locked t
         (Error.Internal
            { where = "session.finish"; reason = Printexc.to_string exn }));
    Error (terminal_error t.phase)
  | exception Error.E e ->
    poison_locked t e;
    Error e
  | exception exn ->
    poison_locked t
      (Error.Internal
         { where = "session.detector"; reason = Printexc.to_string exn });
    Error (terminal_error t.phase)

(* The batch fast path engages only when nothing observable depends on
   per-event granularity: an unlimited budget makes [check_budget] a
   no-op, so handing the detector a whole struct-of-arrays batch is
   race-identical to the event loop (the differential serve tests lock
   this in). *)
let batch_sink t (d : Detector.t) =
  if Budget.is_unlimited t.budget then d.Detector.process_batch else None

let deliver_batch t (d : Detector.t) (b : Batch.t) =
  match batch_sink t d with
  | Some pb ->
    pb b;
    t.events <- t.events + Batch.length b
  | None ->
    Batch.iter_events
      (fun ev ->
        d.Detector.on_event ev;
        t.events <- t.events + 1;
        check_budget t d)
      b

let feed_events t evs =
  locked t @@ fun () ->
  match t.phase with
  | Streaming ->
    let d = Option.get t.detector in
    deliver_locked t d (fun () ->
        List.iter
          (fun ev ->
            d.Detector.on_event ev;
            t.events <- t.events + 1;
            check_budget t d)
          evs)
  | ph -> Error (terminal_error ph)

let feed_frame t payload =
  locked t @@ fun () ->
  match t.phase with
  | Streaming -> (
    let d = Option.get t.detector in
    match batch_sink t d with
    | Some pb ->
      (* decode straight into the reused batch and deliver
         struct-of-arrays; a decode error surfaces as [Error.E] and
         poisons like the list path *)
      deliver_locked t d (fun () ->
          match
            Trace_codec.decode_frame_batch t.dec payload ~batch:t.batch
              (fun b ->
                pb b;
                t.events <- t.events + Batch.length b)
          with
          | Ok () -> ()
          | Error e -> raise (Error.E e))
    | None -> (
      match Trace_codec.decode_frame t.dec payload with
      | Ok evs ->
        deliver_locked t d (fun () ->
            List.iter
              (fun ev ->
                d.Detector.on_event ev;
                t.events <- t.events + 1;
                check_budget t d)
              evs)
      | Error e ->
        poison_locked t e;
        Error e))
  | ph -> Error (terminal_error ph)

(* Reader-side decode of one BATCH frame — the serve half of the
   replay pipeline (doc/trace.md): the connection systhread decodes
   the v2 body into a batch from the bounded pool while a worker
   domain applies previously decoded batches, so decode and detect
   overlap for streamed sessions exactly as they do for file replays.
   Decodes serialise in frame order under [t.dmu] (the interning v2
   decoder is sequential state); the pool bounds how far decode runs
   ahead, and {!apply_decoded} recycles.

   A decode error is {e not} applied here: ordering demands the
   session poison only after every earlier decoded batch was applied,
   so the caller enqueues the error and the worker answers it through
   {!poison_decoded} when it reaches that point in the stream.  The
   sticky [dec_failed] makes every later decode on the ruined decoder
   answer the same error. *)
let decode_batch_frame t payload =
  Mutex.lock t.dmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.dmu) @@ fun () ->
  match t.dec_failed with
  | Some e -> Error e
  | None -> (
    match locked t (fun () -> t.phase) with
    | (Stopped _ | Finalized _ | Poisoned _) as ph -> Error (terminal_error ph)
    | Streaming -> (
      match Batch_ring.acquire t.dpool with
      | None ->
        (* poisoned while we blocked for a batch *)
        Error
          (Error.Internal
             { where = "session.decode"; reason = "session aborted" })
      | Some b -> (
        match Trace_format_v2.decode_body t.v2 ~base:t.v2_base payload b with
        | Ok () ->
          t.v2_base <- t.v2_base + String.length payload;
          Ok b
        | Error e ->
          Batch_ring.restore t.dpool b;
          t.dec_failed <- Some e;
          Error e)))

(* Worker side of the split: apply one reader-decoded batch and return
   its buffer to the pool (also on failure — a terminal session must
   not strand the reader). *)
let apply_decoded t b =
  Fun.protect
    ~finally:(fun () -> Batch_ring.recycle t.dpool b)
    (fun () ->
      locked t @@ fun () ->
      match t.phase with
      | Streaming ->
        let d = Option.get t.detector in
        deliver_locked t d (fun () -> deliver_batch t d b)
      | ph -> Error (terminal_error ph))

(* Worker side of a reader decode failure, applied at its position in
   the stream: every batch decoded before it has been applied by now,
   so poisoning here matches where the inline path would have. *)
let poison_decoded t e =
  locked t @@ fun () ->
  match t.phase with
  | Streaming ->
    poison_locked t e;
    Error e
  | ph -> Error (terminal_error ph)

(* One BATCH frame, decoded and applied in one call — the spool/test
   path; the socket path splits it across reader and worker. *)
let feed_batch_frame t payload =
  match decode_batch_frame t payload with
  | Ok b -> apply_decoded t b
  | Error e -> poison_decoded t e

let feed_batch t b =
  locked t @@ fun () ->
  match t.phase with
  | Streaming ->
    let d = Option.get t.detector in
    deliver_locked t d (fun () -> deliver_batch t d b)
  | ph -> Error (terminal_error ph)

let races_so_far t =
  locked t @@ fun () ->
  match t.phase with
  | Streaming -> Detector.races (Option.get t.detector)
  | Stopped (_, s) | Finalized s -> s.Engine.races
  | Poisoned _ -> []

let finalize t =
  locked t @@ fun () ->
  match t.phase with
  | Streaming -> (
    let d = Option.get t.detector in
    match seal t d ~partial:None with
    | s ->
      t.phase <- Finalized s;
      Ok s
    | exception exn ->
      poison_locked t
        (Error.Internal
           { where = "session.finish"; reason = Printexc.to_string exn });
      Error (terminal_error t.phase))
  | Stopped (_, s) | Finalized s -> Ok s
  | Poisoned e -> Error e

(* Drain: seal whatever the session has as a partial summary, flagged
   with the given stop reason — PR 2's partial contract, applied to a
   session whose client never said Finish. *)
let finalize_partial t ~stop =
  locked t @@ fun () ->
  match t.phase with
  | Streaming -> (
    let d = Option.get t.detector in
    match seal t d ~partial:(Some stop) with
    | s ->
      t.phase <- Stopped (stop, s);
      Ok s
    | exception exn ->
      poison_locked t
        (Error.Internal
           { where = "session.finish"; reason = Printexc.to_string exn });
      Error (terminal_error t.phase))
  | Stopped (_, s) | Finalized s -> Ok s
  | Poisoned e -> Error e

let abort t e =
  locked t @@ fun () ->
  match t.phase with Streaming -> poison_locked t e | _ -> ()

(* Watchdog hook: expire the session if its deadline passed, reading
   the session clock.  Returns the partial summary when it fired. *)
let expire_if_over t ~deadline_s =
  let over =
    locked t @@ fun () ->
    t.phase = Streaming && t.now_s () -. t.t0 > deadline_s
  in
  if not over then None
  else
    let stop =
      Budget.Deadline { limit_s = deadline_s; elapsed_s = elapsed_s t }
    in
    match finalize_partial t ~stop with Ok s -> Some s | Error _ -> None

type state = [ `Streaming | `Stopped | `Finalized | `Poisoned of Error.t ]

let state t : state =
  locked t @@ fun () ->
  match t.phase with
  | Streaming -> `Streaming
  | Stopped _ -> `Stopped
  | Finalized _ -> `Finalized
  | Poisoned e -> `Poisoned e

let shadow_bytes t =
  locked t @@ fun () ->
  match t.detector with
  | Some d -> Accounting.current_bytes d.Detector.account
  | None -> 0

let summary t =
  locked t @@ fun () ->
  match t.phase with
  | Stopped (_, s) | Finalized s -> Some s
  | Streaming | Poisoned _ -> None
