(** A supervised pool of worker domains.

    Jobs are thunks run on a fixed set of OCaml 5 domains.  A job that
    raises is a {e worker crash}: the domain dies, the supervisor
    spawns a replacement after a capped exponential backoff
    ([backoff0_s * 2^n], clamped to [max_backoff_s]), and jobs still
    queued carry over.  The restart budget is global; once spent,
    crashed workers stay down — {!lost} counts them — so a crash loop
    degrades capacity rather than spinning.

    The serve layer keeps detector work here (domains run in parallel)
    and connection I/O on systhreads. *)

type t

val create :
  ?max_restarts:int ->
  ?backoff0_s:float ->
  ?max_backoff_s:float ->
  ?sleep:(float -> unit) ->
  ?on_crash:(int -> exn -> unit) ->
  domains:int ->
  unit ->
  t
(** Spawn [domains] workers.  [sleep] paces restart backoff
    (injectable for tests); [on_crash wid exn] observes each crash.
    @raise Invalid_argument when [domains < 1]. *)

val submit : t -> (unit -> unit) -> bool
(** Queue a job; [false] once {!shutdown} has begun. *)

val shutdown : t -> unit
(** Stop accepting, drain the queue, join every worker (including
    replacements).  Blocks until all domains exit. *)

(** {1 Introspection — feed the status document} *)

val queue_depth : t -> int
val restarts : t -> int

val lost : t -> int
(** Workers permanently down after the restart budget was spent. *)

val alive : t -> int
val size : t -> int
