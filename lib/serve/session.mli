(** A crash-isolated incremental detection session.

    A session wraps {!Dgrace_core.Spec.to_detector} as a reusable
    handle that accepts the trace batch by batch — the unit the serve
    layer multiplexes onto worker domains.  Each session owns its own
    {!Dgrace_resilience.Budget.t} state, frame decoder, and clock.

    The contract is {e crash-only}: no call ever raises.  Every
    failure — a corrupt frame, budget exhaustion, an exception
    escaping the detector — moves the session into a terminal state
    that answers all further calls:

    {v
    Streaming --feed/finalize ok--------------> Streaming | Finalized
    Streaming --budget stop / drain / expire--> Stopped   (partial summary)
    Streaming --corrupt frame / exception-----> Poisoned  (stored Error.t)
    v}

    [Stopped] and [Finalized] keep the sealed {!Dgrace_core.Engine.summary};
    [Poisoned] keeps the {!Dgrace_resilience.Error.t}.  All three drop
    the detector reference, so the session's shadow pages and arena
    become garbage immediately — {!shadow_bytes} reads 0 for any
    terminal session, which is how the chaos gate checks for leaks.

    Calls on one session serialise on an internal mutex; distinct
    sessions are fully independent and may run on distinct domains. *)

open Dgrace_events
module Engine = Dgrace_core.Engine
module Spec = Dgrace_core.Spec
module Budget = Dgrace_resilience.Budget
module Error = Dgrace_resilience.Error

type t

type ack = {
  ack_events : int;  (** total events accepted so far *)
  new_races : Report.t list;  (** races first observed in this batch *)
}

val open_ :
  ?budget:Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?tracer:Dgrace_obs.Span.buf ->
  id:int ->
  spec:Spec.t ->
  unit ->
  t
(** Fresh session around a fresh detector.  [clock] drives both the
    budget deadline and summary elapsed time — pass
    {!Dgrace_obs.Clock.ticker} in tests for deterministic expiry. *)

val of_detector :
  ?budget:Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  id:int ->
  Dgrace_detectors.Detector.t ->
  t
(** Wrap an externally built detector — the test hook for proving the
    crash-only contract contains a detector that raises. *)

(** {1 Feeding} *)

val feed_frame : t -> string -> (ack, Error.t) result
(** Decode one FEED payload ({!Dgrace_trace.Trace_codec}) and deliver
    its events.  A decode error poisons the session ([Corrupt_trace]
    at the absolute stream offset).  When the session's budget is
    unlimited and its detector has a batch fast path, records decode
    straight into a reused {!Dgrace_events.Batch.t} and are delivered
    struct-of-arrays — race-identical, no per-event allocation. *)

val feed_batch_frame : t -> string -> (ack, Error.t) result
(** Decode one BATCH payload — a v2 block body
    ({!Dgrace_trace.Trace_format_v2.encode_body}) — and deliver it.
    Locations intern across frames on a persistent v2 decoder; a
    decode error poisons with the offset absolute in the session's
    batch stream.  Delivery uses the detector's batch fast path under
    an unlimited budget and falls back to the per-event loop (with
    full budget semantics) otherwise. *)

val feed_batch : t -> Dgrace_events.Batch.t -> (ack, Error.t) result
(** Deliver an already-decoded batch (the spool/in-process path). *)

(** {2 Pipelined BATCH feeding}

    The split form of {!feed_batch_frame} the server uses to overlap
    decode and detect (doc/trace.md): the connection thread calls
    {!decode_batch_frame} — decoding the v2 body into a batch drawn
    from a bounded per-session pool while a worker domain is still
    applying earlier batches — and enqueues the result; the worker
    applies it with {!apply_decoded} (recycling the buffer) or, for a
    decode failure, poisons at the right stream position with
    {!poison_decoded}.  Decodes serialise in frame order; results are
    bit-identical to the inline path. *)

val decode_batch_frame : t -> string -> (Batch.t, Error.t) result
(** Decode one BATCH payload into a pooled batch.  Blocks while the
    pool is exhausted (the worker is [decode] batches behind — this is
    the socket-side backpressure) and fails without blocking once the
    session is terminal or a previous decode failed.  The returned
    batch {e must} be handed to {!apply_decoded}, in decode order. *)

val apply_decoded : t -> Batch.t -> (ack, Error.t) result
(** Deliver one batch returned by {!decode_batch_frame} and recycle
    its buffer into the pool (also on error). *)

val poison_decoded : t -> Error.t -> (ack, Error.t) result
(** Record a {!decode_batch_frame} failure at its position in the
    stream: poisons a streaming session with the given error (the
    terminal answer otherwise) — always an [Error]. *)

val feed_events : t -> Event.t list -> (ack, Error.t) result
(** Deliver already-decoded events.  Budget semantics match the
    engine: shadow pressure degrades first and only stops when the
    detector can shed nothing more; events/deadline stop at the limit.
    A budget stop seals the partial summary (fetch it with
    {!finalize}) and this call returns the [Budget_exhausted] error so
    the client stops sending. *)

(** {1 Results} *)

val races_so_far : t -> Report.t list
(** Races detected so far (detection order); the sealed summary's
    races once terminal, [[]] when poisoned. *)

val finalize : t -> (Engine.summary, Error.t) result
(** Flush the detector and seal the summary.  Idempotent: on a
    [Stopped] or [Finalized] session returns the stored summary
    (partial/degraded flagged per PR 2's contract); on a [Poisoned]
    session returns the stored error. *)

val finalize_partial :
  t -> stop:Budget.stop -> (Engine.summary, Error.t) result
(** Seal now with [partial = Some stop] — the drain path for sessions
    whose client never sent Finish. *)

val abort : t -> Error.t -> unit
(** Poison a streaming session (client vanished mid-stream, protocol
    violation).  No effect once terminal. *)

val expire_if_over : t -> deadline_s:float -> Engine.summary option
(** Watchdog hook: if the session is still streaming past [deadline_s]
    on its own clock, seal it as partial ([Deadline]) and return the
    summary; [None] otherwise. *)

(** {1 Introspection} *)

type state = [ `Streaming | `Stopped | `Finalized | `Poisoned of Error.t ]

val state : t -> state
val id : t -> int
val detector_name : t -> string
val events : t -> int
val degraded : t -> bool
val elapsed_s : t -> float

val shadow_bytes : t -> int
(** Live shadow bytes — 0 once terminal (the detector is released). *)

val summary : t -> Engine.summary option
(** The sealed summary, once [Stopped] or [Finalized]. *)
