(** The on-disk trace encoding shared by the writer and reader.

    A trace file is the magic string ["DGRT"], a version byte, then a
    sequence of events.  Every event is one tag byte followed by its
    fields as unsigned LEB128 varints.  Source-location labels are
    interned: the first occurrence of a label carries its bytes; later
    occurrences are just the table index.  This keeps multi-million
    event traces compact (typically 3–6 bytes per access). *)

val magic : string
val version : int

val header_len : int
(** Bytes of [magic] plus the version byte. *)

(** {1 Field bounds}

    Limits a well-formed trace obeys; the reader rejects records
    outside them as corrupt, so garbage varints can never drive a
    detector into pathological allocation. *)

val max_tid : int
val max_access_size : int
val max_loc_len : int

(** Event tag bytes. *)

val tag_read : int
val tag_write : int
val tag_acquire : int
val tag_release : int
val tag_fork : int
val tag_join : int
val tag_alloc : int
val tag_free : int
val tag_exit : int

val max_tag : int
(** Largest valid tag byte. *)

val write_varint : Buffer.t -> int -> unit
(** Unsigned LEB128.  @raise Invalid_argument on negative input. *)

val read_varint : in_channel -> int
(** @raise End_of_file at end of stream.
    @raise Corrupt on an over-long or overflowing encoding. *)

exception Corrupt of string
(** Raised by the low-level decoding primitives on malformed input.
    {!Trace_reader} converts these to
    [Dgrace_resilience.Error.Corrupt_trace] values carrying the byte
    offset and file context; user code should match on those. *)
