(** A bounded ring of recycled {!Dgrace_events.Batch.t} buffers between
    one producer (a decoder domain) and one consumer (the detector).

    The ring owns its batches.  Producer protocol: {!acquire} an empty
    batch (blocks while all slots are in flight — that wait is decode
    stall), fill it, {!publish} it; on end of stream {!close}, passing
    the terminating exception if the stream ended in one.  Consumer
    protocol: {!take} a batch (blocks while none is ready — detect
    stall), apply it, {!recycle} it.  [take] returns [None] only after
    a clean close {e and} a drained ring, and raises the close error
    only after the ring drains — so a mid-file [Corrupt_trace] reaches
    the consumer after exactly the batches the sequential reader would
    have delivered.  {!abort} (consumer side) releases a blocked
    producer, whose next [acquire] returns [None].

    Batches taken from the ring obey the recycling contract in
    [batch.mli]: a batch is invalid after it is recycled. *)

open Dgrace_events

type t

val create :
  ?slots:int -> ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** [slots] (default 4, min 2) bounds how many batches exist — the
    decoder can run at most [slots - 1] blocks ahead.  [clock] is a
    monotonic nanosecond source for stall accounting; defaults to a
    null clock (stalls read 0). *)

val acquire : t -> Batch.t option
(** Producer: a cleared batch to fill, or [None] after {!abort}. *)

val publish : t -> Batch.t -> unit
(** Producer: hand a filled batch to the consumer. *)

val restore : t -> Batch.t -> unit
(** Producer: return an acquired batch unfilled (clean EOF). *)

val close : ?error:exn -> t -> unit
(** Producer: no more batches.  [error] is re-raised by {!take} once
    the ring drains.  Idempotent (the first close wins). *)

val take : t -> Batch.t option
(** Consumer: next filled batch; [None] after a clean close drains.
    Re-raises the close error once every earlier batch was taken. *)

val recycle : t -> Batch.t -> unit
(** Consumer: done with a taken batch; it may be reused immediately. *)

val abort : t -> unit
(** Consumer: stop the producer (its [acquire] returns [None]). *)

val decode_stall_ns : t -> int
(** Total time the producer spent blocked waiting for a free slot. *)

val detect_stall_ns : t -> int
(** Total time the consumer spent blocked waiting for a filled slot. *)

val blocks : t -> int
(** Batches published so far. *)
