(** Trace format v2: length-prefixed blocks of run-length/delta
    compressed event columns, decoded straight into {!Batch.t}
    struct-of-arrays buffers.

    Layout (see doc/trace.md for the worked example):
    {v
    header := "DGRT" 0x02
    block  := varint body_len, body
    body   := varint n, kinds RLE, tid RLE, addr zigzag-deltas,
              size RLE, access locations (interned across blocks)
    v}

    Any malformed or truncated byte yields a structured
    {!Dgrace_resilience.Error.Corrupt_trace} with an absolute stream
    offset — never a bare exception. *)

open Dgrace_events
module Error := Dgrace_resilience.Error

val version : int

(** Events per block: {!Batch.default_capacity} (4096). *)
val block_events : int

(** Upper bound accepted for a block body (16 MiB). *)
val max_body_len : int

(** {1 Encoding} *)

(** Persistent per-stream encoder state (the location intern table
    spans blocks). *)
type block_encoder

val block_encoder : unit -> block_encoder

(** Encode one non-empty batch (≤ {!block_events} rows) as a block
    body without the length prefix — the serve batch-frame payload is
    exactly one body. *)
val encode_body : block_encoder -> Batch.t -> string

(** {1 Writer} — the {!Trace_writer} surface over block buffering. *)

type writer

val create : out_channel -> writer
val write : writer -> Event.t -> unit
val sink : writer -> Event.t -> unit
val events_written : writer -> int

(** Flushes the final partial block and closes the channel. *)
val close : writer -> unit

val to_file : string -> ((Event.t -> unit) -> 'a) -> 'a * int

(** {1 Decoding} *)

(** Persistent per-stream decoder state: the location table and the
    running event count (which numbers batch rows). *)
type stream_decoder

val stream_decoder : ?path:string -> unit -> stream_decoder

(** [decode_body dec ~base body batch] decodes one block body into
    [batch] (cleared first).  [base] is the body's absolute offset in
    the overall stream; error offsets are [base]-relative absolute.
    Rows are numbered [off.(i) = events so far + i]. *)
val decode_body :
  stream_decoder -> base:int -> string -> Batch.t -> (unit, Error.t) result

(** {1 File reading} *)

(** Raises [Error.E (Corrupt_trace _)] unless the channel starts with
    a v2 header. *)
val check_header : ?path:string -> in_channel -> unit

(** [read_block dec ic batch] reads the next block into [batch];
    [false] on clean EOF at a block boundary.  Raises [Error.E] on
    corruption. *)
val read_block : stream_decoder -> in_channel -> Batch.t -> bool

(** Fold over blocks decoded into one reused batch — the batched
    replay hot path.  The batch is overwritten between calls. *)
val fold_batches : string -> ('a -> Batch.t -> 'a) -> 'a -> 'a

(** Event-at-a-time surface for generic consumers; materializes each
    block once. *)
val read : ?path:string -> in_channel -> Event.t Seq.t

val fold_file : string -> ('a -> Event.t -> 'a) -> 'a -> 'a
val read_file : string -> Event.t list
