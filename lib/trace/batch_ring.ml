open Dgrace_events

(* A bounded ring of recycled [Batch.t] buffers between one producer
   (the decoder domain) and one consumer (the detector).  The ring owns
   its batches: the producer [acquire]s an empty one, fills it and
   [publish]es; the consumer [take]s it, applies it and [recycle]s it
   back.  With [slots] buffers the decoder runs at most [slots - 1]
   blocks ahead of the detector — double/triple buffering with explicit
   backpressure, and a bounded memory footprint no matter how far the
   decode outpaces the detect.

   Termination is ordered so errors surface exactly where the
   sequential path surfaces them: [close ?error] marks the stream done
   but the consumer keeps draining every batch published {e before} the
   close; only when the ring is empty does [take] raise the stored
   error (or return [None] on a clean end).  A [Corrupt_trace] mid-file
   therefore interrupts the replay after precisely the same rows as
   [fold_batches] would have delivered.  The consumer side can [abort]
   to make a blocked or future [acquire] return [None], which is how a
   consumer exception (a budget stop unrolling through the per-event
   sink, say) shuts the decoder down without deadlock.

   Stall accounting: time the producer spends blocked in [acquire] is
   decode stall (the detector is the bottleneck), time the consumer
   spends blocked in [take] is detect stall (the decoder is).  The
   clock is injected — this library doesn't link unix — and defaults to
   a null clock, so embedders that don't care pay nothing. *)

type t = {
  mu : Mutex.t;
  nonfull : Condition.t;  (* signalled when a free slot appears *)
  nonempty : Condition.t;  (* signalled when a filled slot (or close) appears *)
  free : Batch.t Queue.t;
  filled : Batch.t Queue.t;
  mutable closed : bool;  (* producer finished (cleanly or not) *)
  mutable error : exn option;  (* raised by [take] once [filled] drains *)
  mutable aborted : bool;  (* consumer gone; producer must stop *)
  clock : unit -> int;
  mutable decode_stall_ns : int;
  mutable detect_stall_ns : int;
  mutable blocks : int;  (* batches published *)
}

let create ?(slots = 4) ?(capacity = Batch.default_capacity)
    ?(clock = fun () -> 0) () =
  if slots < 2 then invalid_arg "Batch_ring.create: need at least 2 slots";
  let free = Queue.create () in
  for _ = 1 to slots do
    Queue.push (Batch.create ~capacity ()) free
  done;
  {
    mu = Mutex.create ();
    nonfull = Condition.create ();
    nonempty = Condition.create ();
    free;
    filled = Queue.create ();
    closed = false;
    error = None;
    aborted = false;
    clock;
    decode_stall_ns = 0;
    detect_stall_ns = 0;
    blocks = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* producer side *)

let acquire t =
  locked t @@ fun () ->
  if t.aborted then None
  else if Queue.is_empty t.free then begin
    let t0 = t.clock () in
    while Queue.is_empty t.free && not t.aborted do
      Condition.wait t.nonfull t.mu
    done;
    t.decode_stall_ns <- t.decode_stall_ns + (t.clock () - t0);
    if t.aborted then None
    else begin
      let b = Queue.pop t.free in
      Batch.clear b;
      Some b
    end
  end
  else begin
    let b = Queue.pop t.free in
    Batch.clear b;
    Some b
  end

let publish t b =
  locked t @@ fun () ->
  if not t.aborted then begin
    Queue.push b t.filled;
    t.blocks <- t.blocks + 1;
    Condition.signal t.nonempty
  end

(* Return an acquired-but-unfilled batch (clean EOF found nothing to
   decode into it). *)
let restore t b =
  locked t @@ fun () ->
  Queue.push b t.free;
  Condition.signal t.nonfull

let close ?error t =
  locked t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    t.error <- error
  end;
  Condition.broadcast t.nonempty

(* consumer side *)

let take t =
  locked t @@ fun () ->
  if Queue.is_empty t.filled && not t.closed then begin
    let t0 = t.clock () in
    while Queue.is_empty t.filled && not t.closed do
      Condition.wait t.nonempty t.mu
    done;
    t.detect_stall_ns <- t.detect_stall_ns + (t.clock () - t0)
  end;
  if not (Queue.is_empty t.filled) then Some (Queue.pop t.filled)
  else
    match t.error with
    | Some exn -> raise exn
    | None -> None

let recycle t b =
  locked t @@ fun () ->
  Queue.push b t.free;
  Condition.signal t.nonfull

let abort t =
  locked t @@ fun () ->
  t.aborted <- true;
  Condition.broadcast t.nonfull;
  Condition.broadcast t.nonempty

(* stats *)

let decode_stall_ns t = locked t (fun () -> t.decode_stall_ns)
let detect_stall_ns t = locked t (fun () -> t.detect_stall_ns)
let blocks t = locked t (fun () -> t.blocks)
