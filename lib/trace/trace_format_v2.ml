open Dgrace_events
open Trace_format
module Error = Dgrace_resilience.Error

(* Trace format v2: the batched binary encoding.

   Same "DGRT" magic as v1 with version byte 2, then a sequence of
   length-prefixed blocks:

     block := varint body_len, body_len bytes of body
     body  := varint n                       (1 <= n <= block_events)
              kinds   — RLE (tag byte, varint run)
              a col   — RLE (varint value, varint run)   tids/parents
              b col   — zigzag-delta varints, one/row    addrs/locks/children
              c col   — RLE (varint value, varint run)   sizes/sync codes
              locs    — per access row: varint id,
                        fresh ids followed by varint len + bytes

   Columns use the Batch.t layout (kind codes = v1 tags).  The
   location intern table persists across blocks, exactly like the v1
   per-record interning, so a stream decoder must survive for a whole
   stream.  Every decode failure is a structured [Error.Corrupt_trace]
   with an absolute stream offset — truncating a v2 file at any byte
   yields a clean error, never an exception, and resync is rejected
   (blocks are self-delimiting; a corrupt block's extent is unknown).

   See doc/trace.md for the worked layout. *)

let version = 2
let block_events = Batch.default_capacity

(* A corrupt varint could name a multi-gigabyte body; cap well above
   any real block (4096 events * worst-case record size). *)
let max_body_len = 1 lsl 24

let zigzag d = if d >= 0 then d lsl 1 else (((-d) lsl 1) - 1)
let unzigzag z = if z land 1 = 0 then z lsr 1 else -((z + 1) lsr 1)

(* ------------------------------------------------------------------ *)
(* encoding *)

type block_encoder = {
  e_locs : (string, int) Hashtbl.t;
  mutable e_next_loc : int;
}

let block_encoder () = { e_locs = Hashtbl.create 64; e_next_loc = 0 }

(* Encode one batch as a block body (no length prefix): the serve 'B'
   frame payload is exactly one body. *)
let encode_body enc (b : Batch.t) =
  let n = Batch.length b in
  if n < 1 || n > block_events then
    invalid_arg "Trace_format_v2.encode_body: 1 <= batch length <= 4096 required";
  let buf = Buffer.create (n * 4) in
  write_varint buf n;
  let rle get put =
    let i = ref 0 in
    while !i < n do
      let v = get !i in
      let j = ref (!i + 1) in
      while !j < n && get !j = v do
        incr j
      done;
      put v (!j - !i);
      i := !j
    done
  in
  rle
    (fun i -> b.Batch.kind.(i))
    (fun v run ->
      Buffer.add_char buf (Char.chr v);
      write_varint buf run);
  rle
    (fun i -> b.Batch.a.(i))
    (fun v run ->
      write_varint buf v;
      write_varint buf run);
  let prev = ref 0 in
  for i = 0 to n - 1 do
    let v = b.Batch.b.(i) in
    write_varint buf (zigzag (v - !prev));
    prev := v
  done;
  rle
    (fun i -> b.Batch.c.(i))
    (fun v run ->
      write_varint buf v;
      write_varint buf run);
  for i = 0 to n - 1 do
    if b.Batch.kind.(i) <= tag_write then begin
      let loc = b.Batch.loc.(i) in
      match Hashtbl.find_opt enc.e_locs loc with
      | Some id -> write_varint buf id
      | None ->
        let id = enc.e_next_loc in
        enc.e_next_loc <- id + 1;
        Hashtbl.replace enc.e_locs loc id;
        write_varint buf id;
        write_varint buf (String.length loc);
        Buffer.add_string buf loc
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* writer: the v1 Trace_writer surface over block buffering *)

type writer = {
  oc : out_channel;
  enc : block_encoder;
  pending : Batch.t;
  mutable count : int;
}

let create oc =
  output_string oc magic;
  output_byte oc version;
  { oc; enc = block_encoder (); pending = Batch.create (); count = 0 }

let flush_block w =
  if Batch.length w.pending > 0 then begin
    let body = encode_body w.enc w.pending in
    let hdr = Buffer.create 4 in
    write_varint hdr (String.length body);
    Buffer.output_buffer w.oc hdr;
    output_string w.oc body;
    Batch.clear w.pending
  end

let write w ev =
  Batch.push w.pending ev;
  w.count <- w.count + 1;
  if Batch.is_full w.pending then flush_block w

let sink w ev = write w ev
let events_written w = w.count

let close w =
  flush_block w;
  close_out w.oc

let to_file path f =
  let oc = open_out_bin path in
  let w = create oc in
  match f (sink w) with
  | v ->
    let n = w.count in
    close w;
    (v, n)
  | exception e ->
    close w;
    raise e

(* ------------------------------------------------------------------ *)
(* decoding *)

type stream_decoder = {
  path : string option;
  d_locs : (int, string) Hashtbl.t;
  mutable d_next_loc : int;
  mutable events_read : int;
}

let stream_decoder ?path () =
  { path; d_locs = Hashtbl.create 64; d_next_loc = 0; events_read = 0 }

(* In-body cursor; [Corrupt] carries the reason, the caller maps it to
   an [Error.Corrupt_trace] at the cursor's absolute offset. *)
type cursor = { s : string; mutable pos : int }

let cur_byte cur =
  if cur.pos >= String.length cur.s then raise (Corrupt "truncated block");
  let b = Char.code (String.unsafe_get cur.s cur.pos) in
  cur.pos <- cur.pos + 1;
  b

let cur_varint cur =
  let rec loop acc shift =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = cur_byte cur in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop acc (shift + 7)
  in
  let n = loop 0 0 in
  if n < 0 then raise (Corrupt "varint overflow") else n

let cur_take cur len =
  if cur.pos + len > String.length cur.s then raise (Corrupt "truncated block");
  let s = String.sub cur.s cur.pos len in
  cur.pos <- cur.pos + len;
  s

(* Decode one block body into [batch] (cleared first).  [base] is the
   body's absolute offset in the stream, used for error offsets.  Rows
   get [off = events_read + i]: a monotone stream position, the same
   order key the shard splitter uses, so races merge identically. *)
let decode_body_exn dec ~base body (batch : Batch.t) =
  let cur = { s = body; pos = 0 } in
  let corrupt reason =
    raise
      (Error.E
         (Error.Corrupt_trace
            {
              path = dec.path;
              offset = base + cur.pos;
              events_read = dec.events_read;
              reason;
            }))
  in
  try
    let n = cur_varint cur in
    if n < 1 || n > block_events then
      raise (Corrupt (Printf.sprintf "block event count %d out of range" n));
    if n > Batch.capacity batch then
      invalid_arg "Trace_format_v2.decode_body: batch capacity too small";
    Batch.clear batch;
    let kind = batch.Batch.kind
    and a = batch.Batch.a
    and b = batch.Batch.b
    and c = batch.Batch.c
    and loc = batch.Batch.loc
    and off = batch.Batch.off in
    (* kinds *)
    let i = ref 0 in
    while !i < n do
      let tag = cur_byte cur in
      if tag > max_tag then
        raise (Corrupt (Printf.sprintf "unknown tag %d" tag));
      let run = cur_varint cur in
      if run < 1 || !i + run > n then raise (Corrupt "kind run out of range");
      Array.fill kind !i run tag;
      i := !i + run
    done;
    (* a column (tids/parents) *)
    let i = ref 0 in
    while !i < n do
      let v = cur_varint cur in
      if v > max_tid then
        raise (Corrupt (Printf.sprintf "tid %d out of range" v));
      let run = cur_varint cur in
      if run < 1 || !i + run > n then raise (Corrupt "tid run out of range");
      Array.fill a !i run v;
      i := !i + run
    done;
    (* b column (addrs/locks/children), zigzag deltas *)
    let prev = ref 0 in
    for i = 0 to n - 1 do
      let v = !prev + unzigzag (cur_varint cur) in
      if v < 0 then raise (Corrupt "negative address");
      if (kind.(i) = tag_fork || kind.(i) = tag_join) && v > max_tid then
        raise (Corrupt (Printf.sprintf "tid %d out of range" v));
      b.(i) <- v;
      prev := v
    done;
    (* c column (sizes/sync codes) *)
    let i = ref 0 in
    while !i < n do
      let v = cur_varint cur in
      let run = cur_varint cur in
      if run < 1 || !i + run > n then raise (Corrupt "size run out of range");
      for j = !i to !i + run - 1 do
        let k = kind.(j) in
        if k = tag_acquire || k = tag_release then begin
          if v > 3 then raise (Corrupt (Printf.sprintf "bad sync kind %d" v))
        end
        else if v > max_access_size then
          raise (Corrupt (Printf.sprintf "size %d out of range" v));
        c.(j) <- v
      done;
      i := !i + run
    done;
    (* locations, access rows only *)
    for i = 0 to n - 1 do
      if kind.(i) <= tag_write then begin
        let id = cur_varint cur in
        if id < dec.d_next_loc then loc.(i) <- Hashtbl.find dec.d_locs id
        else if id = dec.d_next_loc then begin
          let len = cur_varint cur in
          if len > max_loc_len then
            raise (Corrupt (Printf.sprintf "location length %d out of range" len));
          let s = cur_take cur len in
          Hashtbl.replace dec.d_locs id s;
          dec.d_next_loc <- id + 1;
          loc.(i) <- s
        end
        else raise (Corrupt (Printf.sprintf "location id %d from the future" id))
      end
      else loc.(i) <- ""
    done;
    if cur.pos <> String.length body then
      raise (Corrupt "trailing bytes in block");
    for i = 0 to n - 1 do
      off.(i) <- dec.events_read + i
    done;
    batch.Batch.len <- n;
    dec.events_read <- dec.events_read + n
  with Corrupt reason -> corrupt reason

let decode_body dec ~base body batch =
  match decode_body_exn dec ~base body batch with
  | () -> Ok ()
  | exception Error.E e -> Error e

(* ------------------------------------------------------------------ *)
(* file reading *)

let check_header ?path ic =
  let fail ~offset reason =
    raise
      (Error.E (Error.Corrupt_trace { path; offset; events_read = 0; reason }))
  in
  (match really_input_string ic (String.length magic) with
   | exception End_of_file -> fail ~offset:0 "bad magic (shorter than header)"
   | m -> if m <> magic then fail ~offset:0 "bad magic");
  match input_byte ic with
  | exception End_of_file ->
    fail ~offset:(String.length magic) "missing version byte"
  | v ->
    if v <> version then
      fail ~offset:(String.length magic)
        (Printf.sprintf "unsupported version %d" v)

(* Read one block into [batch]; false on clean EOF at a block
   boundary.  Truncation anywhere inside the length prefix or body is
   a corrupt-trace error at the block's start offset. *)
let read_block dec ic batch =
  let start = pos_in ic in
  let corrupt reason =
    raise
      (Error.E
         (Error.Corrupt_trace
            {
              path = dec.path;
              offset = start;
              events_read = dec.events_read;
              reason;
            }))
  in
  match input_byte ic with
  | exception End_of_file -> false
  | b0 ->
    let body_len =
      let rec loop acc shift b =
        if shift > 62 then corrupt "varint too long"
        else
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b land 0x80 = 0 then acc
          else
            match input_byte ic with
            | exception End_of_file -> corrupt "truncated block header"
            | b -> loop acc (shift + 7) b
      in
      let n = loop 0 0 b0 in
      if n < 0 then corrupt "varint overflow" else n
    in
    if body_len < 1 || body_len > max_body_len then
      corrupt (Printf.sprintf "block length %d out of range" body_len);
    let base = pos_in ic in
    let body =
      match really_input_string ic body_len with
      | exception End_of_file -> corrupt "truncated block"
      | s -> s
    in
    decode_body_exn dec ~base body batch;
    true

(* Fold over blocks decoded into a single reused batch: the batched
   replay hot path.  The batch passed to [f] is overwritten by the
   next block — consume it before returning. *)
let fold_batches path f init =
  let ic = open_in_bin path in
  let run () =
    check_header ~path ic;
    let dec = stream_decoder ~path () in
    let batch = Batch.create () in
    let rec loop acc =
      if read_block dec ic batch then loop (f acc batch) else acc
    in
    loop init
  in
  match run () with
  | acc ->
    close_in ic;
    acc
  | exception e ->
    close_in ic;
    raise e

(* Event-at-a-time surface for generic consumers (dump, convert,
   per-event differential replays).  Each block is materialized once;
   not the hot path. *)
let read ?path ic =
  check_header ?path ic;
  let dec = stream_decoder ?path () in
  let batch = Batch.create () in
  let rec block () =
    if read_block dec ic batch then begin
      let evs = Array.init (Batch.length batch) (Batch.event batch) in
      within evs 0
    end
    else Seq.Nil
  and within evs i =
    if i < Array.length evs then
      Seq.Cons (evs.(i), fun () -> within evs (i + 1))
    else block ()
  in
  fun () -> block ()

let fold_file path f init =
  let ic = open_in_bin path in
  match Seq.fold_left f init (read ~path ic) with
  | acc ->
    close_in ic;
    acc
  | exception e ->
    close_in ic;
    raise e

let read_file path = List.rev (fold_file path (fun acc ev -> ev :: acc) [])
