(** Replays event streams recorded by {!Trace_writer}.

    All failure is structured: malformed input raises
    [Dgrace_resilience.Error.E (Corrupt_trace ...)] carrying the file
    path, the byte offset of the offending record, the number of
    events decoded before it, and a reason — never a bare
    [End_of_file] or [Trace_format.Corrupt].  Field values are bounds-checked
    (see {!Trace_format.max_tid} and friends) so a corrupt varint
    cannot drive downstream detectors into pathological allocation.

    Two reading modes:
    - {b strict} ({!read}, {!fold_file}, {!read_file}): the first bad
      record aborts with the structured error;
    - {b resync} ({!fold_file_resync}, {!read_file_resync}): a bad
      record is skipped by scanning forward to the next offset where a
      whole record decodes, and the {!recovery} report says exactly
      what was dropped. *)

open Dgrace_events

val probe_version : string -> int
(** Read just the header and report the container version byte, so
    callers can pick the v1 ({!Trace_reader}) or v2
    ({!Trace_format_v2}) decode path.
    @raise Dgrace_resilience.Error.E on a bad magic or missing
    version. *)

val read : ?path:string -> in_channel -> Event.t Seq.t
(** Lazy sequence of events; consumes the channel as it is forced.
    [path] is carried into error values for context.
    @raise Dgrace_resilience.Error.E on a bad header or malformed
    event. *)

val fold_file : string -> ('a -> Event.t -> 'a) -> 'a -> 'a
(** [fold_file path f init] opens, folds over every event, and closes
    the file (also on exceptions). *)

val read_file : string -> Event.t list
(** Whole trace in memory — convenient for tests on small traces. *)

(** {1 Resync mode} *)

type recovery = {
  events : int;  (** events successfully decoded *)
  dropped_bytes : int;  (** bytes skipped while resynchronising *)
  gaps : int;  (** distinct skip episodes *)
  errors : Dgrace_resilience.Error.t list;
      (** the corruption hit at each gap, in file order *)
}

val clean : recovery
(** The no-corruption report ([gaps = 0]). *)

val fold_file_resync : string -> ('a -> Event.t -> 'a) -> 'a -> 'a * recovery
(** Like {!fold_file} but never raises on corrupt input: decodable
    events around each corrupt region are still delivered, and the
    report accounts for every byte skipped.  A trace with a bad header
    yields no events and one gap spanning the whole file. *)

val read_file_resync : string -> Event.t list * recovery
