(** Two-stage v2 replay: a decoder domain streams blocks into a
    bounded {!Batch_ring} while the calling domain consumes them.

    [feed path consume] spawns the decoder, applies [consume] to every
    batch in file order (same row numbering and decoder state as
    {!Trace_format_v2.fold_batches} — the batch is invalid once
    [consume] returns, per the recycling contract in [batch.mli]), and
    returns pipeline statistics.  A decoder error ([Corrupt_trace])
    is re-raised here only after all earlier batches were consumed, so
    it surfaces with the same absolute offset and after the same
    prefix as the sequential path.  If [consume] raises, the decoder
    is aborted and joined before the exception escapes.

    [slots] sizes the ring (decoder runs ≤ [slots - 1] blocks ahead);
    [clock] is a nanosecond source for stall accounting; [span] wraps
    each block decode as ["pipeline.decode"] and each ring acquire as
    ["pipeline.decode_stall"] on the decoder's lane, and
    [consumer_span] wraps each ring take as ["pipeline.detect_stall"]
    on the consumer's (the engine passes tracing-lane closures so
    [racedet timings] shows the decode-vs-detect split and the stall
    totals). *)

open Dgrace_events

type stats = {
  blocks : int;  (** batches delivered by the decoder *)
  decode_stall_ns : int;  (** decoder blocked on a full ring *)
  detect_stall_ns : int;  (** consumer blocked on an empty ring *)
  decode_ns : int;  (** decoder domain wall time, stalls included *)
}

val default_slots : int
(** Ring slots used when [slots] is omitted (4: triple buffering plus
    one in flight on each side). *)

val feed :
  ?slots:int ->
  ?clock:(unit -> int) ->
  ?span:(string -> (unit -> unit) -> unit) ->
  ?consumer_span:(string -> (unit -> unit) -> unit) ->
  string ->
  (Batch.t -> unit) ->
  stats
