(* The two-stage replay pipeline: a dedicated decoder domain pulls v2
   blocks off a file into a {!Batch_ring} while the calling domain
   drains the ring — decode and detect overlap instead of strictly
   alternating as [Trace_format_v2.fold_batches] does.

   Semantics are anchored to the sequential path:

   - batches arrive in file order, with the same row numbering
     ([off.(i)] = global stream position) — the decoder state is the
     same [stream_decoder];
   - a [Corrupt_trace] raised by the decoder is re-raised to the
     consumer only after every batch decoded before it was consumed,
     so the error carries the same absolute offset and the detector
     saw the same prefix as a sequential replay (the truncation law in
     test/test_pipeline.ml pins this at every cut offset);
   - a consumer exception (e.g. a budget stop unrolling out of the
     engine's per-event fallback) aborts the ring, joins the decoder
     and re-raises — the decoder never outlives the call.

   The optional [span] hook wraps each block decode so the decoder
   domain lands its time on a tracing lane (the engine passes a
   ["decoder"] lane; [racedet timings] then shows the decode-vs-detect
   split).  [clock] feeds the ring's stall accounting. *)

type stats = {
  blocks : int;  (* batches published by the decoder *)
  decode_stall_ns : int;  (* decoder blocked on a full ring *)
  detect_stall_ns : int;  (* consumer blocked on an empty ring *)
  decode_ns : int;  (* decoder domain wall time, stalls included *)
}

let default_slots = 4

let feed ?(slots = default_slots) ?(clock = fun () -> 0) ?span ?consumer_span
    path consume =
  let ring = Batch_ring.create ~slots ~clock () in
  let decode_ns = ref 0 in
  let wrap = function
    | None -> fun _name f -> f ()
    | Some span -> span
  in
  let pspan = wrap span and cspan = wrap consumer_span in
  let decode_block dec ic b =
    let more = ref false in
    pspan "pipeline.decode" (fun () ->
        more := Trace_format_v2.read_block dec ic b);
    !more
  in
  let producer () =
    let t0 = clock () in
    (try
       In_channel.with_open_bin path (fun ic ->
           Trace_format_v2.check_header ~path ic;
           let dec = Trace_format_v2.stream_decoder ~path () in
           let rec loop () =
             (* the acquire is where ring backpressure blocks the
                decoder, so its span total is the decode-stall time
                (plus a cheap lock hit per non-blocked pass) *)
             let slot = ref None in
             pspan "pipeline.decode_stall" (fun () ->
                 slot := Batch_ring.acquire ring);
             match !slot with
             | None -> ()  (* consumer aborted; stop quietly *)
             | Some b ->
               if decode_block dec ic b then begin
                 Batch_ring.publish ring b;
                 loop ()
               end
               else Batch_ring.restore ring b
           in
           loop ());
       Batch_ring.close ring
     with exn -> Batch_ring.close ~error:exn ring);
    decode_ns := clock () - t0
  in
  let dom = Domain.spawn producer in
  let finish_ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finish_ok then begin
        (* consumer is unwinding: release the decoder and reap it *)
        Batch_ring.abort ring;
        try Domain.join dom with _ -> ()
      end)
    (fun () ->
      let rec drain () =
        (* mirror of the producer's stall span, on the consumer's lane *)
        let slot = ref None in
        cspan "pipeline.detect_stall" (fun () -> slot := Batch_ring.take ring);
        match !slot with
        | None -> ()
        | Some b ->
          consume b;
          Batch_ring.recycle ring b;
          drain ()
      in
      drain ();
      Domain.join dom;
      finish_ok := true;
      {
        blocks = Batch_ring.blocks ring;
        decode_stall_ns = Batch_ring.decode_stall_ns ring;
        detect_stall_ns = Batch_ring.detect_stall_ns ring;
        decode_ns = !decode_ns;
      })
