open Dgrace_events
open Trace_format
module Error = Dgrace_resilience.Error

type reader_state = {
  ic : in_channel;
  path : string option;
  locs : (int, string) Hashtbl.t;
  mutable events_read : int;
}

let corrupt st ~offset reason =
  raise
    (Error.E
       (Error.Corrupt_trace
          { path = st.path; offset; events_read = st.events_read; reason }))

let check_header ?path ic =
  let fail ~offset reason =
    raise
      (Error.E (Error.Corrupt_trace { path; offset; events_read = 0; reason }))
  in
  (match really_input_string ic (String.length magic) with
   | exception End_of_file -> fail ~offset:0 "bad magic (shorter than header)"
   | m -> if m <> magic then fail ~offset:0 "bad magic");
  match input_byte ic with
  | exception End_of_file ->
    fail ~offset:(String.length magic) "missing version byte"
  | v ->
    if v <> version then
      fail ~offset:(String.length magic)
        (Printf.sprintf "unsupported version %d" v)

(* Read just the header and report the container version — how the
   CLI auto-detects v1 vs v2 files before choosing a decode path. *)
let probe_version path =
  let ic = open_in_bin path in
  let fail ~offset reason =
    close_in ic;
    raise
      (Error.E
         (Error.Corrupt_trace { path = Some path; offset; events_read = 0; reason }))
  in
  (match really_input_string ic (String.length magic) with
   | exception End_of_file -> fail ~offset:0 "bad magic (shorter than header)"
   | m -> if m <> magic then fail ~offset:0 "bad magic");
  match input_byte ic with
  | exception End_of_file ->
    fail ~offset:(String.length magic) "missing version byte"
  | v ->
    close_in ic;
    v

let sync_of_code = function
  | 0 -> Event.Lock
  | 1 -> Event.Barrier
  | 2 -> Event.Flag
  | 3 -> Event.Atomic
  | n -> raise (Corrupt (Printf.sprintf "bad sync kind %d" n))

let read_tid st =
  let tid = read_varint st.ic in
  if tid > max_tid then
    raise (Corrupt (Printf.sprintf "tid %d out of range" tid));
  tid

let read_size st =
  let size = read_varint st.ic in
  if size > max_access_size then
    raise (Corrupt (Printf.sprintf "size %d out of range" size));
  size

let read_loc st =
  let id = read_varint st.ic in
  match Hashtbl.find_opt st.locs id with
  | Some loc -> loc
  | None ->
    let len = read_varint st.ic in
    if len > max_loc_len then
      raise (Corrupt (Printf.sprintf "location length %d out of range" len));
    let loc = really_input_string st.ic len in
    Hashtbl.replace st.locs id loc;
    loc

let decode_event st =
  match input_byte st.ic with
  | exception End_of_file -> None
  | tag ->
    let ev =
      if tag = tag_read || tag = tag_write then begin
        let tid = read_tid st in
        let addr = read_varint st.ic in
        let size = read_size st in
        let loc = read_loc st in
        let kind = if tag = tag_read then Event.Read else Event.Write in
        Event.Access { tid; kind; addr; size; loc }
      end
      else if tag = tag_acquire then begin
        let tid = read_tid st in
        let lock = read_varint st.ic in
        Event.Acquire { tid; lock; sync = sync_of_code (read_varint st.ic) }
      end
      else if tag = tag_release then begin
        let tid = read_tid st in
        let lock = read_varint st.ic in
        Event.Release { tid; lock; sync = sync_of_code (read_varint st.ic) }
      end
      else if tag = tag_fork then begin
        let parent = read_tid st in
        Event.Fork { parent; child = read_tid st }
      end
      else if tag = tag_join then begin
        let parent = read_tid st in
        Event.Join { parent; child = read_tid st }
      end
      else if tag = tag_alloc then begin
        let tid = read_tid st in
        let addr = read_varint st.ic in
        Event.Alloc { tid; addr; size = read_size st }
      end
      else if tag = tag_free then begin
        let tid = read_tid st in
        let addr = read_varint st.ic in
        Event.Free { tid; addr; size = read_size st }
      end
      else if tag = tag_exit then Event.Thread_exit { tid = read_tid st }
      else raise (Corrupt (Printf.sprintf "unknown tag %d" tag))
    in
    Some ev

(* Decode one record, mapping the low-level exceptions — EOF inside a
   record, bad varints, out-of-range fields — to the structured error
   with the record's start offset. *)
let read_event st =
  let offset = pos_in st.ic in
  match decode_event st with
  | None -> None
  | Some ev ->
    st.events_read <- st.events_read + 1;
    Some ev
  | exception End_of_file -> corrupt st ~offset "truncated event"
  | exception Corrupt reason -> corrupt st ~offset reason

let make_state ?path ic =
  check_header ?path ic;
  { ic; path; locs = Hashtbl.create 64; events_read = 0 }

let read ?path ic =
  let st = make_state ?path ic in
  let rec next () =
    match read_event st with
    | None -> Seq.Nil
    | Some ev -> Seq.Cons (ev, next)
  in
  next

let fold_file path f init =
  let ic = open_in_bin path in
  match Seq.fold_left f init (read ~path ic) with
  | acc ->
    close_in ic;
    acc
  | exception e ->
    close_in ic;
    raise e

let read_file path = List.rev (fold_file path (fun acc ev -> ev :: acc) [])

(* ------------------------------------------------------------------ *)
(* resync: skip to the next decodable record after a corrupt one *)

type recovery = {
  events : int;
  dropped_bytes : int;
  gaps : int;
  errors : Error.t list;
}

let clean = { events = 0; dropped_bytes = 0; gaps = 0; errors = [] }

let fold_file_resync path f init =
  let ic = open_in_bin path in
  let total = in_channel_length ic in
  let finish acc r = (acc, { r with errors = List.rev r.errors }) in
  let result =
    match make_state ~path ic with
    | exception Error.E e ->
      (* nothing before the header to salvage *)
      finish init { clean with dropped_bytes = total; gaps = 1; errors = [ e ] }
    | st ->
      let rec loop acc r =
        match read_event st with
        | None -> finish acc { r with events = st.events_read }
        | Some ev -> loop (f acc ev) r
        | exception Error.E e ->
          let bad_start =
            match e with Error.Corrupt_trace { offset; _ } -> offset | _ -> pos_in ic
          in
          (* scan forward one byte at a time for the next offset where a
             whole record decodes; everything skipped is reported *)
          let rec scan off =
            if off >= total then
              finish acc
                {
                  events = st.events_read;
                  dropped_bytes = r.dropped_bytes + (total - bad_start);
                  gaps = r.gaps + 1;
                  errors = e :: r.errors;
                }
            else begin
              seek_in ic off;
              match read_event st with
              | Some ev ->
                loop (f acc ev)
                  {
                    r with
                    dropped_bytes = r.dropped_bytes + (off - bad_start);
                    gaps = r.gaps + 1;
                    errors = e :: r.errors;
                  }
              | None ->
                finish acc
                  {
                    events = st.events_read;
                    dropped_bytes = r.dropped_bytes + (off - bad_start);
                    gaps = r.gaps + 1;
                    errors = e :: r.errors;
                  }
              | exception Error.E _ -> scan (off + 1)
            end
          in
          scan (bad_start + 1)
      in
      loop init clean
  in
  close_in ic;
  result

let read_file_resync path =
  let rev, recovery =
    fold_file_resync path (fun acc ev -> ev :: acc) []
  in
  (List.rev rev, recovery)
