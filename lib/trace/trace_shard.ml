open Dgrace_events

type t = {
  shards : (int * Event.t) array array;
  events : int;
  granule : int;
  sync_ops : int;
  allocs : int;
  frees : int;
  super_granules : int;
  straddling : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let b = ref 0 and v = ref n in
  while !v > 1 do
    v := !v lsr 1;
    incr b
  done;
  !b

(* Union-find over granule ids, grown on demand.  Accesses that
   straddle a granule boundary weld the granules they touch into one
   super-granule, which then routes to a single shard; everything the
   detector can learn about an address stays inside its super-granule
   (the detector's own [share_granule] gate guarantees no sharing
   decision crosses a granule line). *)
let find parent g =
  let rec root g =
    match Hashtbl.find_opt parent g with None -> g | Some p -> root p
  in
  let r = root g in
  (* path compression *)
  let rec compress g =
    match Hashtbl.find_opt parent g with
    | None -> ()
    | Some p ->
      if p <> r then Hashtbl.replace parent g r;
      compress p
  in
  compress g;
  r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)

(* Pack one shard's [(offset, event)] stream into struct-of-arrays
   batches for the detectors' [process_batch] fast path; the stream
   offsets become the batch [off] column, so race attribution is
   unchanged.  O(n) and allocation-proportional to the stream. *)
let batches_of ?(capacity = Batch.default_capacity) stream =
  let n = Array.length stream in
  let nb = (n + capacity - 1) / capacity in
  Array.init nb (fun bi ->
      let lo = bi * capacity in
      let hi = min n (lo + capacity) in
      let b = Batch.create ~capacity () in
      for i = lo to hi - 1 do
        let off, ev = stream.(i) in
        Batch.push b ~off ev
      done;
      b)

(* Streaming planner: the prepass of the pipelined sharded replay.
   [plan_batch] folds decoded batches (no event materialisation),
   welding straddle-linked granules and counting the broadcast
   classes; [plan_shard] then answers the routing question for the
   second pass, and [plan_stats] freezes the counts into a [t] (with
   empty per-shard streams — the pipelined path never materialises
   them) for the same merge bookkeeping [split] feeds. *)

type planner = {
  p_gshift : int;
  p_granule : int;
  p_parent : (int, int) Hashtbl.t;
  mutable p_events : int;
  mutable p_sync_ops : int;
  mutable p_allocs : int;
  mutable p_frees : int;
  mutable p_straddling : int;
}

let planner ~granule () =
  if not (is_pow2 granule) then
    invalid_arg "Trace_shard.planner: granule must be a power of two";
  {
    p_gshift = log2 granule;
    p_granule = granule;
    p_parent = Hashtbl.create 256;
    p_events = 0;
    p_sync_ops = 0;
    p_allocs = 0;
    p_frees = 0;
    p_straddling = 0;
  }

let plan_batch p (b : Batch.t) =
  let n = Batch.length b in
  p.p_events <- p.p_events + n;
  for i = 0 to n - 1 do
    let k = b.Batch.kind.(i) in
    if k <= Batch.code_write then begin
      let addr = b.Batch.b.(i) in
      let size = b.Batch.c.(i) in
      let g0 = addr lsr p.p_gshift in
      let g1 = (addr + max size 1 - 1) lsr p.p_gshift in
      if g1 > g0 then begin
        p.p_straddling <- p.p_straddling + 1;
        for g = g0 to g1 - 1 do
          union p.p_parent g (g + 1)
        done
      end
    end
    else if k = Batch.code_alloc then p.p_allocs <- p.p_allocs + 1
    else if k = Batch.code_free then p.p_frees <- p.p_frees + 1
    else p.p_sync_ops <- p.p_sync_ops + 1
  done

let plan_shard p ~shards:k addr =
  if k = 1 then 0
  else Hashtbl.hash (find p.p_parent (addr lsr p.p_gshift)) mod k

let plan_stats p ~shards:k =
  let roots = Hashtbl.create 64 in
  Hashtbl.iter
    (fun g _ -> Hashtbl.replace roots (find p.p_parent g) ())
    p.p_parent;
  {
    shards = Array.make k [||];
    events = p.p_events;
    granule = p.p_granule;
    sync_ops = p.p_sync_ops;
    allocs = p.p_allocs;
    frees = p.p_frees;
    super_granules = Hashtbl.length roots;
    straddling = p.p_straddling;
  }

let split ~shards:k ~granule events =
  if k < 1 then invalid_arg "Trace_shard.split: shards must be >= 1";
  if not (is_pow2 granule) then
    invalid_arg "Trace_shard.split: granule must be a power of two";
  let gshift = log2 granule in
  let parent = Hashtbl.create 256 in
  let straddling = ref 0 in
  (* pass 1: weld granules linked by a straddling access *)
  Array.iter
    (fun ev ->
      match ev with
      | Event.Access { addr; size; _ } ->
        let g0 = addr lsr gshift in
        let g1 = (addr + max size 1 - 1) lsr gshift in
        if g1 > g0 then begin
          incr straddling;
          for g = g0 to g1 - 1 do
            union parent g (g + 1)
          done
        end
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Alloc _ | Event.Free _ | Event.Thread_exit _ -> ())
    events;
  (* [Hashtbl.hash] on an int is deterministic across runs and
     processes, so the shard assignment — and therefore every
     downstream artifact — is reproducible. *)
  let shard_of_addr addr =
    if k = 1 then 0 else Hashtbl.hash (find parent (addr lsr gshift)) mod k
  in
  let bufs = Array.make k [] in
  let lens = Array.make k 0 in
  let push s cell =
    bufs.(s) <- cell :: bufs.(s);
    lens.(s) <- lens.(s) + 1
  in
  let broadcast cell =
    for s = 0 to k - 1 do
      push s cell
    done
  in
  let sync_ops = ref 0 and allocs = ref 0 and frees = ref 0 in
  (* pass 2: route.  Accesses go to the owner of their super-granule;
     sync events are broadcast so every shard's [Vc_env] replays the
     exact sequential clock history; alloc/free are broadcast too —
     dropping shadow state for a range the shard does not own is a
     no-op, and the event counts are small. *)
  Array.iteri
    (fun off ev ->
      let cell = (off, ev) in
      match ev with
      | Event.Access { addr; _ } -> push (shard_of_addr addr) cell
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Thread_exit _ ->
        incr sync_ops;
        broadcast cell
      | Event.Alloc _ ->
        incr allocs;
        broadcast cell
      | Event.Free _ ->
        incr frees;
        broadcast cell)
    events;
  let shards =
    Array.mapi
      (fun s cells ->
        let n = lens.(s) in
        match cells with
        | [] -> [||]
        | last :: _ ->
          let a = Array.make n last in
          let i = ref (n - 1) in
          List.iter
            (fun c ->
              a.(!i) <- c;
              decr i)
            cells;
          a)
      bufs
  in
  let roots = Hashtbl.create 64 in
  Hashtbl.iter (fun g _ -> Hashtbl.replace roots (find parent g) ()) parent;
  {
    shards;
    events = Array.length events;
    granule;
    sync_ops = !sync_ops;
    allocs = !allocs;
    frees = !frees;
    super_granules = Hashtbl.length roots;
    straddling = !straddling;
  }
