open Dgrace_events
open Trace_format
module Error = Dgrace_resilience.Error

(* In-memory counterpart of Trace_writer/Trace_reader for the serve
   wire protocol: FEED frame payloads carry the same binary records as
   a trace file (no DGRT header), and the codec keeps the per-session
   state — the location intern table and the running byte offset — so
   a location string sent in one frame resolves in every later frame
   and a corrupt byte is reported at its absolute stream offset. *)

(* ------------------------------------------------------------------ *)
(* decoding *)

type decoder = {
  locs : (int, string) Hashtbl.t;
  mutable events : int;  (* events decoded across all frames *)
  mutable offset : int;  (* stream bytes consumed across all frames *)
}

let decoder () = { locs = Hashtbl.create 64; events = 0; offset = 0 }
let events_decoded d = d.events
let stream_offset d = d.offset

(* A cursor over one frame's payload.  [Corrupt] (from Trace_format)
   carries the reason; the caller converts it to a structured error at
   the absolute offset of the record that failed. *)
type cursor = { s : string; mutable pos : int }

let byte cur =
  if cur.pos >= String.length cur.s then raise (Corrupt "truncated record");
  let b = Char.code cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  b

let varint cur =
  let rec loop acc shift =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = byte cur in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop acc (shift + 7)
  in
  let n = loop 0 0 in
  if n < 0 then raise (Corrupt "varint overflow") else n

let take cur len =
  if cur.pos + len > String.length cur.s then raise (Corrupt "truncated record");
  let s = String.sub cur.s cur.pos len in
  cur.pos <- cur.pos + len;
  s

let sync_of_code = function
  | 0 -> Event.Lock
  | 1 -> Event.Barrier
  | 2 -> Event.Flag
  | 3 -> Event.Atomic
  | n -> raise (Corrupt (Printf.sprintf "bad sync kind %d" n))

let read_tid cur =
  let tid = varint cur in
  if tid > max_tid then
    raise (Corrupt (Printf.sprintf "tid %d out of range" tid));
  tid

let read_size cur =
  let size = varint cur in
  if size > max_access_size then
    raise (Corrupt (Printf.sprintf "size %d out of range" size));
  size

let read_loc d cur =
  let id = varint cur in
  match Hashtbl.find_opt d.locs id with
  | Some loc -> loc
  | None ->
    let len = varint cur in
    if len > max_loc_len then
      raise (Corrupt (Printf.sprintf "location length %d out of range" len));
    let loc = take cur len in
    Hashtbl.replace d.locs id loc;
    loc

let decode_one d cur =
  let tag = byte cur in
  if tag = tag_read || tag = tag_write then begin
    let tid = read_tid cur in
    let addr = varint cur in
    let size = read_size cur in
    let loc = read_loc d cur in
    let kind = if tag = tag_read then Event.Read else Event.Write in
    Event.Access { tid; kind; addr; size; loc }
  end
  else if tag = tag_acquire then begin
    let tid = read_tid cur in
    let lock = varint cur in
    Event.Acquire { tid; lock; sync = sync_of_code (varint cur) }
  end
  else if tag = tag_release then begin
    let tid = read_tid cur in
    let lock = varint cur in
    Event.Release { tid; lock; sync = sync_of_code (varint cur) }
  end
  else if tag = tag_fork then begin
    let parent = read_tid cur in
    Event.Fork { parent; child = read_tid cur }
  end
  else if tag = tag_join then begin
    let parent = read_tid cur in
    Event.Join { parent; child = read_tid cur }
  end
  else if tag = tag_alloc then begin
    let tid = read_tid cur in
    let addr = varint cur in
    Event.Alloc { tid; addr; size = read_size cur }
  end
  else if tag = tag_free then begin
    let tid = read_tid cur in
    let addr = varint cur in
    Event.Free { tid; addr; size = read_size cur }
  end
  else if tag = tag_exit then Event.Thread_exit { tid = read_tid cur }
  else raise (Corrupt (Printf.sprintf "unknown tag %d" tag))

let decode_frame d payload =
  let cur = { s = payload; pos = 0 } in
  let rec loop acc =
    if cur.pos >= String.length payload then Ok (List.rev acc)
    else begin
      let start = cur.pos in
      match decode_one d cur with
      | ev ->
        d.events <- d.events + 1;
        d.offset <- d.offset + (cur.pos - start);
        loop (ev :: acc)
      | exception Corrupt reason ->
        Error
          (Error.Corrupt_trace
             {
               path = None;
               offset = d.offset + start;
               events_read = d.events;
               reason;
             })
    end
  in
  loop []

(* Decode one record straight into the next row of [b] — the batched
   shape of [decode_one], no [Event.t] allocated. *)
let decode_one_into d cur (b : Batch.t) =
  let i = b.Batch.len in
  let tag = byte cur in
  if tag > max_tag then raise (Corrupt (Printf.sprintf "unknown tag %d" tag));
  b.Batch.kind.(i) <- tag;
  if tag = tag_read || tag = tag_write then begin
    b.Batch.a.(i) <- read_tid cur;
    b.Batch.b.(i) <- varint cur;
    b.Batch.c.(i) <- read_size cur;
    b.Batch.loc.(i) <- read_loc d cur
  end
  else if tag = tag_acquire || tag = tag_release then begin
    b.Batch.a.(i) <- read_tid cur;
    b.Batch.b.(i) <- varint cur;
    let s = varint cur in
    if s > 3 then raise (Corrupt (Printf.sprintf "bad sync kind %d" s));
    b.Batch.c.(i) <- s;
    b.Batch.loc.(i) <- ""
  end
  else if tag = tag_fork || tag = tag_join then begin
    b.Batch.a.(i) <- read_tid cur;
    b.Batch.b.(i) <- read_tid cur;
    b.Batch.c.(i) <- 0;
    b.Batch.loc.(i) <- ""
  end
  else if tag = tag_alloc || tag = tag_free then begin
    b.Batch.a.(i) <- read_tid cur;
    b.Batch.b.(i) <- varint cur;
    b.Batch.c.(i) <- read_size cur;
    b.Batch.loc.(i) <- ""
  end
  else begin
    b.Batch.a.(i) <- read_tid cur;
    b.Batch.b.(i) <- 0;
    b.Batch.c.(i) <- 0;
    b.Batch.loc.(i) <- ""
  end;
  b.Batch.off.(i) <- d.events;
  b.Batch.len <- i + 1

(* Batched frame decode: fill [batch] from the payload's records and
   hand it to [emit] each time it fills (and once more at payload end
   if non-empty).  Same error contract as [decode_frame]; on error the
   batch contents are unspecified — the session layer treats the error
   as terminal. *)
let decode_frame_batch d payload ~batch emit =
  let cur = { s = payload; pos = 0 } in
  Batch.clear batch;
  let flush () =
    if Batch.length batch > 0 then begin
      emit batch;
      Batch.clear batch
    end
  in
  let rec loop () =
    if cur.pos >= String.length payload then begin
      flush ();
      Ok ()
    end
    else begin
      let start = cur.pos in
      match decode_one_into d cur batch with
      | () ->
        d.events <- d.events + 1;
        d.offset <- d.offset + (cur.pos - start);
        if Batch.is_full batch then flush ();
        loop ()
      | exception Corrupt reason ->
        Error
          (Error.Corrupt_trace
             {
               path = None;
               offset = d.offset + start;
               events_read = d.events;
               reason;
             })
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* encoding *)

type encoder = {
  enc_locs : (string, int) Hashtbl.t;
  mutable next_loc : int;
}

let encoder () = { enc_locs = Hashtbl.create 64; next_loc = 0 }

let sync_code = function
  | Event.Lock -> 0
  | Event.Barrier -> 1
  | Event.Flag -> 2
  | Event.Atomic -> 3

let loc_id e loc =
  match Hashtbl.find_opt e.enc_locs loc with
  | Some id -> (id, false)
  | None ->
    let id = e.next_loc in
    e.next_loc <- id + 1;
    Hashtbl.replace e.enc_locs loc id;
    (id, true)

let encode e buf ev =
  match ev with
  | Event.Access { tid; kind; addr; size; loc } ->
    let tag = if kind = Event.Read then tag_read else tag_write in
    Buffer.add_char buf (Char.chr tag);
    write_varint buf tid;
    write_varint buf addr;
    write_varint buf size;
    let id, fresh = loc_id e loc in
    write_varint buf id;
    if fresh then begin
      write_varint buf (String.length loc);
      Buffer.add_string buf loc
    end
  | Event.Acquire { tid; lock; sync } ->
    Buffer.add_char buf (Char.chr tag_acquire);
    write_varint buf tid;
    write_varint buf lock;
    write_varint buf (sync_code sync)
  | Event.Release { tid; lock; sync } ->
    Buffer.add_char buf (Char.chr tag_release);
    write_varint buf tid;
    write_varint buf lock;
    write_varint buf (sync_code sync)
  | Event.Fork { parent; child } ->
    Buffer.add_char buf (Char.chr tag_fork);
    write_varint buf parent;
    write_varint buf child
  | Event.Join { parent; child } ->
    Buffer.add_char buf (Char.chr tag_join);
    write_varint buf parent;
    write_varint buf child
  | Event.Alloc { tid; addr; size } ->
    Buffer.add_char buf (Char.chr tag_alloc);
    write_varint buf tid;
    write_varint buf addr;
    write_varint buf size
  | Event.Free { tid; addr; size } ->
    Buffer.add_char buf (Char.chr tag_free);
    write_varint buf tid;
    write_varint buf addr;
    write_varint buf size
  | Event.Thread_exit { tid } ->
    Buffer.add_char buf (Char.chr tag_exit);
    write_varint buf tid

let encode_all events =
  let e = encoder () in
  let buf = Buffer.create 4096 in
  List.iter (encode e buf) events;
  Buffer.contents buf
