(** In-memory event codec for streamed trace frames.

    The serve wire protocol (doc/serve.md) carries events in FEED
    frames whose payload is a run of binary records in exactly the
    trace-file encoding ({!Trace_format}), without the [DGRT] header.
    This codec is the frame-sized counterpart of {!Trace_writer} and
    {!Trace_reader}: both sides keep per-session state — the location
    intern table and the running stream offset — so a location string
    transmitted once resolves in every later frame, and corruption is
    reported at its absolute offset in the session's stream, matching
    the offline reader's error shape byte for byte. *)

open Dgrace_events

(** {1 Decoding (server side)} *)

type decoder
(** Per-session decode state: location table, events decoded, stream
    offset.  Not thread-safe; a session's frames decode serially. *)

val decoder : unit -> decoder
val events_decoded : decoder -> int

val stream_offset : decoder -> int
(** Bytes of event records consumed so far across all frames. *)

val decode_frame :
  decoder -> string -> (Event.t list, Dgrace_resilience.Error.t) result
(** Decode one complete frame payload.  Every record must decode and
    the payload must end exactly on a record boundary; anything else —
    truncated record, unknown tag, out-of-range field — is a
    [Corrupt_trace] whose [offset] is absolute in the session stream.
    After an error the decoder state is unspecified: the session layer
    treats the error as terminal (poisoned) and never decodes again. *)

(** {1 Encoding (client side)} *)

type encoder
(** Per-session encode state (the location intern table). *)

val encoder : unit -> encoder

val encode : encoder -> Buffer.t -> Event.t -> unit
(** Append one record to [buf]. *)

val encode_all : Event.t list -> string
(** One-shot helper: encode a whole list with a fresh encoder — the
    payload a single-frame session would send. *)
