(** In-memory event codec for streamed trace frames.

    The serve wire protocol (doc/serve.md) carries events in FEED
    frames whose payload is a run of binary records in exactly the
    trace-file encoding ({!Trace_format}), without the [DGRT] header.
    This codec is the frame-sized counterpart of {!Trace_writer} and
    {!Trace_reader}: both sides keep per-session state — the location
    intern table and the running stream offset — so a location string
    transmitted once resolves in every later frame, and corruption is
    reported at its absolute offset in the session's stream, matching
    the offline reader's error shape byte for byte. *)

open Dgrace_events

(** {1 Decoding (server side)} *)

type decoder
(** Per-session decode state: location table, events decoded, stream
    offset.  Not thread-safe; a session's frames decode serially. *)

val decoder : unit -> decoder
val events_decoded : decoder -> int

val stream_offset : decoder -> int
(** Bytes of event records consumed so far across all frames. *)

val decode_frame :
  decoder -> string -> (Event.t list, Dgrace_resilience.Error.t) result
(** Decode one complete frame payload.  Every record must decode and
    the payload must end exactly on a record boundary; anything else —
    truncated record, unknown tag, out-of-range field — is a
    [Corrupt_trace] whose [offset] is absolute in the session stream.
    After an error the decoder state is unspecified: the session layer
    treats the error as terminal (poisoned) and never decodes again. *)

val decode_frame_batch :
  decoder ->
  string ->
  batch:Batch.t ->
  (Batch.t -> unit) ->
  (unit, Dgrace_resilience.Error.t) result
(** Batched counterpart of {!decode_frame}: decode the payload's
    records straight into [batch] (no [Event.t] allocation; rows get
    [off] = running event index) and call the consumer each time the
    batch fills, plus once at payload end if non-empty.  Same error
    contract as {!decode_frame}; on error the batch contents are
    unspecified and the session layer must treat the error as
    terminal. *)

(** {1 Encoding (client side)} *)

type encoder
(** Per-session encode state (the location intern table). *)

val encoder : unit -> encoder

val encode : encoder -> Buffer.t -> Event.t -> unit
(** Append one record to [buf]. *)

val encode_all : Event.t list -> string
(** One-shot helper: encode a whole list with a fresh encoder — the
    payload a single-frame session would send. *)
