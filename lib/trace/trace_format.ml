let magic = "DGRT"
let version = 1
let header_len = String.length magic + 1
let tag_read = 0
let tag_write = 1
let tag_acquire = 2
let tag_release = 3
let tag_fork = 4
let tag_join = 5
let tag_alloc = 6
let tag_free = 7
let tag_exit = 8
let max_tag = tag_exit

(* Field bounds a well-formed trace obeys; the reader rejects records
   outside them so a corrupt varint cannot ask a detector to allocate
   a clock for thread 2^40 or intern a petabyte location string. *)
let max_tid = 1023 (* Epoch.max_tid: the detectors' own thread ceiling *)
let max_access_size = 1 lsl 30
let max_loc_len = 1 lsl 16

exception Corrupt of string

let write_varint buf n =
  if n < 0 then invalid_arg "Trace_format.write_varint: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let read_varint ic =
  let rec loop acc shift =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = input_byte ic in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop acc (shift + 7)
  in
  let n = loop 0 0 in
  if n < 0 then raise (Corrupt "varint overflow") else n
