(** Single-pass-per-stage shard splitter for the offline parallel
    replay ({!Dgrace_par}).

    The address space is cut into aligned [granule]-byte lines and each
    line's accesses are routed to one shard by hashing the line id.  An
    access that straddles a line boundary welds the lines it touches
    into one {e super-granule} (union-find) so the whole group lands on
    a single shard.  Synchronisation events — acquire/release, fork,
    join, thread exit — are {e broadcast} to every shard: thread and
    lock vector clocks advance only on those events, so each shard
    replays the exact sequential clock history and analyses its
    accesses against bit-identical happens-before state.  Alloc/free
    are broadcast too (dropping shadow state for an unowned range is a
    no-op).

    Every routed event carries its offset in the original trace, which
    is what makes the merged race report order deterministic
    (doc/parallel.md). *)

open Dgrace_events

type t = {
  shards : (int * Event.t) array array;
      (** per-shard [(global_offset, event)] streams, trace order *)
  events : int;  (** events in the input *)
  granule : int;  (** line size the split used *)
  sync_ops : int;
      (** global sync-event count — per-shard counts would K-count the
          broadcasts, so the merged {!Dgrace_detectors.Run_stats.t}
          takes these instead *)
  allocs : int;
  frees : int;
  super_granules : int;  (** welded (multi-line) super-granules *)
  straddling : int;  (** accesses that straddled a line boundary *)
}

val batches_of : ?capacity:int -> (int * Event.t) array -> Batch.t array
(** Pack one shard's stream into {!Batch.t} struct-of-arrays buffers
    (capacity {!Batch.default_capacity} each) for the detectors'
    [process_batch] fast path; stream offsets become the batch [off]
    column, so race attribution is unchanged. *)

(** {1 Streaming planner} — the prepass of the pipelined sharded
    replay ({!Trace_pipeline}): fold decoded batches once to learn the
    straddle welds and broadcast counts, then route a second streaming
    pass with {!plan_shard}.  Routing agrees exactly with {!split} on
    the same stream (same union-find, same [Hashtbl.hash]). *)

type planner

val planner : granule:int -> unit -> planner
(** @raise Invalid_argument if [granule] is not a power of two. *)

val plan_batch : planner -> Batch.t -> unit
(** Fold one decoded batch: weld straddle-linked granule lines, count
    sync/alloc/free rows. *)

val plan_shard : planner -> shards:int -> int -> int
(** [plan_shard p ~shards addr] — the owning shard of [addr], after
    every batch was planned.  Deterministic. *)

val plan_stats : planner -> shards:int -> t
(** Freeze the planner into a {!t} carrying the counts the merge
    needs; the per-shard streams are left empty (the pipelined replay
    never materialises them). *)

val split : shards:int -> granule:int -> Event.t array -> t
(** [split ~shards:k ~granule events] routes every event as above.
    Deterministic: the same input always yields the same shards
    ([Hashtbl.hash] on line ids is stable across runs and processes).
    With [k = 1] shard 0 is exactly the input stream.
    @raise Invalid_argument if [k < 1] or [granule] is not a power of
    two. *)
