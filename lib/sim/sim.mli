(** Cooperative multithreaded execution simulator.

    This is the instrumentation substrate that stands in for Intel PIN
    plus pthreads: workload code written against this API is "run" by a
    deterministic scheduler, and every shared memory access and
    synchronisation operation is delivered, in execution order, to an
    event sink (the race detector under test).

    Thread bodies are ordinary OCaml functions that call the operations
    below; the implementation uses OCaml 5 effect handlers to suspend
    and resume threads, so arbitrary control flow (loops, recursion,
    higher-order code) works unchanged inside a thread.

    All operations except {!mutex}, {!barrier} and {!event} must be
    called from inside {!run} (they perform effects handled by the
    scheduler).  Calling them elsewhere raises
    [Effect.Unhandled]. *)

open Dgrace_events

type mutex
(** A mutual-exclusion lock.  Locks are sync objects with ids disjoint
    from memory addresses. *)

type barrier
(** A reusable cyclic barrier: all arrivals happen-before all
    departures of the same generation. *)

type event_flag
(** A one-shot signalling flag: [set] happens-before every [wait] that
    observes it. *)

type condition
(** A condition variable used with a {!mutex}: [wait] releases the
    mutex, blocks until signalled, and re-acquires it.  Signals
    happen-before the wakeups they cause.  No spurious wakeups. *)

type semaphore
(** A counting semaphore: every [post] happens-before the [wait] it
    permits. *)

type deadlock_info = {
  blocked : int list;  (** non-exited thread ids, ascending *)
  held : (int * int) list;
      (** [(lock id, owner tid)] for every mutex still held — including
          mutexes held by threads that already exited (a lost unlock),
          which is usually the bug the report points at *)
}

exception Deadlock of deadlock_info
(** Raised by {!run} when no thread is runnable but some are blocked:
    a structured report of who is stuck and which locks are held,
    instead of a hang. *)

(** {1 Sync object constructors (usable anywhere)} *)

val mutex : unit -> mutex
val barrier : int -> barrier
(** [barrier n] for [n] participating threads. *)

val event : unit -> event_flag
(** Note: an event flag is stateful across {!run} invocations (it stays
    set).  Create sync objects inside the program body when the same
    program value is run more than once. *)

val condition : unit -> condition

val semaphore : int -> semaphore
(** [semaphore n] with initial count [n] (>= 0).  Like event flags,
    semaphore counts persist across runs: create them inside the
    program body. *)

val mutex_id : mutex -> int
(** The sync-object id carried by [Acquire]/[Release] events. *)

(** {1 Operations (inside [run] only)} *)

val self : unit -> int
(** Current thread id (the initial thread is 0). *)

val spawn : (unit -> unit) -> int
(** Start a thread; returns its id.  Emits [Fork]. *)

val join : int -> unit
(** Wait for a thread to finish.  Emits [Join] when it has. *)

val read : ?loc:string -> int -> int -> unit
(** [read addr size] — a shared load of [size] bytes at [addr]. *)

val write : ?loc:string -> int -> int -> unit
(** [write addr size] — a shared store. *)

val lock : mutex -> unit
(** Acquire; blocks while held by another thread.  Emits [Acquire]. *)

val unlock : mutex -> unit
(** Release.  @raise Invalid_argument if not held by the caller. *)

val with_lock : mutex -> (unit -> 'a) -> 'a
(** [with_lock m f] brackets [f] with {!lock}/{!unlock}. *)

val try_lock : mutex -> bool
(** Acquire if free ([true], emits [Acquire]); otherwise return [false]
    immediately with no event. *)

val cond_wait : condition -> mutex -> unit
(** Release the mutex, block until {!cond_signal}/{!cond_broadcast},
    re-acquire the mutex.  @raise Invalid_argument if the mutex is not
    held by the caller. *)

val cond_signal : condition -> unit
(** Wake one waiter (no-op when none wait). *)

val cond_broadcast : condition -> unit
(** Wake every waiter. *)

val sem_wait : semaphore -> unit
(** Decrement, blocking while the count is zero. *)

val sem_post : semaphore -> unit
(** Increment, waking one blocked waiter if any. *)

val malloc : ?align:int -> int -> int
(** Allocate simulated heap memory; emits [Alloc] and returns the base
    address. *)

val calloc : ?align:int -> ?loc:string -> int -> int
(** {!malloc} followed by a zeroing {!write} of the whole block — the
    initialisation pattern the paper's Init state exploits. *)

val free : int -> unit
(** Release a block; emits [Free] so detectors retire shadow state. *)

val static_alloc : ?align:int -> int -> int
(** Allocate global/static data (no event emitted; never freed). *)

val barrier_wait : barrier -> unit
(** Arrive at the barrier and block until all parties have arrived.
    Emits [Release] on arrival and [Acquire] on departure, giving the
    all-arrivals-happen-before-all-departures edges. *)

val event_set : event_flag -> unit
(** Signal the flag (emits [Release] on its sync object). *)

val event_wait : event_flag -> unit
(** Block until the flag is set (emits [Acquire] once it is). *)

val atomic_load : ?loc:string -> int -> int -> unit
(** [atomic_load addr size] — an acquire-load with the happens-before
    edges of a C11 SC atomic read (serialised with all other atomics on
    the address). *)

val atomic_store : ?loc:string -> int -> int -> unit
(** Release-store counterpart of {!atomic_load}. *)

val atomic_rmw : ?loc:string -> int -> int -> unit
(** [atomic_rmw addr size] models a lock-free atomic read-modify-write:
    an [Acquire]/read/write/[Release] on a sync object private to
    [addr].  Gives the happens-before edges a C11 SC atomic provides,
    so correctly-synchronised lock-free code is race-free. *)

val yield : unit -> unit
(** Preemption point with no event. *)

(** {1 Running} *)

type result = {
  threads : int;  (** total threads created (including the initial one) *)
  events : int;  (** events delivered to the sink *)
  accesses : int;  (** [Access] events among them *)
  total_allocated : int;  (** cumulative heap bytes allocated *)
}

val run :
  ?policy:Scheduler.policy ->
  ?sink:(Event.t -> unit) ->
  (unit -> unit) ->
  result
(** [run main] executes [main] as thread 0, scheduling all spawned
    threads until every thread has finished.  Each emitted event is
    passed to [sink] (default: ignore) before the next operation runs.
    @raise Deadlock on global deadlock. *)
