open Dgrace_events
module Vec = Dgrace_util.Vec
module Epoch = Dgrace_vclock.Epoch

(* Sync-object ids are unique across the process; they live in a
   namespace separate from memory addresses. *)
let sync_counter = ref 0
let fresh_sync_id () = incr sync_counter; !sync_counter

type waiter = { wtid : int; wake : unit -> unit }

type mutex = { lid : int; mutable owner : int; waiters : waiter Vec.t }
type barrier = { bid : int; parties : int; arrived : waiter Vec.t }
type event_flag = { eid : int; mutable is_set : bool; ewaiters : waiter Vec.t }
type condition = { cid : int; cwaiters : waiter Vec.t }
type semaphore = { smid : int; mutable count : int; swaiters : waiter Vec.t }

type deadlock_info = { blocked : int list; held : (int * int) list }

exception Deadlock of deadlock_info

let mutex () = { lid = fresh_sync_id (); owner = -1; waiters = Vec.create () }

let barrier parties =
  if parties <= 0 then invalid_arg "Sim.barrier: non-positive party count";
  { bid = fresh_sync_id (); parties; arrived = Vec.create () }

let event () = { eid = fresh_sync_id (); is_set = false; ewaiters = Vec.create () }
let condition () = { cid = fresh_sync_id (); cwaiters = Vec.create () }

let semaphore count =
  if count < 0 then invalid_arg "Sim.semaphore: negative count";
  { smid = fresh_sync_id (); count; swaiters = Vec.create () }

let mutex_id m = m.lid

type _ Effect.t +=
  | E_self : int Effect.t
  | E_spawn : (unit -> unit) -> int Effect.t
  | E_join : int -> unit Effect.t
  | E_access : Event.access_kind * int * int * string -> unit Effect.t
  | E_lock : mutex -> unit Effect.t
  | E_unlock : mutex -> unit Effect.t
  | E_malloc : int * int -> int Effect.t (* align, size *)
  | E_free : int -> unit Effect.t
  | E_static : int * int -> int Effect.t (* align, size *)
  | E_barrier : barrier -> unit Effect.t
  | E_evt_set : event_flag -> unit Effect.t
  | E_evt_wait : event_flag -> unit Effect.t
  | E_atomic : int * int * string -> unit Effect.t
  | E_atomic_access : Event.access_kind * int * int * string -> unit Effect.t
  | E_trylock : mutex -> bool Effect.t
  | E_cond_wait : condition * mutex -> unit Effect.t
  | E_cond_wake : condition * bool -> unit Effect.t (* broadcast? *)
  | E_sem_wait : semaphore -> unit Effect.t
  | E_sem_post : semaphore -> unit Effect.t
  | E_yield : unit Effect.t

let self () = Effect.perform E_self
let spawn body = Effect.perform (E_spawn body)
let join tid = Effect.perform (E_join tid)
let read ?(loc = "") addr size = Effect.perform (E_access (Event.Read, addr, size, loc))
let write ?(loc = "") addr size = Effect.perform (E_access (Event.Write, addr, size, loc))
let lock m = Effect.perform (E_lock m)
let unlock m = Effect.perform (E_unlock m)

let with_lock m f =
  lock m;
  match f () with
  | v -> unlock m; v
  | exception e -> unlock m; raise e

let malloc ?(align = 8) size = Effect.perform (E_malloc (align, size))

let calloc ?(align = 8) ?(loc = "") size =
  let addr = malloc ~align size in
  write ~loc addr size;
  addr

let free addr = Effect.perform (E_free addr)
let static_alloc ?(align = 8) size = Effect.perform (E_static (align, size))
let barrier_wait b = Effect.perform (E_barrier b)
let event_set f = Effect.perform (E_evt_set f)
let event_wait f = Effect.perform (E_evt_wait f)
let atomic_rmw ?(loc = "") addr size = Effect.perform (E_atomic (addr, size, loc))

let atomic_load ?(loc = "") addr size =
  Effect.perform (E_atomic_access (Event.Read, addr, size, loc))

let atomic_store ?(loc = "") addr size =
  Effect.perform (E_atomic_access (Event.Write, addr, size, loc))

let try_lock m = Effect.perform (E_trylock m)
let cond_wait c m = Effect.perform (E_cond_wait (c, m))
let cond_signal c = Effect.perform (E_cond_wake (c, false))
let cond_broadcast c = Effect.perform (E_cond_wake (c, true))
let sem_wait s = Effect.perform (E_sem_wait s)
let sem_post s = Effect.perform (E_sem_post s)
let yield () = Effect.perform E_yield

type result = {
  threads : int;
  events : int;
  accesses : int;
  total_allocated : int;
}

type thread_phase = Ready | Running | Blocked | Exited

type thread_info = {
  tid : int;
  mutable phase : thread_phase;
  joiners : waiter Vec.t;
}

type runnable = { rtid : int; run : unit -> unit }

type world = {
  mem : Memory.t;
  sink : Event.t -> unit;
  threads : thread_info Vec.t;
  ready : runnable Vec.t;
  sched : Scheduler.t;
  atomic_syncs : (int, int) Hashtbl.t;
  held_locks : (int, int) Hashtbl.t;  (* mutex id -> owner tid *)
  mutable current : int;
  mutable live : int;
  mutable events : int;
  mutable accesses : int;
}

let run ?(policy = Scheduler.default) ?(sink = fun (_ : Event.t) -> ()) main =
  let w =
    {
      mem = Memory.create ();
      sink;
      threads = Vec.create ();
      ready = Vec.create ();
      sched = Scheduler.create policy;
      atomic_syncs = Hashtbl.create 64;
      held_locks = Hashtbl.create 16;
      current = -1;
      live = 0;
      events = 0;
      accesses = 0;
    }
  in
  let thread tid = Vec.get w.threads tid in
  let emit e =
    w.events <- w.events + 1;
    (match e with
     | Event.Access _ -> w.accesses <- w.accesses + 1
     (* track mutex ownership so a deadlock report can name the held
        locks (barrier/flag/atomic sync objects are not "held") *)
     | Event.Acquire { tid; lock; sync = Event.Lock } ->
       Hashtbl.replace w.held_locks lock tid
     | Event.Release { lock; sync = Event.Lock; _ } ->
       Hashtbl.remove w.held_locks lock
     | _ -> ());
    w.sink e
  in
  let enqueue tid run =
    (thread tid).phase <- Ready;
    Vec.push w.ready { rtid = tid; run }
  in
  let resume : type v. int -> (v, unit) Effect.Deep.continuation -> v -> unit =
    fun tid k v -> enqueue tid (fun () -> Effect.Deep.continue k v)
  in
  let new_thread () =
    let tid = Vec.length w.threads in
    if tid > Epoch.max_tid then
      invalid_arg
        (Printf.sprintf "Sim.spawn: more than %d threads" (Epoch.max_tid + 1));
    Vec.push w.threads { tid; phase = Ready; joiners = Vec.create () };
    w.live <- w.live + 1;
    tid
  in
  let block tid = (thread tid).phase <- Blocked in
  let atomic_sync_id addr =
    match Hashtbl.find_opt w.atomic_syncs addr with
    | Some id -> id
    | None ->
      let id = fresh_sync_id () in
      Hashtbl.replace w.atomic_syncs addr id;
      id
  in
  let rec exec tid body =
    Effect.Deep.match_with body ()
      {
        retc =
          (fun () ->
            let ti = thread tid in
            ti.phase <- Exited;
            w.live <- w.live - 1;
            emit (Event.Thread_exit { tid });
            Vec.iter (fun wtr -> enqueue wtr.wtid wtr.wake) ti.joiners;
            Vec.clear ti.joiners);
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) :
               ((c, unit) Effect.Deep.continuation -> unit) option ->
            match eff with
            | E_self -> Some (fun k -> resume tid k tid)
            | E_yield -> Some (fun k -> resume tid k ())
            | E_access (kind, addr, size, loc) ->
              Some
                (fun k ->
                  emit (Event.Access { tid; kind; addr; size; loc });
                  resume tid k ())
            | E_spawn body ->
              Some
                (fun k ->
                  let child = new_thread () in
                  emit (Event.Fork { parent = tid; child });
                  enqueue child (fun () -> exec child body);
                  resume tid k child)
            | E_join target ->
              Some
                (fun k ->
                  let ti = thread target in
                  if ti.phase = Exited then begin
                    emit (Event.Join { parent = tid; child = target });
                    resume tid k ()
                  end
                  else begin
                    block tid;
                    Vec.push ti.joiners
                      {
                        wtid = tid;
                        wake =
                          (fun () ->
                            emit (Event.Join { parent = tid; child = target });
                            Effect.Deep.continue k ());
                      }
                  end)
            | E_lock m ->
              Some
                (fun k ->
                  if m.owner < 0 then begin
                    m.owner <- tid;
                    emit (Event.Acquire { tid; lock = m.lid; sync = Event.Lock });
                    resume tid k ()
                  end
                  else if m.owner = tid then
                    Effect.Deep.discontinue k
                      (Invalid_argument "Sim.lock: mutex already held by caller")
                  else begin
                    block tid;
                    Vec.push m.waiters
                      {
                        wtid = tid;
                        wake =
                          (fun () ->
                            emit (Event.Acquire { tid; lock = m.lid; sync = Event.Lock });
                            Effect.Deep.continue k ());
                      }
                  end)
            | E_unlock m ->
              Some
                (fun k ->
                  if m.owner <> tid then
                    Effect.Deep.discontinue k
                      (Invalid_argument "Sim.unlock: mutex not held by caller")
                  else begin
                    emit (Event.Release { tid; lock = m.lid; sync = Event.Lock });
                    if Vec.length m.waiters > 0 then begin
                      (* deterministic FIFO lock handoff *)
                      let wtr = Vec.remove_ordered m.waiters 0 in
                      m.owner <- wtr.wtid;
                      enqueue wtr.wtid wtr.wake
                    end
                    else m.owner <- -1;
                    resume tid k ()
                  end)
            | E_malloc (align, size) ->
              Some
                (fun k ->
                  let addr = Memory.alloc w.mem ~align size in
                  emit (Event.Alloc { tid; addr; size });
                  resume tid k addr)
            | E_free addr ->
              Some
                (fun k ->
                  match Memory.free w.mem addr with
                  | size ->
                    emit (Event.Free { tid; addr; size });
                    resume tid k ()
                  | exception (Invalid_argument _ as e) ->
                    Effect.Deep.discontinue k e)
            | E_static (align, size) ->
              Some (fun k -> resume tid k (Memory.alloc_static w.mem ~align size))
            | E_barrier b ->
              Some
                (fun k ->
                  emit (Event.Release { tid; lock = b.bid; sync = Event.Barrier });
                  let wtr =
                    {
                      wtid = tid;
                      wake =
                        (fun () ->
                          emit (Event.Acquire { tid; lock = b.bid; sync = Event.Barrier });
                          Effect.Deep.continue k ());
                    }
                  in
                  if Vec.length b.arrived + 1 < b.parties then begin
                    block tid;
                    Vec.push b.arrived wtr
                  end
                  else begin
                    Vec.iter (fun wtr -> enqueue wtr.wtid wtr.wake) b.arrived;
                    Vec.clear b.arrived;
                    enqueue tid wtr.wake
                  end)
            | E_evt_set f ->
              Some
                (fun k ->
                  emit (Event.Release { tid; lock = f.eid; sync = Event.Flag });
                  f.is_set <- true;
                  Vec.iter (fun wtr -> enqueue wtr.wtid wtr.wake) f.ewaiters;
                  Vec.clear f.ewaiters;
                  resume tid k ())
            | E_evt_wait f ->
              Some
                (fun k ->
                  let wtr =
                    {
                      wtid = tid;
                      wake =
                        (fun () ->
                          emit (Event.Acquire { tid; lock = f.eid; sync = Event.Flag });
                          Effect.Deep.continue k ());
                    }
                  in
                  if f.is_set then enqueue tid wtr.wake
                  else begin
                    block tid;
                    Vec.push f.ewaiters wtr
                  end)
            | E_atomic (addr, size, loc) ->
              Some
                (fun k ->
                  let sid = atomic_sync_id addr in
                  emit (Event.Acquire { tid; lock = sid; sync = Event.Atomic });
                  emit (Event.Access { tid; kind = Event.Read; addr; size; loc });
                  emit (Event.Access { tid; kind = Event.Write; addr; size; loc });
                  emit (Event.Release { tid; lock = sid; sync = Event.Atomic });
                  resume tid k ())
            | E_atomic_access (kind, addr, size, loc) ->
              Some
                (fun k ->
                  let sid = atomic_sync_id addr in
                  emit (Event.Acquire { tid; lock = sid; sync = Event.Atomic });
                  emit (Event.Access { tid; kind; addr; size; loc });
                  emit (Event.Release { tid; lock = sid; sync = Event.Atomic });
                  resume tid k ())
            | E_trylock m ->
              Some
                (fun k ->
                  if m.owner < 0 then begin
                    m.owner <- tid;
                    emit (Event.Acquire { tid; lock = m.lid; sync = Event.Lock });
                    resume tid k true
                  end
                  else resume tid k false)
            | E_cond_wait (c, m) ->
              Some
                (fun k ->
                  if m.owner <> tid then
                    Effect.Deep.discontinue k
                      (Invalid_argument "Sim.cond_wait: mutex not held by caller")
                  else begin
                    (* unlock the mutex (with handoff), then park on the
                       condition; the wake path re-acquires the mutex
                       before resuming *)
                    emit (Event.Release { tid; lock = m.lid; sync = Event.Lock });
                    (if Vec.length m.waiters > 0 then begin
                       let wtr = Vec.remove_ordered m.waiters 0 in
                       m.owner <- wtr.wtid;
                       enqueue wtr.wtid wtr.wake
                     end
                     else m.owner <- -1);
                    block tid;
                    let relock () =
                      if m.owner < 0 then begin
                        m.owner <- tid;
                        emit (Event.Acquire { tid; lock = m.lid; sync = Event.Lock });
                        Effect.Deep.continue k ()
                      end
                      else begin
                        block tid;
                        Vec.push m.waiters
                          {
                            wtid = tid;
                            wake =
                              (fun () ->
                                emit
                                  (Event.Acquire
                                     { tid; lock = m.lid; sync = Event.Lock });
                                Effect.Deep.continue k ());
                          }
                      end
                    in
                    Vec.push c.cwaiters
                      {
                        wtid = tid;
                        wake =
                          (fun () ->
                            emit (Event.Acquire { tid; lock = c.cid; sync = Event.Flag });
                            relock ());
                      }
                  end)
            | E_cond_wake (c, broadcast) ->
              Some
                (fun k ->
                  emit (Event.Release { tid; lock = c.cid; sync = Event.Flag });
                  if broadcast then begin
                    Vec.iter (fun wtr -> enqueue wtr.wtid wtr.wake) c.cwaiters;
                    Vec.clear c.cwaiters
                  end
                  else if Vec.length c.cwaiters > 0 then begin
                    let wtr = Vec.remove_ordered c.cwaiters 0 in
                    enqueue wtr.wtid wtr.wake
                  end;
                  resume tid k ())
            | E_sem_wait s ->
              Some
                (fun k ->
                  if s.count > 0 then begin
                    s.count <- s.count - 1;
                    emit (Event.Acquire { tid; lock = s.smid; sync = Event.Flag });
                    resume tid k ()
                  end
                  else begin
                    block tid;
                    Vec.push s.swaiters
                      {
                        wtid = tid;
                        wake =
                          (fun () ->
                            emit (Event.Acquire { tid; lock = s.smid; sync = Event.Flag });
                            Effect.Deep.continue k ());
                      }
                  end)
            | E_sem_post s ->
              Some
                (fun k ->
                  emit (Event.Release { tid; lock = s.smid; sync = Event.Flag });
                  if Vec.length s.swaiters > 0 then begin
                    (* the permit is handed directly to a waiter *)
                    let wtr = Vec.remove_ordered s.swaiters 0 in
                    enqueue wtr.wtid wtr.wake
                  end
                  else s.count <- s.count + 1;
                  resume tid k ())
            | _ -> None);
      }
  in
  let main_tid = new_thread () in
  enqueue main_tid (fun () -> exec main_tid main);
  let rec loop () =
    let n = Vec.length w.ready in
    if n = 0 then begin
      if w.live > 0 then begin
        let blocked =
          Vec.fold_left
            (fun acc ti -> if ti.phase <> Exited then ti.tid :: acc else acc)
            [] w.threads
        in
        let held =
          Hashtbl.fold (fun lock owner acc -> (lock, owner) :: acc)
            w.held_locks []
          |> List.sort compare
        in
        raise (Deadlock { blocked = List.rev blocked; held })
      end
    end
    else begin
      let i =
        Scheduler.pick w.sched ~current:w.current
          ~ready_tids:(fun i -> (Vec.get w.ready i).rtid)
          ~n
      in
      let r = Vec.remove_ordered w.ready i in
      (thread r.rtid).phase <- Running;
      w.current <- r.rtid;
      r.run ();
      loop ()
    end
  in
  loop ();
  {
    threads = Vec.length w.threads;
    events = w.events;
    accesses = w.accesses;
    total_allocated = Memory.total_allocated w.mem;
  }
