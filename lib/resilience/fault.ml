type trace_fault = Bit_flip | Truncate | Duplicate

let all = [ Bit_flip; Truncate; Duplicate ]

let name = function
  | Bit_flip -> "bitflip"
  | Truncate -> "truncate"
  | Duplicate -> "duplicate"

let of_name = function
  | "bitflip" -> Some Bit_flip
  | "truncate" -> Some Truncate
  | "duplicate" -> Some Duplicate
  | _ -> None

(* magic "DGRT" + version byte *)
let header_len = 5

let fault_tag = function Bit_flip -> 1 | Truncate -> 2 | Duplicate -> 3

let rng ~seed fault =
  Random.State.make [| seed; fault_tag fault; 0x5f3759df |]

(* an offset in [header_len, len) *)
let payload_offset st len = header_len + Random.State.int st (len - header_len)

let apply ~seed fault bytes =
  let len = String.length bytes in
  if len <= header_len then bytes
  else begin
    let st = rng ~seed fault in
    match fault with
    | Bit_flip ->
      let off = payload_offset st len in
      let bit = Random.State.int st 8 in
      let b = Bytes.of_string bytes in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
      Bytes.to_string b
    | Truncate ->
      let off = payload_offset st len in
      String.sub bytes 0 off
    | Duplicate ->
      let a = payload_offset st len in
      let b = payload_offset st len in
      let lo = min a b and hi = max a b in
      let hi = if lo = hi then min len (hi + 1) else hi in
      String.concat ""
        [
          String.sub bytes 0 hi;
          String.sub bytes lo (hi - lo);
          String.sub bytes hi (len - hi);
        ]
  end
