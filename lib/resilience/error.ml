module Json = Dgrace_obs.Json

type t =
  | Corrupt_trace of {
      path : string option;
      offset : int;
      events_read : int;
      reason : string;
    }
  | Deadlock of { blocked : int list; held : (int * int) list }
  | Budget_exhausted of { budget : string; limit : int; actual : int }
  | Invalid_input of { what : string; reason : string }
  | Internal of { where : string; reason : string }

exception E of t

let exit_ok = 0
let exit_races = 2
let exit_partial = 3
let exit_input_error = 4
let exit_internal = 5

let exit_code = function
  | Corrupt_trace _ | Invalid_input _ -> exit_input_error
  | Deadlock _ | Budget_exhausted _ -> exit_partial
  | Internal _ -> exit_internal

let to_string = function
  | Corrupt_trace { path; offset; events_read; reason } ->
    Printf.sprintf "corrupt trace%s: %s at byte %d (%d events decoded before)"
      (match path with Some p -> " " ^ p | None -> "")
      reason offset events_read
  | Deadlock { blocked; held } ->
    let ints l = String.concat "," (List.map string_of_int l) in
    Printf.sprintf "deadlock: threads [%s] blocked; held locks [%s]"
      (ints blocked)
      (String.concat ","
         (List.map (fun (l, o) -> Printf.sprintf "%d@t%d" l o) held))
  | Budget_exhausted { budget; limit; actual } ->
    Printf.sprintf "budget exhausted: %s limit %d exceeded (%d)" budget limit
      actual
  | Invalid_input { what; reason } ->
    Printf.sprintf "invalid input (%s): %s" what reason
  | Internal { where; reason } ->
    Printf.sprintf "internal failure (%s): %s" where reason

let pp ppf e = Format.pp_print_string ppf (to_string e)

let to_json = function
  | Corrupt_trace { path; offset; events_read; reason } ->
    Json.Obj
      [
        ("error", Json.String "corrupt_trace");
        ( "path",
          match path with Some p -> Json.String p | None -> Json.Null );
        ("offset", Json.Int offset);
        ("events_read", Json.Int events_read);
        ("reason", Json.String reason);
      ]
  | Deadlock { blocked; held } ->
    Json.Obj
      [
        ("error", Json.String "deadlock");
        ("blocked", Json.List (List.map (fun t -> Json.Int t) blocked));
        ( "held",
          Json.List
            (List.map
               (fun (l, o) ->
                 Json.Obj [ ("lock", Json.Int l); ("owner", Json.Int o) ])
               held) );
      ]
  | Budget_exhausted { budget; limit; actual } ->
    Json.Obj
      [
        ("error", Json.String "budget_exhausted");
        ("budget", Json.String budget);
        ("limit", Json.Int limit);
        ("actual", Json.Int actual);
      ]
  | Invalid_input { what; reason } ->
    Json.Obj
      [
        ("error", Json.String "invalid_input");
        ("what", Json.String what);
        ("reason", Json.String reason);
      ]
  | Internal { where; reason } ->
    Json.Obj
      [
        ("error", Json.String "internal");
        ("where", Json.String where);
        ("reason", Json.String reason);
      ]
