(** Per-run resource budgets and the degrade-don't-die policy.

    A budget bounds what one analysis run may consume: shadow-memory
    bytes, events processed, wall-clock seconds.  The engine checks it
    from the event sink against live {!Dgrace_shadow.Accounting}
    readouts and reacts in two different ways:

    - {b shadow bytes}: the detector is asked to {e degrade} — shed
      memory by coarsening shadow state (see
      [Detector.degrade]) — and the run continues, flagged
      [degraded].  Only when the detector can shed nothing more does
      the run stop.
    - {b events / deadline}: the run stops at the limit and the
      summary is flagged [partial] with the {!stop} reason.

    A stopped or degraded run still reports every race found so far:
    results are a lower bound, never garbage. *)

type t = {
  max_shadow_bytes : int option;
      (** cap on [Accounting.current_bytes] before degradation *)
  max_events : int option;  (** cap on events fed to the detector *)
  deadline_s : float option;  (** wall-clock cap for the run *)
}

val unlimited : t

val make :
  ?max_shadow_bytes:int -> ?max_events:int -> ?deadline_s:float -> unit -> t
(** Omitted dimensions are unlimited.
    @raise Invalid_argument on non-positive limits. *)

val is_unlimited : t -> bool

(** Why a budgeted run ended before end-of-stream. *)
type stop =
  | Max_events of { limit : int }
  | Deadline of { limit_s : float; elapsed_s : float }
  | Shadow_bytes of { limit : int; bytes : int }
      (** over the shadow budget with degradation exhausted *)

val stop_to_string : stop -> string
val stop_to_json : stop -> Dgrace_obs.Json.t

val stop_to_error : stop -> Error.t
(** The {!Error.Budget_exhausted} form, for the [_checked] APIs. *)
