module Json = Dgrace_obs.Json

type t = {
  max_shadow_bytes : int option;
  max_events : int option;
  deadline_s : float option;
}

let unlimited = { max_shadow_bytes = None; max_events = None; deadline_s = None }

let check_pos what = function
  | Some n when n <= 0 ->
    invalid_arg (Printf.sprintf "Budget.make: non-positive %s" what)
  | _ -> ()

let make ?max_shadow_bytes ?max_events ?deadline_s () =
  check_pos "max_shadow_bytes" max_shadow_bytes;
  check_pos "max_events" max_events;
  (match deadline_s with
   | Some d when d <= 0. -> invalid_arg "Budget.make: non-positive deadline_s"
   | _ -> ());
  { max_shadow_bytes; max_events; deadline_s }

let is_unlimited b =
  b.max_shadow_bytes = None && b.max_events = None && b.deadline_s = None

type stop =
  | Max_events of { limit : int }
  | Deadline of { limit_s : float; elapsed_s : float }
  | Shadow_bytes of { limit : int; bytes : int }

let stop_to_string = function
  | Max_events { limit } -> Printf.sprintf "event budget reached (%d events)" limit
  | Deadline { limit_s; elapsed_s } ->
    Printf.sprintf "deadline reached (%.1fs limit, %.1fs elapsed)" limit_s
      elapsed_s
  | Shadow_bytes { limit; bytes } ->
    Printf.sprintf
      "shadow budget exceeded (%dB limit, %dB live, degradation exhausted)"
      limit bytes

let stop_to_json = function
  | Max_events { limit } ->
    Json.Obj [ ("stop", Json.String "max_events"); ("limit", Json.Int limit) ]
  | Deadline { limit_s; elapsed_s } ->
    Json.Obj
      [
        ("stop", Json.String "deadline");
        ("limit_s", Json.Float limit_s);
        ("elapsed_s", Json.Float elapsed_s);
      ]
  | Shadow_bytes { limit; bytes } ->
    Json.Obj
      [
        ("stop", Json.String "shadow_bytes");
        ("limit", Json.Int limit);
        ("bytes", Json.Int bytes);
      ]

let stop_to_error = function
  | Max_events { limit } ->
    Error.Budget_exhausted { budget = "events"; limit; actual = limit }
  | Deadline { limit_s; elapsed_s } ->
    Error.Budget_exhausted
      {
        budget = "deadline_s";
        limit = int_of_float limit_s;
        actual = int_of_float (Float.ceil elapsed_s);
      }
  | Shadow_bytes { limit; bytes } ->
    Error.Budget_exhausted { budget = "shadow_bytes"; limit; actual = bytes }
