(** Structured failure for the whole stack.

    Every way a run can fail that is not a programming error in this
    codebase — corrupt input, a deadlocked workload, an exhausted
    resource budget — is a value of {!t}, carrying enough context to
    act on (byte offsets, thread ids, held locks, limits).  The CLI
    maps these to the documented exit-code contract
    (see [doc/resilience.md]); the engine returns them from the
    [_checked] entry points; the fault-injection harness asserts that
    injected faults surface as exactly these values and nothing
    else. *)

type t =
  | Corrupt_trace of {
      path : string option;  (** trace file, when known *)
      offset : int;  (** byte offset of the offending record *)
      events_read : int;  (** events decoded before the failure *)
      reason : string;  (** e.g. ["unknown tag 77"] *)
    }
  | Deadlock of {
      blocked : int list;  (** non-exited thread ids, ascending *)
      held : (int * int) list;  (** (lock id, owner tid), ascending *)
    }
      (** Global deadlock: every live thread is blocked.  [held] names
          the mutexes still held at the time, so the report points at
          the lock-discipline bug rather than just hanging. *)
  | Budget_exhausted of { budget : string; limit : int; actual : int }
      (** A resource budget was exceeded and no degradation could
          bring the run back under it. *)
  | Invalid_input of { what : string; reason : string }
      (** Malformed user input discovered before or during a run. *)
  | Internal of { where : string; reason : string }
      (** An exception escaped a component that promised not to raise —
          the crash-only session layer ([Dgrace_serve.Session]) stores
          one of these as the session's terminal state instead of
          letting the exception cross the server boundary.  [where]
          names the component, [reason] is the rendered exception. *)

exception E of t
(** The carrier used by layers that cannot return a [result]
    (e.g. forcing a lazy trace sequence). *)

(** {1 Exit-code contract}

    [racedet] exits with exactly one of these codes; scripts may rely
    on them. *)

val exit_ok : int
(** 0 — run completed, no races. *)

val exit_races : int
(** 2 — run completed, races found. *)

val exit_partial : int
(** 3 — run ended early or shed precision (budget, deadlock,
    resynced trace); results are a lower bound. *)

val exit_input_error : int
(** 4 — input could not be used (corrupt trace, bad file). *)

val exit_internal : int
(** 5 — an internal component crashed and the failure was contained as
    a structured {!Internal} error (crash-only session isolation, not
    silent data loss). *)

val exit_code : t -> int
(** The table above applied to an error: corrupt/invalid input maps to
    {!exit_input_error}; deadlock and budget exhaustion to
    {!exit_partial}; contained crashes to {!exit_internal}. *)

val to_string : t -> string
(** One line, human-readable, stable across runs of the same input. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Dgrace_obs.Json.t
(** Machine-readable form used by the JSON export and the fault
    harness: [{ "error": <kind>, ... }] with kind-specific fields. *)
