(** Deterministic, seeded corruption of raw trace bytes.

    The fault-injection harness ([racedet inject], [bench --faults])
    needs faults that are {e reproducible}: the same seed always
    yields the same corruption, so a crash found in CI replays locally
    byte-for-byte.  This module is the pure core — string in, string
    out, no IO. *)

type trace_fault =
  | Bit_flip  (** flip one random bit in a random payload byte *)
  | Truncate  (** cut the trace at a random offset *)
  | Duplicate
      (** copy a random byte span and splice it back in — models a
          partially double-written buffer *)

val all : trace_fault list

val name : trace_fault -> string
(** ["bitflip"], ["truncate"], ["duplicate"]. *)

val of_name : string -> trace_fault option

val apply : seed:int -> trace_fault -> string -> string
(** [apply ~seed fault bytes] corrupts the trace image.  Offsets are
    drawn past the 5-byte header when the trace is long enough, so the
    fault lands in record data; traces at most header-sized are
    returned unchanged (nothing to corrupt).  Deterministic in
    [(seed, fault, bytes)]. *)
