type endpoint = {
  tid : int;
  kind : Event.access_kind;
  clock : int;
  loc : string;
}

type t = {
  addr : int;
  size : int;
  current : endpoint;
  previous : endpoint;
  granule_lo : int;
  granule_hi : int;
}

let make ~addr ~size ~current ~previous ?granule () =
  let granule_lo, granule_hi =
    match granule with Some (lo, hi) -> (lo, hi) | None -> (addr, addr + size)
  in
  { addr; size; current; previous; granule_lo; granule_hi }

let is_write_write r =
  r.current.kind = Event.Write && r.previous.kind = Event.Write

let pp_endpoint ppf e =
  Format.fprintf ppf "%a by t%d%s%s" Event.pp_access_kind e.kind e.tid
    (if e.clock > 0 then Printf.sprintf "@%d" e.clock else "")
    (if e.loc = "" then "" else Printf.sprintf " at %s" e.loc)

let pp ppf r =
  Format.fprintf ppf "race on 0x%x (size %d, granule 0x%x-0x%x): %a conflicts with %a"
    r.addr r.size r.granule_lo r.granule_hi pp_endpoint r.current pp_endpoint
    r.previous

let to_string r = Format.asprintf "%a" pp r

module Collector = struct
  type report = t

  type t = {
    suppression : Suppression.t;
    seen : (int, unit) Hashtbl.t;  (* racy byte addresses already reported *)
    mutable races : (int * report) list;  (* (tag, report), reverse detection order *)
    mutable count : int;
    mutable suppressed : int;
    mutable tag : int;  (* stamped onto each recorded race; see set_tag *)
  }

  let create ?(suppression = Suppression.empty) () =
    {
      suppression;
      seen = Hashtbl.create 64;
      races = [];
      count = 0;
      suppressed = 0;
      tag = -1;
    }

  let add c r =
    if Hashtbl.mem c.seen r.addr then false
    else begin
      Hashtbl.replace c.seen r.addr ();
      if
        Suppression.matches c.suppression ~addr:r.addr
          ~locs:[ r.current.loc; r.previous.loc ]
      then begin
        c.suppressed <- c.suppressed + 1;
        false
      end
      else begin
        c.races <- (c.tag, r) :: c.races;
        c.count <- c.count + 1;
        true
      end
    end

  (* Restore tag order over the reports recorded since [count c] was
     [n0].  Page-clustered batch application visits a batch's rows out
     of stream order, so races inside one batch can be recorded with
     descending tags; resorting just that prefix (the list is
     newest-first, so the prefix is exactly this batch's reports)
     makes the final order byte-identical to row-order application.
     Earlier batches are untouched — a streaming reader that already
     consumed them (serve's incremental race frames) stays consistent.
     The sort is descending and stable: equal tags (several reports
     from one row) keep their detection order. *)
  let resort_since c n0 =
    let added = c.count - n0 in
    if added > 1 then begin
      let rec split k acc l =
        if k = 0 then (acc, l)
        else
          match l with
          | x :: tl -> split (k - 1) (x :: acc) tl
          | [] -> (acc, l)
      in
      let rev_head, tail = split added [] c.races in
      let head =
        List.stable_sort
          (fun (a, _) (b, _) -> compare (b : int) a)
          (List.rev rev_head)
      in
      c.races <- head @ tail
    end

  let count c = c.count
  let suppressed c = c.suppressed
  let races c = List.rev_map snd c.races
  let set_tag c tag = c.tag <- tag
  let tagged_races c = List.rev c.races
  let racy_addrs c = List.sort_uniq compare (List.map (fun r -> r.addr) (races c))
end
