(** Race reports and the first-race-per-location collection discipline.

    Like DJIT+, DRD and the paper's detector, we report only the {e
    first} race for each memory location: once an address is in the
    [Race] state no further reports are produced for it.  A report
    carries both conflicting accesses — the current one with full
    context, the previous one as recorded in the shadow state. *)

type endpoint = {
  tid : int;
  kind : Event.access_kind;
  clock : int;  (** the thread's logical clock at the access, when known (0 otherwise) *)
  loc : string;  (** source-location label ("" when unknown) *)
}
(** One side of a racing pair. *)

type t = {
  addr : int;  (** first racy byte address *)
  size : int;  (** detection-unit size at which the race was caught *)
  current : endpoint;  (** the access that uncovered the race *)
  previous : endpoint;  (** the recorded conflicting access *)
  granule_lo : int;
  granule_hi : int;
      (** the shadow granule [\[granule_lo, granule_hi)] covering [addr];
          wider than one byte when a shared vector clock caught the race
          (this is how the dynamic detector reports the extra x264
          locations of Table 1) *)
}

val make :
  addr:int -> size:int -> current:endpoint -> previous:endpoint ->
  ?granule:int * int -> unit -> t
(** Build a report; [granule] defaults to [(addr, addr + size)]. *)

val is_write_write : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Accumulates reports, deduplicating to the first race per byte
    address.  Detectors push every race they see; the collector keeps
    the paper's "first race for each memory location" semantics. *)
module Collector : sig
  type report = t
  type t

  val create : ?suppression:Suppression.t -> unit -> t

  val add : t -> report -> bool
  (** [add c r] records [r] unless a race was already recorded for
      [r.addr] or [r] is suppressed; returns [true] iff recorded. *)

  val count : t -> int
  (** Number of recorded (distinct-location, unsuppressed) races. *)

  val suppressed : t -> int
  (** Number of reports dropped by suppression rules. *)

  val races : t -> report list
  (** Recorded races in detection order. *)

  val set_tag : t -> int -> unit
  (** [set_tag c tag] stamps [tag] onto every race recorded until the
      next call.  The engine sets it to the event's stream position
      before dispatching, so batched and per-event replays attribute
      races to identical offsets.  Default [-1]. *)

  val tagged_races : t -> (int * report) list
  (** Recorded races with their tags, in detection order. *)

  val resort_since : t -> int -> unit
  (** [resort_since c n0] re-establishes ascending tag order over the
      reports recorded since [count c] returned [n0], leaving earlier
      reports untouched.  Page-clustered batch application calls this
      once per batch so its out-of-row-order dispatch still yields the
      exact report order of row-order application (stable for equal
      tags). *)

  val racy_addrs : t -> int list
  (** Sorted distinct racy byte addresses. *)
end
