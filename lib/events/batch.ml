(* Struct-of-arrays event batches: the unit of work for the batched
   detector fast path.  A batch holds up to [capacity] decoded events
   as parallel int arrays plus a string array of location pointers —
   no per-event allocation on the hot path, and a detector's
   [process_batch] can walk the columns with plain array loads.

   The [kind] column uses the same numeric codes as the v1/v2 trace
   tags (0=read .. 8=exit) so trace decoders can fill batches without
   a translation table; sync kinds use the wire codes 0..3.  Column
   meaning per kind:

     kind         a        b      c           loc
     read/write   tid      addr   size        location ("" if none)
     acq/rel      tid      lock   sync code   ""
     fork/join    parent   child  0           ""
     alloc/free   tid      addr   size        ""
     exit         tid      0      0           ""

   [off] carries each record's absolute offset in the source trace
   (or -1 when the producer has no byte offsets); race reports from a
   batch are attributed to these offsets so batched and per-event
   replays order races identically. *)

let default_capacity = 4096

(* kind codes — numerically identical to Trace_format.tag_* *)
let code_read = 0
let code_write = 1
let code_acquire = 2
let code_release = 3
let code_fork = 4
let code_join = 5
let code_alloc = 6
let code_free = 7
let code_exit = 8

let sync_code = function
  | Event.Lock -> 0
  | Event.Barrier -> 1
  | Event.Flag -> 2
  | Event.Atomic -> 3

let sync_of_code = function
  | 0 -> Event.Lock
  | 1 -> Event.Barrier
  | 2 -> Event.Flag
  | _ -> Event.Atomic

type t = {
  mutable len : int;
  kind : int array;
  a : int array;
  b : int array;
  c : int array;
  loc : string array;
  off : int array;
}

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Batch.create: capacity must be positive";
  {
    len = 0;
    kind = Array.make capacity 0;
    a = Array.make capacity 0;
    b = Array.make capacity 0;
    c = Array.make capacity 0;
    loc = Array.make capacity "";
    off = Array.make capacity (-1);
  }

let capacity t = Array.length t.kind
let length t = t.len
let is_full t = t.len >= Array.length t.kind

let clear t =
  (* drop location pointers so a parked batch doesn't pin strings *)
  Array.fill t.loc 0 t.len "";
  t.len <- 0

(* Append a decoded event.  [off] is the record's absolute offset in
   the source stream; defaults to -1 (unknown). *)
let push t ?(off = -1) ev =
  let i = t.len in
  if i >= Array.length t.kind then invalid_arg "Batch.push: batch full";
  (match ev with
   | Event.Access { tid; kind; addr; size; loc } ->
     t.kind.(i) <- (if kind = Event.Read then code_read else code_write);
     t.a.(i) <- tid;
     t.b.(i) <- addr;
     t.c.(i) <- size;
     t.loc.(i) <- loc
   | Event.Acquire { tid; lock; sync } ->
     t.kind.(i) <- code_acquire;
     t.a.(i) <- tid;
     t.b.(i) <- lock;
     t.c.(i) <- sync_code sync;
     t.loc.(i) <- ""
   | Event.Release { tid; lock; sync } ->
     t.kind.(i) <- code_release;
     t.a.(i) <- tid;
     t.b.(i) <- lock;
     t.c.(i) <- sync_code sync;
     t.loc.(i) <- ""
   | Event.Fork { parent; child } ->
     t.kind.(i) <- code_fork;
     t.a.(i) <- parent;
     t.b.(i) <- child;
     t.c.(i) <- 0;
     t.loc.(i) <- ""
   | Event.Join { parent; child } ->
     t.kind.(i) <- code_join;
     t.a.(i) <- parent;
     t.b.(i) <- child;
     t.c.(i) <- 0;
     t.loc.(i) <- ""
   | Event.Alloc { tid; addr; size } ->
     t.kind.(i) <- code_alloc;
     t.a.(i) <- tid;
     t.b.(i) <- addr;
     t.c.(i) <- size;
     t.loc.(i) <- ""
   | Event.Free { tid; addr; size } ->
     t.kind.(i) <- code_free;
     t.a.(i) <- tid;
     t.b.(i) <- addr;
     t.c.(i) <- size;
     t.loc.(i) <- ""
   | Event.Thread_exit { tid } ->
     t.kind.(i) <- code_exit;
     t.a.(i) <- tid;
     t.b.(i) <- 0;
     t.c.(i) <- 0;
     t.loc.(i) <- "");
  t.off.(i) <- off;
  t.len <- i + 1

(* Copy one row between batches — the shard router's primitive when it
   repacks a recycled decoder batch into per-shard batches.  The copy
   is columnar (six array stores), so routing costs no allocation. *)
let copy_row ~src i ~dst =
  let j = dst.len in
  if j >= Array.length dst.kind then invalid_arg "Batch.copy_row: batch full";
  dst.kind.(j) <- src.kind.(i);
  dst.a.(j) <- src.a.(i);
  dst.b.(j) <- src.b.(i);
  dst.c.(j) <- src.c.(i);
  dst.loc.(j) <- src.loc.(i);
  dst.off.(j) <- src.off.(i);
  dst.len <- j + 1

(* Reconstruct the [Event.t] at index [i] — the slow path for rare
   sync events inside a batched detector and for fallback loops. *)
let event t i =
  if i < 0 || i >= t.len then invalid_arg "Batch.event: index out of bounds";
  let k = t.kind.(i) in
  if k = code_read || k = code_write then
    Event.Access
      {
        tid = t.a.(i);
        kind = (if k = code_read then Event.Read else Event.Write);
        addr = t.b.(i);
        size = t.c.(i);
        loc = t.loc.(i);
      }
  else if k = code_acquire then
    Event.Acquire { tid = t.a.(i); lock = t.b.(i); sync = sync_of_code t.c.(i) }
  else if k = code_release then
    Event.Release { tid = t.a.(i); lock = t.b.(i); sync = sync_of_code t.c.(i) }
  else if k = code_fork then Event.Fork { parent = t.a.(i); child = t.b.(i) }
  else if k = code_join then Event.Join { parent = t.a.(i); child = t.b.(i) }
  else if k = code_alloc then
    Event.Alloc { tid = t.a.(i); addr = t.b.(i); size = t.c.(i) }
  else if k = code_free then
    Event.Free { tid = t.a.(i); addr = t.b.(i); size = t.c.(i) }
  else Event.Thread_exit { tid = t.a.(i) }

let iter_events f t =
  for i = 0 to t.len - 1 do
    f (event t i)
  done

let of_events ?(capacity = default_capacity) evs =
  let n = List.length evs in
  let b = create ~capacity:(max capacity n) () in
  List.iter (fun ev -> push b ev) evs;
  b
