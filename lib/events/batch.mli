(** Struct-of-arrays event batches for the batched detector fast path.

    A batch holds up to [capacity] decoded events as parallel int
    columns plus a string column of location pointers, so decoders can
    fill it and detectors can walk it with no per-event allocation.
    See doc/trace.md for the column layout and the [process_batch]
    contract.

    {b Recycling contract.}  Every producer in this codebase — the v2
    stream decoder, the pipeline ring, the shard packer, the serve
    session — reuses a small pool of batches: a batch handed to a
    consumer callback is {e invalid the moment the callback returns}
    (it will be cleared and refilled with unrelated rows).  A consumer
    that needs rows past the callback must copy them out — either with
    {!copy_row} into a batch it owns, or by materialising {!event}s.
    Retaining the batch itself, its arrays, or row indices into it is
    a bug even when it appears to work on a single-buffer producer. *)

(** Default (and framing) batch capacity: 4096 events. *)
val default_capacity : int

(** Kind codes in the [kind] column — numerically identical to the
    trace tags ([Trace_format.tag_*]). *)

val code_read : int
val code_write : int
val code_acquire : int
val code_release : int
val code_fork : int
val code_join : int
val code_alloc : int
val code_free : int
val code_exit : int

(** Wire codes for {!Event.sync_kind} (0=lock 1=barrier 2=flag
    3=atomic), shared with the trace formats. *)

val sync_code : Event.sync_kind -> int
val sync_of_code : int -> Event.sync_kind

type t = {
  mutable len : int;  (** number of valid rows *)
  kind : int array;  (** kind code per row *)
  a : int array;  (** tid / parent *)
  b : int array;  (** addr / lock / child *)
  c : int array;  (** size / sync code / 0 *)
  loc : string array;  (** access location, [""] otherwise *)
  off : int array;  (** absolute source offset, [-1] if unknown *)
}

val create : ?capacity:int -> unit -> t
val capacity : t -> int
val length : t -> int
val is_full : t -> bool

(** Reset to empty (also drops location pointers so a parked batch
    doesn't pin strings). *)
val clear : t -> unit

(** Append one decoded event; raises [Invalid_argument] when full.
    [off] is the record's absolute offset in the source stream. *)
val push : t -> ?off:int -> Event.t -> unit

(** [copy_row ~src i ~dst] appends row [i] of [src] to [dst] — six
    columnar stores, no allocation.  Raises [Invalid_argument] when
    [dst] is full.  This is how a consumer keeps rows beyond the
    producer's callback (see the recycling contract above). *)
val copy_row : src:t -> int -> dst:t -> unit

(** Reconstruct the event at a row — the slow path for rare sync
    events inside a batched detector and for fallback loops. *)
val event : t -> int -> Event.t

val iter_events : (Event.t -> unit) -> t -> unit

(** Build a single batch from a list (grows capacity to fit); test and
    convenience helper, not a hot path. *)
val of_events : ?capacity:int -> Event.t list -> t
