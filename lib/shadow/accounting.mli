(** Explicit memory accounting for the detector data structures.

    The paper's Table 2 decomposes detector memory into three factors —
    hash/index structures, vector clocks, and same-epoch bitmaps — and
    Table 3 counts live vector clocks and the average number of
    locations sharing one.  A garbage-collected runtime can't reproduce
    those numbers from the process RSS, so every shadow structure
    reports its own size changes here, "measured based on object size"
    exactly as the paper does. *)

type t

val create : unit -> t

(** {1 Byte deltas (may be negative)} *)

val add_hash : t -> int -> unit
(** Index/hash structure bytes (Table 2 "Hash" column). *)

val add_vc : t -> int -> unit
(** Vector-clock storage bytes (Table 2 "Vector clock" column). *)

val add_bitmap : t -> int -> unit
(** Same-epoch bitmap bytes (Table 2 "Bitmap" column). *)

val add_interned : t -> int -> unit
(** Interned vector-clock snapshot bytes (the {!Dgrace_vclock.Vc_intern}
    arena).  This is an annotation of the vector-clock factor — callers
    feeding an arena's byte deltas here are expected to also feed them
    to {!add_vc} — so it is {e not} part of {!current_bytes}. *)

(** {1 Vector-clock population (Table 3)} *)

val vc_created : t -> unit
val vc_freed : t -> unit

val bind_locations : t -> int -> unit
(** [bind_locations t n]: [n] byte-locations were bound to some vector
    clock (newly created or joined by sharing); feeds the average
    sharing count. *)

(** {1 Readouts} *)

val hash_bytes : t -> int
val vc_bytes : t -> int
val bitmap_bytes : t -> int

val current_bytes : t -> int
(** Sum of the three factors right now. *)

val peak_bytes : t -> int
(** Peak of {!current_bytes} over the run. *)

val peak_hash_bytes : t -> int
val peak_vc_bytes : t -> int
val peak_bitmap_bytes : t -> int
(** Per-factor peaks (each factor's own maximum; they need not occur
    simultaneously, mirroring the paper's per-column maxima). *)

val interned_bytes : t -> int
val peak_interned_bytes : t -> int
(** Live/peak bytes of deduplicated clock snapshots (subset of the
    vector-clock factor). *)

val live_vcs : t -> int
val peak_vcs : t -> int
(** Maximum number of vector clocks simultaneously present
    (Table 3 "Max. # of vector clocks"). *)

val total_vcs_created : t -> int

val avg_sharing : t -> float
(** Cumulative locations-bound / clocks-created — the Table 3 "Avg.
    sharing count" (1.0 when every location has a private clock). *)

val reset : t -> unit
