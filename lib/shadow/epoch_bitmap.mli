(** Per-thread bitmap of addresses already checked in the current epoch.

    DJIT+/FastTrack only need to analyse the {e first} read and the
    first write of each location per epoch.  Looking the location up in
    the global shadow structure to discover that is itself expensive,
    so the paper keeps a thread-local bitmap (§IV.A): an access marks
    its address range; subsequent accesses test the bit and return
    immediately; the bitmap is cleared at every epoch boundary of the
    thread (lock release, fork, join).

    Reads and writes are tracked in separate planes, since the first
    read and first write of an epoch must each be analysed. *)

type t

val create : ?block:int -> ?account:Accounting.t -> unit -> t
(** [block] is the bitmap chunk coverage in byte-addresses (default
    1024; must be a power of two). *)

val mark : t -> write:bool -> lo:int -> hi:int -> unit
(** Mark every address in [\[lo, hi)] as already analysed this epoch in
    the given plane ([write:true] for stores, [write:false] for loads).
    Note a store does {e not} mark the read plane: the first read after
    a write in the same epoch must still be analysed. *)

val test : t -> write:bool -> int -> bool
(** Has this address already been analysed (in the given plane) during
    the current epoch? *)

val test_range : t -> write:bool -> lo:int -> hi:int -> bool
(** [test lo && test hi] ([hi] inclusive) in one chunk lookup when
    both fall in the same chunk — the whole-access same-epoch probe on
    the detectors' fast path. *)

val reset : t -> unit
(** Epoch boundary: clear all marks and release chunk storage.  The
    chunks are detached into a small zeroed pool and the directory is
    kept, so the next epoch re-marks without re-allocating; the
    accounted footprint still returns to zero. *)

val bytes : t -> int
(** Current bitmap footprint in bytes (live chunks only). *)

type stats = {
  chunks_live : int;
  chunks_pooled : int;  (** zeroed chunks parked for reuse *)
  chunk_allocs : int;  (** chunks allocated fresh *)
  chunk_recycles : int;  (** chunks served from the pool *)
  resets : int;  (** epoch boundaries seen *)
  dir_bytes : int;  (** directory overhead, not counted in {!bytes} *)
}

val stats : t -> stats
